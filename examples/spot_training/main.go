// Spot training: the paper's Fig. 10 use case as a runnable demo.
//
// A spot-price trace is replayed against a maximum bid. Whenever the
// market price exceeds the bid, the instance — and the training process
// on it — is reclaimed (a power failure); when the price drops back,
// the process relaunches and recovers the model from its encrypted PM
// mirror. The loss curve continues across interruptions as if nothing
// happened.
//
//	go run ./examples/spot_training
package main

import (
	"fmt"
	"log"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		maxBid      = 0.0955 // the paper's bid
		targetIters = 40
		perInterval = 4
	)
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(3, 4, 32),
		Server:      plinius.EmlSGXPM(),
		Seed:        11,
	})
	if err != nil {
		return err
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(1000, 11)); err != nil {
		return err
	}

	trace := plinius.SyntheticSpotTrace(30, 0.09, 0.004, 16)
	fmt.Printf("spot trace: %d intervals (5 min each), %d interruptions at bid %.4f\n",
		len(trace.Prices), trace.Interruptions(maxBid), maxBid)

	res, err := plinius.RunSpot(trace, plinius.SpotConfig{
		MaxBid:           maxBid,
		TargetIters:      targetIters,
		ItersPerInterval: perInterval,
	}, &plinius.SpotTrainer{F: f})
	if err != nil {
		return err
	}

	fmt.Print("instance state per interval: ")
	for _, s := range res.States {
		if s.Running {
			fmt.Print("1")
		} else {
			fmt.Print("0")
		}
	}
	fmt.Println()
	fmt.Printf("executed %d iterations (completed=%v) across %d interruptions\n",
		res.Iterations, res.Completed, res.Interruptions)
	if n := len(res.Losses); n > 0 {
		fmt.Printf("loss: %.4f -> %.4f — the curve continues across kills\n",
			res.Losses[0], res.Losses[n-1])
	}
	fmt.Printf("final model iteration: %d (no training work repeated)\n", f.Iteration())
	return nil
}
