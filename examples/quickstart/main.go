// Quickstart: train a CNN securely with Plinius.
//
// The framework creates an (emulated) SGX enclave, provisions a data
// key via remote attestation, loads the training set into encrypted
// byte-addressable persistent memory, and trains with the model
// mirrored (encrypted) to PM after every iteration.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 5-layer LReLU CNN for 28x28 digits, batch 64 — the model
	// family of the paper's evaluation.
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(5, 8, 64),
		Seed:        42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("enclave model: %d parameters (%.2f MB)\n",
		f.Net.NumParams(), float64(f.Net.ParamBytes())/(1<<20))

	// Load 2,000 synthetic digits into encrypted PM. With real MNIST
	// files, use plinius.ReadIDXDataset instead.
	ds := plinius.SyntheticDataset(2000, 42)
	if err := f.LoadDataset(ds); err != nil {
		return err
	}
	fmt.Printf("training data: %d samples in encrypted byte-addressable PM\n", ds.N)

	// Train until iteration 30; the mirror in PM tracks every
	// iteration. The context makes the run cancellable at
	// mirror-consistent boundaries (Ctrl-C style interruption always
	// leaves a recoverable model in PM).
	err = f.Train(context.Background(), plinius.StopAt(30),
		plinius.WithProgress(func(iter int, loss float32) {
			if iter%5 == 0 {
				fmt.Printf("iter %3d  loss %.4f\n", iter, loss)
			}
		}))
	if err != nil {
		return err
	}
	fmt.Printf("done: model at iteration %d, mirror holds %d sealed layers (%d B AES metadata)\n",
		f.Iteration(), f.Mirror.NumLayers(), f.Mirror.MetadataBytes())
	return nil
}
