// Secure inference serving: the paper's §VI classification experiment
// as a request-level service, on the v2 context-first API.
//
// A CNN is trained inside the enclave and published to persistent
// memory as an immutable, versioned snapshot; a pool of enclave worker
// replicas restores it through the attestation + mirror-in path.
// Concurrent client requests are coalesced into dynamic micro-batches
// — one network forward per batch — so throughput scales while every
// image and every parameter stays inside enclave memory.
//
// The demo then exercises the v2 lifecycle while requests keep
// flowing: training continues concurrently with serving, Refresh rolls
// the pool to the newly published model version with zero downtime,
// and RotateKey re-provisions the data key end to end — new key to
// every replica over fresh attestation channels, PM state re-sealed —
// without dropping a single request.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(2, 8, 64),
		Seed:        4,
	})
	if err != nil {
		return err
	}

	full := plinius.SyntheticDataset(2000, 4)
	train, test, err := full.Split(1600)
	if err != nil {
		return err
	}
	if err := f.LoadDataset(train); err != nil {
		return err
	}
	fmt.Println("training in the enclave...")
	if err := f.Train(ctx, plinius.StopAt(60)); err != nil {
		return err
	}

	// Serve publishes the trained model as version 1 and builds the
	// replicas: each one is attested, receives the data key over the
	// secure channel, and restores the pinned snapshot.
	srv, err := plinius.Serve(ctx, f, plinius.ServerOptions{
		Workers:         4,
		MaxBatch:        16,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving model version %d (iteration %d) on %d enclave replicas\n",
		srv.Version(), srv.Iteration(), srv.Workers())

	// 32 concurrent clients classify the held-out set — while, in the
	// middle of the run, training continues, the pool refreshes to the
	// new model, and the data key rotates. No request is dropped.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		correct int
	)
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < test.N; i += 32 {
				pred, err := srv.Classify(ctx, test.Image(i))
				if err != nil {
					log.Println("classify:", err)
					return
				}
				if pred.Class == test.Labels[i] {
					mu.Lock()
					correct++
					mu.Unlock()
				}
			}
		}(c)
	}

	// Lifecycle, concurrent with the clients above: train on, publish
	// the improved model as a new immutable version, roll the pool.
	if err := f.Train(ctx, plinius.StopAt(90)); err != nil {
		return err
	}
	if _, err := f.Publish(); err != nil {
		return err
	}
	iter, err := srv.Refresh(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("zero-downtime refresh: now serving version %d (iteration %d)\n", srv.Version(), iter)
	ver, err := srv.RotateKey(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("key rotated: replicas re-provisioned, PM re-sealed, serving version %d\n", ver)
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("accuracy  : %.1f%% on %d held-out images\n",
		100*float64(correct)/float64(test.N), test.N)
	fmt.Printf("throughput: %.0f req/s in %.1f-image micro-batches (%d batches)\n",
		st.Throughput, st.AvgBatch, st.Batches)
	fmt.Printf("latency   : avg %v, p50 %v, p99 %v, max %v (rejected %d, expired %d)\n",
		st.AvgLatency.Round(time.Microsecond), st.P50Latency.Round(time.Microsecond),
		st.P99Latency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond),
		st.Rejected, st.Expired)

	return shardedServing(ctx)
}

// shardedServing demonstrates ShardAuto on a model that is over-EPC
// relative to its host: the training enclave claims almost the whole
// (deliberately small) machine, so a whole-model serving replica would
// push the host far over the paging knee. ShardAuto notices the
// replica does not fit the headroom and pipelines the model across
// shard enclaves instead: hot layer ranges bounded to the headroom,
// parked ranges streamed back from the pinned published snapshot in
// PM — the host never crosses the knee.
func shardedServing(ctx context.Context) error {
	fmt.Println("\n--- sharded serving (ShardAuto) ---")
	prof := plinius.SGXEmlPM()
	// A 21 MB machine whose training enclave claims ~20 MB: under 1 MB
	// of EPC headroom left for serving, far less than one replica.
	host := plinius.NewHost(prof, plinius.WithHostEPC(42<<19))
	f, err := plinius.New(plinius.Config{
		ModelConfig:        plinius.MNISTConfig(2, 8, 64),
		Host:               host,
		TrainOverheadBytes: 20 << 20,
		Seed:               4,
	})
	if err != nil {
		return err
	}
	ds := plinius.SyntheticDataset(600, 4)
	if err := f.LoadDataset(ds); err != nil {
		return err
	}
	if err := f.Train(ctx, plinius.StopAt(60)); err != nil {
		return err
	}
	fmt.Printf("replica footprint %.1f MB vs %.1f MB headroom: a whole replica cannot fit\n",
		float64(f.ReplicaFootprint())/(1<<20), float64(host.Headroom())/(1<<20))

	srv, err := plinius.Serve(ctx, f, plinius.ServerOptions{
		Shards:             plinius.ShardAuto,
		ShardOverheadBytes: 64 << 10,
		MaxBatch:           8,
		MaxQueueLatency:    time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("ShardAuto: %d shard enclaves, pipeline window %d, streaming=%v\n",
		srv.Shards(), srv.Workers(), srv.ShardsStreaming())

	correct := 0
	for i := 0; i < 200; i++ {
		pred, err := srv.Classify(ctx, ds.Image(i))
		if err != nil {
			return err
		}
		if pred.Class == ds.Labels[i] {
			correct++
		}
	}
	hs := host.Stats()
	fmt.Printf("served 200 requests, accuracy %.1f%%; host peak %.1f MB of %.1f MB usable, EPC pressure %.2f\n",
		100*float64(correct)/200, float64(hs.PeakResidentBytes)/(1<<20),
		float64(host.UsableEPC())/(1<<20), srv.EPCPressure())
	fmt.Printf("PM range restores instead of page faults: %d restores, %d faults since serving began\n",
		srv.ShardRestores(), hs.PageSwaps)
	return nil
}
