// Secure inference serving: the paper's §VI classification experiment
// as a request-level service.
//
// A CNN is trained inside the enclave, its parameters are published to
// persistent memory in sealed form, and a pool of enclave worker
// replicas restores them through the attestation + mirror-in path.
// Concurrent client requests are coalesced into dynamic micro-batches
// — one network forward per batch — so throughput scales while every
// image and every parameter stays inside enclave memory.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(2, 8, 64),
		Seed:        4,
	})
	if err != nil {
		return err
	}

	full := plinius.SyntheticDataset(2000, 4)
	train, test, err := full.Split(1600)
	if err != nil {
		return err
	}
	if err := f.LoadDataset(train); err != nil {
		return err
	}
	fmt.Println("training in the enclave...")
	if err := f.Train(60, nil); err != nil {
		return err
	}

	// Serve publishes the trained model to PM and builds the replicas:
	// each one is attested, receives the data key over the secure
	// channel, and restores the sealed parameters from the mirror.
	srv, err := plinius.Serve(f, plinius.ServerOptions{
		Workers:         4,
		MaxBatch:        16,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving the iteration-%d model on %d enclave replicas\n",
		srv.Iteration(), srv.Workers())

	// 32 concurrent clients classify the held-out set.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		correct int
	)
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < test.N; i += 32 {
				pred, err := srv.Classify(context.Background(), test.Image(i))
				if err != nil {
					log.Println("classify:", err)
					return
				}
				if pred.Class == test.Labels[i] {
					mu.Lock()
					correct++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("accuracy  : %.1f%% on %d held-out images\n",
		100*float64(correct)/float64(test.N), test.N)
	fmt.Printf("throughput: %.0f req/s in %.1f-image micro-batches (%d batches)\n",
		st.Throughput, st.AvgBatch, st.Batches)
	fmt.Printf("latency   : avg %v, max %v\n",
		st.AvgLatency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	return nil
}
