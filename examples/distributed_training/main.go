// Distributed training: the paper's §VIII future-work direction as a
// runnable demo.
//
// Three secure nodes — each with its own enclave, PM device and
// encrypted mirror — train data-parallel shards of the dataset and
// synchronise by model averaging after every round. One node suffers a
// power failure mid-job and recovers from its PM mirror without the
// cluster losing progress.
//
//	go run ./examples/distributed_training
package main

import (
	"fmt"
	"log"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := plinius.NewCluster(plinius.ClusterConfig{
		Workers: 3,
		Base: plinius.Config{
			ModelConfig: plinius.MNISTConfig(2, 8, 32),
			Seed:        21,
		},
	}, plinius.SyntheticDataset(3000, 21))
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d secure nodes, dataset sharded %d ways\n",
		cluster.Workers(), cluster.Workers())

	for round := 1; round <= 6; round++ {
		loss, err := cluster.TrainRound(5)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: mean loss %.4f (model iteration %d)\n",
			round, loss, cluster.Iteration())

		if round == 3 {
			fmt.Println(">>> power failure on node 1")
			if err := cluster.CrashWorker(1); err != nil {
				return err
			}
			if err := cluster.RecoverWorker(1); err != nil {
				return err
			}
			fmt.Printf(">>> node 1 recovered from its PM mirror at iteration %d\n",
				cluster.Iteration())
		}
	}

	acc, err := cluster.Infer(plinius.SyntheticDataset(500, 99))
	if err != nil {
		return err
	}
	fmt.Printf("merged model accuracy on held-out digits: %.2f%%\n", 100*acc)
	return nil
}
