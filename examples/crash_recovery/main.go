// Crash recovery: the paper's Fig. 9 scenario as a runnable demo.
//
// Training is interrupted by simulated power failures; each time, the
// enclave and DRAM state vanish and PM loses its unflushed cache lines.
// Recovery re-opens the SGX-Romulus heap, decrypts the mirrored model
// inside the enclave (mirror-in), and training resumes exactly where it
// left off — the training data is still byte-addressable in PM, so no
// storage reload happens.
//
//	go run ./examples/crash_recovery
package main

import (
	"context"
	"fmt"
	"log"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(3, 8, 32),
		Seed:        7,
	})
	if err != nil {
		return err
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(1000, 7)); err != nil {
		return err
	}

	const totalIters = 45
	crashes := []int{15, 30} // power failures at these iterations
	report := func(iter int, loss float32) {
		if iter%5 == 0 {
			fmt.Printf("iter %3d  loss %.4f\n", iter, loss)
		}
	}

	for _, crashAt := range crashes {
		if err := f.Train(ctx, plinius.StopAt(crashAt), plinius.WithProgress(report)); err != nil {
			return err
		}
		fmt.Printf(">>> power failure at iteration %d: enclave and DRAM lost\n", f.Iteration())
		f.Crash()
		if err := f.Recover(true); err != nil {
			return err
		}
		fmt.Printf(">>> recovered from PM mirror: resuming at iteration %d "+
			"(data still in PM, %d rows)\n", f.Iteration(), f.Data.N())
	}
	if err := f.Train(ctx, plinius.StopAt(totalIters), plinius.WithProgress(report)); err != nil {
		return err
	}
	fmt.Printf("training finished at iteration %d after %d crashes — "+
		"no iteration was repeated\n", f.Iteration(), len(crashes))
	return nil
}
