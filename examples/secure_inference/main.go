// Secure inference: the paper's §VI classification experiment as a
// runnable demo.
//
// A CNN is trained inside the enclave, then used to classify a held-out
// test set — still inside the enclave, so neither the model parameters
// nor the images are ever visible to the untrusted host.
//
//	go run ./examples/secure_inference
package main

import (
	"context"
	"fmt"
	"log"

	"plinius"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(2, 8, 64),
		Server:      plinius.EmlSGXPM(),
		Seed:        4,
	})
	if err != nil {
		return err
	}

	full := plinius.SyntheticDataset(2000, 4)
	train, test, err := full.Split(1500)
	if err != nil {
		return err
	}
	if err := f.LoadDataset(train); err != nil {
		return err
	}

	fmt.Println("training in the enclave...")
	err = f.Train(context.Background(), plinius.StopAt(150),
		plinius.WithProgress(func(iter int, loss float32) {
			if iter%30 == 0 {
				fmt.Printf("iter %3d  loss %.4f\n", iter, loss)
			}
		}))
	if err != nil {
		return err
	}

	acc, err := f.Infer(test)
	if err != nil {
		return err
	}
	fmt.Printf("classified %d held-out digits in-enclave: accuracy %.2f%%\n",
		test.N, 100*acc)
	fmt.Println("(the paper's 12-layer model reaches 98.52% on real MNIST)")
	return nil
}
