// Command plinius-fio regenerates the paper's Fig. 2 storage
// characterisation: sequential and random read/write throughput on the
// emulated SSD, PM(ext4+DAX) and ramdisk devices with the sync I/O
// engine (an fsync after every written block).
//
// Usage:
//
//	plinius-fio                     # the paper's grid (512 MB/thread)
//	plinius-fio -file-mb 64         # smaller files, same per-op costs
package main

import (
	"flag"
	"fmt"
	"os"

	"plinius/internal/experiments"
)

func main() {
	fileMB := flag.Int("file-mb", 512, "file size per thread in MB")
	flag.Parse()

	res, err := experiments.RunFig2([]int{1, 2, 4, 8}, *fileMB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plinius-fio:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
}
