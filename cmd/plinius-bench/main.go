// Command plinius-bench regenerates the tables and figures of the
// Plinius paper's evaluation (§VI) on the emulated substrates.
//
// Usage:
//
//	plinius-bench -exp all            # every experiment
//	plinius-bench -exp fig7           # one experiment
//	plinius-bench -exp fig7 -quick    # scaled-down fast run
//
// Experiments: fig2, fig6, fig7, table1a, table1b, fig8, fig9, fig10,
// inference, tcb, freq, coloc, shard, fleet, chaos, perf, all.
//
// -exp fleet writes its comparison (multi-host fleet vs single-host
// sharded vs monolithic serving of an over-EPC model) to -out as well
// (default BENCH_fleet.json), under the same rules as -exp perf below.
//
// -exp chaos kills one of three fleet hosts under sustained load,
// rejoins it, and writes the outcome (dropped requests — expected 0 —
// recovery time, per-phase P95, degraded/promoted state) to -out
// (default BENCH_chaos.json) under the same rules.
//
// -exp perf additionally writes a machine-readable snapshot of the
// parallel hot-path metrics (training iterations/s, seal GB/s, sharded
// P95) plus a flattened dump of the process metrics registry to the
// file named by -out (default BENCH_<exp>.json, i.e. BENCH_perf.json),
// so the perf trajectory is tracked across PRs. Only the explicit
// -exp perf run writes the file; -exp all prints the table without the
// side effect unless -out is given explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"plinius/internal/core"
	"plinius/internal/experiments"
)

// outPath is the -out flag: where -exp perf and -exp fleet write
// their snapshots.
// Empty with no explicit -out defaults to BENCH_<exp>.json, except
// under -exp all where it stays empty so the figure sweep has no file
// side effects by default.
var outPath string

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig2|fig6|fig7|table1a|table1b|fig8|fig9|fig10|inference|tcb|freq|coloc|shard|fleet|chaos|perf|all)")
	quick := flag.Bool("quick", false, "scaled-down parameters for a fast run")
	seed := flag.Int64("seed", 42, "random seed")
	root := flag.String("root", ".", "repository root (for -exp tcb)")
	flag.StringVar(&outPath, "out", "", "output file for the -exp perf machine-readable snapshot (default BENCH_<exp>.json)")
	flag.Parse()

	outExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outExplicit = true
		}
	})
	if !outExplicit && *exp != "all" {
		outPath = fmt.Sprintf("BENCH_%s.json", *exp)
	}

	if err := run(*exp, *quick, *seed, *root); err != nil {
		fmt.Fprintln(os.Stderr, "plinius-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool, seed int64, root string) error {
	runners := map[string]func(bool, int64, string) error{
		"fig2":      runFig2,
		"fig6":      runFig6,
		"fig7":      runFig7,
		"table1a":   runTable1a,
		"table1b":   runTable1b,
		"fig8":      runFig8,
		"fig9":      runFig9,
		"fig10":     runFig10,
		"inference": runInference,
		"tcb":       runTCB,
		"freq":      runFreq,
		"coloc":     runColoc,
		"shard":     runShard,
		"fleet":     runFleet,
		"chaos":     runChaos,
		"perf":      runPerf,
	}
	if exp == "all" {
		order := []string{"fig2", "fig6", "fig7", "table1a", "table1b", "fig8", "fig9", "fig10", "inference", "tcb", "freq", "coloc", "shard", "fleet", "chaos", "perf"}
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](quick, seed, root); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(quick, seed, root)
}

func runFig2(quick bool, _ int64, _ string) error {
	fileMB := 512
	if quick {
		fileMB = 32
	}
	res, err := experiments.RunFig2([]int{1, 2, 4, 8}, fileMB)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runFig6(quick bool, _ int64, _ string) error {
	sizes := []int{2, 8, 32, 64, 128, 512, 1024, 2048}
	tx := 20
	if quick {
		sizes = []int{2, 32, 256, 1024}
		tx = 5
	}
	res, err := experiments.RunFig6(sizes, tx)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func fig7Sweep(quick bool, seed int64) (experiments.Fig7Result, experiments.Fig7Result, error) {
	sizes := []int{10, 22, 33, 44, 56, 67, 78, 89, 100}
	reps := 3
	if quick {
		sizes = []int{10, 44, 100}
		reps = 1
	}
	a, err := experiments.RunFig7(core.SGXEmlPM(), sizes, reps, seed)
	if err != nil {
		return experiments.Fig7Result{}, experiments.Fig7Result{}, err
	}
	b, err := experiments.RunFig7(core.EmlSGXPM(), sizes, reps, seed)
	if err != nil {
		return experiments.Fig7Result{}, experiments.Fig7Result{}, err
	}
	return a, b, nil
}

func runFig7(quick bool, seed int64, _ string) error {
	a, b, err := fig7Sweep(quick, seed)
	if err != nil {
		return err
	}
	a.Print(os.Stdout)
	fmt.Println()
	b.Print(os.Stdout)
	return nil
}

func runTable1a(quick bool, seed int64, _ string) error {
	a, b, err := fig7Sweep(quick, seed)
	if err != nil {
		return err
	}
	experiments.ComputeTable1a(a).Print(os.Stdout)
	fmt.Println()
	experiments.ComputeTable1a(b).Print(os.Stdout)
	return nil
}

func runTable1b(quick bool, seed int64, _ string) error {
	a, b, err := fig7Sweep(quick, seed)
	if err != nil {
		return err
	}
	experiments.ComputeTable1b(a).Print(os.Stdout)
	fmt.Println()
	experiments.ComputeTable1b(b).Print(os.Stdout)
	return nil
}

func runFig8(quick bool, seed int64, _ string) error {
	cfg := experiments.Fig8Config{Seed: seed}
	if quick {
		cfg.BatchSizes = []int{16, 64}
		cfg.ConvLayers = 2
		cfg.Iters = 2
		cfg.DatasetSize = 256
	}
	for _, server := range []core.ServerProfile{core.SGXEmlPM(), core.EmlSGXPM()} {
		cfg.Server = server
		res, err := experiments.RunFig8(cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	return nil
}

func runFig9(quick bool, seed int64, _ string) error {
	cfg := experiments.Fig9Config{Seed: seed}
	if quick {
		cfg.Iters = 24
		cfg.Crashes = 2
		cfg.ConvLayers = 2
		cfg.Dataset = 256
	}
	res, err := experiments.RunFig9(cfg)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runFig10(quick bool, seed int64, _ string) error {
	cfg := experiments.Fig10Config{Seed: seed}
	if quick {
		cfg.TargetIters = 16
		cfg.ItersPerInterval = 2
		cfg.ConvLayers = 1
		cfg.Dataset = 256
	}
	res, err := experiments.RunFig10(cfg)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runInference(quick bool, seed int64, _ string) error {
	cfg := experiments.InferenceConfig{Seed: seed}
	if quick {
		cfg.Iters = 40
		cfg.Train = 600
		cfg.Test = 200
	}
	res, err := experiments.RunInference(cfg)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runTCB(_ bool, _ int64, root string) error {
	res, err := experiments.RunTCB(root)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runColoc(quick bool, seed int64, _ string) error {
	// 56 MB of parameters + 15 MB overhead per tenant: one fits the
	// 93.5 MB usable EPC, two overcommit it — the shared knee.
	sizeMB, tenants, reps := 56, 3, 3
	if quick {
		sizeMB, tenants, reps = 40, 2, 1
	}
	res, err := experiments.RunColoc(core.SGXEmlPM(), sizeMB, tenants, reps, seed)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runShard(quick bool, seed int64, _ string) error {
	// A model ~2x the serving hosts' usable EPC: monolithic all-misses
	// its restore, the shard pipeline streams within the budget. Quick
	// mode scales the same geometry down (6 MB model, 3 MB hosts).
	sizeMB, epcMB, batches, batch := 187, 0, 2, 1
	if quick {
		sizeMB, epcMB = 6, 3
	}
	res, err := experiments.RunShard(core.SGXEmlPM(), sizeMB, epcMB, batches, batch, seed)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}

func runFleet(quick bool, seed int64, _ string) error {
	// A model over any single host's EPC, served monolithic (the knee),
	// sharded on one host (streams PM), and across a 3-host fleet
	// (resident, zero faults). Quick mode scales the geometry down to a
	// 6 MB model on 5 MB hosts.
	sizeMB, epcMB, hosts, batches, batch := 187, 0, 3, 4, 1
	if quick {
		sizeMB, epcMB = 6, 5
	}
	res, err := experiments.RunFleet(core.SGXEmlPM(), sizeMB, epcMB, hosts, batches, batch, seed)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runChaos(quick bool, seed int64, _ string) error {
	// Kill 1 of 3 hosts under sustained load, rejoin it later. The host
	// budget is chosen so the two survivors cannot hold the model
	// resident — the outage exercises the degraded-streaming rung, and
	// the rejoin the promotion back. Quick mode scales the geometry down
	// to a 6 MB model on 4 MB hosts.
	sizeMB, epcMB, hosts, batches, batch := 187, 0, 3, 24, 1
	if quick {
		sizeMB, epcMB, batches = 6, 4, 18
	}
	res, err := experiments.RunChaos(core.SGXEmlPM(), sizeMB, epcMB, hosts, batches, batch, seed)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runPerf(quick bool, seed int64, _ string) error {
	res, err := experiments.RunPerf(experiments.PerfConfig{Quick: quick, Seed: seed})
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", outPath, err)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func runFreq(quick bool, seed int64, _ string) error {
	freqs := []int{1, 2, 5, 10}
	iters := 23
	if quick {
		freqs = []int{1, 5}
		iters = 13
	}
	res, err := experiments.RunFreqAblation(freqs, iters, seed)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	return nil
}
