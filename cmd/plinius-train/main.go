// Command plinius-train trains a CNN with the Plinius framework:
// secure training in the emulated SGX enclave with encrypted mirroring
// to emulated persistent memory, with optional crash injection to
// demonstrate recovery.
//
// Training is cancellable: SIGINT/SIGTERM stops the run at a
// mirror-consistent boundary, so an interrupted run is always
// resumable from its last mirrored iteration.
//
// Usage:
//
//	plinius-train -iters 100 -layers 5 -batch 64 -crash-every 40
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"plinius"
)

func main() {
	var (
		iters      = flag.Int("iters", 100, "training iterations")
		layers     = flag.Int("layers", 5, "convolutional layers")
		filters    = flag.Int("filters", 8, "filters per conv layer")
		batch      = flag.Int("batch", 64, "batch size")
		dataset    = flag.Int("dataset", 2000, "synthetic training samples")
		crashEvery = flag.Int("crash-every", 0, "inject a crash every N iterations (0 = never)")
		mirrorFreq = flag.Int("mirror-freq", 1, "mirror every N iterations (-1 disables)")
		seed       = flag.Int64("seed", 42, "random seed")
		server     = flag.String("server", "sgx-emlPM", "server profile: sgx-emlPM or emlSGX-PM")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, *iters, *layers, *filters, *batch, *dataset, *crashEvery, *mirrorFreq, *seed, *server)
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Println("interrupted: training stopped at a mirror-consistent boundary; PM holds the last mirrored iteration")
	case err != nil:
		fmt.Fprintln(os.Stderr, "plinius-train:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, iters, layers, filters, batch, dataset, crashEvery, mirrorFreq int, seed int64, server string) error {
	profile := plinius.SGXEmlPM()
	if server == "emlSGX-PM" {
		profile = plinius.EmlSGXPM()
	}
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(layers, filters, batch),
		Server:      profile,
		MirrorFreq:  mirrorFreq,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("model: %d conv layers, %d params (%.1f MB), server %s\n",
		layers, f.Net.NumParams(), float64(f.Net.ParamBytes())/(1<<20), profile.Name)

	ds := plinius.SyntheticDataset(dataset, seed)
	if err := f.LoadDataset(ds); err != nil {
		return err
	}
	fmt.Printf("dataset: %d samples loaded to encrypted byte-addressable PM\n", ds.N)

	progress := plinius.WithProgress(func(iter int, loss float32) {
		if iter%10 == 0 || iter == iters {
			fmt.Printf("iter %4d  loss %.4f\n", iter, loss)
		}
	})
	sinceCrash := 0
	for f.Iteration() < iters {
		target := f.Iteration() + 1
		if err := f.Train(ctx, plinius.StopAt(target), progress); err != nil {
			return err
		}
		sinceCrash++
		if crashEvery > 0 && sinceCrash >= crashEvery && f.Iteration() < iters {
			fmt.Printf("--- CRASH at iteration %d (power failure) ---\n", f.Iteration())
			f.Crash()
			if err := f.Recover(true); err != nil {
				return err
			}
			fmt.Printf("--- recovered: resuming at iteration %d ---\n", f.Iteration())
			sinceCrash = 0
		}
	}
	fmt.Printf("training complete at iteration %d\n", f.Iteration())
	return nil
}
