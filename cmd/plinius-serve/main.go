// Command plinius-serve trains a CNN in the enclave and serves
// classification requests from it: dynamic micro-batching in front of
// a pool of enclave worker replicas, each restored from an immutable
// published model snapshot in PM, with deadline-aware admission
// control (a full queue rejects instead of blocking).
//
// With -addr it exposes a minimal HTTP endpoint:
//
//	POST /classify {"image":[784 floats in [0,1]]}
//	  -> {"class":7,"latency_us":412,"batch_size":5,"worker":2,"model_version":1}
//	POST /refresh  -> roll all replicas to the latest published model
//	POST /rotate   -> rotate the data key end to end, no serving gap
//	GET  /stats    -> serving counters (plus a per-host fleet section
//	                  with -fleet-hosts)
//
// With -fleet-hosts N the model is served across a fleet of N hosts:
// its shard plan is bin-packed over their EPC headrooms (-fleet-epc
// sets each host's budget in MiB) and stage hand-offs cross attested
// inter-host channels. A model that cannot be packed at all starts a
// degraded listener whose /classify answers 503 with a distinct
// "fleet placement infeasible" body, so clients can tell a capacity
// misconfiguration from a transient overload.
//
//	GET  /metrics  -> Prometheus text exposition (process + server registries)
//	GET  /trace    -> JSON dump of the N slowest requests with per-stage spans
//	GET  /healthz
//
// With -pprof the mux additionally mounts net/http/pprof under
// /debug/pprof/; batch dispatch and shard stage goroutines carry pprof
// labels (request_id, worker, shard), so CPU profiles attribute enclave
// compute to pipeline stages.
//
// SIGINT/SIGTERM shuts down gracefully: the HTTP listener stops, the
// request queue drains (every accepted request is answered), and the
// replica enclaves are closed.
//
// Without -addr it runs an in-process load generator and prints the
// throughput/latency baseline:
//
//	plinius-serve -workers 4 -max-batch 32 -requests 20000 -clients 64
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"plinius"
)

func main() {
	var (
		iters      = flag.Int("iters", 50, "training iterations before serving")
		layers     = flag.Int("layers", 2, "convolutional layers")
		filters    = flag.Int("filters", 8, "filters per conv layer")
		batch      = flag.Int("batch", 64, "training batch size")
		dataset    = flag.Int("dataset", 2000, "synthetic training samples")
		seed       = flag.Int64("seed", 42, "random seed")
		workers    = flag.Int("workers", 4, "enclave inference replicas; 0 auto-sizes from the host's remaining EPC headroom")
		shards     = flag.Int("shards", 0, "pipeline the model across at most this many shard enclaves; -1 shards automatically when a whole replica exceeds the host's EPC headroom")
		fleetHosts = flag.Int("fleet-hosts", 0, "serve across a fleet of this many hosts: the model's shard plan is bin-packed over their EPC headrooms, with attested inter-host hand-off channels (0 disables)")
		fleetEPC   = flag.Int("fleet-epc", 0, "per-fleet-host usable EPC in MiB (0 uses the paper's 93.5 MiB budget)")
		maxEPC     = flag.Float64("max-epc-pressure", 0, "shed requests while the host EPC is overcommitted past this fraction (0 disables)")
		quantized  = flag.Bool("quantized", false, "serve the int8-quantized snapshot variant: ~4x smaller sealed payloads and replica EPC footprints (whole-model replica pool only)")
		maxBatch   = flag.Int("max-batch", 32, "micro-batch size cap")
		maxLatency = flag.Duration("max-latency", 2*time.Millisecond, "micro-batch queue-latency cap")
		queueDepth = flag.Int("queue-depth", 1024, "request queue bound; beyond it requests are rejected (ErrOverloaded)")
		addr       = flag.String("addr", "", "HTTP listen address (e.g. :8080); empty runs the load generator")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the HTTP mux")
		requests   = flag.Int("requests", 10000, "load-generator request count")
		clients    = flag.Int("clients", 64, "load-generator concurrent clients")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *workers == 0 {
		*workers = plinius.WorkersAuto
	}
	if *shards < 0 {
		*shards = plinius.ShardAuto
	}
	err := run(ctx, *iters, *layers, *filters, *batch, *dataset, *seed,
		*workers, *shards, *fleetHosts, *fleetEPC, *maxBatch, *maxLatency, *queueDepth, *maxEPC, *quantized, *addr, *pprofOn, *requests, *clients)
	switch {
	case errors.Is(err, context.Canceled):
		// Interrupted before or during serving: the shutdown was
		// graceful (training stopped mirror-consistently, accepted
		// requests drained), so exit cleanly like the serving path.
		fmt.Println("interrupted: shut down gracefully")
	case err != nil:
		fmt.Fprintln(os.Stderr, "plinius-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, iters, layers, filters, batch, dataset int, seed int64,
	workers, shards, fleetHosts, fleetEPC, maxBatch int, maxLatency time.Duration, queueDepth int, maxEPC float64, quantized bool, addr string, pprofOn bool, requests, clients int) error {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(layers, filters, batch),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	ds := plinius.SyntheticDataset(dataset, seed)
	if err := f.LoadDataset(ds); err != nil {
		return err
	}
	fmt.Printf("training %d iterations in the enclave...\n", iters)
	if err := f.Train(ctx, plinius.StopAt(iters)); err != nil {
		return err
	}

	var fleet []*plinius.Host
	if fleetHosts > 0 {
		var hostOpts []plinius.HostOption
		if fleetEPC > 0 {
			hostOpts = append(hostOpts, plinius.WithHostEPC(fleetEPC<<20))
		}
		fleet = make([]*plinius.Host, fleetHosts)
		for i := range fleet {
			fleet[i] = plinius.NewHost(plinius.SGXEmlPM(), hostOpts...)
		}
	}
	srv, err := plinius.Serve(ctx, f, plinius.ServerOptions{
		Workers:         workers,
		Shards:          shards,
		Fleet:           fleet,
		MaxBatch:        maxBatch,
		MaxQueueLatency: maxLatency,
		QueueDepth:      queueDepth,
		Seed:            seed,
		MaxEPCPressure:  maxEPC,
		Quantized:       quantized,
	})
	if err != nil {
		// An infeasible placement is an operator-visible capacity
		// condition, not a crash: with an HTTP address, come up anyway
		// and answer requests with a distinct 503 body until the fleet
		// is resized.
		if errors.Is(err, plinius.ErrInfeasiblePlacement) && addr != "" {
			return serveInfeasible(ctx, addr, err)
		}
		return err
	}
	if srv.FleetSize() > 0 {
		fmt.Printf("serving model version %d (iteration %d) across a %d-host fleet: %d replica group(s) of %d shard(s), window %d, max batch %d, queue depth %d\n",
			srv.Version(), srv.Iteration(), srv.FleetSize(), srv.FleetGroups(), srv.Shards(), srv.Workers(), maxBatch, queueDepth)
		for _, hr := range srv.FleetHostReports() {
			fmt.Printf("  host %d: %d bytes resident / %d usable EPC, shards %v\n",
				hr.Host, hr.ResidentBytes, hr.UsableEPC, hr.Shards)
		}
	} else if srv.Shards() > 0 {
		fmt.Printf("serving model version %d (iteration %d) pipelined across %d shard enclaves (window %d, streaming=%v, max batch %d, queue depth %d)\n",
			srv.Version(), srv.Iteration(), srv.Shards(), srv.Workers(), srv.ShardsStreaming(), maxBatch, queueDepth)
	} else {
		fmt.Printf("serving model version %d (iteration %d) on %d enclave replicas (%s, max batch %d, max queue latency %v, queue depth %d, EPC pressure %.2f)\n",
			srv.Version(), srv.Iteration(), srv.Workers(), srv.Precision(), maxBatch, maxLatency, queueDepth, srv.EPCPressure())
	}

	if addr != "" {
		err = serveHTTP(ctx, srv, addr, pprofOn)
	} else {
		err = loadgen(ctx, srv, ds, requests, clients)
	}
	// Graceful teardown either way: drain everything accepted, then
	// close the replica enclaves.
	if cerr := srv.Close(); cerr != nil && !errors.Is(cerr, plinius.ErrServerClosed) && err == nil {
		err = cerr
	}
	return err
}

// serveInfeasible is the degraded HTTP server run when the fleet
// placement planner found no packing of the model onto the configured
// hosts: /classify answers with a distinct 503 body naming the
// condition (clients can tell "resize the fleet" from a transient
// overload), /healthz reports the degraded state, and everything runs
// until ctx is cancelled so the operator can probe the endpoints.
func serveInfeasible(ctx context.Context, addr string, perr error) error {
	body := fmt.Sprintf("fleet placement infeasible: %v", perr)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, body, http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "degraded: "+body, http.StatusServiceUnavailable)
	})
	hs := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("%s\nlistening on %s in degraded mode (503 on /classify until the fleet is resized)\n", body, addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(shutCtx)
}

// classifyStatus maps a serving error to an HTTP status. EPC-pressure
// shedding is checked before the generic overload path it wraps: it is
// a capacity condition of the machine, not of the queue, so it maps to
// 503 (with Retry-After, see the handler) rather than 429.
func classifyStatus(err error) int {
	switch {
	case errors.Is(err, plinius.ErrEPCPressure):
		return http.StatusServiceUnavailable
	case errors.Is(err, plinius.ErrFleetUnavailable), errors.Is(err, plinius.ErrHostDown):
		// Fleet hosts are down and a replan is in progress (or has run
		// out of survivors): transient, distinct from overload — clients
		// back off and retry once the fleet rejoins or finishes
		// replanning.
		return http.StatusServiceUnavailable
	case errors.Is(err, plinius.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, plinius.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, plinius.ErrBadImage):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// serveHTTP exposes the server over a minimal JSON HTTP API until ctx
// is cancelled, then shuts the listener down gracefully.
func serveHTTP(ctx context.Context, srv *plinius.Server, addr string, pprofOn bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Image []float32 `json:"image"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pred, err := srv.Classify(r.Context(), req.Image)
		if err != nil {
			switch {
			case errors.Is(err, plinius.ErrEPCPressure):
				// Shed for EPC pressure: the host is overcommitted, not
				// the queue — tell clients when to come back.
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, plinius.ErrFleetUnavailable), errors.Is(err, plinius.ErrHostDown):
				// Fleet outage in progress: the replan completes (or a
				// host rejoins) on the order of seconds, not instantly.
				w.Header().Set("Retry-After", "2")
			}
			http.Error(w, err.Error(), classifyStatus(err))
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"class":         pred.Class,
			"latency_us":    pred.Latency.Microseconds(),
			"batch_size":    pred.BatchSize,
			"worker":        pred.Worker,
			"model_version": pred.ModelVersion,
		})
	})
	mux.HandleFunc("POST /refresh", func(w http.ResponseWriter, r *http.Request) {
		iter, err := srv.Refresh(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"iteration": iter, "model_version": srv.Version()})
	})
	mux.HandleFunc("POST /rotate", func(w http.ResponseWriter, r *http.Request) {
		ver, err := srv.RotateKey(r.Context())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"model_version": ver})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st := srv.Stats()
		stats := map[string]any{
			"precision":            st.Precision,
			"requests":             st.Requests,
			"rejected":             st.Rejected,
			"expired":              st.Expired,
			"epc_shed":             st.EPCShed,
			"epc_pressure":         st.EPCPressure,
			"host_resident_bytes":  st.HostResidentBytes,
			"batches":              st.Batches,
			"avg_batch":            st.AvgBatch,
			"avg_latency_us":       st.AvgLatency.Microseconds(),
			"p50_latency_us":       st.P50Latency.Microseconds(),
			"p95_latency_us":       st.P95Latency.Microseconds(),
			"p99_latency_us":       st.P99Latency.Microseconds(),
			"max_latency_us":       st.MaxLatency.Microseconds(),
			"req_per_sec":          st.Throughput,
			"uptime_sec":           st.Uptime.Seconds(),
			"model_version":        srv.Version(),
			"shards":               srv.Shards(),
			"shard_streaming":      srv.ShardsStreaming(),
			"shard_pm_restores":    st.ShardRestores,
			"shard_stalls":         st.ShardStalls,
			"shard_prefetch_waits": st.ShardPrefetchWaits,
			"shard_prefetched":     st.ShardPrefetched,
		}
		if st.FleetHosts > 0 {
			// Per-host fleet section: each host's resident working set,
			// EPC pressure and the shard ranges placed on it.
			stats["fleet_hosts"] = st.FleetHosts
			stats["fleet_groups"] = st.FleetGroups
			stats["fleet_handoffs"] = st.FleetHandoffs
			stats["fleet_handoff_bytes"] = st.FleetHandoffBytes
			stats["fleet_hosts_down"] = st.FleetHostsDown
			stats["fleet_degraded"] = st.FleetDegraded
			stats["fleet_replans"] = st.FleetReplans
			stats["fleet_evicted_groups"] = st.FleetEvictedGroups
			stats["fleet_handoff_retries"] = st.FleetHandoffRetries
			stats["fleet"] = srv.FleetHostReports()
		}
		json.NewEncoder(w).Encode(stats)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		// Two registries, one exposition: the process-wide layer
		// metrics (enclave paging, sealing, PM, mirror, compute) and
		// the server's own (request counters, latency histogram, and
		// in shard mode the per-shard pipeline series).
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := plinius.Metrics().WritePrometheus(w); err != nil {
			return
		}
		_ = srv.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"slowest": srv.SlowTraces()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		reports := srv.FleetHostReports()
		if reports == nil {
			// Single-host modes: the process answering is the health.
			fmt.Fprintln(w, "ok")
			return
		}
		type hostHealth struct {
			Host int  `json:"host"`
			Up   bool `json:"up"`
		}
		hosts := make([]hostHealth, len(reports))
		down := 0
		for i, r := range reports {
			hosts[i] = hostHealth{Host: r.Host, Up: !r.Down}
			if r.Down {
				down++
			}
		}
		degraded := srv.FleetDegraded()
		status := "ok"
		code := http.StatusOK
		switch {
		case down == len(reports):
			// Nothing left to serve on: the health endpoint itself says
			// unavailable so balancers stop sending traffic here.
			status = "down"
			code = http.StatusServiceUnavailable
		case degraded:
			// Still serving (streaming on survivors) — healthy enough to
			// keep traffic, but the state is visible to operators.
			status = "degraded"
		case down > 0:
			status = "partial"
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{
			"status":     status,
			"degraded":   degraded,
			"hosts_down": down,
			"hosts":      hosts,
		})
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}

	hs := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("listening on %s (SIGINT/SIGTERM drains and exits)\n", addr)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: draining in-flight requests...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	return nil
}

// loadgen drives the in-process server with concurrent clients and
// prints the serving baseline. Rejected requests (admission control)
// are counted, not treated as failures.
func loadgen(ctx context.Context, srv *plinius.Server, ds *plinius.Dataset, requests, clients int) error {
	fmt.Printf("load generator: %d requests from %d concurrent clients\n", requests, clients)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < requests; i += clients {
				if ctx.Err() != nil {
					return
				}
				_, err := srv.Classify(ctx, ds.Image(i%ds.N))
				switch {
				case err == nil, errors.Is(err, plinius.ErrOverloaded):
					// Served or shed; both are expected under load.
				case errors.Is(err, context.Canceled):
					return
				default:
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	elapsed := time.Since(start)
	st := srv.Stats()
	fmt.Printf("served %d requests in %v (%d rejected by admission control, %d shed for EPC pressure)\n",
		st.Requests, elapsed.Round(time.Millisecond), st.Rejected, st.EPCShed)
	fmt.Printf("  throughput : %.0f req/s\n", float64(st.Requests)/elapsed.Seconds())
	fmt.Printf("  micro-batch: %.1f avg over %d batches\n", st.AvgBatch, st.Batches)
	fmt.Printf("  latency    : avg %v, p50 %v, p95 %v, p99 %v, max %v\n",
		st.AvgLatency.Round(time.Microsecond), st.P50Latency.Round(time.Microsecond),
		st.P95Latency.Round(time.Microsecond), st.P99Latency.Round(time.Microsecond),
		st.MaxLatency.Round(time.Microsecond))
	if st.FleetHosts > 0 {
		fmt.Printf("  fleet      : %d hosts, %d groups, %d shards, %d hand-offs (%d bytes)\n",
			st.FleetHosts, st.FleetGroups, srv.Shards(), st.FleetHandoffs, st.FleetHandoffBytes)
	} else if srv.Shards() > 0 {
		fmt.Printf("  sharding   : %d shards, window %d, streaming=%v, %d PM range restores\n",
			srv.Shards(), srv.Workers(), srv.ShardsStreaming(), srv.ShardRestores())
	}
	return nil
}
