// Command plinius-serve trains a CNN in the enclave and serves
// classification requests from it: dynamic micro-batching in front of
// a pool of enclave worker replicas, each restored from the encrypted
// PM mirror.
//
// With -addr it exposes a minimal HTTP endpoint:
//
//	POST /classify {"image":[784 floats in [0,1]]}
//	  -> {"class":7,"latency_us":412,"batch_size":5,"worker":2}
//	GET  /stats -> serving counters
//	GET  /healthz
//
// Without -addr it runs an in-process load generator and prints the
// throughput/latency baseline:
//
//	plinius-serve -workers 4 -max-batch 32 -requests 20000 -clients 64
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"plinius"
)

func main() {
	var (
		iters      = flag.Int("iters", 50, "training iterations before serving")
		layers     = flag.Int("layers", 2, "convolutional layers")
		filters    = flag.Int("filters", 8, "filters per conv layer")
		batch      = flag.Int("batch", 64, "training batch size")
		dataset    = flag.Int("dataset", 2000, "synthetic training samples")
		seed       = flag.Int64("seed", 42, "random seed")
		workers    = flag.Int("workers", 4, "enclave inference replicas")
		maxBatch   = flag.Int("max-batch", 32, "micro-batch size cap")
		maxLatency = flag.Duration("max-latency", 2*time.Millisecond, "micro-batch queue-latency cap")
		addr       = flag.String("addr", "", "HTTP listen address (e.g. :8080); empty runs the load generator")
		requests   = flag.Int("requests", 10000, "load-generator request count")
		clients    = flag.Int("clients", 64, "load-generator concurrent clients")
	)
	flag.Parse()

	if err := run(*iters, *layers, *filters, *batch, *dataset, *seed,
		*workers, *maxBatch, *maxLatency, *addr, *requests, *clients); err != nil {
		fmt.Fprintln(os.Stderr, "plinius-serve:", err)
		os.Exit(1)
	}
}

func run(iters, layers, filters, batch, dataset int, seed int64,
	workers, maxBatch int, maxLatency time.Duration, addr string, requests, clients int) error {
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(layers, filters, batch),
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	ds := plinius.SyntheticDataset(dataset, seed)
	if err := f.LoadDataset(ds); err != nil {
		return err
	}
	fmt.Printf("training %d iterations in the enclave...\n", iters)
	if err := f.Train(iters, nil); err != nil {
		return err
	}

	srv, err := plinius.Serve(f, plinius.ServerOptions{
		Workers:         workers,
		MaxBatch:        maxBatch,
		MaxQueueLatency: maxLatency,
		Seed:            seed,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving iteration-%d model on %d enclave replicas (max batch %d, max queue latency %v)\n",
		srv.Iteration(), srv.Workers(), maxBatch, maxLatency)

	if addr != "" {
		return serveHTTP(srv, addr)
	}
	return loadgen(srv, ds, requests, clients)
}

// serveHTTP exposes the server over a minimal JSON HTTP API.
func serveHTTP(srv *plinius.Server, addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /classify", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Image []float32 `json:"image"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		pred, err := srv.Classify(r.Context(), req.Image)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, plinius.ErrServerClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, plinius.ErrBadImage):
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"class":      pred.Class,
			"latency_us": pred.Latency.Microseconds(),
			"batch_size": pred.BatchSize,
			"worker":     pred.Worker,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st := srv.Stats()
		json.NewEncoder(w).Encode(map[string]any{
			"requests":       st.Requests,
			"batches":        st.Batches,
			"avg_batch":      st.AvgBatch,
			"avg_latency_us": st.AvgLatency.Microseconds(),
			"max_latency_us": st.MaxLatency.Microseconds(),
			"req_per_sec":    st.Throughput,
			"uptime_sec":     st.Uptime.Seconds(),
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	fmt.Printf("listening on %s\n", addr)
	return http.ListenAndServe(addr, mux)
}

// loadgen drives the in-process server with concurrent clients and
// prints the serving baseline.
func loadgen(srv *plinius.Server, ds *plinius.Dataset, requests, clients int) error {
	fmt.Printf("load generator: %d requests from %d concurrent clients\n", requests, clients)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < requests; i += clients {
				if _, err := srv.Classify(context.Background(), ds.Image(i%ds.N)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	elapsed := time.Since(start)
	st := srv.Stats()
	fmt.Printf("served %d requests in %v\n", st.Requests, elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput : %.0f req/s\n", float64(requests)/elapsed.Seconds())
	fmt.Printf("  micro-batch: %.1f avg over %d batches\n", st.AvgBatch, st.Batches)
	fmt.Printf("  latency    : avg %v, max %v\n",
		st.AvgLatency.Round(time.Microsecond), st.MaxLatency.Round(time.Microsecond))
	return nil
}
