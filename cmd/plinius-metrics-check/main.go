// Command plinius-metrics-check validates a Prometheus text exposition
// scraped from a plinius-serve /metrics endpoint.
//
// Usage:
//
//	curl -s localhost:8080/metrics | plinius-metrics-check \
//	    -require serve_requests_total -require epc_page_swaps_total
//	plinius-metrics-check -in metrics.txt -require pm_bytes_stored_total
//
// The exposition is linted with the same parser the obs package tests
// use: every sample must belong to a # TYPE-declared family, carry a
// well-formed label set, and no two samples may share a name and label
// set (no duplicate or unlabeled-collision series). Each -require flag
// names a metric family that must be present; the command exits
// nonzero on a lint violation or a missing family. This is the CI
// smoke gate for the /metrics surface.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"plinius/internal/obs"
)

// requireList collects repeated -require flags; each value may also be
// a comma-separated list.
type requireList []string

func (r *requireList) String() string { return strings.Join(*r, ",") }

func (r *requireList) Set(v string) error {
	for _, f := range strings.Split(v, ",") {
		if f = strings.TrimSpace(f); f != "" {
			*r = append(*r, f)
		}
	}
	return nil
}

func main() {
	var require requireList
	in := flag.String("in", "-", "exposition file to check (- for stdin)")
	quiet := flag.Bool("quiet", false, "suppress the family listing on success")
	flag.Var(&require, "require", "metric family that must be present (repeatable, comma-separable)")
	flag.Parse()

	if err := run(*in, require, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "plinius-metrics-check:", err)
		os.Exit(1)
	}
}

func run(in string, require []string, quiet bool) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	families, err := obs.LintPrometheus(r)
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	var missing []string
	for _, name := range require {
		if _, ok := families[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("missing required families: %s", strings.Join(missing, ", "))
	}
	if !quiet {
		names := make([]string, 0, len(families))
		for name := range families {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("ok: %d families", len(names))
		if len(require) > 0 {
			fmt.Printf(", %d required present", len(require))
		}
		fmt.Println()
		for _, name := range names {
			fmt.Printf("  %s %s\n", families[name], name)
		}
	}
	return nil
}
