// Command plinius-spot simulates Plinius training on an AWS EC2 spot
// instance (paper Fig. 10): a price trace is replayed against a maximum
// bid; the training process is killed when outbid and resumed — with
// full model recovery from PM — when the price drops.
//
// Usage:
//
//	plinius-spot -bid 0.0955 -iters 100
//	plinius-spot -trace prices.csv -bid 0.10
package main

import (
	"flag"
	"fmt"
	"os"

	"plinius"
)

func main() {
	var (
		bid       = flag.Float64("bid", 0.0955, "maximum bid price")
		iters     = flag.Int("iters", 60, "target training iterations")
		perIvl    = flag.Int("iters-per-interval", 4, "iterations per 5-minute interval")
		layers    = flag.Int("layers", 3, "convolutional layers")
		batch     = flag.Int("batch", 32, "batch size")
		dataset   = flag.Int("dataset", 1000, "synthetic training samples")
		tracePath = flag.String("trace", "", "CSV price trace (minutes,price); empty = synthetic")
		seed      = flag.Int64("seed", 42, "random seed")
		resilient = flag.Bool("resilient", true, "enable the mirroring mechanism")
	)
	flag.Parse()

	if err := run(*bid, *iters, *perIvl, *layers, *batch, *dataset, *tracePath, *seed, *resilient); err != nil {
		fmt.Fprintln(os.Stderr, "plinius-spot:", err)
		os.Exit(1)
	}
}

func run(bid float64, iters, perIvl, layers, batch, dataset int, tracePath string, seed int64, resilient bool) error {
	var trace plinius.SpotTrace
	if tracePath != "" {
		fh, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer fh.Close()
		if trace, err = plinius.ParseSpotTrace(fh); err != nil {
			return err
		}
	} else {
		trace = plinius.SyntheticSpotTrace(4*iters/perIvl, 0.09, 0.004, seed+5)
	}

	mirrorFreq := 1
	if !resilient {
		mirrorFreq = -1
	}
	f, err := plinius.New(plinius.Config{
		ModelConfig: plinius.MNISTConfig(layers, 4, batch),
		Server:      plinius.EmlSGXPM(),
		MirrorFreq:  mirrorFreq,
		Seed:        seed,
	})
	if err != nil {
		return err
	}
	if err := f.LoadDataset(plinius.SyntheticDataset(dataset, seed)); err != nil {
		return err
	}

	res, err := plinius.RunSpot(trace, plinius.SpotConfig{
		MaxBid:           bid,
		TargetIters:      iters,
		ItersPerInterval: perIvl,
	}, &plinius.SpotTrainer{F: f})
	if err != nil {
		return err
	}

	fmt.Printf("trace: %d intervals, %d interruptions at bid %.4f\n",
		len(trace.Prices), trace.Interruptions(bid), bid)
	fmt.Printf("executed %d iterations, completed=%v, interruptions hit=%d\n",
		res.Iterations, res.Completed, res.Interruptions)
	fmt.Printf("final model iteration: %d (crash resilient: %v)\n", f.Iteration(), resilient)
	fmt.Print("state curve: ")
	for _, s := range res.States {
		if s.Running {
			fmt.Print("1")
		} else {
			fmt.Print("0")
		}
	}
	fmt.Println()
	if n := len(res.Losses); n > 0 {
		fmt.Printf("loss: first %.4f, last %.4f\n", res.Losses[0], res.Losses[n-1])
	}
	return nil
}
