package obs

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exact text exposition of a fixed
// registry: HELP/TYPE headers, sorted families and series, escaped
// label values, cumulative histogram buckets with le in seconds, and
// the _sum/_count pair.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("epc_page_swaps_total", "EPC pages swapped.", Label{"enclave", "train"}).Add(12)
	r.Counter("epc_page_swaps_total", "EPC pages swapped.", Label{"enclave", "replica"}).Add(3)
	r.Gauge("serve_epc_pressure", "Host EPC overcommit fraction.").Set(0.25)
	r.Counter("weird_total", "Label escaping.", Label{"path", `a"b\c`}).Inc()
	h := r.Histogram("serve_request_seconds", "Request latency.")
	h.Observe(3 * time.Microsecond)    // bucket 2: (2,4] µs
	h.Observe(3 * time.Microsecond)    // bucket 2 again
	h.Observe(1000 * time.Microsecond) // bucket 10: (512,1024] µs

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP epc_page_swaps_total EPC pages swapped.
# TYPE epc_page_swaps_total counter
epc_page_swaps_total{enclave="replica"} 3
epc_page_swaps_total{enclave="train"} 12
# HELP serve_epc_pressure Host EPC overcommit fraction.
# TYPE serve_epc_pressure gauge
serve_epc_pressure 0.25
# HELP serve_request_seconds Request latency.
# TYPE serve_request_seconds histogram
serve_request_seconds_bucket{le="1e-06"} 0
serve_request_seconds_bucket{le="2e-06"} 0
serve_request_seconds_bucket{le="4e-06"} 2
serve_request_seconds_bucket{le="8e-06"} 2
serve_request_seconds_bucket{le="1.6e-05"} 2
serve_request_seconds_bucket{le="3.2e-05"} 2
serve_request_seconds_bucket{le="6.4e-05"} 2
serve_request_seconds_bucket{le="0.000128"} 2
serve_request_seconds_bucket{le="0.000256"} 2
serve_request_seconds_bucket{le="0.000512"} 2
serve_request_seconds_bucket{le="0.001024"} 3
serve_request_seconds_bucket{le="+Inf"} 3
serve_request_seconds_sum 0.001006
serve_request_seconds_count 3
# HELP weird_total Label escaping.
# TYPE weird_total counter
weird_total{path="a\"b\\c"} 1
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The encoder's own output must satisfy the linter the CI smoke
	// job uses.
	if _, err := LintPrometheus(strings.NewReader(b.String())); err != nil {
		t.Fatalf("golden output fails lint: %v", err)
	}
}

// TestLintPrometheusRejects: the linter catches the failure classes
// the CI smoke job exists to guard against.
func TestLintPrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"undeclared series", "foo_total 1\n"},
		{"duplicate series", "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"duplicate reordered labels", "# TYPE a counter\na{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 2\n"},
		{"bad value", "# TYPE a counter\na one\n"},
		{"bad label name", "# TYPE a counter\na{0x=\"1\"} 1\n"},
		{"unquoted label value", "# TYPE a counter\na{x=1} 1\n"},
		{"type after samples", "# TYPE a counter\na 1\n# TYPE a counter\n"},
		{"unknown type", "# TYPE a foo\na 1\n"},
	}
	for _, c := range cases {
		if _, err := LintPrometheus(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: lint accepted %q", c.name, c.text)
		}
	}
	ok := "# HELP a help text\n# TYPE a histogram\na_bucket{le=\"+Inf\"} 1\na_sum 0.5\na_count 1\n# TYPE b counter\nb{x=\"v\"} 3 1712000000\n"
	types, err := LintPrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("lint rejected valid exposition: %v", err)
	}
	if types["a"] != "histogram" || types["b"] != "counter" {
		t.Fatalf("types = %v", types)
	}
}
