package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text exposition: every sample
// line must parse, belong to a family declared with a preceding # TYPE
// line (histogram and summary suffixes included), carry a well-formed
// label set, and no two samples may share a name and label set. It
// returns the set of family names seen, and the first violation as an
// error. This is the check the CI smoke job runs against a live
// /metrics endpoint.
func LintPrometheus(r io.Reader) (map[string]string, error) {
	types := make(map[string]string)  // family → type
	seen := make(map[string]struct{}) // name+labelset → dup guard
	sampled := make(map[string]bool)  // family → has samples
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				// Other comments are legal and ignored.
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE line without a type", lineNo)
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
				}
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE declaration for %s", lineNo, name)
				}
				if sampled[name] {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam, ok := sampleFamily(name, types)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no # TYPE declaration", lineNo, name)
		}
		sampled[fam] = true
		if _, err := parseSampleValue(value); err != nil {
			return nil, fmt.Errorf("line %d: bad value %q for %s", lineNo, value, name)
		}
		key := name + "{" + canonicalLabels(labels) + "}"
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return types, nil
}

// sampleFamily resolves a sample name to its declared family, peeling
// histogram/summary suffixes when the base family is declared with a
// matching type.
func sampleFamily(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suf)
		if !found {
			continue
		}
		typ, ok := types[base]
		if !ok {
			continue
		}
		if typ == "histogram" || (typ == "summary" && suf != "_bucket") {
			return base, true
		}
	}
	return "", false
}

// parseSample splits a sample line into name, raw labels and value.
func parseSample(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced label braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		k := strings.IndexAny(rest, " \t")
		if k < 0 {
			return "", "", "", fmt.Errorf("sample without value: %q", line)
		}
		name = rest[:k]
		rest = strings.TrimSpace(rest[k:])
	}
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if _, err := parseLabelPairs(labels); err != nil {
		return "", "", "", err
	}
	// A timestamp may follow the value; only the value is validated.
	if k := strings.IndexAny(rest, " \t"); k >= 0 {
		rest = rest[:k]
	}
	if rest == "" {
		return "", "", "", fmt.Errorf("sample without value: %q", line)
	}
	return name, labels, rest, nil
}

// parseLabelPairs validates k="v" pairs and returns them.
func parseLabelPairs(s string) ([]Label, error) {
	var out []Label
	rest := s
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair without '=' in %q", s)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				rest = rest[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out = append(out, Label{Key: key, Value: val.String()})
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}

// canonicalLabels re-encodes a raw label string sorted by key so
// duplicate detection is order-insensitive.
func canonicalLabels(s string) string {
	pairs, err := parseLabelPairs(s)
	if err != nil || len(pairs) == 0 {
		return s
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p.Key + "=" + strconv.Quote(p.Value)
	}
	return strings.Join(parts, ",")
}

// parseSampleValue accepts floats plus the exposition specials.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 0, nil
	case "-Inf":
		return 0, nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
