package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryGetOrCreate: the same name+labels returns the same
// handle; different label values give distinct series; re-registering
// a name as a different kind panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("swaps_total", "h", Label{"enclave", "train"})
	b := r.Counter("swaps_total", "h", Label{"enclave", "train"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.Counter("swaps_total", "h", Label{"enclave", "replica"})
	if a == c {
		t.Fatal("different label values shared a counter")
	}
	a.Add(2)
	a.Inc()
	if got := b.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	a.Add(-5) // counters never go down
	if got := a.Value(); got != 3 {
		t.Fatalf("counter after negative add = %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("swaps_total", "h")
}

// TestGauge: gauges move both ways.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pressure", "h")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

// TestFuncMetrics: func-backed series are evaluated at gather time and
// re-registration replaces the callback.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("reqs_total", "h", func() float64 { return v })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Value != 7 {
		t.Fatalf("snapshot = %+v, want one series of 7", snap)
	}
	r.CounterFunc("reqs_total", "h", func() float64 { return 42 })
	if got := r.Snapshot()[0].Series[0].Value; got != 42 {
		t.Fatalf("after re-register = %v, want 42", got)
	}
}

// TestRegistryConcurrency hammers register/observe/snapshot from many
// goroutines — run under -race, this is the registry's thread-safety
// proof. Snapshot totals must equal what was recorded.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 500
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	// A snapshotter races with the writers; histogram snapshots must
	// always be internally consistent.
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, fam := range r.Snapshot() {
				for _, s := range fam.Series {
					if s.Hist == nil {
						continue
					}
					var sum uint64
					for _, n := range s.Hist.Buckets {
						sum += n
					}
					if sum != s.Hist.Count {
						t.Errorf("histogram snapshot inconsistent: buckets sum %d, count %d", sum, s.Hist.Count)
						return
					}
				}
			}
		}
	}()
	labels := []string{"train", "replica", "shard"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Register-or-get on every iteration: the get path must
				// be safe concurrently with first-registration.
				r.Counter("ops_total", "h", Label{"role", labels[i%len(labels)]}).Inc()
				r.Gauge("level", "h").Set(float64(i))
				r.Histogram("latency_seconds", "h").Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone
	var total float64
	for _, fam := range r.Snapshot() {
		if fam.Name != "ops_total" {
			continue
		}
		for _, s := range fam.Series {
			total += s.Value
		}
	}
	if total != float64(workers*perWorker) {
		t.Fatalf("ops_total = %v, want %d", total, workers*perWorker)
	}
	h := r.Histogram("latency_seconds", "h").Snapshot()
	if h.Count != uint64(workers*perWorker) {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
}

// TestHistogramQuantiles ports the serving layer's percentile
// semantics: nearest-rank, bucket upper bounds, max-tightened.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 4*time.Microsecond {
		t.Fatalf("P50 = %v, want 4µs", got)
	}
	if got := s.Quantile(0.95); got != 1000*time.Microsecond {
		t.Fatalf("P95 = %v, want the max-tightened 1ms", got)
	}
	if got := s.Quantile(0.99); got != 1000*time.Microsecond {
		t.Fatalf("P99 = %v, want 1ms", got)
	}
	if got, want := s.Mean(), (90*3*time.Microsecond+10*1000*time.Microsecond)/100; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	if (HistSnapshot{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram reported a quantile")
	}
}

// TestFlatten: flattening renders labeled keys and histogram suffixes.
func TestFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", Label{"shard", "0"}).Add(3)
	r.Histogram("lat", "h").Observe(2 * time.Millisecond)
	m := Flatten(r)
	if m["a_total{shard=0}"] != 3 {
		t.Fatalf("flatten counter = %v", m)
	}
	if m["lat_count"] != 1 {
		t.Fatalf("flatten hist count = %v", m)
	}
	if m["lat_sum"] != 0.002 {
		t.Fatalf("flatten hist sum = %v", m)
	}
	if !strings.Contains(keysOf(m), "a_total{shard=0}") {
		t.Fatalf("keys = %v", keysOf(m))
	}
}

func keysOf(m map[string]float64) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
		b.WriteByte(' ')
	}
	return b.String()
}
