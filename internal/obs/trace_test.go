package obs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestTracerRetainsSlowest: retention keeps the N slowest finished
// traces, sorted slowest-first, with active bookkeeping balanced.
func TestTracerRetainsSlowest(t *testing.T) {
	tr := NewTracer(3)
	durations := []time.Duration{5, 50, 20, 90, 1, 70}
	for _, d := range durations {
		tc := tr.Start()
		tc.Add("work", d*time.Millisecond)
		// Backdate the start so total is deterministic.
		tc.start = time.Now().Add(-d * time.Millisecond)
		tc.Finish()
	}
	if got := tr.Active(); got != 0 {
		t.Fatalf("active = %d, want 0", got)
	}
	slow := tr.Slowest()
	if len(slow) != 3 {
		t.Fatalf("retained %d traces, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Total > slow[i-1].Total {
			t.Fatalf("slowest not sorted: %v then %v", slow[i-1].Total, slow[i].Total)
		}
	}
	// The three slowest were 90, 70 and 50 ms.
	if slow[0].Total < 90*time.Millisecond || slow[2].Total < 50*time.Millisecond {
		t.Fatalf("retained wrong traces: %v %v %v", slow[0].Total, slow[1].Total, slow[2].Total)
	}
}

// TestTraceLifecycle: double-Finish is a no-op, post-Finish spans are
// dropped, Fail is recorded, nil traces are safe everywhere.
func TestTraceLifecycle(t *testing.T) {
	tr := NewTracer(4)
	tc := tr.Start()
	tc.Add("queue", 2*time.Millisecond)
	tc.Fail(errors.New("boom"))
	tc.Finish()
	tc.Finish()
	tc.Add("late", time.Second)
	if got := tr.Active(); got != 0 {
		t.Fatalf("active after double finish = %d, want 0", got)
	}
	slow := tr.Slowest()
	if len(slow) != 1 || slow[0].Err != "boom" {
		t.Fatalf("slowest = %+v, want one errored trace", slow)
	}
	for _, sp := range slow[0].Spans {
		if sp.Stage == "late" {
			t.Fatal("span recorded after Finish")
		}
	}
	var nilTrace *Trace
	nilTrace.Add("x", time.Second)
	nilTrace.AddSpans([]SpanRec{{Stage: "y"}})
	nilTrace.Fail(errors.New("z"))
	nilTrace.Finish()
	if nilTrace.Spans() != nil || nilTrace.ID() != 0 {
		t.Fatal("nil trace misbehaved")
	}
}

// TestTraceContext: context plumbing carries the trace; SpanInto on a
// traceless context is a no-op.
func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("background context carried a trace")
	}
	SpanInto(context.Background(), "nothing", time.Second) // must not panic
	tc := NewTrace()
	ctx := ContextWithTrace(context.Background(), tc)
	if TraceFrom(ctx) != tc {
		t.Fatal("trace not carried")
	}
	SpanInto(ctx, "compute", 3*time.Millisecond)
	spans := tc.Spans()
	if len(spans) != 1 || spans[0].Stage != "compute" || spans[0].Dur != 3*time.Millisecond {
		t.Fatalf("spans = %+v", spans)
	}
	snap := TraceSnapshot{Spans: []SpanRec{{Dur: time.Second}, {Dur: 2 * time.Second}}}
	if snap.SpanSum() != 3*time.Second {
		t.Fatalf("SpanSum = %v", snap.SpanSum())
	}
}
