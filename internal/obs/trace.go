package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceKeep is how many of the slowest finished traces a Tracer
// retains when no explicit capacity is given.
const DefaultTraceKeep = 16

// SpanRec is one named stage of a request's life, as a duration. Spans
// are accounting entries rather than open/close pairs: pipeline stages
// record the durations they already measure (queue wait, restore,
// compute, seal), so a request's spans tile its end-to-end latency.
type SpanRec struct {
	Stage string        `json:"stage"`
	Dur   time.Duration `json:"duration_ns"`
}

// Trace accumulates the spans of one request. It is created by
// Tracer.Start (or NewTrace for a free-standing scratch trace), carried
// through the pipeline in a context.Context, and closed exactly once by
// its owner with Finish. Concurrent Add calls are safe; Adds after
// Finish are dropped.
type Trace struct {
	tracer *Tracer
	id     uint64
	start  time.Time

	mu    sync.Mutex
	done  bool
	total time.Duration
	err   string
	spans []SpanRec
}

// NewTrace returns a free-standing trace not owned by any Tracer —
// used for batch-level accounting that is later folded into the
// per-request traces with AddSpans.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// ID returns the trace's id (zero for free-standing traces).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Add records a span. Safe on a nil trace, so pipeline code can record
// unconditionally whether or not the request is traced.
func (t *Trace) Add(stage string, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, SpanRec{Stage: stage, Dur: d})
	}
	t.mu.Unlock()
}

// AddSpans appends a batch of spans (e.g. the shared shard-pipeline
// spans of the micro-batch this request rode in).
func (t *Trace) AddSpans(spans []SpanRec) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.spans = append(t.spans, spans...)
	}
	t.mu.Unlock()
}

// Fail records the error the request ended with.
func (t *Trace) Fail(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.err = err.Error()
	}
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []SpanRec {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRec(nil), t.spans...)
}

// Finish closes the trace, stamps its end-to-end duration, and offers
// it to the owning Tracer's slowest-N retention. Exactly one Finish
// per trace; later calls are no-ops.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.total = time.Since(t.start)
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.finish(t)
	}
}

// TraceSnapshot is an immutable copy of a finished trace.
type TraceSnapshot struct {
	ID    uint64        `json:"id"`
	Start time.Time     `json:"start"`
	Total time.Duration `json:"total_ns"`
	Err   string        `json:"err,omitempty"`
	Spans []SpanRec     `json:"spans"`
}

// SpanSum returns the sum of the snapshot's span durations — for a
// well-instrumented pipeline it lands within a few percent of Total.
func (s TraceSnapshot) SpanSum() time.Duration {
	var sum time.Duration
	for _, sp := range s.Spans {
		sum += sp.Dur
	}
	return sum
}

// Tracer hands out request traces and retains the N slowest finished
// ones in bounded memory.
type Tracer struct {
	keep   int
	nextID atomic.Uint64
	active atomic.Int64

	mu      sync.Mutex
	slowest []*Trace // unordered pool of at most keep traces
}

// NewTracer returns a tracer retaining the keep slowest traces
// (DefaultTraceKeep when keep <= 0).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	return &Tracer{keep: keep}
}

// Start opens a new trace. The caller owns it and must Finish it on
// every exit path.
func (tr *Tracer) Start() *Trace {
	tr.active.Add(1)
	return &Trace{tracer: tr, id: tr.nextID.Add(1), start: time.Now()}
}

// Active returns the number of started-but-unfinished traces — zero
// whenever the server is idle, which the lifecycle tests assert to
// prove every exit path closes its trace.
func (tr *Tracer) Active() int64 { return tr.active.Load() }

// finish retires a trace into the slowest-N pool.
func (tr *Tracer) finish(t *Trace) {
	tr.active.Add(-1)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.slowest) < tr.keep {
		tr.slowest = append(tr.slowest, t)
		return
	}
	// Replace the fastest retained trace if this one is slower.
	min := 0
	for i, s := range tr.slowest {
		if s.total < tr.slowest[min].total {
			min = i
		}
	}
	if t.total > tr.slowest[min].total {
		tr.slowest[min] = t
	}
}

// Slowest returns snapshots of the retained traces, slowest first.
func (tr *Tracer) Slowest() []TraceSnapshot {
	tr.mu.Lock()
	traces := append([]*Trace(nil), tr.slowest...)
	tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, t := range traces {
		t.mu.Lock()
		out = append(out, TraceSnapshot{
			ID:    t.id,
			Start: t.start,
			Total: t.total,
			Err:   t.err,
			Spans: append([]SpanRec(nil), t.spans...),
		})
		t.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// ContextWithTrace returns ctx carrying t.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanInto records d against stage on the trace carried by ctx, if any.
func SpanInto(ctx context.Context, stage string, d time.Duration) {
	TraceFrom(ctx).Add(stage, d)
}
