package obs

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// HistBuckets is the size of the shared latency histogram: bucket i
// counts observations with duration in ((1<<(i-1)) µs, (1<<i) µs], so
// the top bucket's bound exceeds 9 hours — effectively unbounded.
// This is the fixed power-of-two layout the serving layer has used
// since PR 2, promoted here so every latency metric shares it.
const HistBuckets = 36

// Histogram is a fixed-bucket duration histogram. One mutex guards
// count, sum, max and the buckets together, so a Snapshot is always
// internally consistent: Count equals the bucket total and Sum/Max
// describe exactly those observations.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sum     time.Duration
	max     time.Duration
	buckets [HistBuckets]uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// BucketBound returns the upper bound of bucket i.
func BucketBound(i int) time.Duration {
	if i <= 0 {
		return time.Microsecond
	}
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[histBucket(d)]++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistSnapshot is a consistent point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Max     time.Duration
	Buckets [HistBuckets]uint64
}

// Snapshot copies the histogram under its lock: the returned counts,
// sum and max all describe the same set of observations.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{Count: h.count, Sum: h.sum, Max: h.max, Buckets: h.buckets}
}

// Mean returns the average observed duration, zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the upper bound of the bucket holding quantile p —
// nearest-rank, i.e. the ceil(p*n)-th smallest observation, so a tail
// outlier is never skipped at small counts. The top populated bucket's
// bound can overshoot the true maximum, so the observed max is used as
// a tighter upper bound. Returns zero when empty.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			bound := BucketBound(i)
			if bound > s.Max {
				bound = s.Max
			}
			return bound
		}
	}
	return s.Max
}
