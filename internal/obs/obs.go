// Package obs is the repository's dependency-free telemetry layer: a
// typed metric registry (counters, gauges, and the power-of-two-bucket
// latency histogram promoted from the serving layer) plus request-scoped
// tracing with bounded retention of the slowest requests.
//
// Every layer of the Plinius reproduction registers metrics here under
// stable names — epc_page_swaps_total{enclave=...} from the enclave
// shim, mirror_seal_seconds_total from the PM mirror, pm_bytes_stored_total
// from the PM device, shard_stage_stall_total{shard=...} from the shard
// pipeline, serve_requests_total from the inference server — so the
// evidence the paper cares about (paging knees, AES seal cost, PM
// traffic) is live and machine-readable instead of scattered across
// snapshot-only Stats structs. The registry encodes to the Prometheus
// text exposition format (WritePrometheus) and flattens to a plain
// map for embedding in benchmark artifacts (Flatten).
//
// Layer-level metrics register into the process-wide Default registry.
// Components that are built and torn down many times per process —
// serve.Server, core.ShardGroup — take a per-instance *Registry so
// concurrent tests do not share series.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Kind is the type of a metric family.
type Kind int

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically non-decreasing metric. The zero value is
// usable but counters are normally obtained from a Registry so they
// appear in the exposition.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v. Negative deltas are ignored:
// counters only go up.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// AddUint adds an integer delta.
func (c *Counter) AddUint(n uint64) { c.Add(float64(n)) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one labeled member of a family. Exactly one of the value
// fields is set, matching the family kind; fn, when non-nil, overrides
// the stored value and is evaluated at gather time.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	series map[string]*series // keyed by encoded label set
}

// Registry holds metric families. The zero value is not usable; create
// with NewRegistry or use the package Default.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that layer-level metrics
// (enclave, engine, mirror, pm, storage, darknet) register into.
func Default() *Registry { return defaultRegistry }

// labelKey encodes a sorted label set into a map key. Labels are
// sorted in place; callers pass freshly built slices.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// getFamily returns the family for name, creating it with the given
// kind and help. Re-registering an existing name with a different kind
// panics: stable names are the whole point of the registry, and a
// name that is a counter in one layer and a gauge in another is a bug.
func (r *Registry) getFamily(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, already a %s", name, kind, f.kind))
	}
	return f
}

// getSeries returns the series for the label set, creating it if new.
func (f *family) getSeries(labels []Label) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch f.kind {
		case KindCounter:
			s.ctr = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = newHistogram()
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getFamily(name, help, KindCounter).getSeries(labels).ctr
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getFamily(name, help, KindGauge).getSeries(labels).gauge
}

// Histogram returns the histogram registered under name with the given
// labels. Buckets are the fixed power-of-two-microsecond layout shared
// by every latency metric in the repository (see HistBuckets).
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.getFamily(name, help, KindHistogram).getSeries(labels).hist
}

// CounterFunc registers a counter whose value is computed by fn at
// gather time — for totals that already live elsewhere under their own
// lock, so the exposition reads the authoritative copy instead of
// maintaining a second one. Re-registering the same name+labels
// replaces the function (the newest live object wins).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, KindCounter)
	s := f.getSeries(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge computed by fn at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, KindGauge)
	s := f.getSeries(labels)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// SeriesPoint is one gathered series.
type SeriesPoint struct {
	Labels []Label
	Value  float64       // counter/gauge value
	Hist   *HistSnapshot // set for histogram families
}

// FamilySnapshot is one gathered metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesPoint
}

// Snapshot gathers every family in one read-side pass. Families are
// sorted by name and series by label set, so output is deterministic.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		for _, k := range keys {
			s := f.series[k]
			p := SeriesPoint{Labels: s.labels}
			switch {
			case s.fn != nil:
				p.Value = s.fn()
			case s.ctr != nil:
				p.Value = s.ctr.Value()
			case s.gauge != nil:
				p.Value = s.gauge.Value()
			}
			if s.hist != nil {
				hs := s.hist.Snapshot()
				p.Hist = &hs
			}
			fs.Series = append(fs.Series, p)
		}
		f.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

// Flatten gathers one or more registries into a flat name→value map
// (for embedding in benchmark JSON). Labeled series render as
// name{k=v,...}; histograms contribute name_count and name_sum (sum in
// seconds). Later registries win on (unlikely) key collisions.
func Flatten(regs ...*Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, fam := range r.Snapshot() {
			for _, s := range fam.Series {
				key := fam.Name
				if len(s.Labels) > 0 {
					parts := make([]string, len(s.Labels))
					for i, l := range s.Labels {
						parts[i] = l.Key + "=" + l.Value
					}
					key += "{" + strings.Join(parts, ",") + "}"
				}
				if s.Hist != nil {
					out[key+"_count"] = float64(s.Hist.Count)
					out[key+"_sum"] = s.Hist.Sum.Seconds()
					continue
				}
				out[key] = s.Value
			}
		}
	}
	return out
}
