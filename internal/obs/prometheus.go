package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family followed by its samples, families sorted by name and series
// by label set. Histograms emit cumulative name_bucket{le="..."}
// samples up to the highest populated bucket plus le="+Inf", then
// name_sum (seconds) and name_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(fam.Help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(fam.Name)
		bw.WriteByte(' ')
		bw.WriteString(fam.Kind.String())
		bw.WriteByte('\n')
		for _, s := range fam.Series {
			if s.Hist != nil {
				writeHistogram(bw, fam.Name, s)
				continue
			}
			bw.WriteString(fam.Name)
			writeLabels(bw, s.Labels, "", 0)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeHistogram emits one histogram series in Prometheus histogram
// convention: cumulative buckets keyed by le in seconds.
func writeHistogram(bw *bufio.Writer, name string, s SeriesPoint) {
	top := -1
	for i, n := range s.Hist.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Hist.Buckets[i]
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, "le", BucketBound(i).Seconds())
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.Labels, "le", -1) // -1 → +Inf
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.Hist.Sum.Seconds()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "", 0)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Hist.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {k="v",...}, optionally with a trailing le
// bound (seconds; negative renders +Inf). Writes nothing when there
// are no labels and no le.
func writeLabels(bw *bufio.Writer, labels []Label, leKey string, le float64) {
	if len(labels) == 0 && leKey == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(leKey)
		bw.WriteString(`="`)
		if le < 0 {
			bw.WriteString("+Inf")
		} else {
			bw.WriteString(formatValue(le))
		}
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
