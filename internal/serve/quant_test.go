package serve

import (
	"context"
	"testing"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
)

// TestQuantizedServeEndToEnd serves the int8 snapshot variant and
// checks the pool works end to end: predictions agree with the fp32
// enclave model on almost every image (the weights differ by at most
// half a quantization step), precision is reported everywhere, and
// Refresh keeps working — including across a key rotation, whose
// republish must carry the quant variant.
func TestQuantizedServeEndToEnd(t *testing.T) {
	f, test := newTrainedFramework(t, 8)

	s, err := New(context.Background(), f, Options{
		Workers: 2, MaxBatch: 8, MaxQueueLatency: time.Millisecond,
		Quantized: true,
	})
	if err != nil {
		t.Fatalf("New quantized server: %v", err)
	}
	defer s.Close()

	if s.Precision() != darknet.Int8 {
		t.Fatalf("Precision() = %v, want int8", s.Precision())
	}
	if st := s.Stats(); st.Precision != "int8" {
		t.Fatalf("Stats().Precision = %q, want \"int8\"", st.Precision)
	}

	agree := 0
	for i := 0; i < test.N; i++ {
		want, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("enclave classify %d: %v", i, err)
		}
		pred, err := s.Classify(context.Background(), test.Image(i))
		if err != nil {
			t.Fatalf("served classify %d: %v", i, err)
		}
		if pred.Class == want {
			agree++
		}
	}
	if agree < test.N*9/10 {
		t.Fatalf("int8/fp32 class agreement %d/%d, want >= 90%%", agree, test.N)
	}

	// Train further and refresh: the new version must publish a quant
	// variant (SetPublishQuantized is sticky) and restore cleanly.
	if err := f.TrainIters(2, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if _, err := s.Refresh(context.Background()); err != nil {
		t.Fatalf("Refresh after retrain: %v", err)
	}

	// Key rotation republishes under the new key (the sticky quantized
	// mode must carry the variant along) and re-provisions each replica;
	// the quantized pool must survive that too.
	if _, err := s.RotateKey(context.Background()); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("classify after rotation: %v", err)
	}
	if s.Precision() != darknet.Int8 {
		t.Fatalf("Precision() after refresh = %v, want int8", s.Precision())
	}
}

// TestQuantizedReplicaRefusesUntrainedRepublish: a quantized replica on
// a framework whose PM holds a published fp32 snapshot from a previous
// life (no quant variant, nothing trained in this enclave yet) must
// refuse to republish — republishing would supersede the real snapshot
// with this enclave's random init.
func TestQuantizedReplicaRefusesUntrainedRepublish(t *testing.T) {
	f, _ := newTrainedFramework(t, 4)
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// Restart without restoring the model into the enclave: iteration is
	// back to 0, but PM still holds the published (fp32-only) version.
	f.Crash()
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, err := f.NewReplica(1, core.WithQuantizedReplica()); err == nil {
		t.Fatal("quantized replica on an untrained restart succeeded; it must refuse to republish over the real snapshot")
	}
}
