package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"plinius/internal/core"
	"plinius/internal/enclave"
)

// newFleetHosts builds n serving hosts with the given usable EPC,
// sharing the framework host's cost profile.
func newFleetHosts(f *core.Framework, n, epcBytes int) []*enclave.Host {
	hosts := make([]*enclave.Host, n)
	for i := range hosts {
		hosts[i] = enclave.NewHost(f.Host.Profile(), enclave.WithHostEPC(epcBytes))
	}
	return hosts
}

// TestFleetServingMatchesSequential: serving through the multi-host
// fabric yields predictions identical to the sequential enclave model,
// across Refresh and RotateKey.
func TestFleetServingMatchesSequential(t *testing.T) {
	f, test := newTrainedFramework(t, 8)
	hosts := newFleetHosts(f, 3, 32<<20)
	s, err := New(context.Background(), f, Options{
		Fleet:           hosts,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.FleetSize() != 3 {
		t.Fatalf("FleetSize = %d, want 3", s.FleetSize())
	}
	if s.FleetGroups() < 1 {
		t.Fatalf("FleetGroups = %d", s.FleetGroups())
	}
	if s.Workers() < 1 {
		t.Fatalf("Workers = %d", s.Workers())
	}

	got := make([]int, test.N)
	var wg sync.WaitGroup
	errCh := make(chan error, test.N)
	for i := 0; i < test.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Classify(context.Background(), test.Image(i))
			if err != nil {
				errCh <- err
				return
			}
			got[i] = pred.Class
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("Classify: %v", err)
	}
	for i := 0; i < test.N; i++ {
		want, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify %d: %v", i, err)
		}
		if got[i] != want {
			t.Fatalf("fleet class[%d] = %d, want %d", i, got[i], want)
		}
	}

	// Refresh and rotation flip the whole fleet; serving continues.
	if err := f.TrainIters(4, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	v1 := s.Version()
	iter, err := s.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if iter != f.Iteration() || s.Version() <= v1 {
		t.Fatalf("Refresh iter %d version %d, want iter %d version > %d", iter, s.Version(), f.Iteration(), v1)
	}
	if _, err := s.RotateKey(context.Background()); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	pred, err := s.Classify(context.Background(), test.Image(0))
	if err != nil {
		t.Fatalf("Classify after rotate: %v", err)
	}
	want, err := f.Classify(test.Image(0))
	if err != nil {
		t.Fatalf("sequential classify after rotate: %v", err)
	}
	if pred.Class != want {
		t.Fatalf("after rotate class %d, want %d", pred.Class, want)
	}

	st := s.Stats()
	if st.FleetHosts != 3 || st.FleetGroups < 1 {
		t.Fatalf("Stats fleet view = %d hosts / %d groups", st.FleetHosts, st.FleetGroups)
	}
}

// TestFleetAutoKeepsReplicasWhenFits: with FleetAuto and a replica
// that fits the framework host, the fleet hosts are ignored and the
// server runs the plain replica pool.
func TestFleetAutoKeepsReplicasWhenFits(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	hosts := newFleetHosts(f, 3, 32<<20)
	s, err := New(context.Background(), f, Options{
		Fleet:           hosts,
		FleetAuto:       true,
		Workers:         2,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.FleetSize() != 0 {
		t.Fatalf("FleetAuto engaged the fleet (%d hosts) although a replica fits", s.FleetSize())
	}
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", s.Workers())
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify: %v", err)
	}
}

// TestFleetServingDropsNoRequestsDuringControl hammers the server with
// concurrent requests while Refresh and RotateKey flip the fleet
// mid-traffic: every request must succeed. Run under -race this is the
// acceptance check that fleet-wide control operations drop zero
// requests.
func TestFleetServingDropsNoRequestsDuringControl(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	hosts := newFleetHosts(f, 3, 32<<20)
	s, err := New(context.Background(), f, Options{
		Fleet:           hosts,
		MaxBatch:        4,
		MaxQueueLatency: time.Millisecond,
		QueueDepth:      4096,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	const clients = 4
	const perClient = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient+2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := s.Classify(context.Background(), test.Image((c*perClient+i)%test.N)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := f.Publish(); err != nil {
			errCh <- err
			return
		}
		if _, err := s.Refresh(context.Background()); err != nil {
			errCh <- err
			return
		}
		if _, err := s.RotateKey(context.Background()); err != nil {
			errCh <- err
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("request dropped during fleet control ops: %v", err)
	}
	if st := s.Stats(); st.Requests != clients*perClient {
		t.Fatalf("Requests = %d, want %d (zero drops)", st.Requests, clients*perClient)
	}
}
