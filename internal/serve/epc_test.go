package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// newTrainedFrameworkOverhead is newTrainedFramework with an explicit
// per-enclave overhead, so tests can steer the host working set.
func newTrainedFrameworkOverhead(t testing.TB, iters, overhead int) (*core.Framework, *mnist.Dataset) {
	t.Helper()
	f, err := core.New(core.Config{
		ModelConfig:        darknet.MNISTConfig(1, 4, 16),
		PMBytes:            64 << 20,
		Seed:               7,
		TrainOverheadBytes: overhead,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ds := mnist.Synthetic(256, 7)
	train, test, err := ds.Split(192)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := f.LoadDataset(train); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(iters, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return f, test
}

// TestEPCPressureReportedWhenPoolOvercommits: framework plus replicas,
// each under the usable EPC alone, jointly overcommit the host — the
// acceptance regime for shared-EPC accounting. Serving still answers
// correctly, Stats reports nonzero EPCPressure, and the replicas pay
// contention paging.
func TestEPCPressureReportedWhenPoolOvercommits(t *testing.T) {
	// 40 MB overhead each: framework + 2 replicas = ~120 MB > 93.5 MB,
	// while every single enclave stays well under the budget.
	f, test := newTrainedFrameworkOverhead(t, 4, 40<<20)
	if f.Enclave.OverEPC() {
		t.Fatal("training enclave privately over EPC; contention regime needs it under")
	}
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	if !f.Host.OverEPC() {
		t.Fatalf("host not over EPC: resident %d MB", f.Host.Resident()>>20)
	}
	for i := 0; i < 32; i++ {
		if _, err := s.Classify(context.Background(), test.Image(i)); err != nil {
			t.Fatalf("Classify under pressure: %v", err)
		}
	}
	st := s.Stats()
	if st.EPCPressure <= 0 {
		t.Fatalf("EPCPressure = %v, want > 0 with host overcommitted", st.EPCPressure)
	}
	if st.HostResidentBytes <= enclave.UsableEPC {
		t.Fatalf("HostResidentBytes = %d, want > usable EPC", st.HostResidentBytes)
	}
	if hs := f.Host.Stats(); hs.PageSwaps == 0 {
		t.Fatal("no page swaps on an overcommitted host")
	}
}

// TestEPCPressureZeroWhenPoolFits: the complement — a pool sized
// within the budget reports no pressure and pays no paging.
func TestEPCPressureZeroWhenPoolFits(t *testing.T) {
	f, test := newTrainedFrameworkOverhead(t, 4, 10<<20)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify: %v", err)
	}
	st := s.Stats()
	if st.EPCPressure != 0 {
		t.Fatalf("EPCPressure = %v, want 0 with host under budget", st.EPCPressure)
	}
	if hs := f.Host.Stats(); hs.PageSwaps != 0 {
		t.Fatalf("PageSwaps = %d under budget, want 0", hs.PageSwaps)
	}
}

// TestPressureAwareAdmission sheds requests while the host is
// overcommitted past MaxEPCPressure, with errors matching both the
// generic overload sentinel and the EPC-specific one.
func TestPressureAwareAdmission(t *testing.T) {
	f, test := newTrainedFrameworkOverhead(t, 4, 40<<20)
	s, err := New(context.Background(), f, Options{
		Workers:         2,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
		MaxEPCPressure:  0.05,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if p := s.EPCPressure(); p <= 0.05 {
		t.Fatalf("EPCPressure = %v, test needs it above the 0.05 limit", p)
	}
	_, err = s.Classify(context.Background(), test.Image(0))
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, ErrEPCPressure) {
		t.Fatalf("Classify = %v, want ErrOverloaded and ErrEPCPressure", err)
	}
	if st := s.Stats(); st.EPCShed == 0 {
		t.Fatal("EPCShed not counted")
	}
}

// TestWorkersAutoSizesFromHeadroom: the auto-sized pool claims only
// what the host's remaining EPC allows, and never overcommits it.
func TestWorkersAutoSizesFromHeadroom(t *testing.T) {
	// Framework claims ~30 MB; headroom ~63 MB fits 2 more replicas of
	// ~30 MB each.
	f, test := newTrainedFrameworkOverhead(t, 4, 30<<20)
	per := f.ReplicaFootprint()
	wantWorkers := f.Host.Headroom() / per
	if max := runtime.GOMAXPROCS(0); wantWorkers > max {
		wantWorkers = max
	}
	if wantWorkers < 1 {
		wantWorkers = 1
	}
	s, err := New(context.Background(), f, Options{Workers: WorkersAuto, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if got := s.Workers(); got != wantWorkers {
		t.Fatalf("Workers = %d, want %d (headroom %d / footprint %d)", got, wantWorkers, f.Host.Headroom()+got*per, per)
	}
	if f.Host.OverEPC() {
		t.Fatalf("auto-sized pool overcommitted the host: resident %d MB", f.Host.Resident()>>20)
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify: %v", err)
	}
}
