package serve

import (
	"context"
	"testing"
	"time"
)

// TestFleetServingSurvivesHostKill: killing one fleet host under a
// serving load drops zero requests — the router recovers the failure
// (these hosts comfortably hold the model, so survivors replan
// resident) — and the server's stats surface the outage.
func TestFleetServingSurvivesHostKill(t *testing.T) {
	f, test := newTrainedFramework(t, 8)
	hosts := newFleetHosts(f, 3, 32<<20)
	s, err := New(context.Background(), f, Options{
		Fleet:           hosts,
		MaxBatch:        4,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	if s.FleetHostsDown() != 0 || s.FleetDegraded() {
		t.Fatalf("fresh fleet server reports hosts_down=%d degraded=%v",
			s.FleetHostsDown(), s.FleetDegraded())
	}

	// Warm up, then kill a host and keep classifying through the
	// outage. The fleet must re-route and retry: no request fails.
	for i := 0; i < 4; i++ {
		if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil {
			t.Fatalf("warm-up classify %d: %v", i, err)
		}
	}
	hosts[0].Kill()
	for i := 0; i < 8; i++ {
		if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil {
			t.Fatalf("classify %d across host kill: %v", i, err)
		}
	}

	st := s.Stats()
	if st.FleetHostsDown != 1 {
		t.Fatalf("Stats.FleetHostsDown = %d, want 1", st.FleetHostsDown)
	}
	if st.FleetReplans < 1 {
		t.Fatalf("Stats.FleetReplans = %d, want >= 1", st.FleetReplans)
	}
	if st.FleetEvictedGroups < 1 {
		t.Fatalf("Stats.FleetEvictedGroups = %d, want >= 1", st.FleetEvictedGroups)
	}
	if s.FleetHostsDown() != 1 {
		t.Fatalf("FleetHostsDown = %d, want 1", s.FleetHostsDown())
	}

	// The host comes back; FleetRejoin promotes and the outage clears.
	hosts[0].Rejoin()
	if err := s.FleetRejoin(); err != nil {
		t.Fatalf("FleetRejoin: %v", err)
	}
	if s.FleetHostsDown() != 0 || s.FleetDegraded() {
		t.Fatalf("after rejoin: hosts_down=%d degraded=%v, want 0/false",
			s.FleetHostsDown(), s.FleetDegraded())
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("classify after rejoin: %v", err)
	}
}
