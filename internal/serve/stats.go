package serve

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Stats is a snapshot of a Server's serving counters.
type Stats struct {
	// Requests is the number of requests served successfully.
	Requests uint64
	// Rejected counts admission-control rejections: requests that
	// arrived at a full queue and failed fast with ErrOverloaded.
	Rejected uint64
	// Expired counts queued requests dropped because their context
	// ended before dispatch; they never occupied a batch slot.
	Expired uint64
	// EPCShed counts requests shed by pressure-aware admission
	// (Options.MaxEPCPressure): rejected because the host EPC was
	// overcommitted past the limit, before touching the queue.
	EPCShed uint64
	// EPCPressure is the host's EPC overcommit fraction at snapshot
	// time: 0 while the aggregate working set of all enclaves on the
	// host fits the usable EPC, 0.5 when it is 50% past it. Nonzero
	// pressure means every enclave touch pays the shared paging knee.
	EPCPressure float64
	// HostResidentBytes is the aggregate enclave working set on the
	// host at snapshot time (training enclave plus all replicas).
	HostResidentBytes int
	// Batches is the number of micro-batches dispatched.
	Batches uint64
	// AvgBatch is the mean micro-batch size.
	AvgBatch float64
	// AvgLatency and MaxLatency summarise request end-to-end time in
	// the server (enqueue to classification).
	AvgLatency time.Duration
	MaxLatency time.Duration
	// P50Latency, P95Latency and P99Latency are latency percentiles
	// from a fixed power-of-two-bucket histogram: each is the upper
	// bound of the bucket holding the percentile, so values are exact
	// to within a factor of two — constant memory however many
	// requests are served.
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	// Throughput is requests per second since the server started.
	Throughput float64
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Shard-pipeline counters, nonzero only in shard mode:
	// ShardRestores counts layer-range restores from PM, ShardStalls
	// batches that paid a full restore on the compute path,
	// ShardPrefetchWaits batches that paid only the unfinished
	// remainder of an in-flight prefetch, and ShardPrefetched restores
	// overlapped with compute by the double-buffering prefetcher.
	ShardRestores      uint64
	ShardStalls        uint64
	ShardPrefetchWaits uint64
	ShardPrefetched    uint64
}

// latBuckets is the size of the latency histogram: bucket i counts
// requests with latency in ((1<<(i-1)) µs, (1<<i) µs], so the top
// bucket's bound exceeds 9 hours — effectively unbounded.
const latBuckets = 36

// statsCollector accumulates counters across worker goroutines.
type statsCollector struct {
	mu       sync.Mutex
	start    time.Time
	requests uint64
	rejected uint64
	expired  uint64
	epcShed  uint64
	batches  uint64
	latSum   time.Duration
	latMax   time.Duration
	latHist  [latBuckets]uint64
}

// latBucket maps a latency to its histogram bucket.
func latBucket(d time.Duration) int {
	b := bits.Len64(uint64(d / time.Microsecond))
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

func (c *statsCollector) record(p Prediction) {
	c.mu.Lock()
	c.requests++
	c.latSum += p.Latency
	if p.Latency > c.latMax {
		c.latMax = p.Latency
	}
	c.latHist[latBucket(p.Latency)]++
	c.mu.Unlock()
}

func (c *statsCollector) recordBatch() {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
}

func (c *statsCollector) recordRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *statsCollector) recordExpired() {
	c.mu.Lock()
	c.expired++
	c.mu.Unlock()
}

func (c *statsCollector) recordEPCShed() {
	c.mu.Lock()
	c.epcShed++
	c.mu.Unlock()
}

func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Requests: c.requests,
		Rejected: c.rejected,
		Expired:  c.expired,
		EPCShed:  c.epcShed,
		Batches:  c.batches,
		Uptime:   time.Since(c.start),
	}
	if c.batches > 0 {
		s.AvgBatch = float64(c.requests) / float64(c.batches)
	}
	if c.requests > 0 {
		s.AvgLatency = c.latSum / time.Duration(c.requests)
		s.MaxLatency = c.latMax
		s.P50Latency = c.percentileLocked(0.50)
		s.P95Latency = c.percentileLocked(0.95)
		s.P99Latency = c.percentileLocked(0.99)
		if secs := s.Uptime.Seconds(); secs > 0 {
			s.Throughput = float64(c.requests) / secs
		}
	}
	return s
}

// percentileLocked returns the upper bound of the histogram bucket
// holding percentile p — nearest-rank, i.e. the ceil(p*n)-th smallest
// latency, so a tail outlier is never skipped at small request counts.
// Called with c.mu held and c.requests > 0.
func (c *statsCollector) percentileLocked(p float64) time.Duration {
	rank := uint64(math.Ceil(p * float64(c.requests)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, n := range c.latHist {
		cum += n
		if cum >= rank {
			bound := time.Microsecond
			if i > 0 {
				bound = time.Duration(uint64(1)<<uint(i)) * time.Microsecond
			}
			// The top populated bucket's bound can overshoot the true
			// maximum; the observed max is a tighter upper bound.
			if bound > c.latMax {
				bound = c.latMax
			}
			return bound
		}
	}
	return c.latMax
}
