package serve

import (
	"time"

	"plinius/internal/obs"
)

// Stats is a snapshot of a Server's serving counters.
type Stats struct {
	// Precision is the active serving parameter precision: "int8" when
	// the pool serves the quantized snapshot variant, "fp32" otherwise.
	Precision string
	// Requests is the number of requests served successfully.
	Requests uint64
	// Rejected counts admission-control rejections: requests that
	// arrived at a full queue and failed fast with ErrOverloaded.
	Rejected uint64
	// Expired counts queued requests dropped because their context
	// ended before dispatch; they never occupied a batch slot.
	Expired uint64
	// EPCShed counts requests shed by pressure-aware admission
	// (Options.MaxEPCPressure): rejected because the host EPC was
	// overcommitted past the limit, before touching the queue.
	EPCShed uint64
	// EPCPressure is the host's EPC overcommit fraction at snapshot
	// time: 0 while the aggregate working set of all enclaves on the
	// host fits the usable EPC, 0.5 when it is 50% past it. Nonzero
	// pressure means every enclave touch pays the shared paging knee.
	EPCPressure float64
	// HostResidentBytes is the aggregate enclave working set on the
	// host at snapshot time (training enclave plus all replicas).
	HostResidentBytes int
	// Batches is the number of micro-batches dispatched.
	Batches uint64
	// AvgBatch is the mean micro-batch size.
	AvgBatch float64
	// AvgLatency and MaxLatency summarise request end-to-end time in
	// the server (enqueue to classification).
	AvgLatency time.Duration
	MaxLatency time.Duration
	// P50Latency, P95Latency and P99Latency are latency percentiles
	// from a fixed power-of-two-bucket histogram: each is the upper
	// bound of the bucket holding the percentile, so values are exact
	// to within a factor of two — constant memory however many
	// requests are served.
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	// Throughput is requests per second since the server started.
	Throughput float64
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Shard-pipeline counters, nonzero only in shard mode:
	// ShardRestores counts layer-range restores from PM, ShardStalls
	// batches that paid a full restore on the compute path,
	// ShardPrefetchWaits batches that paid only the unfinished
	// remainder of an in-flight prefetch, and ShardPrefetched restores
	// overlapped with compute by the double-buffering prefetcher.
	ShardRestores      uint64
	ShardStalls        uint64
	ShardPrefetchWaits uint64
	ShardPrefetched    uint64
	// Fleet counters, nonzero only in fleet mode: FleetHosts and
	// FleetGroups describe the fabric (hosts, replica groups);
	// FleetHandoffs and FleetHandoffBytes count the sealed activation
	// hand-offs carried across attested inter-host channels.
	FleetHosts        int
	FleetGroups       int
	FleetHandoffs     uint64
	FleetHandoffBytes uint64
	// Fleet failure-domain state: FleetHostsDown is the number of hosts
	// currently marked dead, FleetDegraded whether the fleet fell back
	// to streaming on survivors (the fleet.ErrDegraded state),
	// FleetReplans / FleetEvictedGroups / FleetHandoffRetries the
	// recovery counters behind fleet_replans_total and friends.
	FleetHostsDown      int
	FleetDegraded       bool
	FleetReplans        uint64
	FleetEvictedGroups  uint64
	FleetHandoffRetries uint64
}

// statsCollector is the server's view onto its metrics registry. The
// latency fields of a snapshot (Requests, AvgLatency, MaxLatency, the
// percentiles) are all derived from ONE histogram snapshot taken under
// the histogram's lock, so they always describe the same set of served
// requests — a count can never be paired with a percentile from a
// different moment. The event counters (rejected, expired, shed,
// batches) are independent monotonic counters read in the same pass.
type statsCollector struct {
	start    time.Time
	hist     *obs.Histogram
	rejected *obs.Counter
	expired  *obs.Counter
	epcShed  *obs.Counter
	batches  *obs.Counter
}

// newStatsCollector registers the serving metrics on reg and returns
// the collector writing to them. serve_requests_total is a read-through
// onto the latency histogram's count, so the two can never disagree in
// an exposition.
func newStatsCollector(reg *obs.Registry) statsCollector {
	c := statsCollector{
		start:    time.Now(),
		hist:     reg.Histogram("serve_request_seconds", "End-to-end request latency in the server, enqueue to classification."),
		rejected: reg.Counter("serve_rejected_total", "Requests rejected at a full queue."),
		expired:  reg.Counter("serve_expired_total", "Queued requests dropped because their context ended before dispatch."),
		epcShed:  reg.Counter("serve_epc_shed_total", "Requests shed by pressure-aware admission while the host EPC was overcommitted."),
		batches:  reg.Counter("serve_batches_total", "Micro-batches dispatched."),
	}
	hist := c.hist
	reg.CounterFunc("serve_requests_total", "Requests served successfully.",
		func() float64 { return float64(hist.Count()) })
	return c
}

func (c *statsCollector) record(p Prediction) { c.hist.Observe(p.Latency) }

func (c *statsCollector) recordBatch() { c.batches.Inc() }

func (c *statsCollector) recordRejected() { c.rejected.Inc() }

func (c *statsCollector) recordExpired() { c.expired.Inc() }

func (c *statsCollector) recordEPCShed() { c.epcShed.Inc() }

// snapshot derives a Stats in a single read-side pass: one consistent
// histogram snapshot for every latency-derived field, one load per
// event counter.
func (c *statsCollector) snapshot() Stats {
	h := c.hist.Snapshot()
	s := Stats{
		Requests: h.Count,
		Rejected: uint64(c.rejected.Value()),
		Expired:  uint64(c.expired.Value()),
		EPCShed:  uint64(c.epcShed.Value()),
		Batches:  uint64(c.batches.Value()),
		Uptime:   time.Since(c.start),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(s.Requests) / float64(s.Batches)
	}
	if h.Count > 0 {
		s.AvgLatency = h.Mean()
		s.MaxLatency = h.Max
		s.P50Latency = h.Quantile(0.50)
		s.P95Latency = h.Quantile(0.95)
		s.P99Latency = h.Quantile(0.99)
		if secs := s.Uptime.Seconds(); secs > 0 {
			s.Throughput = float64(h.Count) / secs
		}
	}
	return s
}
