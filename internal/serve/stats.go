package serve

import (
	"sync"
	"time"
)

// Stats is a snapshot of a Server's serving counters.
type Stats struct {
	// Requests is the number of requests served successfully.
	Requests uint64
	// Rejected counts admission-control rejections: requests that
	// arrived at a full queue and failed fast with ErrOverloaded.
	Rejected uint64
	// Expired counts queued requests dropped because their context
	// ended before dispatch; they never occupied a batch slot.
	Expired uint64
	// EPCShed counts requests shed by pressure-aware admission
	// (Options.MaxEPCPressure): rejected because the host EPC was
	// overcommitted past the limit, before touching the queue.
	EPCShed uint64
	// EPCPressure is the host's EPC overcommit fraction at snapshot
	// time: 0 while the aggregate working set of all enclaves on the
	// host fits the usable EPC, 0.5 when it is 50% past it. Nonzero
	// pressure means every enclave touch pays the shared paging knee.
	EPCPressure float64
	// HostResidentBytes is the aggregate enclave working set on the
	// host at snapshot time (training enclave plus all replicas).
	HostResidentBytes int
	// Batches is the number of micro-batches dispatched.
	Batches uint64
	// AvgBatch is the mean micro-batch size.
	AvgBatch float64
	// AvgLatency and MaxLatency summarise request end-to-end time in
	// the server (enqueue to classification).
	AvgLatency time.Duration
	MaxLatency time.Duration
	// Throughput is requests per second since the server started.
	Throughput float64
	// Uptime is the time since the server started.
	Uptime time.Duration
}

// statsCollector accumulates counters across worker goroutines.
type statsCollector struct {
	mu       sync.Mutex
	start    time.Time
	requests uint64
	rejected uint64
	expired  uint64
	epcShed  uint64
	batches  uint64
	latSum   time.Duration
	latMax   time.Duration
}

func (c *statsCollector) record(p Prediction) {
	c.mu.Lock()
	c.requests++
	c.latSum += p.Latency
	if p.Latency > c.latMax {
		c.latMax = p.Latency
	}
	c.mu.Unlock()
}

func (c *statsCollector) recordBatch() {
	c.mu.Lock()
	c.batches++
	c.mu.Unlock()
}

func (c *statsCollector) recordRejected() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *statsCollector) recordExpired() {
	c.mu.Lock()
	c.expired++
	c.mu.Unlock()
}

func (c *statsCollector) recordEPCShed() {
	c.mu.Lock()
	c.epcShed++
	c.mu.Unlock()
}

func (c *statsCollector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Requests: c.requests,
		Rejected: c.rejected,
		Expired:  c.expired,
		EPCShed:  c.epcShed,
		Batches:  c.batches,
		Uptime:   time.Since(c.start),
	}
	if c.batches > 0 {
		s.AvgBatch = float64(c.requests) / float64(c.batches)
	}
	if c.requests > 0 {
		s.AvgLatency = c.latSum / time.Duration(c.requests)
		s.MaxLatency = c.latMax
		if secs := s.Uptime.Seconds(); secs > 0 {
			s.Throughput = float64(c.requests) / secs
		}
	}
	return s
}
