package serve

import (
	"runtime"
	"testing"
	"time"

	"plinius/internal/obs"
)

// TestLatencyPercentiles: the fixed-bucket histogram reports each
// percentile as its bucket's upper bound, in constant memory.
func TestLatencyPercentiles(t *testing.T) {
	c := newStatsCollector(obs.NewRegistry())
	for i := 0; i < 90; i++ {
		c.record(Prediction{Latency: 3 * time.Microsecond})
	}
	for i := 0; i < 10; i++ {
		c.record(Prediction{Latency: 1000 * time.Microsecond})
	}
	st := c.snapshot()
	// 3 µs lands in the (2,4] µs bucket; 1000 µs lands in (512,1024] µs,
	// whose bound is tightened to the observed 1 ms maximum.
	if st.P50Latency != 4*time.Microsecond {
		t.Fatalf("P50 = %v, want 4µs", st.P50Latency)
	}
	if st.P95Latency != 1000*time.Microsecond {
		t.Fatalf("P95 = %v, want 1ms", st.P95Latency)
	}
	if st.P99Latency != 1000*time.Microsecond {
		t.Fatalf("P99 = %v, want 1ms", st.P99Latency)
	}
	if st.P50Latency > st.P95Latency || st.P95Latency > st.P99Latency || st.P99Latency > st.MaxLatency {
		t.Fatalf("percentiles not monotonic: %v %v %v max %v",
			st.P50Latency, st.P95Latency, st.P99Latency, st.MaxLatency)
	}
}

// TestLatencyPercentilesNearestRank: with 10 requests the P99 is the
// 10th smallest (ceil(0.99*10)), so a single tail outlier must show.
func TestLatencyPercentilesNearestRank(t *testing.T) {
	c := newStatsCollector(obs.NewRegistry())
	for i := 0; i < 9; i++ {
		c.record(Prediction{Latency: time.Millisecond})
	}
	c.record(Prediction{Latency: 100 * time.Millisecond})
	st := c.snapshot()
	if st.P99Latency != 100*time.Millisecond {
		t.Fatalf("P99 = %v, want the 100ms outlier", st.P99Latency)
	}
	if st.P95Latency != 100*time.Millisecond {
		t.Fatalf("P95 = %v, want the 100ms outlier (ceil(9.5) = 10th)", st.P95Latency)
	}
	if st.P50Latency != 1024*time.Microsecond {
		t.Fatalf("P50 = %v, want the 1.024ms bucket bound", st.P50Latency)
	}
}

// TestLatencyPercentilesEmpty: no requests, no percentiles.
func TestLatencyPercentilesEmpty(t *testing.T) {
	c := newStatsCollector(obs.NewRegistry())
	st := c.snapshot()
	if st.P50Latency != 0 || st.P95Latency != 0 || st.P99Latency != 0 {
		t.Fatalf("empty collector reported percentiles %v %v %v",
			st.P50Latency, st.P95Latency, st.P99Latency)
	}
}

// TestAutoWorkersFootprintZeroGuard: a framework whose model is gone
// (crashed) reports a zero replica footprint; autoWorkers must not
// divide by it and falls back to a single worker.
func TestAutoWorkersFootprintZeroGuard(t *testing.T) {
	f, _ := newTrainedFramework(t, 2)
	f.Crash()
	if fp := f.ReplicaFootprint(); fp != 0 {
		t.Fatalf("ReplicaFootprint after crash = %d, want 0", fp)
	}
	if got := autoWorkers(f, f.ReplicaFootprint()); got != 1 {
		t.Fatalf("autoWorkers with zero footprint = %d, want 1", got)
	}
}

// TestAutoWorkersZeroHeadroomFloor: a host already at (or past) its
// usable EPC leaves no headroom; the pool still gets its one replica.
func TestAutoWorkersZeroHeadroomFloor(t *testing.T) {
	f, _ := newTrainedFrameworkOverhead(t, 2, 94<<20)
	if h := f.Host.Headroom(); h != 0 {
		t.Fatalf("Headroom = %d, test needs an exhausted host", h)
	}
	if got := autoWorkers(f, f.ReplicaFootprint()); got != 1 {
		t.Fatalf("autoWorkers with zero headroom = %d, want 1", got)
	}
}

// TestAutoWorkersGOMAXPROCSClamp: a tiny footprint would fit far more
// replicas than cores; the pool is clamped to GOMAXPROCS.
func TestAutoWorkersGOMAXPROCSClamp(t *testing.T) {
	f, _ := newTrainedFrameworkOverhead(t, 2, 1<<20)
	per := f.ReplicaFootprint()
	max := runtime.GOMAXPROCS(0)
	if f.Host.Headroom()/per <= max {
		t.Fatalf("headroom %d / footprint %d does not exceed GOMAXPROCS %d; test needs the clamp regime",
			f.Host.Headroom(), per, max)
	}
	if got := autoWorkers(f, f.ReplicaFootprint()); got != max {
		t.Fatalf("autoWorkers = %d, want GOMAXPROCS %d", got, max)
	}
}
