package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestShardedServingMatchesSequential: explicit Options.Shards serves
// through a pipelined shard group with predictions identical to the
// sequential enclave model, across refresh and key rotation.
func TestShardedServingMatchesSequential(t *testing.T) {
	f, test := newTrainedFramework(t, 8)
	want := make([]int, test.N)
	for i := 0; i < test.N; i++ {
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify %d: %v", i, err)
		}
		want[i] = cls
	}

	s, err := New(context.Background(), f, Options{
		Shards:          3,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.Shards() < 2 {
		t.Fatalf("Shards = %d, want a real split", s.Shards())
	}
	if s.Workers() < 1 {
		t.Fatalf("Workers = %d", s.Workers())
	}

	got := make([]int, test.N)
	var wg sync.WaitGroup
	errCh := make(chan error, test.N)
	for i := 0; i < test.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Classify(context.Background(), test.Image(i))
			if err != nil {
				errCh <- err
				return
			}
			got[i] = pred.Class
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("Classify: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded class[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// Refresh and rotation go through the group, no request dropped.
	if err := f.TrainIters(4, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	v1 := s.Version()
	iter, err := s.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if iter != f.Iteration() || s.Version() <= v1 {
		t.Fatalf("Refresh iter %d version %d, want iter %d version > %d", iter, s.Version(), f.Iteration(), v1)
	}
	if _, err := s.RotateKey(context.Background()); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	pred, err := s.Classify(context.Background(), test.Image(0))
	if err != nil {
		t.Fatalf("Classify after rotate: %v", err)
	}
	cls, err := f.Classify(test.Image(0))
	if err != nil {
		t.Fatalf("sequential classify after rotate: %v", err)
	}
	if pred.Class != cls {
		t.Fatalf("after rotate class %d, want %d", pred.Class, cls)
	}
}

// TestShardAutoKeepsReplicasWhenFits: with a replica footprint inside
// the host headroom, ShardAuto behaves exactly like the whole-model
// replica pool.
func TestShardAutoKeepsReplicasWhenFits(t *testing.T) {
	f, test := newTrainedFrameworkOverhead(t, 4, 10<<20)
	s, err := New(context.Background(), f, Options{
		Workers:         2,
		Shards:          ShardAuto,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.Shards() != 0 || s.ShardsStreaming() {
		t.Fatalf("ShardAuto sharded (%d shards) although a replica fits", s.Shards())
	}
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", s.Workers())
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify: %v", err)
	}
}

// TestShardAutoShardsWhenReplicaOverHeadroom: a replica footprint past
// the headroom flips ShardAuto into the shard pipeline, which keeps
// the host under the paging knee where the monolithic pool would have
// crossed it.
func TestShardAutoShardsWhenReplicaOverHeadroom(t *testing.T) {
	// Training enclave ~50 MB: headroom ~43 MB < the ~50 MB replica
	// footprint, so ShardAuto must shard. The shard enclaves reserve
	// only the forward-pass working set, so the host stays under EPC.
	f, test := newTrainedFrameworkOverhead(t, 4, 50<<20)
	if f.ReplicaFootprint() <= f.Host.Headroom() {
		t.Fatalf("replica footprint %d fits headroom %d; test needs the over-headroom regime",
			f.ReplicaFootprint(), f.Host.Headroom())
	}
	s, err := New(context.Background(), f, Options{
		Shards:          ShardAuto,
		MaxBatch:        8,
		MaxQueueLatency: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.Shards() < 1 {
		t.Fatal("ShardAuto did not shard past the headroom")
	}
	for i := 0; i < 16; i++ {
		pred, err := s.Classify(context.Background(), test.Image(i))
		if err != nil {
			t.Fatalf("Classify %d: %v", i, err)
		}
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify %d: %v", i, err)
		}
		if pred.Class != cls {
			t.Fatalf("class[%d] = %d, want %d", i, pred.Class, cls)
		}
	}
	if f.Host.OverEPC() {
		t.Fatalf("sharded serving overcommitted the host: resident %d MB", f.Host.Resident()>>20)
	}
	if st := s.Stats(); st.EPCPressure != 0 {
		t.Fatalf("EPCPressure = %v, want 0 with sharded serving inside the budget", st.EPCPressure)
	}
}
