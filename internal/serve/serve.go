// Package serve implements the Plinius secure inference serving
// subsystem: the paper's §VI secure classification turned into a
// request-level model server.
//
// A Server accepts single-image classification requests concurrently,
// coalesces them into dynamic micro-batches — a batch is dispatched
// when it reaches Options.MaxBatch or when its oldest request has
// waited Options.MaxQueueLatency — and fans the batches out to a pool
// of enclave worker replicas. Each replica is its own enclave with its
// own encryption engine and its own copy of the model restored from an
// immutable published snapshot in PM (core.Replica), so workers share
// no mutable state and scale across cores while parameters and inputs
// stay inside enclave memory, exactly as in the single-enclave
// experiment.
//
// Replicas join their framework's EPC host: on real SGX all enclaves
// on one machine share a single enclave page cache, so the pool's
// aggregate working set — training enclave plus every replica — is
// what decides whether serving runs on the fast side of the paging
// knee. Options.Workers = WorkersAuto sizes the pool from the host's
// remaining EPC headroom (one replica footprint per replica, at least
// 1, at most GOMAXPROCS); Stats.EPCPressure reports the host's
// overcommit fraction, nonzero exactly when co-located enclaves have
// jointly outgrown the usable EPC.
//
// Admission control is deadline-aware: the request queue is bounded
// (Options.QueueDepth) and a full queue rejects immediately with
// ErrOverloaded rather than applying unbounded backpressure; a queued
// request whose context expires before dispatch is dropped without
// ever occupying a micro-batch slot. Options.MaxEPCPressure adds
// pressure-aware admission: requests are shed while the host EPC is
// overcommitted past the limit.
//
// The server participates in the v2 model-publication handshake:
// Refresh restores every replica to the latest published version, one
// replica at a time, while the others keep serving — zero-downtime and
// race-free against concurrent training, because published snapshots
// are immutable and pinned during restore. RotateKey re-provisions the
// data key end to end (framework re-seal + per-replica attested key
// delivery) with the same no-gap property.
//
// Dispatch preserves the model's math: every layer processes batch
// samples independently, so a request's predicted class is identical
// whatever batch it lands in and identical to sequential
// Framework.Infer.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/fleet"
	"plinius/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBatch        = 32
	DefaultMaxQueueLatency = 2 * time.Millisecond
	DefaultQueueDepth      = 1024
)

// WorkersAuto sizes the replica pool from the EPC headroom left on the
// framework's host: as many replicas as fit the remaining usable EPC
// without pushing the host over the paging knee (each replica claims
// Framework.ReplicaFootprint bytes), at least 1, at most GOMAXPROCS.
// A model so large that even one replica overcommits the host still
// gets its one replica — it serves, but pays paging and reports
// EPCPressure.
const WorkersAuto = -1

// ShardAuto, as Options.Shards, shards the model automatically: when
// even a single whole-model replica would not fit the host's remaining
// EPC headroom, the server serves through a core.ShardGroup pipeline —
// the model split into contiguous layer ranges, each in its own small
// shard enclave, hot ranges bounded to the headroom and parked ranges
// streamed back from the pinned published snapshot in PM — instead of
// a monolithic replica that would push the whole host over the paging
// knee. When a replica fits, ShardAuto behaves exactly like the
// whole-model replica pool.
const ShardAuto = -1

// Options parameterises a Server.
type Options struct {
	// Workers is the number of enclave inference replicas (default 1).
	// WorkersAuto sizes the pool from the host's EPC headroom.
	Workers int
	// MaxBatch is the micro-batch size at which a batch dispatches
	// without waiting (default 32).
	MaxBatch int
	// MaxQueueLatency bounds how long a queued request may wait for
	// its batch to fill before the batch is flushed anyway (default
	// 2ms). Lower values favour latency, higher values throughput.
	MaxQueueLatency time.Duration
	// QueueDepth is the request queue capacity (default 1024). A
	// Classify arriving at a full queue is rejected immediately with
	// ErrOverloaded; callers are expected to shed or retry with
	// backoff.
	QueueDepth int
	// Seed differentiates the replica enclaves' RNGs (IVs etc.).
	Seed int64
	// MaxEPCPressure, when positive, enables pressure-aware admission:
	// a Classify arriving while the host EPC is overcommitted beyond
	// this fraction (Stats.EPCPressure, e.g. 0.25 = working set 25%
	// past the usable EPC) is shed immediately with an error matching
	// both ErrOverloaded and ErrEPCPressure. Zero disables shedding:
	// an overcommitted host keeps serving, just slower (every enclave
	// touch pays the shared paging knee).
	MaxEPCPressure float64
	// Shards selects sharded serving: 0 (default) serves whole-model
	// replicas; a positive count pipelines the model across at most
	// that many shard enclaves (core.ShardGroup); ShardAuto shards
	// only when a whole replica exceeds the host's EPC headroom. In
	// shard mode Workers is ignored — the pool is one pipelined group,
	// and the worker count is its residency window.
	Shards int
	// ShardOverheadBytes is the parked per-shard-enclave working set
	// in shard mode (default core.DefaultShardOverheadBytes). Small
	// hosts shard at finer granularity with a smaller overhead.
	ShardOverheadBytes int
	// Fleet, when non-empty, serves through the multi-host fabric
	// (internal/fleet) instead of replicas or a single shard group:
	// the model is bin-packed across these hosts' EPC headrooms into
	// replica groups of pipelined shard enclaves joined by attested
	// inter-host channels, and micro-batches are routed least-loaded
	// across the groups. Workers and Shards are ignored in fleet mode;
	// the worker count is the fleet's aggregate pipeline window. A
	// model with no feasible placement fails construction with an
	// error matching fleet.ErrInfeasible.
	Fleet []*enclave.Host
	// FleetAuto gates the fleet the way ShardAuto gates sharding: the
	// Fleet hosts are engaged only when a whole-model replica exceeds
	// the framework host's EPC headroom; while a replica fits, the
	// server ignores Fleet and serves the plain replica pool.
	FleetAuto bool
	// FleetReplicas is the number of replica groups in fleet mode;
	// zero packs as many as the fleet's capacity admits.
	FleetReplicas int
	// Quantized serves the int8-quantized snapshot variant instead of
	// fp32: publication switches to quantized mode (every snapshot
	// carries the int8 variant alongside fp32), and each replica
	// restores the variant — ~4x smaller sealed payloads and EPC
	// footprints, so more replicas fit the same headroom, at a small
	// documented accuracy cost. Applies to the whole-model replica
	// pool; shard and fleet modes serve fp32 regardless.
	Quantized bool
	// Metrics is the registry the server's metrics (and, in shard
	// mode, the shard pipeline's) register into. Nil gets the server a
	// private registry, retrievable via Server.Metrics — servers are
	// built and torn down freely without colliding on series.
	Metrics *obs.Registry
	// TraceKeep is how many of the slowest request traces the server
	// retains for Server.SlowTraces (default obs.DefaultTraceKeep).
	TraceKeep int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 && o.Workers != WorkersAuto {
		o.Workers = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxQueueLatency <= 0 {
		o.MaxQueueLatency = DefaultMaxQueueLatency
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	return o
}

// Prediction is the answer to one classification request.
type Prediction struct {
	// Class is the predicted class index.
	Class int
	// Latency is the request's end-to-end time in the server, from
	// enqueue to classification.
	Latency time.Duration
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Worker is the index of the replica that served the request.
	Worker int
	// ModelVersion is the published model version that answered.
	ModelVersion uint64
}

// Server errors.
var (
	ErrClosed      = errors.New("serve: server is closed")
	ErrBadImage    = errors.New("serve: image does not match the model input size")
	ErrOverloaded  = errors.New("serve: request queue is full")
	ErrNotServable = errors.New("serve: framework cannot serve a model")
	ErrEPCPressure = errors.New("serve: host EPC overcommitted past the admission limit")
)

type request struct {
	ctx        context.Context
	image      []float32
	enq        time.Time
	dispatched time.Time // stamped by the batcher when the batch flushes
	tr         *obs.Trace
	done       chan result
}

type result struct {
	pred Prediction
	err  error
}

// ctlKind selects a worker control operation; control calls run inside
// the worker goroutine, so they serialize with classification on that
// replica while the rest of the pool keeps serving.
type ctlKind int

const (
	ctlRefresh ctlKind = iota
	ctlRotate
)

type ctlCall struct {
	kind ctlKind
	ack  chan ctlReply
}

type ctlReply struct {
	iter    int
	version uint64
	err     error
}

// Server is a running inference service over one trained framework.
type Server struct {
	opts      Options
	f         *core.Framework
	host      *enclave.Host
	inputSize int
	replicas  []*core.Replica
	group     *core.ShardGroup // non-nil in shard mode; replicas empty
	fleet     *fleet.Fleet     // non-nil in fleet mode; group and replicas empty
	workers   int

	reqCh   chan *request
	batchCh chan []*request
	ctlCh   []chan ctlCall // one per worker
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed; held shared across enqueues
	closed bool
	ctlMu  sync.Mutex    // serializes Refresh / RotateKey
	iter   atomic.Int64  // training iteration of the served model
	ver    atomic.Uint64 // published version of the served model

	reg    *obs.Registry
	tracer *obs.Tracer
	stats  statsCollector
}

// New builds and starts a Server on f's model. The current enclave
// parameters are published to PM as an immutable versioned snapshot
// (so serving sees exactly the weights f holds), then Options.Workers
// replicas are attested, provisioned and restored from that pinned
// version. Training may continue concurrently: call Refresh to roll
// the pool forward to a later published version.
//
// ctx bounds server construction (replica attestation and restore); it
// does not affect the running server. A framework that cannot serve —
// crashed, or dataset-less with nothing published or mirrored in PM —
// fails fast with an error matching ErrNotServable (and the underlying
// core sentinel).
func New(ctx context.Context, f *core.Framework, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := f.Servable(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNotServable, err)
	}
	// A lazily-recovered framework (Recover with restoreNow=false)
	// still holds random weights while PM holds the real model; pull
	// the mirror in before publishing so serving never snapshots an
	// untrained enclave state.
	if err := f.EnsureModelCurrent(); err != nil {
		return nil, fmt.Errorf("serve: restore model before publish: %w", err)
	}
	// Quantized serving flips the framework into quantized publication
	// before the snapshot below, so the very first published version
	// already carries the int8 variant the replicas will restore.
	if opts.Quantized {
		f.SetPublishQuantized(true)
	}
	ver, err := f.LatestPublished()
	if err != nil {
		return nil, fmt.Errorf("serve: read publication: %w", err)
	}
	// Publish the framework's current model — unless the enclave holds
	// nothing (iteration 0, e.g. dataset-less after a restart) and a
	// previously published version already exists; then serve that
	// instead of superseding it with random weights.
	if f.Iteration() > 0 || ver == 0 {
		ver, err = f.Publish()
		if err != nil {
			return nil, fmt.Errorf("serve: publish model to PM: %w", err)
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:      opts,
		f:         f,
		host:      f.Host,
		inputSize: f.Net.InputSize(),
		reqCh:     make(chan *request, opts.QueueDepth),
		batchCh:   make(chan []*request),
		reg:       reg,
		tracer:    obs.NewTracer(opts.TraceKeep),
		stats:     newStatsCollector(reg),
	}
	reg.GaugeFunc("serve_epc_pressure", "Host EPC overcommit fraction (0 = working set fits the usable EPC).",
		func() float64 { return s.host.Overcommit() })
	reg.GaugeFunc("serve_host_resident_bytes", "Aggregate enclave working set on the host.",
		func() float64 { return float64(s.host.Resident()) })
	reg.GaugeFunc("serve_queue_len", "Requests currently queued for batching.",
		func() float64 { return float64(len(s.reqCh)) })
	reg.GaugeFunc("serve_quantized", "1 when the pool serves the int8-quantized snapshot variant, 0 for fp32.",
		func() float64 {
			if s.Precision() == darknet.Int8 {
				return 1
			}
			return 0
		})

	// Fleet serving: the multi-host fabric, when Options.Fleet hosts
	// are given (gated on the over-headroom regime by FleetAuto). The
	// fleet is one logical pool: the router inside it spreads batches
	// over replica groups, so the server runs one worker per slot of
	// the aggregate pipeline window.
	fleeted := len(opts.Fleet) > 0
	if fleeted && opts.FleetAuto {
		fp := replicaFootprint(f, opts)
		fleeted = fp > 0 && fp > f.Host.Headroom()
	}
	if fleeted {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serve: cancelled building fleet: %w", err)
		}
		fl, err := fleet.New(f, fleet.Options{
			Hosts:         opts.Fleet,
			Replicas:      opts.FleetReplicas,
			Batch:         opts.MaxBatch,
			OverheadBytes: opts.ShardOverheadBytes,
			Seed:          opts.Seed,
			Metrics:       reg,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: fleet: %w", err)
		}
		s.fleet = fl
		s.workers = fl.Window()
		s.iter.Store(int64(fl.Iteration()))
		s.ver.Store(fl.Version())
		s.wg.Add(1 + s.workers)
		go s.batcher()
		for i := 0; i < s.workers; i++ {
			go s.fleetWorker(i)
		}
		return s, nil
	}

	// Sharded serving: explicit Options.Shards, or ShardAuto when even
	// one whole-model replica would blow past the host's remaining EPC
	// headroom — the regime where a monolithic pool would drag every
	// co-located enclave over the paging knee.
	sharded := opts.Shards > 0
	if opts.Shards == ShardAuto {
		fp := replicaFootprint(f, opts)
		sharded = fp > 0 && fp > f.Host.Headroom()
	}
	if sharded {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serve: cancelled building shard group: %w", err)
		}
		so := core.ShardOptions{
			Batch:         opts.MaxBatch,
			Seed:          opts.Seed,
			OverheadBytes: opts.ShardOverheadBytes,
			Metrics:       reg,
		}
		if opts.Shards > 0 {
			so.Shards = opts.Shards
		}
		g, err := f.NewShardGroup(so)
		if err != nil {
			return nil, fmt.Errorf("serve: shard group: %w", err)
		}
		s.group = g
		s.workers = g.Window()
		s.iter.Store(int64(g.Iteration()))
		s.ver.Store(g.Version())
		s.wg.Add(1 + s.workers)
		go s.batcher()
		for i := 0; i < s.workers; i++ {
			go s.shardWorker(i)
		}
		return s, nil
	}

	if opts.Workers == WorkersAuto {
		opts.Workers = autoWorkers(f, replicaFootprint(f, opts))
		s.opts.Workers = opts.Workers
	}
	var repOpts []core.ReplicaOption
	if opts.Quantized {
		repOpts = append(repOpts, core.WithQuantizedReplica())
	}
	for i := 0; i < opts.Workers; i++ {
		if err := ctx.Err(); err != nil {
			for _, r := range s.replicas {
				_ = r.Close()
			}
			return nil, fmt.Errorf("serve: cancelled building replica %d: %w", i, err)
		}
		rep, err := f.NewReplica(opts.Seed+int64(i)+1, repOpts...)
		if err != nil {
			for _, r := range s.replicas {
				_ = r.Close()
			}
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		s.replicas = append(s.replicas, rep)
	}
	s.workers = opts.Workers
	s.iter.Store(int64(s.replicas[0].Iteration()))
	s.ver.Store(ver)
	s.wg.Add(1 + opts.Workers)
	go s.batcher()
	for i, rep := range s.replicas {
		ch := make(chan ctlCall)
		s.ctlCh = append(s.ctlCh, ch)
		go s.worker(i, rep, ch)
	}
	return s, nil
}

// replicaFootprint is the per-replica EPC claim at the configured
// serving precision: a quantized pool restores the int8 snapshot
// variant, so auto worker sizing and the ShardAuto/FleetAuto gates see
// the ~4x smaller footprint and fit more replicas per host.
func replicaFootprint(f *core.Framework, opts Options) int {
	if opts.Quantized {
		return f.ReplicaFootprintAt(darknet.Int8)
	}
	return f.ReplicaFootprint()
}

// autoWorkers implements WorkersAuto: fit the replica pool into the
// EPC headroom left on the framework's host. Each replica claims per
// bytes — the model parameters at the serving precision plus
// per-enclave overhead; replicas beyond the remaining usable EPC would
// push every co-located enclave — including the training enclave —
// past the shared paging knee, so the pool stops at the budget.
// Clamped to [1, GOMAXPROCS]: one replica always serves (paying
// pressure if it must), and replicas beyond the CPU count add no
// forward-pass parallelism.
func autoWorkers(f *core.Framework, per int) int {
	n := 1
	if per > 0 {
		n = f.Host.Headroom() / per
	}
	if n < 1 {
		n = 1
	}
	if max := runtime.GOMAXPROCS(0); n > max {
		n = max
	}
	return n
}

// Classify submits one image and blocks until its micro-batch has been
// served or ctx is done. The image must stay unmodified for the
// duration of the call (it is copied into the batch buffer only at
// dispatch). A full request queue rejects immediately with
// ErrOverloaded; a request whose ctx expires while queued is dropped
// without occupying a batch slot.
func (s *Server) Classify(ctx context.Context, image []float32) (Prediction, error) {
	// One trace per request, closed on every exit path: the tracer's
	// active count returns to zero whenever the server is idle.
	tr := s.tracer.Start()
	pred, err := s.classify(ctx, image, tr)
	if err != nil {
		tr.Fail(err)
	}
	tr.Finish()
	return pred, err
}

func (s *Server) classify(ctx context.Context, image []float32, tr *obs.Trace) (Prediction, error) {
	if err := ctx.Err(); err != nil {
		return Prediction{}, err
	}
	if len(image) != s.inputSize {
		return Prediction{}, fmt.Errorf("%w: got %d floats, want %d", ErrBadImage, len(image), s.inputSize)
	}
	if s.opts.MaxEPCPressure > 0 {
		if p := s.host.Overcommit(); p > s.opts.MaxEPCPressure {
			s.stats.recordEPCShed()
			return Prediction{}, fmt.Errorf("%w (pressure %.2f > %.2f): %w",
				ErrOverloaded, p, s.opts.MaxEPCPressure, ErrEPCPressure)
		}
	}
	req := &request{ctx: ctx, image: image, enq: time.Now(), tr: tr, done: make(chan result, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Prediction{}, ErrClosed
	}
	// The shared lock is held across the enqueue so Close cannot close
	// reqCh between the check and the send. The send never blocks: a
	// full queue is an admission-control rejection, not backpressure.
	select {
	case s.reqCh <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.stats.recordRejected()
		return Prediction{}, fmt.Errorf("%w (depth %d)", ErrOverloaded, s.opts.QueueDepth)
	}

	select {
	case res := <-req.done:
		if res.err == nil {
			// The wakeup gap between the worker stamping the result
			// and this goroutine consuming it, so a request's spans
			// tile its end-to-end latency.
			tr.Add("deliver", time.Since(req.enq)-res.pred.Latency)
		}
		return res.pred, res.err
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
}

// batcher coalesces queued requests into micro-batches: a batch goes
// out when it reaches MaxBatch or when its first request has waited
// MaxQueueLatency. Requests whose context already expired are dropped
// here, before they can occupy a batch slot.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batchCh)
	var (
		batch  []*request
		timer  *time.Timer
		timerC <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(batch) > 0 {
			now := time.Now()
			for _, req := range batch {
				req.dispatched = now
			}
			s.batchCh <- batch
			batch = nil
		}
	}
	for {
		select {
		case req, ok := <-s.reqCh:
			if !ok {
				flush()
				return
			}
			if req.ctx.Err() != nil {
				s.stats.recordExpired()
				continue
			}
			batch = append(batch, req)
			if len(batch) >= s.opts.MaxBatch {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(s.opts.MaxQueueLatency)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		}
	}
}

// serveBatch runs one micro-batch through classify and delivers
// per-request results: requests that expired while the batch waited
// are dropped, the live images are copied into the contiguous batch
// buffer buf, and every live request gets its prediction (stamped with
// the post-classification version) or the batch error. live is reused
// across calls; the possibly-regrown slice is returned.
func (s *Server) serveBatch(id int, batch, live []*request, buf []float32,
	classify func(context.Context, []float32) ([]int, error), version func() uint64) []*request {
	live = live[:0]
	for _, req := range batch {
		if req.ctx.Err() != nil {
			s.stats.recordExpired()
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return live
	}
	n := len(live)
	for i, req := range live {
		copy(buf[i*s.inputSize:(i+1)*s.inputSize], req.image)
	}
	// One batch-level trace collects the pipeline's spans (window,
	// per-shard wait/restore/open/compute/seal, or the replica's
	// compute), folded into every rider's request trace below. The
	// pprof labels attribute the enclave compute in CPU profiles to
	// the worker and the batch's lead request.
	bt := obs.NewTrace()
	dispatch := time.Now()
	var (
		classes []int
		err     error
	)
	pprof.Do(obs.ContextWithTrace(context.Background(), bt),
		pprof.Labels("worker", strconv.Itoa(id), "request_id", strconv.FormatUint(live[0].tr.ID(), 10)),
		func(ctx context.Context) {
			classes, err = classify(ctx, buf[:n*s.inputSize])
		})
	now := time.Now()
	var ver uint64
	if err == nil {
		ver = version()
	}
	spans := bt.Spans()
	for i, req := range live {
		if err != nil {
			req.done <- result{err: err}
			continue
		}
		pred := Prediction{
			Class:        classes[i],
			Latency:      now.Sub(req.enq),
			BatchSize:    n,
			Worker:       id,
			ModelVersion: ver,
		}
		s.stats.record(pred)
		req.tr.Add("queue", req.dispatched.Sub(req.enq))
		req.tr.Add("batch", dispatch.Sub(req.dispatched))
		req.tr.AddSpans(spans)
		req.done <- result{pred: pred}
	}
	if err == nil {
		s.stats.recordBatch()
	}
	return live
}

// worker serves micro-batches on one enclave replica. Control calls
// (refresh, rotate) run in the same loop, so they never race with
// classification on this replica.
func (s *Server) worker(id int, rep *core.Replica, ctl <-chan ctlCall) {
	defer s.wg.Done()
	buf := make([]float32, s.opts.MaxBatch*s.inputSize)
	live := make([]*request, 0, s.opts.MaxBatch)
	for {
		select {
		case batch, ok := <-s.batchCh:
			if !ok {
				return
			}
			live = s.serveBatch(id, batch, live, buf, rep.ClassifyBatchCtx, rep.Version)
		case call := <-ctl:
			var reply ctlReply
			switch call.kind {
			case ctlRefresh:
				reply.iter, reply.err = rep.Refresh()
			case ctlRotate:
				reply.iter, reply.err = rep.Rotate()
			}
			reply.version = rep.Version()
			call.ack <- reply
		}
	}
}

// shardWorker serves micro-batches through the shard-group pipeline:
// several workers submit concurrently, so shard k processes batch i+1
// while shard k+1 processes batch i. Per-request semantics (expired
// drops, latency, stats) are serveBatch's, same as the replica worker.
func (s *Server) shardWorker(id int) {
	defer s.wg.Done()
	buf := make([]float32, s.opts.MaxBatch*s.inputSize)
	live := make([]*request, 0, s.opts.MaxBatch)
	for batch := range s.batchCh {
		live = s.serveBatch(id, batch, live, buf, s.group.ClassifyBatchCtx, s.group.Version)
	}
}

// fleetWorker serves micro-batches through the multi-host fabric: the
// fleet's router picks a replica group per batch, and several workers
// submit concurrently to keep every group's pipeline full.
func (s *Server) fleetWorker(id int) {
	defer s.wg.Done()
	buf := make([]float32, s.opts.MaxBatch*s.inputSize)
	live := make([]*request, 0, s.opts.MaxBatch)
	for batch := range s.batchCh {
		live = s.serveBatch(id, batch, live, buf, s.fleet.ClassifyBatchCtx, s.fleet.Version)
	}
}

// Close stops accepting requests, serves everything already queued or
// in flight, tears down the replicas (or the shard group, or the
// fleet) and returns. Subsequent Classify and Close calls return
// ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()

	close(s.reqCh)
	s.wg.Wait()
	if s.fleet != nil {
		return s.fleet.Close()
	}
	if s.group != nil {
		return s.group.Close()
	}
	var firstErr error
	for _, r := range s.replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Workers returns the number of serving workers: enclave replicas, or
// in shard mode the pipeline's residency window.
func (s *Server) Workers() int { return s.workers }

// Shards returns the number of shard enclaves the model is pipelined
// across (per replica group in fleet mode), 0 when serving whole-model
// replicas.
func (s *Server) Shards() int {
	switch {
	case s.fleet != nil:
		return s.fleet.Shards()
	case s.group != nil:
		return s.group.Shards()
	}
	return 0
}

// ShardsStreaming reports whether the shard pipeline streams parked
// layer ranges from PM per batch (the over-headroom regime). Always
// false when serving whole-model replicas.
func (s *Server) ShardsStreaming() bool {
	if s.fleet != nil {
		return s.fleet.Streaming()
	}
	return s.group != nil && s.group.Streaming()
}

// ShardRestores counts layer-range restores from PM by the shard
// pipeline — the streaming mode's alternative currency to page faults.
// For a coherent multi-counter snapshot (restores, stalls, prefetch
// waits, prefetched) use Stats instead.
func (s *Server) ShardRestores() uint64 {
	switch {
	case s.fleet != nil:
		return s.fleet.Restores()
	case s.group != nil:
		return s.group.Restores()
	}
	return 0
}

// FleetSize returns the number of hosts in the serving fleet, 0 when
// not in fleet mode.
func (s *Server) FleetSize() int {
	if s.fleet == nil {
		return 0
	}
	return s.fleet.Hosts()
}

// FleetGroups returns the number of replica groups in fleet mode, 0
// otherwise.
func (s *Server) FleetGroups() int {
	if s.fleet == nil {
		return 0
	}
	return s.fleet.Groups()
}

// FleetHostReports returns the per-host fleet view (EPC budget, load,
// paging, placed shard ranges), nil when not in fleet mode.
func (s *Server) FleetHostReports() []fleet.HostReport {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.HostReports()
}

// FleetDegraded reports whether the serving fleet fell back to
// degraded streaming after host failures; always false outside fleet
// mode.
func (s *Server) FleetDegraded() bool {
	return s.fleet != nil && s.fleet.Degraded()
}

// FleetHostsDown returns how many fleet hosts are marked down, 0
// outside fleet mode.
func (s *Server) FleetHostsDown() int {
	if s.fleet == nil {
		return 0
	}
	return s.fleet.HostsDown()
}

// FleetRejoin re-admits fleet hosts that have come back and promotes
// the fleet to the best placement the live hosts hold (fleet.Rejoin).
// No-op outside fleet mode.
func (s *Server) FleetRejoin() error {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.Rejoin()
}

// Precision returns the parameter precision the pool serves: Int8 when
// Options.Quantized selected the quantized snapshot variant (whole-
// model replica pool only), FP32 otherwise — shard and fleet pipelines
// always serve fp32.
func (s *Server) Precision() darknet.Precision {
	if s.opts.Quantized && s.fleet == nil && s.group == nil {
		return darknet.Int8
	}
	return darknet.FP32
}

// Iteration returns the training iteration of the served model.
func (s *Server) Iteration() int { return int(s.iter.Load()) }

// Version returns the published model version the pool serves (the
// lowest across replicas mid-refresh; all replicas converge once a
// Refresh or RotateKey completes).
func (s *Server) Version() uint64 { return s.ver.Load() }

// broadcast runs one control operation on every replica, one at a
// time, inside each worker's goroutine: the replica being updated
// pauses, the rest of the pool keeps serving, so there is never a
// serving gap. ctx cancels between replicas (never mid-replica).
func (s *Server) broadcast(ctx context.Context, kind ctlKind) (int, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, 0, ErrClosed
	}
	var (
		iter     int
		version  uint64
		firstErr error
	)
	for i, ch := range s.ctlCh {
		if err := ctx.Err(); err != nil {
			return 0, 0, fmt.Errorf("serve: cancelled before replica %d: %w", i, err)
		}
		call := ctlCall{kind: kind, ack: make(chan ctlReply, 1)}
		ch <- call
		reply := <-call.ack
		if reply.err != nil {
			if firstErr == nil {
				firstErr = reply.err
			}
			continue
		}
		iter, version = reply.iter, reply.version
	}
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return iter, version, nil
}

// Refresh rolls every replica forward to the latest published model
// version, one replica at a time, and returns the restored iteration.
// It is zero-downtime (the pool keeps serving throughout) and safe
// against concurrent training: each replica pins the version it
// restores, and published snapshots are immutable, so no torn model
// can ever be observed.
//
// Every replica is attempted even if one fails; on error the pool may
// be serving mixed versions (Iteration and Version keep the old
// values) — retry Refresh or Close the server.
func (s *Server) Refresh(ctx context.Context) (int, error) {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if s.fleet != nil {
		iter, err := s.groupControl(ctx, s.fleet.Refresh)
		if err != nil {
			return 0, err
		}
		return iter, nil
	}
	if s.group != nil {
		iter, err := s.groupControl(ctx, s.group.Refresh)
		if err != nil {
			return 0, err
		}
		return iter, nil
	}
	iter, version, err := s.broadcast(ctx, ctlRefresh)
	if err != nil {
		return 0, err
	}
	s.iter.Store(int64(iter))
	s.ver.Store(version)
	return iter, nil
}

// groupControl runs one shard-group (or fleet-wide) control operation
// — Refresh or Rotate — under the server's closed check. The group or
// fleet quiesces its own pipeline(s) — queued requests wait, none are
// dropped — because the shards of one model must change version
// together: a half-refreshed pipeline would mix two versions inside a
// single forward pass. In fleet mode the drain-and-flip covers every
// replica group on every host at once.
func (s *Server) groupControl(ctx context.Context, op func() (int, error)) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	iter, err := op()
	if err != nil {
		return 0, err
	}
	s.iter.Store(int64(iter))
	if s.fleet != nil {
		s.ver.Store(s.fleet.Version())
	} else {
		s.ver.Store(s.group.Version())
	}
	return iter, nil
}

// RefreshSync re-reads the published model on every replica.
//
// Deprecated: RefreshSync is the v1 Refresh() signature kept as a thin
// shim; use Refresh(ctx), which adds cancellation between replicas.
func (s *Server) RefreshSync() (int, error) { return s.Refresh(context.Background()) }

// RotateKey rotates the data key end to end without a serving gap:
// the framework generates a fresh key, re-seals the training data
// matrix and PM mirror, and publishes a new snapshot under the new
// key; then every replica, one at a time, receives the key over a
// fresh attestation channel and restores the new snapshot while the
// rest of the pool keeps serving. It returns the published version
// now being served.
func (s *Server) RotateKey(ctx context.Context) (uint64, error) {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if _, err := s.f.RotateKey(); err != nil {
		return 0, err
	}
	if s.fleet != nil {
		if _, err := s.groupControl(ctx, s.fleet.Rotate); err != nil {
			return 0, err
		}
		return s.ver.Load(), nil
	}
	if s.group != nil {
		if _, err := s.groupControl(ctx, s.group.Rotate); err != nil {
			return 0, err
		}
		return s.ver.Load(), nil
	}
	iter, version, err := s.broadcast(ctx, ctlRotate)
	if err != nil {
		return 0, err
	}
	s.iter.Store(int64(iter))
	s.ver.Store(version)
	return version, nil
}

// Stats returns a snapshot of the serving counters, including the
// host-level EPC pressure at the moment of the call and — in shard
// mode — the pipeline's restore/stall/prefetch counters.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	st.Precision = s.Precision().String()
	st.EPCPressure = s.host.Overcommit()
	st.HostResidentBytes = s.host.Resident()
	switch {
	case s.fleet != nil:
		st.ShardRestores = s.fleet.Restores()
		st.ShardStalls = s.fleet.Stalls()
		st.ShardPrefetchWaits = s.fleet.PrefetchWaits()
		st.ShardPrefetched = s.fleet.PrefetchedRestores()
		st.FleetHosts = s.fleet.Hosts()
		st.FleetGroups = s.fleet.Groups()
		st.FleetHandoffs = s.fleet.HandoffTransfers()
		st.FleetHandoffBytes = s.fleet.HandoffBytes()
		st.FleetHostsDown = s.fleet.HostsDown()
		st.FleetDegraded = s.fleet.Degraded()
		st.FleetReplans = s.fleet.Replans()
		st.FleetEvictedGroups = s.fleet.EvictedGroups()
		st.FleetHandoffRetries = s.fleet.HandoffRetries()
	case s.group != nil:
		st.ShardRestores = s.group.Restores()
		st.ShardStalls = s.group.Stalls()
		st.ShardPrefetchWaits = s.group.PrefetchWaits()
		st.ShardPrefetched = s.group.PrefetchedRestores()
	}
	return st
}

// EPCPressure returns the host's current EPC overcommit fraction: 0
// while the aggregate working set of all co-located enclaves (training
// plus every replica) fits the usable EPC, positive once it does not —
// the regime where every request pays the shared paging knee.
func (s *Server) EPCPressure() float64 { return s.host.Overcommit() }

// Metrics returns the server's metric registry (Options.Metrics, or
// the private registry created when none was given): the serving
// counters, latency histogram, EPC gauges, and — in shard mode — the
// shard pipeline's per-shard series.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Tracer returns the server's request tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SlowTraces returns the retained slowest-request traces, slowest
// first: each carries the per-stage spans (queue, batch, and the
// pipeline's window/wait/restore/open/compute/seal) that tile the
// request's end-to-end latency.
func (s *Server) SlowTraces() []obs.TraceSnapshot { return s.tracer.Slowest() }
