// Package serve implements the Plinius secure inference serving
// subsystem: the paper's §VI secure classification turned into a
// request-level model server.
//
// A Server accepts single-image classification requests concurrently,
// coalesces them into dynamic micro-batches — a batch is dispatched
// when it reaches Options.MaxBatch or when its oldest request has
// waited Options.MaxQueueLatency — and fans the batches out to a pool
// of enclave worker replicas. Each replica is its own enclave with its
// own encryption engine and its own copy of the model restored from
// the encrypted persistent mirror (core.Replica), so workers share no
// mutable state and scale across cores while parameters and inputs
// stay inside enclave memory, exactly as in the single-enclave
// experiment.
//
// Dispatch preserves the model's math: every layer processes batch
// samples independently, so a request's predicted class is identical
// whatever batch it lands in and identical to sequential
// Framework.Infer.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/core"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxBatch        = 32
	DefaultMaxQueueLatency = 2 * time.Millisecond
	DefaultQueueDepth      = 1024
)

// Options parameterises a Server.
type Options struct {
	// Workers is the number of enclave inference replicas (default 1).
	Workers int
	// MaxBatch is the micro-batch size at which a batch dispatches
	// without waiting (default 32).
	MaxBatch int
	// MaxQueueLatency bounds how long a queued request may wait for
	// its batch to fill before the batch is flushed anyway (default
	// 2ms). Lower values favour latency, higher values throughput.
	MaxQueueLatency time.Duration
	// QueueDepth is the request queue capacity; Classify blocks (or
	// honours its context) while the queue is full (default 1024).
	QueueDepth int
	// Seed differentiates the replica enclaves' RNGs (IVs etc.).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.MaxQueueLatency <= 0 {
		o.MaxQueueLatency = DefaultMaxQueueLatency
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = DefaultQueueDepth
	}
	return o
}

// Prediction is the answer to one classification request.
type Prediction struct {
	// Class is the predicted class index.
	Class int
	// Latency is the request's end-to-end time in the server, from
	// enqueue to classification.
	Latency time.Duration
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Worker is the index of the replica that served the request.
	Worker int
}

// Server errors.
var (
	ErrClosed   = errors.New("serve: server is closed")
	ErrBadImage = errors.New("serve: image does not match the model input size")
)

type request struct {
	image []float32
	enq   time.Time
	done  chan result
}

type result struct {
	pred Prediction
	err  error
}

// refreshCall asks a worker to re-restore its replica from PM inside
// the worker goroutine, so refreshes serialize with classification.
type refreshCall struct {
	ack chan refreshReply
}

type refreshReply struct {
	iter int
	err  error
}

// Server is a running inference service over one trained framework.
type Server struct {
	opts      Options
	inputSize int
	replicas  []*core.Replica

	reqCh     chan *request
	batchCh   chan []*request
	refreshCh []chan refreshCall // one per worker
	wg        sync.WaitGroup

	mu     sync.RWMutex // guards closed; held shared across enqueues
	closed bool
	iter   atomic.Int64 // training iteration of the served model

	stats statsCollector
}

// New builds and starts a Server on f's model. The current enclave
// parameters are first mirrored out to PM (so serving sees exactly the
// weights f holds), then Options.Workers replicas are attested,
// provisioned and restored from that mirror. The framework must keep
// mirroring enabled; it must not Train concurrently with serving.
func New(f *core.Framework, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if _, err := f.MirrorSave(); err != nil {
		return nil, fmt.Errorf("serve: publish model to PM: %w", err)
	}
	s := &Server{
		opts:      opts,
		inputSize: f.Net.InputSize(),
		reqCh:     make(chan *request, opts.QueueDepth),
		batchCh:   make(chan []*request),
	}
	for i := 0; i < opts.Workers; i++ {
		rep, err := f.NewReplica(opts.Seed + int64(i) + 1)
		if err != nil {
			for _, r := range s.replicas {
				_ = r.Close()
			}
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		s.replicas = append(s.replicas, rep)
	}
	s.iter.Store(int64(s.replicas[0].Iteration()))
	s.stats.start = time.Now()
	s.wg.Add(1 + opts.Workers)
	go s.batcher()
	for i, rep := range s.replicas {
		ch := make(chan refreshCall)
		s.refreshCh = append(s.refreshCh, ch)
		go s.worker(i, rep, ch)
	}
	return s, nil
}

// Classify submits one image and blocks until its micro-batch has been
// served or ctx is done. The image must stay unmodified for the
// duration of the call (it is copied into the batch buffer only at
// dispatch).
func (s *Server) Classify(ctx context.Context, image []float32) (Prediction, error) {
	if len(image) != s.inputSize {
		return Prediction{}, fmt.Errorf("%w: got %d floats, want %d", ErrBadImage, len(image), s.inputSize)
	}
	req := &request{image: image, enq: time.Now(), done: make(chan result, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Prediction{}, ErrClosed
	}
	// The shared lock is held across the send so Close cannot close
	// reqCh between the check and the enqueue; the batcher keeps
	// draining until Close, so a full queue cannot deadlock Close.
	select {
	case s.reqCh <- req:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return Prediction{}, ctx.Err()
	}

	select {
	case res := <-req.done:
		return res.pred, res.err
	case <-ctx.Done():
		return Prediction{}, ctx.Err()
	}
}

// batcher coalesces queued requests into micro-batches: a batch goes
// out when it reaches MaxBatch or when its first request has waited
// MaxQueueLatency.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batchCh)
	var (
		batch  []*request
		timer  *time.Timer
		timerC <-chan time.Time
	)
	flush := func() {
		if timer != nil {
			timer.Stop()
			timer, timerC = nil, nil
		}
		if len(batch) > 0 {
			s.batchCh <- batch
			batch = nil
		}
	}
	for {
		select {
		case req, ok := <-s.reqCh:
			if !ok {
				flush()
				return
			}
			batch = append(batch, req)
			if len(batch) >= s.opts.MaxBatch {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(s.opts.MaxQueueLatency)
				timerC = timer.C
			}
		case <-timerC:
			timer, timerC = nil, nil
			flush()
		}
	}
}

// worker serves micro-batches on one enclave replica: copy the images
// into the contiguous batch buffer, one network forward in the
// replica enclave, then deliver per-request results. Refresh calls run
// in the same loop, so they never race with classification.
func (s *Server) worker(id int, rep *core.Replica, refresh <-chan refreshCall) {
	defer s.wg.Done()
	buf := make([]float32, s.opts.MaxBatch*s.inputSize)
	for {
		select {
		case batch, ok := <-s.batchCh:
			if !ok {
				return
			}
			n := len(batch)
			for i, req := range batch {
				copy(buf[i*s.inputSize:(i+1)*s.inputSize], req.image)
			}
			classes, err := rep.ClassifyBatch(buf[:n*s.inputSize])
			now := time.Now()
			for i, req := range batch {
				if err != nil {
					req.done <- result{err: err}
					continue
				}
				pred := Prediction{
					Class:     classes[i],
					Latency:   now.Sub(req.enq),
					BatchSize: n,
					Worker:    id,
				}
				s.stats.record(pred)
				req.done <- result{pred: pred}
			}
			if err == nil {
				s.stats.recordBatch()
			}
		case call := <-refresh:
			iter, err := rep.Refresh()
			call.ack <- refreshReply{iter: iter, err: err}
		}
	}
}

// Close stops accepting requests, serves everything already queued or
// in flight, tears down the replicas and returns. Subsequent Classify
// and Close calls return ErrClosed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.closed = true
	s.mu.Unlock()

	close(s.reqCh)
	s.wg.Wait()
	var firstErr error
	for _, r := range s.replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Workers returns the number of enclave replicas.
func (s *Server) Workers() int { return len(s.replicas) }

// Iteration returns the training iteration of the served model.
func (s *Server) Iteration() int { return int(s.iter.Load()) }

// Refresh re-reads the persistent mirror on every replica, picking up
// a model update mirrored since the server started (e.g. after more
// training and a MirrorSave). Each replica refreshes inside its worker
// goroutine, so in-flight batches and the refresh never interleave on
// one replica; the server keeps serving on the other replicas
// meanwhile. Refresh must not run concurrently with a MirrorOut.
//
// Every replica is attempted even if one fails; on error the pool may
// be serving mixed model versions (Iteration still reports the old
// one) — retry Refresh or Close the server.
func (s *Server) Refresh() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	iter := 0
	var firstErr error
	for _, ch := range s.refreshCh {
		call := refreshCall{ack: make(chan refreshReply, 1)}
		ch <- call
		reply := <-call.ack
		if reply.err != nil {
			if firstErr == nil {
				firstErr = reply.err
			}
			continue
		}
		iter = reply.iter
	}
	if firstErr != nil {
		return 0, firstErr
	}
	s.iter.Store(int64(iter))
	return iter, nil
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }
