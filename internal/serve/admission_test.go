package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOverloadedAtQueueBound floods a deliberately tiny queue in front
// of a single slow-draining worker (MaxBatch 1, so every request costs
// one full enclave forward) and checks admission control fires: some
// requests fail fast with ErrOverloaded, every accepted request is
// answered, and the counters agree. Run under -race this also checks
// the enqueue fast path.
func TestOverloadedAtQueueBound(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{
		Workers:         1,
		MaxBatch:        1,
		MaxQueueLatency: time.Millisecond,
		QueueDepth:      2,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	var served, rejected atomic.Uint64
	// Burst until a rejection is observed (bounded attempts keep the
	// test fast on any scheduler).
	for attempt := 0; attempt < 20 && rejected.Load() == 0; attempt++ {
		const burst = 128
		var wg sync.WaitGroup
		errCh := make(chan error, burst)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := s.Classify(context.Background(), test.Image(i%test.N))
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
				default:
					errCh <- err
				}
			}(i)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("Classify: %v", err)
		}
	}
	if rejected.Load() == 0 {
		t.Fatal("no request was rejected with ErrOverloaded at queue depth 2 under sustained overload")
	}
	st := s.Stats()
	if st.Rejected != rejected.Load() {
		t.Fatalf("stats.Rejected = %d, clients saw %d", st.Rejected, rejected.Load())
	}
	if st.Requests != served.Load() {
		t.Fatalf("stats.Requests = %d, clients saw %d served", st.Requests, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("overload shed everything; accepted requests must still be served")
	}
}

// TestExpiredQueuedRequestsSkipBatchSlots parks requests in a
// slow-flushing batcher, cancels some of them while queued, and checks
// the cancelled ones are dropped without ever occupying a micro-batch
// slot: the surviving request is served in a batch of one and the drops
// are counted as Expired.
func TestExpiredQueuedRequestsSkipBatchSlots(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	const flushAfter = 300 * time.Millisecond
	s, err := New(context.Background(), f, Options{
		Workers:         1,
		MaxBatch:        64,
		MaxQueueLatency: flushAfter,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	const cancelled = 2
	ctx, cancel := context.WithCancel(context.Background())
	var cancelledWg sync.WaitGroup
	for i := 0; i < cancelled; i++ {
		cancelledWg.Add(1)
		go func(i int) {
			defer cancelledWg.Done()
			_, err := s.Classify(ctx, test.Image(i))
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled request %d = %v, want context.Canceled", i, err)
			}
		}(i)
	}
	type outcome struct {
		pred Prediction
		err  error
	}
	survivor := make(chan outcome, 1)
	go func() {
		pred, err := s.Classify(context.Background(), test.Image(7))
		survivor <- outcome{pred, err}
	}()

	// Let all three enqueue into the waiting batch, then cancel two of
	// them well before the 300ms flush.
	time.Sleep(50 * time.Millisecond)
	cancel()
	cancelledWg.Wait()

	res := <-survivor
	if res.err != nil {
		t.Fatalf("surviving request: %v", res.err)
	}
	if res.pred.BatchSize != 1 {
		t.Fatalf("survivor rode a batch of %d; expired requests consumed batch slots", res.pred.BatchSize)
	}
	st := s.Stats()
	if st.Expired != cancelled {
		t.Fatalf("stats.Expired = %d, want %d", st.Expired, cancelled)
	}
	if st.Requests != 1 {
		t.Fatalf("stats.Requests = %d, want 1", st.Requests)
	}
}

// TestDeadlineExpiredQueuedRequest is the deadline (not cancel) variant:
// a request whose deadline lapses while queued returns DeadlineExceeded
// and never reaches a worker.
func TestDeadlineExpiredQueuedRequest(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{
		Workers:         1,
		MaxBatch:        64,
		MaxQueueLatency: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Classify(ctx, test.Image(0)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired Classify = %v, want DeadlineExceeded", err)
	}
	// The lone live request after it still gets a batch of one.
	pred, err := s.Classify(context.Background(), test.Image(1))
	if err != nil {
		t.Fatalf("follow-up Classify: %v", err)
	}
	if pred.BatchSize != 1 {
		t.Fatalf("follow-up rode batch of %d, want 1", pred.BatchSize)
	}
	if st := s.Stats(); st.Expired == 0 {
		t.Fatalf("deadline drop not counted: %+v", st)
	}
}
