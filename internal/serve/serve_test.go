package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

// newTrainedFramework trains a small model for a few iterations so
// serving has real weights to restore.
func newTrainedFramework(t testing.TB, iters int) (*core.Framework, *mnist.Dataset) {
	t.Helper()
	f, err := core.New(core.Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     64 << 20,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ds := mnist.Synthetic(256, 7)
	train, test, err := ds.Split(192)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := f.LoadDataset(train); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(iters, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	return f, test
}

// TestServeMatchesSequentialInfer drives every test image through the
// server concurrently and checks each prediction equals the sequential
// enclave classification — and therefore that batched serving yields
// exactly Framework.Infer's accuracy.
func TestServeMatchesSequentialInfer(t *testing.T) {
	f, test := newTrainedFramework(t, 8)

	want := make([]int, test.N)
	for i := 0; i < test.N; i++ {
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify %d: %v", i, err)
		}
		want[i] = cls
	}
	wantAcc, err := f.Infer(test)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}

	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	got := make([]int, test.N)
	var wg sync.WaitGroup
	errCh := make(chan error, test.N)
	for i := 0; i < test.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Classify(context.Background(), test.Image(i))
			if err != nil {
				errCh <- err
				return
			}
			got[i] = pred.Class
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("Classify: %v", err)
	}

	correct := 0
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("image %d: served class %d, sequential class %d", i, got[i], want[i])
		}
		if got[i] == test.Labels[i] {
			correct++
		}
	}
	if gotAcc := float64(correct) / float64(test.N); gotAcc != wantAcc {
		t.Fatalf("served accuracy %f, Infer accuracy %f", gotAcc, wantAcc)
	}
}

// TestConcurrentClientsManyWorkers hammers a 4-worker server from many
// goroutines; run under -race this is the acceptance concurrency
// check.
func TestConcurrentClientsManyWorkers(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	s, err := New(context.Background(), f, Options{Workers: 4, MaxBatch: 16, MaxQueueLatency: 500 * time.Microsecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	const clients = 16
	const perClient = 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				img := test.Image((c*perClient + i) % test.N)
				if _, err := s.Classify(context.Background(), img); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("Classify: %v", err)
	}

	st := s.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("stats count %d requests, want %d", st.Requests, clients*perClient)
	}
	if st.Batches == 0 || st.AvgBatch < 1 {
		t.Fatalf("implausible batch stats: %+v", st)
	}
	if st.AvgLatency <= 0 || st.MaxLatency < st.AvgLatency {
		t.Fatalf("implausible latency stats: %+v", st)
	}
}

// TestQueueLatencyFlush checks a lone request is not held hostage for
// a full batch: it must come back after ~MaxQueueLatency in a batch of
// one.
func TestQueueLatencyFlush(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	const maxLat = 20 * time.Millisecond
	s, err := New(context.Background(), f, Options{Workers: 1, MaxBatch: 64, MaxQueueLatency: maxLat})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	start := time.Now()
	pred, err := s.Classify(context.Background(), test.Image(0))
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	elapsed := time.Since(start)
	if pred.BatchSize != 1 {
		t.Fatalf("lone request served in batch of %d", pred.BatchSize)
	}
	if elapsed < maxLat/2 {
		t.Fatalf("lone request served after %v; queue-latency timer (%v) not awaited", elapsed, maxLat)
	}
	if elapsed > 50*maxLat {
		t.Fatalf("lone request took %v, far beyond the %v flush", elapsed, maxLat)
	}
}

// TestBatchCoalescing checks that requests arriving together ride one
// micro-batch (dispatch at MaxBatch, not per request).
func TestBatchCoalescing(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 1, MaxBatch: 8, MaxQueueLatency: 40 * time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	const n = 8
	var wg sync.WaitGroup
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pred, err := s.Classify(context.Background(), test.Image(i))
			if err == nil {
				sizes[i] = pred.BatchSize
			}
		}(i)
	}
	wg.Wait()
	// All n requests were in flight together against a single worker;
	// batch sizes above 1 prove coalescing happened (the exact split
	// depends on scheduling).
	maxSeen := 0
	for _, b := range sizes {
		if b > maxSeen {
			maxSeen = b
		}
	}
	if maxSeen < 2 {
		t.Fatalf("no coalescing: batch sizes %v", sizes)
	}
	if maxSeen > 8 {
		t.Fatalf("batch exceeded MaxBatch: %v", sizes)
	}
}

// TestGracefulShutdown closes the server under load: every accepted
// request must complete, later ones must fail with ErrServerClosed.
func TestGracefulShutdown(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 4, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}

	const n = 60
	results := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Classify(context.Background(), test.Image(i%test.N))
			results <- err
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let some requests enqueue
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	close(results)
	completed := 0
	for err := range results {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrClosed):
		default:
			t.Fatalf("shutdown produced unexpected error: %v", err)
		}
	}
	if completed == 0 {
		t.Fatal("no in-flight request completed across Close")
	}

	if _, err := s.Classify(context.Background(), test.Image(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Classify = %v, want ErrClosed", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

// TestRefreshPicksUpNewModel trains further after the server started
// and checks Refresh advances the served iteration.
func TestRefreshPicksUpNewModel(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 4, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if got := s.Iteration(); got != 4 {
		t.Fatalf("served iteration %d, want 4", got)
	}

	if err := f.TrainIters(8, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	iter, err := s.Refresh(context.Background())
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if iter != 8 || s.Iteration() != 8 {
		t.Fatalf("refreshed iteration %d/%d, want 8", iter, s.Iteration())
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify after refresh: %v", err)
	}
}

// TestClassifyContextCancel checks a caller can abandon a queued
// request without wedging the server.
func TestClassifyContextCancel(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 1, MaxBatch: 4, MaxQueueLatency: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Classify(ctx, test.Image(0)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Classify = %v, want context.Canceled", err)
	}
	// The server still serves after an abandoned request.
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify after cancel: %v", err)
	}
}

// TestServeNotServableSentinels checks the fail-fast sentinels: a
// dataset-less framework with nothing in PM, and a crashed framework,
// both reject with errors matching ErrNotServable and the underlying
// core cause, instead of failing deep inside replica restore.
func TestServeNotServableSentinels(t *testing.T) {
	f, err := core.New(core.Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     64 << 20,
		MirrorFreq:  -1, // mirroring disabled
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = New(context.Background(), f, Options{})
	if !errors.Is(err, ErrNotServable) {
		t.Fatalf("dataset-less Serve = %v, want ErrNotServable", err)
	}
	if !errors.Is(err, core.ErrNoServableModel) {
		t.Fatalf("dataset-less Serve = %v, want ErrNoServableModel cause", err)
	}

	crashed, _ := newTrainedFramework(t, 2)
	crashed.Crash()
	_, err = New(context.Background(), crashed, Options{})
	if !errors.Is(err, ErrNotServable) {
		t.Fatalf("crashed Serve = %v, want ErrNotServable", err)
	}
	if !errors.Is(err, core.ErrCrashedDown) {
		t.Fatalf("crashed Serve = %v, want ErrCrashedDown cause", err)
	}
}

// TestBadImageSize checks input validation.
func TestBadImageSize(t *testing.T) {
	f, _ := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 1})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if _, err := s.Classify(context.Background(), make([]float32, 3)); !errors.Is(err, ErrBadImage) {
		t.Fatalf("bad image = %v, want ErrBadImage", err)
	}
}
