package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plinius/internal/core"
)

// TestConcurrentTrainRefreshRotateClassify is the v2 acceptance
// scenario, meant to run under -race: one goroutine trains with a
// cancellable context while clients classify continuously and the
// control plane interleaves zero-downtime refreshes and key rotations.
// Invariants checked:
//
//   - no data race (the -race runner enforces it);
//   - no serving gap: every request that is not shed by admission
//     control gets an answer, throughout refreshes and rotations;
//   - cancellation stops training at a mirror-consistent boundary, and
//     Crash + Recover resumes from exactly the cancelled iteration;
//   - the server keeps serving across the framework's down window and
//     can Refresh again after Recover.
func TestConcurrentTrainRefreshRotateClassify(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	s, err := New(context.Background(), f, Options{
		Workers:         3,
		MaxBatch:        8,
		MaxQueueLatency: 500 * time.Microsecond,
		QueueDepth:      256,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	// Continuous clients.
	var (
		served, shed atomic.Uint64
		stopClients  = make(chan struct{})
		clientsWg    sync.WaitGroup
	)
	for c := 0; c < 6; c++ {
		clientsWg.Add(1)
		go func(c int) {
			defer clientsWg.Done()
			for i := c; ; i += 6 {
				select {
				case <-stopClients:
					return
				default:
				}
				_, err := s.Classify(context.Background(), test.Image(i%test.N))
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					t.Errorf("Classify during lifecycle churn: %v", err)
					return
				}
			}
		}(c)
	}

	// Open-ended training run (no StopAt): cancellation is the exit.
	trainCtx, cancelTrain := context.WithCancel(context.Background())
	trainDone := make(chan error, 1)
	go func() { trainDone <- f.Train(trainCtx) }()

	// Control plane: refreshes and key rotations while everything runs.
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		time.Sleep(5 * time.Millisecond)
		if _, err := f.Publish(); err != nil {
			t.Fatalf("round %d Publish: %v", round, err)
		}
		iter, err := s.Refresh(ctx)
		if err != nil {
			t.Fatalf("round %d Refresh: %v", round, err)
		}
		if iter < 4 {
			t.Fatalf("round %d refreshed to iteration %d, below the starting model", round, iter)
		}
		verBefore := s.Version()
		ver, err := s.RotateKey(ctx)
		if err != nil {
			t.Fatalf("round %d RotateKey: %v", round, err)
		}
		if ver <= verBefore {
			t.Fatalf("round %d RotateKey version %d did not advance past %d", round, ver, verBefore)
		}
	}

	// Cancel training mid-run; the error must be the context's, and
	// the cancelled iteration must be mirror-consistent.
	cancelTrain()
	if err := <-trainDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train = %v, want context.Canceled", err)
	}
	cancelled := f.Iteration()
	if cancelled <= 4 {
		t.Fatalf("training made no progress before cancel: iteration %d", cancelled)
	}

	// Crash the framework; the serving pool keeps answering from its
	// in-enclave weights while the framework is down.
	f.Crash()
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify while framework down: %v", err)
	}
	if _, err := s.Refresh(ctx); err == nil {
		t.Fatal("Refresh succeeded while the framework was crashed")
	}

	// Recover: training resumes from the cancelled iteration, and the
	// control plane works again.
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != cancelled {
		t.Fatalf("recovered at iteration %d, want the cancelled iteration %d", got, cancelled)
	}
	if err := f.Train(context.Background(), core.StopAt(cancelled+2)); err != nil {
		t.Fatalf("Train after recover: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish after recover: %v", err)
	}
	if _, err := s.Refresh(ctx); err != nil {
		t.Fatalf("Refresh after recover: %v", err)
	}
	if got := s.Iteration(); got != cancelled+2 {
		t.Fatalf("served iteration after recover %d, want %d", got, cancelled+2)
	}

	close(stopClients)
	clientsWg.Wait()
	if served.Load() == 0 {
		t.Fatal("no request was served during the lifecycle churn")
	}
	st := s.Stats()
	// +1 for the direct Classify issued while the framework was down.
	if st.Requests != served.Load()+1 {
		t.Fatalf("stats.Requests %d, clients saw %d (+1 direct)", st.Requests, served.Load())
	}
	t.Logf("lifecycle churn: served=%d shed=%d expired=%d batches=%d finalVersion=%d",
		st.Requests, shed.Load(), st.Expired, st.Batches, s.Version())
}

// TestServeAfterLazyRecoverServesTrainedModel guards the Recover(false)
// trap: serving right after a lazy recover must publish the mirrored
// trained model, not the fresh random enclave weights.
func TestServeAfterLazyRecoverServesTrainedModel(t *testing.T) {
	f, test := newTrainedFramework(t, 6)
	want := make([]int, 8)
	for i := range want {
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("pre-crash Classify %d: %v", i, err)
		}
		want[i] = cls
	}
	f.Crash()
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 4, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server after lazy recover: %v", err)
	}
	defer s.Close()
	if got := s.Iteration(); got != 6 {
		t.Fatalf("serving iteration %d after lazy recover, want the mirrored 6", got)
	}
	for i, w := range want {
		pred, err := s.Classify(context.Background(), test.Image(i))
		if err != nil {
			t.Fatalf("Classify %d: %v", i, err)
		}
		if pred.Class != w {
			t.Fatalf("image %d: served %d, trained model said %d — random weights published?", i, pred.Class, w)
		}
	}
}

// TestRotateKeyServesThroughRotation pins down the no-gap property in
// isolation: predictions before, during and after a rotation are all
// answered, and the served version advances.
func TestRotateKeyServesThroughRotation(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 4, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	before, err := s.Classify(context.Background(), test.Image(0))
	if err != nil {
		t.Fatalf("Classify before rotate: %v", err)
	}
	oldKey := f.Key()
	ver, err := s.RotateKey(context.Background())
	if err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if string(f.Key()) == string(oldKey) {
		t.Fatal("RotateKey left the framework key unchanged")
	}
	if ver != s.Version() || ver < 2 {
		t.Fatalf("served version %d after rotation publishing %d", s.Version(), ver)
	}
	after, err := s.Classify(context.Background(), test.Image(0))
	if err != nil {
		t.Fatalf("Classify after rotate: %v", err)
	}
	// Same weights (rotation republished the same parameters), so the
	// same image classifies identically under the new key.
	if before.Class != after.Class {
		t.Fatalf("rotation changed predictions: %d -> %d", before.Class, after.Class)
	}
	if after.ModelVersion != ver {
		t.Fatalf("prediction served by version %d, want %d", after.ModelVersion, ver)
	}
}

// TestRefreshIsZeroDowntimeUnderLoad refreshes repeatedly while
// clients hammer the pool; every non-shed request must be answered.
func TestRefreshIsZeroDowntimeUnderLoad(t *testing.T) {
	f, test := newTrainedFramework(t, 4)
	s, err := New(context.Background(), f, Options{Workers: 3, MaxBatch: 8, MaxQueueLatency: 500 * time.Microsecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("Classify during refresh churn: %v", err)
					return
				} else if err == nil {
					served.Add(1)
				}
			}
		}(c)
	}
	for round := 0; round < 5; round++ {
		if err := f.TrainIters(4+round+1, nil); err != nil {
			t.Fatalf("Train round %d: %v", round, err)
		}
		if _, err := f.Publish(); err != nil {
			t.Fatalf("Publish round %d: %v", round, err)
		}
		iter, err := s.Refresh(context.Background())
		if err != nil {
			t.Fatalf("Refresh round %d: %v", round, err)
		}
		if iter != 4+round+1 {
			t.Fatalf("Refresh round %d restored iteration %d, want %d", round, iter, 4+round+1)
		}
	}
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("nothing served during refresh churn")
	}
}
