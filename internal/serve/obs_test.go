package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"plinius/internal/obs"
)

// TestStatsSnapshotConsistent hammers a server with concurrent clients
// while a reader loops over Stats, asserting every snapshot is
// internally consistent: Requests never goes backwards, and a snapshot
// that reports served requests always carries the matching latency
// fields (positive percentiles and average, max bounding the tail) —
// the guarantee of deriving all of them from one histogram snapshot.
// Run under -race this doubles as the stats data-race check.
func TestStatsSnapshotConsistent(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 8, MaxQueueLatency: 200 * time.Microsecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var lastReq uint64
		for {
			st := s.Stats()
			if st.Requests < lastReq {
				t.Errorf("Requests went backwards: %d after %d", st.Requests, lastReq)
				return
			}
			lastReq = st.Requests
			if st.Requests > 0 {
				if st.P50Latency <= 0 || st.AvgLatency <= 0 {
					t.Errorf("snapshot with %d requests lost its latencies: P50=%v avg=%v",
						st.Requests, st.P50Latency, st.AvgLatency)
					return
				}
				if st.P50Latency > st.P95Latency || st.P95Latency > st.P99Latency || st.P99Latency > st.MaxLatency {
					t.Errorf("percentiles not monotonic: %v %v %v max %v",
						st.P50Latency, st.P95Latency, st.P99Latency, st.MaxLatency)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	const clients, perClient = 8, 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := s.Classify(context.Background(), test.Image((c*perClient+i)%test.N)); err != nil {
					t.Errorf("Classify: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	st := s.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("Requests = %d, want %d", st.Requests, clients*perClient)
	}
}

// TestTraceLifecycleAllExitPaths drives a request down every serve exit
// path — success, bad image, queue overflow, EPC shed, expired context,
// closed server — and asserts the tracer's active count returns to
// zero: no exit path leaks an open trace.
func TestTraceLifecycleAllExitPaths(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{
		Workers: 1, MaxBatch: 1, MaxQueueLatency: time.Millisecond, QueueDepth: 2,
	})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}

	// Queue overflow first, while the model is cold and forwards are
	// slow: every request costs a full enclave forward (MaxBatch 1)
	// behind a depth-2 queue, so bursts must reject some arrivals with
	// ErrOverloaded (bounded attempts keep the test fast on any
	// scheduler).
	for attempt := 0; attempt < 20 && s.Stats().Rejected == 0; attempt++ {
		var wg sync.WaitGroup
		for i := 0; i < 128; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("burst Classify: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	// Success.
	if _, err := s.Classify(context.Background(), test.Image(0)); err != nil {
		t.Fatalf("Classify: %v", err)
	}
	// Bad image.
	if _, err := s.Classify(context.Background(), []float32{1, 2, 3}); !errors.Is(err, ErrBadImage) {
		t.Fatalf("short image err = %v, want ErrBadImage", err)
	}
	// Expired context: a request whose deadline ends while it waits in
	// an unfilled batch returns the context error.
	longQueue, err := New(context.Background(), f, Options{Workers: 1, MaxBatch: 32, MaxQueueLatency: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	if _, err := longQueue.Classify(ctx, test.Image(0)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request err = %v, want DeadlineExceeded", err)
	}
	cancel()
	if err := longQueue.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := longQueue.Tracer().Active(); n != 0 {
		t.Fatalf("expired-path tracer still has %d active traces", n)
	}
	// Closed server.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := s.Classify(context.Background(), test.Image(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed server err = %v, want ErrClosed", err)
	}

	if st := s.Stats(); st.Rejected == 0 {
		t.Fatalf("sustained bursts at depth 2 rejected nothing; overload path not exercised")
	}
	if n := s.Tracer().Active(); n != 0 {
		t.Fatalf("tracer still has %d active traces after all exit paths", n)
	}
	// Failures carry their error into the retained traces.
	var sawErr bool
	for _, tr := range s.SlowTraces() {
		if tr.Err != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatalf("no retained trace recorded an error")
	}
}

// TestEPCShedClosesTrace covers the pressure-shed exit path on an
// overcommitted host.
func TestEPCShedClosesTrace(t *testing.T) {
	f, test := newTrainedFrameworkOverhead(t, 2, 94<<20)
	s, err := New(context.Background(), f, Options{Workers: 1, MaxEPCPressure: 1e-6})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if _, err := s.Classify(context.Background(), test.Image(0)); !errors.Is(err, ErrEPCPressure) {
		t.Fatalf("overcommitted Classify err = %v, want ErrEPCPressure", err)
	}
	if n := s.Tracer().Active(); n != 0 {
		t.Fatalf("tracer still has %d active traces after EPC shed", n)
	}
}

// TestTraceSpansTileLatency serves requests and checks each retained
// trace's spans (queue, batch, compute, deliver) sum to its end-to-end
// latency within 5% plus a small absolute slack for the instants
// between stamps.
func TestTraceSpansTileLatency(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Workers: 2, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	for i := 0; i < 32; i++ {
		if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil {
			t.Fatalf("Classify: %v", err)
		}
	}
	traces := s.SlowTraces()
	if len(traces) == 0 {
		t.Fatalf("no traces retained")
	}
	for _, tr := range traces {
		if tr.Err != "" {
			continue
		}
		sum := tr.SpanSum()
		gap := tr.Total - sum
		if gap < 0 {
			gap = -gap
		}
		slack := tr.Total/20 + 200*time.Microsecond
		if gap > slack {
			t.Errorf("trace %d: spans %v sum %v vs total %v (gap %v > slack %v)",
				tr.ID, tr.Spans, sum, tr.Total, gap, slack)
		}
		stages := make(map[string]bool, len(tr.Spans))
		for _, sp := range tr.Spans {
			stages[sp.Stage] = true
		}
		for _, want := range []string{"queue", "batch", "compute"} {
			if !stages[want] {
				t.Errorf("trace %d missing %q span: %v", tr.ID, want, tr.Spans)
			}
		}
	}
}

// TestShardModeTracesAndMetrics serves through a streaming shard
// pipeline and checks (a) retained traces carry per-shard stage spans
// and (b) the server registry exposes nonzero shard-stage series.
func TestShardModeTracesAndMetrics(t *testing.T) {
	f, test := newTrainedFramework(t, 2)
	s, err := New(context.Background(), f, Options{Shards: 3, MaxBatch: 8, MaxQueueLatency: time.Millisecond})
	if err != nil {
		t.Fatalf("New server: %v", err)
	}
	defer s.Close()
	if s.Shards() < 2 {
		t.Fatalf("Shards = %d, test needs a sharded server", s.Shards())
	}
	for i := 0; i < 16; i++ {
		if _, err := s.Classify(context.Background(), test.Image(i%test.N)); err != nil {
			t.Fatalf("Classify: %v", err)
		}
	}
	var sawShardSpan bool
	for _, tr := range s.SlowTraces() {
		for _, sp := range tr.Spans {
			if strings.HasPrefix(sp.Stage, "compute/") {
				sawShardSpan = true
			}
		}
	}
	if !sawShardSpan {
		t.Fatalf("no retained trace carries a per-shard compute span")
	}
	flat := obs.Flatten(s.Metrics())
	if flat[`shard_restores_total{shard=0}`] == 0 {
		t.Fatalf("shard_restores_total{shard=0} = 0; shard series missing: %v", flat)
	}
	if flat[`serve_requests_total`] != 16 {
		t.Fatalf("serve_requests_total = %v, want 16", flat["serve_requests_total"])
	}
}
