package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(10 * time.Millisecond)
	c.Advance(5 * time.Millisecond)
	if got := c.Modeled(); got != 15*time.Millisecond {
		t.Fatalf("Modeled = %v, want 15ms", got)
	}
	if got := c.Total(); got != 15*time.Millisecond {
		t.Fatalf("Total = %v, want 15ms", got)
	}
}

func TestAdvanceIgnoresNonPositive(t *testing.T) {
	c := New()
	c.Advance(0)
	c.Advance(-time.Second)
	if got := c.Modeled(); got != 0 {
		t.Fatalf("Modeled = %v, want 0", got)
	}
}

func TestMeasureUsesInjectedNow(t *testing.T) {
	base := time.Unix(0, 0)
	calls := 0
	c := NewWithNow(func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * 100 * time.Millisecond)
	})
	d := c.Measure(func() {})
	if d != 100*time.Millisecond {
		t.Fatalf("Measure returned %v, want 100ms", d)
	}
	if got := c.Real(); got != 100*time.Millisecond {
		t.Fatalf("Real = %v, want 100ms", got)
	}
}

func TestAddRealAndSplit(t *testing.T) {
	c := New()
	c.AddReal(7 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	modeled, real := c.Split()
	if modeled != 3*time.Millisecond || real != 7*time.Millisecond {
		t.Fatalf("Split = (%v, %v), want (3ms, 7ms)", modeled, real)
	}
	if got := c.Total(); got != 10*time.Millisecond {
		t.Fatalf("Total = %v, want 10ms", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.AddReal(time.Second)
	c.Reset()
	if c.Total() != 0 {
		t.Fatalf("Total after Reset = %v, want 0", c.Total())
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Modeled(); got != 8000*time.Microsecond {
		t.Fatalf("Modeled = %v, want 8ms", got)
	}
}
