// Package simclock provides the hybrid time accounting used by every cost
// model in the Plinius reproduction.
//
// The reproduction executes real compute (AES-GCM, SGD training) and models
// device/enclave costs (PM flushes, SSD fsyncs, SGX transitions, EPC
// paging) that this environment cannot produce natively. A Clock
// accumulates both: callers Advance it by modeled durations and may wrap
// real work with Measure to fold wall-clock time in. Experiment harnesses
// report Clock totals, keeping the real/modeled split visible.
package simclock

import (
	"sync"
	"time"
)

// Clock accumulates simulated and real time. The zero value is ready to
// use. Clock is safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	modeled time.Duration
	real    time.Duration
	now     func() time.Time
}

// New returns a Clock that uses the wall clock for Measure.
func New() *Clock {
	return &Clock{now: time.Now}
}

// NewWithNow returns a Clock with an injected time source, for tests.
func NewWithNow(now func() time.Time) *Clock {
	return &Clock{now: now}
}

// Advance adds a modeled duration. Negative durations are ignored so cost
// models built from subtraction cannot rewind the clock.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.modeled += d
	c.mu.Unlock()
}

// Measure runs fn and adds its wall-clock duration to the real-time total.
func (c *Clock) Measure(fn func()) time.Duration {
	start := c.timeNow()
	fn()
	d := c.timeNow().Sub(start)
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.real += d
	c.mu.Unlock()
	return d
}

// AddReal adds an externally measured real duration.
func (c *Clock) AddReal(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.real += d
	c.mu.Unlock()
}

// Modeled returns the accumulated modeled (device/enclave) time.
func (c *Clock) Modeled() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.modeled
}

// Real returns the accumulated wall-clock compute time.
func (c *Clock) Real() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.real
}

// Total returns modeled + real time.
func (c *Clock) Total() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.modeled + c.real
}

// Reset zeroes both accumulators.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.modeled = 0
	c.real = 0
	c.mu.Unlock()
}

// Split returns (modeled, real) atomically, for breakdown reporting.
func (c *Clock) Split() (modeled, real time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.modeled, c.real
}

func (c *Clock) timeNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}
