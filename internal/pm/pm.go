// Package pm emulates byte-addressable persistent memory (Intel Optane DC
// PM in app-direct mode) for the Plinius reproduction.
//
// The device keeps two images of the region: the volatile view that loads
// and stores observe (CPU caches + memory), and the persisted image that
// survives a power failure. Stores dirty 64-byte cache lines in the
// volatile view; a persistent write-back (Flush) copies dirty lines to the
// persisted image, mirroring CLFLUSH/CLFLUSHOPT/CLWB + ADR semantics; a
// Fence orders write-backs. Crash discards everything that was never
// flushed, which is exactly the failure model the Romulus twin-copy
// algorithm must survive.
//
// Performance is accounted on a simclock.Clock using a latency Profile
// calibrated from the paper's Fig. 2 characterisation; see DESIGN.md.
package pm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"plinius/internal/obs"
	"plinius/internal/simclock"
)

// CacheLineSize is the unit of persistence, matching x86 cache lines.
const CacheLineSize = 64

// Process-wide PM traffic counters, aggregated across every Device in
// the process. Per-device deltas stay on Device.Stats (the experiment
// harness resets those); these totals feed the /metrics surface.
var (
	mStores       = obs.Default().Counter("pm_stores_total", "PM store operations.")
	mLoads        = obs.Default().Counter("pm_loads_total", "PM load operations.")
	mBytesStored  = obs.Default().Counter("pm_bytes_stored_total", "Bytes stored to PM.")
	mBytesLoaded  = obs.Default().Counter("pm_bytes_loaded_total", "Bytes loaded from PM.")
	mFlushes      = obs.Default().Counter("pm_flushes_total", "Persistent write-back calls.")
	mFlushedLines = obs.Default().Counter("pm_flushed_lines_total", "Cache lines written back to PM media.")
	mFences       = obs.Default().Counter("pm_fences_total", "Ordering fences issued.")
	mCrashes      = obs.Default().Counter("pm_crashes_total", "Simulated power failures.")
)

// FlushKind selects the persistent write-back instruction flavour.
type FlushKind int

// Persistent write-back flavours supported by Romulus and Plinius
// (§V: clwb+sfence, clflushopt+sfence, clflush+nop).
const (
	FlushClflush FlushKind = iota + 1
	FlushClflushOpt
	FlushCLWB
)

// String implements fmt.Stringer.
func (k FlushKind) String() string {
	switch k {
	case FlushClflush:
		return "clflush"
	case FlushClflushOpt:
		return "clflushopt"
	case FlushCLWB:
		return "clwb"
	default:
		return fmt.Sprintf("FlushKind(%d)", int(k))
	}
}

// Profile models device latencies. Durations are per cache line unless
// stated otherwise.
type Profile struct {
	// Store is the cost of a cached store.
	Store time.Duration
	// Load is the cost of reading a line from PM media.
	Load time.Duration
	// Clflush is the cost of a serialising CLFLUSH write-back.
	Clflush time.Duration
	// ClflushOpt is the cost of an overlapping CLFLUSHOPT write-back.
	ClflushOpt time.Duration
	// CLWB is the cost of a CLWB write-back (line stays cached).
	CLWB time.Duration
	// Fence is the cost of an SFENCE.
	Fence time.Duration
}

// OptaneProfile returns latencies calibrated for Intel Optane DC PM from
// the paper's Fig. 2 (PM within ~2-4x of DRAM bandwidth, flush-dominated
// writes).
func OptaneProfile() Profile {
	return Profile{
		Store:      4 * time.Nanosecond,
		Load:       9 * time.Nanosecond,
		Clflush:    90 * time.Nanosecond,
		ClflushOpt: 30 * time.Nanosecond,
		CLWB:       26 * time.Nanosecond,
		Fence:      30 * time.Nanosecond,
	}
}

// RamdiskProfile returns latencies for DRAM-backed emulated PM (the
// sgx-emlPM server in the paper emulates PM with a ramdisk).
func RamdiskProfile() Profile {
	return Profile{
		Store:      2 * time.Nanosecond,
		Load:       4 * time.Nanosecond,
		Clflush:    6 * time.Nanosecond,
		ClflushOpt: 2 * time.Nanosecond,
		CLWB:       2 * time.Nanosecond,
		Fence:      20 * time.Nanosecond,
	}
}

// flushCost returns the per-line cost of a write-back of the given kind.
func (p Profile) flushCost(kind FlushKind) time.Duration {
	switch kind {
	case FlushClflush:
		return p.Clflush
	case FlushCLWB:
		return p.CLWB
	default:
		return p.ClflushOpt
	}
}

// Stats counts device operations since creation or the last StatsReset.
type Stats struct {
	Stores       uint64
	Loads        uint64
	Flushes      uint64
	FlushedLines uint64
	Fences       uint64
	BytesStored  uint64
	BytesLoaded  uint64
	Crashes      uint64
}

// Errors returned by Device operations.
var (
	ErrOutOfRange = errors.New("pm: access out of range")
	ErrBadSize    = errors.New("pm: size must be a positive multiple of the cache line size")
)

// Device is an emulated PM module. All methods are safe for concurrent
// use; Plinius itself is single-threaded per the paper, but the SPS
// benchmark and tests exercise concurrency.
type Device struct {
	mu        sync.Mutex
	size      int
	volatile  []byte
	persisted []byte
	dirty     []uint64 // bitset, one bit per cache line
	dirtyN    int
	clock     *simclock.Clock
	prof      Profile
	stats     Stats
}

func (d *Device) setDirty(line int) {
	w, b := line>>6, uint(line&63)
	if d.dirty[w]&(1<<b) == 0 {
		d.dirty[w] |= 1 << b
		d.dirtyN++
	}
}

func (d *Device) clearDirty(line int) {
	w, b := line>>6, uint(line&63)
	if d.dirty[w]&(1<<b) != 0 {
		d.dirty[w] &^= 1 << b
		d.dirtyN--
	}
}

// Option configures a Device.
type Option func(*Device)

// WithProfile sets the latency profile (default OptaneProfile).
func WithProfile(p Profile) Option {
	return func(d *Device) { d.prof = p }
}

// WithClock attaches a shared clock for cost accounting. Without one the
// device keeps its own clock, retrievable via Clock.
func WithClock(c *simclock.Clock) Option {
	return func(d *Device) { d.clock = c }
}

// New creates an in-memory emulated PM device of the given size in bytes.
// Size must be a positive multiple of CacheLineSize.
func New(size int, opts ...Option) (*Device, error) {
	if size <= 0 || size%CacheLineSize != 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBadSize, size)
	}
	lines := size / CacheLineSize
	d := &Device{
		size:      size,
		volatile:  make([]byte, size),
		persisted: make([]byte, size),
		dirty:     make([]uint64, (lines+63)/64),
		prof:      OptaneProfile(),
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.clock == nil {
		d.clock = simclock.New()
	}
	return d, nil
}

// Size returns the region size in bytes.
func (d *Device) Size() int { return d.size }

// Clock returns the clock charged by this device.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// Profile returns the active latency profile.
func (d *Device) Profile() Profile { return d.prof }

func (d *Device) checkRange(off, n int) error {
	if off < 0 || n < 0 || off+n > d.size {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, n, d.size)
	}
	return nil
}

// lineRange returns the first and one-past-last cache line index covering
// [off, off+n).
func lineRange(off, n int) (first, last int) {
	if n == 0 {
		return off / CacheLineSize, off / CacheLineSize
	}
	return off / CacheLineSize, (off + n - 1) / CacheLineSize
}

// Store writes data at off into the volatile view and marks the covered
// cache lines dirty. The data is NOT persistent until flushed.
func (d *Device) Store(off int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(off, len(data)); err != nil {
		return err
	}
	copy(d.volatile[off:], data)
	if len(data) > 0 {
		first, last := lineRange(off, len(data))
		for l := first; l <= last; l++ {
			d.setDirty(l)
		}
		d.stats.Stores++
		d.stats.BytesStored += uint64(len(data))
		mStores.Inc()
		mBytesStored.Add(float64(len(data)))
		d.clock.Advance(time.Duration(last-first+1) * d.prof.Store)
	}
	return nil
}

// Load reads len(buf) bytes at off from the volatile view.
func (d *Device) Load(off int, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(off, len(buf)); err != nil {
		return err
	}
	copy(buf, d.volatile[off:])
	if len(buf) > 0 {
		first, last := lineRange(off, len(buf))
		d.stats.Loads++
		d.stats.BytesLoaded += uint64(len(buf))
		mLoads.Inc()
		mBytesLoaded.Add(float64(len(buf)))
		d.clock.Advance(time.Duration(last-first+1) * d.prof.Load)
	}
	return nil
}

// Flush issues persistent write-backs of the given kind for every cache
// line overlapping [off, off+n). Clean lines still pay the write-back
// cost (the instruction is issued regardless); with ADR the flushed data
// is durable once accepted by the memory controller, so the persisted
// image is updated immediately.
func (d *Device) Flush(off, n int, kind FlushKind) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	first, last := lineRange(off, n)
	start := first * CacheLineSize
	end := (last + 1) * CacheLineSize
	copy(d.persisted[start:end], d.volatile[start:end])
	for l := first; l <= last; l++ {
		d.clearDirty(l)
	}
	lines := last - first + 1
	d.stats.Flushes++
	d.stats.FlushedLines += uint64(lines)
	mFlushes.Inc()
	mFlushedLines.Add(float64(lines))
	d.clock.Advance(time.Duration(lines) * d.prof.flushCost(kind))
	return nil
}

// Fence issues an ordering fence (SFENCE). In this model durability is
// granted at Flush (ADR), so Fence only contributes latency and ordering.
func (d *Device) Fence() {
	d.mu.Lock()
	d.stats.Fences++
	d.mu.Unlock()
	mFences.Inc()
	d.clock.Advance(d.prof.Fence)
}

// Crash simulates a power failure: every store that was never flushed is
// lost, and the volatile view is re-initialised from the persisted image,
// as it would be after reboot and DAX re-mapping.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	copy(d.volatile, d.persisted)
	for i := range d.dirty {
		d.dirty[i] = 0
	}
	d.dirtyN = 0
	d.stats.Crashes++
	mCrashes.Inc()
}

// DirtyLines returns the number of cache lines with unflushed stores.
func (d *Device) DirtyLines() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dirtyN
}

// Stats returns a copy of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// StatsReset zeroes the operation counters.
func (d *Device) StatsReset() {
	d.mu.Lock()
	d.stats = Stats{}
	d.mu.Unlock()
}

// PersistedSnapshot returns a copy of the persisted image, for tests that
// verify crash consistency without triggering a crash.
func (d *Device) PersistedSnapshot() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, d.size)
	copy(out, d.persisted)
	return out
}
