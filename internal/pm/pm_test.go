package pm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"plinius/internal/simclock"
)

func newTestDevice(t *testing.T, size int) *Device {
	t.Helper()
	d, err := New(size)
	if err != nil {
		t.Fatalf("New(%d): %v", size, err)
	}
	return d
}

func TestNewRejectsBadSizes(t *testing.T) {
	tests := []struct {
		name string
		size int
	}{
		{"zero", 0},
		{"negative", -64},
		{"unaligned", 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.size); err == nil {
				t.Fatalf("New(%d) succeeded, want error", tt.size)
			}
		})
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newTestDevice(t, 1024)
	want := []byte("plinius mirroring")
	if err := d.Store(100, want); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got := make([]byte, len(want))
	if err := d.Load(100, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Load = %q, want %q", got, want)
	}
}

func TestStoreOutOfRange(t *testing.T) {
	d := newTestDevice(t, 128)
	if err := d.Store(120, make([]byte, 16)); err == nil {
		t.Fatal("Store past end succeeded, want error")
	}
	if err := d.Store(-1, make([]byte, 1)); err == nil {
		t.Fatal("Store at negative offset succeeded, want error")
	}
	if err := d.Load(128, make([]byte, 1)); err == nil {
		t.Fatal("Load past end succeeded, want error")
	}
}

func TestUnflushedStoresLostOnCrash(t *testing.T) {
	d := newTestDevice(t, 256)
	if err := d.Store(0, []byte("volatile only")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	d.Crash()
	got := make([]byte, 13)
	if err := d.Load(0, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 13)) {
		t.Fatalf("unflushed store survived crash: %q", got)
	}
}

func TestFlushedStoresSurviveCrash(t *testing.T) {
	for _, kind := range []FlushKind{FlushClflush, FlushClflushOpt, FlushCLWB} {
		t.Run(kind.String(), func(t *testing.T) {
			d := newTestDevice(t, 256)
			want := []byte("durable data")
			if err := d.Store(64, want); err != nil {
				t.Fatalf("Store: %v", err)
			}
			if err := d.Flush(64, len(want), kind); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			d.Fence()
			d.Crash()
			got := make([]byte, len(want))
			if err := d.Load(64, got); err != nil {
				t.Fatalf("Load: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("flushed store lost on crash: got %q want %q", got, want)
			}
		})
	}
}

func TestFlushGranularityIsCacheLine(t *testing.T) {
	d := newTestDevice(t, 256)
	// Two stores on the same line; flushing a 1-byte range persists the
	// whole line, as real hardware does.
	if err := d.Store(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := d.Flush(0, 1, FlushClflushOpt); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	d.Crash()
	got := make([]byte, 4)
	if err := d.Load(0, got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("whole-line flush missing bytes: %v", got)
	}
}

func TestDirtyLineTracking(t *testing.T) {
	d := newTestDevice(t, 1024)
	if got := d.DirtyLines(); got != 0 {
		t.Fatalf("fresh device has %d dirty lines, want 0", got)
	}
	// Spans lines 0 and 1.
	if err := d.Store(60, make([]byte, 8)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	if err := d.Flush(60, 8, FlushCLWB); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := d.DirtyLines(); got != 0 {
		t.Fatalf("DirtyLines after flush = %d, want 0", got)
	}
}

func TestStatsCounters(t *testing.T) {
	d := newTestDevice(t, 512)
	if err := d.Store(0, make([]byte, 100)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := d.Load(0, make([]byte, 50)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := d.Flush(0, 100, FlushClflushOpt); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	d.Fence()
	d.Crash()
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.Flushes != 1 || s.Fences != 1 || s.Crashes != 1 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.BytesStored != 100 || s.BytesLoaded != 50 {
		t.Fatalf("unexpected byte counters: %+v", s)
	}
	if s.FlushedLines != 2 {
		t.Fatalf("FlushedLines = %d, want 2 (100 bytes spans 2 lines)", s.FlushedLines)
	}
	d.StatsReset()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("StatsReset left %+v", s)
	}
}

func TestClockAdvances(t *testing.T) {
	clk := simclock.New()
	d, err := New(1024, WithClock(clk), WithProfile(OptaneProfile()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Store(0, make([]byte, 256)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := d.Flush(0, 256, FlushClflushOpt); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	d.Fence()
	p := OptaneProfile()
	want := 4*p.Store + 4*p.ClflushOpt + p.Fence
	if got := clk.Modeled(); got != want {
		t.Fatalf("modeled time = %v, want %v", got, want)
	}
}

func TestFlushKindCosts(t *testing.T) {
	p := OptaneProfile()
	tests := []struct {
		kind FlushKind
		want time.Duration
	}{
		{FlushClflush, p.Clflush},
		{FlushClflushOpt, p.ClflushOpt},
		{FlushCLWB, p.CLWB},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			clk := simclock.New()
			d, err := New(64, WithClock(clk))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := d.Flush(0, 1, tt.kind); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if got := clk.Modeled(); got != tt.want {
				t.Fatalf("flush cost = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestPropertyCrashNeverExposesPartialFlushedRange checks the core
// crash-consistency invariant the mirroring module relies on: after a
// Store+Flush+Fence of a range, a crash at any later point preserves that
// exact range, regardless of subsequent unflushed stores over it.
func TestPropertyCrashNeverExposesPartialFlushedRange(t *testing.T) {
	const size = 4096
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(size)
		if err != nil {
			return false
		}
		off := rng.Intn(size - 128)
		n := 1 + rng.Intn(128)
		want := make([]byte, n)
		rng.Read(want)
		if err := d.Store(off, want); err != nil {
			return false
		}
		if err := d.Flush(off, n, FlushClflushOpt); err != nil {
			return false
		}
		d.Fence()
		// Overwrite with junk but never flush: must vanish on crash,
		// except where the junk shares a cache line boundary with... no:
		// unflushed stores are always lost, so the flushed data must
		// reappear intact.
		junk := make([]byte, n)
		rng.Read(junk)
		if err := d.Store(off, junk); err != nil {
			return false
		}
		d.Crash()
		got := make([]byte, n)
		if err := d.Load(off, got); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPersistedMatchesVolatileAfterFullFlush checks that flushing
// every dirty line makes the persisted image identical to the volatile
// view.
func TestPropertyPersistedMatchesVolatileAfterFullFlush(t *testing.T) {
	const size = 2048
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(size)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			off := rng.Intn(size - 64)
			n := 1 + rng.Intn(64)
			buf := make([]byte, n)
			rng.Read(buf)
			if err := d.Store(off, buf); err != nil {
				return false
			}
		}
		if err := d.Flush(0, size, FlushCLWB); err != nil {
			return false
		}
		d.Fence()
		vol := make([]byte, size)
		if err := d.Load(0, vol); err != nil {
			return false
		}
		return bytes.Equal(vol, d.PersistedSnapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStoresDoNotRace(t *testing.T) {
	d := newTestDevice(t, 64*64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			buf := []byte{byte(g)}
			for i := 0; i < 100; i++ {
				off := (g*16 + i%16) * CacheLineSize
				if err := d.Store(off, buf); err != nil {
					t.Errorf("Store: %v", err)
					return
				}
				if err := d.Flush(off, 1, FlushClflushOpt); err != nil {
					t.Errorf("Flush: %v", err)
					return
				}
				d.Fence()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
