// Package storage emulates secondary-storage devices (SSD behind ext4,
// PM behind ext4+DAX, and a DRAM-backed tmpfs ramdisk) for the Plinius
// reproduction.
//
// Plinius compares its PM mirroring mechanism against checkpointing on an
// SSD, and the paper characterises the three device classes with FIO
// (Fig. 2). This package provides an in-memory filesystem with a latency
// and bandwidth cost model per device class, charged to a simclock.Clock,
// plus the FIO-style workload generator used to regenerate Fig. 2.
package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"plinius/internal/obs"
	"plinius/internal/simclock"
)

// Process-wide secondary-storage counters, labeled by device profile
// name so the SSD-checkpoint baseline and the ramdisk are separable.
func deviceCounters(prof string) (reads, writes, fsyncs, bytesRead, bytesWritten *obs.Counter) {
	l := obs.Label{Key: "device", Value: prof}
	reg := obs.Default()
	return reg.Counter("storage_reads_total", "Storage read ops, by device profile.", l),
		reg.Counter("storage_writes_total", "Storage write ops, by device profile.", l),
		reg.Counter("storage_fsyncs_total", "Storage fsyncs, by device profile.", l),
		reg.Counter("storage_bytes_read_total", "Bytes read from storage, by device profile.", l),
		reg.Counter("storage_bytes_written_total", "Bytes written to storage, by device profile.", l)
}

// Profile models a storage device class. Latencies are per operation;
// bandwidths are sustained bytes/second shared across all in-flight
// operations.
type Profile struct {
	Name           string
	ReadLatency    time.Duration // per-op read setup (syscall + device)
	WriteLatency   time.Duration // per-op write setup
	FsyncLatency   time.Duration // cost of fsync
	ReadBandwidth  float64       // bytes/sec
	WriteBandwidth float64       // bytes/sec
	MaxParallel    int           // internal queue parallelism
	SeqBoost       float64       // latency divisor for sequential access
}

// SSDProfile returns a SATA/NVMe-class SSD behind ext4 with synchronous
// I/O, calibrated to the paper's Fig. 2 (write workloads fsync each 4 KB
// block, collapsing throughput to the 0.01-0.1 GB/s decade).
func SSDProfile() Profile {
	return Profile{
		Name:           "ssd-ext4",
		ReadLatency:    120 * time.Microsecond,
		WriteLatency:   40 * time.Microsecond,
		FsyncLatency:   150 * time.Microsecond,
		ReadBandwidth:  0.45e9,
		WriteBandwidth: 1.2e9,
		MaxParallel:    8,
		SeqBoost:       2.0,
	}
}

// SSDSlowProfile returns the emlSGX-PM server's SSD (the two evaluation
// machines carry different drives; this one is SATA-class with a slower
// fsync path).
func SSDSlowProfile() Profile {
	return Profile{
		Name:           "ssd-ext4-sata",
		ReadLatency:    150 * time.Microsecond,
		WriteLatency:   40 * time.Microsecond,
		FsyncLatency:   800 * time.Microsecond,
		ReadBandwidth:  0.75e9,
		WriteBandwidth: 1.2e9,
		MaxParallel:    8,
		SeqBoost:       2.0,
	}
}

// PMDaxProfile returns Optane PM behind ext4+DAX: the page cache is out
// of the I/O path and fsync is nearly free.
func PMDaxProfile() Profile {
	return Profile{
		Name:           "pm-ext4-dax",
		ReadLatency:    300 * time.Nanosecond,
		WriteLatency:   500 * time.Nanosecond,
		FsyncLatency:   1 * time.Microsecond,
		ReadBandwidth:  8.0e9,
		WriteBandwidth: 2.5e9,
		MaxParallel:    16,
		SeqBoost:       1.3,
	}
}

// RamdiskProfile returns a tmpfs partition over DRAM.
func RamdiskProfile() Profile {
	return Profile{
		Name:           "ramdisk-tmpfs",
		ReadLatency:    200 * time.Nanosecond,
		WriteLatency:   300 * time.Nanosecond,
		FsyncLatency:   200 * time.Nanosecond,
		ReadBandwidth:  20.0e9,
		WriteBandwidth: 10.0e9,
		MaxParallel:    16,
		SeqBoost:       1.2,
	}
}

// Errors returned by the device.
var (
	ErrNotExist = errors.New("storage: file does not exist")
	ErrExist    = errors.New("storage: file already exists")
	ErrClosed   = errors.New("storage: file is closed")
)

// Device is an emulated storage device holding an in-memory filesystem.
// It is safe for concurrent use.
type Device struct {
	mu    sync.Mutex
	prof  Profile
	clock *simclock.Clock
	files map[string]*fileData
	stats Stats

	mReads        *obs.Counter
	mWrites       *obs.Counter
	mFsyncs       *obs.Counter
	mBytesRead    *obs.Counter
	mBytesWritten *obs.Counter
}

// Stats counts device operations.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Fsyncs       uint64
	BytesRead    uint64
	BytesWritten uint64
}

type fileData struct {
	data []byte
}

// Option configures a Device.
type Option func(*Device)

// WithClock attaches a shared cost-accounting clock.
func WithClock(c *simclock.Clock) Option {
	return func(d *Device) { d.clock = c }
}

// NewDevice creates a device with the given profile.
func NewDevice(prof Profile, opts ...Option) *Device {
	d := &Device{
		prof:  prof,
		files: make(map[string]*fileData),
	}
	for _, opt := range opts {
		opt(d)
	}
	if d.clock == nil {
		d.clock = simclock.New()
	}
	d.mReads, d.mWrites, d.mFsyncs, d.mBytesRead, d.mBytesWritten = deviceCounters(d.prof.Name)
	return d
}

// Clock returns the clock charged by this device.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.prof }

// Stats returns a copy of the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Create creates (or truncates) a file and returns a handle.
func (d *Device) Create(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fd := &fileData{}
	d.files[name] = fd
	return &File{dev: d, fd: fd, name: name}, nil
}

// Open opens an existing file for reading and writing.
func (d *Device) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fd, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return &File{dev: d, fd: fd, name: name}, nil
}

// Exists reports whether a file exists.
func (d *Device) Exists(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.files[name]
	return ok
}

// Remove deletes a file.
func (d *Device) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	delete(d.files, name)
	return nil
}

// Size returns the size of a file in bytes.
func (d *Device) Size(name string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fd, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return len(fd.data), nil
}

// chargeRead advances the clock by the modeled cost of reading n bytes.
func (d *Device) chargeRead(n int, sequential bool) {
	lat := d.prof.ReadLatency
	if sequential && d.prof.SeqBoost > 1 {
		lat = time.Duration(float64(lat) / d.prof.SeqBoost)
	}
	transfer := time.Duration(float64(n) / d.prof.ReadBandwidth * float64(time.Second))
	d.clock.Advance(lat + transfer)
}

// chargeWrite advances the clock by the modeled cost of writing n bytes.
func (d *Device) chargeWrite(n int, sequential bool) {
	lat := d.prof.WriteLatency
	if sequential && d.prof.SeqBoost > 1 {
		lat = time.Duration(float64(lat) / d.prof.SeqBoost)
	}
	transfer := time.Duration(float64(n) / d.prof.WriteBandwidth * float64(time.Second))
	d.clock.Advance(lat + transfer)
}

// File is a handle into the device's in-memory filesystem with
// POSIX-style sequential read/write semantics.
type File struct {
	dev    *Device
	fd     *fileData
	name   string
	off    int
	closed bool
}

var (
	_ io.ReadWriteSeeker = (*File)(nil)
	_ io.Closer          = (*File)(nil)
)

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Write appends/overwrites at the current offset, charging the modeled
// write cost. Writes are sequential when they continue from the previous
// offset.
func (f *File) Write(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.dev.mu.Lock()
	end := f.off + len(p)
	if end > len(f.fd.data) {
		if end > cap(f.fd.data) {
			// Amortised growth: large checkpoints append thousands of
			// buffers, so double capacity instead of exact-fit copies.
			grown := make([]byte, end, 2*end)
			copy(grown, f.fd.data)
			f.fd.data = grown
		} else {
			f.fd.data = f.fd.data[:end]
		}
	}
	copy(f.fd.data[f.off:], p)
	f.dev.stats.Writes++
	f.dev.stats.BytesWritten += uint64(len(p))
	f.dev.mu.Unlock()
	f.dev.mWrites.Inc()
	f.dev.mBytesWritten.Add(float64(len(p)))
	f.dev.chargeWrite(len(p), true)
	f.off = end
	return len(p), nil
}

// Read reads from the current offset, charging the modeled read cost.
func (f *File) Read(p []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.dev.mu.Lock()
	if f.off >= len(f.fd.data) {
		f.dev.mu.Unlock()
		return 0, io.EOF
	}
	n := copy(p, f.fd.data[f.off:])
	f.dev.stats.Reads++
	f.dev.stats.BytesRead += uint64(n)
	f.dev.mu.Unlock()
	f.dev.mReads.Inc()
	f.dev.mBytesRead.Add(float64(n))
	f.dev.chargeRead(n, true)
	f.off += n
	return n, nil
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	f.dev.mu.Lock()
	size := len(f.fd.data)
	f.dev.mu.Unlock()
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = int64(f.off) + offset
	case io.SeekEnd:
		abs = int64(size) + offset
	default:
		return 0, fmt.Errorf("storage: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, errors.New("storage: negative seek position")
	}
	f.off = int(abs)
	return abs, nil
}

// Sync models fsync: it charges the device's fsync latency. Data in this
// emulation is durable at write time; Sync exists so checkpointing code
// pays the same cost structure as the paper's fwrite+fsync baseline.
func (f *File) Sync() error {
	if f.closed {
		return ErrClosed
	}
	f.dev.mu.Lock()
	f.dev.stats.Fsyncs++
	f.dev.mu.Unlock()
	f.dev.mFsyncs.Inc()
	f.dev.clock.Advance(f.dev.prof.FsyncLatency)
	return nil
}

// Close closes the handle. Further operations return ErrClosed.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
