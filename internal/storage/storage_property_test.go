package storage

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a random sequence of writes and seeks against a Device
// file behaves exactly like the same sequence against an in-memory
// reference buffer.
func TestPropertyFileMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := NewDevice(RamdiskProfile())
		fh, err := dev.Create("f")
		if err != nil {
			return false
		}
		ref := make([]byte, 0, 4096)
		pos := 0
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0: // write
				n := 1 + rng.Intn(64)
				data := make([]byte, n)
				rng.Read(data)
				if _, err := fh.Write(data); err != nil {
					return false
				}
				end := pos + n
				if end > len(ref) {
					grown := make([]byte, end)
					copy(grown, ref)
					ref = grown
				}
				copy(ref[pos:], data)
				pos = end
			case 1: // seek within file
				if len(ref) == 0 {
					continue
				}
				pos = rng.Intn(len(ref) + 1)
				if _, err := fh.Seek(int64(pos), io.SeekStart); err != nil {
					return false
				}
			case 2: // sync
				if err := fh.Sync(); err != nil {
					return false
				}
			}
		}
		// Full read-back comparison.
		if _, err := fh.Seek(0, io.SeekStart); err != nil {
			return false
		}
		got, err := io.ReadAll(fh)
		if err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIO throughput is monotone non-decreasing in thread count
// up to the device parallelism, and never exceeds the bandwidth
// ceiling.
func TestPropertyFIOMonotoneAndBounded(t *testing.T) {
	f := func(patRaw, thRaw uint8) bool {
		pat := FIOPattern(int(patRaw)%4 + 1)
		th := int(thRaw)%8 + 1
		prof := SSDProfile()
		a, err := RunFIO(prof, FIOConfig{Pattern: pat, Threads: th, BlockSize: 4096, FileSize: 1 << 20})
		if err != nil {
			return false
		}
		b, err := RunFIO(prof, FIOConfig{Pattern: pat, Threads: th + 1, BlockSize: 4096, FileSize: 1 << 20})
		if err != nil {
			return false
		}
		if b.ThroughputGBps+1e-6 < a.ThroughputGBps {
			return false
		}
		bw := prof.ReadBandwidth
		if pat.IsWrite() {
			bw = prof.WriteBandwidth
		}
		return a.ThroughputGBps <= bw/1e9+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
