package storage

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestCreateWriteReadRoundTrip(t *testing.T) {
	d := NewDevice(SSDProfile())
	f, err := d.Create("ckpt.bin")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := []byte("model weights")
	if _, err := f.Write(want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	g, err := d.Open("ckpt.bin")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(g)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestOpenMissingFile(t *testing.T) {
	d := NewDevice(SSDProfile())
	if _, err := d.Open("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Open missing = %v, want ErrNotExist", err)
	}
	if err := d.Remove("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Remove missing = %v, want ErrNotExist", err)
	}
}

func TestRemoveAndExists(t *testing.T) {
	d := NewDevice(RamdiskProfile())
	if _, err := d.Create("a"); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !d.Exists("a") {
		t.Fatal("Exists = false after Create")
	}
	if err := d.Remove("a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if d.Exists("a") {
		t.Fatal("Exists = true after Remove")
	}
}

func TestSeekAndOverwrite(t *testing.T) {
	d := NewDevice(PMDaxProfile())
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("aaaaaa")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Seek(2, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	if _, err := f.Write([]byte("bb")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "aabbaa" {
		t.Fatalf("content = %q, want aabbaa", got)
	}
	if _, err := f.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek succeeded")
	}
}

func TestClosedFileOperationsFail(t *testing.T) {
	d := NewDevice(SSDProfile())
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after close = %v, want ErrClosed", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read after close = %v, want ErrClosed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close = %v, want ErrClosed", err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

func TestWriteChargesClock(t *testing.T) {
	d := NewDevice(SSDProfile())
	f, err := d.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	before := d.Clock().Modeled()
	if _, err := f.Write(make([]byte, 1<<20)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	after := d.Clock().Modeled()
	if after <= before {
		t.Fatal("write+fsync did not advance the clock")
	}
	s := d.Stats()
	if s.Writes != 1 || s.Fsyncs != 1 || s.BytesWritten != 1<<20 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFIOWriteSlowerThanReadOnSSD(t *testing.T) {
	read, err := RunFIO(SSDProfile(), FIOConfig{Pattern: RandomRead, Threads: 1, BlockSize: 4096, FileSize: 4 << 20})
	if err != nil {
		t.Fatalf("RunFIO read: %v", err)
	}
	write, err := RunFIO(SSDProfile(), FIOConfig{Pattern: RandomWrite, Threads: 1, BlockSize: 4096, FileSize: 4 << 20})
	if err != nil {
		t.Fatalf("RunFIO write: %v", err)
	}
	if write.ThroughputGBps >= read.ThroughputGBps {
		t.Fatalf("fsync-per-block writes (%f GB/s) should be slower than reads (%f GB/s)",
			write.ThroughputGBps, read.ThroughputGBps)
	}
}

func TestFIODeviceOrdering(t *testing.T) {
	// The paper's Fig. 2 shape: ramdisk >= PM(DAX) >> SSD for every
	// pattern.
	for _, pat := range []FIOPattern{RandomRead, SequentialRead, RandomWrite, SequentialWrite} {
		t.Run(pat.String(), func(t *testing.T) {
			cfg := FIOConfig{Pattern: pat, Threads: 4, BlockSize: 4096, FileSize: 4 << 20}
			ssd, err := RunFIO(SSDProfile(), cfg)
			if err != nil {
				t.Fatalf("ssd: %v", err)
			}
			pmdax, err := RunFIO(PMDaxProfile(), cfg)
			if err != nil {
				t.Fatalf("pm: %v", err)
			}
			ram, err := RunFIO(RamdiskProfile(), cfg)
			if err != nil {
				t.Fatalf("ramdisk: %v", err)
			}
			if !(ram.ThroughputGBps >= pmdax.ThroughputGBps && pmdax.ThroughputGBps > ssd.ThroughputGBps) {
				t.Fatalf("ordering violated: ram=%.3f pm=%.3f ssd=%.3f",
					ram.ThroughputGBps, pmdax.ThroughputGBps, ssd.ThroughputGBps)
			}
			// PM should beat SSD by at least an order of magnitude on
			// writes (fsync per block on SSD).
			if pat.IsWrite() && pmdax.ThroughputGBps < 10*ssd.ThroughputGBps {
				t.Fatalf("PM writes only %.1fx faster than SSD, want >=10x",
					pmdax.ThroughputGBps/ssd.ThroughputGBps)
			}
		})
	}
}

func TestFIOThreadScalingSaturates(t *testing.T) {
	cfg := func(threads int) FIOConfig {
		return FIOConfig{Pattern: RandomRead, Threads: threads, BlockSize: 4096, FileSize: 4 << 20}
	}
	prof := SSDProfile()
	one, err := RunFIO(prof, cfg(1))
	if err != nil {
		t.Fatalf("1 thread: %v", err)
	}
	eight, err := RunFIO(prof, cfg(8))
	if err != nil {
		t.Fatalf("8 threads: %v", err)
	}
	sixteen, err := RunFIO(prof, cfg(16))
	if err != nil {
		t.Fatalf("16 threads: %v", err)
	}
	if eight.ThroughputGBps <= one.ThroughputGBps {
		t.Fatal("8 threads not faster than 1")
	}
	// Beyond MaxParallel (8) extra threads add nothing.
	if sixteen.ThroughputGBps > eight.ThroughputGBps*1.01 {
		t.Fatalf("16 threads (%.3f) exceeded 8-thread saturation (%.3f)",
			sixteen.ThroughputGBps, eight.ThroughputGBps)
	}
}

func TestFIOInvalidConfig(t *testing.T) {
	if _, err := RunFIO(SSDProfile(), FIOConfig{Pattern: RandomRead, Threads: 0, BlockSize: 4096, FileSize: 1 << 20}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := RunFIO(SSDProfile(), FIOConfig{Pattern: RandomRead, Threads: 1, BlockSize: 0, FileSize: 1 << 20}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := RunFIO(SSDProfile(), FIOConfig{Pattern: RandomRead, Threads: 1, BlockSize: 4096, FileSize: 1024}); err == nil {
		t.Fatal("file smaller than block accepted")
	}
}

func TestFig2SweepCoversGrid(t *testing.T) {
	res, err := Fig2Sweep([]int{1, 2, 4, 8})
	if err != nil {
		t.Fatalf("Fig2Sweep: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d devices, want 3", len(res))
	}
	for name, rr := range res {
		if len(rr) != 16 { // 4 patterns x 4 thread counts
			t.Fatalf("%s: %d results, want 16", name, len(rr))
		}
	}
}
