package storage

import (
	"errors"
	"fmt"
	"time"
)

// FIOPattern selects the access pattern of a characterisation workload.
type FIOPattern int

// Access patterns matching the paper's Fig. 2 panels.
const (
	RandomRead FIOPattern = iota + 1
	SequentialRead
	RandomWrite
	SequentialWrite
)

// String implements fmt.Stringer.
func (p FIOPattern) String() string {
	switch p {
	case RandomRead:
		return "rand-read"
	case SequentialRead:
		return "seq-read"
	case RandomWrite:
		return "rand-write"
	case SequentialWrite:
		return "seq-write"
	default:
		return fmt.Sprintf("FIOPattern(%d)", int(p))
	}
}

// IsWrite reports whether the pattern writes.
func (p FIOPattern) IsWrite() bool { return p == RandomWrite || p == SequentialWrite }

// IsSequential reports whether the pattern is sequential.
func (p FIOPattern) IsSequential() bool { return p == SequentialRead || p == SequentialWrite }

// FIOConfig describes a Fig. 2 characterisation run: per-thread file of
// FileSize bytes accessed in BlockSize units; write workloads issue an
// fsync after every written block (the paper's sync I/O engine setup).
type FIOConfig struct {
	Pattern   FIOPattern
	Threads   int
	BlockSize int
	FileSize  int
}

// DefaultFIOConfig matches the paper: 512 MB file per thread, 4 KB blocks.
func DefaultFIOConfig(p FIOPattern, threads int) FIOConfig {
	return FIOConfig{
		Pattern:   p,
		Threads:   threads,
		BlockSize: 4096,
		FileSize:  512 << 20,
	}
}

// FIOResult is one data point of Fig. 2.
type FIOResult struct {
	Config         FIOConfig
	Bytes          uint64
	Elapsed        time.Duration
	ThroughputGBps float64
}

// RunFIO simulates the workload op-by-op against the profile's cost model
// and returns the achieved throughput. Thread scaling follows the
// device's internal parallelism: threads beyond MaxParallel add no
// throughput, and aggregate throughput never exceeds the bandwidth
// ceiling.
func RunFIO(prof Profile, cfg FIOConfig) (FIOResult, error) {
	if cfg.Threads <= 0 {
		return FIOResult{}, errors.New("storage: fio threads must be positive")
	}
	if cfg.BlockSize <= 0 || cfg.FileSize < cfg.BlockSize {
		return FIOResult{}, errors.New("storage: fio block/file size invalid")
	}
	ops := cfg.FileSize / cfg.BlockSize

	// Per-op service time from the cost model.
	var lat time.Duration
	var bw float64
	if cfg.Pattern.IsWrite() {
		lat = prof.WriteLatency + prof.FsyncLatency
		bw = prof.WriteBandwidth
	} else {
		lat = prof.ReadLatency
		bw = prof.ReadBandwidth
	}
	if cfg.Pattern.IsSequential() && prof.SeqBoost > 1 {
		lat = time.Duration(float64(lat) / prof.SeqBoost)
	}
	transfer := time.Duration(float64(cfg.BlockSize) / bw * float64(time.Second))
	perOp := lat + transfer

	// Effective parallelism: min(threads, MaxParallel). Each effective
	// channel serves ops serially.
	eff := cfg.Threads
	if prof.MaxParallel > 0 && eff > prof.MaxParallel {
		eff = prof.MaxParallel
	}
	totalOps := ops * cfg.Threads
	elapsed := time.Duration(int64(perOp) * int64(totalOps) / int64(eff))

	bytes := uint64(totalOps) * uint64(cfg.BlockSize)
	// Bandwidth ceiling: elapsed can never be shorter than bytes/bw.
	floor := time.Duration(float64(bytes) / bw * float64(time.Second))
	if elapsed < floor {
		elapsed = floor
	}
	gbps := float64(bytes) / elapsed.Seconds() / 1e9
	return FIOResult{
		Config:         cfg,
		Bytes:          bytes,
		Elapsed:        elapsed,
		ThroughputGBps: gbps,
	}, nil
}

// Fig2Sweep runs the full Fig. 2 grid (4 patterns x thread counts x 3
// device classes) and returns the results keyed by device name.
func Fig2Sweep(threadCounts []int) (map[string][]FIOResult, error) {
	profiles := []Profile{SSDProfile(), PMDaxProfile(), RamdiskProfile()}
	out := make(map[string][]FIOResult, len(profiles))
	for _, prof := range profiles {
		for _, pat := range []FIOPattern{RandomRead, SequentialRead, RandomWrite, SequentialWrite} {
			for _, th := range threadCounts {
				res, err := RunFIO(prof, DefaultFIOConfig(pat, th))
				if err != nil {
					return nil, fmt.Errorf("fio %s/%s/%d threads: %w", prof.Name, pat, th, err)
				}
				out[prof.Name] = append(out[prof.Name], res)
			}
		}
	}
	return out, nil
}
