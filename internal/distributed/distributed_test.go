package distributed

import (
	"errors"
	"testing"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

func clusterConfig() Config {
	return Config{
		Workers: 3,
		Base: core.Config{
			ModelConfig: darknet.MNISTConfig(1, 4, 16),
			PMBytes:     16 << 20,
			Seed:        1,
		},
	}
}

func newTestCluster(t *testing.T, workers int, samples int) *Cluster {
	t.Helper()
	cfg := clusterConfig()
	cfg.Workers = workers
	c, err := NewCluster(cfg, mnist.Synthetic(samples, 9))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{Workers: 0}, mnist.Synthetic(10, 1)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("zero workers = %v, want ErrNoWorkers", err)
	}
	cfg := clusterConfig()
	cfg.Workers = 20
	if _, err := NewCluster(cfg, mnist.Synthetic(10, 1)); !errors.Is(err, ErrShardTooBig) {
		t.Fatalf("oversharded = %v, want ErrShardTooBig", err)
	}
}

func TestShardingCoversDataset(t *testing.T) {
	c := newTestCluster(t, 3, 100)
	total := 0
	for i := 0; i < c.Workers(); i++ {
		w, err := c.Worker(i)
		if err != nil {
			t.Fatalf("Worker(%d): %v", i, err)
		}
		total += w.Data.N()
	}
	if total != 100 {
		t.Fatalf("shards cover %d samples, want 100", total)
	}
}

func TestWorkersStartWithIdenticalModels(t *testing.T) {
	c := newTestCluster(t, 2, 60)
	a, _ := c.Worker(0)
	b, _ := c.Worker(1)
	pa := a.Net.Layers[0].Params()[0]
	pb := b.Net.Layers[0].Params()[0]
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("workers initialised with different weights")
		}
	}
}

func TestTrainRoundAveragesAndSynchronises(t *testing.T) {
	c := newTestCluster(t, 3, 120)
	loss, err := c.TrainRound(4)
	if err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if loss <= 0 {
		t.Fatalf("mean loss = %f", loss)
	}
	if c.Rounds() != 1 {
		t.Fatalf("Rounds = %d, want 1", c.Rounds())
	}
	// After averaging, every worker holds identical parameters and the
	// same iteration counter.
	ref, _ := c.Worker(0)
	for i := 1; i < c.Workers(); i++ {
		w, _ := c.Worker(i)
		if w.Iteration() != ref.Iteration() {
			t.Fatalf("worker %d iteration %d != %d", i, w.Iteration(), ref.Iteration())
		}
		for li := range ref.Net.Layers {
			rp := ref.Net.Layers[li].Params()
			wp := w.Net.Layers[li].Params()
			for pi := range rp {
				for j := range rp[pi] {
					if rp[pi][j] != wp[pi][j] {
						t.Fatalf("worker %d layer %d buffer %d diverged", i, li, pi)
					}
				}
			}
		}
	}
}

func TestTrainRoundRejectsBadIters(t *testing.T) {
	c := newTestCluster(t, 2, 60)
	if _, err := c.TrainRound(0); err == nil {
		t.Fatal("zero iters accepted")
	}
}

func TestDistributedLearns(t *testing.T) {
	c := newTestCluster(t, 2, 200)
	first, err := c.TrainRound(3)
	if err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	var last float32
	for r := 0; r < 6; r++ {
		last, err = c.TrainRound(3)
		if err != nil {
			t.Fatalf("TrainRound: %v", err)
		}
	}
	if last >= first {
		t.Fatalf("distributed training did not learn: %.4f -> %.4f", first, last)
	}
}

func TestWorkerCrashRecoveryMidTraining(t *testing.T) {
	c := newTestCluster(t, 2, 120)
	if _, err := c.TrainRound(3); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	iterBefore := c.Iteration()

	if err := c.CrashWorker(1); err != nil {
		t.Fatalf("CrashWorker: %v", err)
	}
	w1, _ := c.Worker(1)
	if !w1.Crashed() {
		t.Fatal("worker 1 not crashed")
	}
	if err := c.RecoverWorker(1); err != nil {
		t.Fatalf("RecoverWorker: %v", err)
	}
	// The averaging round mirrored the merged model, so the recovered
	// worker resumes at the synchronised iteration.
	if w1.Iteration() != iterBefore {
		t.Fatalf("recovered worker at iteration %d, want %d", w1.Iteration(), iterBefore)
	}
	// The cluster keeps training.
	if _, err := c.TrainRound(2); err != nil {
		t.Fatalf("TrainRound after recovery: %v", err)
	}
	if c.Iteration() != iterBefore+2 {
		t.Fatalf("cluster iteration %d, want %d", c.Iteration(), iterBefore+2)
	}
}

func TestWorkerIndexValidation(t *testing.T) {
	c := newTestCluster(t, 2, 60)
	if _, err := c.Worker(-1); !errors.Is(err, ErrBadWorker) {
		t.Fatalf("Worker(-1) = %v, want ErrBadWorker", err)
	}
	if _, err := c.Worker(2); !errors.Is(err, ErrBadWorker) {
		t.Fatalf("Worker(2) = %v, want ErrBadWorker", err)
	}
	if err := c.CrashWorker(5); !errors.Is(err, ErrBadWorker) {
		t.Fatalf("CrashWorker(5) = %v, want ErrBadWorker", err)
	}
}

func TestSingleWorkerClusterSkipsAveraging(t *testing.T) {
	c := newTestCluster(t, 1, 60)
	if _, err := c.TrainRound(2); err != nil {
		t.Fatalf("TrainRound: %v", err)
	}
	if c.Iteration() != 2 {
		t.Fatalf("iteration = %d, want 2", c.Iteration())
	}
}

func TestDistributedInference(t *testing.T) {
	c := newTestCluster(t, 2, 200)
	for r := 0; r < 4; r++ {
		if _, err := c.TrainRound(4); err != nil {
			t.Fatalf("TrainRound: %v", err)
		}
	}
	acc, err := c.Infer(mnist.Synthetic(50, 33))
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %f", acc)
	}
}
