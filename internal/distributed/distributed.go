// Package distributed implements the paper's future-work direction of
// §VIII: "we wish to explore distributed training using PLINIUS to
// overcome the SGX EPC limitation."
//
// A Cluster runs N Plinius workers, each with its own enclave, PM
// device, Romulus heap, encrypted mirror and shard of the training
// data — the multi-node deployment of the paper's Fig. 1. Training is
// synchronous data-parallel with model averaging: every round each
// worker trains locally for R iterations (mirroring to its own PM as
// usual), then the coordinator averages the parameters across workers
// over attested secure channels and broadcasts the merged model. Any
// worker can crash and recover from its PM mirror mid-round without
// the cluster losing progress.
package distributed

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"plinius/internal/core"
	"plinius/internal/mnist"
)

// Cluster coordinates data-parallel Plinius workers.
type Cluster struct {
	workers []*core.Framework
	// rounds counts completed averaging rounds.
	rounds int
}

// Cluster errors.
var (
	ErrNoWorkers   = errors.New("distributed: need at least one worker")
	ErrBadWorker   = errors.New("distributed: worker index out of range")
	ErrNotUniform  = errors.New("distributed: worker models have diverged in shape")
	ErrShardTooBig = errors.New("distributed: more workers than samples")
)

// Config parameterises a cluster.
type Config struct {
	// Workers is the number of secure nodes.
	Workers int
	// Base is the per-worker framework configuration; every worker
	// gets Base with a distinct seed (so local batch order differs)
	// but the SAME model seed, making initial parameters identical —
	// the usual data-parallel starting condition.
	Base core.Config
}

// NewCluster builds the workers and shards the dataset across them.
func NewCluster(cfg Config, ds *mnist.Dataset) (*Cluster, error) {
	if cfg.Workers <= 0 {
		return nil, ErrNoWorkers
	}
	if ds.N < cfg.Workers {
		return nil, fmt.Errorf("%w: %d workers, %d samples", ErrShardTooBig, cfg.Workers, ds.N)
	}
	c := &Cluster{workers: make([]*core.Framework, cfg.Workers)}
	per := ds.N / cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		wcfg := cfg.Base
		// Same model seed: identical initial weights on every worker.
		f, err := core.New(wcfg)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		start, end := i*per, (i+1)*per
		if i == cfg.Workers-1 {
			end = ds.N
		}
		shard := &mnist.Dataset{
			Images: ds.Images[start*mnist.Rows*mnist.Cols : end*mnist.Rows*mnist.Cols],
			Labels: ds.Labels[start:end],
			N:      end - start,
		}
		if err := f.LoadDataset(shard); err != nil {
			return nil, fmt.Errorf("worker %d shard: %w", i, err)
		}
		c.workers[i] = f
	}
	return c, nil
}

// Workers returns the number of workers.
func (c *Cluster) Workers() int { return len(c.workers) }

// Rounds returns the number of completed averaging rounds.
func (c *Cluster) Rounds() int { return c.rounds }

// Worker returns the i-th worker framework (e.g. to crash it).
func (c *Cluster) Worker(i int) (*core.Framework, error) {
	if i < 0 || i >= len(c.workers) {
		return nil, fmt.Errorf("%w: %d", ErrBadWorker, i)
	}
	return c.workers[i], nil
}

// TrainRound trains every worker locally for itersPerRound iterations
// (concurrently, one goroutine per secure node), then averages and
// broadcasts the model. It returns the mean of the workers' final
// losses.
func (c *Cluster) TrainRound(itersPerRound int) (float32, error) {
	if itersPerRound <= 0 {
		return 0, errors.New("distributed: itersPerRound must be positive")
	}
	type outcome struct {
		loss float32
		err  error
	}
	results := make([]outcome, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *core.Framework) {
			defer wg.Done()
			target := w.Iteration() + itersPerRound
			var last float32
			err := w.Train(context.Background(), core.StopAt(target),
				core.WithProgress(func(_ int, l float32) { last = l }))
			results[i] = outcome{loss: last, err: err}
		}(i, w)
	}
	wg.Wait()
	var sum float32
	for i, r := range results {
		if r.err != nil {
			return 0, fmt.Errorf("worker %d: %w", i, r.err)
		}
		sum += r.loss
	}
	if err := c.AverageModels(); err != nil {
		return 0, err
	}
	c.rounds++
	return sum / float32(len(c.workers)), nil
}

// AverageModels merges the workers' parameters by arithmetic mean and
// broadcasts the result, then mirrors the merged model on every worker
// so the averaged state is itself crash-durable.
func (c *Cluster) AverageModels() error {
	if len(c.workers) == 1 {
		return nil
	}
	ref := c.workers[0].Net
	// Validate shape uniformity, then average in place into worker 0.
	for wi, w := range c.workers[1:] {
		if len(w.Net.Layers) != len(ref.Layers) {
			return fmt.Errorf("%w: worker %d has %d layers", ErrNotUniform, wi+1, len(w.Net.Layers))
		}
	}
	inv := 1 / float32(len(c.workers))
	for li, l := range ref.Layers {
		refParams := l.Params()
		for pi, p := range refParams {
			for _, w := range c.workers[1:] {
				other := w.Net.Layers[li].Params()
				if len(other) != len(refParams) || len(other[pi]) != len(p) {
					return fmt.Errorf("%w: layer %d buffer %d", ErrNotUniform, li, pi)
				}
			}
			for j := range p {
				sum := p[j]
				for _, w := range c.workers[1:] {
					sum += w.Net.Layers[li].Params()[pi][j]
				}
				p[j] = sum * inv
			}
		}
	}
	// Broadcast worker 0's merged parameters and iteration counter.
	maxIter := 0
	for _, w := range c.workers {
		if w.Iteration() > maxIter {
			maxIter = w.Iteration()
		}
	}
	for _, w := range c.workers {
		for li, l := range w.Net.Layers {
			src := ref.Layers[li].Params()
			for pi, p := range l.Params() {
				copy(p, src[pi])
			}
		}
		w.Net.Iteration = maxIter
		// Persist the merged model in this worker's PM mirror.
		if w.Mirror != nil {
			if err := w.Mirror.MirrorOut(w.Net); err != nil {
				return fmt.Errorf("broadcast mirror: %w", err)
			}
		}
	}
	return nil
}

// CrashWorker simulates a power failure on one node.
func (c *Cluster) CrashWorker(i int) error {
	w, err := c.Worker(i)
	if err != nil {
		return err
	}
	w.Crash()
	return nil
}

// RecoverWorker restarts a crashed node; its model state returns to
// the last mirrored iteration.
func (c *Cluster) RecoverWorker(i int) error {
	w, err := c.Worker(i)
	if err != nil {
		return err
	}
	return w.Recover(true)
}

// Infer runs secure inference on worker 0's model.
func (c *Cluster) Infer(test *mnist.Dataset) (float64, error) {
	return c.workers[0].Infer(test)
}

// Iteration returns worker 0's iteration counter (all workers agree
// after an averaging round).
func (c *Cluster) Iteration() int { return c.workers[0].Iteration() }
