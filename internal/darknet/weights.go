package darknet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary weight serialisation, used by the SSD checkpointing baseline
// (paper §VI: "ocalls to fread and fwrite libC routines to read/write
// from/to SSD"). The format is:
//
//	magic(8) iteration(8) layerCount(8)
//	per layer: bufCount(8), then per buffer: len(8) + float32 data
//
// All integers are little-endian uint64.

const weightsMagic = 0x504C4E57454948 // "PLNWEIH"

// Weight-file errors.
var (
	ErrBadWeights      = errors.New("darknet: malformed weights file")
	ErrWeightsMismatch = errors.New("darknet: weights do not match network architecture")
)

// SaveWeights serialises the network parameters and iteration counter.
func (n *Network) SaveWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := writeU64(bw, weightsMagic); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(n.Iteration)); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(len(n.Layers))); err != nil {
		return err
	}
	for _, l := range n.Layers {
		params := l.Params()
		if err := writeU64(bw, uint64(len(params))); err != nil {
			return err
		}
		for _, p := range params {
			if err := writeU64(bw, uint64(len(p))); err != nil {
				return err
			}
			var buf [4]byte
			for _, f := range p {
				binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
				if _, err := bw.Write(buf[:]); err != nil {
					return fmt.Errorf("darknet: write weights: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// LoadWeights restores parameters saved with SaveWeights into a network
// of identical architecture.
func (n *Network) LoadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	m, err := readU64(br)
	if err != nil {
		return err
	}
	if m != weightsMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrBadWeights, m)
	}
	iter, err := readU64(br)
	if err != nil {
		return err
	}
	layers, err := readU64(br)
	if err != nil {
		return err
	}
	if int(layers) != len(n.Layers) {
		return fmt.Errorf("%w: file has %d layers, network has %d", ErrWeightsMismatch, layers, len(n.Layers))
	}
	for li, l := range n.Layers {
		params := l.Params()
		cnt, err := readU64(br)
		if err != nil {
			return err
		}
		if int(cnt) != len(params) {
			return fmt.Errorf("%w: layer %d has %d buffers, file has %d", ErrWeightsMismatch, li, len(params), cnt)
		}
		for pi, p := range params {
			plen, err := readU64(br)
			if err != nil {
				return err
			}
			if int(plen) != len(p) {
				return fmt.Errorf("%w: layer %d buffer %d: len %d vs %d", ErrWeightsMismatch, li, pi, plen, len(p))
			}
			var buf [4]byte
			for i := range p {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return fmt.Errorf("%w: truncated float data: %v", ErrBadWeights, err)
				}
				p[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
			}
		}
	}
	n.Iteration = int(iter)
	return nil
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("darknet: write weights: %w", err)
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadWeights, err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}
