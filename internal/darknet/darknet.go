// Package darknet implements SGX-Darknet, the Plinius port of the
// Darknet convolutional-neural-network framework: real training and
// inference in Go, structured like the C original (a network is a stack
// of layers; each layer owns its parameter buffers, gradients and
// activation state).
//
// The feature set covers everything the paper's evaluation uses:
// convolutional layers with leaky-ReLU activation (and optional batch
// normalisation, which is why every convolutional layer carries five
// parameter buffers — weights, biases, scales, rolling mean, rolling
// variance — matching the paper's 5-buffers-per-layer encryption
// metadata accounting), max-pooling, fully-connected layers, a softmax
// output with cross-entropy loss, SGD with momentum, a Darknet-style
// .cfg parser, and binary weight (de)serialisation for the SSD
// checkpointing baseline.
package darknet

import (
	"errors"
	"fmt"
	"math/rand"
)

// Activation selects a layer's non-linearity.
type Activation int

// Supported activations. The paper's models use leaky ReLU in the
// convolutional layers and linear before the softmax output.
const (
	Linear Activation = iota + 1
	ReLU
	LeakyReLU
)

const leakySlope = 0.1

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case LeakyReLU:
		return "leaky"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// ParseActivation converts a .cfg activation name.
func ParseActivation(s string) (Activation, error) {
	switch s {
	case "linear":
		return Linear, nil
	case "relu":
		return ReLU, nil
	case "leaky":
		return LeakyReLU, nil
	default:
		return 0, fmt.Errorf("darknet: unknown activation %q", s)
	}
}

func activate(a Activation, v []float32) {
	switch a {
	case ReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = 0
			}
		}
	case LeakyReLU:
		for i, x := range v {
			if x < 0 {
				v[i] = leakySlope * x
			}
		}
	}
}

// gradActivate multiplies delta by the activation derivative evaluated
// at the pre-activation output (using post-activation values, which is
// valid for piecewise-linear activations).
func gradActivate(a Activation, out, delta []float32) {
	switch a {
	case ReLU:
		for i, x := range out {
			if x <= 0 {
				delta[i] = 0
			}
		}
	case LeakyReLU:
		for i, x := range out {
			if x <= 0 {
				delta[i] *= leakySlope
			}
		}
	}
}

// Shape is a (channels, height, width) activation volume.
type Shape struct {
	C, H, W int
}

// Size returns the number of elements in the volume.
func (s Shape) Size() int { return s.C * s.H * s.W }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Layer is one network stage. Forward consumes a batch of input volumes
// (batch x InShape laid out row-major) and returns the batch of outputs;
// Backward consumes the loss gradient w.r.t. the layer output and
// returns the gradient w.r.t. the layer input, accumulating parameter
// gradients; Update applies SGD.
type Layer interface {
	// Kind returns the .cfg section name, e.g. "convolutional".
	Kind() string
	// InShape and OutShape describe the activation volumes.
	InShape() Shape
	OutShape() Shape
	// Forward runs the layer on batch samples. train enables
	// training-only behaviour (batch-norm batch statistics). The
	// returned slice aliases per-layer reusable scratch: it is valid
	// until the layer's next Forward, so callers that retain outputs
	// across passes must copy them.
	Forward(x []float32, batch int, train bool) ([]float32, error)
	// Backward propagates delta (d loss / d output) and returns
	// d loss / d input. Must follow a Forward with the same batch.
	// The returned slice aliases per-layer scratch, valid until the
	// layer's next Backward.
	Backward(delta []float32) ([]float32, error)
	// Update applies accumulated gradients with the given learning
	// rate and momentum, then zeroes them.
	Update(lr, momentum, decay float32)
	// Params returns the layer's parameter buffers in a stable order.
	// Mirroring encrypts each buffer separately (28 B metadata each).
	Params() [][]float32
	// Grads returns the gradient buffers matching Params.
	Grads() [][]float32
}

// Errors shared by layer implementations.
var (
	ErrBatchMismatch = errors.New("darknet: backward called without matching forward")
	ErrBadInput      = errors.New("darknet: input length does not match batch x shape")
	ErrBadConfig     = errors.New("darknet: invalid layer configuration")
)

func checkInput(x []float32, batch int, in Shape) error {
	if batch <= 0 || len(x) != batch*in.Size() {
		return fmt.Errorf("%w: len=%d batch=%d shape=%v", ErrBadInput, len(x), batch, in)
	}
	return nil
}

// initScaled fills w with He-style scaled uniform noise.
func initScaled(rng *rand.Rand, w []float32, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	scale := float32(2) / float32(fanIn)
	// sqrt via iteration-free conversion.
	s := sqrt32(scale)
	for i := range w {
		w[i] = (rng.Float32()*2 - 1) * s
	}
}

func sqrt32(v float32) float32 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 16; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// axpy: y += a*x
func axpy(a float32, x, y []float32) {
	for i, v := range x {
		y[i] += a * v
	}
}

// sgdStep applies v = momentum*v - lr*(g + decay*w); w += v and zeroes g.
func sgdStep(w, g, v []float32, lr, momentum, decay float32) {
	for i := range w {
		grad := g[i] + decay*w[i]
		v[i] = momentum*v[i] - lr*grad
		w[i] += v[i]
		g[i] = 0
	}
}

// gemm computes C += A * B for row-major A (m x k), B (k x n), C (m x n).
// Large multiplies shard output rows across the bounded worker pool
// (parallel.go); the result is bit-identical to gemmScalar either way.
func gemm(m, k, n int, a, b, c []float32) {
	if scalarKernels.Load() {
		gemmScalar(m, k, n, a, b, c)
		return
	}
	mGemmBlocked.Inc()
	if m*k*n < gemmParallelFlops {
		gemmRows(k, n, a, b, c, 0, m)
		return
	}
	parallelFor(m, rowChunk(k, n), func(lo, hi int) {
		gemmRows(k, n, a, b, c, lo, hi)
	})
}

// gemmTA computes C += Aᵀ * B for A (k x m), B (k x n), C (m x n).
func gemmTA(m, k, n int, a, b, c []float32) {
	if scalarKernels.Load() {
		gemmTAScalar(m, k, n, a, b, c)
		return
	}
	mGemmBlocked.Inc()
	if m*k*n < gemmParallelFlops {
		gemmTARows(m, k, n, a, b, c, 0, m)
		return
	}
	parallelFor(m, rowChunk(k, n), func(lo, hi int) {
		gemmTARows(m, k, n, a, b, c, lo, hi)
	})
}

// gemmTB computes C += A * Bᵀ for A (m x k), B (n x k), C (m x n).
func gemmTB(m, k, n int, a, b, c []float32) {
	if scalarKernels.Load() {
		gemmTBScalar(m, k, n, a, b, c)
		return
	}
	mGemmBlocked.Inc()
	if m*k*n < gemmParallelFlops {
		gemmTBRows(k, n, a, b, c, 0, m)
		return
	}
	parallelFor(m, rowChunk(k, n), func(lo, hi int) {
		gemmTBRows(k, n, a, b, c, lo, hi)
	})
}

// gemmScalar is the single-threaded reference for gemm: the paper's
// "fairly intensive single-threaded application" inner loop, kept as
// the ground truth the blocked kernels are tested bit-identical to.
func gemmScalar(m, k, n int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTAScalar is the single-threaded reference for gemmTA.
func gemmTAScalar(m, k, n int, a, b, c []float32) {
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTBScalar is the single-threaded reference for gemmTB.
func gemmTBScalar(m, k, n int, a, b, c []float32) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] += sum
		}
	}
}

// scratchF32 returns a zeroed length-n float32 slice backed by *buf,
// growing it when needed — the per-layer reusable scratch that keeps
// the serving hot path allocation-free (buffers are keyed by the
// requested size, so a changed batch grows once and is then reused).
func scratchF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
		return *buf
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// growF32 returns a length-n float32 slice backed by *buf WITHOUT
// zeroing recycled memory; for scratch whose every element is written
// before being read.
func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}
