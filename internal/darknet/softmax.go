package darknet

import (
	"fmt"
	"math"
)

// Softmax is the output layer: per-sample softmax with cross-entropy
// loss against one-hot truth vectors, matching Darknet's softmax layer
// used by all the paper's models.
type Softmax struct {
	in        Shape
	lastProbs []float32
	lastBatch int

	// outBuf, dxBuf and deltaBuf are reusable scratch; Forward's and
	// CrossEntropy's return values alias them and stay valid until the
	// layer's next corresponding call.
	outBuf, dxBuf, deltaBuf []float32
}

var _ Layer = (*Softmax)(nil)

// NewSoftmax builds a softmax layer over the flattened input.
func NewSoftmax(in Shape) (*Softmax, error) {
	if in.Size() <= 0 {
		return nil, fmt.Errorf("%w: softmax over empty volume", ErrBadConfig)
	}
	return &Softmax{in: in}, nil
}

// Kind implements Layer.
func (s *Softmax) Kind() string { return "softmax" }

// InShape implements Layer.
func (s *Softmax) InShape() Shape { return s.in }

// OutShape implements Layer.
func (s *Softmax) OutShape() Shape { return Shape{C: s.in.Size(), H: 1, W: 1} }

// Params implements Layer.
func (s *Softmax) Params() [][]float32 { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() [][]float32 { return nil }

// Forward implements Layer: returns class probabilities.
func (s *Softmax) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if err := checkInput(x, batch, s.in); err != nil {
		return nil, err
	}
	n := s.in.Size()
	out := growF32(&s.outBuf, batch*n)
	for b := 0; b < batch; b++ {
		row := x[b*n : (b+1)*n]
		orow := out[b*n : (b+1)*n]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
	s.lastProbs = out
	s.lastBatch = batch
	return out, nil
}

// Backward implements Layer. With cross-entropy loss the combined
// gradient is probs - truth, which Loss callers pass in as delta
// directly, so Backward is the identity.
func (s *Softmax) Backward(delta []float32) ([]float32, error) {
	if s.lastBatch == 0 || len(delta) != s.lastBatch*s.in.Size() {
		return nil, ErrBatchMismatch
	}
	dx := growF32(&s.dxBuf, len(delta))
	copy(dx, delta)
	return dx, nil
}

// Update implements Layer: nothing to update.
func (s *Softmax) Update(lr, momentum, decay float32) {}

// CrossEntropy returns the mean cross-entropy loss of probs (batch x
// classes, from Forward) against one-hot truth, plus the gradient
// probs - truth to feed Backward.
func (s *Softmax) CrossEntropy(probs, truth []float32, batch int) (float32, []float32, error) {
	n := s.in.Size()
	if len(probs) != batch*n || len(truth) != batch*n {
		return 0, nil, fmt.Errorf("%w: probs=%d truth=%d batch=%d classes=%d",
			ErrBadInput, len(probs), len(truth), batch, n)
	}
	delta := growF32(&s.deltaBuf, len(probs))
	var loss float64
	for i := range probs {
		delta[i] = (probs[i] - truth[i]) / float32(batch)
		if truth[i] > 0 {
			p := float64(probs[i])
			if p < 1e-12 {
				p = 1e-12
			}
			loss += -math.Log(p) * float64(truth[i])
		}
	}
	return float32(loss / float64(batch)), delta, nil
}
