package darknet

// Multi-core GEMM kernels. The three matrix-multiply shapes behind
// every Forward/Backward (gemm, gemmTA, gemmTB in darknet.go) dispatch
// here: rows of the output are sharded in contiguous chunks across a
// bounded worker pool via parallelFor, and the inner loops are blocked
// over the output columns so the written row segment stays cache-hot
// while the B operand streams through.
//
// The blocked kernels are bit-identical to the scalar reference
// kernels: each output element receives exactly the same additions in
// exactly the same order (ascending p), only distributed across
// goroutines by output row — no partial sums are merged and no
// accumulation order changes, so parallel training and inference
// reproduce the single-threaded results float for float. The property
// tests in parallel_test.go enforce this with tolerance zero.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// kernelWorkers is the configured kernel parallelism; 0 means "use
// GOMAXPROCS at call time". It is always clamped to GOMAXPROCS, since
// compute-bound GEMM shards beyond the CPU count only add scheduling
// overhead.
var kernelWorkers atomic.Int32

// scalarKernels forces the single-threaded scalar reference kernels,
// for benchmarks that measure the parallel speedup and for debugging.
var scalarKernels atomic.Bool

// SetKernelParallelism bounds the GEMM worker pool to n goroutines
// (clamped to [1, GOMAXPROCS] at call time); n <= 0 restores the
// default, GOMAXPROCS. Safe to call concurrently with running kernels;
// in-flight calls keep their pool size.
func SetKernelParallelism(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int32(n))
}

// KernelParallelism returns the effective worker bound for the next
// kernel dispatch.
func KernelParallelism() int {
	w := int(kernelWorkers.Load())
	max := runtime.GOMAXPROCS(0)
	if w <= 0 || w > max {
		return max
	}
	return w
}

// SetScalarKernels toggles the scalar reference kernels. The blocked
// parallel kernels are bit-identical, so this only changes speed; it
// exists for before/after benchmarking (BenchmarkTrainIteration,
// plinius-bench -exp perf).
func SetScalarKernels(on bool) { scalarKernels.Store(on) }

// ScalarKernels reports whether the scalar reference kernels are
// forced.
func ScalarKernels() bool { return scalarKernels.Load() }

// gemmParallelFlops is the multiply-add count below which a kernel
// runs single-threaded: the goroutine handoff (~µs) dwarfs the work.
const gemmParallelFlops = 1 << 15

// gemmBlockJ is the output-column block width (floats): 256 floats =
// 1 KB of C row segment held hot in L1 while B streams past.
const gemmBlockJ = 256

// parallelFor shards [0, n) into contiguous chunks and runs body on up
// to KernelParallelism goroutines, blocking until all chunks finish.
// minChunk bounds the smallest chunk, so tiny trailing shards don't pay
// a goroutine each. body must not panic across chunks it does not own.
// With one worker (or n <= minChunk) the body runs inline.
func parallelFor(n, minChunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w := KernelParallelism()
	if maxW := (n + minChunk - 1) / minChunk; w > maxW {
		w = maxW
	}
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes rows [lo, hi) of C += A * B (row-major A m x k,
// B k x n, C m x n), blocked over the output columns. Per output
// element the additions run in ascending p with the same zero-skip as
// the scalar reference, so the result is bit-identical to gemmScalar.
func gemmRows(k, n int, a, b, c []float32, lo, hi int) {
	for jb := 0; jb < n; jb += gemmBlockJ {
		je := jb + gemmBlockJ
		if je > n {
			je = n
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n+jb : i*n+je]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n+jb : p*n+je]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmTARows computes rows [lo, hi) of C += Aᵀ * B (A k x m, B k x n,
// C m x n). The p loop stays outermost — A's rows are read
// contiguously, sliced to the worker's column range — and per output
// element the additions run in ascending p exactly like the scalar
// reference.
func gemmTARows(m, k, n int, a, b, c []float32, lo, hi int) {
	for p := 0; p < k; p++ {
		arow := a[p*m+lo : p*m+hi]
		brow := b[p*n : p*n+n]
		for ii, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[(lo+ii)*n : (lo+ii)*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTBRows computes rows [lo, hi) of C += A * Bᵀ (A m x k, B n x k,
// C m x n). Each output element is one dot product accumulated in a
// register in ascending p and added to C once — the scalar reference
// order.
func gemmTBRows(k, n int, a, b, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] += sum
		}
	}
}

// rowChunk returns the minimum rows per worker chunk so each chunk
// carries at least gemmParallelFlops multiply-adds.
func rowChunk(k, n int) int {
	perRow := k * n
	if perRow <= 0 {
		return 1
	}
	chunk := gemmParallelFlops / perRow
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}
