package darknet

// Multi-core GEMM kernels. The three matrix-multiply shapes behind
// every Forward/Backward (gemm, gemmTA, gemmTB in darknet.go) dispatch
// here: rows of the output are sharded in contiguous chunks across a
// bounded worker pool via parallelFor, and within each chunk the inner
// loops run 2x4 register-blocked micro-kernels — 8 output elements
// held in registers across the whole inner-product sweep, A panels
// packed into an interleaved stream where the access pattern is
// strided, and cache blocking over the output columns so the B strip
// stays hot.
//
// The blocked kernels are bit-identical to the scalar reference
// kernels: each output element receives exactly the same additions in
// exactly the same order (ascending p), only distributed across
// goroutines by output row — no partial sums are merged and no
// accumulation order changes, so parallel training and inference
// reproduce the single-threaded results float for float. The property
// tests in parallel_test.go enforce this with tolerance zero.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"plinius/internal/obs"
)

// mGemmBlocked counts dispatches onto the register-blocked kernels
// (the non-scalar path), so deployments can verify the fast kernels
// are actually in play.
var mGemmBlocked = obs.Default().Counter("darknet_gemm_blocked_total",
	"GEMM dispatches onto the register-blocked (non-scalar) kernels.")

// kernelWorkers is the configured kernel parallelism; 0 means "use
// GOMAXPROCS at call time". It is always clamped to GOMAXPROCS, since
// compute-bound GEMM shards beyond the CPU count only add scheduling
// overhead.
var kernelWorkers atomic.Int32

// scalarKernels forces the single-threaded scalar reference kernels,
// for benchmarks that measure the parallel speedup and for debugging.
var scalarKernels atomic.Bool

// SetKernelParallelism bounds the GEMM worker pool to n goroutines
// (clamped to [1, GOMAXPROCS] at call time); n <= 0 restores the
// default, GOMAXPROCS. Safe to call concurrently with running kernels;
// in-flight calls keep their pool size.
func SetKernelParallelism(n int) {
	if n < 0 {
		n = 0
	}
	kernelWorkers.Store(int32(n))
}

// KernelParallelism returns the effective worker bound for the next
// kernel dispatch.
func KernelParallelism() int {
	w := int(kernelWorkers.Load())
	max := runtime.GOMAXPROCS(0)
	if w <= 0 || w > max {
		return max
	}
	return w
}

// SetScalarKernels toggles the scalar reference kernels. The blocked
// parallel kernels are bit-identical, so this only changes speed; it
// exists for before/after benchmarking (BenchmarkTrainIteration,
// plinius-bench -exp perf).
func SetScalarKernels(on bool) { scalarKernels.Store(on) }

// ScalarKernels reports whether the scalar reference kernels are
// forced.
func ScalarKernels() bool { return scalarKernels.Load() }

// gemmParallelFlops is the multiply-add count below which a kernel
// runs single-threaded: the goroutine handoff (~µs) dwarfs the work.
const gemmParallelFlops = 1 << 15

// gemmBlockJ is the output-column block width (floats): 256 floats =
// 1 KB of C row segment held hot in L1 while B streams past.
const gemmBlockJ = 256

// parallelFor shards [0, n) into contiguous chunks and runs body on up
// to KernelParallelism goroutines, blocking until all chunks finish.
// minChunk bounds the smallest chunk, so tiny trailing shards don't pay
// a goroutine each. body must not panic across chunks it does not own.
// With one worker (or n <= minChunk) the body runs inline.
func parallelFor(n, minChunk int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	w := KernelParallelism()
	if maxW := (n + minChunk - 1) / minChunk; w > maxW {
		w = maxW
	}
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// packPool recycles the per-call A-panel packing buffers so the hot
// serve/train paths stay allocation-free.
var packPool = sync.Pool{New: func() any { return new([]float32) }}

// packPanel2 interleaves two consecutive A rows (row-major, stride k)
// into pk so the micro-kernel reads one sequential stream:
// pk[p*2+ii] = a[(i+ii)*k+p]. Pure data movement — bit-identity of the
// kernels is unaffected.
func packPanel2(k int, a []float32, i int, pk []float32) {
	r0 := a[i*k : i*k+k]
	r1 := a[(i+1)*k : (i+1)*k+k]
	for p := 0; p < k; p++ {
		pk[2*p] = r0[p]
		pk[2*p+1] = r1[p]
	}
}

// The kernels below are shaped by two facts about the Go compiler on
// amd64: float32 multiply-add is two uops (no FMA fusion) so every
// kernel is fp-port bound near one madd/cycle, and only 16 float
// registers exist, so wide accumulator tiles (4x4 = 16 accumulators +
// 8 temps) spill to the stack and run slower than the naive loops.
// gemm/gemmTA therefore fuse two output rows over one streamed B row
// (halving B loads; C rows stream through L1), while gemmTB — whose
// scalar form is latency-bound on a single accumulator chain — uses a
// 2x4 register tile of 8 independent dot-product accumulators.

// gemmRows computes rows [lo, hi) of C += A * B (row-major A m x k,
// B k x n, C m x n). Row pairs are packed into an interleaved panel
// and fused over a single sweep of each B row, blocked over the output
// columns so the written C segments stay in L1 while B streams.
//
// Bit-identity with gemmScalar: per output element the additions still
// run in ascending p with the same per-row zero-skip (the fused loop
// runs only when both rows are nonzero at p; otherwise the single
// live row takes the reference loop) — fusing interleaves additions to
// *different* elements only, which cannot change any element's value.
func gemmRows(k, n int, a, b, c []float32, lo, hi int) {
	bp := packPool.Get().(*[]float32)
	if cap(*bp) < 2*k {
		*bp = make([]float32, 2*k)
	}
	pk := (*bp)[:2*k]
	i := lo
	for ; i+2 <= hi; i += 2 {
		packPanel2(k, a, i, pk)
		row0 := c[(i+0)*n : (i+0)*n+n]
		row1 := c[(i+1)*n : (i+1)*n+n]
		for jb := 0; jb < n; jb += gemmBlockJ {
			je := jb + gemmBlockJ
			if je > n {
				je = n
			}
			cr0 := row0[jb:je]
			cr1 := row1[jb:je]
			for p := 0; p < k; p++ {
				q := pk[2*p : 2*p+2]
				a0, a1 := q[0], q[1]
				if a0 == 0 && a1 == 0 {
					continue
				}
				brow := b[p*n+jb : p*n+je]
				switch {
				case a0 != 0 && a1 != 0:
					for j, bv := range brow {
						cr0[j] += a0 * bv
						cr1[j] += a1 * bv
					}
				case a0 != 0:
					for j, bv := range brow {
						cr0[j] += a0 * bv
					}
				default:
					for j, bv := range brow {
						cr1[j] += a1 * bv
					}
				}
			}
		}
	}
	packPool.Put(bp)
	// Row tail: the scalar reference loop.
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTARows computes rows [lo, hi) of C += Aᵀ * B (A k x m, B k x n,
// C m x n), fusing two output rows over one streamed B row exactly
// like gemmRows; no packing is needed because a[p*m+i..i+2] is already
// contiguous at fixed p. Per output element the additions run in
// ascending p with the scalar reference's zero-skip.
func gemmTARows(m, k, n int, a, b, c []float32, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		cr0 := c[(i+0)*n : (i+0)*n+n]
		cr1 := c[(i+1)*n : (i+1)*n+n]
		for p := 0; p < k; p++ {
			aa := a[p*m+i : p*m+i+2]
			a0, a1 := aa[0], aa[1]
			if a0 == 0 && a1 == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			switch {
			case a0 != 0 && a1 != 0:
				for j, bv := range brow {
					cr0[j] += a0 * bv
					cr1[j] += a1 * bv
				}
			case a0 != 0:
				for j, bv := range brow {
					cr0[j] += a0 * bv
				}
			default:
				for j, bv := range brow {
					cr1[j] += a1 * bv
				}
			}
		}
	}
	// Row tail: p-outer reference order over the remaining rows.
	if i < hi {
		for p := 0; p < k; p++ {
			arow := a[p*m+i : p*m+hi]
			brow := b[p*n : p*n+n]
			for ii, av := range arow {
				if av == 0 {
					continue
				}
				crow := c[(i+ii)*n : (i+ii)*n+n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmTBRows computes rows [lo, hi) of C += A * Bᵀ (A m x k, B n x k,
// C m x n) with 2x4 register tiles of dot products: 8 accumulators
// start at zero, sweep p in ascending order, and each is added to its
// C element exactly once at the end — the scalar reference order per
// element. Both operands are read as contiguous rows, so no packing is
// needed.
func gemmTBRows(k, n int, a, b, c []float32, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		ar0 := a[(i+0)*k : (i+0)*k+k]
		ar1 := a[(i+1)*k : (i+1)*k+k]
		j := 0
		for ; j+4 <= n; j += 4 {
			br0 := b[(j+0)*k : (j+0)*k+k]
			br1 := b[(j+1)*k : (j+1)*k+k]
			br2 := b[(j+2)*k : (j+2)*k+k]
			br3 := b[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03 float32
			var s10, s11, s12, s13 float32
			for p := 0; p < k; p++ {
				a0, a1 := ar0[p], ar1[p]
				b0, b1, b2, b3 := br0[p], br1[p], br2[p], br3[p]
				s00 += a0 * b0
				s01 += a0 * b1
				s02 += a0 * b2
				s03 += a0 * b3
				s10 += a1 * b0
				s11 += a1 * b1
				s12 += a1 * b2
				s13 += a1 * b3
			}
			o0, o1 := (i+0)*n+j, (i+1)*n+j
			c[o0] += s00
			c[o0+1] += s01
			c[o0+2] += s02
			c[o0+3] += s03
			c[o1] += s10
			c[o1+1] += s11
			c[o1+2] += s12
			c[o1+3] += s13
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s0, s1 float32
			for p := 0; p < k; p++ {
				bv := brow[p]
				s0 += ar0[p] * bv
				s1 += ar1[p] * bv
			}
			c[(i+0)*n+j] += s0
			c[(i+1)*n+j] += s1
		}
	}
	// Row tail: the scalar reference loop.
	for ; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var sum float32
			for p, av := range arow {
				sum += av * brow[p]
			}
			crow[j] += sum
		}
	}
}

// rowChunk returns the minimum rows per worker chunk so each chunk
// carries at least gemmParallelFlops multiply-adds.
func rowChunk(k, n int) int {
	perRow := k * n
	if perRow <= 0 {
		return 1
	}
	chunk := gemmParallelFlops / perRow
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}
