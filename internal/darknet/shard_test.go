package darknet

import (
	"math/rand"
	"strings"
	"testing"
)

func shardTestNet(t *testing.T) *Network {
	t.Helper()
	net, err := ParseConfig(strings.NewReader(MNISTConfig(3, 8, 4)), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return net
}

// TestPlanShardsCoversAllLayers: every plan is a contiguous exact cover
// of the layer list, whatever the bound.
func TestPlanShardsCoversAllLayers(t *testing.T) {
	net := shardTestNet(t)
	for _, maxBytes := range []int{1, 16 << 10, 1 << 20, 1 << 30} {
		plan, err := net.PlanShards(maxBytes, 4)
		if err != nil {
			t.Fatalf("PlanShards(%d): %v", maxBytes, err)
		}
		next := 0
		for _, r := range plan {
			if r.From != next || r.To <= r.From {
				t.Fatalf("PlanShards(%d): range %v breaks contiguous cover at %d", maxBytes, r, next)
			}
			next = r.To
		}
		if next != len(net.Layers) {
			t.Fatalf("PlanShards(%d): cover ends at %d of %d layers", maxBytes, next, len(net.Layers))
		}
	}
}

// TestPlanShardsRespectsBound: multi-layer shards stay under the bound
// (single oversize layers are allowed their own shard).
func TestPlanShardsRespectsBound(t *testing.T) {
	net := shardTestNet(t)
	bound := 64 << 10
	plan, err := net.PlanShards(bound, 4)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if len(plan) < 2 {
		t.Fatalf("bound %d produced %d shards; test needs a real split", bound, len(plan))
	}
	for _, r := range plan {
		fp, err := net.ShardFootprint(r, 4)
		if err != nil {
			t.Fatalf("ShardFootprint(%v): %v", r, err)
		}
		if r.To-r.From > 1 && fp > bound {
			t.Fatalf("shard %v footprint %d exceeds bound %d", r, fp, bound)
		}
	}
}

// TestPlanShardCount: the count-targeted planner returns at most the
// requested number of shards, still covering everything.
func TestPlanShardCount(t *testing.T) {
	net := shardTestNet(t)
	for _, count := range []int{1, 2, 3, 100} {
		plan, err := net.PlanShardCount(count, 4)
		if err != nil {
			t.Fatalf("PlanShardCount(%d): %v", count, err)
		}
		if len(plan) > count {
			t.Fatalf("PlanShardCount(%d) returned %d shards", count, len(plan))
		}
		if plan[len(plan)-1].To != len(net.Layers) || plan[0].From != 0 {
			t.Fatalf("PlanShardCount(%d): plan %v does not cover the network", count, plan)
		}
	}
}

// TestShardedForwardBitIdentical: chaining shard forward passes over
// any plan reproduces the full network's output bit for bit.
func TestShardedForwardBitIdentical(t *testing.T) {
	net := shardTestNet(t)
	batch := 3
	rng := rand.New(rand.NewSource(9))
	x := make([]float32, batch*net.InputSize())
	for i := range x {
		x[i] = rng.Float32()
	}
	ref, err := net.Forward(x, batch, false)
	if err != nil {
		t.Fatalf("full Forward: %v", err)
	}
	// Shards share the full network's layers, whose forward scratch is
	// reused pass to pass — copy the reference before re-driving them.
	want := append([]float32(nil), ref...)

	plan, err := net.PlanShards(64<<10, batch)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	cur := x
	for _, r := range plan {
		sub, err := net.Shard(r)
		if err != nil {
			t.Fatalf("Shard(%v): %v", r, err)
		}
		if sub.InputSize() != net.Layers[r.From].InShape().Size() {
			t.Fatalf("shard %v InputSize %d, want %d", r, sub.InputSize(), net.Layers[r.From].InShape().Size())
		}
		cur, err = sub.Forward(cur, batch, false)
		if err != nil {
			t.Fatalf("shard %v Forward: %v", r, err)
		}
	}
	if len(cur) != len(want) {
		t.Fatalf("sharded output length %d, want %d", len(cur), len(want))
	}
	for i := range want {
		if cur[i] != want[i] {
			t.Fatalf("sharded output differs at %d: %v vs %v", i, cur[i], want[i])
		}
	}

	// ForwardRange over the whole network is the full forward.
	all, err := net.ForwardRange(x, batch, ShardRange{From: 0, To: len(net.Layers)}, false)
	if err != nil {
		t.Fatalf("ForwardRange: %v", err)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("ForwardRange differs at %d", i)
		}
	}
}

// TestParamLayersBefore counts only parameter-carrying layers.
func TestParamLayersBefore(t *testing.T) {
	net := shardTestNet(t)
	count := 0
	for i, l := range net.Layers {
		if got := net.ParamLayersBefore(i); got != count {
			t.Fatalf("ParamLayersBefore(%d) = %d, want %d", i, got, count)
		}
		if len(l.Params()) > 0 {
			count++
		}
	}
}

// TestShardRangeValidation rejects malformed ranges and bounds.
func TestShardRangeValidation(t *testing.T) {
	net := shardTestNet(t)
	for _, r := range []ShardRange{{From: -1, To: 1}, {From: 2, To: 2}, {From: 0, To: len(net.Layers) + 1}} {
		if _, err := net.Shard(r); err == nil {
			t.Fatalf("Shard(%v) accepted an invalid range", r)
		}
	}
	if _, err := net.PlanShards(0, 1); err == nil {
		t.Fatal("PlanShards(0) accepted a non-positive bound")
	}
}
