package darknet

import (
	"errors"
	"fmt"
)

// Model sharding: partition a network into contiguous layer ranges so
// one model that exceeds the usable EPC can be pipelined across several
// small shard enclaves instead of thrashing one big one. A ShardRange
// is a half-open [From, To) interval of layer indices; Shard builds a
// runnable sub-network over such a range, and PlanShards chooses the
// ranges so each shard's enclave working set — its parameter buffers
// plus the activation volumes a forward pass stages — stays under a
// byte bound.

// ShardRange is a contiguous half-open layer range [From, To).
type ShardRange struct {
	From, To int
}

// String implements fmt.Stringer.
func (r ShardRange) String() string { return fmt.Sprintf("[%d,%d)", r.From, r.To) }

// Sharding errors.
var (
	ErrBadShardRange = errors.New("darknet: shard range out of bounds")
	ErrBadShardBound = errors.New("darknet: shard byte bound must be positive")
)

func (n *Network) checkRange(r ShardRange) error {
	if r.From < 0 || r.To > len(n.Layers) || r.From >= r.To {
		return fmt.Errorf("%w: %v of %d layers", ErrBadShardRange, r, len(n.Layers))
	}
	return nil
}

// Shard builds the sub-network over the layer range r. The shard shares
// the receiver's layer objects (parameter buffers included), so a
// restore into the shard restores the corresponding range of the full
// model; its Config input volume is rewritten to the range's input
// shape, so InputSize and Forward see the shard as a complete network.
// A forward pass over the shard is bit-identical to the corresponding
// segment of the full network's forward pass.
func (n *Network) Shard(r ShardRange) (*Network, error) {
	if err := n.checkRange(r); err != nil {
		return nil, err
	}
	cfg := n.Config
	in := n.Layers[r.From].InShape()
	cfg.Channels, cfg.Height, cfg.Width = in.C, in.H, in.W
	return &Network{
		Config:    cfg,
		Layers:    n.Layers[r.From:r.To],
		Iteration: n.Iteration,
	}, nil
}

// ForwardRange runs a forward pass over just the layer range r —
// exactly the segment a shard enclave executes — and returns the
// range's output activations.
func (n *Network) ForwardRange(x []float32, batch int, r ShardRange, train bool) ([]float32, error) {
	sub, err := n.Shard(r)
	if err != nil {
		return nil, err
	}
	return sub.Forward(x, batch, train)
}

// layerParamBytes returns one layer's parameter footprint in bytes at
// the given serving precision. At Int8 the weight matrix (buffer 0 of
// a trainable layer, or the QuantWeights of an already-quantized one)
// counts one byte per element plus the scale/zero-point header; the
// small fp32 vectors keep four bytes per element. Layers without
// parameters are free at either precision.
func layerParamBytes(l Layer, prec Precision) int {
	total := 0
	if ql, ok := l.(QuantWeightLayer); ok {
		total = len(ql.QuantWeights()) + QuantHeaderBytes
		for _, p := range l.Params() {
			total += 4 * len(p)
		}
		return total
	}
	for bi, p := range l.Params() {
		if prec == Int8 && bi == 0 {
			total += len(p) + QuantHeaderBytes
		} else {
			total += 4 * len(p)
		}
	}
	return total
}

// ShardFootprint returns the enclave working set of the shard r at the
// given micro-batch size: its parameter bytes plus the staged input
// volume and every layer's activation output buffer. This is what a
// shard enclave reserves while hot, and what PlanShards packs against
// its byte bound.
func (n *Network) ShardFootprint(r ShardRange, batch int) (int, error) {
	return n.ShardFootprintAt(r, batch, FP32)
}

// ShardFootprintAt is ShardFootprint at an explicit serving precision:
// at Int8 the parameter term shrinks to the quantized snapshot size
// (activations stay fp32 — the int8 forward path dequantizes on
// accumulate into fp32 activations).
func (n *Network) ShardFootprintAt(r ShardRange, batch int, prec Precision) (int, error) {
	if err := n.checkRange(r); err != nil {
		return 0, err
	}
	if batch <= 0 {
		batch = 1
	}
	total := 4 * batch * n.Layers[r.From].InShape().Size()
	for _, l := range n.Layers[r.From:r.To] {
		total += layerParamBytes(l, prec) + 4*batch*l.OutShape().Size()
	}
	return total, nil
}

// ParamLayersBefore returns how many parameter-carrying layers precede
// layer index i — the offset of layer i's parameters in the persistent
// mirror's layer-node list, which stores only layers that have
// parameters. Shard restores use it to address their range of the
// published snapshot.
func (n *Network) ParamLayersBefore(i int) int {
	count := 0
	for _, l := range n.Layers[:i] {
		if len(l.Params()) > 0 {
			count++
		}
	}
	return count
}

// PlanShards partitions the network into contiguous shards whose
// ShardFootprint at the given batch stays within maxBytes, balancing
// greedily: each shard takes layers until the next one would overflow
// the bound. A single layer whose footprint alone exceeds maxBytes
// gets a shard of its own — layers are the granularity of the split —
// so every plan covers all layers even when the bound is unreachable.
func (n *Network) PlanShards(maxBytes, batch int) ([]ShardRange, error) {
	return n.PlanShardsAt(maxBytes, batch, FP32)
}

// PlanShardsAt is PlanShards against ShardFootprintAt at an explicit
// serving precision: at Int8 the smaller parameter footprints let more
// layers pack into each shard, so models that needed several shard
// enclaves at fp32 may fit one.
func (n *Network) PlanShardsAt(maxBytes, batch int, prec Precision) ([]ShardRange, error) {
	if len(n.Layers) == 0 {
		return nil, ErrEmptyNetwork
	}
	if maxBytes <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadShardBound, maxBytes)
	}
	var plan []ShardRange
	from := 0
	for from < len(n.Layers) {
		to := from + 1
		for to < len(n.Layers) {
			fp, err := n.ShardFootprintAt(ShardRange{From: from, To: to + 1}, batch, prec)
			if err != nil {
				return nil, err
			}
			if fp > maxBytes {
				break
			}
			to++
		}
		plan = append(plan, ShardRange{From: from, To: to})
		from = to
	}
	return plan, nil
}

// PlanShardCount partitions the network into at most count contiguous
// shards, relaxing the per-shard byte bound from the ideal equal split
// until the plan fits. count <= 1 yields the whole-network single
// shard.
func (n *Network) PlanShardCount(count, batch int) ([]ShardRange, error) {
	if len(n.Layers) == 0 {
		return nil, ErrEmptyNetwork
	}
	if count <= 1 {
		return []ShardRange{{From: 0, To: len(n.Layers)}}, nil
	}
	total, err := n.ShardFootprint(ShardRange{From: 0, To: len(n.Layers)}, batch)
	if err != nil {
		return nil, err
	}
	step := total/count/8 + 1
	for bound := total/count + 1; ; bound += step {
		plan, err := n.PlanShards(bound, batch)
		if err != nil {
			return nil, err
		}
		if len(plan) <= count {
			return plan, nil
		}
	}
}
