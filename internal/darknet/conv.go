package darknet

import (
	"fmt"
	"math/rand"
)

// ConvConfig parameterises a convolutional layer.
type ConvConfig struct {
	Filters    int
	Size       int
	Stride     int
	Pad        int
	Activation Activation
	BatchNorm  bool
}

// Conv is a 2-D convolutional layer with optional batch normalisation.
// As in Darknet, the layer always carries five parameter buffers —
// weights, biases, scales, rolling mean, rolling variance — so the
// mirroring module's per-layer encryption metadata matches the paper's
// 140 B/layer accounting even when batch norm is disabled.
// convGeom is the shared geometry of a convolutional layer — input
// and output volumes plus kernel configuration — factored out so the
// fp32 Conv and the int8 QuantConv share the im2col/col2im machinery.
type convGeom struct {
	in, out Shape
	cfg     ConvConfig
}

type Conv struct {
	convGeom

	weights, biases            []float32
	scales, rollMean, rollVar  []float32
	gWeights, gBiases, gScales []float32
	vWeights, vBiases, vScales []float32
	batchMean, batchVar        []float32
	gMean, gVar                []float32
	lastX, lastCols, lastOut   []float32
	preBN, xhat                []float32
	lastBatch                  int

	// outBuf, dxBuf and dcolsBuf are reusable forward/backward scratch
	// (grown to the largest batch seen), keeping the hot serve/train
	// paths allocation-free. Forward's return value aliases outBuf and
	// is valid until the layer's next Forward.
	outBuf, dxBuf, dcolsBuf []float32
}

var _ Layer = (*Conv)(nil)

// NewConv builds a convolutional layer for the given input volume.
func NewConv(in Shape, cfg ConvConfig, rng *rand.Rand) (*Conv, error) {
	if cfg.Filters <= 0 || cfg.Size <= 0 || cfg.Stride <= 0 || cfg.Pad < 0 {
		return nil, fmt.Errorf("%w: conv %+v", ErrBadConfig, cfg)
	}
	if cfg.Activation == 0 {
		cfg.Activation = LeakyReLU
	}
	outH := (in.H+2*cfg.Pad-cfg.Size)/cfg.Stride + 1
	outW := (in.W+2*cfg.Pad-cfg.Size)/cfg.Stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("%w: conv output %dx%d", ErrBadConfig, outH, outW)
	}
	k := in.C * cfg.Size * cfg.Size
	c := &Conv{
		convGeom: convGeom{in: in, out: Shape{C: cfg.Filters, H: outH, W: outW}, cfg: cfg},
		weights:  make([]float32, cfg.Filters*k),
		biases:   make([]float32, cfg.Filters),
		scales:   make([]float32, cfg.Filters),
		rollMean: make([]float32, cfg.Filters),
		rollVar:  make([]float32, cfg.Filters),
		gWeights: make([]float32, cfg.Filters*k),
		gBiases:  make([]float32, cfg.Filters),
		gScales:  make([]float32, cfg.Filters),
		vWeights: make([]float32, cfg.Filters*k),
		vBiases:  make([]float32, cfg.Filters),
		vScales:  make([]float32, cfg.Filters),
	}
	initScaled(rng, c.weights, k)
	for i := range c.scales {
		c.scales[i] = 1
		c.rollVar[i] = 1
	}
	return c, nil
}

// Kind implements Layer.
func (c *Conv) Kind() string { return "convolutional" }

// InShape implements Layer.
func (c *Conv) InShape() Shape { return c.in }

// OutShape implements Layer.
func (c *Conv) OutShape() Shape { return c.out }

// Params implements Layer: the five Darknet conv parameter buffers.
func (c *Conv) Params() [][]float32 {
	return [][]float32{c.weights, c.biases, c.scales, c.rollMean, c.rollVar}
}

// Grads implements Layer. Rolling statistics have no gradients; they
// are updated by forward passes, so their slots are nil.
func (c *Conv) Grads() [][]float32 {
	return [][]float32{c.gWeights, c.gBiases, c.gScales, nil, nil}
}

func (c *convGeom) kcols() int { return c.in.C * c.cfg.Size * c.cfg.Size }

// im2col expands one input volume into a (k x outH*outW) column matrix.
func (c *convGeom) im2col(x []float32, cols []float32) {
	for ch := 0; ch < c.in.C; ch++ {
		c.im2colChannel(x, cols, ch)
	}
}

// im2colChannel expands a single input channel into its size*size rows
// of the column matrix. Different channels write disjoint `cols` rows
// and only read `x`, so channels can run concurrently with results
// identical to the serial loop.
func (c *convGeom) im2colChannel(x []float32, cols []float32, ch int) {
	size, stride, pad := c.cfg.Size, c.cfg.Stride, c.cfg.Pad
	outHW := c.out.H * c.out.W
	chBase := ch * c.in.H * c.in.W
	for ky := 0; ky < size; ky++ {
		for kx := 0; kx < size; kx++ {
			row := ((ch*size+ky)*size + kx) * outHW
			for oy := 0; oy < c.out.H; oy++ {
				iy := oy*stride + ky - pad
				for ox := 0; ox < c.out.W; ox++ {
					ix := ox*stride + kx - pad
					var v float32
					if iy >= 0 && iy < c.in.H && ix >= 0 && ix < c.in.W {
						v = x[chBase+iy*c.in.W+ix]
					}
					cols[row+oy*c.out.W+ox] = v
				}
			}
		}
	}
}

// im2colParallelWork is the per-chunk write volume (floats) below
// which parallel im2col/col2im chunks are not worth a goroutine.
const im2colParallelWork = 1 << 14

// im2colChunk returns the minimum channels per parallel chunk so each
// chunk writes at least im2colParallelWork floats.
func (c *convGeom) im2colChunk() int {
	perCh := c.cfg.Size * c.cfg.Size * c.out.H * c.out.W
	if perCh <= 0 {
		return 1
	}
	chunk := im2colParallelWork / perCh
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// col2im scatters a column-matrix gradient back into an input-volume
// gradient (accumulating). Channels are fanned across the kernel
// worker pool: each channel's column rows scatter into that channel's
// disjoint dx region, and within a channel the accumulation order is
// the serial one, so the result is bit-identical to the serial loop.
func (c *convGeom) col2im(cols []float32, dx []float32) {
	if ScalarKernels() || c.in.C == 1 {
		for ch := 0; ch < c.in.C; ch++ {
			c.col2imChannel(cols, dx, ch)
		}
		return
	}
	parallelFor(c.in.C, c.im2colChunk(), func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			c.col2imChannel(cols, dx, ch)
		}
	})
}

// col2imChannel scatters one channel's column rows into its dx region.
func (c *convGeom) col2imChannel(cols []float32, dx []float32, ch int) {
	size, stride, pad := c.cfg.Size, c.cfg.Stride, c.cfg.Pad
	outHW := c.out.H * c.out.W
	chBase := ch * c.in.H * c.in.W
	for ky := 0; ky < size; ky++ {
		for kx := 0; kx < size; kx++ {
			row := ((ch*size+ky)*size + kx) * outHW
			for oy := 0; oy < c.out.H; oy++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= c.in.H {
					continue
				}
				for ox := 0; ox < c.out.W; ox++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= c.in.W {
						continue
					}
					dx[chBase+iy*c.in.W+ix] += cols[row+oy*c.out.W+ox]
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if err := checkInput(x, batch, c.in); err != nil {
		return nil, err
	}
	k := c.kcols()
	outHW := c.out.H * c.out.W
	outSize := c.out.Size()
	if cap(c.lastCols) < batch*k*outHW {
		c.lastCols = make([]float32, batch*k*outHW)
	}
	c.lastCols = c.lastCols[:batch*k*outHW]
	out := scratchF32(&c.outBuf, batch*outSize)
	inSize := c.in.Size()
	colSize := k * outHW
	if !ScalarKernels() && batch*c.in.C > 1 {
		// Expand every sample's column matrix first, fanned over
		// (sample, channel) pairs: the writes are disjoint, so this is
		// exactly the serial expansion, and convolution setup no longer
		// serializes ahead of the parallel GEMM below.
		parallelFor(batch*c.in.C, c.im2colChunk(), func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				b, ch := idx/c.in.C, idx%c.in.C
				c.im2colChannel(x[b*inSize:(b+1)*inSize], c.lastCols[b*colSize:(b+1)*colSize], ch)
			}
		})
		for b := 0; b < batch; b++ {
			gemm(c.cfg.Filters, k, outHW, c.weights,
				c.lastCols[b*colSize:(b+1)*colSize], out[b*outSize:(b+1)*outSize])
		}
	} else {
		for b := 0; b < batch; b++ {
			cols := c.lastCols[b*colSize : (b+1)*colSize]
			c.im2col(x[b*inSize:(b+1)*inSize], cols)
			gemm(c.cfg.Filters, k, outHW, c.weights, cols, out[b*outSize:(b+1)*outSize])
		}
	}
	c.lastX = x
	c.lastBatch = batch

	if c.cfg.BatchNorm {
		c.forwardBatchNorm(out, batch, train)
	}
	// Bias add (after BN, as in Darknet: biases act as the BN beta).
	for b := 0; b < batch; b++ {
		for f := 0; f < c.cfg.Filters; f++ {
			base := b*outSize + f*outHW
			bias := c.biases[f]
			for i := 0; i < outHW; i++ {
				out[base+i] += bias
			}
		}
	}
	activate(c.cfg.Activation, out)
	c.lastOut = out
	return out, nil
}

const bnEps = 1e-5
const bnMomentum = 0.99

func (c *Conv) forwardBatchNorm(out []float32, batch int, train bool) {
	outHW := c.out.H * c.out.W
	outSize := c.out.Size()
	if cap(c.batchMean) < c.cfg.Filters {
		c.batchMean = make([]float32, c.cfg.Filters)
		c.batchVar = make([]float32, c.cfg.Filters)
	}
	c.batchMean = c.batchMean[:c.cfg.Filters]
	c.batchVar = c.batchVar[:c.cfg.Filters]

	if cap(c.preBN) < len(out) {
		c.preBN = make([]float32, len(out))
		c.xhat = make([]float32, len(out))
	}
	c.preBN = c.preBN[:len(out)]
	c.xhat = c.xhat[:len(out)]
	copy(c.preBN, out)

	n := float32(batch * outHW)
	var mean, varv []float32
	if train {
		for f := 0; f < c.cfg.Filters; f++ {
			var sum float32
			for b := 0; b < batch; b++ {
				base := b*outSize + f*outHW
				for i := 0; i < outHW; i++ {
					sum += out[base+i]
				}
			}
			m := sum / n
			var sq float32
			for b := 0; b < batch; b++ {
				base := b*outSize + f*outHW
				for i := 0; i < outHW; i++ {
					d := out[base+i] - m
					sq += d * d
				}
			}
			c.batchMean[f] = m
			c.batchVar[f] = sq / n
			c.rollMean[f] = bnMomentum*c.rollMean[f] + (1-bnMomentum)*m
			c.rollVar[f] = bnMomentum*c.rollVar[f] + (1-bnMomentum)*c.batchVar[f]
		}
		mean, varv = c.batchMean, c.batchVar
	} else {
		mean, varv = c.rollMean, c.rollVar
	}
	for f := 0; f < c.cfg.Filters; f++ {
		inv := 1 / sqrt32(varv[f]+bnEps)
		scale := c.scales[f]
		m := mean[f]
		for b := 0; b < batch; b++ {
			base := b*outSize + f*outHW
			for i := 0; i < outHW; i++ {
				xh := (out[base+i] - m) * inv
				c.xhat[base+i] = xh
				out[base+i] = scale * xh
			}
		}
	}
}

// Backward implements Layer.
func (c *Conv) Backward(delta []float32) ([]float32, error) {
	if c.lastBatch == 0 || len(delta) != c.lastBatch*c.out.Size() {
		return nil, ErrBatchMismatch
	}
	batch := c.lastBatch
	gradActivate(c.cfg.Activation, c.lastOut, delta)

	outHW := c.out.H * c.out.W
	outSize := c.out.Size()
	// Bias gradients.
	for b := 0; b < batch; b++ {
		for f := 0; f < c.cfg.Filters; f++ {
			base := b*outSize + f*outHW
			var sum float32
			for i := 0; i < outHW; i++ {
				sum += delta[base+i]
			}
			c.gBiases[f] += sum
		}
	}
	if c.cfg.BatchNorm {
		c.backwardBatchNorm(delta, batch)
	}

	k := c.kcols()
	dx := scratchF32(&c.dxBuf, batch*c.in.Size())
	dcols := growF32(&c.dcolsBuf, k*outHW)
	for b := 0; b < batch; b++ {
		cols := c.lastCols[b*k*outHW : (b+1)*k*outHW]
		dout := delta[b*outSize : (b+1)*outSize]
		// dW += dout x colsᵀ : (filters x outHW) x (outHW x k)
		gemmTB(c.cfg.Filters, outHW, k, dout, cols, c.gWeights)
		// dcols = Wᵀ x dout : (k x filters) x (filters x outHW)
		for i := range dcols {
			dcols[i] = 0
		}
		gemmTA(k, c.cfg.Filters, outHW, c.weights, dout, dcols)
		c.col2im(dcols, dx[b*c.in.Size():(b+1)*c.in.Size()])
	}
	return dx, nil
}

// backwardBatchNorm rewrites delta (d loss / d BN output) into
// d loss / d BN input and accumulates scale gradients.
func (c *Conv) backwardBatchNorm(delta []float32, batch int) {
	outHW := c.out.H * c.out.W
	outSize := c.out.Size()
	n := float32(batch * outHW)
	for f := 0; f < c.cfg.Filters; f++ {
		inv := 1 / sqrt32(c.batchVar[f]+bnEps)
		scale := c.scales[f]
		var sumDelta, sumDeltaXhat float32
		for b := 0; b < batch; b++ {
			base := b*outSize + f*outHW
			for i := 0; i < outHW; i++ {
				d := delta[base+i]
				sumDelta += d
				sumDeltaXhat += d * c.xhat[base+i]
			}
		}
		c.gScales[f] += sumDeltaXhat
		for b := 0; b < batch; b++ {
			base := b*outSize + f*outHW
			for i := 0; i < outHW; i++ {
				d := delta[base+i]
				xh := c.xhat[base+i]
				delta[base+i] = scale * inv / n * (n*d - sumDelta - xh*sumDeltaXhat)
			}
		}
	}
}

// Update implements Layer.
func (c *Conv) Update(lr, momentum, decay float32) {
	sgdStep(c.weights, c.gWeights, c.vWeights, lr, momentum, decay)
	sgdStep(c.biases, c.gBiases, c.vBiases, lr, momentum, 0)
	if c.cfg.BatchNorm {
		sgdStep(c.scales, c.gScales, c.vScales, lr, momentum, 0)
	} else {
		for i := range c.gScales {
			c.gScales[i] = 0
		}
	}
}
