package darknet

import (
	"math"
	"math/rand"
	"testing"
)

// lossOf runs a forward pass and returns the cross-entropy loss.
func lossOf(t *testing.T, n *Network, x, y []float32, batch int) float32 {
	t.Helper()
	probs, err := n.Forward(x, batch, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	sm, ok := n.Layers[len(n.Layers)-1].(*Softmax)
	if !ok {
		t.Fatal("last layer is not softmax")
	}
	loss, _, err := sm.CrossEntropy(probs, y, batch)
	if err != nil {
		t.Fatalf("CrossEntropy: %v", err)
	}
	return loss
}

// backwardOf runs forward+backward and leaves gradients accumulated.
func backwardOf(t *testing.T, n *Network, x, y []float32, batch int) {
	t.Helper()
	probs, err := n.Forward(x, batch, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	sm := n.Layers[len(n.Layers)-1].(*Softmax)
	_, delta, err := sm.CrossEntropy(probs, y, batch)
	if err != nil {
		t.Fatalf("CrossEntropy: %v", err)
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		delta, err = n.Layers[i].Backward(delta)
		if err != nil {
			t.Fatalf("layer %d Backward: %v", i, err)
		}
	}
}

// zeroGrads clears all accumulated gradients.
func zeroGrads(n *Network) {
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			for i := range g {
				g[i] = 0
			}
		}
	}
}

// checkGradients numerically verifies every parameter gradient of the
// network on the given batch. Tolerances are loose because leaky-ReLU
// and max-pool argmax switching introduce kinks under finite
// differences; exact agreement is asserted by
// TestGradientsPureLinearConvStack.
func checkGradients(t *testing.T, n *Network, x, y []float32, batch int) {
	t.Helper()
	zeroGrads(n)
	backwardOf(t, n, x, y, batch)
	// Snapshot analytic gradients.
	analytic := make([][][]float32, len(n.Layers))
	for li, l := range n.Layers {
		gs := l.Grads()
		analytic[li] = make([][]float32, len(gs))
		for gi, g := range gs {
			analytic[li][gi] = append([]float32(nil), g...)
		}
	}
	const eps = 2e-3
	const absTol = 5e-3
	const relTol = 0.25
	for li, l := range n.Layers {
		for pi, p := range l.Params() {
			if analytic[li][pi] == nil {
				continue // rolling statistics: no gradient
			}
			// Sample a few indices per buffer to keep runtime sane.
			step := len(p)/7 + 1
			for i := 0; i < len(p); i += step {
				orig := p[i]
				p[i] = orig + eps
				lp := lossOf(t, n, x, y, batch)
				p[i] = orig - eps
				lm := lossOf(t, n, x, y, batch)
				p[i] = orig
				numeric := (lp - lm) / (2 * eps)
				got := analytic[li][pi][i]
				diff := float64(numeric - got)
				if math.Abs(diff) > absTol &&
					math.Abs(diff) > relTol*math.Max(math.Abs(float64(numeric)), math.Abs(float64(got))) {
					t.Errorf("layer %d (%s) buffer %d idx %d: analytic %.5f numeric %.5f",
						li, l.Kind(), pi, i, got, numeric)
				}
			}
		}
	}
}

func smallBatch(rng *rand.Rand, n *Network, batch int) (x, y []float32) {
	x = make([]float32, batch*n.InputSize())
	for i := range x {
		x[i] = rng.Float32()
	}
	classes := n.OutputSize()
	y = make([]float32, batch*classes)
	for b := 0; b < batch; b++ {
		y[b*classes+rng.Intn(classes)] = 1
	}
	return x, y
}

func TestGradientsConvNet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 1, Height: 6, Width: 6,
	}, rng).
		Conv(ConvConfig{Filters: 3, Size: 3, Stride: 1, Pad: 1, Activation: Linear}).
		MaxPool(2, 2).
		Connected(5, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x, y := smallBatch(rng, n, 2)
	checkGradients(t, n, x, y, 2)
}

func TestGradientsLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 2, Height: 5, Width: 5,
	}, rng).
		Conv(ConvConfig{Filters: 2, Size: 3, Stride: 1, Pad: 0, Activation: LeakyReLU}).
		Connected(4, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x, y := smallBatch(rng, n, 2)
	checkGradients(t, n, x, y, 2)
}

func TestGradientsBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, err := NewBuilder(NetConfig{
		Batch: 3, LearningRate: 0.1, Channels: 1, Height: 5, Width: 5,
	}, rng).
		Conv(ConvConfig{Filters: 2, Size: 3, Stride: 1, Pad: 1, Activation: Linear, BatchNorm: true}).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x, y := smallBatch(rng, n, 3)
	checkGradients(t, n, x, y, 3)
}

func TestGradientsDeepStack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 1, Height: 8, Width: 8,
	}, rng).
		// Leaky/linear activations only: hard ReLU's kink at zero makes
		// finite differences unreliable at eps=1e-2. ReLU's backward is
		// covered by TestGradientsConvNet's shared gradActivate path.
		Conv(ConvConfig{Filters: 2, Size: 3, Stride: 1, Pad: 1, Activation: LeakyReLU}).
		Conv(ConvConfig{Filters: 3, Size: 3, Stride: 1, Pad: 1, Activation: Linear}).
		MaxPool(2, 2).
		Connected(6, LeakyReLU).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x, y := smallBatch(rng, n, 2)
	checkGradients(t, n, x, y, 2)
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, err := NewBuilder(NetConfig{
		Batch: 8, LearningRate: 0.1, Channels: 1, Height: 6, Width: 6,
	}, rng).
		Conv(ConvConfig{Filters: 4, Size: 3, Stride: 1, Pad: 1, Activation: LeakyReLU}).
		MaxPool(2, 2).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Learnable toy task: class = which third of the image is bright.
	const batch = 8
	x := make([]float32, batch*n.InputSize())
	y := make([]float32, batch*3)
	for b := 0; b < batch; b++ {
		cls := b % 3
		for i := 0; i < 12; i++ {
			x[b*36+cls*12+i] = 1
		}
		y[b*3+cls] = 1
	}
	first, err := n.TrainBatch(x, y, batch)
	if err != nil {
		t.Fatalf("TrainBatch: %v", err)
	}
	var last float32
	for i := 0; i < 60; i++ {
		last, err = n.TrainBatch(x, y, batch)
		if err != nil {
			t.Fatalf("TrainBatch: %v", err)
		}
	}
	if last >= first/2 {
		t.Fatalf("loss did not halve: first=%.4f last=%.4f", first, last)
	}
	if n.Iteration != 61 {
		t.Fatalf("Iteration = %d, want 61", n.Iteration)
	}
	// After fitting, classification should be perfect on the train set.
	for b := 0; b < batch; b++ {
		cls, err := n.Classify(x[b*36 : (b+1)*36])
		if err != nil {
			t.Fatalf("Classify: %v", err)
		}
		if cls != b%3 {
			t.Fatalf("sample %d classified %d, want %d", b, cls, b%3)
		}
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	sm, err := NewSoftmax(Shape{C: 7, H: 1, W: 1})
	if err != nil {
		t.Fatalf("NewSoftmax: %v", err)
	}
	rng := rand.New(rand.NewSource(6))
	x := make([]float32, 14)
	for i := range x {
		x[i] = rng.Float32()*10 - 5
	}
	out, err := sm.Forward(x, 2, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for b := 0; b < 2; b++ {
		var sum float64
		for i := 0; i < 7; i++ {
			p := out[b*7+i]
			if p < 0 || p > 1 {
				t.Fatalf("probability out of range: %f", p)
			}
			sum += float64(p)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("probabilities sum to %f", sum)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	mp, err := NewMaxPool(Shape{C: 1, H: 4, W: 4}, 2, 2)
	if err != nil {
		t.Fatalf("NewMaxPool: %v", err)
	}
	x := []float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}
	out, err := mp.Forward(x, 1, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float32{4, 8, 12, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %f, want %f", i, out[i], want[i])
		}
	}
	dx, err := mp.Backward([]float32{1, 1, 1, 1})
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	// Gradient must land exactly on the four argmax positions.
	var nonzero int
	for i, v := range dx {
		if v != 0 {
			nonzero++
			if x[i] != want[0] && x[i] != want[1] && x[i] != want[2] && x[i] != want[3] {
				t.Fatalf("gradient routed to non-max index %d", i)
			}
		}
	}
	if nonzero != 4 {
		t.Fatalf("gradient at %d positions, want 4", nonzero)
	}
}

func TestLayerInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv, err := NewConv(Shape{C: 1, H: 4, W: 4}, ConvConfig{Filters: 1, Size: 3, Stride: 1, Pad: 1}, rng)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	if _, err := conv.Forward(make([]float32, 7), 1, true); err == nil {
		t.Fatal("wrong-size input accepted")
	}
	if _, err := conv.Backward(make([]float32, 16)); err == nil {
		t.Fatal("Backward without Forward accepted")
	}
}

func TestLayerConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := NewConv(Shape{C: 1, H: 4, W: 4}, ConvConfig{Filters: 0, Size: 3, Stride: 1}, rng); err == nil {
		t.Fatal("zero filters accepted")
	}
	if _, err := NewConv(Shape{C: 1, H: 2, W: 2}, ConvConfig{Filters: 1, Size: 5, Stride: 1}, rng); err == nil {
		t.Fatal("kernel larger than input accepted")
	}
	if _, err := NewMaxPool(Shape{C: 1, H: 4, W: 4}, 0, 1); err == nil {
		t.Fatal("zero pool size accepted")
	}
	if _, err := NewConnected(Shape{C: 4, H: 1, W: 1}, 0, Linear, rng); err == nil {
		t.Fatal("zero outputs accepted")
	}
}

func TestConvHasFiveParamBuffers(t *testing.T) {
	// Paper §VI: 5 parameter matrices per layer -> 140 B of encryption
	// metadata per layer.
	rng := rand.New(rand.NewSource(9))
	conv, err := NewConv(Shape{C: 1, H: 4, W: 4}, ConvConfig{Filters: 2, Size: 3, Stride: 1, Pad: 1}, rng)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	if got := len(conv.Params()); got != 5 {
		t.Fatalf("conv has %d parameter buffers, want 5", got)
	}
	if got := len(conv.Grads()); got != 5 {
		t.Fatalf("conv has %d gradient slots, want 5", got)
	}
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	build := func(momentum float32) (*Network, []float32, []float32) {
		rng := rand.New(rand.NewSource(10))
		n, err := NewBuilder(NetConfig{
			Batch: 4, LearningRate: 0.05, Momentum: momentum,
			Channels: 1, Height: 4, Width: 4,
		}, rng).
			Connected(4, LeakyReLU).
			Connected(2, Linear).
			Softmax().
			Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		x := make([]float32, 4*16)
		y := make([]float32, 4*2)
		for b := 0; b < 4; b++ {
			cls := b % 2
			for i := 0; i < 8; i++ {
				x[b*16+cls*8+i] = 1
			}
			y[b*2+cls] = 1
		}
		return n, x, y
	}
	run := func(momentum float32) float32 {
		n, x, y := build(momentum)
		var loss float32
		for i := 0; i < 30; i++ {
			var err error
			loss, err = n.TrainBatch(x, y, 4)
			if err != nil {
				t.Fatalf("TrainBatch: %v", err)
			}
		}
		return loss
	}
	plain := run(0)
	fast := run(0.9)
	if fast >= plain {
		t.Fatalf("momentum run (%.5f) not faster than plain SGD (%.5f)", fast, plain)
	}
}

func TestParamBytesAndNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, err := NewBuilder(NetConfig{
		Batch: 1, LearningRate: 0.1, Channels: 1, Height: 4, Width: 4,
	}, rng).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantParams := 16*3 + 3
	if got := n.NumParams(); got != wantParams {
		t.Fatalf("NumParams = %d, want %d", got, wantParams)
	}
	if got := n.ParamBytes(); got != 4*wantParams {
		t.Fatalf("ParamBytes = %d, want %d", got, 4*wantParams)
	}
}

func TestBatchNormInferenceUsesRollingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	conv, err := NewConv(Shape{C: 1, H: 3, W: 3},
		ConvConfig{Filters: 1, Size: 3, Stride: 1, Pad: 1, Activation: Linear, BatchNorm: true}, rng)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	x := make([]float32, 2*9)
	for i := range x {
		x[i] = rng.Float32()
	}
	// Train-mode forwards move the rolling statistics.
	before := append([]float32(nil), conv.rollMean...)
	if _, err := conv.Forward(x, 2, true); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	moved := false
	for i := range before {
		if conv.rollMean[i] != before[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("train forward did not update rolling mean")
	}
	// Inference forwards must not.
	after := append([]float32(nil), conv.rollMean...)
	if _, err := conv.Forward(x, 2, false); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	for i := range after {
		if conv.rollMean[i] != after[i] {
			t.Fatal("inference forward moved rolling mean")
		}
	}
}
