package darknet

import (
	"math"
	"math/rand"
	"testing"
)

func TestGradientsPureLinearConvStack(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 1, Height: 8, Width: 8,
	}, rng).
		Conv(ConvConfig{Filters: 2, Size: 3, Stride: 1, Pad: 1, Activation: Linear}).
		Conv(ConvConfig{Filters: 3, Size: 3, Stride: 1, Pad: 1, Activation: Linear}).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	x, y := smallBatch(rng, n, 2)
	zeroGrads(n)
	backwardOf(t, n, x, y, 2)
	analytic := make([][][]float32, len(n.Layers))
	for li, l := range n.Layers {
		gs := l.Grads()
		analytic[li] = make([][]float32, len(gs))
		for gi, g := range gs {
			analytic[li][gi] = append([]float32(nil), g...)
		}
	}
	const eps = 1e-3
	for li, l := range n.Layers {
		for pi, p := range l.Params() {
			if analytic[li][pi] == nil {
				continue
			}
			step := len(p)/7 + 1
			for i := 0; i < len(p); i += step {
				orig := p[i]
				p[i] = orig + eps
				lp := lossOf(t, n, x, y, 2)
				p[i] = orig - eps
				lm := lossOf(t, n, x, y, 2)
				p[i] = orig
				numeric := (lp - lm) / (2 * eps)
				got := analytic[li][pi][i]
				if d := math.Abs(float64(numeric - got)); d > 3e-3 && d > 0.05*math.Abs(float64(numeric)) {
					t.Errorf("layer %d buf %d idx %d: analytic %.6f numeric %.6f", li, pi, i, got, numeric)
				}
			}
		}
	}
}
