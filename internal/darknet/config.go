package darknet

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Darknet-style .cfg parsing. Per the paper's TCB-minimisation strategy
// (§IV), config parsing runs in the untrusted runtime: the parsed config
// carries only public hyper-parameters, and its address is passed to the
// enclave via an ecall to build the enclave model.

// section is one [name] block of key=value pairs.
type section struct {
	name string
	kv   map[string]string
	line int
}

func (s *section) getInt(key string, def int) (int, error) {
	v, ok := s.kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("darknet: [%s] line %d: %s=%q is not an integer", s.name, s.line, key, v)
	}
	return n, nil
}

func (s *section) getFloat(key string, def float32) (float32, error) {
	v, ok := s.kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 32)
	if err != nil {
		return 0, fmt.Errorf("darknet: [%s] line %d: %s=%q is not a number", s.name, s.line, key, v)
	}
	return float32(f), nil
}

func parseSections(r io.Reader) ([]*section, error) {
	var out []*section
	var cur *section
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("darknet: line %d: malformed section %q", lineNo, line)
			}
			cur = &section{
				name: strings.ToLower(line[1 : len(line)-1]),
				kv:   make(map[string]string),
				line: lineNo,
			}
			out = append(out, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("darknet: line %d: key-value before any section", lineNo)
		}
		key, val, found := strings.Cut(line, "=")
		if !found {
			return nil, fmt.Errorf("darknet: line %d: expected key=value, got %q", lineNo, line)
		}
		cur.kv[strings.TrimSpace(key)] = strings.TrimSpace(val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("darknet: scan config: %w", err)
	}
	return out, nil
}

// ParseConfig reads a Darknet .cfg document and builds the network with
// weights initialised from rng.
func ParseConfig(r io.Reader, rng *rand.Rand) (*Network, error) {
	secs, err := parseSections(r)
	if err != nil {
		return nil, err
	}
	if len(secs) == 0 || (secs[0].name != "net" && secs[0].name != "network") {
		return nil, fmt.Errorf("darknet: config must start with a [net] section")
	}
	net := secs[0]
	cfg := DefaultNetConfig()
	if cfg.Batch, err = net.getInt("batch", cfg.Batch); err != nil {
		return nil, err
	}
	if cfg.LearningRate, err = net.getFloat("learning_rate", cfg.LearningRate); err != nil {
		return nil, err
	}
	if cfg.Momentum, err = net.getFloat("momentum", cfg.Momentum); err != nil {
		return nil, err
	}
	if cfg.Decay, err = net.getFloat("decay", cfg.Decay); err != nil {
		return nil, err
	}
	if cfg.Channels, err = net.getInt("channels", cfg.Channels); err != nil {
		return nil, err
	}
	if cfg.Height, err = net.getInt("height", cfg.Height); err != nil {
		return nil, err
	}
	if cfg.Width, err = net.getInt("width", cfg.Width); err != nil {
		return nil, err
	}

	b := NewBuilder(cfg, rng)
	for _, s := range secs[1:] {
		switch s.name {
		case "convolutional", "conv":
			cc := ConvConfig{}
			if cc.Filters, err = s.getInt("filters", 1); err != nil {
				return nil, err
			}
			if cc.Size, err = s.getInt("size", 3); err != nil {
				return nil, err
			}
			if cc.Stride, err = s.getInt("stride", 1); err != nil {
				return nil, err
			}
			if cc.Pad, err = s.getInt("pad", 0); err != nil {
				return nil, err
			}
			bn, err := s.getInt("batch_normalize", 0)
			if err != nil {
				return nil, err
			}
			cc.BatchNorm = bn != 0
			actName := s.kv["activation"]
			if actName == "" {
				actName = "leaky"
			}
			if cc.Activation, err = ParseActivation(actName); err != nil {
				return nil, err
			}
			b.Conv(cc)
		case "maxpool":
			size, err := s.getInt("size", 2)
			if err != nil {
				return nil, err
			}
			stride, err := s.getInt("stride", size)
			if err != nil {
				return nil, err
			}
			b.MaxPool(size, stride)
		case "connected":
			outputs, err := s.getInt("output", 1)
			if err != nil {
				return nil, err
			}
			actName := s.kv["activation"]
			if actName == "" {
				actName = "linear"
			}
			act, err := ParseActivation(actName)
			if err != nil {
				return nil, err
			}
			b.Connected(outputs, act)
		case "softmax":
			b.Softmax()
		default:
			return nil, fmt.Errorf("darknet: line %d: unsupported layer type [%s]", s.line, s.name)
		}
	}
	return b.Build()
}

// MNISTConfig returns the .cfg text of an n-conv-layer LReLU CNN for
// 28x28 grayscale 10-class inputs — the model family used throughout
// the paper's evaluation (5 layers in Figs. 8-9, 12 in Fig. 10 and the
// inference experiment).
func MNISTConfig(convLayers, filters, batch int) string {
	var sb strings.Builder
	// Plain SGD with learning rate 0.1, per §VI.
	fmt.Fprintf(&sb, "[net]\nbatch=%d\nlearning_rate=0.1\nchannels=1\nheight=28\nwidth=28\n\n", batch)
	for i := 0; i < convLayers; i++ {
		fmt.Fprintf(&sb, "[convolutional]\nfilters=%d\nsize=3\nstride=1\npad=1\nactivation=leaky\n\n", filters)
	}
	sb.WriteString("[maxpool]\nsize=2\nstride=2\n\n")
	sb.WriteString("[connected]\noutput=10\nactivation=linear\n\n")
	sb.WriteString("[softmax]\n")
	return sb.String()
}
