package darknet

// Int8 inference path: train fp32, serve int8. QuantizeNetwork clones
// a trained network into an inference-only variant whose large weight
// matrices are stored as int8 with one symmetric per-buffer scale
// (zero-point 0), while the small vectors — biases, batch-norm scales
// and rolling statistics — stay fp32. The forward path dequantizes on
// accumulate: the int8 weights are widened inside the GEMM inner loop
// and the per-buffer scale is applied once per output element, so no
// fp32 weight matrix is ever materialised and the EPC working set of a
// serving replica shrinks ~4x along with the sealed snapshot payload.
//
// Quantization error: with scale = maxAbs/127, every weight w maps to
// q = round(w/scale) with |w - scale*q| <= scale/2 — the round-trip
// bound the property tests in quant_test.go enforce.

import (
	"errors"
	"fmt"
	"math"
)

// ErrQuantTrain is returned when a quantized (inference-only) layer is
// asked to train.
var ErrQuantTrain = errors.New("darknet: quantized layers are inference-only")

// Precision identifies a serving parameter precision.
type Precision int

// Serving precisions.
const (
	FP32 Precision = iota
	Int8
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == Int8 {
		return "int8"
	}
	return "fp32"
}

// QuantWeightLayer is implemented by layers whose weight matrix is
// stored int8-quantized; the restore codec uses it to install sealed
// snapshot bytes without materialising fp32 weights.
type QuantWeightLayer interface {
	Layer
	// QuantWeights returns the mutable int8 weight storage.
	QuantWeights() []int8
	// WeightScale returns the symmetric dequantization scale.
	WeightScale() float32
	// SetWeightScale installs the scale during snapshot restore.
	SetWeightScale(s float32)
}

// QuantizeWeights quantizes w symmetrically to int8: scale = max|w|/127
// (1 if w is all zero), q = round(w/scale) clamped to [-127, 127].
func QuantizeWeights(w []float32) ([]int8, float32) {
	var maxAbs float32
	for _, v := range w {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	q := make([]int8, len(w))
	for i, v := range w {
		r := math.Round(float64(v) / float64(scale))
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q[i] = int8(r)
	}
	return q, scale
}

// gemmQRows computes rows [lo, hi) of C = scale * (QA * B) for an int8
// A (m x k), fp32 B (k x n) and fp32 C (m x n, zeroed by the caller):
// the dequantize-on-accumulate kernel. Products accumulate over the
// integer-valued float images of QA's entries and the scale is applied
// once per output element, so only one fp32 multiply per element pays
// for dequantization.
func gemmQRows(k, n int, qa []int8, scale float32, b, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := qa[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p := 0; p < k; p++ {
			if arow[p] == 0 {
				continue
			}
			av := float32(arow[p])
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
		for j := range crow {
			crow[j] *= scale
		}
	}
}

// gemmQ dispatches gemmQRows over the kernel worker pool.
func gemmQ(m, k, n int, qa []int8, scale float32, b, c []float32) {
	if scalarKernels.Load() || m*k*n < gemmParallelFlops {
		gemmQRows(k, n, qa, scale, b, c, 0, m)
		return
	}
	parallelFor(m, rowChunk(k, n), func(lo, hi int) {
		gemmQRows(k, n, qa, scale, b, c, lo, hi)
	})
}

// gemmTBQRows computes rows [lo, hi) of C = scale * (A * QBᵀ) for fp32
// A (m x k), int8 B (n x k) and fp32 C (m x n): each output element is
// one dot product of an fp32 activation row with an int8 weight row,
// widened on the fly and scaled once.
func gemmTBQRows(k, n int, a []float32, qb []int8, scale float32, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := qb[j*k : j*k+k]
			var sum float32
			for p, av := range arow {
				sum += av * float32(brow[p])
			}
			crow[j] = scale * sum
		}
	}
}

// gemmTBQ dispatches gemmTBQRows over the kernel worker pool.
func gemmTBQ(m, k, n int, a []float32, qb []int8, scale float32, c []float32) {
	if scalarKernels.Load() || m*k*n < gemmParallelFlops {
		gemmTBQRows(k, n, a, qb, scale, c, 0, m)
		return
	}
	parallelFor(m, rowChunk(k, n), func(lo, hi int) {
		gemmTBQRows(k, n, a, qb, scale, c, lo, hi)
	})
}

// QuantConv is the int8 inference variant of Conv: weights quantized,
// batch-norm folded through the rolling statistics, no training state.
type QuantConv struct {
	convGeom
	qWeights []int8
	wScale   float32

	biases, scales, rollMean, rollVar []float32

	colsBuf, outBuf []float32
}

var _ QuantWeightLayer = (*QuantConv)(nil)

func newQuantConv(c *Conv) *QuantConv {
	q := &QuantConv{
		convGeom: c.convGeom,
		biases:   append([]float32(nil), c.biases...),
		scales:   append([]float32(nil), c.scales...),
		rollMean: append([]float32(nil), c.rollMean...),
		rollVar:  append([]float32(nil), c.rollVar...),
	}
	q.qWeights, q.wScale = QuantizeWeights(c.weights)
	return q
}

// Kind implements Layer.
func (q *QuantConv) Kind() string { return "convolutional-int8" }

// InShape implements Layer.
func (q *QuantConv) InShape() Shape { return q.in }

// OutShape implements Layer.
func (q *QuantConv) OutShape() Shape { return q.out }

// Params implements Layer: the fp32 buffers that ride along with the
// quantized weights, in the same order as Conv's buffers 1..4. The
// weights themselves are reached through QuantWeights.
func (q *QuantConv) Params() [][]float32 {
	return [][]float32{q.biases, q.scales, q.rollMean, q.rollVar}
}

// Grads implements Layer: inference-only, no gradients.
func (q *QuantConv) Grads() [][]float32 { return nil }

// QuantWeights implements QuantWeightLayer.
func (q *QuantConv) QuantWeights() []int8 { return q.qWeights }

// WeightScale implements QuantWeightLayer.
func (q *QuantConv) WeightScale() float32 { return q.wScale }

// SetWeightScale implements QuantWeightLayer.
func (q *QuantConv) SetWeightScale(s float32) { q.wScale = s }

// Forward implements Layer (inference only).
func (q *QuantConv) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if train {
		return nil, ErrQuantTrain
	}
	if err := checkInput(x, batch, q.in); err != nil {
		return nil, err
	}
	k := q.kcols()
	outHW := q.out.H * q.out.W
	outSize := q.out.Size()
	inSize := q.in.Size()
	colSize := k * outHW
	cols := growF32(&q.colsBuf, batch*colSize)
	out := scratchF32(&q.outBuf, batch*outSize)
	if !ScalarKernels() && batch*q.in.C > 1 {
		parallelFor(batch*q.in.C, q.im2colChunk(), func(lo, hi int) {
			for idx := lo; idx < hi; idx++ {
				b, ch := idx/q.in.C, idx%q.in.C
				q.im2colChannel(x[b*inSize:(b+1)*inSize], cols[b*colSize:(b+1)*colSize], ch)
			}
		})
	} else {
		for b := 0; b < batch; b++ {
			q.im2col(x[b*inSize:(b+1)*inSize], cols[b*colSize:(b+1)*colSize])
		}
	}
	for b := 0; b < batch; b++ {
		gemmQ(q.cfg.Filters, k, outHW, q.qWeights, q.wScale,
			cols[b*colSize:(b+1)*colSize], out[b*outSize:(b+1)*outSize])
	}
	if q.cfg.BatchNorm {
		// Inference batch norm over the rolling statistics.
		for f := 0; f < q.cfg.Filters; f++ {
			inv := 1 / sqrt32(q.rollVar[f]+bnEps)
			scale := q.scales[f]
			m := q.rollMean[f]
			for b := 0; b < batch; b++ {
				base := b*outSize + f*outHW
				for i := 0; i < outHW; i++ {
					out[base+i] = scale * ((out[base+i] - m) * inv)
				}
			}
		}
	}
	for b := 0; b < batch; b++ {
		for f := 0; f < q.cfg.Filters; f++ {
			base := b*outSize + f*outHW
			bias := q.biases[f]
			for i := 0; i < outHW; i++ {
				out[base+i] += bias
			}
		}
	}
	activate(q.cfg.Activation, out)
	return out, nil
}

// Backward implements Layer: quantized layers do not train.
func (q *QuantConv) Backward(delta []float32) ([]float32, error) {
	return nil, ErrQuantTrain
}

// Update implements Layer: nothing to update.
func (q *QuantConv) Update(lr, momentum, decay float32) {}

// QuantConnected is the int8 inference variant of Connected.
type QuantConnected struct {
	in, out  Shape
	qWeights []int8
	wScale   float32

	biases     []float32
	activation Activation

	outBuf []float32
}

var _ QuantWeightLayer = (*QuantConnected)(nil)

func newQuantConnected(c *Connected) *QuantConnected {
	q := &QuantConnected{
		in:         c.in,
		out:        c.out,
		biases:     append([]float32(nil), c.biases...),
		activation: c.activation,
	}
	q.qWeights, q.wScale = QuantizeWeights(c.weights)
	return q
}

// Kind implements Layer.
func (q *QuantConnected) Kind() string { return "connected-int8" }

// InShape implements Layer.
func (q *QuantConnected) InShape() Shape { return q.in }

// OutShape implements Layer.
func (q *QuantConnected) OutShape() Shape { return q.out }

// Params implements Layer (see QuantConv.Params).
func (q *QuantConnected) Params() [][]float32 { return [][]float32{q.biases} }

// Grads implements Layer.
func (q *QuantConnected) Grads() [][]float32 { return nil }

// QuantWeights implements QuantWeightLayer.
func (q *QuantConnected) QuantWeights() []int8 { return q.qWeights }

// WeightScale implements QuantWeightLayer.
func (q *QuantConnected) WeightScale() float32 { return q.wScale }

// SetWeightScale implements QuantWeightLayer.
func (q *QuantConnected) SetWeightScale(s float32) { q.wScale = s }

// Forward implements Layer (inference only).
func (q *QuantConnected) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if train {
		return nil, ErrQuantTrain
	}
	if err := checkInput(x, batch, q.in); err != nil {
		return nil, err
	}
	inSize := q.in.Size()
	outs := q.out.C
	out := growF32(&q.outBuf, batch*outs)
	gemmTBQ(batch, inSize, outs, x, q.qWeights, q.wScale, out)
	for b := 0; b < batch; b++ {
		axpy(1, q.biases, out[b*outs:(b+1)*outs])
	}
	activate(q.activation, out)
	return out, nil
}

// Backward implements Layer: quantized layers do not train.
func (q *QuantConnected) Backward(delta []float32) ([]float32, error) {
	return nil, ErrQuantTrain
}

// Update implements Layer: nothing to update.
func (q *QuantConnected) Update(lr, momentum, decay float32) {}

// QuantizeNetwork clones net into an inference-only network whose Conv
// and Connected weight matrices are int8-quantized. Parameter-less
// layers get fresh instances with the same geometry; the clone shares
// no state with net. The result is a regular *Network — Forward,
// ClassifyBatch and the serving pipeline work unchanged — but
// TrainBatch fails with ErrQuantTrain.
func QuantizeNetwork(net *Network) (*Network, error) {
	if len(net.Layers) == 0 {
		return nil, ErrEmptyNetwork
	}
	layers := make([]Layer, len(net.Layers))
	for i, l := range net.Layers {
		switch t := l.(type) {
		case *Conv:
			layers[i] = newQuantConv(t)
		case *Connected:
			layers[i] = newQuantConnected(t)
		case *MaxPool:
			p, err := NewMaxPool(t.in, t.size, t.stride)
			if err != nil {
				return nil, err
			}
			layers[i] = p
		case *Softmax:
			s, err := NewSoftmax(t.in)
			if err != nil {
				return nil, err
			}
			layers[i] = s
		default:
			return nil, fmt.Errorf("darknet: cannot quantize layer %d (%s)", i, l.Kind())
		}
	}
	qn := &Network{Config: net.Config, Layers: layers, Iteration: net.Iteration}
	return qn, nil
}

// IsQuantized reports whether net contains int8-quantized layers.
func IsQuantized(net *Network) bool {
	for _, l := range net.Layers {
		if _, ok := l.(QuantWeightLayer); ok {
			return true
		}
	}
	return false
}

// QuantHeaderBytes is the per-buffer plaintext prefix of a quantized
// weights buffer in a sealed snapshot: scale (float32 LE) followed by
// the zero-point (int32 LE, always 0 for symmetric quantization —
// stored so the codec generalises to asymmetric schemes).
const QuantHeaderBytes = 8

// QuantParamBytes returns the parameter footprint in bytes of the
// int8-quantized variant of net: one byte per weight plus the
// QuantHeaderBytes scale/zero-point header per quantized buffer, and
// four bytes per remaining fp32 parameter. It accepts either a trained
// fp32 network (predicting its quantized size) or an already-quantized
// one (reporting its actual size).
func QuantParamBytes(net *Network) int {
	total := 0
	for _, l := range net.Layers {
		if ql, ok := l.(QuantWeightLayer); ok {
			total += len(ql.QuantWeights()) + QuantHeaderBytes
			for _, p := range l.Params() {
				total += 4 * len(p)
			}
			continue
		}
		for bi, p := range l.Params() {
			if bi == 0 {
				total += len(p) + QuantHeaderBytes
			} else {
				total += 4 * len(p)
			}
		}
	}
	return total
}
