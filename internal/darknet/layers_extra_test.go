package darknet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	tests := []struct {
		name string
		in   Shape
		cfg  ConvConfig
		want Shape
	}{
		{"same-pad", Shape{1, 28, 28}, ConvConfig{Filters: 8, Size: 3, Stride: 1, Pad: 1}, Shape{8, 28, 28}},
		{"valid", Shape{3, 10, 10}, ConvConfig{Filters: 4, Size: 3, Stride: 1, Pad: 0}, Shape{4, 8, 8}},
		{"stride-2", Shape{1, 28, 28}, ConvConfig{Filters: 2, Size: 3, Stride: 2, Pad: 1}, Shape{2, 14, 14}},
		{"1x1", Shape{16, 7, 7}, ConvConfig{Filters: 32, Size: 1, Stride: 1, Pad: 0}, Shape{32, 7, 7}},
		{"5x5", Shape{1, 28, 28}, ConvConfig{Filters: 6, Size: 5, Stride: 1, Pad: 2}, Shape{6, 28, 28}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := NewConv(tt.in, tt.cfg, rng)
			if err != nil {
				t.Fatalf("NewConv: %v", err)
			}
			if c.OutShape() != tt.want {
				t.Fatalf("OutShape = %v, want %v", c.OutShape(), tt.want)
			}
			// A forward pass produces the declared volume.
			x := make([]float32, 2*tt.in.Size())
			out, err := c.Forward(x, 2, false)
			if err != nil {
				t.Fatalf("Forward: %v", err)
			}
			if len(out) != 2*tt.want.Size() {
				t.Fatalf("output len %d, want %d", len(out), 2*tt.want.Size())
			}
		})
	}
}

func TestStridedConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 1, Height: 8, Width: 8,
	}, rng).
		Conv(ConvConfig{Filters: 2, Size: 3, Stride: 2, Pad: 1, Activation: Linear}).
		Connected(3, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x, y := smallBatch(rng, n, 2)
	checkGradients(t, n, x, y, 2)
}

func TestConvKnownValue(t *testing.T) {
	// A 1x1 input with a single 1x1 filter: out = w*x + b exactly.
	rng := rand.New(rand.NewSource(42))
	c, err := NewConv(Shape{1, 1, 1}, ConvConfig{Filters: 1, Size: 1, Stride: 1, Pad: 0, Activation: Linear}, rng)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	c.weights[0] = 2.5
	c.biases[0] = -1
	out, err := c.Forward([]float32{4}, 1, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out[0] != 2.5*4-1 {
		t.Fatalf("out = %f, want 9", out[0])
	}
}

func TestConvPaddingZeros(t *testing.T) {
	// A 3x3 all-ones filter on a 1x1 input with pad 1 must see only
	// the single input pixel (the padding contributes zeros).
	rng := rand.New(rand.NewSource(43))
	c, err := NewConv(Shape{1, 1, 1}, ConvConfig{Filters: 1, Size: 3, Stride: 1, Pad: 1, Activation: Linear}, rng)
	if err != nil {
		t.Fatalf("NewConv: %v", err)
	}
	for i := range c.weights {
		c.weights[i] = 1
	}
	c.biases[0] = 0
	out, err := c.Forward([]float32{7}, 1, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out[0] != 7 {
		t.Fatalf("out = %f, want 7 (padding leaked)", out[0])
	}
}

func TestActivationFunctions(t *testing.T) {
	tests := []struct {
		act  Activation
		in   float32
		want float32
	}{
		{Linear, -2, -2},
		{Linear, 3, 3},
		{ReLU, -2, 0},
		{ReLU, 3, 3},
		{LeakyReLU, -2, -0.2},
		{LeakyReLU, 3, 3},
	}
	for _, tt := range tests {
		v := []float32{tt.in}
		activate(tt.act, v)
		if math.Abs(float64(v[0]-tt.want)) > 1e-6 {
			t.Fatalf("%s(%f) = %f, want %f", tt.act, tt.in, v[0], tt.want)
		}
	}
}

func TestParseActivationRoundTrip(t *testing.T) {
	for _, a := range []Activation{Linear, ReLU, LeakyReLU} {
		got, err := ParseActivation(a.String())
		if err != nil {
			t.Fatalf("ParseActivation(%s): %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip %s -> %s", a, got)
		}
	}
	if _, err := ParseActivation("swish"); err == nil {
		t.Fatal("unknown activation accepted")
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const m, k, n = 5, 7, 6
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	naive := func() []float32 {
		c := make([]float32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[i*k+p] * b[p*n+j]
				}
				c[i*n+j] = s
			}
		}
		return c
	}()

	got := make([]float32, m*n)
	gemm(m, k, n, a, b, got)
	for i := range naive {
		if math.Abs(float64(got[i]-naive[i])) > 1e-4 {
			t.Fatalf("gemm[%d] = %f, want %f", i, got[i], naive[i])
		}
	}

	// gemmTA: C += Aᵀ B with A (k x m).
	at := make([]float32, k*m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at[p*m+i] = a[i*k+p]
		}
	}
	gotTA := make([]float32, m*n)
	gemmTA(m, k, n, at, b, gotTA)
	for i := range naive {
		if math.Abs(float64(gotTA[i]-naive[i])) > 1e-4 {
			t.Fatalf("gemmTA[%d] = %f, want %f", i, gotTA[i], naive[i])
		}
	}

	// gemmTB: C += A Bᵀ with B (n x k).
	bt := make([]float32, n*k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt[j*k+p] = b[p*n+j]
		}
	}
	gotTB := make([]float32, m*n)
	gemmTB(m, k, n, a, bt, gotTB)
	for i := range naive {
		if math.Abs(float64(gotTB[i]-naive[i])) > 1e-4 {
			t.Fatalf("gemmTB[%d] = %f, want %f", i, gotTB[i], naive[i])
		}
	}
}

func TestSqrt32(t *testing.T) {
	tests := []struct{ in, want float32 }{
		{0, 0}, {-4, 0}, {1, 1}, {4, 2}, {9, 3}, {2, 1.4142135},
	}
	for _, tt := range tests {
		if got := sqrt32(tt.in); math.Abs(float64(got-tt.want)) > 1e-4 {
			t.Fatalf("sqrt32(%f) = %f, want %f", tt.in, got, tt.want)
		}
	}
}

func TestPropertySqrt32MatchesMath(t *testing.T) {
	f := func(v float32) bool {
		if v < 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v > 1e30 {
			return true
		}
		got := float64(sqrt32(v))
		want := math.Sqrt(float64(v))
		if want == 0 {
			return got == 0
		}
		return math.Abs(got-want)/want < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardOnEmptyNetwork(t *testing.T) {
	n := &Network{Config: DefaultNetConfig()}
	if _, err := n.Forward(make([]float32, 4), 1, false); err == nil {
		t.Fatal("empty network forwarded")
	}
	if n.OutputSize() != 0 {
		t.Fatalf("OutputSize = %d", n.OutputSize())
	}
}

func TestTrainBatchRequiresSoftmaxTail(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	n, err := NewBuilder(NetConfig{
		Batch: 1, LearningRate: 0.1, Channels: 1, Height: 4, Width: 4,
	}, rng).Connected(3, Linear).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	x := make([]float32, 16)
	y := make([]float32, 3)
	if _, err := n.TrainBatch(x, y, 1); err == nil {
		t.Fatal("training without softmax accepted")
	}
}

func TestMaxPoolStrideSmallerThanSize(t *testing.T) {
	// Overlapping pooling windows.
	mp, err := NewMaxPool(Shape{1, 4, 4}, 2, 1)
	if err != nil {
		t.Fatalf("NewMaxPool: %v", err)
	}
	if got := mp.OutShape(); got != (Shape{1, 3, 3}) {
		t.Fatalf("OutShape = %v", got)
	}
	x := make([]float32, 16)
	x[5] = 9 // interior max shared by several windows
	out, err := mp.Forward(x, 1, false)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	hits := 0
	for _, v := range out {
		if v == 9 {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("interior max appears in %d windows, want 4", hits)
	}
	dx, err := mp.Backward(make9(len(out)))
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if dx[5] != 4 { // gradient accumulates from all 4 windows
		t.Fatalf("dx[5] = %f, want 4", dx[5])
	}
}

func make9(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestIterationCountsOnlySuccessfulBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	n, err := NewBuilder(NetConfig{
		Batch: 2, LearningRate: 0.1, Channels: 1, Height: 4, Width: 4,
	}, rng).Connected(3, Linear).Softmax().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Wrong input size: must fail without incrementing Iteration.
	if _, err := n.TrainBatch(make([]float32, 5), make([]float32, 6), 2); err == nil {
		t.Fatal("bad batch accepted")
	}
	if n.Iteration != 0 {
		t.Fatalf("Iteration = %d after failed batch", n.Iteration)
	}
}
