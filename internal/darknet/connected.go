package darknet

import (
	"fmt"
	"math/rand"
)

// Connected is a fully-connected layer: out = activation(x Wᵀ + b).
type Connected struct {
	in, out Shape

	weights, biases   []float32
	gWeights, gBiases []float32
	vWeights, vBiases []float32
	activation        Activation
	lastX, lastOut    []float32
	lastBatch         int

	// outBuf and dxBuf are reusable forward/backward scratch (grown to
	// the largest batch seen), so steady-state serving and training
	// allocate nothing per call. Forward's return value aliases outBuf
	// and is valid until the layer's next Forward.
	outBuf, dxBuf []float32
}

var _ Layer = (*Connected)(nil)

// NewConnected builds a fully-connected layer mapping the flattened
// input volume to outputs neurons.
func NewConnected(in Shape, outputs int, act Activation, rng *rand.Rand) (*Connected, error) {
	if outputs <= 0 {
		return nil, fmt.Errorf("%w: connected outputs=%d", ErrBadConfig, outputs)
	}
	if act == 0 {
		act = Linear
	}
	inSize := in.Size()
	c := &Connected{
		in:         in,
		out:        Shape{C: outputs, H: 1, W: 1},
		weights:    make([]float32, outputs*inSize),
		biases:     make([]float32, outputs),
		gWeights:   make([]float32, outputs*inSize),
		gBiases:    make([]float32, outputs),
		vWeights:   make([]float32, outputs*inSize),
		vBiases:    make([]float32, outputs),
		activation: act,
	}
	initScaled(rng, c.weights, inSize)
	return c, nil
}

// Kind implements Layer.
func (c *Connected) Kind() string { return "connected" }

// InShape implements Layer.
func (c *Connected) InShape() Shape { return c.in }

// OutShape implements Layer.
func (c *Connected) OutShape() Shape { return c.out }

// Params implements Layer.
func (c *Connected) Params() [][]float32 { return [][]float32{c.weights, c.biases} }

// Grads implements Layer.
func (c *Connected) Grads() [][]float32 { return [][]float32{c.gWeights, c.gBiases} }

// Forward implements Layer.
func (c *Connected) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if err := checkInput(x, batch, c.in); err != nil {
		return nil, err
	}
	inSize := c.in.Size()
	outs := c.out.C
	out := scratchF32(&c.outBuf, batch*outs)
	// out = x (batch x in) * Wᵀ (in x outs)
	gemmTB(batch, inSize, outs, x, c.weights, out)
	for b := 0; b < batch; b++ {
		axpy(1, c.biases, out[b*outs:(b+1)*outs])
	}
	activate(c.activation, out)
	c.lastX = x
	c.lastOut = out
	c.lastBatch = batch
	return out, nil
}

// Backward implements Layer.
func (c *Connected) Backward(delta []float32) ([]float32, error) {
	if c.lastBatch == 0 || len(delta) != c.lastBatch*c.out.C {
		return nil, ErrBatchMismatch
	}
	batch := c.lastBatch
	gradActivate(c.activation, c.lastOut, delta)
	inSize := c.in.Size()
	outs := c.out.C
	for b := 0; b < batch; b++ {
		axpy(1, delta[b*outs:(b+1)*outs], c.gBiases)
	}
	// dW += deltaᵀ (outs x batch) * x (batch x in)
	gemmTA(outs, batch, inSize, delta, c.lastX, c.gWeights)
	// dx = delta (batch x outs) * W (outs x in)
	dx := scratchF32(&c.dxBuf, batch*inSize)
	gemm(batch, outs, inSize, delta, c.weights, dx)
	return dx, nil
}

// Update implements Layer.
func (c *Connected) Update(lr, momentum, decay float32) {
	sgdStep(c.weights, c.gWeights, c.vWeights, lr, momentum, decay)
	sgdStep(c.biases, c.gBiases, c.vBiases, lr, momentum, 0)
}
