package darknet

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"plinius/internal/obs"
)

// Process-wide model-compute counters across all Network instances
// (training enclave, replicas, shards).
var (
	mForwardPasses  = obs.Default().Counter("darknet_forward_passes_total", "Full forward passes (training and inference).")
	mForwardSeconds = obs.Default().Counter("darknet_forward_seconds_total", "Wall seconds spent in full forward passes.")
	mTrainBatches   = obs.Default().Counter("darknet_train_batches_total", "SGD training iterations.")
	mSamples        = obs.Default().Counter("darknet_samples_total", "Samples pushed through full forward passes.")
)

// NetConfig holds the [net] section hyper-parameters. Per the threat
// model (§III), hyper-parameters are public information.
type NetConfig struct {
	Batch        int
	LearningRate float32
	Momentum     float32
	Decay        float32
	Channels     int
	Height       int
	Width        int
}

// DefaultNetConfig matches the paper's evaluation setup: batch 128,
// SGD learning rate 0.1, 28x28 grayscale inputs.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		Batch:        128,
		LearningRate: 0.1,
		Channels:     1,
		Height:       28,
		Width:        28,
	}
}

// Network is a stack of layers trained with SGD.
type Network struct {
	Config NetConfig
	Layers []Layer
	// Iteration counts completed training iterations; the mirroring
	// module persists it so training resumes where it left off
	// (Algorithm 2).
	Iteration int
}

// Errors returned by Network methods.
var (
	ErrEmptyNetwork = errors.New("darknet: network has no layers")
	ErrNoSoftmax    = errors.New("darknet: training requires a softmax output layer")
)

// Builder assembles a network layer by layer, tracking the activation
// volume like Darknet's parser does.
type Builder struct {
	cfg  NetConfig
	rng  *rand.Rand
	cur  Shape
	nets []Layer
	err  error
}

// NewBuilder starts a network with the given config; rng seeds weight
// initialisation deterministically.
func NewBuilder(cfg NetConfig, rng *rand.Rand) *Builder {
	return &Builder{
		cfg: cfg,
		rng: rng,
		cur: Shape{C: cfg.Channels, H: cfg.Height, W: cfg.Width},
	}
}

// Conv appends a convolutional layer.
func (b *Builder) Conv(cfg ConvConfig) *Builder {
	if b.err != nil {
		return b
	}
	l, err := NewConv(b.cur, cfg, b.rng)
	if err != nil {
		b.err = err
		return b
	}
	b.nets = append(b.nets, l)
	b.cur = l.OutShape()
	return b
}

// MaxPool appends a max-pooling layer.
func (b *Builder) MaxPool(size, stride int) *Builder {
	if b.err != nil {
		return b
	}
	l, err := NewMaxPool(b.cur, size, stride)
	if err != nil {
		b.err = err
		return b
	}
	b.nets = append(b.nets, l)
	b.cur = l.OutShape()
	return b
}

// Connected appends a fully-connected layer.
func (b *Builder) Connected(outputs int, act Activation) *Builder {
	if b.err != nil {
		return b
	}
	l, err := NewConnected(b.cur, outputs, act, b.rng)
	if err != nil {
		b.err = err
		return b
	}
	b.nets = append(b.nets, l)
	b.cur = l.OutShape()
	return b
}

// Softmax appends the softmax output layer.
func (b *Builder) Softmax() *Builder {
	if b.err != nil {
		return b
	}
	l, err := NewSoftmax(b.cur)
	if err != nil {
		b.err = err
		return b
	}
	b.nets = append(b.nets, l)
	b.cur = l.OutShape()
	return b
}

// Build finalises the network.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nets) == 0 {
		return nil, ErrEmptyNetwork
	}
	return &Network{Config: b.cfg, Layers: b.nets}, nil
}

// Forward runs the whole network and returns the output activations.
// The returned slice aliases the output layer's reusable scratch
// buffer and is valid until the network's next forward pass; copy it
// to retain activations across passes.
func (n *Network) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if len(n.Layers) == 0 {
		return nil, ErrEmptyNetwork
	}
	start := time.Now()
	cur := x
	for i, l := range n.Layers {
		out, err := l.Forward(cur, batch, train)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Kind(), err)
		}
		cur = out
	}
	mForwardPasses.Inc()
	mForwardSeconds.Add(time.Since(start).Seconds())
	mSamples.Add(float64(batch))
	return cur, nil
}

// TrainBatch runs one SGD iteration on a batch of inputs x with one-hot
// labels y and returns the batch loss. It increments Iteration.
func (n *Network) TrainBatch(x, y []float32, batch int) (float32, error) {
	probs, err := n.Forward(x, batch, true)
	if err != nil {
		return 0, err
	}
	sm, ok := n.Layers[len(n.Layers)-1].(*Softmax)
	if !ok {
		return 0, ErrNoSoftmax
	}
	loss, delta, err := sm.CrossEntropy(probs, y, batch)
	if err != nil {
		return 0, err
	}
	for i := len(n.Layers) - 1; i >= 0; i-- {
		delta, err = n.Layers[i].Backward(delta)
		if err != nil {
			return 0, fmt.Errorf("layer %d (%s) backward: %w", i, n.Layers[i].Kind(), err)
		}
	}
	for _, l := range n.Layers {
		l.Update(n.Config.LearningRate, n.Config.Momentum, n.Config.Decay)
	}
	n.Iteration++
	mTrainBatches.Inc()
	return loss, nil
}

// Predict classifies a single sample and returns the class
// probabilities. The returned slice is valid until the network's next
// forward pass (see Forward).
func (n *Network) Predict(x []float32) ([]float32, error) {
	return n.Forward(x, 1, false)
}

// Classify returns the argmax class of a single sample.
func (n *Network) Classify(x []float32) (int, error) {
	probs, err := n.Predict(x)
	if err != nil {
		return 0, err
	}
	return argmax(probs), nil
}

// ClassifyBatch classifies batch samples laid out contiguously in x
// with a single forward pass and returns the argmax class of each.
// Every layer processes samples independently, so the results are
// bit-identical to batch calls of Classify.
func (n *Network) ClassifyBatch(x []float32, batch int) ([]int, error) {
	probs, err := n.Forward(x, batch, false)
	if err != nil {
		return nil, err
	}
	outs := n.OutputSize()
	classes := make([]int, batch)
	for b := 0; b < batch; b++ {
		classes[b] = argmax(probs[b*outs : (b+1)*outs])
	}
	return classes, nil
}

func argmax(v []float32) int {
	best := 0
	for i, p := range v {
		if p > v[best] {
			best = i
		}
	}
	return best
}

// InputSize returns the flattened input size per sample.
func (n *Network) InputSize() int {
	return n.Config.Channels * n.Config.Height * n.Config.Width
}

// OutputSize returns the flattened output size per sample.
func (n *Network) OutputSize() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[len(n.Layers)-1].OutShape().Size()
}

// ParamBytes returns the total parameter footprint in bytes (the model
// size reported on the Fig. 7 x-axis).
func (n *Network) ParamBytes() int {
	total := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += 4 * len(p)
		}
	}
	return total
}

// NumParams returns the number of learnable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += len(p)
		}
	}
	return total
}
