package darknet

import (
	"fmt"
	"math"
)

// MaxPool is a 2-D max-pooling layer.
type MaxPool struct {
	in, out   Shape
	size      int
	stride    int
	lastIdx   []int32
	lastBatch int

	// outBuf and dxBuf are reusable forward/backward scratch; Forward's
	// return value aliases outBuf until the layer's next Forward.
	outBuf, dxBuf []float32
}

var _ Layer = (*MaxPool)(nil)

// NewMaxPool builds a max-pool layer for the given input volume.
func NewMaxPool(in Shape, size, stride int) (*MaxPool, error) {
	if size <= 0 || stride <= 0 {
		return nil, fmt.Errorf("%w: maxpool size=%d stride=%d", ErrBadConfig, size, stride)
	}
	outH := (in.H-size)/stride + 1
	outW := (in.W-size)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("%w: maxpool output %dx%d", ErrBadConfig, outH, outW)
	}
	return &MaxPool{
		in:     in,
		out:    Shape{C: in.C, H: outH, W: outW},
		size:   size,
		stride: stride,
	}, nil
}

// Kind implements Layer.
func (m *MaxPool) Kind() string { return "maxpool" }

// InShape implements Layer.
func (m *MaxPool) InShape() Shape { return m.in }

// OutShape implements Layer.
func (m *MaxPool) OutShape() Shape { return m.out }

// Params implements Layer: pooling has no parameters.
func (m *MaxPool) Params() [][]float32 { return nil }

// Grads implements Layer.
func (m *MaxPool) Grads() [][]float32 { return nil }

// Forward implements Layer.
func (m *MaxPool) Forward(x []float32, batch int, train bool) ([]float32, error) {
	if err := checkInput(x, batch, m.in); err != nil {
		return nil, err
	}
	outSize := m.out.Size()
	out := growF32(&m.outBuf, batch*outSize)
	if cap(m.lastIdx) < len(out) {
		m.lastIdx = make([]int32, len(out))
	}
	m.lastIdx = m.lastIdx[:len(out)]
	inHW := m.in.H * m.in.W
	for b := 0; b < batch; b++ {
		for ch := 0; ch < m.in.C; ch++ {
			inBase := b*m.in.Size() + ch*inHW
			outBase := b*outSize + ch*m.out.H*m.out.W
			for oy := 0; oy < m.out.H; oy++ {
				for ox := 0; ox < m.out.W; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := int32(-1)
					for ky := 0; ky < m.size; ky++ {
						iy := oy*m.stride + ky
						if iy >= m.in.H {
							continue
						}
						for kx := 0; kx < m.size; kx++ {
							ix := ox*m.stride + kx
							if ix >= m.in.W {
								continue
							}
							idx := int32(inBase + iy*m.in.W + ix)
							if v := x[idx]; v > best {
								best = v
								bestIdx = idx
							}
						}
					}
					o := outBase + oy*m.out.W + ox
					out[o] = best
					m.lastIdx[o] = bestIdx
				}
			}
		}
	}
	m.lastBatch = batch
	return out, nil
}

// Backward implements Layer: gradients route to each window's argmax.
func (m *MaxPool) Backward(delta []float32) ([]float32, error) {
	if m.lastBatch == 0 || len(delta) != m.lastBatch*m.out.Size() {
		return nil, ErrBatchMismatch
	}
	dx := scratchF32(&m.dxBuf, m.lastBatch*m.in.Size())
	for i, d := range delta {
		if idx := m.lastIdx[i]; idx >= 0 {
			dx[idx] += d
		}
	}
	return dx, nil
}

// Update implements Layer: nothing to update.
func (m *MaxPool) Update(lr, momentum, decay float32) {}
