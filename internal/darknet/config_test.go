package darknet

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

const sampleCfg = `
# Plinius evaluation model (5 LReLU conv layers)
[net]
batch=16
learning_rate=0.1
momentum=0.9
channels=1
height=28
width=28

[convolutional]
filters=8
size=3
stride=1
pad=1
activation=leaky

[maxpool]
size=2
stride=2

[connected]
output=10
activation=linear

[softmax]
`

func TestParseConfigBuildsNetwork(t *testing.T) {
	n, err := ParseConfig(strings.NewReader(sampleCfg), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(n.Layers) != 4 {
		t.Fatalf("got %d layers, want 4", len(n.Layers))
	}
	if n.Config.Batch != 16 || n.Config.LearningRate != 0.1 || n.Config.Momentum != 0.9 {
		t.Fatalf("net config not applied: %+v", n.Config)
	}
	kinds := []string{"convolutional", "maxpool", "connected", "softmax"}
	for i, k := range kinds {
		if n.Layers[i].Kind() != k {
			t.Fatalf("layer %d kind = %s, want %s", i, n.Layers[i].Kind(), k)
		}
	}
	// 28x28 -> conv(pad 1) 28x28x8 -> pool 14x14x8 -> fc 10.
	if got := n.Layers[0].OutShape(); got != (Shape{C: 8, H: 28, W: 28}) {
		t.Fatalf("conv out = %v", got)
	}
	if got := n.Layers[1].OutShape(); got != (Shape{C: 8, H: 14, W: 14}) {
		t.Fatalf("pool out = %v", got)
	}
	if got := n.OutputSize(); got != 10 {
		t.Fatalf("output size = %d, want 10", got)
	}
}

func TestParseConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  string
	}{
		{"no net section", "[convolutional]\nfilters=1\n"},
		{"kv before section", "batch=4\n[net]\n"},
		{"malformed section", "[net\nbatch=4\n"},
		{"missing equals", "[net]\nbatch 4\n"},
		{"bad int", "[net]\nbatch=abc\n"},
		{"bad float", "[net]\nlearning_rate=fast\n"},
		{"unknown layer", "[net]\nbatch=4\n[transformer]\nheads=8\n"},
		{"bad activation", "[net]\nbatch=4\n[convolutional]\nfilters=2\nactivation=gelu\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseConfig(strings.NewReader(tt.cfg), rand.New(rand.NewSource(1))); err == nil {
				t.Fatalf("config accepted:\n%s", tt.cfg)
			}
		})
	}
}

func TestParseConfigSkipsCommentsAndBlanks(t *testing.T) {
	cfg := "# comment\n; also comment\n\n[net]\nbatch=2\nheight=4\nwidth=4\nchannels=1\n\n[softmax]\n"
	n, err := ParseConfig(strings.NewReader(cfg), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(n.Layers) != 1 {
		t.Fatalf("got %d layers, want 1", len(n.Layers))
	}
}

func TestMNISTConfigParses(t *testing.T) {
	for _, layers := range []int{1, 5, 12} {
		cfg := MNISTConfig(layers, 8, 32)
		n, err := ParseConfig(strings.NewReader(cfg), rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("MNISTConfig(%d): %v", layers, err)
		}
		convs := 0
		for _, l := range n.Layers {
			if l.Kind() == "convolutional" {
				convs++
			}
		}
		if convs != layers {
			t.Fatalf("MNISTConfig(%d) produced %d conv layers", layers, convs)
		}
	}
}

func TestBatchNormFromConfig(t *testing.T) {
	cfg := "[net]\nbatch=2\nheight=6\nwidth=6\nchannels=1\n[convolutional]\nfilters=2\nsize=3\nstride=1\npad=1\nbatch_normalize=1\n[softmax]\n"
	n, err := ParseConfig(strings.NewReader(cfg), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	conv, ok := n.Layers[0].(*Conv)
	if !ok {
		t.Fatal("first layer is not conv")
	}
	if !conv.cfg.BatchNorm {
		t.Fatal("batch_normalize=1 not applied")
	}
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n, err := ParseConfig(strings.NewReader(sampleCfg), rng)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	n.Iteration = 137
	var buf bytes.Buffer
	if err := n.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	// Fresh network with different initial weights.
	n2, err := ParseConfig(strings.NewReader(sampleCfg), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := n2.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	if n2.Iteration != 137 {
		t.Fatalf("Iteration = %d, want 137", n2.Iteration)
	}
	for li := range n.Layers {
		p1 := n.Layers[li].Params()
		p2 := n2.Layers[li].Params()
		for pi := range p1 {
			for i := range p1[pi] {
				if p1[pi][i] != p2[pi][i] {
					t.Fatalf("layer %d buffer %d idx %d differs", li, pi, i)
				}
			}
		}
	}
}

func TestLoadWeightsRejectsCorruptData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, err := ParseConfig(strings.NewReader(sampleCfg), rng)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := n.LoadWeights(bytes.NewReader([]byte("garbage"))); !errors.Is(err, ErrBadWeights) {
		t.Fatalf("garbage LoadWeights = %v, want ErrBadWeights", err)
	}
	var buf bytes.Buffer
	if err := n.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if err := n.LoadWeights(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated weights accepted")
	}
}

func TestLoadWeightsRejectsArchitectureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, err := ParseConfig(strings.NewReader(sampleCfg), rng)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	var buf bytes.Buffer
	if err := n.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	other, err := ParseConfig(strings.NewReader(MNISTConfig(2, 4, 8)), rng)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := other.LoadWeights(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrWeightsMismatch) {
		t.Fatalf("mismatched LoadWeights = %v, want ErrWeightsMismatch", err)
	}
}
