package darknet

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantizeWeightsRoundTripBound checks the symmetric-int8 scheme's
// core property: every dequantized weight is within half a quantization
// step of the original, |w - scale*q| <= scale/2, and codes stay in the
// symmetric range [-127, 127].
func TestQuantizeWeightsRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 7, 128, 4097} {
		w := make([]float32, n)
		for i := range w {
			w[i] = (rng.Float32()*2 - 1) * float32(math.Pow(10, float64(rng.Intn(5)-2)))
		}
		q, scale := QuantizeWeights(w)
		if len(q) != n {
			t.Fatalf("n=%d: got %d codes", n, len(q))
		}
		if scale <= 0 || math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
			t.Fatalf("n=%d: bad scale %v", n, scale)
		}
		// The scale must be exactly maxAbs/127 so the largest weight
		// round-trips to code ±127, never clipped.
		var maxAbs float32
		for _, v := range w {
			if a := float32(math.Abs(float64(v))); a > maxAbs {
				maxAbs = a
			}
		}
		if want := maxAbs / 127; scale != want {
			t.Fatalf("n=%d: scale %v, want maxAbs/127 = %v", n, scale, want)
		}
		bound := scale/2 + scale*1e-6
		for i, c := range q {
			if c < -127 || c > 127 {
				t.Fatalf("n=%d: code[%d] = %d outside [-127,127]", n, i, c)
			}
			if err := math.Abs(float64(w[i]) - float64(scale)*float64(c)); err > float64(bound) {
				t.Fatalf("n=%d: w[%d]=%v dequantizes to %v (err %v > %v)",
					n, i, w[i], scale*float32(c), err, bound)
			}
		}
	}
}

// TestQuantizeWeightsAllZero: an all-zero buffer must not produce a
// zero scale (division hazard downstream); the scheme pins scale to 1.
func TestQuantizeWeightsAllZero(t *testing.T) {
	q, scale := QuantizeWeights(make([]float32, 16))
	if scale != 1 {
		t.Fatalf("all-zero scale = %v, want 1", scale)
	}
	for i, c := range q {
		if c != 0 {
			t.Fatalf("all-zero code[%d] = %d", i, c)
		}
	}
}

// buildQuantTestNet is a small multi-channel CNN (conv with batch norm,
// maxpool, conv, connected, softmax) covering every layer kind
// QuantizeNetwork must handle.
func buildQuantTestNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := NewBuilder(NetConfig{
		Batch: 8, LearningRate: 0.1, Momentum: 0.9,
		Channels: 1, Height: 12, Width: 12,
	}, rng).
		Conv(ConvConfig{Filters: 4, Size: 3, Stride: 1, Pad: 1, Activation: LeakyReLU, BatchNorm: true}).
		MaxPool(2, 2).
		Conv(ConvConfig{Filters: 8, Size: 3, Stride: 1, Pad: 1, Activation: LeakyReLU}).
		Connected(10, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return net
}

// trainQuantTestNet runs a few batches so BN rolling statistics and
// weights move off their initial values.
func trainQuantTestNet(t *testing.T, net *Network, seed int64, iters int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch, in, classes := 8, net.InputSize(), 10
	x := make([]float32, batch*in)
	y := make([]float32, batch*classes)
	for i := 0; i < iters; i++ {
		for j := range x {
			x[j] = rng.Float32()
		}
		for j := range y {
			y[j] = 0
		}
		for b := 0; b < batch; b++ {
			y[b*classes+rng.Intn(classes)] = 1
		}
		if _, err := net.TrainBatch(x, y, batch); err != nil {
			t.Fatalf("train: %v", err)
		}
	}
}

// TestQuantizeNetworkForwardClose quantizes a trained net and checks
// the int8 clone's outputs stay close to fp32 (each weight is within
// scale/2 of the original, so layer outputs drift by a bounded amount)
// and that the predicted classes almost always agree.
func TestQuantizeNetworkForwardClose(t *testing.T) {
	net := buildQuantTestNet(t, 31)
	trainQuantTestNet(t, net, 32, 6)
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	if !IsQuantized(qnet) {
		t.Fatal("IsQuantized(quantized clone) = false")
	}
	if IsQuantized(net) {
		t.Fatal("IsQuantized(fp32 original) = true")
	}
	if qnet.Iteration != net.Iteration {
		t.Fatalf("clone iteration %d, want %d", qnet.Iteration, net.Iteration)
	}

	rng := rand.New(rand.NewSource(33))
	batch, in := 8, net.InputSize()
	x := make([]float32, batch*in)
	agree, total := 0, 0
	for trial := 0; trial < 8; trial++ {
		for j := range x {
			x[j] = rng.Float32()
		}
		outF, err := net.Forward(x, batch, false)
		if err != nil {
			t.Fatalf("fp32 forward: %v", err)
		}
		outQ, err := qnet.Forward(x, batch, false)
		if err != nil {
			t.Fatalf("int8 forward: %v", err)
		}
		if len(outF) != len(outQ) {
			t.Fatalf("output lengths differ: %d vs %d", len(outF), len(outQ))
		}
		for i := range outF {
			if d := math.Abs(float64(outF[i]) - float64(outQ[i])); d > 0.05 {
				t.Fatalf("trial %d output[%d]: fp32 %v int8 %v (|Δ| %v)", trial, i, outF[i], outQ[i], d)
			}
		}
		cf, err := net.ClassifyBatch(x, batch)
		if err != nil {
			t.Fatalf("fp32 classify: %v", err)
		}
		cq, err := qnet.ClassifyBatch(x, batch)
		if err != nil {
			t.Fatalf("int8 classify: %v", err)
		}
		for b := range cf {
			total++
			if cf[b] == cq[b] {
				agree++
			}
		}
	}
	if agree < total*9/10 {
		t.Fatalf("class agreement %d/%d, want >= 90%%", agree, total)
	}
}

// TestQuantizedNetworkRejectsTraining: the int8 clone is
// inference-only; training and train-mode forwards error with
// ErrQuantTrain.
func TestQuantizedNetworkRejectsTraining(t *testing.T) {
	net := buildQuantTestNet(t, 41)
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	batch, in := 8, net.InputSize()
	x := make([]float32, batch*in)
	y := make([]float32, batch*10)
	if _, err := qnet.TrainBatch(x, y, batch); err == nil {
		t.Fatal("TrainBatch on a quantized network succeeded")
	}
	if _, err := qnet.Forward(x, batch, true); err == nil {
		t.Fatal("train-mode Forward on a quantized network succeeded")
	}
}

// TestQuantParamBytesRatio: the quantized parameter footprint must be
// well under the fp32 one — int8 weights plus 8 header bytes per
// weight buffer, fp32 for everything else — and identical whether
// computed on the fp32 net or its quantized clone.
func TestQuantParamBytesRatio(t *testing.T) {
	net := buildQuantTestNet(t, 51)
	qnet, err := QuantizeNetwork(net)
	if err != nil {
		t.Fatalf("quantize: %v", err)
	}
	fp32 := net.ParamBytes()
	qb := QuantParamBytes(net)
	if got := QuantParamBytes(qnet); got != qb {
		t.Fatalf("QuantParamBytes(clone) = %d, (original) = %d", got, qb)
	}
	want := 0
	for _, l := range net.Layers {
		for bi, p := range l.Params() {
			if bi == 0 {
				want += len(p) + QuantHeaderBytes
			} else {
				want += 4 * len(p)
			}
		}
	}
	if qb != want {
		t.Fatalf("QuantParamBytes = %d, want %d", qb, want)
	}
	if fp32 > 0 && float64(qb)/float64(fp32) > 0.5 {
		t.Fatalf("quant/fp32 param ratio %.2f, want well under 0.5 (%d / %d)",
			float64(qb)/float64(fp32), qb, fp32)
	}
}

// TestQuantizedGemmMatchesDequantized: gemmQ / gemmTBQ must compute
// exactly scale * (integer dot) accumulated in fp32 — verified against
// an explicit dequantize-then-multiply reference within float32
// rounding, across the scalar and parallel dispatch paths.
func TestQuantizedGemmMatchesDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	withKernelConfigs(t, func(t *testing.T) {
		for _, s := range gemmShapes {
			qa := make([]int8, s.m*s.k)
			b := make([]float32, s.k*s.n)
			for i := range qa {
				qa[i] = int8(rng.Intn(255) - 127)
			}
			fillRandSparse(rng, b)
			scale := rng.Float32() + 0.01

			got := make([]float32, s.m*s.n)
			gemmQ(s.m, s.k, s.n, qa, scale, b, got)
			for i := 0; i < s.m; i++ {
				for j := 0; j < s.n; j++ {
					var sum float32
					for p := 0; p < s.k; p++ {
						if qa[i*s.k+p] == 0 {
							continue
						}
						sum += float32(qa[i*s.k+p]) * b[p*s.n+j]
					}
					want := scale * sum
					if d := math.Abs(float64(got[i*s.n+j]) - float64(want)); d > 1e-4*(1+math.Abs(float64(want))) {
						t.Fatalf("gemmQ %dx%dx%d C[%d,%d] = %v, want %v", s.m, s.k, s.n, i, j, got[i*s.n+j], want)
					}
				}
			}

			a := make([]float32, s.m*s.k)
			qb := make([]int8, s.n*s.k)
			fillRandSparse(rng, a)
			for i := range qb {
				qb[i] = int8(rng.Intn(255) - 127)
			}
			got2 := make([]float32, s.m*s.n)
			gemmTBQ(s.m, s.k, s.n, a, qb, scale, got2)
			for i := 0; i < s.m; i++ {
				for j := 0; j < s.n; j++ {
					var sum float32
					for p := 0; p < s.k; p++ {
						sum += a[i*s.k+p] * float32(qb[j*s.k+p])
					}
					want := scale * sum
					if d := math.Abs(float64(got2[i*s.n+j]) - float64(want)); d > 1e-4*(1+math.Abs(float64(want))) {
						t.Fatalf("gemmTBQ %dx%dx%d C[%d,%d] = %v, want %v", s.m, s.k, s.n, i, j, got2[i*s.n+j], want)
					}
				}
			}
		}
	})
}
