package darknet

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the three GEMM kernels over the shapes the
// MNIST-scale network actually runs, single-threaded so the numbers
// measure kernel quality rather than pool scheduling.
var benchShapes = []struct{ m, k, n int }{
	{16, 9, 784},   // conv1 forward (per sample)
	{32, 144, 196}, // conv2 forward (per sample)
	{32, 1568, 64}, // connected forward (whole batch)
	{32, 64, 1568}, // connected backward dx
	{64, 300, 257}, // odd shape crossing block boundaries
}

// fillRandDense fills v with nonzero random values: trained weights
// and activations are dense, so dense operands are the representative
// speed case (the sparse zero-skip path is covered by the correctness
// tests, which use fillRandSparse).
func fillRandDense(rng *rand.Rand, v []float32) {
	for i := range v {
		v[i] = rng.Float32() + 0.1
	}
}

func benchKernel(b *testing.B, run func(m, k, n int, a, bb, c []float32)) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range benchShapes {
		a := make([]float32, s.m*s.k+s.k*s.m)
		bb := make([]float32, s.k*s.n+s.n*s.k)
		c := make([]float32, s.m*s.n)
		fillRandDense(rng, a)
		fillRandDense(rng, bb)
		b.Run(fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), func(b *testing.B) {
			b.SetBytes(int64(2 * s.m * s.k * s.n)) // multiply-adds as "bytes" => MB/s ~ Mflop/s
			for i := 0; i < b.N; i++ {
				run(s.m, s.k, s.n, a, bb, c)
			}
		})
	}
}

func BenchmarkGEMM(b *testing.B) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(1)
	benchKernel(b, func(m, k, n int, a, bb, c []float32) { gemmRows(k, n, a, bb, c, 0, m) })
}

func BenchmarkGEMMScalar(b *testing.B) {
	benchKernel(b, gemmScalar)
}

func BenchmarkGEMMTA(b *testing.B) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(1)
	benchKernel(b, func(m, k, n int, a, bb, c []float32) { gemmTARows(m, k, n, a, bb, c, 0, m) })
}

func BenchmarkGEMMTAScalar(b *testing.B) {
	benchKernel(b, gemmTAScalar)
}

func BenchmarkGEMMTB(b *testing.B) {
	defer SetKernelParallelism(0)
	SetKernelParallelism(1)
	benchKernel(b, func(m, k, n int, a, bb, c []float32) { gemmTBRows(k, n, a, bb, c, 0, m) })
}

func BenchmarkGEMMTBScalar(b *testing.B) {
	benchKernel(b, gemmTBScalar)
}
