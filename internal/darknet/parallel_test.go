package darknet

import (
	"math/rand"
	"runtime"
	"testing"
)

// fillRandSparse fills v with random values, zeroing ~1/4 of them so
// the kernels' zero-skip paths are exercised (the skip must not change
// results bit for bit).
func fillRandSparse(rng *rand.Rand, v []float32) {
	for i := range v {
		if rng.Intn(4) == 0 {
			v[i] = 0
			continue
		}
		v[i] = rng.Float32()*2 - 1
	}
}

// gemmShapes covers odd sizes, single rows/columns (batch=1), and
// degenerate zero-row/zero-column shapes.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 13},   // batch = 1
	{3, 1, 5},    // inner dim 1
	{5, 9, 1},    // single output column
	{7, 11, 17},  // odd everything
	{16, 16, 16}, // exact blocks
	{33, 65, 129},
	{64, 300, 257}, // crosses the column-block boundary
	{129, 31, 510}, // above the parallel threshold
	{0, 5, 5},      // zero rows: no output at all
	{4, 0, 4},      // zero inner dim: C unchanged
	{4, 4, 0},      // zero columns
}

// withKernelConfigs runs body under 1, 2, 3 and GOMAXPROCS workers so
// both the inline and the sharded dispatch paths are covered.
func withKernelConfigs(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	defer SetKernelParallelism(0)
	for _, w := range []int{1, 2, 3, runtime.GOMAXPROCS(0)} {
		SetKernelParallelism(w)
		body(t)
	}
}

// TestGEMMBitIdenticalToScalar asserts the blocked parallel kernels
// reproduce the scalar reference with tolerance zero: same additions,
// same order, per output element.
func TestGEMMBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	withKernelConfigs(t, func(t *testing.T) {
		for _, s := range gemmShapes {
			a := make([]float32, s.m*s.k)
			b := make([]float32, s.k*s.n)
			cWant := make([]float32, s.m*s.n)
			cGot := make([]float32, s.m*s.n)
			fillRandSparse(rng, a)
			fillRandSparse(rng, b)
			// Non-zero initial C: the kernels accumulate.
			fillRandSparse(rng, cWant)
			copy(cGot, cWant)

			gemmScalar(s.m, s.k, s.n, a, b, cWant)
			gemm(s.m, s.k, s.n, a, b, cGot)
			for i := range cWant {
				if cWant[i] != cGot[i] {
					t.Fatalf("gemm %dx%dx%d: C[%d] = %v, scalar %v", s.m, s.k, s.n, i, cGot[i], cWant[i])
				}
			}
		}
	})
}

func TestGEMMTABitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	withKernelConfigs(t, func(t *testing.T) {
		for _, s := range gemmShapes {
			a := make([]float32, s.k*s.m) // A is k x m
			b := make([]float32, s.k*s.n)
			cWant := make([]float32, s.m*s.n)
			cGot := make([]float32, s.m*s.n)
			fillRandSparse(rng, a)
			fillRandSparse(rng, b)
			fillRandSparse(rng, cWant)
			copy(cGot, cWant)

			gemmTAScalar(s.m, s.k, s.n, a, b, cWant)
			gemmTA(s.m, s.k, s.n, a, b, cGot)
			for i := range cWant {
				if cWant[i] != cGot[i] {
					t.Fatalf("gemmTA %dx%dx%d: C[%d] = %v, scalar %v", s.m, s.k, s.n, i, cGot[i], cWant[i])
				}
			}
		}
	})
}

func TestGEMMTBBitIdenticalToScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	withKernelConfigs(t, func(t *testing.T) {
		for _, s := range gemmShapes {
			a := make([]float32, s.m*s.k)
			b := make([]float32, s.n*s.k) // B is n x k
			cWant := make([]float32, s.m*s.n)
			cGot := make([]float32, s.m*s.n)
			fillRandSparse(rng, a)
			fillRandSparse(rng, b)
			fillRandSparse(rng, cWant)
			copy(cGot, cWant)

			gemmTBScalar(s.m, s.k, s.n, a, b, cWant)
			gemmTB(s.m, s.k, s.n, a, b, cGot)
			for i := range cWant {
				if cWant[i] != cGot[i] {
					t.Fatalf("gemmTB %dx%dx%d: C[%d] = %v, scalar %v", s.m, s.k, s.n, i, cGot[i], cWant[i])
				}
			}
		}
	})
}

// TestTrainingBitIdenticalScalarVsParallel trains two identically
// seeded networks — one on the scalar reference kernels, one on the
// blocked parallel kernels — and requires bit-identical losses and
// parameters after several iterations.
func TestTrainingBitIdenticalScalarVsParallel(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(21))
		net, err := NewBuilder(NetConfig{
			Batch: 8, LearningRate: 0.1, Momentum: 0.9,
			Channels: 1, Height: 12, Width: 12,
		}, rng).
			Conv(ConvConfig{Filters: 4, Size: 3, Stride: 1, Pad: 1, Activation: LeakyReLU}).
			MaxPool(2, 2).
			Connected(10, Linear).
			Softmax().
			Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return net
	}
	data := rand.New(rand.NewSource(5))
	batch, in, classes := 8, 12*12, 10
	x := make([]float32, batch*in)
	y := make([]float32, batch*classes)
	for i := range x {
		x[i] = data.Float32()
	}
	for b := 0; b < batch; b++ {
		y[b*classes+data.Intn(classes)] = 1
	}

	run := func(scalar bool) (*Network, []float32) {
		SetScalarKernels(scalar)
		defer SetScalarKernels(false)
		net := build()
		var losses []float32
		for i := 0; i < 4; i++ {
			loss, err := net.TrainBatch(x, y, batch)
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			losses = append(losses, loss)
		}
		return net, losses
	}
	netS, lossS := run(true)
	netP, lossP := run(false)
	for i := range lossS {
		if lossS[i] != lossP[i] {
			t.Fatalf("iteration %d loss: scalar %v parallel %v", i, lossS[i], lossP[i])
		}
	}
	for li := range netS.Layers {
		ps, pp := netS.Layers[li].Params(), netP.Layers[li].Params()
		for bi := range ps {
			for i := range ps[bi] {
				if ps[bi][i] != pp[bi][i] {
					t.Fatalf("layer %d buffer %d param %d: scalar %v parallel %v",
						li, bi, i, ps[bi][i], pp[bi][i])
				}
			}
		}
	}
}

// TestParallelForCoversRange asserts every index is visited exactly
// once whatever the worker count and chunking.
func TestParallelForCoversRange(t *testing.T) {
	defer SetKernelParallelism(0)
	for _, w := range []int{1, 2, 5} {
		SetKernelParallelism(w)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			for _, minChunk := range []int{1, 3, 1000} {
				hits := make([]int32, n)
				parallelFor(n, minChunk, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						hits[i]++
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d minChunk=%d: index %d visited %d times", w, n, minChunk, i, h)
					}
				}
			}
		}
	}
}

// TestScratchReuseStableResults drives the same forward pass twice
// with different inputs and checks the second result is unaffected by
// buffer reuse, including after a batch-size change.
func TestScratchReuseStableResults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewBuilder(NetConfig{Batch: 4, LearningRate: 0.1, Channels: 1, Height: 8, Width: 8}, rng).
		Conv(ConvConfig{Filters: 3, Size: 3, Stride: 1, Pad: 1}).
		Connected(5, Linear).
		Softmax().
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	in := net.InputSize()
	x4 := make([]float32, 4*in)
	x1 := make([]float32, in)
	for i := range x4 {
		x4[i] = rng.Float32()
	}
	copy(x1, x4[:in])

	// Reference for batch 1 before any buffers exist.
	ref, err := net.Forward(x1, 1, false)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	want := append([]float32(nil), ref...)

	// Grow to batch 4, then shrink back to 1: the reused buffers must
	// give the same batch-1 answer.
	if _, err := net.Forward(x4, 4, false); err != nil {
		t.Fatalf("forward batch 4: %v", err)
	}
	got, err := net.Forward(x1, 1, false)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch-size cycling changed output[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}
