package darknet

import (
	"math/rand"
	"testing"
)

// convTestGeoms covers multi-channel inputs (the parallel gate), odd
// sizes, stride > 1 and zero padding.
var convTestGeoms = []struct {
	in  Shape
	cfg ConvConfig
}{
	{Shape{C: 1, H: 8, W: 8}, ConvConfig{Filters: 3, Size: 3, Stride: 1, Pad: 1}},
	{Shape{C: 4, H: 9, W: 7}, ConvConfig{Filters: 5, Size: 3, Stride: 1, Pad: 1}},
	{Shape{C: 8, H: 12, W: 12}, ConvConfig{Filters: 4, Size: 5, Stride: 2, Pad: 2}},
	{Shape{C: 3, H: 6, W: 6}, ConvConfig{Filters: 2, Size: 2, Stride: 2, Pad: 0}},
}

// TestIm2colParallelMatchesSerial expands the same input with the
// serial channel loop and with the parallel (sample, channel) fan-out
// Conv.Forward uses, requiring bit-identical column matrices: the
// chunks write disjoint rows and only read x, so any difference is a
// partitioning bug.
func TestIm2colParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	withKernelConfigs(t, func(t *testing.T) {
		for _, g := range convTestGeoms {
			c, err := NewConv(g.in, g.cfg, rng)
			if err != nil {
				t.Fatalf("conv %+v: %v", g, err)
			}
			batch := 3
			inSize := c.in.Size()
			colSize := c.kcols() * c.out.H * c.out.W
			x := make([]float32, batch*inSize)
			fillRandSparse(rng, x)

			serial := make([]float32, batch*colSize)
			for b := 0; b < batch; b++ {
				c.im2col(x[b*inSize:(b+1)*inSize], serial[b*colSize:(b+1)*colSize])
			}
			parallel := make([]float32, batch*colSize)
			parallelFor(batch*c.in.C, c.im2colChunk(), func(lo, hi int) {
				for idx := lo; idx < hi; idx++ {
					b, ch := idx/c.in.C, idx%c.in.C
					c.im2colChannel(x[b*inSize:(b+1)*inSize], parallel[b*colSize:(b+1)*colSize], ch)
				}
			})
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("geom %+v cols[%d]: serial %v parallel %v", g, i, serial[i], parallel[i])
				}
			}
		}
	})
}

// TestCol2imParallelMatchesSerial scatters the same column gradient
// back with the serial loop and the channel-parallel col2im, requiring
// bit-identical dx: channels accumulate into disjoint regions in the
// serial per-channel order.
func TestCol2imParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	withKernelConfigs(t, func(t *testing.T) {
		for _, g := range convTestGeoms {
			c, err := NewConv(g.in, g.cfg, rng)
			if err != nil {
				t.Fatalf("conv %+v: %v", g, err)
			}
			colSize := c.kcols() * c.out.H * c.out.W
			cols := make([]float32, colSize)
			fillRandSparse(rng, cols)
			// Non-zero initial dx: col2im accumulates.
			init := make([]float32, c.in.Size())
			fillRandSparse(rng, init)

			serial := append([]float32(nil), init...)
			SetScalarKernels(true)
			c.col2im(cols, serial)
			SetScalarKernels(false)
			parallel := append([]float32(nil), init...)
			c.col2im(cols, parallel)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("geom %+v dx[%d]: serial %v parallel %v", g, i, serial[i], parallel[i])
				}
			}
		}
	})
}

// TestConvForwardBackwardBitIdenticalScalarVsParallel runs a
// multi-channel conv layer end to end — forward then backward — under
// the scalar reference and the parallel kernels (which also flips the
// parallel im2col/col2im paths) and requires bit-identical outputs,
// input gradients and weight gradients.
func TestConvForwardBackwardBitIdenticalScalarVsParallel(t *testing.T) {
	for _, g := range convTestGeoms {
		run := func(scalar bool) (out, dx, gw []float32) {
			SetScalarKernels(scalar)
			defer SetScalarKernels(false)
			rng := rand.New(rand.NewSource(73))
			c, err := NewConv(g.in, g.cfg, rng)
			if err != nil {
				t.Fatalf("conv %+v: %v", g, err)
			}
			batch := 4
			data := rand.New(rand.NewSource(74))
			x := make([]float32, batch*c.in.Size())
			fillRandSparse(data, x)
			o, err := c.Forward(x, batch, true)
			if err != nil {
				t.Fatalf("forward: %v", err)
			}
			delta := make([]float32, batch*c.out.Size())
			fillRandSparse(data, delta)
			d, err := c.Backward(delta)
			if err != nil {
				t.Fatalf("backward: %v", err)
			}
			return append([]float32(nil), o...), append([]float32(nil), d...),
				append([]float32(nil), c.gWeights...)
		}
		outS, dxS, gwS := run(true)
		outP, dxP, gwP := run(false)
		for i := range outS {
			if outS[i] != outP[i] {
				t.Fatalf("geom %+v out[%d]: scalar %v parallel %v", g, i, outS[i], outP[i])
			}
		}
		for i := range dxS {
			if dxS[i] != dxP[i] {
				t.Fatalf("geom %+v dx[%d]: scalar %v parallel %v", g, i, dxS[i], dxP[i])
			}
		}
		for i := range gwS {
			if gwS[i] != gwP[i] {
				t.Fatalf("geom %+v gW[%d]: scalar %v parallel %v", g, i, gwS[i], gwP[i])
			}
		}
	}
}
