package darknet

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: any randomly shaped network's weights survive a
// save/load round trip bit-exactly, including the iteration counter.
func TestPropertyWeightsRoundTripAnyArchitecture(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		layers := 1 + rng.Intn(3)
		filters := 2 + rng.Intn(6)
		batch := 1 + rng.Intn(8)
		cfg := MNISTConfig(layers, filters, batch)
		n, err := ParseConfig(strings.NewReader(cfg), rng)
		if err != nil {
			return false
		}
		// Randomise every parameter so defaults don't mask bugs.
		for _, l := range n.Layers {
			for _, p := range l.Params() {
				for i := range p {
					p[i] = float32(rng.NormFloat64())
				}
			}
		}
		n.Iteration = rng.Intn(10000)

		var buf bytes.Buffer
		if err := n.SaveWeights(&buf); err != nil {
			return false
		}
		m, err := ParseConfig(strings.NewReader(cfg), rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		if err := m.LoadWeights(bytes.NewReader(buf.Bytes())); err != nil {
			return false
		}
		if m.Iteration != n.Iteration {
			return false
		}
		for li := range n.Layers {
			pn := n.Layers[li].Params()
			pm := m.Layers[li].Params()
			for pi := range pn {
				for i := range pn[pi] {
					if pn[pi][i] != pm[pi][i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is always a probability distribution for
// any finite logits.
func TestPropertySoftmaxDistribution(t *testing.T) {
	sm, err := NewSoftmax(Shape{C: 10, H: 1, W: 1})
	if err != nil {
		t.Fatalf("NewSoftmax: %v", err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float32, 10)
		for i := range x {
			x[i] = float32(rng.NormFloat64() * 20)
		}
		out, err := sm.Forward(x, 1, false)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range out {
			if p < 0 || p > 1 {
				return false
			}
			sum += float64(p)
		}
		return sum > 0.9999 && sum < 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: one SGD step with zero learning rate never changes
// parameters; a nonzero step on nonzero gradients changes them.
func TestPropertySGDStepBehaviour(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		w := make([]float32, n)
		g := make([]float32, n)
		v := make([]float32, n)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
			g[i] = float32(rng.NormFloat64()) + 0.1 // nonzero
		}
		orig := append([]float32(nil), w...)

		// Zero LR: no movement, gradients cleared.
		sgdStep(w, g, v, 0, 0, 0)
		for i := range w {
			if w[i] != orig[i] || g[i] != 0 {
				return false
			}
		}
		// Nonzero LR on fresh gradients: movement.
		for i := range g {
			g[i] = 1
		}
		sgdStep(w, g, v, 0.1, 0, 0)
		moved := false
		for i := range w {
			if w[i] != orig[i] {
				moved = true
			}
		}
		return moved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
