// Package chaos provides deterministic fault injection for the
// simulated fleet: host kills triggered at an exact point in the
// request stream, and drop/delay/duplicate faults on sealed inter-host
// hand-offs. Everything is scripted — no wall-clock randomness — so a
// chaos run replays bit-for-bit under the same seed and schedule, which
// is what lets tests assert exact outcomes (zero dropped requests, a
// specific recovery path) instead of flaky probabilities.
//
// Two seams:
//
//   - HostKiller ticks once per unit of traffic (the caller decides the
//     unit — accepted batch, submitted request) and kills its
//     enclave.Host when the scripted tick arrives. From that instant
//     every boundary crossing into any enclave on that host fails with
//     enclave.ErrHostDown.
//
//   - Injector sits on a fleet.Channel and decides, per carried
//     hand-off, whether the transfer is delivered clean, dropped (the
//     sender times out and retries), delayed by a scripted duration, or
//     duplicated (delivered twice; sealed hand-offs make the duplicate
//     harmless, which is exactly the property worth exercising).
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/enclave"
)

// Fault is the kind of fault injected on one hand-off transfer.
type Fault int

const (
	// None delivers the transfer untouched.
	None Fault = iota
	// Drop loses the transfer in flight; the sender must retry.
	Drop
	// Delay delivers the transfer after an extra scripted latency.
	Delay
	// Duplicate delivers the transfer twice (idempotence probe).
	Duplicate
)

// String returns the fault kind name.
func (f Fault) String() string {
	switch f {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	default:
		return "none"
	}
}

// Decision is the injector's verdict for one transfer attempt.
type Decision struct {
	Kind Fault
	// Extra is the added latency when Kind is Delay.
	Extra time.Duration
}

// Rule matches a contiguous range of transfer attempts on a channel,
// counted from 1 in the order Next is called. Last == 0 means the rule
// matches only attempt First; Last < 0 means every attempt from First
// on. Rules are checked in order; the first match wins.
type Rule struct {
	First, Last int
	Kind        Fault
	Extra       time.Duration
	// Every, when > 0, turns the rule periodic: within [First, Last] it
	// matches only attempts where (n - First) is a multiple of Every.
	Every int
}

func (r Rule) matches(n int) bool {
	if n < r.First {
		return false
	}
	last := r.Last
	if last == 0 {
		last = r.First
	}
	if last > 0 && n > last {
		return false
	}
	if r.Every > 1 && (n-r.First)%r.Every != 0 {
		return false
	}
	return true
}

// Injector scripts faults for one channel. It is safe for concurrent
// use; the attempt counter makes the schedule deterministic for a
// serialized caller (one channel carries hand-offs one at a time).
type Injector struct {
	mu    sync.Mutex
	n     int
	rules []Rule

	dropped    atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
}

// NewInjector builds an injector from an ordered rule list.
func NewInjector(rules ...Rule) *Injector {
	return &Injector{rules: rules}
}

// DropFirst scripts the first k transfer attempts to be dropped; the
// sender's bounded retry must carry each hand-off through on attempt
// k+1 at the latest.
func DropFirst(k int) *Injector {
	return NewInjector(Rule{First: 1, Last: k, Kind: Drop})
}

// DropEvery scripts every n-th transfer attempt (n, 2n, ...) dropped.
func DropEvery(n int) *Injector {
	return NewInjector(Rule{First: n, Last: -1, Kind: Drop, Every: n})
}

// DelayEvery scripts every n-th transfer attempt delayed by extra.
func DelayEvery(n int, extra time.Duration) *Injector {
	return NewInjector(Rule{First: n, Last: -1, Kind: Delay, Extra: extra, Every: n})
}

// DuplicateEvery scripts every n-th transfer attempt duplicated.
func DuplicateEvery(n int) *Injector {
	return NewInjector(Rule{First: n, Last: -1, Kind: Duplicate, Every: n})
}

// Next advances the attempt counter and returns the scripted decision
// for this attempt. A nil injector always delivers clean.
func (in *Injector) Next() Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	in.n++
	n := in.n
	in.mu.Unlock()
	for _, r := range in.rules {
		if r.matches(n) {
			switch r.Kind {
			case Drop:
				in.dropped.Add(1)
			case Delay:
				in.delayed.Add(1)
			case Duplicate:
				in.duplicated.Add(1)
			}
			return Decision{Kind: r.Kind, Extra: r.Extra}
		}
	}
	return Decision{}
}

// Attempts returns how many transfer attempts the injector has seen.
func (in *Injector) Attempts() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// Dropped, Delayed and Duplicated count the faults injected so far.
func (in *Injector) Dropped() uint64 {
	if in == nil {
		return 0
	}
	return in.dropped.Load()
}

func (in *Injector) Delayed() uint64 {
	if in == nil {
		return 0
	}
	return in.delayed.Load()
}

func (in *Injector) Duplicated() uint64 {
	if in == nil {
		return 0
	}
	return in.duplicated.Load()
}

// HostKiller kills a host at a scripted point in the traffic stream:
// the caller Ticks it once per unit of traffic and the kill fires on
// tick number After (1-based). Killed reports whether it has fired.
type HostKiller struct {
	host  *enclave.Host
	after uint64
	ticks atomic.Uint64
	fired atomic.Bool
}

// KillAfter scripts host to be killed on the n-th Tick (n >= 1). An
// n of 0 arms the killer to fire on the first tick.
func KillAfter(host *enclave.Host, n uint64) *HostKiller {
	if n == 0 {
		n = 1
	}
	return &HostKiller{host: host, after: n}
}

// Tick advances the traffic counter and fires the kill when the
// scripted tick arrives. It returns true on the tick that killed the
// host. Safe for concurrent use; exactly one caller observes true.
func (k *HostKiller) Tick() bool {
	if k == nil || k.fired.Load() {
		return false
	}
	if k.ticks.Add(1) == k.after && k.fired.CompareAndSwap(false, true) {
		k.host.Kill()
		return true
	}
	return false
}

// Killed reports whether the scripted kill has fired.
func (k *HostKiller) Killed() bool { return k != nil && k.fired.Load() }

// Host returns the scripted victim.
func (k *HostKiller) Host() *enclave.Host { return k.host }
