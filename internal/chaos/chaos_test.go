package chaos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plinius/internal/enclave"
)

// collect runs n attempts through the injector and returns the fault
// kind decided for each (1-based attempt i at index i-1).
func collect(in *Injector, n int) []Fault {
	kinds := make([]Fault, n)
	for i := range kinds {
		kinds[i] = in.Next().Kind
	}
	return kinds
}

func TestRuleRanges(t *testing.T) {
	cases := []struct {
		name string
		in   *Injector
		want []Fault
	}{
		{
			name: "single attempt when Last is zero",
			in:   NewInjector(Rule{First: 2, Kind: Drop}),
			want: []Fault{None, Drop, None, None},
		},
		{
			name: "closed range",
			in:   NewInjector(Rule{First: 2, Last: 3, Kind: Delay}),
			want: []Fault{None, Delay, Delay, None},
		},
		{
			name: "open-ended range",
			in:   NewInjector(Rule{First: 3, Last: -1, Kind: Duplicate}),
			want: []Fault{None, None, Duplicate, Duplicate, Duplicate},
		},
		{
			name: "periodic every 2 from 2",
			in:   NewInjector(Rule{First: 2, Last: -1, Kind: Drop, Every: 2}),
			want: []Fault{None, Drop, None, Drop, None, Drop},
		},
		{
			name: "first matching rule wins",
			in: NewInjector(
				Rule{First: 1, Last: 2, Kind: Drop},
				Rule{First: 1, Last: -1, Kind: Delay},
			),
			want: []Fault{Drop, Drop, Delay, Delay},
		},
		{
			name: "DropFirst",
			in:   DropFirst(3),
			want: []Fault{Drop, Drop, Drop, None, None},
		},
		{
			name: "DropEvery",
			in:   DropEvery(3),
			want: []Fault{None, None, Drop, None, None, Drop, None},
		},
		{
			name: "DuplicateEvery",
			in:   DuplicateEvery(2),
			want: []Fault{None, Duplicate, None, Duplicate},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := collect(tc.in, len(tc.want))
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("attempt %d: got %v, want %v (all: %v)", i+1, got[i], tc.want[i], got)
				}
			}
		})
	}
}

func TestInjectorCountersAndDelay(t *testing.T) {
	in := NewInjector(
		Rule{First: 1, Kind: Drop},
		Rule{First: 2, Kind: Delay, Extra: 5 * time.Millisecond},
		Rule{First: 3, Kind: Duplicate},
	)
	if d := in.Next(); d.Kind != Drop {
		t.Fatalf("attempt 1: %v, want Drop", d.Kind)
	}
	if d := in.Next(); d.Kind != Delay || d.Extra != 5*time.Millisecond {
		t.Fatalf("attempt 2: %v extra %v, want Delay 5ms", d.Kind, d.Extra)
	}
	if d := in.Next(); d.Kind != Duplicate {
		t.Fatalf("attempt 3: %v, want Duplicate", d.Kind)
	}
	if in.Attempts() != 3 || in.Dropped() != 1 || in.Delayed() != 1 || in.Duplicated() != 1 {
		t.Fatalf("counters: attempts=%d dropped=%d delayed=%d duplicated=%d, want 3/1/1/1",
			in.Attempts(), in.Dropped(), in.Delayed(), in.Duplicated())
	}
}

func TestNilInjectorDeliversClean(t *testing.T) {
	var in *Injector
	if d := in.Next(); d.Kind != None || d.Extra != 0 {
		t.Fatalf("nil injector decided %v/%v, want clean", d.Kind, d.Extra)
	}
	if in.Attempts() != 0 || in.Dropped() != 0 || in.Delayed() != 0 || in.Duplicated() != 0 {
		t.Fatalf("nil injector has non-zero counters")
	}
}

func TestInjectorDeterministicSchedule(t *testing.T) {
	// Two injectors with the same rules decide the same schedule — the
	// property that makes chaos runs replayable.
	a := collect(DropEvery(4), 20)
	b := collect(DropEvery(4), 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
}

func TestHostKillerFiresExactlyOnce(t *testing.T) {
	host := enclave.NewHost(enclave.Profile{}, enclave.WithHostEPC(1<<20))
	k := KillAfter(host, 50)

	const workers = 8
	const ticksPer = 25 // 200 ticks total, kill scripted at 50
	var fired atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ticksPer; i++ {
				if k.Tick() {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 1 {
		t.Fatalf("kill fired %d times, want exactly 1", got)
	}
	if !k.Killed() {
		t.Fatalf("Killed() = false after the scripted tick")
	}
	if !host.Down() {
		t.Fatalf("host not down after the kill fired")
	}
	if k.Host() != host {
		t.Fatalf("Host() does not return the scripted victim")
	}
}

func TestHostKillerZeroArmsFirstTick(t *testing.T) {
	host := enclave.NewHost(enclave.Profile{}, enclave.WithHostEPC(1<<20))
	k := KillAfter(host, 0)
	if !k.Tick() {
		t.Fatalf("KillAfter(_, 0) did not fire on the first tick")
	}
	if !host.Down() {
		t.Fatalf("host not down")
	}
	if k.Tick() {
		t.Fatalf("killer fired a second time")
	}
}

func TestNilHostKillerIsInert(t *testing.T) {
	var k *HostKiller
	if k.Tick() {
		t.Fatalf("nil killer ticked true")
	}
	if k.Killed() {
		t.Fatalf("nil killer reports killed")
	}
}
