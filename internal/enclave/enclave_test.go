package enclave

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"plinius/internal/simclock"
)

func TestTransitionCost(t *testing.T) {
	hw := SGXEmlPMProfile()
	cycles := float64(hw.TransitionCycles)
	want := time.Duration(cycles / hw.CPUGHz) // ns
	if got := hw.TransitionCost(); got != want {
		t.Fatalf("hardware transition cost = %v, want %v", got, want)
	}
	sim := EmlSGXPMProfile()
	if got := sim.TransitionCost(); got != 0 {
		t.Fatalf("simulation-mode transition cost = %v, want 0", got)
	}
}

func TestEcallOcallChargeClock(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	if err := e.Ecall(func() error { return nil }); err != nil {
		t.Fatalf("Ecall: %v", err)
	}
	if err := e.Ocall(func() error { return nil }); err != nil {
		t.Fatalf("Ocall: %v", err)
	}
	if got := clk.Modeled(); got != 2*e.Profile().TransitionCost() {
		t.Fatalf("modeled = %v, want 2 transitions", got)
	}
	s := e.Stats()
	if s.Ecalls != 1 || s.Ocalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEcallPropagatesError(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(1))
	wantErr := errors.New("boom")
	if err := e.Ecall(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Ecall error = %v, want %v", err, wantErr)
	}
}

func TestAllocFreeFootprint(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(1), WithHeapLimit(1<<20))
	buf, err := e.Alloc(1000)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if len(buf) != 1000 {
		t.Fatalf("Alloc returned %d bytes, want 1000", len(buf))
	}
	if got := e.Footprint(); got != 1000 {
		t.Fatalf("Footprint = %d, want 1000", got)
	}
	if _, err := e.Alloc(1 << 20); !errors.Is(err, ErrHeapExhausted) {
		t.Fatalf("over-limit Alloc = %v, want ErrHeapExhausted", err)
	}
	if err := e.Free(1000); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := e.Footprint(); got != 0 {
		t.Fatalf("Footprint after Free = %d, want 0", got)
	}
	if err := e.Free(1); !errors.Is(err, ErrFreeTooMuch) {
		t.Fatalf("over-Free = %v, want ErrFreeTooMuch", err)
	}
	if _, err := e.Alloc(0); !errors.Is(err, ErrBadAlloc) {
		t.Fatalf("zero Alloc = %v, want ErrBadAlloc", err)
	}
}

func TestTouchFreeBelowEPCLimit(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	if _, err := e.Alloc(10 << 20); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	e.Touch(10 << 20)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("Touch below EPC charged %v, want 0", got)
	}
	if e.OverEPC() {
		t.Fatal("OverEPC = true at 10 MB")
	}
}

func TestTouchChargesPagingBeyondEPC(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	if _, err := e.Alloc(150 << 20); err != nil { // > 93.5 MB usable
		t.Fatalf("Alloc: %v", err)
	}
	if !e.OverEPC() {
		t.Fatal("OverEPC = false at 150 MB")
	}
	e.Touch(50 << 20)
	if got := clk.Modeled(); got == 0 {
		t.Fatal("Touch beyond EPC charged nothing")
	}
	if s := e.Stats(); s.PageSwaps == 0 {
		t.Fatal("no page swaps recorded")
	}
}

func TestTouchFreeInSimulationMode(t *testing.T) {
	clk := simclock.New()
	e := New(EmlSGXPMProfile(), WithClock(clk), WithSeed(1))
	if _, err := e.Alloc(200 << 20); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	e.Touch(100 << 20)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("simulation-mode Touch charged %v, want 0", got)
	}
}

func TestPeakFootprintTracked(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(1))
	if _, err := e.Alloc(5 << 20); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := e.Free(5 << 20); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := e.Stats().PeakBytes; got != 5<<20 {
		t.Fatalf("PeakBytes = %d, want %d", got, 5<<20)
	}
}

func TestReadRandDeterministicWithSeed(t *testing.T) {
	a := New(SGXEmlPMProfile(), WithSeed(42))
	b := New(SGXEmlPMProfile(), WithSeed(42))
	ba := make([]byte, 16)
	bb := make([]byte, 16)
	a.ReadRand(ba)
	b.ReadRand(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("seeded RNGs disagree")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(7))
	want := []byte("the 128-bit data encryption key")
	blob, err := e.Seal(want)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Unseal = %q, want %q", got, want)
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(7))
	blob, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	blob[len(blob)-1] ^= 0xff
	if _, err := e.Unseal(blob); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("tampered Unseal = %v, want ErrSealCorrupt", err)
	}
	if _, err := e.Unseal([]byte("short")); !errors.Is(err, ErrSealCorrupt) {
		t.Fatalf("short Unseal = %v, want ErrSealCorrupt", err)
	}
}

func TestSealBoundToEnclaveIdentity(t *testing.T) {
	a := New(SGXEmlPMProfile(), WithSeed(1))
	b := New(SGXEmlPMProfile(), WithSeed(2))
	blob, err := a.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := b.Unseal(blob); err == nil {
		t.Fatal("different enclave unsealed the blob")
	}
}

func TestAttestationHandshakeDerivesSameKey(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(9))
	sess, quote, err := e.BeginAttestation()
	if err != nil {
		t.Fatalf("BeginAttestation: %v", err)
	}
	owner, err := NewOwner(rand.Reader)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	ownerKey, err := owner.VerifyQuote(quote, PliniusMeasurement())
	if err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	enclaveKey, err := sess.CompleteAttestation(owner.PublicKey())
	if err != nil {
		t.Fatalf("CompleteAttestation: %v", err)
	}
	if ownerKey != enclaveKey {
		t.Fatal("owner and enclave derived different channel keys")
	}
}

func TestAttestationRejectsForgedQuote(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(9))
	_, quote, err := e.BeginAttestation()
	if err != nil {
		t.Fatalf("BeginAttestation: %v", err)
	}
	owner, err := NewOwner(rand.Reader)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	forged := quote
	forged.MAC[0] ^= 1
	if _, err := owner.VerifyQuote(forged, PliniusMeasurement()); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("forged quote = %v, want ErrQuoteForged", err)
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(9))
	_, quote, err := e.BeginAttestation()
	if err != nil {
		t.Fatalf("BeginAttestation: %v", err)
	}
	owner, err := NewOwner(rand.Reader)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	var other Measurement
	other[0] = 0xAB
	if _, err := owner.VerifyQuote(quote, other); !errors.Is(err, ErrWrongEnclave) {
		t.Fatalf("wrong measurement = %v, want ErrWrongEnclave", err)
	}
}

func TestCompleteAttestationNilSession(t *testing.T) {
	var s *AttestationSession
	if _, err := s.CompleteAttestation(nil); !errors.Is(err, ErrNoAttestation) {
		t.Fatalf("nil session = %v, want ErrNoAttestation", err)
	}
}
