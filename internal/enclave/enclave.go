// Package enclave simulates an Intel SGX enclave for the Plinius
// reproduction.
//
// No Go SGX SDK exists, so the enclave is modeled as (a) an isolation
// boundary — plaintext model parameters and keys live only in memory
// accounted to an Enclave, and everything that leaves goes through the
// encryption engine — and (b) a cost model with the three SGX effects the
// paper measures: ecall/ocall transition latency (~13,100 cycles), the
// enclave page cache (EPC) capacity of 128 MB with 93.5 MB usable, and
// kernel page-swapping overhead once the working set exceeds that limit
// (the knee in Fig. 7 and Table I).
//
// The cost model is layered Host → Enclave → Engine. A Host (host.go)
// is the unit of EPC ownership: real SGX reserves one EPC per machine,
// shared by every resident enclave, so the paging knee is a property of
// the host's aggregate working set, not of any single enclave. Enclaves
// created on one host (Host.NewEnclave) charge their Alloc/Reserve
// footprint to the shared budget and fault on Touch whenever the host —
// not merely the enclave — is over the knee. The encryption engine
// (package engine) binds to one enclave and charges these costs on every
// seal/open of data crossing the boundary. New keeps the single-enclave
// constructor as a shim that places the enclave on a private host,
// reproducing the paper's one-enclave-per-machine cost model exactly.
//
// The package also provides SGX-style sealing and a remote-attestation
// handshake (attest.go) used to provision the data-encryption key, as in
// the paper's Fig. 5 workflow.
package enclave

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"plinius/internal/obs"
	"plinius/internal/simclock"
)

// EPC geometry from the paper (§II): 128 MB reserved, 93.5 MB usable.
const (
	EPCSize      = 128 << 20
	UsableEPC    = 93*(1<<20) + 512<<10 // 93.5 MiB
	PageSize     = 4096
	DefaultHeap  = 8 << 30 // 8 GB max heap (§VI experimental setup)
	DefaultStack = 8 << 20 // 8 MB stack
)

// Profile models the SGX-related costs of a host machine.
type Profile struct {
	// Name identifies the machine, e.g. "sgx-emlPM".
	Name string
	// CPUGHz converts cycle counts to durations.
	CPUGHz float64
	// TransitionCycles is the cost of one ecall or ocall boundary
	// crossing (enter + exit averaged), ~13,100 cycles per [39].
	TransitionCycles int
	// PageSwapCost is the kernel driver cost of evicting one EPC page
	// and loading its replacement (EWB + ELDU round trip).
	PageSwapCost time.Duration
	// EPCCopyPerLine is the extra cost of moving one 64 B cache line
	// INTO the enclave (memory-encryption-engine decrypt + integrity
	// check on every line entering the EPC; loads stall on it, which is
	// why the paper's restores are read-dominated on real SGX).
	// Outbound writes are posted and charged nothing here.
	EPCCopyPerLine time.Duration
	// HardwareSGX is false when SGX runs in simulation mode (the
	// emlSGX-PM server): transitions and paging then cost nothing.
	HardwareSGX bool
}

// SGXEmlPMProfile returns the sgx-emlPM server: real SGX (Xeon E3-1270 @
// 3.8 GHz), PM emulated by a ramdisk.
func SGXEmlPMProfile() Profile {
	return Profile{
		Name:             "sgx-emlPM",
		CPUGHz:           3.8,
		TransitionCycles: 13100,
		PageSwapCost:     12 * time.Microsecond,
		EPCCopyPerLine:   85 * time.Nanosecond,
		HardwareSGX:      true,
	}
}

// EmlSGXPMProfile returns the emlSGX-PM server: SGX in simulation mode
// (Xeon Gold 5215 @ 2.5 GHz), real Optane PM.
func EmlSGXPMProfile() Profile {
	return Profile{
		Name:             "emlSGX-PM",
		CPUGHz:           2.5,
		TransitionCycles: 13100,
		PageSwapCost:     12 * time.Microsecond,
		HardwareSGX:      false,
	}
}

// TransitionCost returns the modeled duration of one enclave boundary
// crossing.
func (p Profile) TransitionCost() time.Duration {
	if !p.HardwareSGX || p.CPUGHz <= 0 {
		return 0
	}
	return time.Duration(float64(p.TransitionCycles) / p.CPUGHz * float64(time.Nanosecond))
}

// Errors returned by Enclave operations.
var (
	ErrHeapExhausted = errors.New("enclave: heap limit exceeded")
	ErrBadAlloc      = errors.New("enclave: allocation size must be positive")
	ErrFreeTooMuch   = errors.New("enclave: free exceeds allocated footprint")
	ErrClosed        = errors.New("enclave: enclave is closed")
	// ErrHostDown is returned by boundary crossings (Ecall, Ocall) and
	// EPC claims on an enclave whose host has been killed. The trusted
	// body is NOT run: a dead machine executes nothing. Callers treat it
	// as a routing failure — mark the host down, evict, retry elsewhere.
	ErrHostDown = errors.New("enclave: host is down")
)

// Stats counts enclave activity.
type Stats struct {
	Ecalls    uint64
	Ocalls    uint64
	PageSwaps uint64
	// ContentionSwaps counts the subset of PageSwaps paid while this
	// enclave's own footprint was within the host's usable EPC — faults
	// caused purely by co-located enclaves pushing the host's aggregate
	// working set over the knee. Zero on a single-enclave host.
	ContentionSwaps uint64
	PeakBytes       int
}

// Enclave is a simulated SGX enclave instance, resident on one Host.
type Enclave struct {
	mu        sync.Mutex
	host      *Host
	prof      Profile
	clock     *simclock.Clock
	heapLimit int
	allocated int
	closed    bool
	name      string
	rng       *rand.Rand
	sealKey   [16]byte
	stats     Stats

	// Role-labeled counters in the process-wide obs registry, shared by
	// every enclave with the same name — bounded cardinality however
	// many replicas or shards a test spins up.
	mEcalls     *obs.Counter
	mOcalls     *obs.Counter
	mSwaps      *obs.Counter
	mContention *obs.Counter
}

// Option configures an Enclave.
type Option func(*Enclave)

// WithClock attaches a shared cost-accounting clock.
func WithClock(c *simclock.Clock) Option {
	return func(e *Enclave) { e.clock = c }
}

// WithHeapLimit overrides the maximum enclave heap (default 8 GB).
func WithHeapLimit(n int) Option {
	return func(e *Enclave) { e.heapLimit = n }
}

// WithSeed seeds the enclave RNG (sgx_read_rand) deterministically for
// tests. Production callers omit it.
func WithSeed(seed int64) Option {
	return func(e *Enclave) { e.rng = rand.New(rand.NewSource(seed)) }
}

// WithName labels the enclave's metrics with a role ("train",
// "replica", "shard"). Names are roles, not instance ids, so series
// cardinality stays bounded however many enclaves share one.
func WithName(name string) Option {
	return func(e *Enclave) { e.name = name }
}

// New creates an enclave on a private, freshly created host with the
// given profile — the paper's one-enclave-per-machine setup.
//
// New is kept as a compatibility shim for single-enclave callers;
// code that co-locates enclaves (serving replicas, multi-tenant hosts)
// creates one Host and calls Host.NewEnclave so all residents share
// the machine's EPC budget.
func New(prof Profile, opts ...Option) *Enclave {
	return NewHost(prof).NewEnclave(opts...)
}

// newEnclave builds an enclave resident on host (which registers it).
func newEnclave(host *Host, opts ...Option) *Enclave {
	e := &Enclave{
		host:      host,
		prof:      host.prof,
		heapLimit: DefaultHeap,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.clock == nil {
		e.clock = simclock.New()
	}
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	// Derive a per-enclave sealing key from the RNG, standing in for the
	// CPU's EGETKEY-derived seal key.
	e.rng.Read(e.sealKey[:])
	if e.name == "" {
		e.name = "anon"
	}
	role := obs.Label{Key: "enclave", Value: e.name}
	reg := obs.Default()
	e.mEcalls = reg.Counter("enclave_ecalls_total", "Ecall boundary crossings, by enclave role.", role)
	e.mOcalls = reg.Counter("enclave_ocalls_total", "Ocall boundary crossings, by enclave role.", role)
	e.mSwaps = reg.Counter("epc_page_swaps_total", "EPC page faults charged on Touch, by enclave role.", role)
	e.mContention = reg.Counter("epc_contention_swaps_total", "EPC faults paid while the enclave's own footprint fit the usable EPC — co-location contention, by enclave role.", role)
	return e
}

// Profile returns the machine profile.
func (e *Enclave) Profile() Profile { return e.prof }

// Host returns the host machine whose EPC this enclave shares.
func (e *Enclave) Host() *Host { return e.host }

// Clock returns the clock charged by this enclave.
func (e *Enclave) Clock() *simclock.Clock { return e.clock }

// Ecall crosses into the enclave, charges the transition cost, and runs
// fn (the trusted function body). On a killed host the crossing fails
// fast with ErrHostDown and fn is never run.
func (e *Enclave) Ecall(fn func() error) error {
	if e.host.Down() {
		return fmt.Errorf("%w: ecall refused", ErrHostDown)
	}
	e.mu.Lock()
	e.stats.Ecalls++
	e.mu.Unlock()
	e.mEcalls.Inc()
	e.clock.Advance(e.prof.TransitionCost())
	return fn()
}

// Ocall crosses out of the enclave, charges the transition cost, and runs
// fn (the untrusted helper body). On a killed host the crossing fails
// fast with ErrHostDown and fn is never run.
func (e *Enclave) Ocall(fn func() error) error {
	if e.host.Down() {
		return fmt.Errorf("%w: ocall refused", ErrHostDown)
	}
	e.mu.Lock()
	e.stats.Ocalls++
	e.mu.Unlock()
	e.mOcalls.Inc()
	e.clock.Advance(e.prof.TransitionCost())
	return fn()
}

// Alloc registers n bytes of enclave heap and returns a zeroed buffer
// representing EPC-backed memory. The bytes join the host's shared
// working set. The buffer must be released with Free.
func (e *Enclave) Alloc(n int) ([]byte, error) {
	if err := e.claim(n); err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// Reserve registers n bytes of enclave heap without returning a buffer,
// for callers whose data lives in typed slices (e.g. model weights) but
// must still count toward the EPC working set. Release it with Free.
func (e *Enclave) Reserve(n int) error {
	return e.claim(n)
}

// claim accounts n bytes to the enclave footprint and the host working
// set.
func (e *Enclave) claim(n int) error {
	if n <= 0 {
		return fmt.Errorf("%w: %d", ErrBadAlloc, n)
	}
	if e.host.Down() {
		return fmt.Errorf("%w: claim refused", ErrHostDown)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.allocated+n > e.heapLimit {
		err := fmt.Errorf("%w: %d + %d > %d", ErrHeapExhausted, e.allocated, n, e.heapLimit)
		e.mu.Unlock()
		return err
	}
	e.allocated += n
	if e.allocated > e.stats.PeakBytes {
		e.stats.PeakBytes = e.allocated
	}
	e.mu.Unlock()
	e.host.grow(n)
	return nil
}

// Free releases n bytes of enclave heap previously obtained with Alloc,
// returning them to the host's shared budget.
func (e *Enclave) Free(n int) error {
	e.mu.Lock()
	if n < 0 || n > e.allocated {
		err := fmt.Errorf("%w: free %d of %d", ErrFreeTooMuch, n, e.allocated)
		e.mu.Unlock()
		return err
	}
	e.allocated -= n
	e.mu.Unlock()
	e.host.shrink(n)
	return nil
}

// Close destroys the enclave (EREMOVE of all its pages): its entire
// remaining footprint returns to the host's shared EPC budget and the
// enclave stops accepting allocations. Close is how a serving replica
// gives its pages back so the host's paging model stops charging the
// survivors for its working set.
func (e *Enclave) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.closed = true
	footprint := e.allocated
	e.allocated = 0
	e.mu.Unlock()
	e.host.dropEnclave(footprint)
	return nil
}

// Footprint returns the current enclave memory footprint in bytes.
func (e *Enclave) Footprint() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.allocated
}

// OverEPC reports whether this enclave's private working set alone
// exceeds the host's usable-EPC budget. The paging knee itself is
// host-global — see Host.OverEPC — so an enclave can page with OverEPC
// false when co-located enclaves overcommit the host.
func (e *Enclave) OverEPC() bool { return e.Footprint() > e.host.UsableEPC() }

// Touch charges the EPC paging cost of accessing n bytes of enclave
// memory. While the host's aggregate working set fits the usable EPC
// this is free. Beyond it, every touched page is charged a fault: the
// usable EPC splits pro-rata by footprint across resident enclaves
// (each holds usable*f/W pages for footprint f and host working set
// W), so every enclave's share is strictly smaller than its working
// set, and the Plinius access pattern — model parameters plus
// en/decryption buffers streamed cyclically each iteration — misses on
// essentially every access: each page is evicted before it comes
// around again. On a single-enclave host this is exactly the sharp
// knee behind the paper's Fig. 7 latency cliff and Table Ia shift
// (encryption 66% -> 92% of save latency past the EPC limit); on a
// shared host the same knee arrives earlier, once the residents
// jointly overcommit the budget, even though each is under it alone.
func (e *Enclave) Touch(n int) {
	if n <= 0 || !e.prof.HardwareSGX {
		return
	}
	if !e.host.OverEPC() {
		return
	}
	e.mu.Lock()
	footprint := e.allocated
	e.mu.Unlock()
	faults := uint64((n + PageSize - 1) / PageSize)
	e.mu.Lock()
	e.stats.PageSwaps += faults
	contended := footprint <= e.host.UsableEPC()
	if contended {
		e.stats.ContentionSwaps += faults
	}
	e.mu.Unlock()
	e.mSwaps.AddUint(faults)
	if contended {
		e.mContention.AddUint(faults)
	}
	e.host.countSwaps(faults)
	e.clock.Advance(time.Duration(faults) * e.prof.PageSwapCost)
}

// CopyAcross charges the memory-encryption-engine cost of moving n bytes
// across the enclave boundary (e.g. memcpy of a sealed model between PM
// and enclave memory). Free without hardware SGX.
func (e *Enclave) CopyAcross(n int) {
	if n <= 0 || !e.prof.HardwareSGX || e.prof.EPCCopyPerLine <= 0 {
		return
	}
	lines := (n + 63) / 64
	e.clock.Advance(time.Duration(lines) * e.prof.EPCCopyPerLine)
}

// ReadRand fills b with random bytes from the enclave's RNG, standing in
// for sgx_read_rand.
func (e *Enclave) ReadRand(b []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rng.Read(b)
}

// Stats returns a copy of the activity counters.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// StatsReset zeroes the activity counters (footprint is preserved).
func (e *Enclave) StatsReset() {
	e.mu.Lock()
	e.stats = Stats{PeakBytes: e.allocated}
	e.mu.Unlock()
}
