package enclave

import (
	"errors"
	"testing"

	"plinius/internal/simclock"
)

// TestSharedEPCAccounting is the shared-knee table: N enclaves, each
// below the usable EPC on its own, pay paging exactly when their joint
// working set overcommits the host.
func TestSharedEPCAccounting(t *testing.T) {
	cases := []struct {
		name       string
		enclaves   int
		each       int // per-enclave footprint
		wantPaging bool
	}{
		{"one tenant under", 1, 50 << 20, false},
		{"one tenant over", 1, 100 << 20, true},
		{"two tenants jointly under", 2, 40 << 20, false},
		{"two tenants jointly over", 2, 50 << 20, true},
		{"three tenants jointly over", 3, 40 << 20, true},
		{"four small tenants under", 4, 20 << 20, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHost(SGXEmlPMProfile())
			clk := simclock.New()
			var encls []*Enclave
			for i := 0; i < tc.enclaves; i++ {
				e := h.NewEnclave(WithClock(clk), WithSeed(int64(i+1)))
				if err := e.Reserve(tc.each); err != nil {
					t.Fatalf("Reserve enclave %d: %v", i, err)
				}
				encls = append(encls, e)
			}
			if got := h.Resident(); got != tc.enclaves*tc.each {
				t.Fatalf("Resident = %d, want %d", got, tc.enclaves*tc.each)
			}
			encls[0].Touch(8 << 20)
			paged := clk.Modeled() > 0
			if paged != tc.wantPaging {
				t.Fatalf("paging = %v (modeled %v), want %v", paged, clk.Modeled(), tc.wantPaging)
			}
			st := encls[0].Stats()
			if tc.wantPaging && st.PageSwaps == 0 {
				t.Fatal("no page swaps recorded past the shared knee")
			}
			// Contention attribution: faults while the enclave's private
			// footprint fits the budget are co-location damage.
			underOwnLimit := tc.each <= h.UsableEPC()
			if tc.wantPaging && underOwnLimit && st.ContentionSwaps != st.PageSwaps {
				t.Fatalf("ContentionSwaps = %d, want %d (all faults from co-location)",
					st.ContentionSwaps, st.PageSwaps)
			}
			if tc.wantPaging && !underOwnLimit && st.ContentionSwaps != 0 {
				t.Fatalf("ContentionSwaps = %d on a privately-over enclave, want 0", st.ContentionSwaps)
			}
			if hs := h.Stats(); hs.PageSwaps != st.PageSwaps {
				t.Fatalf("host PageSwaps = %d, enclave charged %d", hs.PageSwaps, st.PageSwaps)
			}
		})
	}
}

// TestCloseReturnsFootprintToHost verifies that closing an enclave
// gives its pages back: the survivors drop below the knee again.
func TestCloseReturnsFootprintToHost(t *testing.T) {
	h := NewHost(SGXEmlPMProfile())
	clk := simclock.New()
	a := h.NewEnclave(WithClock(clk), WithSeed(1))
	b := h.NewEnclave(WithClock(clk), WithSeed(2))
	if err := a.Reserve(50 << 20); err != nil {
		t.Fatalf("Reserve a: %v", err)
	}
	if err := b.Reserve(50 << 20); err != nil {
		t.Fatalf("Reserve b: %v", err)
	}
	if !h.OverEPC() {
		t.Fatal("host not over EPC at 100 MB")
	}
	a.Touch(4 << 20)
	if a.Stats().PageSwaps == 0 {
		t.Fatal("no paging while jointly over")
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := h.Resident(); got != 50<<20 {
		t.Fatalf("Resident after Close = %d, want %d", got, 50<<20)
	}
	if got := h.Enclaves(); got != 1 {
		t.Fatalf("Enclaves after Close = %d, want 1", got)
	}
	before := a.Stats().PageSwaps
	a.Touch(4 << 20)
	if got := a.Stats().PageSwaps; got != before {
		t.Fatalf("paging continued after co-tenant closed: %d -> %d", before, got)
	}
	// A closed enclave is inert.
	if err := b.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	if err := b.Reserve(1 << 20); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reserve on closed = %v, want ErrClosed", err)
	}
	if _, err := b.Alloc(1 << 20); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc on closed = %v, want ErrClosed", err)
	}
}

// TestHostHeadroomAndOvercommit pins the replica-sizing signals.
func TestHostHeadroomAndOvercommit(t *testing.T) {
	h := NewHost(SGXEmlPMProfile(), WithHostEPC(100<<20))
	if got := h.UsableEPC(); got != 100<<20 {
		t.Fatalf("UsableEPC = %d, want %d", got, 100<<20)
	}
	e := h.NewEnclave(WithSeed(1))
	if err := e.Reserve(60 << 20); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := h.Headroom(); got != 40<<20 {
		t.Fatalf("Headroom = %d, want %d", got, 40<<20)
	}
	if got := h.Overcommit(); got != 0 {
		t.Fatalf("Overcommit under budget = %v, want 0", got)
	}
	if err := e.Reserve(90 << 20); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := h.Headroom(); got != 0 {
		t.Fatalf("Headroom over budget = %d, want 0", got)
	}
	if got := h.Overcommit(); got != 0.5 {
		t.Fatalf("Overcommit = %v, want 0.5", got)
	}
	if hs := h.Stats(); hs.PeakResidentBytes != 150<<20 {
		t.Fatalf("PeakResidentBytes = %d, want %d", hs.PeakResidentBytes, 150<<20)
	}
}

// TestPrivateHostShimBitIdentical: New must reproduce the
// single-enclave knee exactly (Fig. 7 depends on it).
func TestPrivateHostShimBitIdentical(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	if e.Host() == nil {
		t.Fatal("shim enclave has no host")
	}
	if err := e.Reserve(UsableEPC); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	e.Touch(1 << 20)
	if clk.Modeled() != 0 {
		t.Fatal("paging charged exactly at the usable EPC")
	}
	if err := e.Reserve(PageSize); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	e.Touch(1 << 20)
	if clk.Modeled() == 0 {
		t.Fatal("no paging one page past the usable EPC")
	}
	if st := e.Stats(); st.ContentionSwaps != 0 {
		t.Fatalf("ContentionSwaps = %d on a private host, want 0", st.ContentionSwaps)
	}
}
