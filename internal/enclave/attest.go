package enclave

import (
	"bytes"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// Remote attestation and secure-channel establishment (paper Fig. 5,
// steps 2-3): the model/dataset owner verifies the enclave's identity,
// derives a shared secret via ECDH, and provisions the data-encryption
// key over the resulting channel. The Intel attestation service is
// simulated by an HMAC keyed with a platform key that both the (honest)
// platform and the verifier know; the untrusted host between them never
// sees key material.

// Measurement is the enclave identity (MRENCLAVE analogue): a SHA-256
// hash over the trusted code identity.
type Measurement [32]byte

// PliniusMeasurement returns the measurement of the Plinius trusted
// runtime. In real SGX this is computed by the CPU at enclave build;
// here it is a constant hash over the trusted-component names.
func PliniusMeasurement() Measurement {
	return Measurement(sha256.Sum256([]byte("plinius/lib-sgx-darknet+lib-sgx-romulus+mirroring")))
}

// Quote is the attestation evidence the enclave produces: its measurement
// and ephemeral ECDH public key, authenticated with the platform key.
type Quote struct {
	Measurement Measurement
	PublicKey   []byte
	MAC         [32]byte
}

// Attestation errors.
var (
	ErrQuoteForged   = errors.New("enclave: quote MAC verification failed")
	ErrWrongEnclave  = errors.New("enclave: measurement mismatch")
	ErrNoAttestation = errors.New("enclave: no attestation session")
)

// platformKey stands in for the provisioning key shared between the SGX
// platform and the attestation service. A real deployment derives it in
// hardware; the simulation fixes it so verifier and enclave agree.
var platformKey = sha256.Sum256([]byte("plinius-simulated-sgx-platform-provisioning-key"))

func quoteMAC(m Measurement, pub []byte) [32]byte {
	h := hmac.New(sha256.New, platformKey[:])
	h.Write(m[:])
	h.Write(pub)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// AttestationSession holds the enclave side of an in-progress remote
// attestation.
type AttestationSession struct {
	priv *ecdh.PrivateKey
}

// BeginAttestation generates the enclave's ephemeral key pair and quote.
func (e *Enclave) BeginAttestation() (*AttestationSession, Quote, error) {
	seed := make([]byte, 64)
	e.ReadRand(seed)
	priv, err := ecdh.P256().GenerateKey(bytes.NewReader(seed))
	if err != nil {
		return nil, Quote{}, fmt.Errorf("attestation keygen: %w", err)
	}
	pub := priv.PublicKey().Bytes()
	q := Quote{
		Measurement: PliniusMeasurement(),
		PublicKey:   pub,
		MAC:         quoteMAC(PliniusMeasurement(), pub),
	}
	return &AttestationSession{priv: priv}, q, nil
}

// CompleteAttestation derives the channel key from the owner's public key.
func (s *AttestationSession) CompleteAttestation(ownerPub []byte) ([32]byte, error) {
	var key [32]byte
	if s == nil || s.priv == nil {
		return key, ErrNoAttestation
	}
	pub, err := ecdh.P256().NewPublicKey(ownerPub)
	if err != nil {
		return key, fmt.Errorf("owner public key: %w", err)
	}
	secret, err := s.priv.ECDH(pub)
	if err != nil {
		return key, fmt.Errorf("ecdh: %w", err)
	}
	return deriveChannelKey(secret), nil
}

// Owner is the model/dataset owner's side of attestation (runs on the
// owner's trusted machine, not on the untrusted cloud host).
type Owner struct {
	priv *ecdh.PrivateKey
}

// NewOwner creates an owner with an ephemeral ECDH key from rng.
func NewOwner(rng io.Reader) (*Owner, error) {
	priv, err := ecdh.P256().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("owner keygen: %w", err)
	}
	return &Owner{priv: priv}, nil
}

// PublicKey returns the owner's ECDH public key bytes.
func (o *Owner) PublicKey() []byte { return o.priv.PublicKey().Bytes() }

// VerifyQuote checks the quote's authenticity and enclave identity, then
// derives the shared channel key. It returns ErrQuoteForged for a bad MAC
// and ErrWrongEnclave for an unexpected measurement.
func (o *Owner) VerifyQuote(q Quote, want Measurement) ([32]byte, error) {
	var key [32]byte
	expect := quoteMAC(q.Measurement, q.PublicKey)
	if !hmac.Equal(expect[:], q.MAC[:]) {
		return key, ErrQuoteForged
	}
	if q.Measurement != want {
		return key, ErrWrongEnclave
	}
	pub, err := ecdh.P256().NewPublicKey(q.PublicKey)
	if err != nil {
		return key, fmt.Errorf("enclave public key: %w", err)
	}
	secret, err := o.priv.ECDH(pub)
	if err != nil {
		return key, fmt.Errorf("ecdh: %w", err)
	}
	return deriveChannelKey(secret), nil
}

// deriveChannelKey applies a KDF (SHA-256 with a context label) to the
// raw ECDH secret.
func deriveChannelKey(secret []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("plinius-ra-channel-v1"))
	h.Write(secret)
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}
