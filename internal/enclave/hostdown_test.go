package enclave

import (
	"errors"
	"testing"
)

// TestHostKillRefusesBoundaryCrossings: a killed host refuses every
// boundary crossing — Ecall, Ocall and EPC claims — with ErrHostDown,
// and crucially never runs the crossing's body: a dead machine
// executes nothing.
func TestHostKillRefusesBoundaryCrossings(t *testing.T) {
	h := NewHost(SGXEmlPMProfile())
	e := h.NewEnclave(WithSeed(1))
	if err := e.Reserve(4 << 20); err != nil {
		t.Fatalf("Reserve: %v", err)
	}

	h.Kill()
	if !h.Down() {
		t.Fatalf("Down() = false after Kill")
	}
	if got := h.Kills(); got != 1 {
		t.Fatalf("Kills = %d, want 1", got)
	}

	ran := false
	if err := e.Ecall(func() error { ran = true; return nil }); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Ecall on dead host: %v, want ErrHostDown", err)
	}
	if err := e.Ocall(func() error { ran = true; return nil }); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Ocall on dead host: %v, want ErrHostDown", err)
	}
	if ran {
		t.Fatalf("boundary crossing body ran on a dead host")
	}
	if err := e.Reserve(1 << 20); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Reserve on dead host: %v, want ErrHostDown", err)
	}
	if _, err := e.Alloc(1 << 20); !errors.Is(err, ErrHostDown) {
		t.Fatalf("Alloc on dead host: %v, want ErrHostDown", err)
	}

	// Close is accounting-only (the controller releasing its records of
	// a machine that no longer answers) and must work on a down host.
	if err := e.Close(); err != nil {
		t.Fatalf("Close on dead host: %v", err)
	}
	if got := h.Resident(); got != 0 {
		t.Fatalf("Resident = %d after Close, want 0", got)
	}
}

// TestHostKillIdempotentAndRejoin: killing an already-dead host is a
// no-op (Kills counts up-to-down transitions, not Kill calls); Rejoin
// brings it back empty-handed and serving again, and a later kill
// counts as a second transition.
func TestHostKillIdempotentAndRejoin(t *testing.T) {
	h := NewHost(SGXEmlPMProfile())
	h.Kill()
	h.Kill()
	if got := h.Kills(); got != 1 {
		t.Fatalf("Kills = %d after double kill, want 1 (second is a no-op)", got)
	}
	if !h.Down() {
		t.Fatalf("host not down")
	}

	h.Rejoin()
	if h.Down() {
		t.Fatalf("host still down after Rejoin")
	}
	h.Kill()
	h.Rejoin()
	if got := h.Kills(); got != 2 {
		t.Fatalf("Kills = %d after a second down transition, want 2", got)
	}
	e := h.NewEnclave(WithSeed(2))
	if err := e.Ecall(func() error { return nil }); err != nil {
		t.Fatalf("Ecall after Rejoin: %v", err)
	}
	if err := e.Reserve(1 << 20); err != nil {
		t.Fatalf("Reserve after Rejoin: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestHostUpByDefault: a fresh host serves immediately.
func TestHostUpByDefault(t *testing.T) {
	h := NewHost(SGXEmlPMProfile())
	if h.Down() {
		t.Fatalf("fresh host reports down")
	}
	if h.Kills() != 0 {
		t.Fatalf("fresh host has kill history")
	}
	if err := h.NewEnclave(WithSeed(3)).Ecall(func() error { return nil }); err != nil {
		t.Fatalf("Ecall on fresh host: %v", err)
	}
}
