package enclave

import (
	"sync"
)

// Host is the unit of EPC ownership: one physical machine whose
// processor reserves a single enclave page cache shared by every
// enclave resident on it. Real SGX has exactly this shape — the EPC is
// a per-host resource, not a per-enclave one — so co-located enclaves
// (a training enclave plus serving replicas, or several tenants)
// compete for the same 93.5 MB of usable pages, and an enclave whose
// private working set fits comfortably can still thrash once the
// host's aggregate working set crosses the limit.
//
// The paging model splits the usable EPC pro-rata by footprint, a
// proportional-share approximation of the SGX driver's global (roughly
// LRU) eviction policy: with the host working set W over the usable
// budget U, an enclave of footprint f effectively holds U*f/W resident
// pages — always fewer than f — and a cyclic parameter stream larger
// than its share misses on essentially every page, exactly like the
// single-enclave knee in Fig. 7. The fault condition is therefore
// host-global (W > U) while the fault volume stays proportional to
// each enclave's own touches, which is the pro-rata split.
//
// A Host is cheap; callers that never co-locate enclaves can ignore it
// entirely (New creates a private host per enclave and reproduces the
// single-enclave cost model bit for bit).
type Host struct {
	mu       sync.Mutex
	prof     Profile
	usable   int
	resident int
	peak     int
	enclaves int
	swaps    uint64
	down     bool
	kills    uint64
}

// HostStats counts host-level EPC activity.
type HostStats struct {
	// Enclaves is the number of live (unclosed) enclaves on the host.
	Enclaves int
	// ResidentBytes is the aggregate working set of all live enclaves.
	ResidentBytes int
	// PeakResidentBytes is the high-water mark of ResidentBytes.
	PeakResidentBytes int
	// PageSwaps is the total EPC page faults charged across all
	// enclaves on the host.
	PageSwaps uint64
}

// HostOption configures a Host.
type HostOption func(*Host)

// WithHostEPC overrides the host's usable-EPC budget (default
// UsableEPC, the paper's 93.5 MiB). Tests use small budgets to hit the
// knee cheaply; multi-socket or ice-lake-class hosts use larger ones.
func WithHostEPC(n int) HostOption {
	return func(h *Host) {
		if n > 0 {
			h.usable = n
		}
	}
}

// NewHost creates a host machine with the given SGX cost profile and
// an empty EPC.
func NewHost(prof Profile, opts ...HostOption) *Host {
	h := &Host{prof: prof, usable: UsableEPC}
	for _, opt := range opts {
		opt(h)
	}
	return h
}

// NewEnclave creates an enclave resident on this host. The enclave
// inherits the host's cost profile; its working set counts toward the
// host's shared EPC budget until Close returns it.
func (h *Host) NewEnclave(opts ...Option) *Enclave {
	e := newEnclave(h, opts...)
	h.mu.Lock()
	h.enclaves++
	h.mu.Unlock()
	return e
}

// Profile returns the host's machine cost profile.
func (h *Host) Profile() Profile { return h.prof }

// UsableEPC returns the host's usable-EPC budget in bytes.
func (h *Host) UsableEPC() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.usable
}

// Resident returns the aggregate working set of all live enclaves.
func (h *Host) Resident() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resident
}

// Headroom returns the usable EPC not yet claimed by resident
// enclaves, 0 when the host is at or over the knee. Serving uses it to
// size replica pools: only as many replicas as fit the remaining
// budget stay on the fast side of the paging cliff.
func (h *Host) Headroom() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.resident >= h.usable {
		return 0
	}
	return h.usable - h.resident
}

// OverEPC reports whether the host's aggregate working set exceeds the
// usable EPC — the shared knee past which every resident enclave pays
// paging on each touched page, whatever its private footprint.
func (h *Host) OverEPC() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.resident > h.usable
}

// Overcommit returns how far the aggregate working set exceeds the
// usable EPC, as a fraction of the budget: 0 while everything fits,
// 0.5 when the host holds 1.5x its usable EPC. This is the EPC
// pressure signal surfaced by the serving layer.
func (h *Host) Overcommit() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.resident <= h.usable || h.usable <= 0 {
		return 0
	}
	return float64(h.resident-h.usable) / float64(h.usable)
}

// Kill marks the host down, simulating a machine failure. Enclaves on
// the host stay allocated (their memory accounting is unchanged) but
// every subsequent boundary crossing — Ecall, Ocall, or EPC claim —
// fails fast with ErrHostDown without running its body, the way RPCs
// into a dead machine time out rather than execute. A crossing already
// in flight when Kill lands completes normally; the failure takes
// effect at the next boundary. Kill is idempotent.
func (h *Host) Kill() {
	h.mu.Lock()
	if !h.down {
		h.down = true
		h.kills++
	}
	h.mu.Unlock()
}

// Rejoin brings a killed host back. The host returns empty-handed:
// whatever enclaves died with it must be rebuilt by their owners (the
// fleet layer re-provisions from the PM mirror). Rejoin is idempotent.
func (h *Host) Rejoin() {
	h.mu.Lock()
	h.down = false
	h.mu.Unlock()
}

// Down reports whether the host is currently marked dead.
func (h *Host) Down() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down
}

// Kills returns how many times the host has been killed.
func (h *Host) Kills() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kills
}

// Enclaves returns the number of live enclaves on the host.
func (h *Host) Enclaves() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.enclaves
}

// Stats returns a copy of the host-level counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HostStats{
		Enclaves:          h.enclaves,
		ResidentBytes:     h.resident,
		PeakResidentBytes: h.peak,
		PageSwaps:         h.swaps,
	}
}

// grow adds n bytes to the host working set (enclave Alloc/Reserve).
func (h *Host) grow(n int) {
	h.mu.Lock()
	h.resident += n
	if h.resident > h.peak {
		h.peak = h.resident
	}
	h.mu.Unlock()
}

// shrink returns n bytes to the host (enclave Free/Close).
func (h *Host) shrink(n int) {
	h.mu.Lock()
	h.resident -= n
	h.mu.Unlock()
}

// countSwaps records page faults charged to one resident enclave.
func (h *Host) countSwaps(n uint64) {
	h.mu.Lock()
	h.swaps += n
	h.mu.Unlock()
}

// dropEnclave removes a closed enclave and its footprint.
func (h *Host) dropEnclave(footprint int) {
	h.mu.Lock()
	h.enclaves--
	h.resident -= footprint
	h.mu.Unlock()
}
