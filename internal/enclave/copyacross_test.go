package enclave

import (
	"testing"
	"time"

	"plinius/internal/simclock"
)

func TestCopyAcrossChargesPerLine(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(256) // 4 cache lines
	want := 4 * e.Profile().EPCCopyPerLine
	if got := clk.Modeled(); got != want {
		t.Fatalf("CopyAcross(256) charged %v, want %v", got, want)
	}
}

func TestCopyAcrossRoundsUpPartialLines(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(65) // 2 lines
	want := 2 * e.Profile().EPCCopyPerLine
	if got := clk.Modeled(); got != want {
		t.Fatalf("CopyAcross(65) charged %v, want %v", got, want)
	}
}

func TestCopyAcrossFreeWithoutHardwareSGX(t *testing.T) {
	clk := simclock.New()
	e := New(EmlSGXPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(1 << 20)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("simulation-mode CopyAcross charged %v", got)
	}
}

func TestCopyAcrossIgnoresNonPositive(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(0)
	e.CopyAcross(-5)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("degenerate CopyAcross charged %v", got)
	}
}

func TestTouchScalesWithExcessRatio(t *testing.T) {
	// The paging cost for the same access grows as the footprint grows
	// further past the EPC limit.
	costAt := func(footprint int) time.Duration {
		clk := simclock.New()
		e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
		if err := e.Reserve(footprint); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
		e.Touch(32 << 20)
		return clk.Modeled()
	}
	just := costAt(UsableEPC + (5 << 20))
	far := costAt(UsableEPC + (100 << 20))
	if !(far > just && just > 0) {
		t.Fatalf("paging cost not monotone in excess: just=%v far=%v", just, far)
	}
}

func TestReserveRespectsHeapLimit(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(1), WithHeapLimit(1<<20))
	if err := e.Reserve(1 << 21); err == nil {
		t.Fatal("over-limit Reserve succeeded")
	}
	if err := e.Reserve(0); err == nil {
		t.Fatal("zero Reserve succeeded")
	}
	if err := e.Reserve(512 << 10); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := e.Footprint(); got != 512<<10 {
		t.Fatalf("Footprint = %d", got)
	}
}
