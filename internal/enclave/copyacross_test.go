package enclave

import (
	"testing"
	"time"

	"plinius/internal/simclock"
)

func TestCopyAcrossChargesPerLine(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(256) // 4 cache lines
	want := 4 * e.Profile().EPCCopyPerLine
	if got := clk.Modeled(); got != want {
		t.Fatalf("CopyAcross(256) charged %v, want %v", got, want)
	}
}

func TestCopyAcrossRoundsUpPartialLines(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(65) // 2 lines
	want := 2 * e.Profile().EPCCopyPerLine
	if got := clk.Modeled(); got != want {
		t.Fatalf("CopyAcross(65) charged %v, want %v", got, want)
	}
}

func TestCopyAcrossFreeWithoutHardwareSGX(t *testing.T) {
	clk := simclock.New()
	e := New(EmlSGXPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(1 << 20)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("simulation-mode CopyAcross charged %v", got)
	}
}

func TestCopyAcrossIgnoresNonPositive(t *testing.T) {
	clk := simclock.New()
	e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
	e.CopyAcross(0)
	e.CopyAcross(-5)
	if got := clk.Modeled(); got != 0 {
		t.Fatalf("degenerate CopyAcross charged %v", got)
	}
}

func TestTouchKneeAtEPCLimit(t *testing.T) {
	// The paging model is a sharp knee (Fig. 7): a cyclically streamed
	// working set misses on every page once it exceeds the usable EPC,
	// so the cost jumps from zero to pages*PageSwapCost at the limit
	// and then scales with the bytes touched, not with the excess.
	costAt := func(footprint, touch int) time.Duration {
		clk := simclock.New()
		e := New(SGXEmlPMProfile(), WithClock(clk), WithSeed(1))
		if err := e.Reserve(footprint); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
		e.Touch(touch)
		return clk.Modeled()
	}
	if got := costAt(UsableEPC, 32<<20); got != 0 {
		t.Fatalf("at the limit charged %v, want 0", got)
	}
	just := costAt(UsableEPC+(5<<20), 32<<20)
	far := costAt(UsableEPC+(100<<20), 32<<20)
	wantFaults := time.Duration((32<<20)/PageSize) * SGXEmlPMProfile().PageSwapCost
	if just != wantFaults || far != wantFaults {
		t.Fatalf("past-limit cost = %v / %v, want all-miss %v", just, far, wantFaults)
	}
	if big := costAt(UsableEPC+(5<<20), 64<<20); big <= just {
		t.Fatalf("paging cost not monotone in bytes touched: %v <= %v", big, just)
	}
}

func TestReserveRespectsHeapLimit(t *testing.T) {
	e := New(SGXEmlPMProfile(), WithSeed(1), WithHeapLimit(1<<20))
	if err := e.Reserve(1 << 21); err == nil {
		t.Fatal("over-limit Reserve succeeded")
	}
	if err := e.Reserve(0); err == nil {
		t.Fatal("zero Reserve succeeded")
	}
	if err := e.Reserve(512 << 10); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := e.Footprint(); got != 512<<10 {
		t.Fatalf("Footprint = %d", got)
	}
}
