package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
)

// SGX-style sealing: encrypt data under a key derived from the enclave
// identity so it can be stored outside the enclave and recovered only by
// the same enclave (paper §IV: "the encryption key ... can be securely
// sealed by the enclave for future use").

// ErrSealCorrupt is returned when unsealing fails authentication.
var ErrSealCorrupt = errors.New("enclave: sealed blob failed authentication")

const sealIVLen = 12

// Seal encrypts plaintext under the enclave's seal key using AES-GCM.
// The output layout is IV(12) || ciphertext || tag(16).
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal gcm: %w", err)
	}
	iv := make([]byte, sealIVLen)
	e.ReadRand(iv)
	out := make([]byte, 0, sealIVLen+len(plaintext)+gcm.Overhead())
	out = append(out, iv...)
	return gcm.Seal(out, iv, plaintext, nil), nil
}

// Unseal decrypts a blob produced by Seal on the same enclave.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, fmt.Errorf("unseal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("unseal gcm: %w", err)
	}
	if len(blob) < sealIVLen+gcm.Overhead() {
		return nil, ErrSealCorrupt
	}
	pt, err := gcm.Open(nil, blob[:sealIVLen], blob[sealIVLen:], nil)
	if err != nil {
		return nil, ErrSealCorrupt
	}
	return pt, nil
}
