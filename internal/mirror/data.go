package mirror

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mnist"
	"plinius/internal/obs"
	"plinius/internal/romulus"
)

// mBatchReads counts training rows loaded (and decrypted) from the PM
// data matrix by Batch — the data half of an iteration's restore
// traffic.
var mBatchReads = obs.Default().Counter("mirror_batch_reads_total",
	"Training rows loaded (and decrypted) from the PM data matrix by Batch.")

// PM-data module (paper §IV/§V): training data is loaded once from
// secondary storage into a persistent matrix in byte-addressable PM,
// row-encrypted with the data key. Each training iteration decrypts a
// batch of rows into enclave memory (Fig. 5, steps 5-6); after a crash
// the data is instantly available again without re-reading storage.
//
// Persistent layout (root slot RootData, values little-endian uint64):
//
//	data header: n | plainRowLen | storedRowLen | encrypted | dataOff
//	rows       : n contiguous storedRowLen records
//
// A row's plaintext is image floats ‖ one-hot label floats.

const (
	dataHdrN         = 0
	dataHdrPlainRow  = 8
	dataHdrStoredRow = 16
	dataHdrEncrypted = 24
	dataHdrDataOff   = 32
	dataHdrSize      = 40

	// loadChunkRows bounds the size of one data-loading transaction so
	// the volatile redo log stays small (§V: "this could be done in
	// batches if the training dataset is very large").
	loadChunkRows = 64
)

// DataMatrix is a handle to the persistent training-data matrix.
type DataMatrix struct {
	rom       *romulus.Romulus
	eng       *engine.Engine
	encl      *enclave.Enclave
	headOff   int
	n         int
	plainRow  int
	storedRow int
	encrypted bool
	dataOff   int
}

// Data errors.
var (
	ErrNoData      = errors.New("mirror: no persistent training data in PM")
	ErrDataCorrupt = errors.New("mirror: persistent training data is corrupt")
)

// DataOption configures a DataMatrix.
type DataOption func(*DataMatrix)

// WithDataEnclave charges EPC paging for batch plaintext staged in
// enclave memory.
func WithDataEnclave(e *enclave.Enclave) DataOption {
	return func(d *DataMatrix) { d.encl = e }
}

// WithPlaintextRows stores rows unencrypted. Only used by the Fig. 8
// baseline that measures the overhead of batched decryption.
func WithPlaintextRows() DataOption {
	return func(d *DataMatrix) { d.encrypted = false }
}

// DataExists reports whether a persistent data matrix is rooted.
func DataExists(rom *romulus.Romulus) bool {
	off, err := rom.Root(RootData)
	return err == nil && off != 0
}

// rowPlainLen is the plaintext bytes per row.
func rowPlainLen() int {
	return 4 * (mnist.Rows*mnist.Cols + mnist.Classes)
}

// LoadData encrypts (unless WithPlaintextRows) and copies the dataset
// into PM, chunking the copy across transactions to bound the redo log.
func LoadData(rom *romulus.Romulus, eng *engine.Engine, ds *mnist.Dataset, opts ...DataOption) (*DataMatrix, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	d := &DataMatrix{rom: rom, eng: eng, encrypted: true, plainRow: rowPlainLen()}
	for _, opt := range opts {
		opt(d)
	}
	d.n = ds.N
	if d.encrypted {
		d.storedRow = engine.SealedLen(d.plainRow)
	} else {
		d.storedRow = d.plainRow
	}

	// Allocate header + matrix in one transaction.
	err := rom.Update(func() error {
		hdr, err := rom.Alloc(dataHdrSize)
		if err != nil {
			return err
		}
		d.headOff = hdr
		dataOff, err := rom.Alloc(d.n * d.storedRow)
		if err != nil {
			return err
		}
		d.dataOff = dataOff
		enc := uint64(0)
		if d.encrypted {
			enc = 1
		}
		fields := []uint64{uint64(d.n), uint64(d.plainRow), uint64(d.storedRow), enc, uint64(dataOff)}
		for i, v := range fields {
			if err := rom.StoreUint64(hdr+8*i, v); err != nil {
				return err
			}
		}
		return rom.SetRoot(RootData, hdr)
	})
	if err != nil {
		return nil, fmt.Errorf("data alloc: %w", err)
	}

	// Copy rows in chunked transactions.
	for start := 0; start < d.n; start += loadChunkRows {
		end := start + loadChunkRows
		if end > d.n {
			end = d.n
		}
		err := rom.Update(func() error {
			for i := start; i < end; i++ {
				row, err := d.encodeRow(ds, i)
				if err != nil {
					return err
				}
				if err := rom.Store(d.dataOff+i*d.storedRow, row); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("data load rows %d-%d: %w", start, end, err)
		}
	}
	return d, nil
}

func (d *DataMatrix) encodeRow(ds *mnist.Dataset, i int) ([]byte, error) {
	plain := make([]float32, 0, mnist.Rows*mnist.Cols+mnist.Classes)
	plain = append(plain, ds.Image(i)...)
	plain = append(plain, ds.OneHot(i)...)
	raw := engine.FloatsToBytes(plain)
	if !d.encrypted {
		return raw, nil
	}
	sealed, err := d.eng.Seal(raw)
	if err != nil {
		return nil, fmt.Errorf("seal row %d: %w", i, err)
	}
	return sealed, nil
}

// OpenData attaches to the persistent data matrix after a restart.
func OpenData(rom *romulus.Romulus, eng *engine.Engine, opts ...DataOption) (*DataMatrix, error) {
	hdr, err := rom.Root(RootData)
	if err != nil {
		return nil, err
	}
	if hdr == 0 {
		return nil, ErrNoData
	}
	d := &DataMatrix{rom: rom, eng: eng, headOff: hdr}
	for _, opt := range opts {
		opt(d)
	}
	var fields [5]uint64
	for i := range fields {
		if fields[i], err = rom.LoadUint64(hdr + 8*i); err != nil {
			return nil, err
		}
	}
	d.n = int(fields[0])
	d.plainRow = int(fields[1])
	d.storedRow = int(fields[2])
	d.encrypted = fields[3] != 0
	d.dataOff = int(fields[4])
	if d.n <= 0 || d.plainRow != rowPlainLen() || d.storedRow < d.plainRow || d.dataOff <= 0 {
		return nil, fmt.Errorf("%w: header %+v", ErrDataCorrupt, fields)
	}
	return d, nil
}

// N returns the number of rows.
func (d *DataMatrix) N() int { return d.n }

// Encrypted reports whether rows are sealed.
func (d *DataMatrix) Encrypted() bool { return d.encrypted }

// StoredBytes returns the persistent footprint of the matrix.
func (d *DataMatrix) StoredBytes() int { return d.n * d.storedRow }

// Row decrypts (if sealed) row i into image and one-hot label vectors.
func (d *DataMatrix) Row(i int) (img, label []float32, err error) {
	if i < 0 || i >= d.n {
		return nil, nil, fmt.Errorf("%w: row %d of %d", ErrDataCorrupt, i, d.n)
	}
	stored := make([]byte, d.storedRow)
	if err := d.rom.Load(d.dataOff+i*d.storedRow, stored); err != nil {
		return nil, nil, err
	}
	raw := stored
	if d.encrypted {
		if raw, err = d.eng.Open(stored); err != nil {
			return nil, nil, fmt.Errorf("decrypt row %d: %w", i, err)
		}
	}
	if d.encl != nil {
		d.encl.Touch(len(raw))
	}
	vals, err := engine.BytesToFloats(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("row %d: %w", i, err)
	}
	imgLen := mnist.Rows * mnist.Cols
	if len(vals) != imgLen+mnist.Classes {
		return nil, nil, fmt.Errorf("%w: row %d has %d values", ErrDataCorrupt, i, len(vals))
	}
	return vals[:imgLen], vals[imgLen:], nil
}

// Reseal re-encrypts every row under newEng's data key and switches the
// matrix to it — the data half of key rotation. Rows are rewritten in
// chunked durable transactions (like LoadData), so each chunk flips
// atomically. Callers that must survive a crash mid-rotation persist a
// rotation marker first and use ResealFrom with the marker's Advance,
// so the torn boundary is always recorded (see BeginRotation).
// Plaintext matrices (the Fig. 8 baseline) have nothing to re-seal.
func (d *DataMatrix) Reseal(newEng *engine.Engine) error {
	return d.ResealFrom(newEng, 0, nil)
}

// ResealFrom re-encrypts rows [start, N) under newEng's key, calling
// mark (when non-nil) with the next unresealed row index inside each
// chunk's transaction — chunk and cursor commit atomically, which is
// what makes a crash at any point recoverable: rows below the recorded
// cursor are under the new key, rows at or above it under the old.
// Rows below start are assumed already resealed (the crash-recovery
// resume path). On success the matrix switches to newEng.
func (d *DataMatrix) ResealFrom(newEng *engine.Engine, start int, mark func(next int) error) error {
	if !d.encrypted {
		d.eng = newEng
		return nil
	}
	if start < 0 || start > d.n {
		return fmt.Errorf("%w: reseal start %d of %d", ErrDataCorrupt, start, d.n)
	}
	stored := make([]byte, d.storedRow)
	for ; start < d.n; start += loadChunkRows {
		end := start + loadChunkRows
		if end > d.n {
			end = d.n
		}
		chunkStart := start
		err := d.rom.Update(func() error {
			for i := chunkStart; i < end; i++ {
				if err := d.rom.Load(d.dataOff+i*d.storedRow, stored); err != nil {
					return err
				}
				plain, err := d.eng.Open(stored)
				if err != nil {
					return fmt.Errorf("reseal: decrypt row %d: %w", i, err)
				}
				resealed, err := newEng.Seal(plain)
				if err != nil {
					return fmt.Errorf("reseal: encrypt row %d: %w", i, err)
				}
				if err := d.rom.Store(d.dataOff+i*d.storedRow, resealed); err != nil {
					return err
				}
			}
			if mark != nil {
				return mark(end)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("data reseal rows %d-%d: %w", chunkStart, end, err)
		}
	}
	d.eng = newEng
	return nil
}

// batchParallelBytes is the stored-batch size below which Batch stays
// sequential: rows are small, so the fan-out pays off earlier than
// model mirroring's threshold.
const batchParallelBytes = 32 << 10

// Batch samples a training batch, decrypting rows from PM into enclave
// memory (Fig. 5 steps 5-6; Algorithm 2 decrypt_pm_data).
//
// All row indices are drawn from rng on the calling goroutine first,
// so the sampled batch is identical to the sequential path no matter
// how the work is then distributed; the per-row load → decrypt →
// decode fans out across a bounded worker pool, each worker staging
// through its own PM read buffer and engine Scratch (the MirrorIn
// discipline), writing disjoint row slices of x and y.
func (d *DataMatrix) Batch(rng *rand.Rand, size int) (x, y []float32, err error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("%w: batch size %d", mnist.ErrBadBatch, size)
	}
	imgLen := mnist.Rows * mnist.Cols
	x = make([]float32, size*imgLen)
	y = make([]float32, size*mnist.Classes)
	idxs := make([]int, size)
	for b := range idxs {
		idxs[b] = rng.Intn(d.n)
	}

	// fetch loads row idxs[b] into batch position b through the
	// worker-owned buffers. Plaintext decodes straight into rowBuf;
	// Touch accounting matches Row's (plaintext bytes staged in
	// enclave memory).
	fetch := func(sc *engine.Scratch, stored []byte, rowBuf []float32, b int) error {
		i := idxs[b]
		if err := d.rom.Load(d.dataOff+i*d.storedRow, stored); err != nil {
			return err
		}
		if d.encrypted {
			if err := d.eng.OpenFloatsWith(sc, rowBuf, stored); err != nil {
				return fmt.Errorf("decrypt row %d: %w", i, err)
			}
		} else {
			vals, err := engine.BytesToFloats(stored)
			if err != nil {
				return fmt.Errorf("row %d: %w", i, err)
			}
			copy(rowBuf, vals)
		}
		if d.encl != nil {
			d.encl.Touch(d.plainRow)
		}
		copy(x[b*imgLen:(b+1)*imgLen], rowBuf[:imgLen])
		copy(y[b*mnist.Classes:(b+1)*mnist.Classes], rowBuf[imgLen:])
		return nil
	}

	workers := mirrorWorkersAt(size, size*d.storedRow, batchParallelBytes)
	if workers <= 1 {
		var sc *engine.Scratch
		if d.encrypted {
			sc = d.eng.AcquireScratch()
			defer d.eng.ReleaseScratch(sc)
		}
		stored := make([]byte, d.storedRow)
		rowBuf := make([]float32, d.plainRow/4)
		for b := 0; b < size; b++ {
			if err := fetch(sc, stored, rowBuf, b); err != nil {
				return nil, nil, err
			}
		}
	} else {
		var (
			errMu    sync.Mutex
			firstErr error
		)
		idx := make(chan int, size)
		for b := 0; b < size; b++ {
			idx <- b
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sc *engine.Scratch
				if d.encrypted {
					sc = d.eng.AcquireScratch()
					defer d.eng.ReleaseScratch(sc)
				}
				stored := make([]byte, d.storedRow)
				rowBuf := make([]float32, d.plainRow/4)
				for b := range idx {
					errMu.Lock()
					failed := firstErr != nil
					errMu.Unlock()
					if failed {
						return
					}
					if err := fetch(sc, stored, rowBuf, b); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, nil, firstErr
		}
	}
	mBatchReads.Add(float64(size))
	return x, y, nil
}
