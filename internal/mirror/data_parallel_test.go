package mirror

import (
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"

	"plinius/internal/mnist"
)

// TestBatchParallelWhileTraining races Batch's forced row fan-out
// against the darknet kernel pool running TrainBatch on the previous
// batch — the two worker pools that overlap in a pipelined training
// iteration. They must share no mutable state (engine scratches are
// per-worker, parallelFor pools are per-call); the -race CI shard
// enforces it.
func TestBatchParallelWhileTraining(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(80, 23)
	dm, err := LoadData(rom, eng, ds)
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	forceWorkers(t, 4)
	net := testNet(t, 5)
	batch := net.Config.Batch

	// Seed the trainer with one batch, then keep fetching and training
	// concurrently for a few rounds.
	x, y, err := dm.Batch(mrand.New(mrand.NewSource(41)), 32)
	if err != nil {
		t.Fatalf("seed Batch: %v", err)
	}
	var wg sync.WaitGroup
	var fetchErr, trainErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		rng := mrand.New(mrand.NewSource(42))
		for i := 0; i < 6; i++ {
			if _, _, err := dm.Batch(rng, 32); err != nil {
				fetchErr = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		imgLen := mnist.Rows * mnist.Cols
		for i := 0; i < 6; i++ {
			if _, err := net.TrainBatch(x[:batch*imgLen], y[:batch*mnist.Classes], batch); err != nil {
				trainErr = err
				return
			}
		}
	}()
	wg.Wait()
	if fetchErr != nil {
		t.Fatalf("Batch: %v", fetchErr)
	}
	if trainErr != nil {
		t.Fatalf("TrainBatch: %v", trainErr)
	}
}

// expectedBatch reconstructs the batch Batch must produce for a given
// rng seed: indices are drawn on the caller in order, then rows are
// fetched — so a cloned rng plus Row gives the exact reference.
func expectedBatch(t *testing.T, dm *DataMatrix, seed int64, size int) (x, y []float32) {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	imgLen := mnist.Rows * mnist.Cols
	x = make([]float32, size*imgLen)
	y = make([]float32, size*mnist.Classes)
	for b := 0; b < size; b++ {
		img, label, err := dm.Row(rng.Intn(dm.N()))
		if err != nil {
			t.Fatalf("Row: %v", err)
		}
		copy(x[b*imgLen:], img)
		copy(y[b*mnist.Classes:], label)
	}
	return x, y
}

// TestBatchParallelMatchesSerial: the sampled batch is identical no
// matter how many workers decrypt it — indices are pre-drawn on the
// caller, so fan-out must not change what is sampled, only who loads
// it. Runs sealed and plaintext matrices across worker counts (the
// batch is large enough to clear batchParallelBytes, and
// forceMirrorWorkers drives real fan-out even on single-core machines).
func TestBatchParallelMatchesSerial(t *testing.T) {
	for _, enc := range []bool{true, false} {
		_, rom := testHeap(t, 16<<20)
		eng := testEngine(t)
		ds := mnist.Synthetic(120, 21)
		var opts []DataOption
		if !enc {
			opts = append(opts, WithPlaintextRows())
		}
		dm, err := LoadData(rom, eng, ds, opts...)
		if err != nil {
			t.Fatalf("LoadData: %v", err)
		}
		const seed, size = 31, 32
		if size*dm.storedRow < batchParallelBytes {
			t.Fatalf("batch too small to exercise fan-out: %d < %d",
				size*dm.storedRow, batchParallelBytes)
		}
		wantX, wantY := expectedBatch(t, dm, seed, size)
		for _, workers := range []int{1, 2, 3, 8} {
			forceWorkers(t, workers)
			x, y, err := dm.Batch(mrand.New(mrand.NewSource(seed)), size)
			if err != nil {
				t.Fatalf("enc=%v workers=%d Batch: %v", enc, workers, err)
			}
			for i := range wantX {
				if x[i] != wantX[i] {
					t.Fatalf("enc=%v workers=%d x[%d]: %v, want %v", enc, workers, i, x[i], wantX[i])
				}
			}
			for i := range wantY {
				if y[i] != wantY[i] {
					t.Fatalf("enc=%v workers=%d y[%d]: %v, want %v", enc, workers, i, y[i], wantY[i])
				}
			}
		}
	}
}

// TestBatchConcurrent: Batch is safe to call from multiple goroutines
// (each with its own rng) while the internal row fan-out is active —
// the matrix is read-only and every worker stages through its own
// scratch. Exercised by the -race CI shard.
func TestBatchConcurrent(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(90, 22)
	dm, err := LoadData(rom, eng, ds)
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	forceWorkers(t, 4)
	const goroutines, size = 4, 32
	// Per-goroutine reference for the first draw, computed serially up
	// front; later draws advance each goroutine's private rng.
	wantX := make([][]float32, goroutines)
	wantY := make([][]float32, goroutines)
	for g := range wantX {
		wantX[g], wantY[g] = expectedBatch(t, dm, int64(100+g), size)
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(int64(100 + g)))
			for iter := 0; iter < 3; iter++ {
				x, y, err := dm.Batch(rng, size)
				if err != nil {
					errs[g] = fmt.Errorf("iter %d: %w", iter, err)
					return
				}
				if len(x) != size*mnist.Rows*mnist.Cols || len(y) != size*mnist.Classes {
					errs[g] = fmt.Errorf("iter %d: batch shapes %d/%d", iter, len(x), len(y))
					return
				}
				if iter == 0 {
					for i := range wantX[g] {
						if x[i] != wantX[g][i] {
							errs[g] = fmt.Errorf("x[%d]: %v, want %v", i, x[i], wantX[g][i])
							return
						}
					}
					for i := range wantY[g] {
						if y[i] != wantY[g][i] {
							errs[g] = fmt.Errorf("y[%d]: %v, want %v", i, y[i], wantY[g][i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
