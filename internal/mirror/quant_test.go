package mirror

import (
	"errors"
	"math"
	"testing"

	"plinius/internal/darknet"
)

// TestQuantPublishRestoreRoundTrip publishes a model with the int8
// variant, restores the variant into a quantized clone, and checks the
// restored weights are exactly the symmetric quantization of the
// published fp32 parameters, the fp32 side buffers are bit-exact, and
// the sealed payload is well under the 30%-of-fp32 budget.
func TestQuantPublishRestoreRoundTrip(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)
	net.Iteration = 42

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if _, err := p.PublishOut(eng, net, WithQuantized()); err != nil {
		t.Fatalf("PublishOut quantized: %v", err)
	}
	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	if !pin.HasQuant() {
		t.Fatal("HasQuant = false after quantized publish")
	}
	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}
	qm, err := pin.OpenQuant(eng)
	if err != nil {
		t.Fatalf("pin.OpenQuant: %v", err)
	}
	if ratio := float64(qm.SealedBytes()) / float64(m.SealedBytes()); ratio > 0.30 {
		t.Fatalf("quant sealed payload is %.1f%% of fp32 (%d / %d), want <= 30%%",
			100*ratio, qm.SealedBytes(), m.SealedBytes())
	}

	qnet, err := darknet.QuantizeNetwork(testNet(t, 99)) // different seed: every byte must come from PM
	if err != nil {
		t.Fatalf("QuantizeNetwork: %v", err)
	}
	iter, err := qm.RestoreInto(qnet)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	if iter != 42 || qnet.Iteration != 42 {
		t.Fatalf("restored iteration %d/%d, want 42", iter, qnet.Iteration)
	}
	for li, l := range net.Layers {
		params := l.Params()
		if len(params) == 0 {
			continue
		}
		ql, ok := qnet.Layers[li].(darknet.QuantWeightLayer)
		if !ok {
			t.Fatalf("layer %d: restored clone is not a QuantWeightLayer", li)
		}
		wantQ, wantScale := darknet.QuantizeWeights(params[0])
		if got := ql.WeightScale(); got != wantScale {
			t.Fatalf("layer %d scale: %v, want %v", li, got, wantScale)
		}
		gotQ := ql.QuantWeights()
		if len(gotQ) != len(wantQ) {
			t.Fatalf("layer %d: %d codes, want %d", li, len(gotQ), len(wantQ))
		}
		for i := range wantQ {
			if gotQ[i] != wantQ[i] {
				t.Fatalf("layer %d code[%d]: %d, want %d", li, i, gotQ[i], wantQ[i])
			}
		}
		qparams := qnet.Layers[li].Params()
		for bi := 1; bi < len(params); bi++ {
			for i := range params[bi] {
				if qparams[bi-1][i] != params[bi][i] {
					t.Fatalf("layer %d fp32 buffer %d[%d]: %v, want %v",
						li, bi, i, qparams[bi-1][i], params[bi][i])
				}
			}
		}
	}
}

// TestQuantVariantAbsentWithoutOption: a plain publish carries no
// quantized variant; OpenQuant fails with ErrNoQuant and HasQuant is
// false, while the fp32 snapshot opens normally.
func TestQuantVariantAbsentWithoutOption(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	publishNet(t, p, eng, net)
	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	if pin.HasQuant() {
		t.Fatal("HasQuant = true after fp32-only publish")
	}
	if _, err := pin.OpenQuant(eng); !errors.Is(err, ErrNoQuant) {
		t.Fatalf("OpenQuant = %v, want ErrNoQuant", err)
	}
	if _, err := pin.Open(eng); err != nil {
		t.Fatalf("fp32 Open: %v", err)
	}
}

// TestQuantRegionReusedAcrossVersions: same-shape quantized
// republishes recycle slots without abandoning any region to the bump
// allocator, and the latest version restores its own weights.
func TestQuantRegionReusedAcrossVersions(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	// Fill every slot with quantized versions, then keep publishing so
	// slots (and their quant regions) recycle.
	for i := 0; i < maxPubSlots+3; i++ {
		perturb(net, float32(i+1))
		net.Iteration = i + 1
		if _, err := p.PublishOut(eng, net, WithQuantized()); err != nil {
			t.Fatalf("PublishOut %d: %v", i, err)
		}
	}
	if p.LeakedBytes() != 0 {
		t.Fatalf("LeakedBytes = %d after same-shape republishes, want 0", p.LeakedBytes())
	}

	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	qm, err := pin.OpenQuant(eng)
	if err != nil {
		t.Fatalf("OpenQuant: %v", err)
	}
	qnet, err := darknet.QuantizeNetwork(testNet(t, 7))
	if err != nil {
		t.Fatalf("QuantizeNetwork: %v", err)
	}
	iter, err := qm.RestoreInto(qnet)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	if iter != maxPubSlots+3 {
		t.Fatalf("restored iteration %d, want %d", iter, maxPubSlots+3)
	}
	// Spot-check the restored weights against the final fp32 state.
	l0 := net.Layers[0].Params()[0]
	ql := qnet.Layers[0].(darknet.QuantWeightLayer)
	wantQ, wantScale := darknet.QuantizeWeights(l0)
	if ql.WeightScale() != wantScale {
		t.Fatalf("scale %v, want %v", ql.WeightScale(), wantScale)
	}
	for i := range wantQ {
		if ql.QuantWeights()[i] != wantQ[i] {
			t.Fatalf("code[%d]: %d, want %d", i, ql.QuantWeights()[i], wantQ[i])
		}
	}
}

// TestQuantRegionReusedOnShapeShrink: recycling a slot for a smaller
// network rewrites both the fp32 and quant regions in place (counted by
// ReusedBytes) rather than abandoning them, and the restored variant
// carries the new shape's weights.
func TestQuantRegionReusedOnShapeShrink(t *testing.T) {
	_, rom := testHeap(t, 64<<20)
	eng := testEngine(t)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	big := testNetShape(t, 2, 8)
	for i := 0; i < maxPubSlots; i++ {
		perturb(big, float32(i+1))
		big.Iteration = i + 1
		if _, err := p.PublishOut(eng, big, WithQuantized()); err != nil {
			t.Fatalf("PublishOut big %d: %v", i, err)
		}
	}
	small := testNetShape(t, 1, 4)
	small.Iteration = 100
	if _, err := p.PublishOut(eng, small, WithQuantized()); err != nil {
		t.Fatalf("PublishOut small: %v", err)
	}
	if p.LeakedBytes() != 0 {
		t.Fatalf("LeakedBytes = %d after shrink republish, want 0", p.LeakedBytes())
	}
	if p.ReusedBytes() == 0 {
		t.Fatal("ReusedBytes = 0: the shrunk regions were not rewritten in place")
	}

	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	qm, err := pin.OpenQuant(eng)
	if err != nil {
		t.Fatalf("OpenQuant: %v", err)
	}
	qnet, err := darknet.QuantizeNetwork(testNetShape(t, 1, 4))
	if err != nil {
		t.Fatalf("QuantizeNetwork: %v", err)
	}
	iter, err := qm.RestoreInto(qnet)
	if err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	if iter != 100 {
		t.Fatalf("restored iteration %d, want 100", iter)
	}
	wantQ, wantScale := darknet.QuantizeWeights(small.Layers[0].Params()[0])
	ql := qnet.Layers[0].(darknet.QuantWeightLayer)
	if ql.WeightScale() != wantScale {
		t.Fatalf("scale %v, want %v", ql.WeightScale(), wantScale)
	}
	for i := range wantQ {
		if ql.QuantWeights()[i] != wantQ[i] {
			t.Fatalf("code[%d]: %d, want %d", i, ql.QuantWeights()[i], wantQ[i])
		}
	}
}

// TestQuantRestoreBound: every dequantized weight restored from PM is
// within half a quantization step of the published fp32 value — the
// end-to-end form of the codec's round-trip bound, across seal, PM
// storage, and open.
func TestQuantRestoreBound(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 3)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if _, err := p.PublishOut(eng, net, WithQuantized()); err != nil {
		t.Fatalf("PublishOut: %v", err)
	}
	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	qm, err := pin.OpenQuant(eng)
	if err != nil {
		t.Fatalf("OpenQuant: %v", err)
	}
	qnet, err := darknet.QuantizeNetwork(testNet(t, 4))
	if err != nil {
		t.Fatalf("QuantizeNetwork: %v", err)
	}
	if _, err := qm.RestoreInto(qnet); err != nil {
		t.Fatalf("RestoreInto: %v", err)
	}
	for li, l := range net.Layers {
		params := l.Params()
		if len(params) == 0 {
			continue
		}
		ql := qnet.Layers[li].(darknet.QuantWeightLayer)
		scale, codes := ql.WeightScale(), ql.QuantWeights()
		bound := float64(scale)/2 + float64(scale)*1e-6
		for i, w := range params[0] {
			if d := math.Abs(float64(w) - float64(scale)*float64(codes[i])); d > bound {
				t.Fatalf("layer %d weight %d: |%v - %v*%d| = %v > %v", li, i, w, scale, codes[i], d, bound)
			}
		}
	}
}
