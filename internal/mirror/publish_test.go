package mirror

import (
	"errors"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/engine"
)

// publishNet publishes net and fails the test on error.
func publishNet(t *testing.T, p *Publication, eng *engine.Engine, net *darknet.Network) uint64 {
	t.Helper()
	ver, err := p.PublishOut(eng, net)
	if err != nil {
		t.Fatalf("PublishOut: %v", err)
	}
	return ver
}

func TestPublishVersionsAreMonotonic(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if got := p.LatestVersion(); got != 0 {
		t.Fatalf("fresh publication latest = %d, want 0", got)
	}
	if _, err := p.Pin(0); !errors.Is(err, ErrNoPublished) {
		t.Fatalf("Pin on empty publication = %v, want ErrNoPublished", err)
	}
	for want := uint64(1); want <= 5; want++ {
		net.Iteration = int(want) * 10
		ver := publishNet(t, p, eng, net)
		if ver != want {
			t.Fatalf("published version %d, want %d", ver, want)
		}
		if p.LatestVersion() != want {
			t.Fatalf("latest %d, want %d", p.LatestVersion(), want)
		}
	}
}

func TestPinRestoresExactVersionDespiteLaterPublishes(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	net.Iteration = 7
	v1 := publishNet(t, p, eng, net)
	want := cloneParams(net)

	pin, err := p.Pin(v1)
	if err != nil {
		t.Fatalf("Pin(%d): %v", v1, err)
	}
	defer pin.Release()

	// Publish several later versions with perturbed parameters; the
	// pinned slot must never be recycled under the pin.
	for i := 0; i < maxPubSlots+2; i++ {
		perturb(net, float32(i+1))
		net.Iteration = 100 + i
		publishNet(t, p, eng, net)
	}

	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}
	restored := testNet(t, 2)
	iter, err := m.MirrorIn(restored)
	if err != nil {
		t.Fatalf("MirrorIn pinned: %v", err)
	}
	if iter != 7 {
		t.Fatalf("pinned restore iteration %d, want 7", iter)
	}
	got := cloneParams(restored)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pinned snapshot mutated at param %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestReleaseAllowsSlotRecycling(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	v1 := publishNet(t, p, eng, net)
	pin, err := p.Pin(v1)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	pin.Release()
	pin.Release() // idempotent
	if _, err := pin.Open(eng); !errors.Is(err, ErrPinReleased) {
		t.Fatalf("Open after Release = %v, want ErrPinReleased", err)
	}
	// With the pin released, many further publishes must keep cycling
	// through the bounded slot table without error.
	for i := 0; i < 3*maxPubSlots; i++ {
		publishNet(t, p, eng, net)
	}
	if got := len(p.slots); got > maxPubSlots {
		t.Fatalf("slot table grew to %d, cap %d", got, maxPubSlots)
	}
}

func TestPublicationSurvivesReopen(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	net.Iteration = 42
	ver := publishNet(t, p, eng, net)

	// Re-attach (as Recover does) and restore the published version.
	p2, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("re-OpenPublication: %v", err)
	}
	if p2.LatestVersion() != ver {
		t.Fatalf("reopened latest %d, want %d", p2.LatestVersion(), ver)
	}
	pin, err := p2.Pin(0)
	if err != nil {
		t.Fatalf("Pin latest: %v", err)
	}
	defer pin.Release()
	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}
	restored := testNet(t, 3)
	iter, err := m.MirrorIn(restored)
	if err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	if iter != 42 {
		t.Fatalf("restored iteration %d, want 42", iter)
	}
	if !netsEqual(net, restored) {
		t.Fatal("reopened publication restored different parameters")
	}
}

func TestAllSlotsPinnedErrors(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	var pins []*Pin
	for i := 0; i < maxPubSlots; i++ {
		ver := publishNet(t, p, eng, net)
		pin, err := p.Pin(ver)
		if err != nil {
			t.Fatalf("Pin %d: %v", ver, err)
		}
		pins = append(pins, pin)
	}
	if _, err := p.PublishOut(eng, net); !errors.Is(err, ErrSlotsPinned) {
		t.Fatalf("PublishOut with all slots pinned = %v, want ErrSlotsPinned", err)
	}
	pins[0].Release()
	if _, err := p.PublishOut(eng, net); err != nil {
		t.Fatalf("PublishOut after release: %v", err)
	}
	for _, pin := range pins[1:] {
		pin.Release()
	}
}

// cloneParams flattens every parameter buffer into one slice.
func cloneParams(net *darknet.Network) []float32 {
	var out []float32
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			out = append(out, p...)
		}
	}
	return out
}

// perturb nudges every parameter so successive publishes differ.
func perturb(net *darknet.Network, delta float32) {
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			for i := range p {
				p[i] += delta * 1e-3
			}
		}
	}
}
