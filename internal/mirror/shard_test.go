package mirror

import (
	"errors"
	mrand "math/rand"
	"strings"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/romulus"
)

// TestMirrorInRangeRestoresExactSlice: restoring a shard sub-network
// from a published snapshot installs exactly the parameters the full
// restore installs for that layer range, and the shared iteration
// counter.
func TestMirrorInRangeRestoresExactSlice(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)
	net.Iteration = 42

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	publishNet(t, p, eng, net)
	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}

	// Full restore reference.
	full := testNet(t, 2)
	if _, err := m.MirrorIn(full); err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}

	// Restore each shard of a per-layer plan into a fresh network and
	// compare the slice against the reference.
	fresh := testNet(t, 3)
	plan, err := fresh.PlanShards(1, 1) // one layer per shard
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	for _, r := range plan {
		sub, err := fresh.Shard(r)
		if err != nil {
			t.Fatalf("Shard(%v): %v", r, err)
		}
		iter, err := m.MirrorInRange(sub, fresh.ParamLayersBefore(r.From))
		if err != nil {
			t.Fatalf("MirrorInRange(%v): %v", r, err)
		}
		if iter != 42 || sub.Iteration != 42 {
			t.Fatalf("MirrorInRange(%v) iteration = %d/%d, want 42", r, iter, sub.Iteration)
		}
	}
	if !netsEqual(full, fresh) {
		t.Fatal("sharded range restores do not reproduce the full restore")
	}
}

// TestMirrorInRangeShapeMismatch rejects a shard restored at the wrong
// node offset.
func TestMirrorInRangeShapeMismatch(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net := testNet(t, 1)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	publishNet(t, p, eng, net)
	pin, err := p.Pin(0)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}
	if _, err := m.MirrorInRange(net, 1); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("offset full restore = %v, want ErrShapeMismatch", err)
	}
}

// TestShardManifestRoundTripAndReuse: the manifest persists across a
// publication re-open (crash consistency), rewrites in place when the
// new plan fits, and reallocates when it grows.
func TestShardManifestRoundTripAndReuse(t *testing.T) {
	dev, rom := testHeap(t, 32<<20)
	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if m, err := p.ShardManifest(); err != nil || m != nil {
		t.Fatalf("fresh manifest = %v, %v; want nil, nil", m, err)
	}
	if err := p.RecordShardManifest(nil); err == nil {
		t.Fatal("RecordShardManifest(nil) accepted an empty plan")
	}

	want := []ShardManifestEntry{{From: 0, To: 2}, {From: 2, To: 3}, {From: 3, To: 5}}
	if err := p.RecordShardManifest(want); err != nil {
		t.Fatalf("RecordShardManifest: %v", err)
	}

	// Re-open after a crash: the manifest must survive intact.
	dev.Crash()
	rom2, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("romulus.Open after crash: %v", err)
	}
	p2, err := OpenPublication(rom2)
	if err != nil {
		t.Fatalf("OpenPublication after crash: %v", err)
	}
	got, err := p2.ShardManifest()
	if err != nil {
		t.Fatalf("ShardManifest after crash: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("manifest after crash has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("manifest[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// A smaller plan rewrites the same region in place.
	off1, _ := rom2.LoadUint64(p2.hdrOff + pubHdrManifestOff)
	smaller := []ShardManifestEntry{{From: 0, To: 5}}
	if err := p2.RecordShardManifest(smaller); err != nil {
		t.Fatalf("RecordShardManifest smaller: %v", err)
	}
	off2, _ := rom2.LoadUint64(p2.hdrOff + pubHdrManifestOff)
	if off1 != off2 {
		t.Fatalf("smaller manifest moved the region: %d -> %d", off1, off2)
	}
	if got, _ := p2.ShardManifest(); len(got) != 1 || got[0] != smaller[0] {
		t.Fatalf("smaller manifest read back %v", got)
	}

	// A larger plan outgrows the region and reallocates.
	larger := []ShardManifestEntry{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5}}
	if err := p2.RecordShardManifest(larger); err != nil {
		t.Fatalf("RecordShardManifest larger: %v", err)
	}
	off3, _ := rom2.LoadUint64(p2.hdrOff + pubHdrManifestOff)
	if off3 == off1 {
		t.Fatal("outgrown manifest was not reallocated")
	}
	if got, _ := p2.ShardManifest(); len(got) != len(larger) {
		t.Fatalf("larger manifest read back %d entries, want %d", len(got), len(larger))
	}
}

// TestShardManifestIndependentOfPublishes: publishing more versions
// never disturbs the recorded manifest.
func TestShardManifestIndependentOfPublishes(t *testing.T) {
	_, rom := testHeap(t, 32<<20)
	eng := testEngine(t)
	net, err := darknet.ParseConfig(strings.NewReader(darknet.MNISTConfig(2, 4, 8)),
		mrand.New(mrand.NewSource(5)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	want := []ShardManifestEntry{{From: 0, To: 1}, {From: 1, To: 3}}
	if err := p.RecordShardManifest(want); err != nil {
		t.Fatalf("RecordShardManifest: %v", err)
	}
	for i := 0; i < 4; i++ {
		net.Iteration = i + 1
		publishNet(t, p, eng, net)
	}
	got, err := p.ShardManifest()
	if err != nil {
		t.Fatalf("ShardManifest: %v", err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("manifest after publishes = %v, want %v", got, want)
	}
}
