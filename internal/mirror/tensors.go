package mirror

import (
	"errors"
	"fmt"
	"time"
)

// Generic tensor mirroring — the paper's §IV generality claim: "Other
// ML libraries could be integrated into the PLINIUS architecture ...
// we applied our mirroring mechanism within Tensorflow ... our
// implementation creates mirror copies of tensors in PM and restores
// them in enclave memory". TensorStore mirrors an arbitrary collection
// of named float32 tensors with the same sealed-buffer layout and
// durable-transaction guarantees as the model mirror, so any framework
// whose state reduces to float tensors can use Plinius persistence.

// Persistent layout (root slot RootTensors, little-endian uint64):
//
//	header : count | firstEntryOff
//	entry  : nextOff | nameOff | nameLen | bufOff | sealedLen | elems
//	name   : raw bytes
//	buf    : sealed tensor (IV ‖ ciphertext ‖ MAC)
const (
	// RootTensors is the Romulus root slot of the tensor store.
	RootTensors = 2

	tensHdrCount = 0
	tensHdrFirst = 8
	tensHdrSize  = 16

	entNext      = 0
	entNameOff   = 8
	entNameLen   = 16
	entBufOff    = 24
	entSealedLen = 32
	entElems     = 40
	entSize      = 48

	maxTensorName = 256
)

// Tensor-store errors.
var (
	ErrNoTensors     = errors.New("mirror: no tensor store in PM")
	ErrTensorUnknown = errors.New("mirror: unknown tensor name")
	ErrTensorShape   = errors.New("mirror: tensor size mismatch")
	ErrTensorName    = errors.New("mirror: invalid tensor name")
	ErrTensorDup     = errors.New("mirror: duplicate tensor name")
)

type tensorEntry struct {
	name      string
	bufOff    int
	sealedLen int
	elems     int
}

// TensorSpec declares one tensor at allocation time.
type TensorSpec struct {
	Name  string
	Elems int
}

// TensorStore is a handle to a persistent collection of sealed tensors.
type TensorStore struct {
	rom     romAPI
	eng     engAPI
	headOff int
	entries map[string]tensorEntry
	order   []string

	lastSeal time.Duration
	lastOpen time.Duration
}

// romAPI and engAPI are the narrow interfaces TensorStore needs; they
// are satisfied by *romulus.Romulus and *engine.Engine and keep the
// store testable.
type romAPI interface {
	Update(func() error) error
	Alloc(int) (int, error)
	Store(int, []byte) error
	Load(int, []byte) error
	StoreUint64(int, uint64) error
	LoadUint64(int) (uint64, error)
	SetRoot(int, int) error
	Root(int) (int, error)
}

type engAPI interface {
	SealFloatsScratch([]float32) ([]byte, error)
	OpenFloatsInto([]float32, []byte) error
}

// TensorsExist reports whether a tensor store is rooted in the heap.
func TensorsExist(rom romAPI) bool {
	off, err := rom.Root(RootTensors)
	return err == nil && off != 0
}

// AllocTensors allocates a persistent store for the given tensor specs
// in one durable transaction.
func AllocTensors(rom romAPI, eng engAPI, specs []TensorSpec) (*TensorStore, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no tensors", ErrTensorShape)
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" || len(s.Name) > maxTensorName {
			return nil, fmt.Errorf("%w: %q", ErrTensorName, s.Name)
		}
		if s.Elems <= 0 {
			return nil, fmt.Errorf("%w: %q has %d elements", ErrTensorShape, s.Name, s.Elems)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("%w: %q", ErrTensorDup, s.Name)
		}
		seen[s.Name] = true
	}
	ts := &TensorStore{
		rom:     rom,
		eng:     eng,
		entries: make(map[string]tensorEntry, len(specs)),
	}
	err := rom.Update(func() error {
		hdr, err := rom.Alloc(tensHdrSize)
		if err != nil {
			return err
		}
		ts.headOff = hdr
		prev := -1
		first := 0
		for _, s := range specs {
			entOff, err := rom.Alloc(entSize)
			if err != nil {
				return err
			}
			nameOff, err := rom.Alloc(len(s.Name))
			if err != nil {
				return err
			}
			sealedLen := sealedLenFor(s.Elems)
			bufOff, err := rom.Alloc(sealedLen)
			if err != nil {
				return err
			}
			fields := map[int]uint64{
				entNext:      0,
				entNameOff:   uint64(nameOff),
				entNameLen:   uint64(len(s.Name)),
				entBufOff:    uint64(bufOff),
				entSealedLen: uint64(sealedLen),
				entElems:     uint64(s.Elems),
			}
			for rel, v := range fields {
				if err := rom.StoreUint64(entOff+rel, v); err != nil {
					return err
				}
			}
			if err := rom.Store(nameOff, []byte(s.Name)); err != nil {
				return err
			}
			if prev >= 0 {
				if err := rom.StoreUint64(prev+entNext, uint64(entOff)); err != nil {
					return err
				}
			} else {
				first = entOff
			}
			prev = entOff
			ts.entries[s.Name] = tensorEntry{
				name: s.Name, bufOff: bufOff, sealedLen: sealedLen, elems: s.Elems,
			}
			ts.order = append(ts.order, s.Name)
		}
		if err := rom.StoreUint64(hdr+tensHdrCount, uint64(len(specs))); err != nil {
			return err
		}
		if err := rom.StoreUint64(hdr+tensHdrFirst, uint64(first)); err != nil {
			return err
		}
		return rom.SetRoot(RootTensors, hdr)
	})
	if err != nil {
		return nil, fmt.Errorf("tensor alloc: %w", err)
	}
	return ts, nil
}

// sealedLenFor mirrors engine.SealedLen(4*elems) without importing the
// constant through the narrow interface.
func sealedLenFor(elems int) int { return 4*elems + 28 }

// OpenTensors attaches to an existing tensor store after a restart.
func OpenTensors(rom romAPI, eng engAPI) (*TensorStore, error) {
	hdr, err := rom.Root(RootTensors)
	if err != nil {
		return nil, err
	}
	if hdr == 0 {
		return nil, ErrNoTensors
	}
	ts := &TensorStore{
		rom:     rom,
		eng:     eng,
		headOff: hdr,
		entries: make(map[string]tensorEntry),
	}
	count, err := rom.LoadUint64(hdr + tensHdrCount)
	if err != nil {
		return nil, err
	}
	next, err := rom.LoadUint64(hdr + tensHdrFirst)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		if next == 0 {
			return nil, fmt.Errorf("%w: tensor list ends at %d of %d", ErrCorrupt, i, count)
		}
		off := int(next)
		var vals [6]uint64
		for j := range vals {
			if vals[j], err = rom.LoadUint64(off + 8*j); err != nil {
				return nil, err
			}
		}
		nameLen := int(vals[2])
		if nameLen <= 0 || nameLen > maxTensorName {
			return nil, fmt.Errorf("%w: tensor name length %d", ErrCorrupt, nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if err := rom.Load(int(vals[1]), nameBuf); err != nil {
			return nil, err
		}
		ent := tensorEntry{
			name:      string(nameBuf),
			bufOff:    int(vals[3]),
			sealedLen: int(vals[4]),
			elems:     int(vals[5]),
		}
		if _, dup := ts.entries[ent.name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrTensorDup, ent.name)
		}
		ts.entries[ent.name] = ent
		ts.order = append(ts.order, ent.name)
		next = vals[0]
	}
	return ts, nil
}

// Names returns the tensor names in allocation order.
func (ts *TensorStore) Names() []string {
	return append([]string(nil), ts.order...)
}

// Elems returns the element count of a tensor.
func (ts *TensorStore) Elems(name string) (int, error) {
	ent, ok := ts.entries[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrTensorUnknown, name)
	}
	return ent.elems, nil
}

// Save seals one tensor and writes it over its PM mirror in a durable
// transaction.
func (ts *TensorStore) Save(name string, data []float32) error {
	ent, ok := ts.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTensorUnknown, name)
	}
	if len(data) != ent.elems {
		return fmt.Errorf("%w: %q has %d elements, got %d", ErrTensorShape, name, ent.elems, len(data))
	}
	return ts.rom.Update(func() error {
		start := time.Now()
		sealed, err := ts.eng.SealFloatsScratch(data)
		ts.lastSeal = time.Since(start)
		if err != nil {
			return fmt.Errorf("seal tensor %q: %w", name, err)
		}
		return ts.rom.Store(ent.bufOff, sealed)
	})
}

// SaveAll seals every named tensor in one durable transaction, so a
// crash leaves either the previous or the new snapshot of the whole
// collection (the atomicity TensorFlow checkpoints need).
func (ts *TensorStore) SaveAll(tensors map[string][]float32) error {
	for name, data := range tensors {
		ent, ok := ts.entries[name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrTensorUnknown, name)
		}
		if len(data) != ent.elems {
			return fmt.Errorf("%w: %q has %d elements, got %d", ErrTensorShape, name, ent.elems, len(data))
		}
	}
	ts.lastSeal = 0
	return ts.rom.Update(func() error {
		for _, name := range ts.order {
			data, ok := tensors[name]
			if !ok {
				continue
			}
			ent := ts.entries[name]
			start := time.Now()
			sealed, err := ts.eng.SealFloatsScratch(data)
			ts.lastSeal += time.Since(start)
			if err != nil {
				return fmt.Errorf("seal tensor %q: %w", name, err)
			}
			if err := ts.rom.Store(ent.bufOff, sealed); err != nil {
				return err
			}
		}
		return nil
	})
}

// Restore decrypts one tensor from PM into dst.
func (ts *TensorStore) Restore(name string, dst []float32) error {
	ent, ok := ts.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrTensorUnknown, name)
	}
	if len(dst) != ent.elems {
		return fmt.Errorf("%w: %q has %d elements, dst %d", ErrTensorShape, name, ent.elems, len(dst))
	}
	sealed := make([]byte, ent.sealedLen)
	if err := ts.rom.Load(ent.bufOff, sealed); err != nil {
		return err
	}
	start := time.Now()
	err := ts.eng.OpenFloatsInto(dst, sealed)
	ts.lastOpen = time.Since(start)
	if err != nil {
		return fmt.Errorf("open tensor %q: %w", name, err)
	}
	return nil
}

// RestoreAll decrypts every tensor into the provided destination map;
// missing destinations are skipped.
func (ts *TensorStore) RestoreAll(dst map[string][]float32) error {
	for _, name := range ts.order {
		d, ok := dst[name]
		if !ok {
			continue
		}
		if err := ts.Restore(name, d); err != nil {
			return err
		}
	}
	return nil
}
