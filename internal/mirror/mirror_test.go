package mirror

import (
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"strings"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/engine"
	"plinius/internal/mnist"
	"plinius/internal/pm"
	"plinius/internal/romulus"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.New([]byte("0123456789abcdef"), engine.WithRand(rand.Reader))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	return eng
}

func testHeap(t *testing.T, size int) (*pm.Device, *romulus.Romulus) {
	t.Helper()
	dev, err := pm.New(size)
	if err != nil {
		t.Fatalf("pm.New: %v", err)
	}
	rom, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("romulus.Open: %v", err)
	}
	return dev, rom
}

func testNet(t *testing.T, seed int64) *darknet.Network {
	t.Helper()
	cfg := darknet.MNISTConfig(2, 4, 8)
	n, err := darknet.ParseConfig(strings.NewReader(cfg), mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return n
}

func netsEqual(a, b *darknet.Network) bool {
	for li := range a.Layers {
		pa, pb := a.Layers[li].Params(), b.Layers[li].Params()
		for pi := range pa {
			for i := range pa[pi] {
				if pa[pi][i] != pb[pi][i] {
					return false
				}
			}
		}
	}
	return true
}

func TestMirrorOutInRoundTrip(t *testing.T) {
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 1)
	net.Iteration = 42

	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}

	// Restore into a differently initialised network.
	other := testNet(t, 99)
	if netsEqual(net, other) {
		t.Fatal("test nets unexpectedly equal before restore")
	}
	iter, err := m.MirrorIn(other)
	if err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	if iter != 42 || other.Iteration != 42 {
		t.Fatalf("restored iteration = %d/%d, want 42", iter, other.Iteration)
	}
	if !netsEqual(net, other) {
		t.Fatal("restored parameters differ from mirrored parameters")
	}
}

func TestMirrorSurvivesCrashAndReopen(t *testing.T) {
	dev, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 2)
	net.Iteration = 7

	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}

	dev.Crash()
	rom2, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("romulus.Open after crash: %v", err)
	}
	if !Exists(rom2) {
		t.Fatal("mirror root lost after crash")
	}
	m2, err := OpenModel(rom2, eng)
	if err != nil {
		t.Fatalf("OpenModel: %v", err)
	}
	restored := testNet(t, 99)
	iter, err := m2.MirrorIn(restored)
	if err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	if iter != 7 {
		t.Fatalf("iteration after crash = %d, want 7", iter)
	}
	if !netsEqual(net, restored) {
		t.Fatal("parameters lost across crash")
	}
}

func TestCrashDuringMirrorOutKeepsPreviousMirror(t *testing.T) {
	// The crash-consistency property of Algorithm 3: a crash in the
	// middle of mirror-out must leave the previous mirror recoverable.
	for crashPoint := 1; crashPoint <= 30; crashPoint += 3 {
		dev, rom := testHeap(t, 8<<20)
		eng := testEngine(t)
		net := testNet(t, 3)
		net.Iteration = 10
		m, err := AllocModel(rom, eng, net)
		if err != nil {
			t.Fatalf("AllocModel: %v", err)
		}
		if err := m.MirrorOut(net); err != nil {
			t.Fatalf("MirrorOut: %v", err)
		}

		// Mutate the network (simulating one more training iteration)
		// and crash during the next mirror-out.
		for _, l := range net.Layers {
			for _, p := range l.Params() {
				for i := range p {
					p[i] += 0.5
				}
			}
		}
		net.Iteration = 11
		rom.SetCrashPoint(crashPoint)
		err = m.MirrorOut(net)
		if err == nil {
			// Crash point beyond this tx: new mirror must be complete.
			continue
		}
		if !errors.Is(err, romulus.ErrCrashInjected) {
			t.Fatalf("crashPoint=%d: MirrorOut error = %v", crashPoint, err)
		}

		rom2, err := romulus.Open(dev)
		if err != nil {
			t.Fatalf("crashPoint=%d: reopen: %v", crashPoint, err)
		}
		m2, err := OpenModel(rom2, eng)
		if err != nil {
			t.Fatalf("crashPoint=%d: OpenModel: %v", crashPoint, err)
		}
		restored := testNet(t, 99)
		iter, err := m2.MirrorIn(restored)
		if err != nil {
			t.Fatalf("crashPoint=%d: MirrorIn: %v", crashPoint, err)
		}
		if iter != 10 && iter != 11 {
			t.Fatalf("crashPoint=%d: recovered iteration %d, want 10 or 11", crashPoint, iter)
		}
		// The mirror must decrypt and authenticate cleanly — MirrorIn
		// succeeding proves no torn ciphertext survived.
	}
}

func TestMirrorRejectsArchitectureMismatch(t *testing.T) {
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 4)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	bigger, err := darknet.ParseConfig(strings.NewReader(darknet.MNISTConfig(3, 8, 8)),
		mrand.New(mrand.NewSource(5)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := m.MirrorOut(bigger); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("MirrorOut mismatch = %v, want ErrShapeMismatch", err)
	}
	if _, err := m.MirrorIn(bigger); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("MirrorIn mismatch = %v, want ErrShapeMismatch", err)
	}
}

func TestOpenModelWithoutMirror(t *testing.T) {
	_, rom := testHeap(t, 1<<20)
	eng := testEngine(t)
	if Exists(rom) {
		t.Fatal("Exists on empty heap")
	}
	if _, err := OpenModel(rom, eng); !errors.Is(err, ErrNoMirror) {
		t.Fatalf("OpenModel = %v, want ErrNoMirror", err)
	}
}

func TestMirrorInRejectsWrongKey(t *testing.T) {
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 6)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}
	wrongEng, err := engine.New([]byte("fedcba9876543210"), engine.WithRand(rand.Reader))
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	m2, err := OpenModel(rom, wrongEng)
	if err != nil {
		t.Fatalf("OpenModel: %v", err)
	}
	if _, err := m2.MirrorIn(testNet(t, 99)); !errors.Is(err, engine.ErrAuth) {
		t.Fatalf("wrong-key MirrorIn = %v, want engine.ErrAuth", err)
	}
}

func TestMirrorDetectsPMTampering(t *testing.T) {
	dev, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 7)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}
	// Adversary with PM access flips a ciphertext byte directly on the
	// device (threat model §III: integrity of the PM replica).
	buf := make([]byte, 1)
	tamperOff := m.layers[0].bufs[0].off + engine.IVSize + 3
	if err := dev.Load(64+tamperOff, buf); err != nil { // 64 = romulus header
		t.Fatalf("Load: %v", err)
	}
	buf[0] ^= 0xFF
	if err := dev.Store(64+tamperOff, buf); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, err := m.MirrorIn(testNet(t, 99)); !errors.Is(err, engine.ErrAuth) {
		t.Fatalf("tampered MirrorIn = %v, want engine.ErrAuth", err)
	}
}

func TestMetadataBytesMatchesPaperAccounting(t *testing.T) {
	// Paper §VI: 28 B per encrypted buffer, 5 buffers per conv layer
	// -> 140 B per layer.
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 8) // 2 conv layers + 1 connected
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	want := 2*5*engine.Overhead + 1*2*engine.Overhead
	if got := m.MetadataBytes(); got != want {
		t.Fatalf("MetadataBytes = %d, want %d", got, want)
	}
	if m.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", m.NumLayers())
	}
	if m.SealedBytes() <= net.ParamBytes() {
		t.Fatalf("SealedBytes %d not larger than plain %d", m.SealedBytes(), net.ParamBytes())
	}
}

func TestIterationPersistsAcrossMirrorOuts(t *testing.T) {
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 9)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	for _, iter := range []int{1, 5, 10} {
		net.Iteration = iter
		if err := m.MirrorOut(net); err != nil {
			t.Fatalf("MirrorOut: %v", err)
		}
		got, err := m.Iteration()
		if err != nil {
			t.Fatalf("Iteration: %v", err)
		}
		if got != iter {
			t.Fatalf("Iteration = %d, want %d", got, iter)
		}
	}
}

func TestDataMatrixRoundTrip(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(100, 11)
	dm, err := LoadData(rom, eng, ds)
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	if dm.N() != 100 || !dm.Encrypted() {
		t.Fatalf("N=%d encrypted=%v", dm.N(), dm.Encrypted())
	}
	for _, i := range []int{0, 7, 99} {
		img, label, err := dm.Row(i)
		if err != nil {
			t.Fatalf("Row(%d): %v", i, err)
		}
		want := ds.Image(i)
		for p := range want {
			if img[p] != want[p] {
				t.Fatalf("row %d pixel %d: %f vs %f", i, p, img[p], want[p])
			}
		}
		if label[ds.Labels[i]] != 1 {
			t.Fatalf("row %d label mismatch", i)
		}
	}
}

func TestDataMatrixSurvivesCrash(t *testing.T) {
	dev, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(50, 12)
	if _, err := LoadData(rom, eng, ds); err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	dev.Crash()
	rom2, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !DataExists(rom2) {
		t.Fatal("data root lost")
	}
	dm, err := OpenData(rom2, eng)
	if err != nil {
		t.Fatalf("OpenData: %v", err)
	}
	img, _, err := dm.Row(13)
	if err != nil {
		t.Fatalf("Row: %v", err)
	}
	want := ds.Image(13)
	for p := range want {
		if img[p] != want[p] {
			t.Fatal("row data corrupted across crash")
		}
	}
}

func TestDataMatrixBatch(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(40, 13)
	dm, err := LoadData(rom, eng, ds)
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	rng := mrand.New(mrand.NewSource(14))
	x, y, err := dm.Batch(rng, 8)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(x) != 8*mnist.Rows*mnist.Cols || len(y) != 8*mnist.Classes {
		t.Fatalf("batch shapes: %d %d", len(x), len(y))
	}
	if _, _, err := dm.Batch(rng, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestDataMatrixPlaintextMode(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(20, 15)
	dm, err := LoadData(rom, eng, ds, WithPlaintextRows())
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	if dm.Encrypted() {
		t.Fatal("plaintext mode still encrypted")
	}
	// Plaintext rows are smaller: no IV/MAC per row.
	if dm.StoredBytes() >= 20*engine.SealedLen(4*(mnist.Rows*mnist.Cols+mnist.Classes)) {
		t.Fatal("plaintext rows not smaller than sealed rows")
	}
	img, _, err := dm.Row(3)
	if err != nil {
		t.Fatalf("Row: %v", err)
	}
	want := ds.Image(3)
	for p := range want {
		if img[p] != want[p] {
			t.Fatal("plaintext row mismatch")
		}
	}
}

func TestOpenDataWithoutLoad(t *testing.T) {
	_, rom := testHeap(t, 1<<20)
	eng := testEngine(t)
	if DataExists(rom) {
		t.Fatal("DataExists on empty heap")
	}
	if _, err := OpenData(rom, eng); !errors.Is(err, ErrNoData) {
		t.Fatalf("OpenData = %v, want ErrNoData", err)
	}
}

func TestDataRowOutOfRange(t *testing.T) {
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	ds := mnist.Synthetic(10, 16)
	dm, err := LoadData(rom, eng, ds)
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	if _, _, err := dm.Row(10); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, _, err := dm.Row(-1); err == nil {
		t.Fatal("negative row accepted")
	}
}
