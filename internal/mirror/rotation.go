package mirror

import (
	"errors"
	"fmt"

	"plinius/internal/engine"
	"plinius/internal/romulus"
)

// Crash-safe key rotation marker (root slot RootRotation).
//
// DataMatrix.Reseal flips rows to the new key in chunked transactions,
// so a crash mid-rotation leaves mixed key epochs: early rows decrypt
// only under the new key, late rows only under the old. Without a
// durable record that a rotation was underway, recovery reads the
// first mixed row, fails authentication and gives up.
//
// The marker makes rotation crash-safe: before the first row is
// resealed, a durable record is written holding (a) an in-progress
// flag, (b) the next row to reseal — advanced inside each reseal
// chunk's transaction, so it is always exactly the torn boundary — and
// (c) the new data key, sealed under the old key, so a recovering
// enclave provisioned with the pre-rotation key can unwrap the new one
// and finish the job: reseal rows from the recorded boundary, re-seal
// the training mirror (whichever epoch it was left in), republish, and
// clear the marker.
//
// Persistent layout (all little-endian uint64 except the key blob):
//
//	state | nextRow | wrappedLen | wrapped new key (sealed, old epoch)
const (
	rotHdrState   = 0
	rotHdrNextRow = 8
	rotHdrKeyLen  = 16
	rotHdrKey     = 24
	// rotKeyMax bounds the wrapped-key blob: sealed 16-byte key.
	rotKeyMax  = engine.IVSize + engine.KeySize + engine.TagSize
	rotHdrSize = rotHdrKey + rotKeyMax

	rotStateIdle       = 0
	rotStateInProgress = 1
)

// Rotation errors.
var (
	ErrRotationCorrupt = errors.New("mirror: rotation marker is corrupt")
)

// Rotation is a handle to the persistent rotation marker.
type Rotation struct {
	rom *romulus.Romulus
	off int
}

// BeginRotation durably records that a key rotation is starting: the
// new key is sealed under oldEng (the pre-rotation engine) and the
// marker flips to in-progress with the reseal cursor at row 0. The
// marker region is allocated on first use and reused by every later
// rotation.
func BeginRotation(rom *romulus.Romulus, oldEng *engine.Engine, newKey []byte) (*Rotation, error) {
	if len(newKey) != engine.KeySize {
		return nil, fmt.Errorf("%w: key must be %d bytes, got %d", engine.ErrBadKey, engine.KeySize, len(newKey))
	}
	wrapped, err := oldEng.Seal(newKey)
	if err != nil {
		return nil, fmt.Errorf("mirror: wrap rotation key: %w", err)
	}
	if len(wrapped) > rotKeyMax {
		return nil, fmt.Errorf("%w: wrapped key %d bytes", ErrRotationCorrupt, len(wrapped))
	}
	off, err := rom.Root(RootRotation)
	if err != nil {
		return nil, err
	}
	r := &Rotation{rom: rom, off: off}
	err = rom.Update(func() error {
		if r.off == 0 {
			alloc, err := rom.Alloc(rotHdrSize)
			if err != nil {
				return err
			}
			r.off = alloc
			if err := rom.SetRoot(RootRotation, alloc); err != nil {
				return err
			}
		}
		if err := rom.StoreUint64(r.off+rotHdrNextRow, 0); err != nil {
			return err
		}
		if err := rom.StoreUint64(r.off+rotHdrKeyLen, uint64(len(wrapped))); err != nil {
			return err
		}
		if err := rom.Store(r.off+rotHdrKey, wrapped); err != nil {
			return err
		}
		// The in-progress flag flips last within the transaction; a
		// crash before commit leaves the previous marker state intact.
		return rom.StoreUint64(r.off+rotHdrState, rotStateInProgress)
	})
	if err != nil {
		return nil, fmt.Errorf("mirror: begin rotation: %w", err)
	}
	return r, nil
}

// OpenRotation attaches to the rotation marker after a restart. It
// returns (nil, false, nil) when no rotation was ever started or the
// last one finished cleanly, and the marker with inProgress=true when
// a crash interrupted one.
func OpenRotation(rom *romulus.Romulus) (*Rotation, bool, error) {
	off, err := rom.Root(RootRotation)
	if err != nil {
		return nil, false, err
	}
	if off == 0 {
		return nil, false, nil
	}
	state, err := rom.LoadUint64(off + rotHdrState)
	if err != nil {
		return nil, false, err
	}
	r := &Rotation{rom: rom, off: off}
	switch state {
	case rotStateIdle:
		return r, false, nil
	case rotStateInProgress:
		return r, true, nil
	default:
		return nil, false, fmt.Errorf("%w: state %d", ErrRotationCorrupt, state)
	}
}

// NewKey unwraps the rotation's target key with the pre-rotation
// engine (the one the recovering enclave was provisioned with).
func (r *Rotation) NewKey(oldEng *engine.Engine) ([]byte, error) {
	n, err := r.rom.LoadUint64(r.off + rotHdrKeyLen)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > rotKeyMax {
		return nil, fmt.Errorf("%w: wrapped key length %d", ErrRotationCorrupt, n)
	}
	wrapped := make([]byte, n)
	if err := r.rom.Load(r.off+rotHdrKey, wrapped); err != nil {
		return nil, err
	}
	key, err := oldEng.Open(wrapped)
	if err != nil {
		return nil, fmt.Errorf("mirror: unwrap rotation key: %w", err)
	}
	if len(key) != engine.KeySize {
		return nil, fmt.Errorf("%w: unwrapped %d bytes", ErrRotationCorrupt, len(key))
	}
	return key, nil
}

// NextRow returns the reseal cursor: every row below it is already
// under the new key.
func (r *Rotation) NextRow() (int, error) {
	n, err := r.rom.LoadUint64(r.off + rotHdrNextRow)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// Advance persists the reseal cursor. It must run inside the same
// transaction as the chunk it describes (DataMatrix.ResealFrom calls
// it that way), so cursor and rows flip atomically.
func (r *Rotation) Advance(next int) error {
	return r.rom.StoreUint64(r.off+rotHdrNextRow, uint64(next))
}

// Finish durably marks the rotation complete.
func (r *Rotation) Finish() error {
	return r.rom.Update(func() error {
		return r.rom.StoreUint64(r.off+rotHdrState, rotStateIdle)
	})
}
