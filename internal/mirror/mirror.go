// Package mirror implements Plinius' mirroring module (paper §IV,
// Algorithm 3): it creates and maintains an encrypted mirror copy of the
// enclave ML model in persistent memory and keeps encrypted,
// byte-addressable training data in PM (data.go).
//
// The persistent model is a linked list of layer nodes, each holding the
// sealed (AES-GCM: IV ‖ ciphertext ‖ MAC) image of every parameter
// buffer of the corresponding enclave layer — five buffers per
// convolutional layer, hence the paper's 140 B/layer encryption
// metadata. All updates run inside SGX-Romulus durable transactions, so
// a crash at any point leaves either the previous or the new mirror
// intact.
package mirror

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/obs"
	"plinius/internal/romulus"
)

// Process-wide mirror counters: every mirror_out/mirror_in in the
// process, with the AES time each spent — the paper's Fig. 7/8 cost
// split, live. The per-Model LastSeal/LastOpenDuration accessors keep
// their last-operation semantics; these accumulate.
var (
	mMirrorOut     = obs.Default().Counter("mirror_out_total", "mirror_out durable save transactions.")
	mMirrorIn      = obs.Default().Counter("mirror_in_total", "mirror_in (full or range) restores.")
	mSealSeconds   = obs.Default().Counter("mirror_seal_seconds_total", "Seconds of AES-GCM sealing inside mirror_out (summed across workers).")
	mOpenSeconds   = obs.Default().Counter("mirror_open_seconds_total", "Seconds of AES-GCM opening inside mirror_in (summed across workers).")
	mMirroredBytes = obs.Default().Counter("mirror_sealed_payload_bytes_total", "Sealed payload bytes written by mirror_out.")
	mRestoredBytes = obs.Default().Counter("mirror_restored_payload_bytes_total", "Sealed payload bytes read back by mirror_in.")
)

// Root slots used by Plinius in the Romulus root table.
const (
	RootModel     = 0
	RootData      = 1
	RootPublished = 2
	RootRotation  = 3
)

// Persistent layout offsets (all values little-endian uint64):
//
//	model header: iter | numLayers | headOff
//	layer node  : nextOff | numBufs | (bufOff, sealedLen) x numBufs
const (
	modelHdrIter = 0
	modelHdrNumL = 8
	modelHdrHead = 16
	modelHdrSize = 24
	nodeNext     = 0
	nodeNumBufs  = 8
	nodeBufTable = 16
	nodeBufEntry = 16 // offset(8) + sealedLen(8)
)

// Errors returned by the mirroring module.
var (
	ErrNoMirror      = errors.New("mirror: no persistent model in PM")
	ErrShapeMismatch = errors.New("mirror: persistent model does not match network architecture")
	ErrCorrupt       = errors.New("mirror: persistent model is corrupt")
)

type bufRef struct {
	off       int
	sealedLen int
}

type layerNode struct {
	off  int
	bufs []bufRef
}

// Model is a handle to the encrypted mirror copy of a network in PM.
type Model struct {
	rom     *romulus.Romulus
	eng     *engine.Engine
	encl    *enclave.Enclave
	headOff int
	layers  []layerNode

	// lastSeal and lastOpen record the time spent in AES-GCM during
	// the most recent MirrorOut/MirrorIn, so experiment harnesses can
	// report the paper's encrypt/write and read/decrypt breakdowns
	// (Table Ia). With the parallel mirroring path the total is
	// aggregate AES CPU time summed across workers (it can exceed the
	// operation's wall-clock time). Stored as nanoseconds and updated
	// atomically so the accessors are race-safe against an in-flight
	// mirror operation.
	lastSeal atomic.Int64
	lastOpen atomic.Int64
}

// Mirroring fan-out: sealed buffers are AES-processed by a bounded
// worker pool — GOMAXPROCS-clamped and capped — while PM stores stay
// ordered on the calling goroutine (the Romulus redo log is
// single-writer). Small mirrors stay sequential: below the byte
// threshold the goroutine handoff costs more than the AES saved.
const (
	maxMirrorFanout     = 8
	mirrorParallelBytes = 256 << 10
)

// forceMirrorWorkers overrides the GOMAXPROCS/NumCPU clamp in tests
// (0 = off), so the fan-out paths are exercised on any machine.
var forceMirrorWorkers int

// mirrorWorkers picks the seal/open fan-out for a mirror operation of
// the given task count and total sealed bytes. The pool is clamped to
// the PHYSICAL core count as well as GOMAXPROCS: AES sealing is pure
// CPU work, so oversubscribing cores gains nothing — and because
// lastSeal/lastOpen sum per-worker wall time, time-shared workers
// would count descheduled time and inflate the Table Ia attribution.
func mirrorWorkers(tasks, totalBytes int) int {
	return mirrorWorkersAt(tasks, totalBytes, mirrorParallelBytes)
}

// mirrorWorkersAt is mirrorWorkers with an explicit byte threshold —
// the batch loader fans out at smaller payloads than model mirroring,
// since its per-task overhead (one row) is far smaller than a
// parameter buffer's.
func mirrorWorkersAt(tasks, totalBytes, threshold int) int {
	if totalBytes < threshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); w > c {
		w = c
	}
	if forceMirrorWorkers > 0 {
		// Test hook: single-core machines would otherwise never drive
		// the fan-out branch.
		w = forceMirrorWorkers
	}
	if w > tasks {
		w = tasks
	}
	if w > maxMirrorFanout {
		w = maxMirrorFanout
	}
	if w < 1 {
		w = 1
	}
	return w
}

// bufTask is one sealed parameter buffer of a mirror operation.
type bufTask struct {
	li, bi    int
	p         []float32
	off       int
	sealedLen int
}

// collectTasks flattens the (layer, buffer) pairs of a restore or
// mirror-out into a task list, one entry per sealed buffer.
func (m *Model) collectTasks(paramLayers [][][]float32, from int) ([]bufTask, int) {
	var tasks []bufTask
	total := 0
	for li, params := range paramLayers {
		node := m.layers[from+li]
		for bi, p := range params {
			tasks = append(tasks, bufTask{
				li: from + li, bi: bi, p: p,
				off:       node.bufs[bi].off,
				sealedLen: node.bufs[bi].sealedLen,
			})
			total += node.bufs[bi].sealedLen
		}
	}
	return tasks, total
}

// Option configures a Model handle.
type Option func(*Model)

// WithEnclave charges EPC paging costs for plaintext staged in enclave
// memory during mirror operations.
func WithEnclave(e *enclave.Enclave) Option {
	return func(m *Model) { m.encl = e }
}

// Exists reports whether a persistent model is rooted in the heap.
func Exists(rom *romulus.Romulus) bool {
	off, err := rom.Root(RootModel)
	return err == nil && off != 0
}

// AllocModel allocates the persistent mirror of net in one durable
// transaction (Algorithm 3, alloc_mirror_model) and roots it.
func AllocModel(rom *romulus.Romulus, eng *engine.Engine, net *darknet.Network, opts ...Option) (*Model, error) {
	m := &Model{rom: rom, eng: eng}
	for _, opt := range opts {
		opt(m)
	}
	paramLayers := collectParamLayers(net)
	err := rom.Update(func() error {
		hdr, layers, err := allocModelRegion(rom, paramLayers)
		if err != nil {
			return err
		}
		m.headOff, m.layers = hdr, layers
		return rom.SetRoot(RootModel, hdr)
	})
	if err != nil {
		return nil, fmt.Errorf("mirror alloc: %w", err)
	}
	return m, nil
}

// allocModelRegion lays out one persistent model region — header, layer
// nodes and sealed buffers — inside an already-open transaction. It does
// not root the region; callers decide where the header is referenced
// from (the RootModel slot for the training mirror, a publication slot
// for published snapshots).
func allocModelRegion(rom *romulus.Romulus, paramLayers [][][]float32) (int, []layerNode, error) {
	return allocModelRegionWith(rom, rom.Alloc, paramLayers)
}

// regionAlign applies the Romulus bump allocator's alignment, so
// modelRegionSize predicts exactly what a fresh allocModelRegion
// consumes and an in-region bump allocator lays out identically.
func regionAlign(n int) int {
	return (n + romulus.AllocAlign - 1) / romulus.AllocAlign * romulus.AllocAlign
}

// paramPlainLens maps fp32 parameter layers to their per-buffer
// plaintext byte lengths — the shape vocabulary the region allocator
// actually works in, shared by the fp32 and quantized codecs.
func paramPlainLens(paramLayers [][][]float32) [][]int {
	lens := make([][]int, len(paramLayers))
	for li, params := range paramLayers {
		bl := make([]int, len(params))
		for bi, p := range params {
			bl[bi] = 4 * len(p)
		}
		lens[li] = bl
	}
	return lens
}

// regionSizeFor returns the exact heap consumption of a model region
// holding one sealed buffer per plaintext length — the sum of its
// aligned allocations.
func regionSizeFor(plainLens [][]int) int {
	total := regionAlign(modelHdrSize)
	for _, bufs := range plainLens {
		total += regionAlign(nodeBufTable + nodeBufEntry*len(bufs))
		for _, n := range bufs {
			total += regionAlign(engine.SealedLen(n))
		}
	}
	return total
}

// modelRegionSize returns the exact heap consumption of an fp32 model
// region for the given parameter shape.
func modelRegionSize(paramLayers [][][]float32) int {
	return regionSizeFor(paramPlainLens(paramLayers))
}

// regionAllocator bump-allocates inside an existing PM region [base,
// base+size) — the publication slot GC path, which re-lays out a
// recycled region for a new shape instead of leaking it. Allocation
// order and alignment match the Romulus heap allocator, so any shape
// whose modelRegionSize fits the region lays out in place.
func regionAllocator(base, size int) func(int) (int, error) {
	bump := base
	return func(n int) (int, error) {
		aligned := regionAlign(n)
		if bump+aligned > base+size {
			return 0, fmt.Errorf("mirror: region reuse overflow: %d + %d > %d", bump-base, aligned, size)
		}
		off := bump
		bump += aligned
		return off, nil
	}
}

// allocModelRegionWith is allocModelRegion over an arbitrary allocator:
// the Romulus heap for fresh regions, an in-region bump allocator for
// recycled ones.
func allocModelRegionWith(rom *romulus.Romulus, alloc func(int) (int, error), paramLayers [][][]float32) (int, []layerNode, error) {
	return allocRegionWith(rom, alloc, paramPlainLens(paramLayers))
}

// allocRegionWith lays out one persistent layer-list region — header,
// layer nodes and one sealed buffer per plaintext length — over an
// arbitrary allocator. The fp32 mirror and the quantized snapshot share
// this layout; only the plaintext lengths (and the codec that fills the
// buffers) differ.
func allocRegionWith(rom *romulus.Romulus, alloc func(int) (int, error), plainLens [][]int) (int, []layerNode, error) {
	hdr, err := alloc(modelHdrSize)
	if err != nil {
		return 0, nil, err
	}
	var layers []layerNode
	var prevNodeOff = -1
	var firstNodeOff int
	for _, params := range plainLens {
		nodeSize := nodeBufTable + nodeBufEntry*len(params)
		nodeOff, err := alloc(nodeSize)
		if err != nil {
			return 0, nil, err
		}
		node := layerNode{off: nodeOff}
		for bi, p := range params {
			sealedLen := engine.SealedLen(p)
			bufOff, err := alloc(sealedLen)
			if err != nil {
				return 0, nil, err
			}
			node.bufs = append(node.bufs, bufRef{off: bufOff, sealedLen: sealedLen})
			entry := nodeOff + nodeBufTable + nodeBufEntry*bi
			if err := rom.StoreUint64(entry, uint64(bufOff)); err != nil {
				return 0, nil, err
			}
			if err := rom.StoreUint64(entry+8, uint64(sealedLen)); err != nil {
				return 0, nil, err
			}
		}
		if err := rom.StoreUint64(nodeOff+nodeNext, 0); err != nil {
			return 0, nil, err
		}
		if err := rom.StoreUint64(nodeOff+nodeNumBufs, uint64(len(params))); err != nil {
			return 0, nil, err
		}
		if prevNodeOff >= 0 {
			if err := rom.StoreUint64(prevNodeOff+nodeNext, uint64(nodeOff)); err != nil {
				return 0, nil, err
			}
		} else {
			firstNodeOff = nodeOff
		}
		prevNodeOff = nodeOff
		layers = append(layers, node)
	}
	if err := rom.StoreUint64(hdr+modelHdrIter, 0); err != nil {
		return 0, nil, err
	}
	if err := rom.StoreUint64(hdr+modelHdrNumL, uint64(len(plainLens))); err != nil {
		return 0, nil, err
	}
	if err := rom.StoreUint64(hdr+modelHdrHead, uint64(firstNodeOff)); err != nil {
		return 0, nil, err
	}
	return hdr, layers, nil
}

// OpenModel attaches to an existing persistent model (after a restart or
// crash) by walking the linked list from the root.
func OpenModel(rom *romulus.Romulus, eng *engine.Engine, opts ...Option) (*Model, error) {
	hdr, err := rom.Root(RootModel)
	if err != nil {
		return nil, err
	}
	if hdr == 0 {
		return nil, ErrNoMirror
	}
	return openModelAt(rom, eng, hdr, opts...)
}

// openModelAt attaches to the persistent model whose header is at hdr,
// walking its layer list and validating the node structure.
func openModelAt(rom *romulus.Romulus, eng *engine.Engine, hdr int, opts ...Option) (*Model, error) {
	m := &Model{rom: rom, eng: eng, headOff: hdr}
	for _, opt := range opts {
		opt(m)
	}
	numL, err := rom.LoadUint64(hdr + modelHdrNumL)
	if err != nil {
		return nil, err
	}
	next, err := rom.LoadUint64(hdr + modelHdrHead)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < numL; i++ {
		if next == 0 {
			return nil, fmt.Errorf("%w: list ends at layer %d of %d", ErrCorrupt, i, numL)
		}
		nodeOff := int(next)
		numBufs, err := rom.LoadUint64(nodeOff + nodeNumBufs)
		if err != nil {
			return nil, err
		}
		if numBufs == 0 || numBufs > 64 {
			return nil, fmt.Errorf("%w: layer %d has %d buffers", ErrCorrupt, i, numBufs)
		}
		node := layerNode{off: nodeOff}
		for b := uint64(0); b < numBufs; b++ {
			entry := nodeOff + nodeBufTable + nodeBufEntry*int(b)
			bufOff, err := rom.LoadUint64(entry)
			if err != nil {
				return nil, err
			}
			sealedLen, err := rom.LoadUint64(entry + 8)
			if err != nil {
				return nil, err
			}
			node.bufs = append(node.bufs, bufRef{off: int(bufOff), sealedLen: int(sealedLen)})
		}
		m.layers = append(m.layers, node)
		if next, err = rom.LoadUint64(nodeOff + nodeNext); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// SetEngine swaps the encryption engine used for subsequent mirror
// operations — the key-rotation path: after the owner provisions a new
// data key, the next MirrorOut re-seals the parameters under it.
func (m *Model) SetEngine(eng *engine.Engine) { m.eng = eng }

// collectParamLayers returns the parameter buffers of every layer that
// has any (conv: 5 buffers, connected: 2; pooling/softmax: none).
func collectParamLayers(net *darknet.Network) [][][]float32 {
	var out [][][]float32
	for _, l := range net.Layers {
		if params := l.Params(); len(params) > 0 {
			out = append(out, params)
		}
	}
	return out
}

// matches checks the persistent layout against the network architecture.
func (m *Model) matches(paramLayers [][][]float32) error {
	if len(paramLayers) != len(m.layers) {
		return fmt.Errorf("%w: %d persistent layers, %d network layers",
			ErrShapeMismatch, len(m.layers), len(paramLayers))
	}
	return m.matchesFrom(paramLayers, 0)
}

// matchesFrom checks paramLayers against the persistent layer nodes
// starting at node index from — the shard-restore shape check, where
// paramLayers is one contiguous slice of the full model's layers.
func (m *Model) matchesFrom(paramLayers [][][]float32, from int) error {
	if from < 0 || from+len(paramLayers) > len(m.layers) {
		return fmt.Errorf("%w: layers [%d,%d) of %d persistent",
			ErrShapeMismatch, from, from+len(paramLayers), len(m.layers))
	}
	for li, params := range paramLayers {
		node := m.layers[from+li]
		if len(params) != len(node.bufs) {
			return fmt.Errorf("%w: layer %d has %d buffers, persistent %d",
				ErrShapeMismatch, from+li, len(params), len(node.bufs))
		}
		for bi, p := range params {
			if engine.SealedLen(4*len(p)) != node.bufs[bi].sealedLen {
				return fmt.Errorf("%w: layer %d buffer %d sealed size %d vs %d",
					ErrShapeMismatch, from+li, bi, engine.SealedLen(4*len(p)), node.bufs[bi].sealedLen)
			}
		}
	}
	return nil
}

// MirrorOut encrypts the enclave model's parameters and writes them over
// the persistent mirror in one durable transaction, recording the
// iteration counter (Algorithm 3, mirror_out).
//
// Sealing fans out across a bounded worker pool (mirrorWorkers), each
// worker staging through its own engine Scratch; the PM stores stay on
// the calling goroutine, in buffer order, inside the single Romulus
// transaction — so the durable-transaction semantics and the enclave
// paging accounting are exactly those of the sequential path, while
// the AES-GCM work (the dominant save cost, Table Ia) overlaps the PM
// writes and uses all cores.
func (m *Model) MirrorOut(net *darknet.Network) error {
	paramLayers := collectParamLayers(net)
	if err := m.matches(paramLayers); err != nil {
		return err
	}
	m.lastSeal.Store(0)
	tasks, total := m.collectTasks(paramLayers, 0)
	workers := mirrorWorkers(len(tasks), total)
	err := m.rom.Update(func() error {
		if err := m.rom.StoreUint64(m.headOff+modelHdrIter, uint64(net.Iteration)); err != nil {
			return err
		}
		if workers <= 1 {
			for _, t := range tasks {
				sealStart := time.Now()
				sealed, err := m.eng.SealFloatsScratch(t.p)
				m.lastSeal.Add(int64(time.Since(sealStart)))
				if err != nil {
					return fmt.Errorf("seal layer %d buffer %d: %w", t.li, t.bi, err)
				}
				if err := m.rom.Store(t.off, sealed); err != nil {
					return err
				}
			}
			return nil
		}

		type sealResult struct {
			sc     *engine.Scratch
			sealed []byte
			err    error
			done   chan struct{}
		}
		results := make([]sealResult, len(tasks))
		for i := range results {
			results[i].done = make(chan struct{})
		}
		idx := make(chan int, len(tasks))
		for i := range tasks {
			idx <- i
		}
		close(idx)
		// inflight bounds sealed-but-unstored results so the seal pool
		// cannot run arbitrarily far ahead of the ordered store
		// consumer: at most 2x workers scratch pairs are live, instead
		// of one per buffer (~2x the model payload for a large model).
		// The token is acquired BEFORE pulling a task index: idx is
		// FIFO, so the pulled set is always a prefix of the task list,
		// every pulled-but-unstored task holds a token, and the store
		// loop (which releases in task order) always finds the head
		// task pulled or pullable — no deadlock.
		inflight := make(chan struct{}, 2*workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					inflight <- struct{}{}
					ti, ok := <-idx
					if !ok {
						<-inflight
						return
					}
					r := &results[ti]
					r.sc = m.eng.AcquireScratch()
					sealStart := time.Now()
					r.sealed, r.err = m.eng.SealFloatsWith(r.sc, tasks[ti].p)
					m.lastSeal.Add(int64(time.Since(sealStart)))
					close(r.done)
				}
			}()
		}
		// Store each sealed buffer as it becomes ready, in task order.
		var firstErr error
		for ti := range tasks {
			r := &results[ti]
			<-r.done
			if firstErr == nil && r.err != nil {
				firstErr = fmt.Errorf("seal layer %d buffer %d: %w", tasks[ti].li, tasks[ti].bi, r.err)
			}
			if firstErr == nil {
				if err := m.rom.Store(tasks[ti].off, r.sealed); err != nil {
					firstErr = err
				}
			}
			m.eng.ReleaseScratch(r.sc)
			<-inflight
		}
		wg.Wait()
		return firstErr
	})
	if err == nil {
		mMirrorOut.Inc()
		mSealSeconds.Add(time.Duration(m.lastSeal.Load()).Seconds())
		mMirroredBytes.Add(float64(total))
	}
	return err
}

// MirrorIn reads the persistent mirror, decrypts it inside the enclave
// and installs the parameters and iteration counter into net
// (Algorithm 3, mirror_in). It returns the restored iteration.
func (m *Model) MirrorIn(net *darknet.Network) (int, error) {
	paramLayers := collectParamLayers(net)
	if err := m.matches(paramLayers); err != nil {
		return 0, err
	}
	return m.mirrorInFrom(net, paramLayers, 0)
}

// MirrorInRange restores only the slice of the persistent model whose
// layer nodes start at index from — the shard-restore path: net is a
// shard sub-network whose parameter layers correspond to persistent
// nodes [from, from+n), and only that range's sealed buffers are read,
// decrypted and installed. The persisted iteration counter (shared by
// the whole snapshot) is installed into net and returned.
func (m *Model) MirrorInRange(net *darknet.Network, from int) (int, error) {
	paramLayers := collectParamLayers(net)
	if err := m.matchesFrom(paramLayers, from); err != nil {
		return 0, err
	}
	return m.mirrorInFrom(net, paramLayers, from)
}

// mirrorInFrom is the shared restore loop of MirrorIn and
// MirrorInRange; the shape has already been checked.
//
// The per-buffer work — sealed PM read, boundary copy, in-enclave
// AES-GCM open — fans out across mirrorWorkers goroutines, each with
// its own read buffer and engine Scratch, so no restore worker can
// alias another's staging memory. Buffers decrypt into disjoint
// parameter slices, PM loads are device-locked, and the enclave
// CopyAcross/Touch accounting is mutex-protected, so the parallel
// restore charges exactly what the sequential one does.
func (m *Model) mirrorInFrom(net *darknet.Network, paramLayers [][][]float32, from int) (int, error) {
	iter, err := m.rom.LoadUint64(m.headOff + modelHdrIter)
	if err != nil {
		return 0, err
	}
	m.lastOpen.Store(0)
	tasks, total := m.collectTasks(paramLayers, from)
	workers := mirrorWorkers(len(tasks), total)

	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	// The sealed bytes stage through the scratch's sealed side (the
	// open uses only its plain side), so steady-state restores — the
	// streaming shard group's per-batch path — allocate nothing: the
	// scratch pool keeps the buffers alive across calls.
	restore := func(sc *engine.Scratch, t bufTask) {
		sealed := sc.SealedBuf(t.sealedLen)
		if err := m.rom.Load(t.off, sealed); err != nil {
			fail(err)
			return
		}
		if m.encl != nil {
			m.encl.CopyAcross(len(sealed))
		}
		openStart := time.Now()
		err := m.eng.OpenFloatsWith(sc, t.p, sealed)
		m.lastOpen.Add(int64(time.Since(openStart)))
		if err != nil {
			fail(fmt.Errorf("open layer %d buffer %d: %w", t.li, t.bi, err))
		}
	}

	if workers <= 1 {
		sc := m.eng.AcquireScratch()
		for _, t := range tasks {
			restore(sc, t)
			if failed() {
				break
			}
		}
		m.eng.ReleaseScratch(sc)
	} else {
		idx := make(chan int, len(tasks))
		for i := range tasks {
			idx <- i
		}
		close(idx)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := m.eng.AcquireScratch()
				defer m.eng.ReleaseScratch(sc)
				for ti := range idx {
					if failed() {
						return
					}
					restore(sc, tasks[ti])
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return 0, firstErr
	}
	net.Iteration = int(iter)
	mMirrorIn.Inc()
	mOpenSeconds.Add(time.Duration(m.lastOpen.Load()).Seconds())
	mRestoredBytes.Add(float64(total))
	return int(iter), nil
}

// Iteration reads the persisted iteration counter without touching the
// parameters.
func (m *Model) Iteration() (int, error) {
	iter, err := m.rom.LoadUint64(m.headOff + modelHdrIter)
	if err != nil {
		return 0, err
	}
	return int(iter), nil
}

// MetadataBytes returns the encryption metadata footprint of the mirror:
// engine.Overhead (28 B) per sealed buffer, e.g. 140 B per conv layer.
func (m *Model) MetadataBytes() int {
	total := 0
	for _, node := range m.layers {
		total += engine.Overhead * len(node.bufs)
	}
	return total
}

// SealedBytes returns the total persistent size of the mirror payload.
func (m *Model) SealedBytes() int {
	total := 0
	for _, node := range m.layers {
		for _, b := range node.bufs {
			total += b.sealedLen
		}
	}
	return total
}

// NumLayers returns the number of persistent layer nodes.
func (m *Model) NumLayers() int { return len(m.layers) }

// LastSealDuration returns the aggregate AES CPU time of the most
// recent MirrorOut (summed across seal workers, so it can exceed the
// operation's wall-clock time). Safe to call concurrently with mirror
// operations.
func (m *Model) LastSealDuration() time.Duration { return time.Duration(m.lastSeal.Load()) }

// LastOpenDuration returns the aggregate AES CPU time of the most
// recent MirrorIn (summed across restore workers). Safe to call
// concurrently with mirror operations.
func (m *Model) LastOpenDuration() time.Duration { return time.Duration(m.lastOpen.Load()) }
