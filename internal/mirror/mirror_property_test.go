package mirror

import (
	"crypto/rand"
	mrand "math/rand"
	"strings"
	"testing"
	"testing/quick"

	"plinius/internal/darknet"
	"plinius/internal/engine"
	"plinius/internal/mnist"
	"plinius/internal/pm"
	"plinius/internal/romulus"
)

// Property: any randomly shaped CNN survives a mirror-out/mirror-in
// round trip bit-exactly, including across a device crash and reopen.
func TestPropertyMirrorRoundTripAnyArchitecture(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		layers := 1 + rng.Intn(3)
		filters := 2 + rng.Intn(6)
		cfg := darknet.MNISTConfig(layers, filters, 4)
		net, err := darknet.ParseConfig(strings.NewReader(cfg), rng)
		if err != nil {
			return false
		}
		for _, l := range net.Layers {
			for _, p := range l.Params() {
				for i := range p {
					p[i] = float32(rng.NormFloat64())
				}
			}
		}
		net.Iteration = rng.Intn(1 << 20)

		dev, err := pm.New(16 << 20)
		if err != nil {
			return false
		}
		rom, err := romulus.Open(dev)
		if err != nil {
			return false
		}
		eng, err := engine.New([]byte("0123456789abcdef"), engine.WithRand(rand.Reader))
		if err != nil {
			return false
		}
		m, err := AllocModel(rom, eng, net)
		if err != nil {
			return false
		}
		if err := m.MirrorOut(net); err != nil {
			return false
		}

		dev.Crash()
		rom2, err := romulus.Open(dev)
		if err != nil {
			return false
		}
		m2, err := OpenModel(rom2, eng)
		if err != nil {
			return false
		}
		restored, err := darknet.ParseConfig(strings.NewReader(cfg), mrand.New(mrand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		iter, err := m2.MirrorIn(restored)
		if err != nil || iter != net.Iteration {
			return false
		}
		return netsEqual(net, restored)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the data matrix preserves any image row bit-exactly,
// encrypted or not.
func TestPropertyDataMatrixRowFidelity(t *testing.T) {
	f := func(seed int64, plaintext bool) bool {
		_, rom := quickHeap(16 << 20)
		if rom == nil {
			return false
		}
		eng, err := engine.New([]byte("0123456789abcdef"), engine.WithRand(rand.Reader))
		if err != nil {
			return false
		}
		n := 5 + int(seed%7+7)%7
		ds := syntheticFor(n, seed)
		var opts []DataOption
		if plaintext {
			opts = append(opts, WithPlaintextRows())
		}
		dm, err := LoadData(rom, eng, ds, opts...)
		if err != nil {
			return false
		}
		rng := mrand.New(mrand.NewSource(seed))
		for k := 0; k < 3; k++ {
			i := rng.Intn(n)
			img, label, err := dm.Row(i)
			if err != nil {
				return false
			}
			want := ds.Image(i)
			for p := range want {
				if img[p] != want[p] {
					return false
				}
			}
			if label[ds.Labels[i]] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// quickHeap builds a heap without a testing.T, for quick.Check bodies.
func quickHeap(size int) (*pm.Device, *romulus.Romulus) {
	dev, err := pm.New(size)
	if err != nil {
		return nil, nil
	}
	rom, err := romulus.Open(dev)
	if err != nil {
		return nil, nil
	}
	return dev, rom
}

// syntheticFor wraps mnist.Synthetic for quick.Check bodies.
func syntheticFor(n int, seed int64) *mnist.Dataset {
	return mnist.Synthetic(n, seed)
}
