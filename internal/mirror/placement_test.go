package mirror

import (
	"testing"

	"plinius/internal/romulus"
)

// TestPlacementRoundTripAndReuse: the fleet placement manifest persists
// across a publication re-open (crash consistency), rewrites in place
// when the new placement fits its region, and reallocates when it
// grows — the same durability contract as the shard manifest it lives
// beside.
func TestPlacementRoundTripAndReuse(t *testing.T) {
	dev, rom := testHeap(t, 32<<20)
	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if e, err := p.Placement(); err != nil || e != nil {
		t.Fatalf("fresh placement = %v, %v; want nil, nil", e, err)
	}
	if err := p.RecordPlacement(nil); err == nil {
		t.Fatal("RecordPlacement(nil) accepted an empty placement")
	}

	// Two replica groups of two shards across three hosts.
	want := []PlacementEntry{
		{Group: 0, Shard: 0, Host: 0},
		{Group: 0, Shard: 1, Host: 1},
		{Group: 1, Shard: 0, Host: 2},
		{Group: 1, Shard: 1, Host: 0},
	}
	if err := p.RecordPlacement(want); err != nil {
		t.Fatalf("RecordPlacement: %v", err)
	}

	// Re-open after a crash: the placement must survive intact.
	dev.Crash()
	rom2, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("romulus.Open after crash: %v", err)
	}
	p2, err := OpenPublication(rom2)
	if err != nil {
		t.Fatalf("OpenPublication after crash: %v", err)
	}
	got, err := p2.Placement()
	if err != nil {
		t.Fatalf("Placement after crash: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("placement after crash has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// A smaller placement rewrites the same region in place.
	off1, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	smaller := []PlacementEntry{{Group: 0, Shard: 0, Host: 1}}
	if err := p2.RecordPlacement(smaller); err != nil {
		t.Fatalf("RecordPlacement smaller: %v", err)
	}
	off2, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	if off1 != off2 {
		t.Fatalf("smaller placement moved the region: %d -> %d", off1, off2)
	}
	if got, _ := p2.Placement(); len(got) != 1 || got[0] != smaller[0] {
		t.Fatalf("smaller placement read back %v", got)
	}

	// A larger placement outgrows the region and reallocates.
	larger := make([]PlacementEntry, 6)
	for i := range larger {
		larger[i] = PlacementEntry{Group: i / 3, Shard: i % 3, Host: i % 2}
	}
	if err := p2.RecordPlacement(larger); err != nil {
		t.Fatalf("RecordPlacement larger: %v", err)
	}
	off3, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	if off3 == off1 {
		t.Fatal("outgrown placement was not reallocated")
	}
	if got, _ := p2.Placement(); len(got) != len(larger) {
		t.Fatalf("larger placement read back %d entries, want %d", len(got), len(larger))
	}
}
