package mirror

import (
	"errors"
	"testing"

	"plinius/internal/romulus"
)

// TestPlacementRoundTripAndReuse: the fleet placement manifest persists
// across a publication re-open (crash consistency), rewrites in place
// when the new placement fits its region, and reallocates when it
// grows — the same durability contract as the shard manifest it lives
// beside.
func TestPlacementRoundTripAndReuse(t *testing.T) {
	dev, rom := testHeap(t, 32<<20)
	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	if e, err := p.Placement(); err != nil || e != nil {
		t.Fatalf("fresh placement = %v, %v; want nil, nil", e, err)
	}
	if err := p.RecordPlacement(nil); err == nil {
		t.Fatal("RecordPlacement(nil) accepted an empty placement")
	}

	// Two replica groups of two shards across three hosts.
	want := []PlacementEntry{
		{Group: 0, Shard: 0, Host: 0},
		{Group: 0, Shard: 1, Host: 1},
		{Group: 1, Shard: 0, Host: 2},
		{Group: 1, Shard: 1, Host: 0},
	}
	if err := p.RecordPlacement(want); err != nil {
		t.Fatalf("RecordPlacement: %v", err)
	}

	// Re-open after a crash: the placement must survive intact.
	dev.Crash()
	rom2, err := romulus.Open(dev)
	if err != nil {
		t.Fatalf("romulus.Open after crash: %v", err)
	}
	p2, err := OpenPublication(rom2)
	if err != nil {
		t.Fatalf("OpenPublication after crash: %v", err)
	}
	got, err := p2.Placement()
	if err != nil {
		t.Fatalf("Placement after crash: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("placement after crash has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// A smaller placement rewrites the same region in place.
	off1, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	smaller := []PlacementEntry{{Group: 0, Shard: 0, Host: 1}}
	if err := p2.RecordPlacement(smaller); err != nil {
		t.Fatalf("RecordPlacement smaller: %v", err)
	}
	off2, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	if off1 != off2 {
		t.Fatalf("smaller placement moved the region: %d -> %d", off1, off2)
	}
	if got, _ := p2.Placement(); len(got) != 1 || got[0] != smaller[0] {
		t.Fatalf("smaller placement read back %v", got)
	}

	// A larger placement outgrows the region and reallocates.
	larger := make([]PlacementEntry, 6)
	for i := range larger {
		larger[i] = PlacementEntry{Group: i / 3, Shard: i % 3, Host: i % 2}
	}
	if err := p2.RecordPlacement(larger); err != nil {
		t.Fatalf("RecordPlacement larger: %v", err)
	}
	off3, _ := rom2.LoadUint64(p2.hdrOff + pubHdrPlacementOff)
	if off3 == off1 {
		t.Fatal("outgrown placement was not reallocated")
	}
	if got, _ := p2.Placement(); len(got) != len(larger) {
		t.Fatalf("larger placement read back %d entries, want %d", len(got), len(larger))
	}
}

// TestPlacementRewriteCrashSweep is the fleet-replan durability sweep:
// a live replan rewrites the placement manifest through the Romulus
// transaction, and a crash at ANY step of that rewrite must recover to
// the entirely-old or entirely-new placement — never a torn mix of
// the two. The sweep injects a crash before every commit step in turn
// until a rewrite completes crash-free.
func TestPlacementRewriteCrashSweep(t *testing.T) {
	oldPlacement := []PlacementEntry{
		{Group: 0, Shard: 0, Host: 0},
		{Group: 0, Shard: 1, Host: 1},
		{Group: 0, Shard: 2, Host: 2},
	}
	// The replanned placement after losing host 0: fewer hosts, more
	// entries (a replica group appears), so the region reallocates —
	// the structurally hardest rewrite.
	newPlacement := []PlacementEntry{
		{Group: 0, Shard: 0, Host: 1},
		{Group: 0, Shard: 1, Host: 2},
		{Group: 0, Shard: 2, Host: 1},
		{Group: 1, Shard: 0, Host: 2},
		{Group: 1, Shard: 1, Host: 1},
		{Group: 1, Shard: 2, Host: 2},
	}
	sameAs := func(got, want []PlacementEntry) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	completed := false
	for crashPoint := 1; crashPoint < 128 && !completed; crashPoint++ {
		dev, rom := testHeap(t, 4<<20)
		p, err := OpenPublication(rom)
		if err != nil {
			t.Fatalf("OpenPublication: %v", err)
		}
		if err := p.RecordPlacement(oldPlacement); err != nil {
			t.Fatalf("record old placement: %v", err)
		}

		rom.SetCrashPoint(crashPoint)
		err = p.RecordPlacement(newPlacement)
		if err == nil {
			// The rewrite has fewer commit steps than this crash point:
			// the sweep has covered every step.
			completed = true
		} else if !errors.Is(err, romulus.ErrCrashInjected) {
			t.Fatalf("crash point %d: unexpected error %v", crashPoint, err)
		}

		// Power loss: volatile state gone, recovery replays the log.
		dev.Crash()
		rom2, err := romulus.Open(dev)
		if err != nil {
			t.Fatalf("crash point %d: romulus.Open: %v", crashPoint, err)
		}
		p2, err := OpenPublication(rom2)
		if err != nil {
			t.Fatalf("crash point %d: OpenPublication: %v", crashPoint, err)
		}
		got, err := p2.Placement()
		if err != nil {
			t.Fatalf("crash point %d: Placement: %v", crashPoint, err)
		}
		switch {
		case completed:
			if !sameAs(got, newPlacement) {
				t.Fatalf("crash-free rewrite read back %v, want new placement", got)
			}
		case sameAs(got, oldPlacement), sameAs(got, newPlacement):
			// Either whole state is legal mid-rewrite.
		default:
			t.Fatalf("crash point %d: torn placement %v (neither old %v nor new %v)",
				crashPoint, got, oldPlacement, newPlacement)
		}
	}
	if !completed {
		t.Fatalf("sweep never reached a crash-free rewrite; raise the crash point bound")
	}
}
