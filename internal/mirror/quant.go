package mirror

// Quantized snapshot codec: the int8 serving variant of a published
// model. The region reuses the mirror's layer-list layout (header,
// linked layer nodes, one sealed buffer per parameter buffer); only the
// plaintext of buffer 0 of each layer differs — instead of fp32 weight
// bytes it carries a small header (scale float32 LE, zero-point int32
// LE, always 0 for the symmetric scheme) followed by one int8 byte per
// weight. The remaining buffers (biases, batch-norm vectors) stay fp32,
// so a quantized snapshot of a weight-dominated model seals to roughly
// a quarter of the fp32 payload — less AES on publish and restore, and
// a proportionally smaller EPC working set for the serving replica.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"plinius/internal/darknet"
	"plinius/internal/engine"
	"plinius/internal/obs"
	"plinius/internal/romulus"
)

// Quantized-path counters, the int8 twins of the mirror_* payload
// counters: sealed bytes written when publishing a quantized variant
// and read back when a replica restores one.
var (
	mQuantSealedBytes = obs.Default().Counter("mirror_quant_sealed_payload_bytes_total",
		"Sealed payload bytes written for quantized (int8) snapshot variants.")
	mQuantRestoredBytes = obs.Default().Counter("mirror_quant_restored_payload_bytes_total",
		"Sealed payload bytes read back by quantized (int8) snapshot restores.")
)

// quantPlainLens returns the per-buffer plaintext byte lengths of the
// quantized snapshot of the given fp32 parameter layers: buffer 0
// (the weight matrix) quantizes to one byte per element plus the
// scale/zero-point header; the rest stay four bytes per element.
func quantPlainLens(paramLayers [][][]float32) [][]int {
	lens := make([][]int, len(paramLayers))
	for li, params := range paramLayers {
		bl := make([]int, len(params))
		for bi, p := range params {
			if bi == 0 {
				bl[bi] = darknet.QuantHeaderBytes + len(p)
			} else {
				bl[bi] = 4 * len(p)
			}
		}
		lens[li] = bl
	}
	return lens
}

// quantRegionSize returns the exact heap consumption of a quantized
// snapshot region for the given fp32 parameter shape.
func quantRegionSize(paramLayers [][][]float32) int {
	return regionSizeFor(quantPlainLens(paramLayers))
}

// nodesMatchLens checks a cached persistent layout against expected
// per-buffer plaintext lengths — the quant twin of Model.matches.
func nodesMatchLens(layers []layerNode, plainLens [][]int) error {
	if len(plainLens) != len(layers) {
		return fmt.Errorf("%w: %d persistent layers, %d expected",
			ErrShapeMismatch, len(layers), len(plainLens))
	}
	for li, bufs := range plainLens {
		node := layers[li]
		if len(bufs) != len(node.bufs) {
			return fmt.Errorf("%w: layer %d has %d buffers, persistent %d",
				ErrShapeMismatch, li, len(bufs), len(node.bufs))
		}
		for bi, n := range bufs {
			if engine.SealedLen(n) != node.bufs[bi].sealedLen {
				return fmt.Errorf("%w: layer %d buffer %d sealed size %d vs %d",
					ErrShapeMismatch, li, bi, engine.SealedLen(n), node.bufs[bi].sealedLen)
			}
		}
	}
	return nil
}

// encodeQuantWeights serializes one quantized weight buffer:
// scale (float32 LE) ‖ zeroPoint (int32 LE, 0) ‖ int8 payload.
func encodeQuantWeights(q []int8, scale float32) []byte {
	out := make([]byte, darknet.QuantHeaderBytes+len(q))
	binary.LittleEndian.PutUint32(out, math.Float32bits(scale))
	binary.LittleEndian.PutUint32(out[4:], 0) // zero-point
	for i, v := range q {
		out[darknet.QuantHeaderBytes+i] = byte(v)
	}
	return out
}

// decodeQuantWeights parses an encoded quantized weight buffer into
// dst, returning the scale.
func decodeQuantWeights(b []byte, dst []int8) (float32, error) {
	if len(b) != darknet.QuantHeaderBytes+len(dst) {
		return 0, fmt.Errorf("%w: quant buffer %d bytes, want %d",
			ErrShapeMismatch, len(b), darknet.QuantHeaderBytes+len(dst))
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(b))
	if zp := int32(binary.LittleEndian.Uint32(b[4:])); zp != 0 {
		return 0, fmt.Errorf("%w: nonzero quant zero-point %d", ErrCorrupt, zp)
	}
	if scale <= 0 || math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
		return 0, fmt.Errorf("%w: bad quant scale %v", ErrCorrupt, scale)
	}
	for i := range dst {
		dst[i] = int8(b[darknet.QuantHeaderBytes+i])
	}
	return scale, nil
}

// writeQuantSnapshot quantizes paramLayers and seals the encoded
// buffers into an already-laid-out quant region (header at hdr),
// inside one durable transaction. Returns the total sealed payload
// bytes written. The quant header reuses the model header layout, so
// openModelAt walks it; numLayers/head were stored at layout time and
// only the iteration counter is (re)stored here.
func writeQuantSnapshot(rom *romulus.Romulus, eng *engine.Engine, hdr int, layers []layerNode, paramLayers [][][]float32, iteration int) (int, error) {
	total := 0
	err := rom.Update(func() error {
		if len(layers) != len(paramLayers) {
			return fmt.Errorf("%w: quant region has %d layers, payload %d",
				ErrShapeMismatch, len(layers), len(paramLayers))
		}
		if err := rom.StoreUint64(hdr+modelHdrIter, uint64(iteration)); err != nil {
			return err
		}
		for li, params := range paramLayers {
			node := layers[li]
			for bi, p := range params {
				var plain []byte
				if bi == 0 {
					q, scale := darknet.QuantizeWeights(p)
					plain = encodeQuantWeights(q, scale)
				} else {
					plain = engine.FloatsToBytes(p)
				}
				sealed, err := eng.Seal(plain)
				if err != nil {
					return fmt.Errorf("quant seal layer %d buffer %d: %w", li, bi, err)
				}
				if len(sealed) != node.bufs[bi].sealedLen {
					return fmt.Errorf("%w: quant layer %d buffer %d sealed %d, region %d",
						ErrShapeMismatch, li, bi, len(sealed), node.bufs[bi].sealedLen)
				}
				if err := rom.Store(node.bufs[bi].off, sealed); err != nil {
					return err
				}
				total += len(sealed)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	mQuantSealedBytes.Add(float64(total))
	return total, nil
}

// QuantModel is a read handle over a quantized snapshot region.
type QuantModel struct {
	m *Model
}

// openQuantAt attaches to the quantized snapshot whose header is at
// hdr, walking its layer list like openModelAt.
func openQuantAt(rom *romulus.Romulus, eng *engine.Engine, hdr int, opts ...Option) (*QuantModel, error) {
	m, err := openModelAt(rom, eng, hdr, opts...)
	if err != nil {
		return nil, err
	}
	return &QuantModel{m: m}, nil
}

// SealedBytes returns the total persistent size of the quantized
// snapshot payload.
func (q *QuantModel) SealedBytes() int { return q.m.SealedBytes() }

// NumLayers returns the number of persistent layer nodes.
func (q *QuantModel) NumLayers() int { return q.m.NumLayers() }

// RestoreInto decrypts the quantized snapshot and installs it into
// net, which must be the int8 inference clone of the published
// architecture (darknet.QuantizeNetwork): int8 weights and scale go to
// each QuantWeightLayer, the fp32 side buffers to its Params. Returns
// the snapshot's iteration counter.
func (q *QuantModel) RestoreInto(net *darknet.Network) (int, error) {
	iter, err := q.m.rom.LoadUint64(q.m.headOff + modelHdrIter)
	if err != nil {
		return 0, err
	}
	openStart := time.Now()
	total := 0
	li := 0
	for i, l := range net.Layers {
		ql, isQuant := l.(darknet.QuantWeightLayer)
		params := l.Params()
		if !isQuant && len(params) == 0 {
			continue // parameter-less layer: no persistent node
		}
		if !isQuant {
			return 0, fmt.Errorf("%w: layer %d (%s) is not quantized", ErrShapeMismatch, i, l.Kind())
		}
		if li >= len(q.m.layers) {
			return 0, fmt.Errorf("%w: %d persistent layers, network needs more", ErrShapeMismatch, len(q.m.layers))
		}
		node := q.m.layers[li]
		if len(node.bufs) != 1+len(params) {
			return 0, fmt.Errorf("%w: layer %d has %d persistent buffers, want %d",
				ErrShapeMismatch, i, len(node.bufs), 1+len(params))
		}
		for bi, ref := range node.bufs {
			sealed := make([]byte, ref.sealedLen)
			if err := q.m.rom.Load(ref.off, sealed); err != nil {
				return 0, err
			}
			if q.m.encl != nil {
				q.m.encl.CopyAcross(len(sealed))
			}
			total += len(sealed)
			if bi == 0 {
				plain, err := q.m.eng.Open(sealed)
				if err != nil {
					return 0, fmt.Errorf("quant open layer %d buffer %d: %w", i, bi, err)
				}
				scale, err := decodeQuantWeights(plain, ql.QuantWeights())
				if err != nil {
					return 0, fmt.Errorf("layer %d: %w", i, err)
				}
				ql.SetWeightScale(scale)
				continue
			}
			if err := q.m.eng.OpenFloatsInto(params[bi-1], sealed); err != nil {
				return 0, fmt.Errorf("quant open layer %d buffer %d: %w", i, bi, err)
			}
		}
		li++
	}
	if li != len(q.m.layers) {
		return 0, fmt.Errorf("%w: %d persistent layers, network used %d", ErrShapeMismatch, len(q.m.layers), li)
	}
	q.m.lastOpen.Store(int64(time.Since(openStart)))
	net.Iteration = int(iter)
	mMirrorIn.Inc()
	mQuantRestoredBytes.Add(float64(total))
	return int(iter), nil
}
