package mirror

import (
	"errors"
	mrand "math/rand"
	"testing"

	"plinius/internal/romulus"
)

func testTensorStore(t *testing.T) (*TensorStore, *romulus.Romulus) {
	t.Helper()
	_, rom := testHeap(t, 4<<20)
	eng := testEngine(t)
	ts, err := AllocTensors(rom, eng, []TensorSpec{
		{Name: "conv1/weights", Elems: 128},
		{Name: "conv1/bias", Elems: 16},
		{Name: "fc/weights", Elems: 64},
	})
	if err != nil {
		t.Fatalf("AllocTensors: %v", err)
	}
	return ts, rom
}

func randTensor(n int, seed int64) []float32 {
	rng := mrand.New(mrand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestAllocTensorsValidation(t *testing.T) {
	_, rom := testHeap(t, 1<<20)
	eng := testEngine(t)
	tests := []struct {
		name  string
		specs []TensorSpec
		want  error
	}{
		{"empty", nil, ErrTensorShape},
		{"unnamed", []TensorSpec{{Name: "", Elems: 4}}, ErrTensorName},
		{"zero elems", []TensorSpec{{Name: "t", Elems: 0}}, ErrTensorShape},
		{"duplicate", []TensorSpec{{Name: "t", Elems: 4}, {Name: "t", Elems: 8}}, ErrTensorDup},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := AllocTensors(rom, eng, tt.specs); !errors.Is(err, tt.want) {
				t.Fatalf("AllocTensors = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestTensorSaveRestoreRoundTrip(t *testing.T) {
	ts, _ := testTensorStore(t)
	want := randTensor(128, 1)
	if err := ts.Save("conv1/weights", want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got := make([]float32, 128)
	if err := ts.Restore("conv1/weights", got); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: %f vs %f", i, got[i], want[i])
		}
	}
}

func TestTensorUnknownAndShapeErrors(t *testing.T) {
	ts, _ := testTensorStore(t)
	if err := ts.Save("nope", make([]float32, 4)); !errors.Is(err, ErrTensorUnknown) {
		t.Fatalf("Save unknown = %v", err)
	}
	if err := ts.Save("conv1/bias", make([]float32, 99)); !errors.Is(err, ErrTensorShape) {
		t.Fatalf("Save wrong size = %v", err)
	}
	if err := ts.Restore("nope", make([]float32, 4)); !errors.Is(err, ErrTensorUnknown) {
		t.Fatalf("Restore unknown = %v", err)
	}
	if err := ts.Restore("conv1/bias", make([]float32, 99)); !errors.Is(err, ErrTensorShape) {
		t.Fatalf("Restore wrong size = %v", err)
	}
	if _, err := ts.Elems("nope"); !errors.Is(err, ErrTensorUnknown) {
		t.Fatalf("Elems unknown = %v", err)
	}
}

func TestTensorStoreSurvivesCrash(t *testing.T) {
	_, rom := testHeap(t, 4<<20)
	eng := testEngine(t)
	ts, err := AllocTensors(rom, eng, []TensorSpec{{Name: "w", Elems: 200}})
	if err != nil {
		t.Fatalf("AllocTensors: %v", err)
	}
	want := randTensor(200, 2)
	if err := ts.Save("w", want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	rom.Device().Crash()
	rom2, err := romulus.Open(rom.Device())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !TensorsExist(rom2) {
		t.Fatal("tensor root lost")
	}
	ts2, err := OpenTensors(rom2, eng)
	if err != nil {
		t.Fatalf("OpenTensors: %v", err)
	}
	if n, err := ts2.Elems("w"); err != nil || n != 200 {
		t.Fatalf("Elems = %d, %v", n, err)
	}
	got := make([]float32, 200)
	if err := ts2.Restore("w", got); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("tensor corrupted across crash")
		}
	}
}

func TestSaveAllAtomicity(t *testing.T) {
	// A crash during SaveAll must leave the previous snapshot of ALL
	// tensors (no mixing of old and new).
	for crashPoint := 1; crashPoint <= 24; crashPoint += 2 {
		_, rom := testHeap(t, 4<<20)
		eng := testEngine(t)
		ts, err := AllocTensors(rom, eng, []TensorSpec{
			{Name: "a", Elems: 64},
			{Name: "b", Elems: 64},
		})
		if err != nil {
			t.Fatalf("AllocTensors: %v", err)
		}
		oldA, oldB := randTensor(64, 10), randTensor(64, 11)
		if err := ts.SaveAll(map[string][]float32{"a": oldA, "b": oldB}); err != nil {
			t.Fatalf("seed SaveAll: %v", err)
		}
		newA, newB := randTensor(64, 20), randTensor(64, 21)
		rom.SetCrashPoint(crashPoint)
		err = ts.SaveAll(map[string][]float32{"a": newA, "b": newB})
		if err == nil {
			continue // crash point beyond this transaction
		}
		if !errors.Is(err, romulus.ErrCrashInjected) {
			t.Fatalf("crashPoint=%d: SaveAll = %v", crashPoint, err)
		}
		rom2, err := romulus.Open(rom.Device())
		if err != nil {
			t.Fatalf("crashPoint=%d: reopen: %v", crashPoint, err)
		}
		ts2, err := OpenTensors(rom2, eng)
		if err != nil {
			t.Fatalf("crashPoint=%d: OpenTensors: %v", crashPoint, err)
		}
		gotA := make([]float32, 64)
		gotB := make([]float32, 64)
		if err := ts2.Restore("a", gotA); err != nil {
			t.Fatalf("crashPoint=%d: Restore a: %v", crashPoint, err)
		}
		if err := ts2.Restore("b", gotB); err != nil {
			t.Fatalf("crashPoint=%d: Restore b: %v", crashPoint, err)
		}
		aIsOld := gotA[0] == oldA[0]
		bIsOld := gotB[0] == oldB[0]
		aIsNew := gotA[0] == newA[0]
		bIsNew := gotB[0] == newB[0]
		if !((aIsOld && bIsOld) || (aIsNew && bIsNew)) {
			t.Fatalf("crashPoint=%d: mixed snapshot (aOld=%v bOld=%v aNew=%v bNew=%v)",
				crashPoint, aIsOld, bIsOld, aIsNew, bIsNew)
		}
	}
}

func TestRestoreAllSkipsMissing(t *testing.T) {
	ts, _ := testTensorStore(t)
	want := randTensor(16, 3)
	if err := ts.Save("conv1/bias", want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	dst := map[string][]float32{"conv1/bias": make([]float32, 16)}
	if err := ts.RestoreAll(dst); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	if dst["conv1/bias"][5] != want[5] {
		t.Fatal("RestoreAll did not restore")
	}
}

func TestTensorNamesOrder(t *testing.T) {
	ts, _ := testTensorStore(t)
	names := ts.Names()
	want := []string{"conv1/weights", "conv1/bias", "fc/weights"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestOpenTensorsWithoutStore(t *testing.T) {
	_, rom := testHeap(t, 1<<20)
	eng := testEngine(t)
	if TensorsExist(rom) {
		t.Fatal("TensorsExist on empty heap")
	}
	if _, err := OpenTensors(rom, eng); !errors.Is(err, ErrNoTensors) {
		t.Fatalf("OpenTensors = %v, want ErrNoTensors", err)
	}
}

func TestTensorStoreCoexistsWithModelMirror(t *testing.T) {
	// Model mirror (root 0), data matrix (root 1) and tensor store
	// (root 2) share one heap.
	_, rom := testHeap(t, 8<<20)
	eng := testEngine(t)
	net := testNet(t, 30)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}
	ts, err := AllocTensors(rom, eng, []TensorSpec{{Name: "extra", Elems: 32}})
	if err != nil {
		t.Fatalf("AllocTensors: %v", err)
	}
	want := randTensor(32, 4)
	if err := ts.Save("extra", want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Both survive and restore independently.
	if _, err := m.MirrorIn(testNet(t, 99)); err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	got := make([]float32, 32)
	if err := ts.Restore("extra", got); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got[7] != want[7] {
		t.Fatal("tensor diverged")
	}
}
