package mirror

import (
	"errors"
	"strings"
	"testing"

	mrand "math/rand"

	"plinius/internal/darknet"
)

// testNetShape builds a network with a controllable parameter count.
func testNetShape(t *testing.T, convLayers, filters int) *darknet.Network {
	t.Helper()
	cfg := darknet.MNISTConfig(convLayers, filters, 8)
	n, err := darknet.ParseConfig(strings.NewReader(cfg), mrand.New(mrand.NewSource(3)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return n
}

// TestSlotGCReusesRegionOnShapeChange: republishing a same-or-smaller
// shape into a recycled slot must rewrite its region in place — no
// heap growth, bytes counted in ReusedBytes, nothing leaked.
func TestSlotGCReusesRegionOnShapeChange(t *testing.T) {
	_, rom := testHeap(t, 64<<20)
	eng := testEngine(t)
	big := testNetShape(t, 2, 16)
	small := testNetShape(t, 1, 4)
	if modelRegionSize(collectParamLayers(small)) >= modelRegionSize(collectParamLayers(big)) {
		t.Fatal("test shapes inverted: small must need less region than big")
	}

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	// Two big publishes materialize two big-shaped slots (the latest
	// slot is never recycled, so alternation needs both).
	publishNet(t, p, eng, big)
	publishNet(t, p, eng, big)
	used0 := rom.Used()

	// Repeated same-or-smaller republish: every shape change lands in
	// a recycled big region and must fit in place.
	for i := 0; i < 6; i++ {
		publishNet(t, p, eng, small)
		publishNet(t, p, eng, big)
	}
	if got := rom.Used(); got != used0 {
		t.Fatalf("heap grew %d bytes across same-or-smaller republishes", got-used0)
	}
	if p.ReusedBytes() == 0 {
		t.Fatal("ReusedBytes = 0; shape changes should have reused regions")
	}
	if p.LeakedBytes() != 0 {
		t.Fatalf("LeakedBytes = %d, want 0 (every new shape fit)", p.LeakedBytes())
	}

	// The recycled regions must still restore correctly.
	ver := publishNet(t, p, eng, small)
	pin, err := p.Pin(ver)
	if err != nil {
		t.Fatalf("Pin: %v", err)
	}
	defer pin.Release()
	m, err := pin.Open(eng)
	if err != nil {
		t.Fatalf("pin.Open: %v", err)
	}
	restored := testNetShape(t, 1, 4)
	if _, err := m.MirrorIn(restored); err != nil {
		t.Fatalf("MirrorIn from reused region: %v", err)
	}
	if !netsEqual(small, restored) {
		t.Fatal("restored model differs after region reuse")
	}
}

// TestSlotGCPrefersFreshSlotOverAbandoning: while the table can still
// grow, an outgrown recycled region is left intact (available for
// future same-shape publishes) rather than abandoned — no leak.
func TestSlotGCPrefersFreshSlotOverAbandoning(t *testing.T) {
	_, rom := testHeap(t, 64<<20)
	eng := testEngine(t)
	small := testNetShape(t, 1, 4)
	big := testNetShape(t, 2, 16)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	publishNet(t, p, eng, small)
	publishNet(t, p, eng, small)
	used0 := rom.Used()

	// Growing republish cannot fit the recycled small region; it lands
	// in a fresh table slot and the small region survives for reuse.
	publishNet(t, p, eng, big)
	if got := rom.Used(); got == used0 {
		t.Fatal("heap did not grow for an outgrown shape")
	}
	if got := p.LeakedBytes(); got != 0 {
		t.Fatalf("LeakedBytes = %d, want 0 (small region kept for reuse)", got)
	}
	used1 := rom.Used()
	publishNet(t, p, eng, small) // recycles the surviving small region
	if got := rom.Used(); got != used1 {
		t.Fatalf("heap grew %d bytes republishing the kept shape", got-used1)
	}
}

// TestSlotGCLeaksOnlyOutgrownRegions: with the table full and every
// other slot pinned, a growing republish must replace a recycled
// region — the abandoned bytes are counted in LeakedBytes.
func TestSlotGCLeaksOnlyOutgrownRegions(t *testing.T) {
	_, rom := testHeap(t, 64<<20)
	eng := testEngine(t)
	small := testNetShape(t, 1, 4)
	big := testNetShape(t, 2, 16)
	smallSize := modelRegionSize(collectParamLayers(small))

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	// Fill all table slots with pinned small versions.
	pins := make([]*Pin, 0, maxPubSlots)
	for i := 0; i < maxPubSlots; i++ {
		perturb(small, float32(i+1))
		ver := publishNet(t, p, eng, small)
		pin, err := p.Pin(ver)
		if err != nil {
			t.Fatalf("Pin(%d): %v", ver, err)
		}
		pins = append(pins, pin)
	}
	// Everything pinned: no slot can take a new version.
	if _, err := p.PublishOut(eng, big); !errors.Is(err, ErrSlotsPinned) {
		t.Fatalf("PublishOut with all slots pinned = %v, want ErrSlotsPinned", err)
	}
	// Release one non-latest pin; the big shape cannot fit its small
	// region, the table cannot grow, so the region is abandoned.
	pins[0].Release()
	publishNet(t, p, eng, big)
	if got := p.LeakedBytes(); got != smallSize {
		t.Fatalf("LeakedBytes = %d, want %d (one abandoned small region)", got, smallSize)
	}
	for _, pin := range pins[1:] {
		pin.Release()
	}
}

// TestSlotGCSurvivesReopen: regionSize is persistent, so a publication
// reopened after a restart keeps reusing recycled regions.
func TestSlotGCSurvivesReopen(t *testing.T) {
	_, rom := testHeap(t, 64<<20)
	eng := testEngine(t)
	big := testNetShape(t, 2, 16)
	small := testNetShape(t, 1, 4)

	p, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("OpenPublication: %v", err)
	}
	publishNet(t, p, eng, big)
	publishNet(t, p, eng, big)
	used0 := rom.Used()

	// Reattach (as recovery does) and republish a smaller shape.
	p2, err := OpenPublication(rom)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	publishNet(t, p2, eng, small)
	if got := rom.Used(); got != used0 {
		t.Fatalf("heap grew %d bytes after reopen; regionSize not persisted?", got-used0)
	}
	if p2.ReusedBytes() == 0 {
		t.Fatal("reopened publication did not reuse the recycled region")
	}
}
