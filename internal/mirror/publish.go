// Versioned model publication (the serving side of the mirroring
// module). Training overwrites the single mirror at RootModel every
// iteration, which is exactly what crash recovery wants and exactly
// what serving must not read from: a replica restoring mid-overwrite
// would observe a torn model, so v1 forbade Server.Refresh racing a
// MirrorOut.
//
// A Publication decouples the two: PublishOut seals the current
// parameters into an immutable, monotonically versioned snapshot in a
// separate PM region, and flips a "latest" pointer in one durable
// transaction. Readers pin a version before restoring from it; a
// pinned slot is never recycled, so a restore always reads a complete,
// self-consistent snapshot no matter how much training (or further
// publishing, or key rotation) happens concurrently.
//
// Persistent layout (root slot RootPublished, little-endian uint64):
//
//	pub header: latestVersion | numSlots | maxPubSlots x {version, modelOff, regionSize, qOff, qSize, qValid} | manifestOff | manifestCap
//
// Slot model regions reuse the mirror's layer-list layout. A slot may
// additionally carry a quantized (int8) snapshot variant of the same
// version in a second region (qOff/qSize): PublishOut writes it when
// asked (WithQuantized), and qValid — flipped in the same durable
// transaction as the version — records whether the variant is present,
// so a crash mid-publish can never expose a torn quant region. qOff
// and qSize persist across retirements for the same in-place reuse
// discipline as the fp32 region. The
// recorded regionSize makes slot recycling shape-proof: Romulus has no
// free, so v2 leaked a slot's old region whenever the model shape
// changed; with the size known, a recycled slot whose new payload fits
// is re-laid out in place (regionAllocator) and only a genuinely
// outgrown region is abandoned to the bump allocator — counted in
// LeakedBytes, with in-place reuse counted in ReusedBytes. Pin counts
// are volatile (a restart drops all pins, as the readers died with the
// process). The Publication handle itself serializes its in-memory
// bookkeeping; callers must still serialize the PM device access of
// PublishOut and Pin.Open/Restore against other PM users, exactly like
// every other romulus client in this repository.
package mirror

import (
	"errors"
	"fmt"
	"sync"

	"plinius/internal/darknet"
	"plinius/internal/engine"
	"plinius/internal/romulus"
)

// Publication header layout.
const (
	pubHdrLatest   = 0
	pubHdrNumSlots = 8
	pubHdrSlots    = 16
	pubSlotEntry   = 48 // version(8) + modelOff(8) + regionSize(8) + qOff(8) + qSize(8) + qValid(8)

	// maxPubSlots bounds the publication table. Slots are recycled as
	// soon as they are neither latest nor pinned, so the table only
	// grows while old versions are actively pinned by restoring
	// replicas.
	maxPubSlots = 8

	// Shard manifest pointer, stored alongside the slot table: the PM
	// offset and entry capacity of the manifest region recording how a
	// shard group splits published snapshots into per-shard layer-node
	// ranges (manifest region: count | cap x {fromNode, toNode}).
	pubHdrManifestOff = pubHdrSlots + maxPubSlots*pubSlotEntry
	pubHdrManifestCap = pubHdrManifestOff + 8

	// Placement manifest pointer: the PM offset and entry capacity of
	// the region recording which host of a serving fleet each replica
	// group placed each shard on (placement region: count | cap x
	// {group, shard, host}). Together with the shard manifest it lets a
	// re-created fleet restore the exact placement the previous
	// incarnation served with.
	pubHdrPlacementOff = pubHdrManifestCap + 8
	pubHdrPlacementCap = pubHdrPlacementOff + 8

	pubHdrSize = pubHdrPlacementCap + 8

	manifestEntrySize  = 16 // fromNode(8) + toNode(8)
	placementEntrySize = 24 // group(8) + shard(8) + host(8)
)

// Publication errors.
var (
	ErrNoPublished    = errors.New("mirror: no published model version in PM")
	ErrSlotsPinned    = errors.New("mirror: all publication slots are pinned; release a pinned version first")
	ErrBadVersion     = errors.New("mirror: requested published version does not exist")
	ErrPinReleased    = errors.New("mirror: pin has already been released")
	ErrPubCorrupt     = errors.New("mirror: publication table is corrupt")
	errSlotSuperseded = errors.New("mirror: publication slot superseded mid-pin") // internal consistency check
)

// pubSlot is one entry of the publication table.
type pubSlot struct {
	idx        int
	version    uint64 // 0 = unpublished / retired
	modelOff   int
	regionSize int         // heap bytes of the slot's model region
	layers     []layerNode // cached layout of the slot's model region
	pins       int

	// Quantized variant region: allocated lazily on the first
	// WithQuantized publish into this slot, reused in place across
	// versions like the fp32 region. qValid marks whether the slot's
	// CURRENT version carries a quant snapshot.
	qOff    int
	qSize   int
	qLayers []layerNode
	qValid  bool
}

// Publication is a handle to the versioned publication table in PM.
type Publication struct {
	rom    *romulus.Romulus
	hdrOff int

	mu     sync.Mutex // guards latest, slots' version/pins bookkeeping
	latest uint64
	slots  []*pubSlot

	// Slot GC accounting (volatile): bytes of recycled regions
	// re-laid out in place vs abandoned in the bump allocator.
	reused int
	leaked int
}

// ReusedBytes returns the total bytes of recycled slot regions rewritten
// in place across shape changes — space the bump allocator never sees.
func (p *Publication) ReusedBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reused
}

// LeakedBytes returns the total bytes abandoned in the bump allocator:
// recycled regions too small for the new shape (Romulus has no free).
func (p *Publication) LeakedBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leaked
}

// PublicationExists reports whether a publication table is rooted.
func PublicationExists(rom *romulus.Romulus) bool {
	off, err := rom.Root(RootPublished)
	return err == nil && off != 0
}

// OpenPublication attaches to the publication table, creating an empty
// one (in a durable transaction) on first use.
func OpenPublication(rom *romulus.Romulus) (*Publication, error) {
	hdr, err := rom.Root(RootPublished)
	if err != nil {
		return nil, err
	}
	p := &Publication{rom: rom}
	if hdr == 0 {
		err := rom.Update(func() error {
			off, err := rom.Alloc(pubHdrSize)
			if err != nil {
				return err
			}
			p.hdrOff = off
			// Freshly allocated PM is zeroed: latest 0, no slots.
			return rom.SetRoot(RootPublished, off)
		})
		if err != nil {
			return nil, fmt.Errorf("mirror publication alloc: %w", err)
		}
		return p, nil
	}
	p.hdrOff = hdr
	latest, err := rom.LoadUint64(hdr + pubHdrLatest)
	if err != nil {
		return nil, err
	}
	numSlots, err := rom.LoadUint64(hdr + pubHdrNumSlots)
	if err != nil {
		return nil, err
	}
	if numSlots > maxPubSlots {
		return nil, fmt.Errorf("%w: %d slots", ErrPubCorrupt, numSlots)
	}
	p.latest = latest
	for i := 0; i < int(numSlots); i++ {
		entry := hdr + pubHdrSlots + i*pubSlotEntry
		version, err := rom.LoadUint64(entry)
		if err != nil {
			return nil, err
		}
		modelOff, err := rom.LoadUint64(entry + 8)
		if err != nil {
			return nil, err
		}
		regionSize, err := rom.LoadUint64(entry + 16)
		if err != nil {
			return nil, err
		}
		qOff, err := rom.LoadUint64(entry + 24)
		if err != nil {
			return nil, err
		}
		qSize, err := rom.LoadUint64(entry + 32)
		if err != nil {
			return nil, err
		}
		qValid, err := rom.LoadUint64(entry + 40)
		if err != nil {
			return nil, err
		}
		s := &pubSlot{
			idx: i, version: version, modelOff: int(modelOff), regionSize: int(regionSize),
			qOff: int(qOff), qSize: int(qSize), qValid: qValid != 0,
		}
		if s.modelOff != 0 {
			m, err := openModelAt(rom, nil, s.modelOff)
			if err != nil {
				return nil, fmt.Errorf("publication slot %d: %w", i, err)
			}
			s.layers = m.layers
		}
		if s.qOff != 0 {
			qm, err := openModelAt(rom, nil, s.qOff)
			if err != nil {
				return nil, fmt.Errorf("publication slot %d quant region: %w", i, err)
			}
			s.qLayers = qm.layers
		}
		p.slots = append(p.slots, s)
	}
	return p, nil
}

// LatestVersion returns the most recently published version, 0 if none.
func (p *Publication) LatestVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// slotEntryOff returns the PM offset of slot i's table entry.
func (p *Publication) slotEntryOff(i int) int {
	return p.hdrOff + pubHdrSlots + i*pubSlotEntry
}

// pickSlot chooses (or allocates) a slot that can be overwritten:
// unpinned and not the latest published version. Preference order:
// a recyclable slot whose region already matches the shape (buffers
// rewritten directly), then one whose region the new payload fits
// (re-laid out in place by PublishOut — no heap growth), then a fresh
// table slot, and only last a recyclable slot whose region must be
// abandoned. Called with p.mu held.
func (p *Publication) pickSlot(paramLayers [][][]float32) (*pubSlot, error) {
	need := modelRegionSize(paramLayers)
	var fallback, fitting *pubSlot
	for _, s := range p.slots {
		if s.pins > 0 || (s.version == p.latest && p.latest != 0) {
			continue
		}
		if s.modelOff != 0 && layersMatch(s.layers, paramLayers) == nil {
			return s, nil
		}
		if fitting == nil && s.modelOff != 0 && need <= s.regionSize {
			fitting = s
		}
		fallback = s
	}
	if fitting != nil {
		return fitting, nil
	}
	if len(p.slots) < maxPubSlots {
		idx := len(p.slots)
		s := &pubSlot{idx: idx}
		err := p.rom.Update(func() error {
			return p.rom.StoreUint64(p.hdrOff+pubHdrNumSlots, uint64(idx+1))
		})
		if err != nil {
			return nil, err
		}
		p.slots = append(p.slots, s)
		return s, nil
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, ErrSlotsPinned
}

// layersMatch checks a cached persistent layout against the network's
// parameter shape, mirroring Model.matches without a Model handle.
func layersMatch(layers []layerNode, paramLayers [][][]float32) error {
	m := &Model{layers: layers}
	return m.matches(paramLayers)
}

// PublishOption configures one PublishOut call.
type PublishOption func(*publishConfig)

type publishConfig struct {
	quantized bool
}

// WithQuantized makes PublishOut additionally seal an int8-quantized
// variant of the snapshot into the slot's quant region, restorable via
// Pin.OpenQuant with ~4x smaller sealed payload.
func WithQuantized() PublishOption {
	return func(c *publishConfig) { c.quantized = true }
}

// PublishOut seals net's parameters into an immutable snapshot and
// publishes it as the next version. The snapshot region is written
// first (its slot marked unpublished), then the version and the latest
// pointer flip in one durable transaction — a crash at any point leaves
// the previous latest version intact and restorable. With
// WithQuantized, the int8 variant is written before that flip and its
// validity bit rides in the same transaction.
//
// The caller must serialize PM access (PublishOut vs other romulus
// users); the publication's own bookkeeping is internally locked.
func (p *Publication) PublishOut(eng *engine.Engine, net *darknet.Network, opts ...PublishOption) (uint64, error) {
	var cfg publishConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	paramLayers := collectParamLayers(net)
	p.mu.Lock()
	defer p.mu.Unlock()

	slot, err := p.pickSlot(paramLayers)
	if err != nil {
		return 0, err
	}
	// Retire the slot before overwriting its bytes so a crash mid-write
	// cannot leave a stale version number pointing at torn content. The
	// quant validity bit is cleared in the same transaction: whatever
	// the quant region holds is now unowned bytes.
	if slot.version != 0 || slot.qValid {
		err := p.rom.Update(func() error {
			if err := p.rom.StoreUint64(p.slotEntryOff(slot.idx), 0); err != nil {
				return err
			}
			return p.rom.StoreUint64(p.slotEntryOff(slot.idx)+40, 0)
		})
		if err != nil {
			return 0, err
		}
		slot.version = 0
		slot.qValid = false
	}
	// (Re)lay out the slot's model region if the shape changed. A
	// recycled region big enough for the new payload is rewritten in
	// place (Romulus has no free, so this is the only reclamation);
	// only when the shape outgrew the region is a fresh one allocated
	// and the old region abandoned in the bump allocator.
	if slot.modelOff == 0 || layersMatch(slot.layers, paramLayers) != nil {
		need := modelRegionSize(paramLayers)
		if slot.modelOff != 0 && need <= slot.regionSize {
			// Same-or-smaller shape: reuse the retired slot's region.
			err := p.rom.Update(func() error {
				hdr, layers, err := allocModelRegionWith(p.rom,
					regionAllocator(slot.modelOff, slot.regionSize), paramLayers)
				if err != nil {
					return err
				}
				slot.layers = layers
				// The header is the region's first allocation, so
				// modelOff and regionSize are unchanged.
				if hdr != slot.modelOff {
					return fmt.Errorf("%w: reused region header moved %d -> %d",
						ErrPubCorrupt, slot.modelOff, hdr)
				}
				return nil
			})
			if err != nil {
				return 0, err
			}
			p.reused += need
		} else {
			abandoned := slot.regionSize
			err := p.rom.Update(func() error {
				hdr, layers, err := allocModelRegion(p.rom, paramLayers)
				if err != nil {
					return err
				}
				slot.modelOff, slot.layers, slot.regionSize = hdr, layers, need
				entry := p.slotEntryOff(slot.idx)
				if err := p.rom.StoreUint64(entry+8, uint64(hdr)); err != nil {
					return err
				}
				return p.rom.StoreUint64(entry+16, uint64(need))
			})
			if err != nil {
				return 0, err
			}
			p.leaked += abandoned
		}
	}
	m := &Model{rom: p.rom, eng: eng, headOff: slot.modelOff, layers: slot.layers}
	if err := m.MirrorOut(net); err != nil {
		return 0, fmt.Errorf("publish seal: %w", err)
	}
	if cfg.quantized {
		if err := p.writeQuantVariant(eng, slot, paramLayers, net.Iteration); err != nil {
			return 0, fmt.Errorf("publish quant seal: %w", err)
		}
	}
	newVer := p.latest + 1
	err = p.rom.Update(func() error {
		if err := p.rom.StoreUint64(p.slotEntryOff(slot.idx), newVer); err != nil {
			return err
		}
		if cfg.quantized {
			if err := p.rom.StoreUint64(p.slotEntryOff(slot.idx)+40, 1); err != nil {
				return err
			}
		}
		return p.rom.StoreUint64(p.hdrOff+pubHdrLatest, newVer)
	})
	if err != nil {
		return 0, err
	}
	slot.version = newVer
	slot.qValid = cfg.quantized
	p.latest = newVer
	return newVer, nil
}

// writeQuantVariant lays out (or reuses) the slot's quant region and
// seals the int8 snapshot into it. The same in-place reuse discipline
// as the fp32 region applies: a retired quant region big enough for
// the new shape is rewritten in place, an outgrown one is abandoned to
// the bump allocator. Called with p.mu held; qValid is NOT set here —
// the caller flips it with the version.
func (p *Publication) writeQuantVariant(eng *engine.Engine, slot *pubSlot, paramLayers [][][]float32, iteration int) error {
	qLens := quantPlainLens(paramLayers)
	if slot.qOff == 0 || nodesMatchLens(slot.qLayers, qLens) != nil {
		need := regionSizeFor(qLens)
		if slot.qOff != 0 && need <= slot.qSize {
			err := p.rom.Update(func() error {
				hdr, layers, err := allocRegionWith(p.rom,
					regionAllocator(slot.qOff, slot.qSize), qLens)
				if err != nil {
					return err
				}
				slot.qLayers = layers
				if hdr != slot.qOff {
					return fmt.Errorf("%w: reused quant region header moved %d -> %d",
						ErrPubCorrupt, slot.qOff, hdr)
				}
				return nil
			})
			if err != nil {
				return err
			}
			p.reused += need
		} else {
			abandoned := slot.qSize
			err := p.rom.Update(func() error {
				hdr, layers, err := allocRegionWith(p.rom, p.rom.Alloc, qLens)
				if err != nil {
					return err
				}
				slot.qOff, slot.qLayers, slot.qSize = hdr, layers, need
				entry := p.slotEntryOff(slot.idx)
				if err := p.rom.StoreUint64(entry+24, uint64(hdr)); err != nil {
					return err
				}
				return p.rom.StoreUint64(entry+32, uint64(need))
			})
			if err != nil {
				return err
			}
			p.leaked += abandoned
		}
	}
	_, err := writeQuantSnapshot(p.rom, eng, slot.qOff, slot.qLayers, paramLayers, iteration)
	return err
}

// Pin is a reader's hold on one published version: while held, the
// version's slot is never recycled by PublishOut.
type Pin struct {
	pub      *Publication
	slot     *pubSlot
	version  uint64
	released bool
	mu       sync.Mutex
}

// Pin pins a published version (0 pins the latest) and returns the
// hold. Release it when the restore is done.
func (p *Publication) Pin(version uint64) (*Pin, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.latest == 0 {
		return nil, ErrNoPublished
	}
	if version == 0 {
		version = p.latest
	}
	for _, s := range p.slots {
		if s.version == version && version != 0 {
			s.pins++
			return &Pin{pub: p, slot: s, version: version}, nil
		}
	}
	return nil, fmt.Errorf("%w: version %d (latest %d)", ErrBadVersion, version, p.latest)
}

// Version returns the pinned version number.
func (pin *Pin) Version() uint64 { return pin.version }

// Open returns a Model handle over the pinned snapshot, decrypting with
// the reader's own engine (each replica enclave holds its own engine
// instance over the provisioned data key). PM access through the handle
// must be serialized by the caller like any other romulus use.
func (pin *Pin) Open(eng *engine.Engine, opts ...Option) (*Model, error) {
	pin.mu.Lock()
	released := pin.released
	pin.mu.Unlock()
	if released {
		return nil, ErrPinReleased
	}
	pin.pub.mu.Lock()
	off := pin.slot.modelOff
	ok := pin.slot.version == pin.version
	pin.pub.mu.Unlock()
	if !ok {
		// Cannot happen while the pin is held (pinned slots are never
		// recycled); kept as a hard consistency check.
		return nil, errSlotSuperseded
	}
	return openModelAt(pin.pub.rom, eng, off, opts...)
}

// HasQuant reports whether the pinned version carries a quantized
// (int8) snapshot variant.
func (pin *Pin) HasQuant() bool {
	pin.mu.Lock()
	released := pin.released
	pin.mu.Unlock()
	if released {
		return false
	}
	pin.pub.mu.Lock()
	defer pin.pub.mu.Unlock()
	return pin.slot.version == pin.version && pin.slot.qValid
}

// ErrNoQuant is returned by OpenQuant when the pinned version was
// published without a quantized variant.
var ErrNoQuant = errors.New("mirror: published version has no quantized variant")

// OpenQuant returns a QuantModel handle over the pinned version's int8
// snapshot variant, decrypting with the reader's own engine. PM access
// through the handle must be serialized by the caller like any other
// romulus use.
func (pin *Pin) OpenQuant(eng *engine.Engine, opts ...Option) (*QuantModel, error) {
	pin.mu.Lock()
	released := pin.released
	pin.mu.Unlock()
	if released {
		return nil, ErrPinReleased
	}
	pin.pub.mu.Lock()
	off := pin.slot.qOff
	valid := pin.slot.qValid
	ok := pin.slot.version == pin.version
	pin.pub.mu.Unlock()
	if !ok {
		return nil, errSlotSuperseded
	}
	if !valid || off == 0 {
		return nil, ErrNoQuant
	}
	return openQuantAt(pin.pub.rom, eng, off, opts...)
}

// ShardManifestEntry records one shard of a serving plan: the
// half-open range [From, To) of network layer indices the shard owns.
// Layer ranges (not persistent-node ranges) are recorded because they
// uniquely determine the split — parameter-less layers at a boundary
// would make node ranges ambiguous — and the node offsets a restore
// needs follow from them.
type ShardManifestEntry struct {
	From, To int
}

// RecordShardManifest persists the shard plan alongside the
// publication slots in one durable transaction, so a shard group
// re-created after a crash restores exactly the ranges the previous
// incarnation used (core reads it back when auto-planning). An
// existing manifest region is rewritten in place
// when the new plan fits its capacity; a larger plan gets a fresh
// region (the old one is abandoned to the bump allocator, like any
// outgrown slot region). The caller serializes PM access, as with
// every other romulus use.
func (p *Publication) RecordShardManifest(entries []ShardManifestEntry) error {
	if len(entries) == 0 {
		return errors.New("mirror: empty shard manifest")
	}
	off, err := p.rom.LoadUint64(p.hdrOff + pubHdrManifestOff)
	if err != nil {
		return err
	}
	capEntries, err := p.rom.LoadUint64(p.hdrOff + pubHdrManifestCap)
	if err != nil {
		return err
	}
	return p.rom.Update(func() error {
		if off == 0 || int(capEntries) < len(entries) {
			region, err := p.rom.Alloc(8 + manifestEntrySize*len(entries))
			if err != nil {
				return err
			}
			off = uint64(region)
			capEntries = uint64(len(entries))
			if err := p.rom.StoreUint64(p.hdrOff+pubHdrManifestOff, off); err != nil {
				return err
			}
			if err := p.rom.StoreUint64(p.hdrOff+pubHdrManifestCap, capEntries); err != nil {
				return err
			}
		}
		if err := p.rom.StoreUint64(int(off), uint64(len(entries))); err != nil {
			return err
		}
		for i, e := range entries {
			entry := int(off) + 8 + manifestEntrySize*i
			if err := p.rom.StoreUint64(entry, uint64(e.From)); err != nil {
				return err
			}
			if err := p.rom.StoreUint64(entry+8, uint64(e.To)); err != nil {
				return err
			}
		}
		return nil
	})
}

// ShardManifest reads the persisted shard plan, nil if none has been
// recorded. The caller serializes PM access.
func (p *Publication) ShardManifest() ([]ShardManifestEntry, error) {
	off, err := p.rom.LoadUint64(p.hdrOff + pubHdrManifestOff)
	if err != nil {
		return nil, err
	}
	if off == 0 {
		return nil, nil
	}
	count, err := p.rom.LoadUint64(int(off))
	if err != nil {
		return nil, err
	}
	capEntries, err := p.rom.LoadUint64(p.hdrOff + pubHdrManifestCap)
	if err != nil {
		return nil, err
	}
	if count == 0 || count > capEntries {
		return nil, fmt.Errorf("%w: manifest count %d, capacity %d", ErrPubCorrupt, count, capEntries)
	}
	entries := make([]ShardManifestEntry, count)
	for i := range entries {
		entry := int(off) + 8 + manifestEntrySize*i
		from, err := p.rom.LoadUint64(entry)
		if err != nil {
			return nil, err
		}
		to, err := p.rom.LoadUint64(entry + 8)
		if err != nil {
			return nil, err
		}
		entries[i] = ShardManifestEntry{From: int(from), To: int(to)}
	}
	return entries, nil
}

// PlacementEntry records one cell of a fleet placement: replica group
// Group serves shard index Shard (of the shard manifest's plan) on
// fleet host index Host. Host indices are positions in the fleet's
// host list at planning time; a re-created fleet with a different host
// count simply replans.
type PlacementEntry struct {
	Group, Shard, Host int
}

// RecordPlacement persists the fleet placement alongside the shard
// manifest in one durable transaction. Like RecordShardManifest, an
// existing region is rewritten in place when the new placement fits
// its capacity and a larger one gets a fresh region. The caller
// serializes PM access.
func (p *Publication) RecordPlacement(entries []PlacementEntry) error {
	if len(entries) == 0 {
		return errors.New("mirror: empty placement manifest")
	}
	off, err := p.rom.LoadUint64(p.hdrOff + pubHdrPlacementOff)
	if err != nil {
		return err
	}
	capEntries, err := p.rom.LoadUint64(p.hdrOff + pubHdrPlacementCap)
	if err != nil {
		return err
	}
	return p.rom.Update(func() error {
		if off == 0 || int(capEntries) < len(entries) {
			region, err := p.rom.Alloc(8 + placementEntrySize*len(entries))
			if err != nil {
				return err
			}
			off = uint64(region)
			capEntries = uint64(len(entries))
			if err := p.rom.StoreUint64(p.hdrOff+pubHdrPlacementOff, off); err != nil {
				return err
			}
			if err := p.rom.StoreUint64(p.hdrOff+pubHdrPlacementCap, capEntries); err != nil {
				return err
			}
		}
		if err := p.rom.StoreUint64(int(off), uint64(len(entries))); err != nil {
			return err
		}
		for i, e := range entries {
			entry := int(off) + 8 + placementEntrySize*i
			if err := p.rom.StoreUint64(entry, uint64(e.Group)); err != nil {
				return err
			}
			if err := p.rom.StoreUint64(entry+8, uint64(e.Shard)); err != nil {
				return err
			}
			if err := p.rom.StoreUint64(entry+16, uint64(e.Host)); err != nil {
				return err
			}
		}
		return nil
	})
}

// Placement reads the persisted fleet placement, nil if none has been
// recorded. The caller serializes PM access.
func (p *Publication) Placement() ([]PlacementEntry, error) {
	off, err := p.rom.LoadUint64(p.hdrOff + pubHdrPlacementOff)
	if err != nil {
		return nil, err
	}
	if off == 0 {
		return nil, nil
	}
	count, err := p.rom.LoadUint64(int(off))
	if err != nil {
		return nil, err
	}
	capEntries, err := p.rom.LoadUint64(p.hdrOff + pubHdrPlacementCap)
	if err != nil {
		return nil, err
	}
	if count == 0 || count > capEntries {
		return nil, fmt.Errorf("%w: placement count %d, capacity %d", ErrPubCorrupt, count, capEntries)
	}
	entries := make([]PlacementEntry, count)
	for i := range entries {
		entry := int(off) + 8 + placementEntrySize*i
		group, err := p.rom.LoadUint64(entry)
		if err != nil {
			return nil, err
		}
		shard, err := p.rom.LoadUint64(entry + 8)
		if err != nil {
			return nil, err
		}
		host, err := p.rom.LoadUint64(entry + 16)
		if err != nil {
			return nil, err
		}
		entries[i] = PlacementEntry{Group: int(group), Shard: int(shard), Host: int(host)}
	}
	return entries, nil
}

// Release drops the hold, allowing the slot to be recycled once the
// version is superseded. Release is idempotent.
func (pin *Pin) Release() {
	pin.mu.Lock()
	if pin.released {
		pin.mu.Unlock()
		return
	}
	pin.released = true
	pin.mu.Unlock()
	pin.pub.mu.Lock()
	pin.slot.pins--
	pin.pub.mu.Unlock()
}
