package mirror

import (
	mrand "math/rand"
	"strings"
	"sync"
	"testing"

	"plinius/internal/darknet"
)

// bigTestNet builds a network whose mirror payload crosses the
// mirrorParallelBytes threshold, forcing the fan-out seal/open path.
func bigTestNet(t *testing.T, seed int64) *darknet.Network {
	t.Helper()
	// 64 hidden units over 28x28 inputs ≈ 200 KB of weights per layer.
	cfg := `[net]
batch=4
channels=1
height=28
width=28

[connected]
output=96
activation=relu

[connected]
output=96
activation=relu

[connected]
output=10
activation=linear

[softmax]
`
	n, err := darknet.ParseConfig(strings.NewReader(cfg), mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return n
}

// forceWorkers pins the mirror fan-out for the duration of a test so
// the parallel branches run even on single-core machines.
func forceWorkers(t *testing.T, n int) {
	t.Helper()
	forceMirrorWorkers = n
	t.Cleanup(func() { forceMirrorWorkers = 0 })
}

// TestParallelMirrorRoundTrip drives the fan-out MirrorOut/MirrorIn
// path over a model large enough to parallelize and checks the restore
// is exact.
func TestParallelMirrorRoundTrip(t *testing.T) {
	forceWorkers(t, 4)
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	net := bigTestNet(t, 1)
	if tasks, total := 0, 0; true {
		for _, l := range net.Layers {
			for _, p := range l.Params() {
				tasks++
				total += 4 * len(p)
			}
		}
		if total < mirrorParallelBytes {
			t.Fatalf("test model too small to exercise the parallel path: %d bytes", total)
		}
		if w := mirrorWorkers(tasks, total); w < 1 {
			t.Fatalf("mirrorWorkers = %d", w)
		}
	}
	net.Iteration = 7

	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}

	other := bigTestNet(t, 99)
	if netsEqual(net, other) {
		t.Fatal("test nets unexpectedly equal before restore")
	}
	iter, err := m.MirrorIn(other)
	if err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	if iter != 7 || !netsEqual(net, other) {
		t.Fatalf("parallel restore mismatch: iter=%d equal=%v", iter, netsEqual(net, other))
	}
}

// TestParallelMirrorManyBuffers pushes many more sealed buffers than
// the in-flight token window through the fan-out MirrorOut — the
// regression case for the store/seal pipeline deadlock (tokens must be
// acquired before pulling a task index) — and checks the roundtrip.
func TestParallelMirrorManyBuffers(t *testing.T) {
	forceWorkers(t, 2) // 4 tokens against 24+ tasks
	var cfg strings.Builder
	cfg.WriteString("[net]\nbatch=2\nchannels=1\nheight=32\nwidth=32\n\n")
	for i := 0; i < 12; i++ {
		cfg.WriteString("[connected]\noutput=48\nactivation=relu\n\n")
	}
	cfg.WriteString("[connected]\noutput=10\nactivation=linear\n\n[softmax]\n")
	build := func(seed int64) *darknet.Network {
		n, err := darknet.ParseConfig(strings.NewReader(cfg.String()), mrand.New(mrand.NewSource(seed)))
		if err != nil {
			t.Fatalf("ParseConfig: %v", err)
		}
		return n
	}
	net := build(1)
	if tasks := 0; true {
		for _, l := range net.Layers {
			tasks += len(l.Params())
		}
		if tasks <= 8 {
			t.Fatalf("want > 2x tokens tasks, got %d", tasks)
		}
	}
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}
	if err := m.MirrorOut(net); err != nil {
		t.Fatalf("MirrorOut: %v", err)
	}
	other := build(2)
	if _, err := m.MirrorIn(other); err != nil {
		t.Fatalf("MirrorIn: %v", err)
	}
	if !netsEqual(net, other) {
		t.Fatal("many-buffer parallel roundtrip mismatch")
	}
}

// TestMirrorDurationAccessorsRaceSafe hammers LastSealDuration and
// LastOpenDuration while mirror operations run — the satellite fix for
// the formerly racy plain-field accessors. Run with -race.
func TestMirrorDurationAccessorsRaceSafe(t *testing.T) {
	forceWorkers(t, 4)
	_, rom := testHeap(t, 16<<20)
	eng := testEngine(t)
	net := bigTestNet(t, 1)
	m, err := AllocModel(rom, eng, net)
	if err != nil {
		t.Fatalf("AllocModel: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.LastSealDuration()
				_ = m.LastOpenDuration()
			}
		}
	}()
	other := bigTestNet(t, 2)
	for i := 0; i < 5; i++ {
		if err := m.MirrorOut(net); err != nil {
			t.Fatalf("MirrorOut: %v", err)
		}
		if _, err := m.MirrorIn(other); err != nil {
			t.Fatalf("MirrorIn: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if !netsEqual(net, other) {
		t.Fatal("restore mismatch")
	}
}
