// Package mnist provides the training data substrate for the Plinius
// reproduction: a reader/writer for the IDX file format used by the real
// MNIST database, and a deterministic synthetic handwritten-digit
// generator used because the reproduction environment is offline (see
// DESIGN.md, substitution table). Synthetic digits are rendered from
// seven-segment glyph templates with random translation, thickness
// jitter and pixel noise — a 10-class 28x28 grayscale problem the
// paper's CNNs learn readily, exercising the same code paths as real
// MNIST.
package mnist

import (
	"errors"
	"fmt"
	"math/rand"
)

// Geometry of MNIST images.
const (
	Rows    = 28
	Cols    = 28
	Classes = 10
)

// Dataset is a labelled image set. Pixels are float32 in [0,1],
// row-major, one image per Rows*Cols block.
type Dataset struct {
	Images []float32
	Labels []int
	N      int
}

// Errors returned by dataset operations.
var (
	ErrBadDataset = errors.New("mnist: images and labels disagree")
	ErrBadBatch   = errors.New("mnist: invalid batch size")
)

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.N < 0 || len(d.Labels) != d.N || len(d.Images) != d.N*Rows*Cols {
		return fmt.Errorf("%w: n=%d images=%d labels=%d", ErrBadDataset, d.N, len(d.Images), len(d.Labels))
	}
	for i, l := range d.Labels {
		if l < 0 || l >= Classes {
			return fmt.Errorf("%w: label[%d]=%d", ErrBadDataset, i, l)
		}
	}
	return nil
}

// Image returns the i-th image as a slice view.
func (d *Dataset) Image(i int) []float32 {
	return d.Images[i*Rows*Cols : (i+1)*Rows*Cols]
}

// OneHot returns the i-th label as a one-hot vector.
func (d *Dataset) OneHot(i int) []float32 {
	v := make([]float32, Classes)
	v[d.Labels[i]] = 1
	return v
}

// Batch assembles a training batch of the given size by sampling
// indices from rng, returning inputs and one-hot labels.
func (d *Dataset) Batch(rng *rand.Rand, size int) (x, y []float32, err error) {
	if size <= 0 || d.N == 0 {
		return nil, nil, fmt.Errorf("%w: size=%d n=%d", ErrBadBatch, size, d.N)
	}
	x = make([]float32, size*Rows*Cols)
	y = make([]float32, size*Classes)
	for b := 0; b < size; b++ {
		i := rng.Intn(d.N)
		copy(x[b*Rows*Cols:], d.Image(i))
		y[b*Classes+d.Labels[i]] = 1
	}
	return x, y, nil
}

// sevenSegments maps each digit to its lit segments
// (A top, B top-right, C bottom-right, D bottom, E bottom-left,
// F top-left, G middle).
var sevenSegments = [Classes][7]bool{
	0: {true, true, true, true, true, true, false},
	1: {false, true, true, false, false, false, false},
	2: {true, true, false, true, true, false, true},
	3: {true, true, true, true, false, false, true},
	4: {false, true, true, false, false, true, true},
	5: {true, false, true, true, false, true, true},
	6: {true, false, true, true, true, true, true},
	7: {true, true, true, false, false, false, false},
	8: {true, true, true, true, true, true, true},
	9: {true, true, true, true, false, true, true},
}

// drawDigit renders digit into a Rows x Cols image with the given
// offsets and stroke thickness.
func drawDigit(img []float32, digit, dx, dy, thick int) {
	// Glyph box before jitter: x in [9,19], y in [5,23].
	left, right := 9+dx, 19+dx
	top, mid, bottom := 5+dy, 14+dy, 23+dy

	hseg := func(y, x0, x1 int) {
		for t := 0; t < thick; t++ {
			yy := y + t
			if yy < 0 || yy >= Rows {
				continue
			}
			for x := x0; x <= x1; x++ {
				if x >= 0 && x < Cols {
					img[yy*Cols+x] = 1
				}
			}
		}
	}
	vseg := func(x, y0, y1 int) {
		for t := 0; t < thick; t++ {
			xx := x + t
			if xx < 0 || xx >= Cols {
				continue
			}
			for y := y0; y <= y1; y++ {
				if y >= 0 && y < Rows {
					img[y*Cols+xx] = 1
				}
			}
		}
	}
	seg := sevenSegments[digit]
	if seg[0] {
		hseg(top, left, right)
	}
	if seg[1] {
		vseg(right, top, mid)
	}
	if seg[2] {
		vseg(right, mid, bottom)
	}
	if seg[3] {
		hseg(bottom, left, right)
	}
	if seg[4] {
		vseg(left, mid, bottom)
	}
	if seg[5] {
		vseg(left, top, mid)
	}
	if seg[6] {
		hseg(mid, left, right)
	}
}

// Synthetic generates n labelled digit images deterministically from
// seed. Labels cycle through the classes so every class is equally
// represented.
func Synthetic(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		Images: make([]float32, n*Rows*Cols),
		Labels: make([]int, n),
		N:      n,
	}
	for i := 0; i < n; i++ {
		digit := i % Classes
		d.Labels[i] = digit
		img := d.Image(i)
		dx := rng.Intn(5) - 2
		dy := rng.Intn(5) - 2
		thick := 2 + rng.Intn(2)
		drawDigit(img, digit, dx, dy, thick)
		// Intensity scaling and additive noise, clamped to [0,1].
		scale := 0.7 + 0.3*rng.Float32()
		for p := range img {
			v := img[p]*scale + 0.08*rng.Float32()
			if v > 1 {
				v = 1
			}
			img[p] = v
		}
	}
	return d
}

// Split partitions the dataset into train and test subsets.
func (d *Dataset) Split(train int) (*Dataset, *Dataset, error) {
	if train < 0 || train > d.N {
		return nil, nil, fmt.Errorf("%w: split %d of %d", ErrBadDataset, train, d.N)
	}
	a := &Dataset{
		Images: d.Images[:train*Rows*Cols],
		Labels: d.Labels[:train],
		N:      train,
	}
	b := &Dataset{
		Images: d.Images[train*Rows*Cols:],
		Labels: d.Labels[train:],
		N:      d.N - train,
	}
	return a, b, nil
}
