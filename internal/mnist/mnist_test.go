package mnist

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSyntheticShapeAndDeterminism(t *testing.T) {
	a := Synthetic(100, 42)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.N != 100 || len(a.Images) != 100*Rows*Cols || len(a.Labels) != 100 {
		t.Fatalf("bad dataset geometry: %d %d %d", a.N, len(a.Images), len(a.Labels))
	}
	b := Synthetic(100, 42)
	for i := range a.Images {
		if a.Images[i] != b.Images[i] {
			t.Fatal("same seed produced different images")
		}
	}
	c := Synthetic(100, 43)
	same := true
	for i := range a.Images {
		if a.Images[i] != c.Images[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSyntheticClassBalanceAndRange(t *testing.T) {
	d := Synthetic(200, 1)
	counts := make([]int, Classes)
	for _, l := range d.Labels {
		counts[l]++
	}
	for cls, c := range counts {
		if c != 20 {
			t.Fatalf("class %d has %d samples, want 20", cls, c)
		}
	}
	for i, p := range d.Images {
		if p < 0 || p > 1 {
			t.Fatalf("pixel %d out of range: %f", i, p)
		}
	}
}

func TestSyntheticDigitsAreDistinguishable(t *testing.T) {
	// Mean images of different digits must differ substantially,
	// otherwise the CNN experiments cannot learn.
	d := Synthetic(500, 7)
	means := make([][]float32, Classes)
	counts := make([]int, Classes)
	for c := range means {
		means[c] = make([]float32, Rows*Cols)
	}
	for i := 0; i < d.N; i++ {
		l := d.Labels[i]
		counts[l]++
		img := d.Image(i)
		for p, v := range img {
			means[l][p] += v
		}
	}
	for c := range means {
		for p := range means[c] {
			means[c][p] /= float32(counts[c])
		}
	}
	for a := 0; a < Classes; a++ {
		for b := a + 1; b < Classes; b++ {
			var dist float32
			for p := range means[a] {
				diff := means[a][p] - means[b][p]
				dist += diff * diff
			}
			if dist < 1 {
				t.Fatalf("digits %d and %d nearly identical (dist=%f)", a, b, dist)
			}
		}
	}
}

func TestBatchShapes(t *testing.T) {
	d := Synthetic(50, 3)
	rng := rand.New(rand.NewSource(4))
	x, y, err := d.Batch(rng, 16)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(x) != 16*Rows*Cols || len(y) != 16*Classes {
		t.Fatalf("batch shapes: x=%d y=%d", len(x), len(y))
	}
	// Every label row is one-hot.
	for b := 0; b < 16; b++ {
		var sum float32
		for c := 0; c < Classes; c++ {
			sum += y[b*Classes+c]
		}
		if sum != 1 {
			t.Fatalf("row %d label sum = %f", b, sum)
		}
	}
	if _, _, err := d.Batch(rng, 0); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("zero batch = %v, want ErrBadBatch", err)
	}
}

func TestSplit(t *testing.T) {
	d := Synthetic(100, 5)
	train, test, err := d.Split(80)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if train.N != 80 || test.N != 20 {
		t.Fatalf("split sizes: %d/%d", train.N, test.N)
	}
	if err := train.Validate(); err != nil {
		t.Fatalf("train invalid: %v", err)
	}
	if err := test.Validate(); err != nil {
		t.Fatalf("test invalid: %v", err)
	}
	if _, _, err := d.Split(101); err == nil {
		t.Fatal("oversized split accepted")
	}
}

func TestIDXRoundTrip(t *testing.T) {
	d := Synthetic(30, 6)
	var imgs, lbls bytes.Buffer
	if err := WriteIDXImages(&imgs, d); err != nil {
		t.Fatalf("WriteIDXImages: %v", err)
	}
	if err := WriteIDXLabels(&lbls, d); err != nil {
		t.Fatalf("WriteIDXLabels: %v", err)
	}
	got, err := ReadIDX(&imgs, &lbls)
	if err != nil {
		t.Fatalf("ReadIDX: %v", err)
	}
	if got.N != d.N {
		t.Fatalf("N = %d, want %d", got.N, d.N)
	}
	for i := range d.Labels {
		if got.Labels[i] != d.Labels[i] {
			t.Fatalf("label %d differs", i)
		}
	}
	// Pixels survive the byte quantisation within 1/255.
	for i := range d.Images {
		diff := got.Images[i] - d.Images[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 1.0/255+1e-6 {
			t.Fatalf("pixel %d: wrote %f read %f", i, d.Images[i], got.Images[i])
		}
	}
}

func TestReadIDXRejectsBadStreams(t *testing.T) {
	d := Synthetic(5, 8)
	var imgs, lbls bytes.Buffer
	if err := WriteIDXImages(&imgs, d); err != nil {
		t.Fatalf("WriteIDXImages: %v", err)
	}
	if err := WriteIDXLabels(&lbls, d); err != nil {
		t.Fatalf("WriteIDXLabels: %v", err)
	}

	if _, err := ReadIDX(strings.NewReader("xx"), bytes.NewReader(lbls.Bytes())); !errors.Is(err, ErrBadIDX) {
		t.Fatalf("truncated images = %v, want ErrBadIDX", err)
	}
	if _, err := ReadIDX(bytes.NewReader(imgs.Bytes()), strings.NewReader("xx")); !errors.Is(err, ErrBadIDX) {
		t.Fatalf("truncated labels = %v, want ErrBadIDX", err)
	}
	// Swapped streams: label magic where image magic expected.
	if _, err := ReadIDX(bytes.NewReader(lbls.Bytes()), bytes.NewReader(imgs.Bytes())); !errors.Is(err, ErrBadIDX) {
		t.Fatalf("swapped streams = %v, want ErrBadIDX", err)
	}
}

func TestValidateCatchesCorruptLabels(t *testing.T) {
	d := Synthetic(10, 9)
	d.Labels[3] = 99
	if err := d.Validate(); !errors.Is(err, ErrBadDataset) {
		t.Fatalf("Validate = %v, want ErrBadDataset", err)
	}
}

func TestPropertyIDXRoundTripAnySize(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		d := Synthetic(n, seed)
		var imgs, lbls bytes.Buffer
		if err := WriteIDXImages(&imgs, d); err != nil {
			return false
		}
		if err := WriteIDXLabels(&lbls, d); err != nil {
			return false
		}
		got, err := ReadIDX(&imgs, &lbls)
		if err != nil {
			return false
		}
		if got.N != n {
			return false
		}
		for i := range d.Labels {
			if got.Labels[i] != d.Labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
