package mnist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// IDX file format codec (the format of the real MNIST distribution at
// yann.lecun.com/exdb/mnist). The reproduction uses it so real MNIST
// files drop in, and so datasets can live on the emulated secondary
// storage exactly as in the paper's Fig. 5 workflow.

// IDX magic values: two zero bytes, a type byte (0x08 = unsigned byte),
// and the dimension count.
const (
	idxTypeUByte  = 0x08
	idxDimsImages = 3
	idxDimsLabels = 1
)

// ErrBadIDX reports a malformed IDX stream.
var ErrBadIDX = errors.New("mnist: malformed IDX data")

// WriteIDXImages serialises the dataset's images as an IDX ubyte tensor
// (n x Rows x Cols), scaling pixels to 0-255.
func WriteIDXImages(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	header := []interface{}{
		uint32(idxTypeUByte<<8 | idxDimsImages),
		uint32(d.N), uint32(Rows), uint32(Cols),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: write IDX header: %w", err)
		}
	}
	for _, px := range d.Images {
		v := px
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
			return fmt.Errorf("mnist: write IDX pixels: %w", err)
		}
	}
	return bw.Flush()
}

// WriteIDXLabels serialises the dataset's labels as an IDX ubyte vector.
func WriteIDXLabels(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	header := []interface{}{uint32(idxTypeUByte<<8 | idxDimsLabels), uint32(d.N)}
	for _, v := range header {
		if err := binary.Write(bw, binary.BigEndian, v); err != nil {
			return fmt.Errorf("mnist: write IDX header: %w", err)
		}
	}
	for _, l := range d.Labels {
		if err := bw.WriteByte(byte(l)); err != nil {
			return fmt.Errorf("mnist: write IDX labels: %w", err)
		}
	}
	return bw.Flush()
}

// ReadIDX reads paired image and label IDX streams into a Dataset,
// scaling pixels to [0,1].
func ReadIDX(images, labels io.Reader) (*Dataset, error) {
	imgs, n, err := readIDXImages(images)
	if err != nil {
		return nil, err
	}
	lbls, err := readIDXLabels(labels, n)
	if err != nil {
		return nil, err
	}
	d := &Dataset{Images: imgs, Labels: lbls, N: n}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func readIDXImages(r io.Reader) ([]float32, int, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.BigEndian, &hdr[i]); err != nil {
			return nil, 0, fmt.Errorf("%w: image header: %v", ErrBadIDX, err)
		}
	}
	if hdr[0] != uint32(idxTypeUByte<<8|idxDimsImages) {
		return nil, 0, fmt.Errorf("%w: image magic %#x", ErrBadIDX, hdr[0])
	}
	n, rows, cols := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if rows != Rows || cols != Cols {
		return nil, 0, fmt.Errorf("%w: geometry %dx%d, want %dx%d", ErrBadIDX, rows, cols, Rows, Cols)
	}
	buf := make([]byte, n*rows*cols)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, 0, fmt.Errorf("%w: image pixels: %v", ErrBadIDX, err)
	}
	out := make([]float32, len(buf))
	for i, b := range buf {
		out[i] = float32(b) / 255
	}
	return out, n, nil
}

func readIDXLabels(r io.Reader, wantN int) ([]int, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: label header: %v", ErrBadIDX, err)
		}
	}
	if hdr[0] != uint32(idxTypeUByte<<8|idxDimsLabels) {
		return nil, fmt.Errorf("%w: label magic %#x", ErrBadIDX, hdr[0])
	}
	n := int(hdr[1])
	if n != wantN {
		return nil, fmt.Errorf("%w: %d labels for %d images", ErrBadIDX, n, wantN)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: label bytes: %v", ErrBadIDX, err)
	}
	out := make([]int, n)
	for i, b := range buf {
		out[i] = int(b)
	}
	return out, nil
}
