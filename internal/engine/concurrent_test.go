package engine

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentScratchSealOpen drives many goroutines sealing and
// opening through pooled Scratches on one engine — including a shared
// non-thread-safe IV source (math/rand), which the engine must
// serialize internally. Run under -race this is the concurrency proof
// for the parallel mirroring path.
func TestConcurrentScratchSealOpen(t *testing.T) {
	e, err := New(testKey(), WithRand(rand.New(rand.NewSource(11))))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			sc := e.AcquireScratch()
			defer e.ReleaseScratch(sc)
			open := e.AcquireScratch()
			defer e.ReleaseScratch(open)
			for r := 0; r < rounds; r++ {
				v := make([]float32, 1+rng.Intn(300))
				for i := range v {
					v[i] = rng.Float32()
				}
				sealed, err := e.SealFloatsWith(sc, v)
				if err != nil {
					errs <- err
					return
				}
				got := make([]float32, len(v))
				if err := e.OpenFloatsWith(open, got, sealed); err != nil {
					errs <- err
					return
				}
				for i := range v {
					if got[i] != v[i] {
						t.Errorf("goroutine %d round %d: float %d mismatch", g, r, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent seal/open: %v", err)
	}
}

// TestScratchSealMatchesSingleGoroutine asserts the pooled path
// produces buffers the classic single-goroutine path opens, and vice
// versa (same format, same key schedule).
func TestScratchSealMatchesSingleGoroutine(t *testing.T) {
	e := newTestEngine(t)
	v := []float32{1.5, -2.25, 0, 3e-9}

	sc := e.AcquireScratch()
	defer e.ReleaseScratch(sc)
	sealed, err := e.SealFloatsWith(sc, v)
	if err != nil {
		t.Fatalf("SealFloatsWith: %v", err)
	}
	got, err := e.OpenFloats(append([]byte(nil), sealed...))
	if err != nil {
		t.Fatalf("OpenFloats of pooled seal: %v", err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("pooled→classic roundtrip differs at %d", i)
		}
	}

	classic, err := e.SealFloats(v)
	if err != nil {
		t.Fatalf("SealFloats: %v", err)
	}
	dst := make([]float32, len(v))
	if err := e.OpenFloatsWith(sc, dst, classic); err != nil {
		t.Fatalf("OpenFloatsWith of classic seal: %v", err)
	}
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("classic→pooled roundtrip differs at %d", i)
		}
	}
}
