package engine

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"plinius/internal/enclave"
)

func testKey() []byte {
	return []byte("0123456789abcdef")
}

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(testKey(), WithRand(rand.Reader))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewRejectsBadKey(t *testing.T) {
	if _, err := New([]byte("short"), WithRand(rand.Reader)); !errors.Is(err, ErrBadKey) {
		t.Fatalf("short key = %v, want ErrBadKey", err)
	}
}

func TestNewRequiresIVSource(t *testing.T) {
	if _, err := New(testKey()); err == nil {
		t.Fatal("New without rand or enclave succeeded")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	want := []byte("layer weights")
	sealed, err := e.Seal(want)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if len(sealed) != SealedLen(len(want)) {
		t.Fatalf("sealed len = %d, want %d", len(sealed), SealedLen(len(want)))
	}
	got, err := e.Open(sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Open = %q, want %q", got, want)
	}
}

func TestSealedBufferLayout(t *testing.T) {
	// Paper §IV: 12-byte IV + 16-byte MAC = 28 bytes of metadata per
	// buffer.
	if Overhead != 28 {
		t.Fatalf("Overhead = %d, want 28", Overhead)
	}
	e := newTestEngine(t)
	sealed, err := e.Seal([]byte{})
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if len(sealed) != Overhead {
		t.Fatalf("empty plaintext sealed to %d bytes, want %d", len(sealed), Overhead)
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	e := newTestEngine(t)
	sealed, err := e.Seal([]byte("confidential model"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	for _, idx := range []int{0, IVSize, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[idx] ^= 0x01
		if _, err := e.Open(tampered); !errors.Is(err, ErrAuth) {
			t.Fatalf("tampered byte %d: Open = %v, want ErrAuth", idx, err)
		}
	}
}

func TestOpenRejectsShortBuffer(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Open(make([]byte, Overhead-1)); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short Open = %v, want ErrTooShort", err)
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	a := newTestEngine(t)
	b, err := New([]byte("fedcba9876543210"), WithRand(rand.Reader))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sealed, err := a.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := b.Open(sealed); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong-key Open = %v, want ErrAuth", err)
	}
}

func TestSealUsesFreshIVs(t *testing.T) {
	e := newTestEngine(t)
	a, err := e.Seal([]byte("same plaintext"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	b, err := e.Seal([]byte("same plaintext"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Equal(a[:IVSize], b[:IVSize]) {
		t.Fatal("two seals reused the IV")
	}
	if bytes.Equal(a, b) {
		t.Fatal("two seals produced identical ciphertexts")
	}
}

func TestPlainLen(t *testing.T) {
	if _, err := PlainLen(10); !errors.Is(err, ErrTooShort) {
		t.Fatalf("PlainLen(10) err = %v, want ErrTooShort", err)
	}
	n, err := PlainLen(SealedLen(100))
	if err != nil {
		t.Fatalf("PlainLen: %v", err)
	}
	if n != 100 {
		t.Fatalf("PlainLen = %d, want 100", n)
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	want := []float32{0, 1.5, -3.25, math.MaxFloat32, float32(math.Inf(1))}
	sealed, err := e.SealFloats(want)
	if err != nil {
		t.Fatalf("SealFloats: %v", err)
	}
	got, err := e.OpenFloats(sealed)
	if err != nil {
		t.Fatalf("OpenFloats: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("index %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestBytesToFloatsRejectsUnaligned(t *testing.T) {
	if _, err := BytesToFloats(make([]byte, 7)); err == nil {
		t.Fatal("unaligned buffer accepted")
	}
}

func TestPropertySealOpenIdentity(t *testing.T) {
	e := newTestEngine(t)
	f := func(data []byte) bool {
		sealed, err := e.Seal(data)
		if err != nil {
			return false
		}
		got, err := e.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFloatCodecIdentity(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := mrand.New(mrand.NewSource(seed))
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		got, err := BytesToFloats(FloatsToBytes(v))
		if err != nil {
			return false
		}
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnclaveBoundEngineUsesEnclaveRNG(t *testing.T) {
	encl := enclave.New(enclave.SGXEmlPMProfile(), enclave.WithSeed(3))
	e, err := New(testKey(), WithEnclave(encl))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sealed, err := e.Seal([]byte("x"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := e.Open(sealed)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(got) != "x" {
		t.Fatalf("Open = %q", got)
	}
}

func TestEnclaveBoundSealChargesPagingBeyondEPC(t *testing.T) {
	encl := enclave.New(enclave.SGXEmlPMProfile(), enclave.WithSeed(3))
	if err := encl.Reserve(150 << 20); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	e, err := New(testKey(), WithEnclave(encl))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before := encl.Clock().Modeled()
	if _, err := e.Seal(make([]byte, 1<<20)); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if encl.Clock().Modeled() <= before {
		t.Fatal("seal beyond EPC did not charge paging cost")
	}
}

func TestWrapUnwrapKey(t *testing.T) {
	var channel [32]byte
	if _, err := rand.Read(channel[:]); err != nil {
		t.Fatalf("rand: %v", err)
	}
	dataKey, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	wrapped, err := WrapKey(channel, dataKey, rand.Reader)
	if err != nil {
		t.Fatalf("WrapKey: %v", err)
	}
	got, err := UnwrapKey(channel, wrapped)
	if err != nil {
		t.Fatalf("UnwrapKey: %v", err)
	}
	if !bytes.Equal(got, dataKey) {
		t.Fatal("unwrapped key differs")
	}
}

func TestUnwrapKeyWrongChannel(t *testing.T) {
	var a, b [32]byte
	a[0], b[0] = 1, 2
	dataKey, err := GenerateKey(rand.Reader)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	wrapped, err := WrapKey(a, dataKey, rand.Reader)
	if err != nil {
		t.Fatalf("WrapKey: %v", err)
	}
	if _, err := UnwrapKey(b, wrapped); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong-channel UnwrapKey = %v, want ErrAuth", err)
	}
}

func TestWrapKeyRejectsBadKey(t *testing.T) {
	var channel [32]byte
	if _, err := WrapKey(channel, []byte("short"), rand.Reader); !errors.Is(err, ErrBadKey) {
		t.Fatalf("WrapKey short = %v, want ErrBadKey", err)
	}
	if _, err := UnwrapKey(channel, []byte("tiny")); !errors.Is(err, ErrTooShort) {
		t.Fatalf("UnwrapKey tiny = %v, want ErrTooShort", err)
	}
}
