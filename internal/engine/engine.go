// Package engine implements the Plinius encryption engine (paper §IV):
// in-enclave AES-GCM-128 encryption and decryption of model parameters
// mirrored to persistent memory and of training-data batches read from
// PM.
//
// Buffer layout matches the paper: every sealed buffer carries a random
// 12-byte initialisation vector and a 16-byte message authentication
// code, 28 bytes of metadata per encrypted parameter buffer
// (IV ‖ ciphertext ‖ MAC). Keys are 128-bit and are provisioned via the
// remote-attestation secure channel (WrapKey/UnwrapKey) or generated in
// the enclave.
package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"plinius/internal/enclave"
)

// Sizes of the AES-GCM-128 scheme used throughout Plinius.
const (
	KeySize  = 16
	IVSize   = 12
	TagSize  = 16
	Overhead = IVSize + TagSize // 28 B per sealed buffer (§VI CPU/memory overhead)
)

// Errors returned by the engine.
var (
	ErrAuth     = errors.New("engine: authentication failed")
	ErrTooShort = errors.New("engine: sealed buffer too short")
	ErrBadKey   = errors.New("engine: key must be 16 bytes")
)

// Engine seals and opens buffers under one 128-bit data key.
//
// The *Scratch methods reuse internal buffers to avoid garbage on the
// hot mirroring path; like the Plinius training loop itself (§VI: "a
// fairly intensive single-threaded application"), they are not safe for
// concurrent use. The plain Seal/Open methods are.
type Engine struct {
	aead cipher.AEAD
	rng  io.Reader
	encl *enclave.Enclave

	plainScratch  []byte
	sealedScratch []byte
}

// Option configures an Engine.
type Option func(*Engine)

// WithRand sets the IV source. Inside Plinius this is the enclave RNG
// (sgx_read_rand); the default is the enclave passed via WithEnclave, or
// a panic-free zero reader is never used — New requires one of the two.
func WithRand(r io.Reader) Option {
	return func(e *Engine) { e.rng = r }
}

// WithEnclave binds the engine to an enclave: IVs come from the enclave
// RNG and every seal/open charges the EPC paging cost of touching its
// buffers (the dominant save-latency term beyond the EPC limit,
// Table Ia). The charge is host-aware: the enclave pages whenever its
// host's aggregate working set — all co-located enclaves together — is
// over the usable EPC, not only when this enclave alone is.
func WithEnclave(encl *enclave.Enclave) Option {
	return func(e *Engine) { e.encl = encl }
}

// enclaveRand adapts enclave.ReadRand to io.Reader.
type enclaveRand struct{ e *enclave.Enclave }

func (r enclaveRand) Read(p []byte) (int, error) {
	r.e.ReadRand(p)
	return len(p), nil
}

// New creates an engine for the given 128-bit key.
func New(key []byte, opts ...Option) (*Engine, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("engine cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("engine gcm: %w", err)
	}
	e := &Engine{aead: aead}
	for _, opt := range opts {
		opt(e)
	}
	if e.rng == nil {
		if e.encl == nil {
			return nil, errors.New("engine: need WithRand or WithEnclave for IV generation")
		}
		e.rng = enclaveRand{e.encl}
	}
	return e, nil
}

// SealedLen returns the sealed size of an n-byte plaintext.
func SealedLen(n int) int { return n + Overhead }

// PlainLen returns the plaintext size of an n-byte sealed buffer, or an
// error if the buffer cannot hold the metadata.
func PlainLen(n int) (int, error) {
	if n < Overhead {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooShort, n)
	}
	return n - Overhead, nil
}

// Seal encrypts plaintext into IV ‖ ciphertext ‖ MAC with a fresh random
// IV, charging EPC paging for the touched bytes when enclave-bound.
func (e *Engine) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, IVSize, SealedLen(len(plaintext)))
	if _, err := io.ReadFull(e.rng, out[:IVSize]); err != nil {
		return nil, fmt.Errorf("engine iv: %w", err)
	}
	if e.encl != nil {
		e.encl.Touch(len(plaintext) + SealedLen(len(plaintext)))
	}
	return e.aead.Seal(out, out[:IVSize], plaintext, nil), nil
}

// Open authenticates and decrypts a buffer produced by Seal.
func (e *Engine) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(sealed))
	}
	if e.encl != nil {
		e.encl.Touch(2*len(sealed) - Overhead)
	}
	pt, err := e.aead.Open(nil, sealed[:IVSize], sealed[IVSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// SealFloats encrypts a float32 vector (model weights/biases) in
// little-endian IEEE-754 encoding.
func (e *Engine) SealFloats(v []float32) ([]byte, error) {
	return e.Seal(FloatsToBytes(v))
}

// OpenFloats decrypts a buffer produced by SealFloats.
func (e *Engine) OpenFloats(sealed []byte) ([]float32, error) {
	pt, err := e.Open(sealed)
	if err != nil {
		return nil, err
	}
	return BytesToFloats(pt)
}

func (e *Engine) growPlain(n int) []byte {
	if cap(e.plainScratch) < n {
		e.plainScratch = make([]byte, n)
	}
	return e.plainScratch[:n]
}

func (e *Engine) growSealed(n int) []byte {
	if cap(e.sealedScratch) < n {
		e.sealedScratch = make([]byte, n)
	}
	return e.sealedScratch[:n]
}

// SealFloatsScratch is SealFloats without allocation: the returned
// slice aliases an internal buffer and is only valid until the next
// *Scratch call. Single-goroutine use only.
func (e *Engine) SealFloatsScratch(v []float32) ([]byte, error) {
	plain := e.growPlain(4 * len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(plain[4*i:], math.Float32bits(f))
	}
	out := e.growSealed(SealedLen(len(plain)))[:IVSize]
	if _, err := io.ReadFull(e.rng, out[:IVSize]); err != nil {
		return nil, fmt.Errorf("engine iv: %w", err)
	}
	if e.encl != nil {
		e.encl.Touch(len(plain) + SealedLen(len(plain)))
	}
	return e.aead.Seal(out, out[:IVSize], plain, nil), nil
}

// OpenFloatsInto authenticates and decrypts sealed into dst without
// allocating. Single-goroutine use only.
func (e *Engine) OpenFloatsInto(dst []float32, sealed []byte) error {
	if len(sealed) < Overhead {
		return fmt.Errorf("%w: %d bytes", ErrTooShort, len(sealed))
	}
	if e.encl != nil {
		e.encl.Touch(2*len(sealed) - Overhead)
	}
	plain, err := e.aead.Open(e.growPlain(len(sealed))[:0], sealed[:IVSize], sealed[IVSize:], nil)
	if err != nil {
		return ErrAuth
	}
	if len(plain) != 4*len(dst) {
		return fmt.Errorf("engine: decrypted %d bytes for %d floats", len(plain), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(plain[4*i:]))
	}
	return nil
}

// FloatsToBytes encodes a float32 vector little-endian.
func FloatsToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

// BytesToFloats decodes a little-endian float32 vector.
func BytesToFloats(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("engine: float buffer length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// GenerateKey produces a fresh 128-bit data key from rng (in Plinius,
// the enclave RNG, when training data arrives unencrypted).
func GenerateKey(rng io.Reader) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("engine keygen: %w", err)
	}
	return key, nil
}

// WrapKey encrypts a 128-bit data key under the remote-attestation
// channel key for provisioning to the enclave (Fig. 5, step 3).
func WrapKey(channelKey [32]byte, dataKey []byte, rng io.Reader) ([]byte, error) {
	if len(dataKey) != KeySize {
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(dataKey))
	}
	block, err := aes.NewCipher(channelKey[:])
	if err != nil {
		return nil, fmt.Errorf("wrap cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("wrap gcm: %w", err)
	}
	iv := make([]byte, IVSize)
	if _, err := io.ReadFull(rng, iv); err != nil {
		return nil, fmt.Errorf("wrap iv: %w", err)
	}
	out := make([]byte, 0, IVSize+KeySize+TagSize)
	out = append(out, iv...)
	return aead.Seal(out, iv, dataKey, nil), nil
}

// UnwrapKey recovers a data key wrapped with WrapKey; it runs inside the
// enclave after attestation.
func UnwrapKey(channelKey [32]byte, wrapped []byte) ([]byte, error) {
	if len(wrapped) < Overhead {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(wrapped))
	}
	block, err := aes.NewCipher(channelKey[:])
	if err != nil {
		return nil, fmt.Errorf("unwrap cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("unwrap gcm: %w", err)
	}
	key, err := aead.Open(nil, wrapped[:IVSize], wrapped[IVSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: unwrapped %d bytes", ErrBadKey, len(key))
	}
	return key, nil
}
