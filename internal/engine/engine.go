// Package engine implements the Plinius encryption engine (paper §IV):
// in-enclave AES-GCM-128 encryption and decryption of model parameters
// mirrored to persistent memory and of training-data batches read from
// PM.
//
// Buffer layout matches the paper: every sealed buffer carries a random
// 12-byte initialisation vector and a 16-byte message authentication
// code, 28 bytes of metadata per encrypted parameter buffer
// (IV ‖ ciphertext ‖ MAC). Keys are 128-bit and are provisioned via the
// remote-attestation secure channel (WrapKey/UnwrapKey) or generated in
// the enclave.
package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"plinius/internal/enclave"
	"plinius/internal/obs"
)

// Process-wide AES-GCM op/byte counters: every seal/open in the
// process, whichever engine instance ran it. The paper's Table Ia
// attributes up to 92% of over-EPC save latency to this work, so the
// totals are first-class observability.
var (
	mSealOps   = obs.Default().Counter("engine_seal_ops_total", "AES-GCM seal operations.")
	mOpenOps   = obs.Default().Counter("engine_open_ops_total", "AES-GCM open operations.")
	mSealBytes = obs.Default().Counter("engine_sealed_bytes_total", "Plaintext bytes sealed.")
	mOpenBytes = obs.Default().Counter("engine_opened_bytes_total", "Sealed bytes opened (incl. 28 B metadata each).")
)

// Sizes of the AES-GCM-128 scheme used throughout Plinius.
const (
	KeySize  = 16
	IVSize   = 12
	TagSize  = 16
	Overhead = IVSize + TagSize // 28 B per sealed buffer (§VI CPU/memory overhead)
)

// Errors returned by the engine.
var (
	ErrAuth     = errors.New("engine: authentication failed")
	ErrTooShort = errors.New("engine: sealed buffer too short")
	ErrBadKey   = errors.New("engine: key must be 16 bytes")
)

// Engine seals and opens buffers under one 128-bit data key.
//
// The *Scratch methods reuse internal buffers to avoid garbage on the
// hot mirroring path; like the Plinius training loop itself (§VI: "a
// fairly intensive single-threaded application"), they are not safe for
// concurrent use. The plain Seal/Open methods are, as are the
// Scratch-pool methods (AcquireScratch / SealFloatsWith /
// OpenFloatsWith): each goroutine stages through its own Scratch while
// the AEAD and the IV source are shared safely — the concurrent mode
// the parallel mirroring path fans out over.
type Engine struct {
	aead cipher.AEAD
	rng  io.Reader
	encl *enclave.Enclave

	// rngMu serializes IV reads: the engine's IV source (the enclave
	// RNG or an injected reader) is not required to be concurrent-safe.
	rngMu sync.Mutex

	// scratch backs the single-goroutine *Scratch methods, which
	// delegate to the *With methods over it.
	scratch Scratch

	// pool recycles Scratch staging pairs for the concurrent seal/open
	// mode.
	pool sync.Pool
}

// Scratch is a per-goroutine pair of staging buffers for the
// concurrent seal/open mode. Obtain one with AcquireScratch, use it
// from a single goroutine, and return it with ReleaseScratch once the
// bytes produced into it are no longer needed.
type Scratch struct {
	plain  []byte
	sealed []byte
}

func (s *Scratch) growPlain(n int) []byte {
	if cap(s.plain) < n {
		s.plain = make([]byte, n)
	}
	return s.plain[:n]
}

func (s *Scratch) growSealed(n int) []byte {
	if cap(s.sealed) < n {
		s.sealed = make([]byte, n)
	}
	return s.sealed[:n]
}

// SealedBuf returns a length-n buffer backed by the scratch's
// sealed-side staging area, for callers loading sealed bytes they will
// immediately OpenFloatsWith on the same scratch (which stages only
// through the plain side, so the two never alias). This keeps hot
// restore loops allocation-free.
func (s *Scratch) SealedBuf(n int) []byte { return s.growSealed(n) }

// Option configures an Engine.
type Option func(*Engine)

// WithRand sets the IV source. Inside Plinius this is the enclave RNG
// (sgx_read_rand); the default is the enclave passed via WithEnclave, or
// a panic-free zero reader is never used — New requires one of the two.
func WithRand(r io.Reader) Option {
	return func(e *Engine) { e.rng = r }
}

// WithEnclave binds the engine to an enclave: IVs come from the enclave
// RNG and every seal/open charges the EPC paging cost of touching its
// buffers (the dominant save-latency term beyond the EPC limit,
// Table Ia). The charge is host-aware: the enclave pages whenever its
// host's aggregate working set — all co-located enclaves together — is
// over the usable EPC, not only when this enclave alone is.
func WithEnclave(encl *enclave.Enclave) Option {
	return func(e *Engine) { e.encl = encl }
}

// enclaveRand adapts enclave.ReadRand to io.Reader.
type enclaveRand struct{ e *enclave.Enclave }

func (r enclaveRand) Read(p []byte) (int, error) {
	r.e.ReadRand(p)
	return len(p), nil
}

// New creates an engine for the given 128-bit key.
func New(key []byte, opts ...Option) (*Engine, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("engine cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("engine gcm: %w", err)
	}
	e := &Engine{aead: aead}
	for _, opt := range opts {
		opt(e)
	}
	if e.rng == nil {
		if e.encl == nil {
			return nil, errors.New("engine: need WithRand or WithEnclave for IV generation")
		}
		e.rng = enclaveRand{e.encl}
	}
	return e, nil
}

// SealedLen returns the sealed size of an n-byte plaintext.
func SealedLen(n int) int { return n + Overhead }

// PlainLen returns the plaintext size of an n-byte sealed buffer, or an
// error if the buffer cannot hold the metadata.
func PlainLen(n int) (int, error) {
	if n < Overhead {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooShort, n)
	}
	return n - Overhead, nil
}

// readIV fills dst with a fresh IV under the RNG lock, so concurrent
// sealers can share one (possibly non-thread-safe) IV source.
func (e *Engine) readIV(dst []byte) error {
	e.rngMu.Lock()
	_, err := io.ReadFull(e.rng, dst)
	e.rngMu.Unlock()
	if err != nil {
		return fmt.Errorf("engine iv: %w", err)
	}
	return nil
}

// Seal encrypts plaintext into IV ‖ ciphertext ‖ MAC with a fresh random
// IV, charging EPC paging for the touched bytes when enclave-bound.
func (e *Engine) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, IVSize, SealedLen(len(plaintext)))
	if err := e.readIV(out[:IVSize]); err != nil {
		return nil, err
	}
	if e.encl != nil {
		e.encl.Touch(len(plaintext) + SealedLen(len(plaintext)))
	}
	mSealOps.Inc()
	mSealBytes.Add(float64(len(plaintext)))
	return e.aead.Seal(out, out[:IVSize], plaintext, nil), nil
}

// Open authenticates and decrypts a buffer produced by Seal.
func (e *Engine) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(sealed))
	}
	if e.encl != nil {
		e.encl.Touch(2*len(sealed) - Overhead)
	}
	mOpenOps.Inc()
	mOpenBytes.Add(float64(len(sealed)))
	pt, err := e.aead.Open(nil, sealed[:IVSize], sealed[IVSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// SealFloats encrypts a float32 vector (model weights/biases) in
// little-endian IEEE-754 encoding.
func (e *Engine) SealFloats(v []float32) ([]byte, error) {
	return e.Seal(FloatsToBytes(v))
}

// OpenFloats decrypts a buffer produced by SealFloats.
func (e *Engine) OpenFloats(sealed []byte) ([]float32, error) {
	pt, err := e.Open(sealed)
	if err != nil {
		return nil, err
	}
	return BytesToFloats(pt)
}

// SealFloatsScratch is SealFloats without allocation: the returned
// slice aliases an internal buffer and is only valid until the next
// *Scratch call. Single-goroutine use only.
func (e *Engine) SealFloatsScratch(v []float32) ([]byte, error) {
	return e.SealFloatsWith(&e.scratch, v)
}

// AcquireScratch returns a staging-buffer pair for the concurrent
// seal/open mode, recycled through an internal pool.
func (e *Engine) AcquireScratch() *Scratch {
	if s, ok := e.pool.Get().(*Scratch); ok {
		return s
	}
	return &Scratch{}
}

// ReleaseScratch returns a Scratch to the pool. Buffers previously
// returned by SealFloatsWith on it become invalid.
func (e *Engine) ReleaseScratch(s *Scratch) {
	if s != nil {
		e.pool.Put(s)
	}
}

// SealFloatsWith is SealFloatsScratch staged through the caller's
// Scratch instead of the engine's internal buffers: safe for any
// number of goroutines each holding its own Scratch. The returned
// slice aliases sc and is valid until sc's next use or release.
func (e *Engine) SealFloatsWith(sc *Scratch, v []float32) ([]byte, error) {
	plain := sc.growPlain(4 * len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(plain[4*i:], math.Float32bits(f))
	}
	out := sc.growSealed(SealedLen(len(plain)))[:IVSize]
	if err := e.readIV(out[:IVSize]); err != nil {
		return nil, err
	}
	if e.encl != nil {
		e.encl.Touch(len(plain) + SealedLen(len(plain)))
	}
	mSealOps.Inc()
	mSealBytes.Add(float64(len(plain)))
	return e.aead.Seal(out, out[:IVSize], plain, nil), nil
}

// OpenFloatsWith is OpenFloatsInto staged through the caller's
// Scratch: safe for any number of goroutines each holding its own
// Scratch.
func (e *Engine) OpenFloatsWith(sc *Scratch, dst []float32, sealed []byte) error {
	if len(sealed) < Overhead {
		return fmt.Errorf("%w: %d bytes", ErrTooShort, len(sealed))
	}
	if e.encl != nil {
		e.encl.Touch(2*len(sealed) - Overhead)
	}
	mOpenOps.Inc()
	mOpenBytes.Add(float64(len(sealed)))
	plain, err := e.aead.Open(sc.growPlain(len(sealed))[:0], sealed[:IVSize], sealed[IVSize:], nil)
	if err != nil {
		return ErrAuth
	}
	if len(plain) != 4*len(dst) {
		return fmt.Errorf("engine: decrypted %d bytes for %d floats", len(plain), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(plain[4*i:]))
	}
	return nil
}

// OpenFloatsInto authenticates and decrypts sealed into dst without
// allocating. Single-goroutine use only.
func (e *Engine) OpenFloatsInto(dst []float32, sealed []byte) error {
	return e.OpenFloatsWith(&e.scratch, dst, sealed)
}

// FloatsToBytes encodes a float32 vector little-endian.
func FloatsToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

// BytesToFloats decodes a little-endian float32 vector.
func BytesToFloats(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("engine: float buffer length %d not a multiple of 4", len(b))
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}

// GenerateKey produces a fresh 128-bit data key from rng (in Plinius,
// the enclave RNG, when training data arrives unencrypted).
func GenerateKey(rng io.Reader) ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("engine keygen: %w", err)
	}
	return key, nil
}

// WrapKey encrypts a 128-bit data key under the remote-attestation
// channel key for provisioning to the enclave (Fig. 5, step 3).
func WrapKey(channelKey [32]byte, dataKey []byte, rng io.Reader) ([]byte, error) {
	if len(dataKey) != KeySize {
		return nil, fmt.Errorf("%w: got %d", ErrBadKey, len(dataKey))
	}
	block, err := aes.NewCipher(channelKey[:])
	if err != nil {
		return nil, fmt.Errorf("wrap cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("wrap gcm: %w", err)
	}
	iv := make([]byte, IVSize)
	if _, err := io.ReadFull(rng, iv); err != nil {
		return nil, fmt.Errorf("wrap iv: %w", err)
	}
	out := make([]byte, 0, IVSize+KeySize+TagSize)
	out = append(out, iv...)
	return aead.Seal(out, iv, dataKey, nil), nil
}

// UnwrapKey recovers a data key wrapped with WrapKey; it runs inside the
// enclave after attestation.
func UnwrapKey(channelKey [32]byte, wrapped []byte) ([]byte, error) {
	if len(wrapped) < Overhead {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(wrapped))
	}
	block, err := aes.NewCipher(channelKey[:])
	if err != nil {
		return nil, fmt.Errorf("unwrap cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("unwrap gcm: %w", err)
	}
	key, err := aead.Open(nil, wrapped[:IVSize], wrapped[IVSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: unwrapped %d bytes", ErrBadKey, len(key))
	}
	return key, nil
}
