package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	mrand "math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/chaos"
	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mirror"
	"plinius/internal/obs"
)

// Fleet errors.
var (
	ErrClosed = errors.New("fleet: fleet is closed")
	// ErrUnavailable is returned when a batch cannot be served because
	// the fleet has no live capacity: hosts are down and the survivors
	// hold no serving groups (a replan is in progress or has failed).
	// It is transient — a rejoining host clears it — so the serving
	// front end maps it to 503 + Retry-After rather than a hard error.
	ErrUnavailable = errors.New("fleet: no serving capacity (hosts down or replan in progress)")
	// ErrDegraded marks the fleet's degraded serving state: survivors
	// could not hold the full resident placement, so the fleet fell
	// back to a single streaming shard group. Serving continues —
	// slower, paying PM restores per batch — which is the point: the
	// degradation ladder is resident → streaming → shed, and ErrDegraded
	// names the middle rung in Stats and health reports.
	ErrDegraded = errors.New("fleet: degraded serving (streaming on survivors)")
	// ErrHandoffFault is returned by a Channel whose bounded retry could
	// not carry a hand-off through injected or transient faults. The
	// router treats it as retryable.
	ErrHandoffFault = errors.New("fleet: hand-off failed after retries")
)

// Default hand-off fault policy: a transient channel fault is re-sent
// up to defaultHandoffRetries times with exponential backoff starting
// at defaultHandoffBackoff.
const (
	defaultHandoffRetries = 5
	defaultHandoffBackoff = 200 * time.Microsecond
	// maxBatchRetries bounds the router-level retry of one micro-batch
	// across recoveries: each retry follows a detection + eviction +
	// replan pass, so more than a few only means hosts keep dying
	// faster than the fleet can replan.
	maxBatchRetries = 4
)

// Options parameterises New.
type Options struct {
	// Hosts is the fleet, in placement order. At least one is required;
	// the placement planner bin-packs shards across their headrooms.
	Hosts []*enclave.Host
	// Replicas is the number of replica groups (full copies of the
	// shard plan). Zero or negative packs as many as the fleet's
	// capacity admits, at least one and at most one per host.
	Replicas int
	// Batch is the micro-batch size every group's plan reserves
	// activation buffers for. Zero uses the model's configured batch.
	Batch int
	// OverheadBytes is the parked per-shard-enclave working set
	// (default core.DefaultShardOverheadBytes).
	OverheadBytes int
	// ChannelLatency is the modeled one-way latency of each inter-host
	// hand-off channel.
	ChannelLatency time.Duration
	// ChannelBandwidth is the modeled channel bandwidth in bytes per
	// second; zero or negative means unbounded.
	ChannelBandwidth float64
	// Seed differentiates the shard enclaves' RNGs across groups.
	Seed int64
	// DisablePrefetch turns off double-buffered restores in every
	// group's pipeline.
	DisablePrefetch bool
	// ChannelFaults, when non-nil, supplies a fault injector for each
	// inter-host channel as it is provisioned (keyed by the endpoint
	// host indices). Nil injectors are fine; the channel runs clean.
	ChannelFaults func(fromHost, toHost int) *chaos.Injector
	// HandoffDeadline bounds one hand-off transfer's modeled wire time:
	// a transfer delayed past it is treated as lost and re-sent. Zero
	// disables the deadline (a transfer is only re-sent when dropped).
	HandoffDeadline time.Duration
	// HandoffRetries caps re-sends of one hand-off after transient
	// faults (default defaultHandoffRetries). Negative disables retry.
	HandoffRetries int
	// HandoffBackoff is the base of the exponential backoff between
	// hand-off re-sends (default defaultHandoffBackoff).
	HandoffBackoff time.Duration
	// DispatchDeadline bounds one micro-batch's total dispatch time
	// across router-level retries and recoveries, in wall-clock time.
	// Zero means no deadline.
	DispatchDeadline time.Duration
	// Metrics is the registry the fabric series register into
	// (fleet_handoff_bytes_total and friends, plus every group's
	// shard counters labeled group=g). Nil gives the fleet a private
	// registry.
	Metrics *obs.Registry
}

// group is one replica group: a full copy of the shard plan, placed on
// its assignment of hosts, with an in-flight batch count the router
// balances on.
type group struct {
	sg       *core.ShardGroup
	hosts    []int // per-shard host index, into Fleet.hosts
	inflight atomic.Int64
}

// handoff implements core.Handoff for one replica group: stage pairs
// on the same host keep the in-process buffer pass (Carry is a no-op),
// pairs on different hosts get an attested Channel provisioned at Bind
// time.
type handoff struct {
	fl    *Fleet
	hosts []int
	chans map[int]*Channel // keyed by `from` stage index
}

func (h *handoff) Bind(from, to int, src, dst *enclave.Enclave) error {
	if h.hosts[from] == h.hosts[to] {
		return nil
	}
	var faults *chaos.Injector
	if h.fl.channelFaults != nil {
		faults = h.fl.channelFaults(h.hosts[from], h.hosts[to])
	}
	ch, err := newChannel(from, to, src, dst, chanConfig{
		latency:   h.fl.latency,
		bandwidth: h.fl.bandwidth,
		deadline:  h.fl.handoffDeadline,
		retries:   h.fl.handoffRetries,
		backoff:   h.fl.handoffBackoff,
		faults:    faults,
		mBytes:    h.fl.mBytes,
		mSeconds:  h.fl.mSeconds,
		mRetries:  h.fl.mRetries,
	})
	if err != nil {
		return err
	}
	h.chans[from] = ch
	h.fl.chanMu.Lock()
	h.fl.channels = append(h.fl.channels, ch)
	h.fl.chanMu.Unlock()
	return nil
}

func (h *handoff) Carry(from, to int, sealed []byte) error {
	ch := h.chans[from]
	if ch == nil {
		return nil // co-located stages: the in-process pass suffices
	}
	return ch.Carry(sealed)
}

// Fleet serves one logical model across many hosts: replica groups of
// pipelined shard enclaves, placed by the bin-packing planner, joined
// by attested inter-host channels, fronted by a least-loaded
// micro-batch router. ClassifyBatch is safe for concurrent use.
//
// Control operations (Refresh, Rotate, Close) drain and flip the whole
// fleet atomically: intake holds the read side of a lock for the full
// life of each batch, the control path takes the write side, so every
// in-flight batch completes on the old version, no new batch starts
// until the flip is done, and no request is ever dropped.
type Fleet struct {
	f         *core.Framework
	net       *darknet.Network // planning-side model parse, kept for replans
	hosts     []*enclave.Host
	placement Placement
	groups    []*group
	batch     int
	inputSize int
	overhead  int

	seed            int64
	epoch           int64 // bumped per group rebuild, differentiates enclave RNGs
	replicasOpt     int
	disablePrefetch bool

	latency   time.Duration
	bandwidth float64

	channelFaults    func(fromHost, toHost int) *chaos.Injector
	handoffDeadline  time.Duration
	handoffRetries   int
	handoffBackoff   time.Duration
	dispatchDeadline time.Duration

	// mu gates intake against control operations (see type doc). The
	// recovery path (eviction + replan) is a control operation: it runs
	// under the write side, so the atomic-flip guarantee extends to
	// failure handling.
	mu     sync.RWMutex
	closed bool
	down   []bool // per-host death marks, guarded by mu

	degraded atomic.Bool

	inflight atomic.Int64

	chanMu   sync.Mutex
	channels []*Channel

	reg       *obs.Registry
	mBytes    *obs.Counter
	mSeconds  *obs.Counter
	mRetries  *obs.Counter
	mHostDown *obs.Counter
	mReplans  *obs.Counter
	mEvicted  *obs.Counter
}

// New builds the fleet: the placement is restored from the durable
// shard + placement manifests when the recorded split still fits the
// current hosts, planned fresh otherwise, then recorded back; one
// shard group per replica group is built on its placed hosts, with
// attested channels provisioned across every host boundary.
func New(f *core.Framework, opts Options) (*Fleet, error) {
	if len(opts.Hosts) == 0 {
		return nil, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	// An independent parse of the model config drives planning: layer
	// footprints come from the same arithmetic the shard groups use,
	// without touching the enclave model.
	net, err := darknet.ParseConfig(strings.NewReader(f.ModelConfigText()),
		mrand.New(mrand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("fleet: model config: %w", err)
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = net.Config.Batch
	}
	if batch <= 0 {
		batch = 1
	}
	overhead := opts.OverheadBytes
	if overhead <= 0 {
		overhead = core.DefaultShardOverheadBytes
	}
	headrooms := make([]int, len(opts.Hosts))
	for i, h := range opts.Hosts {
		if h == nil {
			return nil, fmt.Errorf("fleet: host %d is nil", i)
		}
		headrooms[i] = h.Headroom()
	}

	placement, restored := persistedPlacement(f, net, headrooms, batch, overhead, opts.Replicas)
	if !restored {
		placement, err = PlanPlacement(net, headrooms, batch, overhead, opts.Replicas)
		if err != nil {
			return nil, err
		}
	}

	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	handoffRetries := opts.HandoffRetries
	switch {
	case handoffRetries == 0:
		handoffRetries = defaultHandoffRetries
	case handoffRetries < 0:
		handoffRetries = 0
	}
	handoffBackoff := opts.HandoffBackoff
	if handoffBackoff <= 0 {
		handoffBackoff = defaultHandoffBackoff
	}
	fl := &Fleet{
		f:                f,
		net:              net,
		hosts:            opts.Hosts,
		placement:        placement,
		batch:            batch,
		inputSize:        net.InputSize(),
		overhead:         overhead,
		seed:             opts.Seed,
		replicasOpt:      opts.Replicas,
		disablePrefetch:  opts.DisablePrefetch,
		latency:          opts.ChannelLatency,
		bandwidth:        opts.ChannelBandwidth,
		channelFaults:    opts.ChannelFaults,
		handoffDeadline:  opts.HandoffDeadline,
		handoffRetries:   handoffRetries,
		handoffBackoff:   handoffBackoff,
		dispatchDeadline: opts.DispatchDeadline,
		down:             make([]bool, len(opts.Hosts)),
		reg:              reg,
	}
	// Fabric series register up front, so the families exist (at zero)
	// even for a single-host fleet with no cross-host channel — the
	// chaos families included, so a healthy fleet exposes them at zero.
	fl.mBytes = reg.Counter("fleet_handoff_bytes_total",
		"Sealed activation bytes carried across inter-host hand-off channels.")
	fl.mSeconds = reg.Counter("fleet_handoff_seconds_total",
		"Modeled wire time of inter-host hand-offs, in seconds.")
	fl.mRetries = reg.Counter("fleet_handoff_retries_total",
		"Hand-off transfers re-sent after a transient channel fault.")
	fl.mHostDown = reg.Counter("fleet_host_down_total",
		"Fleet hosts detected dead and marked down.")
	fl.mReplans = reg.Counter("fleet_replans_total",
		"Placement replans (host-failure recovery and rejoin promotion).")
	fl.mEvicted = reg.Counter("fleet_evicted_groups_total",
		"Replica groups evicted because a host they touched died.")
	reg.GaugeFunc("fleet_degraded",
		"1 while the fleet serves degraded (streaming on survivors), else 0.",
		func() float64 {
			if fl.degraded.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("fleet_router_queue_depth",
		"Micro-batches currently in flight across the fleet router.",
		func() float64 { return float64(fl.inflight.Load()) })
	for i, h := range opts.Hosts {
		host := h
		reg.GaugeFunc("fleet_host_headroom_bytes",
			"Unreserved usable EPC per fleet host.",
			func() float64 { return float64(host.Headroom()) },
			obs.Label{Key: "host", Value: strconv.Itoa(i)})
	}

	groups, err := fl.buildGroups(placement.Plan, placement.Groups, 0)
	if err != nil {
		return nil, err
	}
	fl.groups = groups
	if err := f.RecordPlacement(placementEntries(placement)); err != nil {
		for _, g := range fl.groups {
			_ = g.sg.Close()
		}
		return nil, fmt.Errorf("fleet: record placement: %w", err)
	}
	return fl, nil
}

// buildGroups builds one shard group per assignment, on its placed
// hosts, with attested channels across every host boundary. labelBase
// offsets the group metric label so replacement groups built after an
// eviction do not collide with survivors. On error every group built so
// far is closed.
func (fl *Fleet) buildGroups(plan []darknet.ShardRange, assignments [][]int, labelBase int) ([]*group, error) {
	var groups []*group
	fail := func(err error) ([]*group, error) {
		for _, g := range groups {
			_ = g.sg.Close()
		}
		return nil, err
	}
	epoch := fl.epoch
	fl.epoch++
	for gi, assignment := range assignments {
		shardHosts := make([]*enclave.Host, len(assignment))
		for s, h := range assignment {
			shardHosts[s] = fl.hosts[h]
		}
		hd := &handoff{fl: fl, hosts: assignment, chans: make(map[int]*Channel)}
		sg, err := fl.f.NewShardGroup(core.ShardOptions{
			Plan:            plan,
			Hosts:           shardHosts,
			Host:            shardHosts[0],
			Handoff:         hd,
			Batch:           fl.batch,
			OverheadBytes:   fl.overhead,
			Seed:            fl.seed + epoch*65536 + int64(gi)*1024,
			DisablePrefetch: fl.disablePrefetch,
			Metrics:         fl.reg,
			Labels:          []obs.Label{{Key: "group", Value: strconv.Itoa(labelBase + gi)}},
		})
		if err != nil {
			return fail(fmt.Errorf("fleet: group %d: %w", labelBase+gi, err))
		}
		groups = append(groups, &group{sg: sg, hosts: assignment})
	}
	return groups, nil
}

// placementEntries flattens a placement for the durable manifest.
func placementEntries(p Placement) []mirror.PlacementEntry {
	var entries []mirror.PlacementEntry
	for g, assignment := range p.Groups {
		for s, h := range assignment {
			entries = append(entries, mirror.PlacementEntry{Group: g, Shard: s, Host: h})
		}
	}
	return entries
}

// persistedPlacement tries to restore the previously recorded
// placement: the durable shard manifest gives the plan, the placement
// manifest the host assignment. It is honoured only when it still
// describes this fleet — dense groups each covering every shard exactly
// once, host indices in range, and every host's recorded load fitting
// its *current* headroom (hosts shrink, models change; a stale
// placement replans rather than overcommitting a machine).
func persistedPlacement(f *core.Framework, net *darknet.Network, headrooms []int, batch, overhead, replicas int) (Placement, bool) {
	plan := f.PersistedShardPlan(len(net.Layers))
	if plan == nil {
		return Placement{}, false
	}
	entries, err := f.PersistedPlacement()
	if err != nil || len(entries) == 0 {
		return Placement{}, false
	}
	fps, err := footprints(net, plan, batch, darknet.FP32)
	if err != nil {
		return Placement{}, false
	}
	numGroups := 0
	for _, e := range entries {
		if e.Group >= numGroups {
			numGroups = e.Group + 1
		}
	}
	if len(entries) != numGroups*len(plan) {
		return Placement{}, false
	}
	if replicas > 0 && numGroups != replicas {
		return Placement{}, false
	}
	groups := make([][]int, numGroups)
	for g := range groups {
		groups[g] = make([]int, len(plan))
		for s := range groups[g] {
			groups[g][s] = -1
		}
	}
	for _, e := range entries {
		if e.Group < 0 || e.Shard < 0 || e.Shard >= len(plan) ||
			e.Host < 0 || e.Host >= len(headrooms) || groups[e.Group][e.Shard] != -1 {
			return Placement{}, false
		}
		groups[e.Group][e.Shard] = e.Host
	}
	load := make([]int, len(headrooms))
	for _, assignment := range groups {
		for s, h := range assignment {
			load[h] += fps[s] + overhead
		}
	}
	for h, l := range load {
		if l > headrooms[h] {
			return Placement{}, false
		}
	}
	return Placement{Plan: plan, Footprints: fps, Groups: groups}, true
}

// pick routes one micro-batch: least-loaded by in-flight count, ties
// broken by a consistent hash of the batch contents so equal-load
// groups still spread deterministically.
func (fl *Fleet) pick(images []float32) *group {
	if len(fl.groups) == 1 {
		return fl.groups[0]
	}
	best := -1
	var bestLoad int64
	tie := false
	for i, g := range fl.groups {
		load := g.inflight.Load()
		switch {
		case best == -1 || load < bestLoad:
			best, bestLoad, tie = i, load, false
		case load == bestLoad:
			tie = true
		}
	}
	if !tie {
		return fl.groups[best]
	}
	h := fnv.New64a()
	n := len(images)
	if n > 64 {
		n = 64
	}
	for _, v := range images[:n] {
		var b [4]byte
		u := uint32(v * 1e6)
		b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		_, _ = h.Write(b[:])
	}
	candidates := make([]*group, 0, len(fl.groups))
	for _, g := range fl.groups {
		if g.inflight.Load() == bestLoad {
			candidates = append(candidates, g)
		}
	}
	if len(candidates) == 0 {
		return fl.groups[best]
	}
	return candidates[h.Sum64()%uint64(len(candidates))]
}

// ClassifyBatch routes the images to a replica group and pipelines
// them through its shard stages. Safe for concurrent use.
func (fl *Fleet) ClassifyBatch(images []float32) ([]int, error) {
	return fl.ClassifyBatchCtx(context.Background(), images)
}

// ClassifyBatchCtx is ClassifyBatch with a context (obs.Trace spans
// ride through to the shard pipeline). The read lock is held for the
// whole batch, so a concurrent Refresh/Rotate/Close waits out every
// admitted batch before flipping — no request is ever dropped by a
// control operation.
//
// Failure handling rides the same path: a batch that dies on a killed
// host (or exhausts a channel's transient-fault retry) triggers a
// recovery pass — mark hosts down, evict every group touching one,
// replan on the survivors — and is then re-routed to a surviving
// group. Sealed per-batch hand-offs make the re-route idempotent, so
// an accepted batch survives a host kill with no drop; only when the
// whole fleet is gone (or DispatchDeadline expires) does the batch
// fail, typed ErrUnavailable.
func (fl *Fleet) ClassifyBatchCtx(ctx context.Context, images []float32) ([]int, error) {
	var deadline time.Time
	if fl.dispatchDeadline > 0 {
		deadline = time.Now().Add(fl.dispatchDeadline)
	}
	for attempt := 0; ; attempt++ {
		classes, err := fl.classifyOnce(ctx, images)
		if err == nil || !retryableFault(err) {
			return classes, err
		}
		if attempt >= maxBatchRetries || ctx.Err() != nil ||
			(!deadline.IsZero() && time.Now().After(deadline)) {
			return nil, fmt.Errorf("%w: %w", ErrUnavailable, err)
		}
		if rerr := fl.recoverHostFailure(); rerr != nil {
			return nil, fmt.Errorf("%w: recovery: %w", ErrUnavailable, rerr)
		}
	}
}

// retryableFault reports whether a batch error means "try another
// group", not "the request is bad": a dead host, an exhausted hand-off
// retry, or a group closed under the batch by a concurrent eviction.
func retryableFault(err error) bool {
	return errors.Is(err, enclave.ErrHostDown) ||
		errors.Is(err, ErrHandoffFault) ||
		errors.Is(err, core.ErrShardGroupClosed)
}

// classifyOnce routes one micro-batch to one replica group under the
// read lock.
func (fl *Fleet) classifyOnce(ctx context.Context, images []float32) ([]int, error) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	if fl.closed {
		return nil, ErrClosed
	}
	if len(fl.groups) == 0 {
		downCount := 0
		for _, d := range fl.down {
			if d {
				downCount++
			}
		}
		return nil, fmt.Errorf("%w: %d of %d hosts down", ErrUnavailable, downCount, len(fl.hosts))
	}
	g := fl.pick(images)
	g.inflight.Add(1)
	fl.inflight.Add(1)
	defer func() {
		g.inflight.Add(-1)
		fl.inflight.Add(-1)
	}()
	return g.sg.ClassifyBatchCtx(ctx, images)
}

// recoverHostFailure is the detection + eviction + replan pass, run
// under the write lock so it is one atomic flip against intake: scan
// the hosts for new deaths, mark them down, close every replica group
// touching a dead host (their enclaves fail fast, so the drain cannot
// wedge), and replan the freed work onto the survivors' headroom. When
// nothing changed — another batch's recovery already ran, or the fault
// was a transient channel error — it returns immediately and the
// caller just retries on the current topology.
func (fl *Fleet) recoverHostFailure() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return ErrClosed
	}
	newly := 0
	for i, h := range fl.hosts {
		if h.Down() && !fl.down[i] {
			fl.down[i] = true
			newly++
			fl.mHostDown.Inc()
		}
	}
	kept := make([]*group, 0, len(fl.groups))
	evicted := 0
	for _, g := range fl.groups {
		dead := false
		for _, hi := range g.hosts {
			if fl.down[hi] {
				dead = true
				break
			}
		}
		if dead {
			_ = g.sg.Close()
			evicted++
			fl.mEvicted.Inc()
		} else {
			kept = append(kept, g)
		}
	}
	if newly == 0 && evicted == 0 {
		return nil
	}
	fl.groups = kept
	return fl.replanLocked()
}

// replanLocked replans placement over the live hosts' current headroom
// and rebuilds groups to match, holding fl.mu. Survivor groups keep
// serving untouched; freed capacity is refilled with replacement
// groups when it admits them. When no group survived and the survivors
// cannot hold a full resident placement, the fleet degrades to a
// single streaming shard group (resident → streaming → shed ladder)
// rather than going dark. The final placement is recorded to the
// durable manifest — a Romulus transaction, so a crash mid-rewrite
// recovers either the old or the new placement, never a torn mix.
func (fl *Fleet) replanLocked() error {
	fl.mReplans.Inc()
	fl.degraded.Store(false)
	var live []int
	for i := range fl.hosts {
		if !fl.down[i] {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		// Total outage: shed until a host rejoins.
		fl.placement.Groups = nil
		return nil
	}
	headrooms := make([]int, len(live))
	for j, i := range live {
		headrooms[j] = fl.hosts[i].Headroom()
	}

	if len(fl.groups) > 0 {
		// Survivors keep serving on the shared plan; top up replica
		// groups on the freed capacity when it admits full copies.
		var extra [][]int
		if fl.replicasOpt > 0 {
			if want := fl.replicasOpt - len(fl.groups); want > 0 {
				if a, ok := assign(fl.placement.Footprints, headrooms, fl.overhead, want); ok {
					extra = remapHosts(a, live)
				}
			}
		} else {
			for n := 1; len(fl.groups)+n <= len(live); n++ {
				a, ok := assign(fl.placement.Footprints, headrooms, fl.overhead, n)
				if !ok {
					break
				}
				extra = remapHosts(a, live)
			}
		}
		if len(extra) > 0 {
			groups, err := fl.buildGroups(fl.placement.Plan, extra, len(fl.groups))
			if err == nil {
				fl.groups = append(fl.groups, groups...)
			}
			// A failed top-up is not fatal: the survivors still serve.
		}
		fl.syncPlacementLocked()
		return fl.recordPlacementLocked()
	}

	// Nothing survived: plan fresh over the survivors. Resident first;
	// when that is infeasible, degrade to one streaming group instead
	// of shedding.
	placement, err := PlanPlacement(fl.net, headrooms, fl.batch, fl.overhead, fl.replicasOpt)
	if err == nil {
		placement.Groups = remapHosts(placement.Groups, live)
		groups, berr := fl.buildGroups(placement.Plan, placement.Groups, 0)
		if berr != nil {
			return berr
		}
		fl.groups = groups
		fl.placement = placement
		return fl.recordPlacementLocked()
	}
	if !errors.Is(err, ErrInfeasible) {
		return err
	}
	placement, err = fl.degradedPlacement(live, headrooms)
	if err != nil {
		// Even streaming cannot be built; shed until a host rejoins.
		fl.placement.Groups = nil
		return fl.recordPlacementLocked()
	}
	groups, err := fl.buildGroups(placement.Plan, placement.Groups, 0)
	if err != nil {
		return err
	}
	fl.groups = groups
	fl.placement = placement
	fl.degraded.Store(true)
	return fl.recordPlacementLocked()
}

// degradedPlacement plans the streaming fallback: shards bounded by the
// roomiest survivor's headroom, assigned across the survivors by
// remaining capacity, one group. The shards will not all be resident —
// that is the point; the shard groups' per-host residency logic parks
// the overflow in PM and streams it per batch.
func (fl *Fleet) degradedPlacement(live []int, headrooms []int) (Placement, error) {
	maxHead := 0
	for _, h := range headrooms {
		if h > maxHead {
			maxHead = h
		}
	}
	bound := maxHead - fl.overhead
	if bound < 1 {
		bound = 1
	}
	plan, err := fl.net.PlanShardsAt(bound, fl.batch, darknet.FP32)
	if err != nil {
		return Placement{}, fmt.Errorf("fleet: degraded plan: %w", err)
	}
	fps, err := footprints(fl.net, plan, fl.batch, darknet.FP32)
	if err != nil {
		return Placement{}, err
	}
	remaining := append([]int(nil), headrooms...)
	assignment := make([]int, len(plan))
	for s := range plan {
		best := 0
		for h, rem := range remaining {
			if rem > remaining[best] {
				best = h
			}
		}
		remaining[best] -= fl.overhead
		assignment[s] = live[best]
	}
	return Placement{Plan: plan, Footprints: fps, Groups: [][]int{assignment}}, nil
}

// remapHosts rewrites planner-local host indices (positions in the live
// list) back to fleet host indices.
func remapHosts(groups [][]int, live []int) [][]int {
	out := make([][]int, len(groups))
	for g, a := range groups {
		out[g] = make([]int, len(a))
		for s, h := range a {
			out[g][s] = live[h]
		}
	}
	return out
}

// syncPlacementLocked rebuilds fl.placement.Groups from the live
// groups' actual assignments.
func (fl *Fleet) syncPlacementLocked() {
	assignments := make([][]int, len(fl.groups))
	for i, g := range fl.groups {
		assignments[i] = g.hosts
	}
	fl.placement.Groups = assignments
}

// recordPlacementLocked writes the current placement to the durable
// manifest (one Romulus transaction: old or new, never torn).
func (fl *Fleet) recordPlacementLocked() error {
	if err := fl.f.RecordPlacement(placementEntries(fl.placement)); err != nil {
		return fmt.Errorf("fleet: record placement: %w", err)
	}
	return nil
}

// Rejoin re-admits hosts that have come back (enclave.Host.Rejoin) and
// promotes the fleet back to the best placement the live hosts can
// hold: everything is drained and rebuilt under the write lock, so the
// promotion is one atomic flip and — the planner being deterministic —
// a fully healed fleet lands back on its original resident placement.
func (fl *Fleet) Rejoin() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return ErrClosed
	}
	changed := false
	for i, h := range fl.hosts {
		if fl.down[i] && !h.Down() {
			fl.down[i] = false
			changed = true
		}
	}
	if !changed {
		return nil
	}
	for _, g := range fl.groups {
		_ = g.sg.Close()
	}
	fl.groups = nil
	return fl.replanLocked()
}

// control drains the fleet and runs op on every replica group under
// the write lock: one atomic fleet-wide flip.
func (fl *Fleet) control(op func(*core.ShardGroup) (int, error)) (int, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return 0, ErrClosed
	}
	iter := 0
	for gi, g := range fl.groups {
		it, err := op(g.sg)
		if err != nil {
			// The errored group kept its old version coherently (shard
			// groups stage their flips); groups before it already moved.
			// Surface the split-version state to the caller.
			return 0, fmt.Errorf("fleet: group %d: %w", gi, err)
		}
		iter = it
	}
	return iter, nil
}

// Refresh drains the fleet and rolls every replica group to the latest
// published version together.
func (fl *Fleet) Refresh() (int, error) {
	return fl.control((*core.ShardGroup).Refresh)
}

// Rotate drains the fleet and re-provisions the framework's current
// data key into every shard enclave of every group, then refreshes to
// the snapshot published under it. Call Framework.RotateKey first.
func (fl *Fleet) Rotate() (int, error) {
	return fl.control((*core.ShardGroup).Rotate)
}

// Close drains the fleet and tears down every replica group, returning
// all shard enclaves' footprints to their hosts.
func (fl *Fleet) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return ErrClosed
	}
	fl.closed = true
	var firstErr error
	for _, g := range fl.groups {
		if err := g.sg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Hosts returns the number of hosts in the fleet.
func (fl *Fleet) Hosts() int { return len(fl.hosts) }

// Groups returns the number of replica groups.
func (fl *Fleet) Groups() int {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	return len(fl.groups)
}

// Shards returns the number of pipeline stages per replica group.
func (fl *Fleet) Shards() int {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	return len(fl.placement.Plan)
}

// Window returns the fleet's total in-flight batch capacity (the sum
// of the groups' pipeline windows).
func (fl *Fleet) Window() int {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	w := 0
	for _, g := range fl.groups {
		w += g.sg.Window()
	}
	return w
}

// Streaming reports whether any replica group streams parked ranges
// from PM per batch.
func (fl *Fleet) Streaming() bool {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	for _, g := range fl.groups {
		if g.sg.Streaming() {
			return true
		}
	}
	return false
}

// Degraded reports whether the fleet is serving degraded: survivors
// could not hold the full resident placement and the fleet fell back
// to a streaming group (the ErrDegraded state).
func (fl *Fleet) Degraded() bool { return fl.degraded.Load() }

// HostsDown returns how many fleet hosts are currently marked down.
func (fl *Fleet) HostsDown() int {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	n := 0
	for _, d := range fl.down {
		if d {
			n++
		}
	}
	return n
}

// Replans counts placement replans (failure recovery and rejoin
// promotion).
func (fl *Fleet) Replans() uint64 { return uint64(fl.mReplans.Value()) }

// EvictedGroups counts replica groups evicted because a host died.
func (fl *Fleet) EvictedGroups() uint64 { return uint64(fl.mEvicted.Value()) }

// HandoffRetries counts hand-off transfers re-sent after transient
// channel faults.
func (fl *Fleet) HandoffRetries() uint64 { return uint64(fl.mRetries.Value()) }

// Batch returns the plan's micro-batch bound.
func (fl *Fleet) Batch() int { return fl.batch }

// InputSize returns the flattened per-image input size.
func (fl *Fleet) InputSize() int { return fl.inputSize }

// Version returns the published model version the fleet serves (the
// groups flip together, so any group's answer is the fleet's). Zero
// while a total outage leaves the fleet with no groups.
func (fl *Fleet) Version() uint64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	if len(fl.groups) == 0 {
		return 0
	}
	return fl.groups[0].sg.Version()
}

// Iteration returns the training iteration of the served snapshot, or
// zero while the fleet has no groups.
func (fl *Fleet) Iteration() int {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	if len(fl.groups) == 0 {
		return 0
	}
	return fl.groups[0].sg.Iteration()
}

// Placement returns the fleet's placement (shared plan, per-group host
// assignment).
func (fl *Fleet) Placement() Placement {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	p := Placement{
		Plan:       append([]darknet.ShardRange(nil), fl.placement.Plan...),
		Footprints: append([]int(nil), fl.placement.Footprints...),
		Groups:     make([][]int, len(fl.placement.Groups)),
	}
	for g, a := range fl.placement.Groups {
		p.Groups[g] = append([]int(nil), a...)
	}
	return p
}

// Metrics returns the registry holding the fleet's fabric series and
// every group's shard counters.
func (fl *Fleet) Metrics() *obs.Registry { return fl.reg }

// InFlight returns the micro-batches currently inside the router.
func (fl *Fleet) InFlight() int { return int(fl.inflight.Load()) }

// HandoffBytes returns the sealed bytes carried across all inter-host
// channels.
func (fl *Fleet) HandoffBytes() uint64 {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	var total uint64
	for _, c := range fl.channels {
		total += c.Bytes()
	}
	return total
}

// HandoffTransfers returns the number of inter-host hand-offs carried.
func (fl *Fleet) HandoffTransfers() uint64 {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	var total uint64
	for _, c := range fl.channels {
		total += c.Transfers()
	}
	return total
}

// Channels returns the number of attested inter-host channels.
func (fl *Fleet) Channels() int {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	return len(fl.channels)
}

// sumGroups totals one shard-group counter across the fleet.
func (fl *Fleet) sumGroups(pick func(*core.ShardGroup) uint64) uint64 {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	var total uint64
	for _, g := range fl.groups {
		total += pick(g.sg)
	}
	return total
}

// Restores counts layer-range restores from PM across all groups.
func (fl *Fleet) Restores() uint64 {
	return fl.sumGroups((*core.ShardGroup).Restores)
}

// Stalls counts pipeline stalls across all groups.
func (fl *Fleet) Stalls() uint64 {
	return fl.sumGroups((*core.ShardGroup).Stalls)
}

// PrefetchWaits counts prefetch waits across all groups.
func (fl *Fleet) PrefetchWaits() uint64 {
	return fl.sumGroups((*core.ShardGroup).PrefetchWaits)
}

// PrefetchedRestores counts background-prefetched restores across all
// groups.
func (fl *Fleet) PrefetchedRestores() uint64 {
	return fl.sumGroups((*core.ShardGroup).PrefetchedRestores)
}

// HostReport is one host's view in the fleet: its EPC budget, load,
// paging, and the shard ranges placed on it.
type HostReport struct {
	Host              int      `json:"host"`
	Down              bool     `json:"down"`
	UsableEPC         int      `json:"usable_epc_bytes"`
	ResidentBytes     int      `json:"resident_bytes"`
	PeakResidentBytes int      `json:"peak_resident_bytes"`
	HeadroomBytes     int      `json:"headroom_bytes"`
	EPCPressure       float64  `json:"epc_pressure"`
	PageSwaps         uint64   `json:"page_swaps"`
	Shards            []string `json:"shards"`
}

// HostReports returns one report per fleet host.
func (fl *Fleet) HostReports() []HostReport {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	reports := make([]HostReport, len(fl.hosts))
	for i, h := range fl.hosts {
		st := h.Stats()
		usable := h.UsableEPC()
		r := HostReport{
			Host:              i,
			Down:              fl.down[i],
			UsableEPC:         usable,
			ResidentBytes:     st.ResidentBytes,
			PeakResidentBytes: st.PeakResidentBytes,
			HeadroomBytes:     h.Headroom(),
			PageSwaps:         st.PageSwaps,
		}
		if usable > 0 {
			r.EPCPressure = float64(st.ResidentBytes) / float64(usable)
		}
		for g, assignment := range fl.placement.Groups {
			for s, host := range assignment {
				if host == i {
					rng := fl.placement.Plan[s]
					r.Shards = append(r.Shards,
						fmt.Sprintf("g%d:[%d,%d)", g, rng.From, rng.To))
				}
			}
		}
		reports[i] = r
	}
	return reports
}
