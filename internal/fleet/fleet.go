package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	mrand "math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mirror"
	"plinius/internal/obs"
)

// Fleet errors.
var ErrClosed = errors.New("fleet: fleet is closed")

// Options parameterises New.
type Options struct {
	// Hosts is the fleet, in placement order. At least one is required;
	// the placement planner bin-packs shards across their headrooms.
	Hosts []*enclave.Host
	// Replicas is the number of replica groups (full copies of the
	// shard plan). Zero or negative packs as many as the fleet's
	// capacity admits, at least one and at most one per host.
	Replicas int
	// Batch is the micro-batch size every group's plan reserves
	// activation buffers for. Zero uses the model's configured batch.
	Batch int
	// OverheadBytes is the parked per-shard-enclave working set
	// (default core.DefaultShardOverheadBytes).
	OverheadBytes int
	// ChannelLatency is the modeled one-way latency of each inter-host
	// hand-off channel.
	ChannelLatency time.Duration
	// ChannelBandwidth is the modeled channel bandwidth in bytes per
	// second; zero or negative means unbounded.
	ChannelBandwidth float64
	// Seed differentiates the shard enclaves' RNGs across groups.
	Seed int64
	// DisablePrefetch turns off double-buffered restores in every
	// group's pipeline.
	DisablePrefetch bool
	// Metrics is the registry the fabric series register into
	// (fleet_handoff_bytes_total and friends, plus every group's
	// shard counters labeled group=g). Nil gives the fleet a private
	// registry.
	Metrics *obs.Registry
}

// group is one replica group: a full copy of the shard plan, placed on
// its assignment of hosts, with an in-flight batch count the router
// balances on.
type group struct {
	sg       *core.ShardGroup
	hosts    []int // per-shard host index, into Fleet.hosts
	inflight atomic.Int64
}

// handoff implements core.Handoff for one replica group: stage pairs
// on the same host keep the in-process buffer pass (Carry is a no-op),
// pairs on different hosts get an attested Channel provisioned at Bind
// time.
type handoff struct {
	fl    *Fleet
	hosts []int
	chans map[int]*Channel // keyed by `from` stage index
}

func (h *handoff) Bind(from, to int, src, dst *enclave.Enclave) error {
	if h.hosts[from] == h.hosts[to] {
		return nil
	}
	ch, err := newChannel(from, to, src, dst,
		h.fl.latency, h.fl.bandwidth, h.fl.mBytes, h.fl.mSeconds)
	if err != nil {
		return err
	}
	h.chans[from] = ch
	h.fl.chanMu.Lock()
	h.fl.channels = append(h.fl.channels, ch)
	h.fl.chanMu.Unlock()
	return nil
}

func (h *handoff) Carry(from, to int, sealed []byte) error {
	ch := h.chans[from]
	if ch == nil {
		return nil // co-located stages: the in-process pass suffices
	}
	return ch.Carry(sealed)
}

// Fleet serves one logical model across many hosts: replica groups of
// pipelined shard enclaves, placed by the bin-packing planner, joined
// by attested inter-host channels, fronted by a least-loaded
// micro-batch router. ClassifyBatch is safe for concurrent use.
//
// Control operations (Refresh, Rotate, Close) drain and flip the whole
// fleet atomically: intake holds the read side of a lock for the full
// life of each batch, the control path takes the write side, so every
// in-flight batch completes on the old version, no new batch starts
// until the flip is done, and no request is ever dropped.
type Fleet struct {
	f         *core.Framework
	hosts     []*enclave.Host
	placement Placement
	groups    []*group
	batch     int
	inputSize int
	overhead  int

	latency   time.Duration
	bandwidth float64

	// mu gates intake against control operations (see type doc).
	mu     sync.RWMutex
	closed bool

	inflight atomic.Int64

	chanMu   sync.Mutex
	channels []*Channel

	reg      *obs.Registry
	mBytes   *obs.Counter
	mSeconds *obs.Counter
}

// New builds the fleet: the placement is restored from the durable
// shard + placement manifests when the recorded split still fits the
// current hosts, planned fresh otherwise, then recorded back; one
// shard group per replica group is built on its placed hosts, with
// attested channels provisioned across every host boundary.
func New(f *core.Framework, opts Options) (*Fleet, error) {
	if len(opts.Hosts) == 0 {
		return nil, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	// An independent parse of the model config drives planning: layer
	// footprints come from the same arithmetic the shard groups use,
	// without touching the enclave model.
	net, err := darknet.ParseConfig(strings.NewReader(f.ModelConfigText()),
		mrand.New(mrand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("fleet: model config: %w", err)
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = net.Config.Batch
	}
	if batch <= 0 {
		batch = 1
	}
	overhead := opts.OverheadBytes
	if overhead <= 0 {
		overhead = core.DefaultShardOverheadBytes
	}
	headrooms := make([]int, len(opts.Hosts))
	for i, h := range opts.Hosts {
		if h == nil {
			return nil, fmt.Errorf("fleet: host %d is nil", i)
		}
		headrooms[i] = h.Headroom()
	}

	placement, restored := persistedPlacement(f, net, headrooms, batch, overhead, opts.Replicas)
	if !restored {
		placement, err = PlanPlacement(net, headrooms, batch, overhead, opts.Replicas)
		if err != nil {
			return nil, err
		}
	}

	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	fl := &Fleet{
		f:         f,
		hosts:     opts.Hosts,
		placement: placement,
		batch:     batch,
		inputSize: net.InputSize(),
		overhead:  overhead,
		latency:   opts.ChannelLatency,
		bandwidth: opts.ChannelBandwidth,
		reg:       reg,
	}
	// Fabric series register up front, so the families exist (at zero)
	// even for a single-host fleet with no cross-host channel.
	fl.mBytes = reg.Counter("fleet_handoff_bytes_total",
		"Sealed activation bytes carried across inter-host hand-off channels.")
	fl.mSeconds = reg.Counter("fleet_handoff_seconds_total",
		"Modeled wire time of inter-host hand-offs, in seconds.")
	reg.GaugeFunc("fleet_router_queue_depth",
		"Micro-batches currently in flight across the fleet router.",
		func() float64 { return float64(fl.inflight.Load()) })
	for i, h := range opts.Hosts {
		host := h
		reg.GaugeFunc("fleet_host_headroom_bytes",
			"Unreserved usable EPC per fleet host.",
			func() float64 { return float64(host.Headroom()) },
			obs.Label{Key: "host", Value: strconv.Itoa(i)})
	}

	fail := func(err error) (*Fleet, error) {
		for _, g := range fl.groups {
			_ = g.sg.Close()
		}
		return nil, err
	}
	for gi, assignment := range placement.Groups {
		shardHosts := make([]*enclave.Host, len(assignment))
		for s, h := range assignment {
			shardHosts[s] = opts.Hosts[h]
		}
		hd := &handoff{fl: fl, hosts: assignment, chans: make(map[int]*Channel)}
		sg, err := f.NewShardGroup(core.ShardOptions{
			Plan:            placement.Plan,
			Hosts:           shardHosts,
			Host:            shardHosts[0],
			Handoff:         hd,
			Batch:           batch,
			OverheadBytes:   overhead,
			Seed:            opts.Seed + int64(gi)*1024,
			DisablePrefetch: opts.DisablePrefetch,
			Metrics:         reg,
			Labels:          []obs.Label{{Key: "group", Value: strconv.Itoa(gi)}},
		})
		if err != nil {
			return fail(fmt.Errorf("fleet: group %d: %w", gi, err))
		}
		fl.groups = append(fl.groups, &group{sg: sg, hosts: assignment})
	}
	if err := f.RecordPlacement(placementEntries(placement)); err != nil {
		return fail(fmt.Errorf("fleet: record placement: %w", err))
	}
	return fl, nil
}

// placementEntries flattens a placement for the durable manifest.
func placementEntries(p Placement) []mirror.PlacementEntry {
	var entries []mirror.PlacementEntry
	for g, assignment := range p.Groups {
		for s, h := range assignment {
			entries = append(entries, mirror.PlacementEntry{Group: g, Shard: s, Host: h})
		}
	}
	return entries
}

// persistedPlacement tries to restore the previously recorded
// placement: the durable shard manifest gives the plan, the placement
// manifest the host assignment. It is honoured only when it still
// describes this fleet — dense groups each covering every shard exactly
// once, host indices in range, and every host's recorded load fitting
// its *current* headroom (hosts shrink, models change; a stale
// placement replans rather than overcommitting a machine).
func persistedPlacement(f *core.Framework, net *darknet.Network, headrooms []int, batch, overhead, replicas int) (Placement, bool) {
	plan := f.PersistedShardPlan(len(net.Layers))
	if plan == nil {
		return Placement{}, false
	}
	entries, err := f.PersistedPlacement()
	if err != nil || len(entries) == 0 {
		return Placement{}, false
	}
	fps, err := footprints(net, plan, batch, darknet.FP32)
	if err != nil {
		return Placement{}, false
	}
	numGroups := 0
	for _, e := range entries {
		if e.Group >= numGroups {
			numGroups = e.Group + 1
		}
	}
	if len(entries) != numGroups*len(plan) {
		return Placement{}, false
	}
	if replicas > 0 && numGroups != replicas {
		return Placement{}, false
	}
	groups := make([][]int, numGroups)
	for g := range groups {
		groups[g] = make([]int, len(plan))
		for s := range groups[g] {
			groups[g][s] = -1
		}
	}
	for _, e := range entries {
		if e.Group < 0 || e.Shard < 0 || e.Shard >= len(plan) ||
			e.Host < 0 || e.Host >= len(headrooms) || groups[e.Group][e.Shard] != -1 {
			return Placement{}, false
		}
		groups[e.Group][e.Shard] = e.Host
	}
	load := make([]int, len(headrooms))
	for _, assignment := range groups {
		for s, h := range assignment {
			load[h] += fps[s] + overhead
		}
	}
	for h, l := range load {
		if l > headrooms[h] {
			return Placement{}, false
		}
	}
	return Placement{Plan: plan, Footprints: fps, Groups: groups}, true
}

// pick routes one micro-batch: least-loaded by in-flight count, ties
// broken by a consistent hash of the batch contents so equal-load
// groups still spread deterministically.
func (fl *Fleet) pick(images []float32) *group {
	if len(fl.groups) == 1 {
		return fl.groups[0]
	}
	best := -1
	var bestLoad int64
	tie := false
	for i, g := range fl.groups {
		load := g.inflight.Load()
		switch {
		case best == -1 || load < bestLoad:
			best, bestLoad, tie = i, load, false
		case load == bestLoad:
			tie = true
		}
	}
	if !tie {
		return fl.groups[best]
	}
	h := fnv.New64a()
	n := len(images)
	if n > 64 {
		n = 64
	}
	for _, v := range images[:n] {
		var b [4]byte
		u := uint32(v * 1e6)
		b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		_, _ = h.Write(b[:])
	}
	candidates := make([]*group, 0, len(fl.groups))
	for _, g := range fl.groups {
		if g.inflight.Load() == bestLoad {
			candidates = append(candidates, g)
		}
	}
	if len(candidates) == 0 {
		return fl.groups[best]
	}
	return candidates[h.Sum64()%uint64(len(candidates))]
}

// ClassifyBatch routes the images to a replica group and pipelines
// them through its shard stages. Safe for concurrent use.
func (fl *Fleet) ClassifyBatch(images []float32) ([]int, error) {
	return fl.ClassifyBatchCtx(context.Background(), images)
}

// ClassifyBatchCtx is ClassifyBatch with a context (obs.Trace spans
// ride through to the shard pipeline). The read lock is held for the
// whole batch, so a concurrent Refresh/Rotate/Close waits out every
// admitted batch before flipping — no request is ever dropped by a
// control operation.
func (fl *Fleet) ClassifyBatchCtx(ctx context.Context, images []float32) ([]int, error) {
	fl.mu.RLock()
	defer fl.mu.RUnlock()
	if fl.closed {
		return nil, ErrClosed
	}
	g := fl.pick(images)
	g.inflight.Add(1)
	fl.inflight.Add(1)
	defer func() {
		g.inflight.Add(-1)
		fl.inflight.Add(-1)
	}()
	return g.sg.ClassifyBatchCtx(ctx, images)
}

// control drains the fleet and runs op on every replica group under
// the write lock: one atomic fleet-wide flip.
func (fl *Fleet) control(op func(*core.ShardGroup) (int, error)) (int, error) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return 0, ErrClosed
	}
	iter := 0
	for gi, g := range fl.groups {
		it, err := op(g.sg)
		if err != nil {
			// The errored group kept its old version coherently (shard
			// groups stage their flips); groups before it already moved.
			// Surface the split-version state to the caller.
			return 0, fmt.Errorf("fleet: group %d: %w", gi, err)
		}
		iter = it
	}
	return iter, nil
}

// Refresh drains the fleet and rolls every replica group to the latest
// published version together.
func (fl *Fleet) Refresh() (int, error) {
	return fl.control((*core.ShardGroup).Refresh)
}

// Rotate drains the fleet and re-provisions the framework's current
// data key into every shard enclave of every group, then refreshes to
// the snapshot published under it. Call Framework.RotateKey first.
func (fl *Fleet) Rotate() (int, error) {
	return fl.control((*core.ShardGroup).Rotate)
}

// Close drains the fleet and tears down every replica group, returning
// all shard enclaves' footprints to their hosts.
func (fl *Fleet) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.closed {
		return ErrClosed
	}
	fl.closed = true
	var firstErr error
	for _, g := range fl.groups {
		if err := g.sg.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Hosts returns the number of hosts in the fleet.
func (fl *Fleet) Hosts() int { return len(fl.hosts) }

// Groups returns the number of replica groups.
func (fl *Fleet) Groups() int { return len(fl.groups) }

// Shards returns the number of pipeline stages per replica group.
func (fl *Fleet) Shards() int { return len(fl.placement.Plan) }

// Window returns the fleet's total in-flight batch capacity (the sum
// of the groups' pipeline windows).
func (fl *Fleet) Window() int {
	w := 0
	for _, g := range fl.groups {
		w += g.sg.Window()
	}
	return w
}

// Streaming reports whether any replica group streams parked ranges
// from PM per batch.
func (fl *Fleet) Streaming() bool {
	for _, g := range fl.groups {
		if g.sg.Streaming() {
			return true
		}
	}
	return false
}

// Batch returns the plan's micro-batch bound.
func (fl *Fleet) Batch() int { return fl.batch }

// InputSize returns the flattened per-image input size.
func (fl *Fleet) InputSize() int { return fl.inputSize }

// Version returns the published model version the fleet serves (the
// groups flip together, so any group's answer is the fleet's).
func (fl *Fleet) Version() uint64 { return fl.groups[0].sg.Version() }

// Iteration returns the training iteration of the served snapshot.
func (fl *Fleet) Iteration() int { return fl.groups[0].sg.Iteration() }

// Placement returns the fleet's placement (shared plan, per-group host
// assignment).
func (fl *Fleet) Placement() Placement {
	p := Placement{
		Plan:       append([]darknet.ShardRange(nil), fl.placement.Plan...),
		Footprints: append([]int(nil), fl.placement.Footprints...),
		Groups:     make([][]int, len(fl.placement.Groups)),
	}
	for g, a := range fl.placement.Groups {
		p.Groups[g] = append([]int(nil), a...)
	}
	return p
}

// Metrics returns the registry holding the fleet's fabric series and
// every group's shard counters.
func (fl *Fleet) Metrics() *obs.Registry { return fl.reg }

// InFlight returns the micro-batches currently inside the router.
func (fl *Fleet) InFlight() int { return int(fl.inflight.Load()) }

// HandoffBytes returns the sealed bytes carried across all inter-host
// channels.
func (fl *Fleet) HandoffBytes() uint64 {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	var total uint64
	for _, c := range fl.channels {
		total += c.Bytes()
	}
	return total
}

// HandoffTransfers returns the number of inter-host hand-offs carried.
func (fl *Fleet) HandoffTransfers() uint64 {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	var total uint64
	for _, c := range fl.channels {
		total += c.Transfers()
	}
	return total
}

// Channels returns the number of attested inter-host channels.
func (fl *Fleet) Channels() int {
	fl.chanMu.Lock()
	defer fl.chanMu.Unlock()
	return len(fl.channels)
}

// sumGroups totals one shard-group counter across the fleet.
func (fl *Fleet) sumGroups(pick func(*core.ShardGroup) uint64) uint64 {
	var total uint64
	for _, g := range fl.groups {
		total += pick(g.sg)
	}
	return total
}

// Restores counts layer-range restores from PM across all groups.
func (fl *Fleet) Restores() uint64 {
	return fl.sumGroups((*core.ShardGroup).Restores)
}

// Stalls counts pipeline stalls across all groups.
func (fl *Fleet) Stalls() uint64 {
	return fl.sumGroups((*core.ShardGroup).Stalls)
}

// PrefetchWaits counts prefetch waits across all groups.
func (fl *Fleet) PrefetchWaits() uint64 {
	return fl.sumGroups((*core.ShardGroup).PrefetchWaits)
}

// PrefetchedRestores counts background-prefetched restores across all
// groups.
func (fl *Fleet) PrefetchedRestores() uint64 {
	return fl.sumGroups((*core.ShardGroup).PrefetchedRestores)
}

// HostReport is one host's view in the fleet: its EPC budget, load,
// paging, and the shard ranges placed on it.
type HostReport struct {
	Host              int      `json:"host"`
	UsableEPC         int      `json:"usable_epc_bytes"`
	ResidentBytes     int      `json:"resident_bytes"`
	PeakResidentBytes int      `json:"peak_resident_bytes"`
	HeadroomBytes     int      `json:"headroom_bytes"`
	EPCPressure       float64  `json:"epc_pressure"`
	PageSwaps         uint64   `json:"page_swaps"`
	Shards            []string `json:"shards"`
}

// HostReports returns one report per fleet host.
func (fl *Fleet) HostReports() []HostReport {
	reports := make([]HostReport, len(fl.hosts))
	for i, h := range fl.hosts {
		st := h.Stats()
		usable := h.UsableEPC()
		r := HostReport{
			Host:              i,
			UsableEPC:         usable,
			ResidentBytes:     st.ResidentBytes,
			PeakResidentBytes: st.PeakResidentBytes,
			HeadroomBytes:     h.Headroom(),
			PageSwaps:         st.PageSwaps,
		}
		if usable > 0 {
			r.EPCPressure = float64(st.ResidentBytes) / float64(usable)
		}
		for g, assignment := range fl.placement.Groups {
			for s, host := range assignment {
				if host == i {
					rng := fl.placement.Plan[s]
					r.Shards = append(r.Shards,
						fmt.Sprintf("g%d:[%d,%d)", g, rng.From, rng.To))
				}
			}
		}
		reports[i] = r
	}
	return reports
}
