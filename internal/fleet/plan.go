// Package fleet is the multi-host serving fabric: it serves one
// logical model across many enclave.Hosts — the path past the two
// walls a single machine has, its usable EPC and its cores.
//
// Three pieces compose it. The placement planner (this file) bin-packs
// darknet.PlanShards layer ranges across a fleet of hosts by EPC
// headroom, so a model whose footprint — or whose single hottest layer
// — exceeds any one machine's budget still serves fully resident, with
// zero paging faults, on machines none of which could hold it alone.
// Replica groups place the same shard plan on k disjoint capacity
// slices for throughput. Attested inter-host channels (channel.go)
// carry the sealed activation hand-off between shard stages that land
// on different hosts. A front-end router (fleet.go) spreads
// micro-batches over the replica groups and drains/re-pins the whole
// fleet atomically on Refresh/RotateKey.
package fleet

import (
	"errors"
	"fmt"

	"plinius/internal/darknet"
)

// ErrInfeasible is returned when no shard split of the model can be
// packed into the fleet's per-host EPC headroom — even at the finest
// granularity (one layer per shard), some shard plus its parked
// overhead fits no host, or the fleet's aggregate capacity cannot hold
// one full replica group. Callers match it with errors.Is; the serving
// front end maps it to a distinct 503 body.
var ErrInfeasible = errors.New("fleet: no feasible placement for the model on this fleet")

// Placement is the planner's output: one shard plan plus, per replica
// group, the host each shard landed on.
type Placement struct {
	// Plan is the contiguous layer-range cover, shared by every group.
	Plan []darknet.ShardRange
	// Footprints is each shard's hot working set at the planned batch
	// (parameters + activation buffers), parallel to Plan.
	Footprints []int
	// Groups[g][s] is the index (into the planning-time host list) of
	// the host serving shard s in replica group g. Every group covers
	// every shard exactly once; groups share hosts only through
	// leftover capacity.
	Groups [][]int
}

// Replicas returns the number of replica groups.
func (p Placement) Replicas() int { return len(p.Groups) }

// PlanPlacement bin-packs a shard split of net across hosts with the
// given EPC headrooms. Each placed shard charges its hot footprint
// plus the parked per-shard overhead against its host's remaining
// capacity, so a resident fleet never pages: the plan is feasible only
// when every host stays within what it offered.
//
// The search starts from the coarsest split the roomiest host could
// hold and halves the per-shard byte bound until an assignment fits,
// down to the one-layer-per-shard floor; replicas > 1 packs that many
// full copies of the plan (replica groups), replicas <= 0 packs as
// many as the fleet's leftover capacity admits, at least one and at
// most one per host. Assignment is deterministic worst-fit: each shard
// goes to the roomiest host that still fits it, which both balances
// load and keeps adjacent stages co-located while one host has room.
func PlanPlacement(net *darknet.Network, headrooms []int, batch, overhead, replicas int) (Placement, error) {
	return PlanPlacementAt(net, headrooms, batch, overhead, replicas, darknet.FP32)
}

// PlanPlacementAt is PlanPlacement at an explicit parameter precision:
// at darknet.Int8 every shard's parameter bytes are counted as the
// int8-quantized snapshot variant (~4x smaller), so the same fleet
// admits coarser splits, more replica groups, or models that are
// infeasible at fp32. Activation buffers are unchanged — only the
// resident parameters shrink.
func PlanPlacementAt(net *darknet.Network, headrooms []int, batch, overhead, replicas int, prec darknet.Precision) (Placement, error) {
	if net == nil || len(net.Layers) == 0 {
		return Placement{}, fmt.Errorf("%w: empty model", ErrInfeasible)
	}
	if len(headrooms) == 0 {
		return Placement{}, fmt.Errorf("%w: no hosts", ErrInfeasible)
	}
	if batch <= 0 {
		batch = 1
	}
	maxHead := 0
	for _, h := range headrooms {
		if h > maxHead {
			maxHead = h
		}
	}
	if maxHead <= overhead {
		return Placement{}, fmt.Errorf("%w: roomiest host offers %d bytes, under the %d-byte shard overhead", ErrInfeasible, maxHead, overhead)
	}

	auto := replicas <= 0
	want := replicas
	if auto {
		want = 1
	}
	bound := maxHead - overhead
	for {
		plan, err := net.PlanShardsAt(bound, batch, prec)
		if err != nil {
			return Placement{}, fmt.Errorf("fleet: plan shards: %w", err)
		}
		fps, err := footprints(net, plan, batch, prec)
		if err != nil {
			return Placement{}, err
		}
		if groups, ok := assign(fps, headrooms, overhead, want); ok {
			if auto {
				// Grow replica groups while leftover capacity admits a
				// full extra copy of the plan, capped at one group per
				// host — groups beyond that share every machine and
				// add contention, not throughput.
				for k := want + 1; k <= len(headrooms); k++ {
					more, ok := assign(fps, headrooms, overhead, k)
					if !ok {
						break
					}
					groups = more
				}
			}
			return Placement{Plan: plan, Footprints: fps, Groups: groups}, nil
		}
		if bound <= 1 {
			return Placement{}, fmt.Errorf("%w: %d shards (finest split) across %d hosts, %d replica group(s)",
				ErrInfeasible, len(plan), len(headrooms), want)
		}
		bound /= 2
		if bound < 1 {
			bound = 1
		}
	}
}

// footprints computes each shard's hot working set at the batch size
// and parameter precision.
func footprints(net *darknet.Network, plan []darknet.ShardRange, batch int, prec darknet.Precision) ([]int, error) {
	fps := make([]int, len(plan))
	for i, r := range plan {
		fp, err := net.ShardFootprintAt(r, batch, prec)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d footprint: %w", i, err)
		}
		fps[i] = fp
	}
	return fps, nil
}

// assign places `groups` full copies of the plan onto the hosts'
// remaining capacities by deterministic worst-fit, false when any
// shard of any group fits no host.
func assign(fps, headrooms []int, overhead, groups int) ([][]int, bool) {
	remaining := append([]int(nil), headrooms...)
	out := make([][]int, groups)
	for g := range out {
		out[g] = make([]int, len(fps))
		for s, fp := range fps {
			need := fp + overhead
			best := -1
			for h, rem := range remaining {
				if rem >= need && (best == -1 || rem > remaining[best]) {
					best = h
				}
			}
			if best == -1 {
				return nil, false
			}
			remaining[best] -= need
			out[g][s] = best
		}
	}
	return out, true
}
