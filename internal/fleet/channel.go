package fleet

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"time"

	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/obs"
)

// Channel is an attested inter-host link carrying the sealed
// activation hand-off between two shard stages placed on different
// hosts. The payload crossing it is exactly the sealed blob
// core.ShardGroup already passes between co-located stages, so the
// wire adds no new trust: activations leave the source enclave only
// AES-GCM sealed, and the channel merely charges the transfer's
// modeled cost and accounts its traffic.
//
// Establishment mirrors core.Replica key provisioning (Fig. 5 steps
// 2-3), run once per endpoint: both enclaves are attested, a fleet
// owner verifies each quote against the Plinius measurement, and a
// fresh transport key is wrapped to each attestation channel and
// unwrapped inside the respective enclave. Both endpoints holding the
// same transport key is the channel's liveness proof; the key is
// retained only to witness that the provisioning ran, since sealing
// itself stays with the shard stages' data key.
type Channel struct {
	From, To int // shard stage indices
	src, dst *enclave.Enclave

	latency   time.Duration
	bandwidth float64 // bytes per second; <= 0 means unbounded

	key []byte // provisioned transport key (both endpoints verified equal)

	transfers atomic.Uint64
	bytes     atomic.Uint64
	modeledNS atomic.Int64

	mBytes   *obs.Counter
	mSeconds *obs.Counter
}

// newChannel attests both endpoint enclaves and provisions a shared
// transport key across them.
func newChannel(from, to int, src, dst *enclave.Enclave, latency time.Duration, bandwidth float64, mBytes, mSeconds *obs.Counter) (*Channel, error) {
	owner, err := enclave.NewOwner(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("fleet: channel owner: %w", err)
	}
	transport, err := engine.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("fleet: channel transport key: %w", err)
	}
	provision := func(encl *enclave.Enclave, end string) ([]byte, error) {
		sess, quote, err := encl.BeginAttestation()
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s attestation: %w", end, err)
		}
		ownerChannel, err := owner.VerifyQuote(quote, enclave.PliniusMeasurement())
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s quote: %w", end, err)
		}
		wrapped, err := engine.WrapKey(ownerChannel, transport, rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s wrap: %w", end, err)
		}
		var key []byte
		err = encl.Ecall(func() error {
			ch, err := sess.CompleteAttestation(owner.PublicKey())
			if err != nil {
				return err
			}
			key, err = engine.UnwrapKey(ch, wrapped)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s provisioning: %w", end, err)
		}
		return key, nil
	}
	kSrc, err := provision(src, "source")
	if err != nil {
		return nil, err
	}
	kDst, err := provision(dst, "destination")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(kSrc, kDst) {
		return nil, fmt.Errorf("fleet: channel %d->%d endpoints hold different transport keys", from, to)
	}
	return &Channel{
		From: from, To: to,
		src: src, dst: dst,
		latency: latency, bandwidth: bandwidth,
		key:    kSrc,
		mBytes: mBytes, mSeconds: mSeconds,
	}, nil
}

// Carry moves one sealed activation blob across the link, charging the
// modeled wire time (latency plus size over bandwidth) to the
// destination host's clock and accounting the traffic.
func (c *Channel) Carry(sealed []byte) error {
	d := c.latency
	if c.bandwidth > 0 {
		d += time.Duration(float64(len(sealed)) / c.bandwidth * float64(time.Second))
	}
	if d > 0 {
		c.dst.Clock().Advance(d)
	}
	c.transfers.Add(1)
	c.bytes.Add(uint64(len(sealed)))
	c.modeledNS.Add(int64(d))
	c.mBytes.AddUint(uint64(len(sealed)))
	c.mSeconds.Add(d.Seconds())
	return nil
}

// Transfers returns the number of hand-offs carried.
func (c *Channel) Transfers() uint64 { return c.transfers.Load() }

// Bytes returns the total sealed bytes carried.
func (c *Channel) Bytes() uint64 { return c.bytes.Load() }

// ModeledTime returns the accumulated modeled wire time.
func (c *Channel) ModeledTime() time.Duration { return time.Duration(c.modeledNS.Load()) }
