package fleet

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"time"

	"plinius/internal/chaos"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/obs"
)

// Channel is an attested inter-host link carrying the sealed
// activation hand-off between two shard stages placed on different
// hosts. The payload crossing it is exactly the sealed blob
// core.ShardGroup already passes between co-located stages, so the
// wire adds no new trust: activations leave the source enclave only
// AES-GCM sealed, and the channel merely charges the transfer's
// modeled cost and accounts its traffic.
//
// Establishment mirrors core.Replica key provisioning (Fig. 5 steps
// 2-3), run once per endpoint: both enclaves are attested, a fleet
// owner verifies each quote against the Plinius measurement, and a
// fresh transport key is wrapped to each attestation channel and
// unwrapped inside the respective enclave. Both endpoints holding the
// same transport key is the channel's liveness proof; the key is
// retained only to witness that the provisioning ran, since sealing
// itself stays with the shard stages' data key.
type Channel struct {
	From, To int // shard stage indices
	src, dst *enclave.Enclave

	latency   time.Duration
	bandwidth float64 // bytes per second; <= 0 means unbounded

	// Fault handling: a Carry whose modeled wire time exceeds deadline
	// (or that an injector drops outright) is treated as lost and
	// re-sent after exponential backoff, up to retries re-sends. Sealed
	// per-batch payloads make the re-send idempotent — a duplicate
	// delivery decrypts to the same activations — so retry is always
	// safe.
	deadline time.Duration
	retries  int
	backoff  time.Duration
	faults   *chaos.Injector

	key []byte // provisioned transport key (both endpoints verified equal)

	transfers atomic.Uint64
	bytes     atomic.Uint64
	modeledNS atomic.Int64
	retried   atomic.Uint64

	mBytes   *obs.Counter
	mSeconds *obs.Counter
	mRetries *obs.Counter
}

// chanConfig carries the per-channel wire model and fault policy from
// the fleet to newChannel.
type chanConfig struct {
	latency   time.Duration
	bandwidth float64
	deadline  time.Duration
	retries   int
	backoff   time.Duration
	faults    *chaos.Injector
	mBytes    *obs.Counter
	mSeconds  *obs.Counter
	mRetries  *obs.Counter
}

// newChannel attests both endpoint enclaves and provisions a shared
// transport key across them.
func newChannel(from, to int, src, dst *enclave.Enclave, cfg chanConfig) (*Channel, error) {
	owner, err := enclave.NewOwner(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("fleet: channel owner: %w", err)
	}
	transport, err := engine.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("fleet: channel transport key: %w", err)
	}
	provision := func(encl *enclave.Enclave, end string) ([]byte, error) {
		sess, quote, err := encl.BeginAttestation()
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s attestation: %w", end, err)
		}
		ownerChannel, err := owner.VerifyQuote(quote, enclave.PliniusMeasurement())
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s quote: %w", end, err)
		}
		wrapped, err := engine.WrapKey(ownerChannel, transport, rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s wrap: %w", end, err)
		}
		var key []byte
		err = encl.Ecall(func() error {
			ch, err := sess.CompleteAttestation(owner.PublicKey())
			if err != nil {
				return err
			}
			key, err = engine.UnwrapKey(ch, wrapped)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: channel %s provisioning: %w", end, err)
		}
		return key, nil
	}
	kSrc, err := provision(src, "source")
	if err != nil {
		return nil, err
	}
	kDst, err := provision(dst, "destination")
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(kSrc, kDst) {
		return nil, fmt.Errorf("fleet: channel %d->%d endpoints hold different transport keys", from, to)
	}
	return &Channel{
		From: from, To: to,
		src: src, dst: dst,
		latency: cfg.latency, bandwidth: cfg.bandwidth,
		deadline: cfg.deadline, retries: cfg.retries, backoff: cfg.backoff,
		faults: cfg.faults,
		key:    kSrc,
		mBytes: cfg.mBytes, mSeconds: cfg.mSeconds, mRetries: cfg.mRetries,
	}, nil
}

// Carry moves one sealed activation blob across the link, charging the
// modeled wire time (latency plus size over bandwidth) to the
// destination host's clock and accounting the traffic.
//
// Transient faults — an injected drop, or a delay pushing the wire time
// past the channel deadline — cost the sender the detection wait (the
// deadline, or the full wire time when no deadline is set) plus an
// exponential backoff, then the sealed blob is re-sent. After retries
// re-sends the Carry fails with ErrHandoffFault, which the fleet treats
// as retryable at the routing layer. A dead endpoint host fails
// immediately with enclave.ErrHostDown: no amount of re-sending reaches
// a machine that is gone, so the fleet must evict and replan instead.
func (c *Channel) Carry(sealed []byte) error {
	attempts := c.retries + 1
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if c.src.Host().Down() || c.dst.Host().Down() {
			return fmt.Errorf("fleet: channel %d->%d: %w", c.From, c.To, enclave.ErrHostDown)
		}
		d := c.latency
		if c.bandwidth > 0 {
			d += time.Duration(float64(len(sealed)) / c.bandwidth * float64(time.Second))
		}
		dec := c.faults.Next()
		d += dec.Extra
		if dec.Kind == chaos.Drop || (c.deadline > 0 && d > c.deadline) {
			// Lost or too late. The sender detects the loss at the
			// deadline (or after the full wire time when no deadline is
			// set), backs off exponentially, and re-sends.
			wait := d
			if c.deadline > 0 {
				wait = c.deadline
			}
			bo := c.backoff
			if bo > 0 {
				shift := attempt
				if shift > 10 {
					shift = 10
				}
				bo <<= uint(shift)
			}
			c.dst.Clock().Advance(wait + bo)
			c.retried.Add(1)
			if c.mRetries != nil {
				c.mRetries.Inc()
			}
			continue
		}
		copies := 1
		if dec.Kind == chaos.Duplicate {
			// Delivered twice: the wire is charged for both copies; the
			// sealed payload makes the second delivery a no-op for
			// correctness.
			copies = 2
		}
		for i := 0; i < copies; i++ {
			if d > 0 {
				c.dst.Clock().Advance(d)
			}
			c.transfers.Add(1)
			c.bytes.Add(uint64(len(sealed)))
			c.modeledNS.Add(int64(d))
			c.mBytes.AddUint(uint64(len(sealed)))
			c.mSeconds.Add(d.Seconds())
		}
		return nil
	}
	return fmt.Errorf("fleet: channel %d->%d: %w after %d attempts", c.From, c.To, ErrHandoffFault, attempts)
}

// Retried returns how many transfer attempts were re-sent after a
// transient fault.
func (c *Channel) Retried() uint64 { return c.retried.Load() }

// Transfers returns the number of hand-offs carried.
func (c *Channel) Transfers() uint64 { return c.transfers.Load() }

// Bytes returns the total sealed bytes carried.
func (c *Channel) Bytes() uint64 { return c.bytes.Load() }

// ModeledTime returns the accumulated modeled wire time.
func (c *Channel) ModeledTime() time.Duration { return time.Duration(c.modeledNS.Load()) }
