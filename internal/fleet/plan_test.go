package fleet

import (
	"errors"
	mrand "math/rand"
	"strings"
	"testing"

	"plinius/internal/core"
	"plinius/internal/darknet"
)

// testNet parses a synthetic model of roughly targetBytes parameters.
func testNet(t *testing.T, targetBytes int, seed int64) *darknet.Network {
	t.Helper()
	cfgText, err := core.SyntheticModelConfig(targetBytes)
	if err != nil {
		t.Fatalf("SyntheticModelConfig(%d): %v", targetBytes, err)
	}
	net, err := darknet.ParseConfig(strings.NewReader(cfgText), mrand.New(mrand.NewSource(seed)))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	return net
}

// checkPlacement verifies the planner's invariants: the plan is a
// contiguous cover of every layer, every replica group covers every
// shard exactly once on an in-range host, and no host's total load
// (hot footprints plus parked overheads) exceeds the headroom it
// offered.
func checkPlacement(t *testing.T, net *darknet.Network, p Placement, headrooms []int, batch, overhead int) {
	t.Helper()
	next := 0
	for i, r := range p.Plan {
		if r.From != next || r.To <= r.From {
			t.Fatalf("plan %v: shard %d breaks the contiguous cover", p.Plan, i)
		}
		next = r.To
	}
	if next != len(net.Layers) {
		t.Fatalf("plan %v covers %d layers, model has %d", p.Plan, next, len(net.Layers))
	}
	if len(p.Footprints) != len(p.Plan) {
		t.Fatalf("%d footprints for a %d-shard plan", len(p.Footprints), len(p.Plan))
	}
	for i, r := range p.Plan {
		fp, err := net.ShardFootprint(r, batch)
		if err != nil {
			t.Fatalf("ShardFootprint(%v): %v", r, err)
		}
		if fp != p.Footprints[i] {
			t.Fatalf("footprint[%d] = %d, want %d", i, p.Footprints[i], fp)
		}
	}
	if len(p.Groups) == 0 {
		t.Fatal("placement has no replica groups")
	}
	load := make([]int, len(headrooms))
	for g, assignment := range p.Groups {
		if len(assignment) != len(p.Plan) {
			t.Fatalf("group %d places %d shards, plan has %d", g, len(assignment), len(p.Plan))
		}
		for s, h := range assignment {
			if h < 0 || h >= len(headrooms) {
				t.Fatalf("group %d shard %d on host %d, fleet has %d", g, s, h, len(headrooms))
			}
			load[h] += p.Footprints[s] + overhead
		}
	}
	for h, l := range load {
		if l > headrooms[h] {
			t.Fatalf("host %d packed to %d bytes, headroom %d", h, l, headrooms[h])
		}
	}
}

// TestPlanPlacementProperties drives the planner over generated
// fleets and models: any successful placement respects every host's
// headroom and covers every layer exactly once per replica group; any
// failure is the typed ErrInfeasible, never a panic.
func TestPlanPlacementProperties(t *testing.T) {
	rng := mrand.New(mrand.NewSource(41))
	const overhead = 64 << 10
	feasible, infeasible := 0, 0
	for trial := 0; trial < 60; trial++ {
		net := testNet(t, (1+rng.Intn(8))<<20, int64(trial))
		numHosts := 1 + rng.Intn(5)
		headrooms := make([]int, numHosts)
		for i := range headrooms {
			headrooms[i] = (128 << 10) + rng.Intn(6<<20)
		}
		batch := 1 + rng.Intn(3)
		replicas := rng.Intn(4) - 1 // -1..2: auto and explicit

		p, err := PlanPlacement(net, headrooms, batch, overhead, replicas)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: error is not ErrInfeasible: %v", trial, err)
			}
			infeasible++
			continue
		}
		feasible++
		checkPlacement(t, net, p, headrooms, batch, overhead)
		if replicas > 0 && len(p.Groups) != replicas {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(p.Groups), replicas)
		}
		if replicas <= 0 && (len(p.Groups) < 1 || len(p.Groups) > numHosts) {
			t.Fatalf("trial %d: auto placed %d groups on %d hosts", trial, len(p.Groups), numHosts)
		}
	}
	// The generator spans both regimes; a sweep that never exercises
	// one of them is not testing the property it claims to.
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("sweep hit %d feasible / %d infeasible placements; want both", feasible, infeasible)
	}
}

// TestPlanPlacementInfeasibleTyped: inputs with no possible packing
// return ErrInfeasible rather than panicking or succeeding.
func TestPlanPlacementInfeasibleTyped(t *testing.T) {
	net := testNet(t, 4<<20, 1)
	cases := []struct {
		name      string
		headrooms []int
		overhead  int
		replicas  int
	}{
		{"no hosts", nil, 1 << 10, 1},
		{"headroom under overhead", []int{32 << 10}, 64 << 10, 1},
		{"hosts too small for one layer", []int{96 << 10, 96 << 10}, 1 << 10, 1},
		{"capacity for one group, two asked", []int{5 << 20}, 64 << 10, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := PlanPlacement(net, tc.headrooms, 1, tc.overhead, tc.replicas)
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("err = %v, want ErrInfeasible", err)
			}
		})
	}
	if _, err := PlanPlacement(nil, []int{1 << 20}, 1, 1<<10, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("nil model: err = %v, want ErrInfeasible", err)
	}
}

// TestPlanPlacementReplicaScaling: auto replica count grows with fleet
// capacity — a fleet with room for k copies places k groups.
func TestPlanPlacementReplicaScaling(t *testing.T) {
	net := testNet(t, 2<<20, 2)
	const overhead = 64 << 10
	one, err := PlanPlacement(net, []int{4 << 20}, 1, overhead, 0)
	if err != nil {
		t.Fatalf("one host: %v", err)
	}
	if len(one.Groups) != 1 {
		t.Fatalf("one host: %d groups, want 1", len(one.Groups))
	}
	many, err := PlanPlacement(net, []int{4 << 20, 4 << 20, 4 << 20}, 1, overhead, 0)
	if err != nil {
		t.Fatalf("three hosts: %v", err)
	}
	if len(many.Groups) < 2 {
		t.Fatalf("three hosts with triple capacity placed %d groups, want >= 2", len(many.Groups))
	}
	checkPlacement(t, net, many, []int{4 << 20, 4 << 20, 4 << 20}, 1, overhead)
}
