package fleet

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// newOverEPCFramework builds a framework around a synthetic model whose
// replica footprint exceeds hostEPC — the regime where no single fleet
// host can serve it whole.
func newOverEPCFramework(t *testing.T, modelBytes int, seed int64) *core.Framework {
	t.Helper()
	cfgText, err := core.SyntheticModelConfig(modelBytes)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	f, err := core.New(core.Config{
		ModelConfig:        cfgText,
		PMBytes:            64 << 20,
		Seed:               seed,
		TrainOverheadBytes: 1 << 20,
	})
	if err != nil {
		t.Fatalf("New framework: %v", err)
	}
	return f
}

// newFleetHosts builds n identical serving hosts with the given EPC.
func newFleetHosts(f *core.Framework, n, epcBytes int) []*enclave.Host {
	hosts := make([]*enclave.Host, n)
	for i := range hosts {
		hosts[i] = enclave.NewHost(f.Host.Profile(), enclave.WithHostEPC(epcBytes))
	}
	return hosts
}

// TestFleetServesOverEPCModelZeroFaults is the tentpole acceptance
// check: a model whose footprint exceeds any single host's usable EPC
// serves across a 3-host fleet fully resident — zero paging faults on
// every host — with predictions identical to the sequential enclave
// model, and with sealed activations crossing attested inter-host
// channels.
func TestFleetServesOverEPCModelZeroFaults(t *testing.T) {
	const (
		hostEPC = 5 << 20
		batch   = 1
		batches = 4
	)
	f := newOverEPCFramework(t, 6<<20, 11)
	if f.ReplicaFootprint() <= hostEPC {
		t.Fatalf("replica footprint %d fits a %d-byte host; test needs the over-EPC regime",
			f.ReplicaFootprint(), hostEPC)
	}
	hosts := newFleetHosts(f, 3, hostEPC)
	fl, err := New(f, Options{
		Hosts:         hosts,
		Batch:         batch,
		OverheadBytes: 64 << 10,
		Seed:          12,
	})
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	defer fl.Close()

	if fl.Streaming() {
		t.Fatalf("fleet streams with aggregate capacity %d for a %d-byte model; want resident",
			3*hostEPC, f.ReplicaFootprint())
	}
	if fl.Shards() < 2 {
		t.Fatalf("Shards = %d, want a real split", fl.Shards())
	}
	if fl.Channels() == 0 {
		t.Fatal("no inter-host channels although the model cannot fit one host")
	}

	setupFaults := make([]uint64, len(hosts))
	for i, h := range hosts {
		setupFaults[i] = h.Stats().PageSwaps
	}
	ds := mnist.Synthetic(batch*batches, 11)
	in := fl.InputSize()
	for b := 0; b < batches; b++ {
		images := ds.Images[b*batch*in : (b+1)*batch*in]
		got, err := fl.ClassifyBatch(images)
		if err != nil {
			t.Fatalf("ClassifyBatch %d: %v", b, err)
		}
		for i, cls := range got {
			want, err := f.Classify(ds.Image(b*batch + i))
			if err != nil {
				t.Fatalf("sequential classify: %v", err)
			}
			if cls != want {
				t.Fatalf("batch %d image %d: class %d, want %d", b, i, cls, want)
			}
		}
	}
	for i, h := range hosts {
		if faults := h.Stats().PageSwaps - setupFaults[i]; faults != 0 {
			t.Fatalf("host %d paid %d paging faults serving; want 0", i, faults)
		}
		if h.OverEPC() {
			t.Fatalf("host %d overcommitted: resident %d of %d", i, h.Resident(), h.UsableEPC())
		}
	}
	if fl.HandoffTransfers() == 0 || fl.HandoffBytes() == 0 {
		t.Fatalf("hand-off accounting empty (%d transfers, %d bytes) although stages span hosts",
			fl.HandoffTransfers(), fl.HandoffBytes())
	}

	// The fabric series are registered and live.
	flat := map[string]bool{}
	for _, fam := range fl.Metrics().Snapshot() {
		flat[fam.Name] = true
	}
	for _, name := range []string{
		"fleet_handoff_bytes_total", "fleet_handoff_seconds_total",
		"fleet_router_queue_depth", "fleet_host_headroom_bytes",
	} {
		if !flat[name] {
			t.Fatalf("metric family %q not registered", name)
		}
	}
}

// TestFleetRefreshAndRotate: control operations flip every replica
// group together and serving continues bit-identical to the framework
// afterwards.
func TestFleetRefreshAndRotate(t *testing.T) {
	f := newOverEPCFramework(t, 4<<20, 21)
	hosts := newFleetHosts(f, 3, 4<<20)
	fl, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 22})
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	defer fl.Close()

	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	v0 := fl.Version()
	if _, err := fl.Refresh(); err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if fl.Version() <= v0 {
		t.Fatalf("Version %d after Refresh, want > %d", fl.Version(), v0)
	}
	if _, err := f.RotateKey(); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if _, err := fl.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	ds := mnist.Synthetic(1, 21)
	got, err := fl.ClassifyBatch(ds.Images)
	if err != nil {
		t.Fatalf("ClassifyBatch after rotate: %v", err)
	}
	for i, cls := range got {
		want, err := f.Classify(ds.Image(i))
		if err != nil {
			t.Fatalf("sequential classify: %v", err)
		}
		if cls != want {
			t.Fatalf("after rotate image %d: class %d, want %d", i, cls, want)
		}
	}
}

// TestFleetControlDropsNoRequests hammers the fleet with concurrent
// batches while Refresh and Rotate flip it mid-traffic: every request
// must succeed — the control path drains, flips, and resumes without
// dropping a single one. Run under -race this also exercises the
// intake/control lock discipline.
func TestFleetControlDropsNoRequests(t *testing.T) {
	f := newOverEPCFramework(t, 2<<20, 31)
	hosts := newFleetHosts(f, 3, 2<<20)
	fl, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 32})
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	defer fl.Close()

	const clients = 4
	const perClient = 4
	ds := mnist.Synthetic(1, 31)
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient+2)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := fl.ClassifyBatch(ds.Images); err != nil {
					errCh <- fmt.Errorf("classify: %w", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := f.Publish(); err != nil {
			errCh <- fmt.Errorf("publish: %w", err)
			return
		}
		if _, err := fl.Refresh(); err != nil {
			errCh <- fmt.Errorf("refresh: %w", err)
			return
		}
		if _, err := f.RotateKey(); err != nil {
			errCh <- fmt.Errorf("rotate key: %w", err)
			return
		}
		if _, err := fl.Rotate(); err != nil {
			errCh <- fmt.Errorf("rotate: %w", err)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("request dropped during control ops: %v", err)
	}
	if fl.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", fl.InFlight())
	}
}

// TestFleetRestoresPersistedPlacement: a fleet re-created over the
// same PM restores the recorded plan and host assignment instead of
// replanning.
func TestFleetRestoresPersistedPlacement(t *testing.T) {
	f := newOverEPCFramework(t, 4<<20, 41)
	hosts := newFleetHosts(f, 3, 4<<20)
	fl1, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 42})
	if err != nil {
		t.Fatalf("first fleet: %v", err)
	}
	want := fl1.Placement()
	if err := fl1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fl2, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 43})
	if err != nil {
		t.Fatalf("second fleet: %v", err)
	}
	defer fl2.Close()
	got := fl2.Placement()
	if len(got.Plan) != len(want.Plan) {
		t.Fatalf("recreated plan has %d shards, recorded %d", len(got.Plan), len(want.Plan))
	}
	for i := range want.Plan {
		if got.Plan[i] != want.Plan[i] {
			t.Fatalf("plan[%d] = %v, recorded %v", i, got.Plan[i], want.Plan[i])
		}
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("recreated %d groups, recorded %d", len(got.Groups), len(want.Groups))
	}
	for g := range want.Groups {
		for s := range want.Groups[g] {
			if got.Groups[g][s] != want.Groups[g][s] {
				t.Fatalf("group %d shard %d on host %d, recorded %d",
					g, s, got.Groups[g][s], want.Groups[g][s])
			}
		}
	}
}

// TestFleetInfeasibleTyped: a fleet none of whose hosts can hold even
// the parked shard overhead reports ErrInfeasible, the error the
// serving front end maps to its distinct 503 body.
func TestFleetInfeasibleTyped(t *testing.T) {
	f := newOverEPCFramework(t, 2<<20, 51)
	hosts := newFleetHosts(f, 2, 32<<10)
	_, err := New(f, Options{Hosts: hosts, OverheadBytes: 64 << 10, Seed: 52})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestFleetRouterSpreadsLoad: with replica groups placed, concurrent
// traffic reaches more than one group.
func TestFleetRouterSpreadsLoad(t *testing.T) {
	f := newOverEPCFramework(t, 1<<20, 61)
	hosts := newFleetHosts(f, 2, 8<<20)
	fl, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 62, Replicas: 2})
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	defer fl.Close()
	if fl.Groups() != 2 {
		t.Fatalf("Groups = %d, want 2", fl.Groups())
	}
	ds := mnist.Synthetic(1, 61)
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				if _, err := fl.ClassifyBatch(ds.Images); err != nil {
					t.Errorf("classify: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Both groups did restore work (labeled series keep them apart).
	var perGroup [2]bool
	for _, fam := range fl.Metrics().Snapshot() {
		if fam.Name != "shard_restores_total" {
			continue
		}
		for _, s := range fam.Series {
			for _, l := range s.Labels {
				if l.Key == "group" && s.Value > 0 {
					if l.Value == "0" {
						perGroup[0] = true
					}
					if l.Value == "1" {
						perGroup[1] = true
					}
				}
			}
		}
	}
	if !perGroup[0] || !perGroup[1] {
		t.Logf("router concentration: group0=%v group1=%v (load-dependent, informational)", perGroup[0], perGroup[1])
	}
}

// TestPlacementEntriesRoundTrip pins the manifest flattening used for
// the durable placement record.
func TestPlacementEntriesRoundTrip(t *testing.T) {
	p := Placement{
		Plan:   []darknet.ShardRange{{From: 0, To: 2}, {From: 2, To: 5}},
		Groups: [][]int{{0, 1}, {2, 0}},
	}
	entries := placementEntries(p)
	if len(entries) != 4 {
		t.Fatalf("len(entries) = %d, want 4", len(entries))
	}
	want := []struct{ g, s, h int }{{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 0}}
	for i, w := range want {
		e := entries[i]
		if e.Group != w.g || e.Shard != w.s || e.Host != w.h {
			t.Fatalf("entries[%d] = %+v, want %+v", i, e, w)
		}
	}
}
