package fleet

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"plinius/internal/chaos"
	"plinius/internal/core"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// chaosFleet builds the standard chaos geometry: a 6 MB model across
// three 4 MB hosts — resident while all three live, infeasible for any
// two, so a kill pushes the fleet onto the degraded-streaming rung.
func chaosFleet(t *testing.T, opts Options) (*core.Framework, []*enclave.Host, *Fleet) {
	t.Helper()
	f := newOverEPCFramework(t, 6<<20, 42)
	hosts := newFleetHosts(f, 3, 4<<20)
	opts.Hosts = hosts
	if opts.Batch == 0 {
		opts.Batch = 1
	}
	if opts.OverheadBytes == 0 {
		opts.OverheadBytes = 64 << 10
	}
	fl, err := New(f, opts)
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	t.Cleanup(func() { _ = fl.Close() })
	return f, hosts, fl
}

// TestKillHostUnderLoadZeroDrops is the headline acceptance test:
// killing a placed host under concurrent load drops zero accepted
// batches — every batch in flight on the dead host is re-routed and
// retried on the survivors, which (two 4 MB hosts against a 6 MB
// model) serve degraded-streaming.
func TestKillHostUnderLoadZeroDrops(t *testing.T) {
	f, hosts, fl := chaosFleet(t, Options{})
	if fl.Streaming() {
		t.Fatalf("fleet starts streaming; want resident before the kill")
	}
	victim := hosts[fl.Placement().Groups[0][0]]

	// 6 concurrent batches: a third before the kill, the rest riding
	// across it — enough to exercise in-flight re-routing while keeping
	// the degraded-streaming tail affordable under -race.
	const batches = 6
	batch := fl.Batch()
	images := mnist.Synthetic(batch*batches, 1).Images
	in := f.Net.InputSize()

	var wg sync.WaitGroup
	errCh := make(chan error, batches)
	for b := 0; b < batches; b++ {
		if b == batches/3 {
			victim.Kill()
		}
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			if _, err := fl.ClassifyBatchCtx(context.Background(), images[b*batch*in:(b+1)*batch*in]); err != nil {
				errCh <- err
			}
		}(b)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("batch dropped across host kill: %v", err)
	}
	if got := fl.HostsDown(); got != 1 {
		t.Fatalf("HostsDown = %d, want 1", got)
	}
	if fl.EvictedGroups() < 1 {
		t.Fatalf("EvictedGroups = %d, want >= 1", fl.EvictedGroups())
	}
	if fl.Replans() < 1 {
		t.Fatalf("Replans = %d, want >= 1", fl.Replans())
	}
	if !fl.Degraded() || !fl.Streaming() {
		t.Fatalf("after kill: degraded=%v streaming=%v, want degraded streaming on the survivors",
			fl.Degraded(), fl.Streaming())
	}
}

// TestRejoinPromotesToOriginalResidentPlacement: after the killed host
// rejoins, the fleet promotes back off the degraded rung and — the
// planner being deterministic — lands on the original resident
// placement.
func TestRejoinPromotesToOriginalResidentPlacement(t *testing.T) {
	f, hosts, fl := chaosFleet(t, Options{})
	original := fl.Placement()
	victimIdx := original.Groups[0][0]
	victim := hosts[victimIdx]
	batch := fl.Batch()
	images := mnist.Synthetic(batch, 1).Images
	in := f.Net.InputSize()

	victim.Kill()
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch across kill: %v", err)
	}
	if !fl.Degraded() {
		t.Fatalf("fleet not degraded after losing 1 of 3 hosts")
	}

	victim.Rejoin()
	if err := fl.Rejoin(); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if fl.Degraded() || fl.Streaming() {
		t.Fatalf("after rejoin: degraded=%v streaming=%v, want resident", fl.Degraded(), fl.Streaming())
	}
	if fl.HostsDown() != 0 {
		t.Fatalf("HostsDown = %d after rejoin, want 0", fl.HostsDown())
	}
	promoted := fl.Placement()
	if !reflect.DeepEqual(original.Plan, promoted.Plan) || !reflect.DeepEqual(original.Groups, promoted.Groups) {
		t.Fatalf("promoted placement %v != original %v", promoted.Groups, original.Groups)
	}
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch after rejoin: %v", err)
	}
}

// TestHandoffRetriesThroughTransientDrops: a channel that drops the
// first transfers recovers them through the bounded retry — the batch
// succeeds and the retry counter records the re-sends.
func TestHandoffRetriesThroughTransientDrops(t *testing.T) {
	f, _, fl := chaosFleet(t, Options{
		ChannelFaults: func(fromHost, toHost int) *chaos.Injector {
			return chaos.DropFirst(3)
		},
		HandoffBackoff: 10 * time.Microsecond,
	})
	if fl.Channels() == 0 {
		t.Fatalf("geometry has no inter-host channel; the fault path is untested")
	}
	batch := fl.Batch()
	images := mnist.Synthetic(batch, 1).Images
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*f.Net.InputSize()]); err != nil {
		t.Fatalf("batch through injected drops: %v", err)
	}
	if fl.HandoffRetries() < 3 {
		t.Fatalf("HandoffRetries = %d, want >= 3 (DropFirst(3) per channel)", fl.HandoffRetries())
	}
}

// TestHandoffExhaustionIsTypedUnavailable: when faults outlast both the
// channel retry budget and the router's recovery retries, the batch
// fails with the typed ErrUnavailable wrapping ErrHandoffFault — the
// 503 + Retry-After path, not a generic 500.
func TestHandoffExhaustionIsTypedUnavailable(t *testing.T) {
	f, _, fl := chaosFleet(t, Options{
		ChannelFaults: func(fromHost, toHost int) *chaos.Injector {
			// Effectively infinite drops: no retry budget survives this.
			return chaos.DropFirst(1 << 20)
		},
		HandoffRetries: 2,
		HandoffBackoff: time.Microsecond,
	})
	batch := fl.Batch()
	images := mnist.Synthetic(batch, 1).Images
	_, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*f.Net.InputSize()])
	if err == nil {
		t.Fatalf("batch succeeded through unbounded drops")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if !errors.Is(err, ErrHandoffFault) {
		t.Fatalf("err = %v, want it to wrap ErrHandoffFault", err)
	}
}

// TestKillDuringRefresh races a host kill against a fleet-wide Refresh
// under concurrent load. Run with -race in CI. Either the Refresh wins
// (and the kill is recovered after) or the kill makes it fail typed —
// both fine; what must hold is no deadlock, no panic, and the fleet
// serving again once recovery has run.
func TestKillDuringRefresh(t *testing.T) {
	// Smaller geometry than chaosFleet: the survivors can hold this
	// model resident, so recovery replans without the (slow under
	// -race) streaming rung — the race being tested is between the
	// kill, the refresh flip and concurrent load, not the degradation.
	f := newOverEPCFramework(t, 4<<20, 47)
	hosts := newFleetHosts(f, 3, 4<<20)
	fl, err := New(f, Options{Hosts: hosts, Batch: 1, OverheadBytes: 64 << 10, Seed: 48})
	if err != nil {
		t.Fatalf("New fleet: %v", err)
	}
	defer fl.Close()
	victim := hosts[fl.Placement().Groups[0][0]]
	batch := fl.Batch()
	const batches = 3
	images := mnist.Synthetic(batch*batches, 1).Images
	in := f.Net.InputSize()

	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			// Drops are acceptable here: the kill may race the refresh
			// flip itself; zero-drop under kill is asserted separately.
			_, _ = fl.ClassifyBatchCtx(context.Background(), images[b*batch*in:(b+1)*batch*in])
		}(b)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = fl.Refresh()
	}()
	go func() {
		defer wg.Done()
		victim.Kill()
	}()
	wg.Wait()

	// Drive recovery to quiescence: after at most a few retried batches
	// the fleet must serve again on the survivors.
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch after kill-during-refresh: %v", err)
	}
	if fl.HostsDown() != 1 {
		t.Fatalf("HostsDown = %d, want 1", fl.HostsDown())
	}
}

// TestRecreateAfterReplanRestoresConsistentPlacement: the replan
// rewrites the durable placement manifest; a fleet re-created over the
// same framework must restore a consistent placement — the recorded
// one when it still fits, a fresh plan otherwise, never a torn mix
// (manifest validation plus the Romulus transaction guarantee this).
func TestRecreateAfterReplanRestoresConsistentPlacement(t *testing.T) {
	f, hosts, fl := chaosFleet(t, Options{})
	victim := hosts[fl.Placement().Groups[0][0]]
	batch := fl.Batch()
	images := mnist.Synthetic(batch, 1).Images
	in := f.Net.InputSize()

	victim.Kill()
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch across kill: %v", err)
	}
	if err := fl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The host comes back; a new fleet (fresh process, same PM) starts.
	victim.Rejoin()
	fl2, err := New(f, Options{Hosts: hosts, Batch: batch, OverheadBytes: 64 << 10})
	if err != nil {
		t.Fatalf("re-created fleet: %v", err)
	}
	defer fl2.Close()
	restored := fl2.Placement()
	// Consistency: every group covers every shard exactly once on valid
	// hosts — i.e. the manifest round-tripped whole. It may equal the
	// degraded placement (recorded last) or a fresh resident plan.
	if len(restored.Groups) == 0 {
		t.Fatalf("re-created fleet has no groups")
	}
	for g, assignment := range restored.Groups {
		if len(assignment) != len(restored.Plan) {
			t.Fatalf("group %d covers %d shards, plan has %d", g, len(assignment), len(restored.Plan))
		}
		for s, h := range assignment {
			if h < 0 || h >= len(hosts) {
				t.Fatalf("group %d shard %d on invalid host %d", g, s, h)
			}
		}
	}
	if _, err := fl2.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch on re-created fleet: %v", err)
	}
}

// TestTotalOutageShedsTyped: with every host dead the fleet sheds with
// ErrUnavailable instead of hanging, and recovers when hosts rejoin.
func TestTotalOutageShedsTyped(t *testing.T) {
	f, hosts, fl := chaosFleet(t, Options{})
	batch := fl.Batch()
	images := mnist.Synthetic(batch, 1).Images
	in := f.Net.InputSize()

	for _, h := range hosts {
		h.Kill()
	}
	_, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in])
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("total outage err = %v, want ErrUnavailable", err)
	}
	if fl.Version() != 0 {
		t.Fatalf("Version = %d with no groups, want 0", fl.Version())
	}

	for _, h := range hosts {
		h.Rejoin()
	}
	if err := fl.Rejoin(); err != nil {
		t.Fatalf("Rejoin: %v", err)
	}
	if _, err := fl.ClassifyBatchCtx(context.Background(), images[:batch*in]); err != nil {
		t.Fatalf("batch after full rejoin: %v", err)
	}
	if fl.Degraded() {
		t.Fatalf("fleet degraded after full rejoin")
	}
}
