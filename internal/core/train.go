package core

import (
	"context"
	"fmt"
)

// TrainOption configures one Train run.
type TrainOption func(*trainConfig)

type trainConfig struct {
	stopAt     int
	stopSet    bool
	progress   func(iter int, loss float32)
	mirrorFreq int
}

// StopAt stops the run once the model has completed iter iterations
// (counting iterations restored from the mirror). Without it, Train
// runs until its context is cancelled.
func StopAt(iter int) TrainOption {
	return func(c *trainConfig) { c.stopAt, c.stopSet = iter, true }
}

// WithProgress installs a hook observing every completed iteration's
// loss. The hook runs on the training goroutine with no framework lock
// held, so it may call read-side Framework methods.
func WithProgress(fn func(iter int, loss float32)) TrainOption {
	return func(c *trainConfig) { c.progress = fn }
}

// MirrorEvery overrides Config.MirrorFreq for this run: mirror the
// model to PM every freq iterations. freq < 0 disables mirroring for
// the run (the non-crash-resilient baseline); 0 keeps the framework
// default.
func MirrorEvery(freq int) TrainOption {
	return func(c *trainConfig) {
		if freq != 0 {
			c.mirrorFreq = freq
		}
	}
}

// Train runs Algorithm 2 — batch, iterate, mirror-out — until the
// StopAt target is reached or ctx is cancelled. Without StopAt it
// trains indefinitely, making cancellation the only exit.
//
// Cancellation is mirror-consistent: when ctx is done, Train completes
// the iteration in flight, writes a final mirror-out if the last
// completed iteration is not yet in PM, and returns an error wrapping
// ctx's cause (errors.Is(err, context.Canceled/DeadlineExceeded)). A
// cancelled run is therefore always recoverable — after a subsequent
// Crash/Recover (or simply calling Train again) the model resumes from
// the exact iteration the cancellation observed.
//
// Train may run concurrently with the serving side (Publish, replica
// restores, key rotation): the persistent state they touch is
// serialized internally, and published snapshots are separate immutable
// regions, so training never tears a model being restored.
func (f *Framework) Train(ctx context.Context, opts ...TrainOption) error {
	tc := trainConfig{mirrorFreq: f.cfg.MirrorFreq}
	for _, opt := range opts {
		opt(&tc)
	}
	if f.Crashed() {
		return ErrCrashedDown
	}
	if f.Data == nil {
		return ErrNoDataset
	}
	freq := tc.mirrorFreq
	return f.Enclave.Ecall(func() error {
		if freq > 0 {
			f.modelMu.Lock()
			f.pmMu.Lock()
			err := f.attachMirror()
			f.pmMu.Unlock()
			f.modelMu.Unlock()
			if err != nil {
				return err
			}
		}
		batch := f.Net.Config.Batch
		lastMirrored := -1
		for !tc.stopSet || f.Net.Iteration < tc.stopAt {
			select {
			case <-ctx.Done():
				return f.stopTraining(ctx, freq, lastMirrored)
			default:
			}
			f.pmMu.Lock()
			x, y, err := f.Data.Batch(f.rng, batch)
			f.pmMu.Unlock()
			if err != nil {
				return fmt.Errorf("core: batch: %w", err)
			}
			f.Enclave.Touch(4 * (len(x) + len(y)))

			f.modelMu.Lock()
			loss, err := f.Net.TrainBatch(x, y, batch)
			if err != nil {
				f.modelMu.Unlock()
				return fmt.Errorf("core: iteration %d: %w", f.Net.Iteration, err)
			}
			iter := f.Net.Iteration
			if freq > 0 && iter%freq == 0 {
				f.pmMu.Lock()
				err = f.Mirror.MirrorOut(f.Net)
				f.pmMu.Unlock()
				if err != nil {
					f.modelMu.Unlock()
					return fmt.Errorf("core: mirror out: %w", err)
				}
				lastMirrored = iter
			}
			f.modelMu.Unlock()

			if tc.progress != nil {
				tc.progress(iter, loss)
			}
		}
		return nil
	})
}

// stopTraining finishes a cancelled run at a mirror-consistent
// boundary: flush the current model to the mirror if the mirrored state
// is behind, then surface the cancellation cause.
func (f *Framework) stopTraining(ctx context.Context, freq, lastMirrored int) error {
	f.modelMu.Lock()
	iter := f.Net.Iteration
	if freq > 0 && iter != lastMirrored {
		f.pmMu.Lock()
		err := f.Mirror.MirrorOut(f.Net)
		f.pmMu.Unlock()
		if err != nil {
			f.modelMu.Unlock()
			return fmt.Errorf("core: final mirror out at iteration %d: %w", iter, err)
		}
	}
	f.modelMu.Unlock()
	return fmt.Errorf("core: training interrupted at iteration %d: %w", iter, context.Cause(ctx))
}

// TrainIters runs training up to maxIter iterations with an optional
// per-iteration loss callback.
//
// Deprecated: TrainIters is the v1 Train(maxIter, cb) signature kept as
// a thin shim. Use Train with StopAt and WithProgress, which adds
// cancellation and per-run mirror-frequency control:
//
//	f.Train(ctx, core.StopAt(maxIter), core.WithProgress(cb))
func (f *Framework) TrainIters(maxIter int, cb func(iter int, loss float32)) error {
	return f.Train(context.Background(), StopAt(maxIter), WithProgress(cb))
}
