package core

import (
	"context"

	"plinius/internal/spot"
)

// SpotTrainer adapts a Framework to the spot-instance simulator's
// Trainer protocol (Fig. 10): a Kill is a power failure (PM keeps only
// flushed data), a Resume restarts the process and recovers through
// SGX-Romulus and mirror-in.
type SpotTrainer struct {
	F *Framework
}

var _ spot.Trainer = (*SpotTrainer)(nil)

// Step runs exactly one training iteration and returns its loss.
func (s *SpotTrainer) Step() (float32, error) {
	var loss float32
	target := s.F.Iteration() + 1
	err := s.F.Train(context.Background(),
		StopAt(target), WithProgress(func(_ int, l float32) { loss = l }))
	return loss, err
}

// Kill simulates the spot instance being reclaimed.
func (s *SpotTrainer) Kill() { s.F.Crash() }

// Resume restarts the training process, restoring the mirrored model
// when crash resilience is enabled.
func (s *SpotTrainer) Resume() error {
	if !s.F.Crashed() {
		return nil // initial launch
	}
	return s.F.Recover(true)
}
