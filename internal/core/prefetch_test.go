package core

import (
	"sync"
	"testing"

	"plinius/internal/enclave"
)

// streamingGroup builds a shard group on a dedicated serving host
// whose budget forces streaming but leaves room for double-buffering
// (two hot ranges plus overheads).
func streamingGroup(t *testing.T, f *Framework, budget int, disablePrefetch bool, seed int64) (*ShardGroup, *enclave.Host) {
	t.Helper()
	host := enclave.NewHost(f.Host.Profile(), enclave.WithHostEPC(budget))
	g, err := f.NewShardGroup(ShardOptions{
		Host:            host,
		Batch:           2,
		OverheadBytes:   8 << 10,
		Seed:            seed,
		DisablePrefetch: disablePrefetch,
	})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	if !g.Streaming() {
		t.Fatalf("group not streaming on a %d-byte host (plan %v)", budget, g.Plan())
	}
	return g, host
}

// TestShardGroupPrefetchOverlapsRestores: with double-buffered restore
// enabled the pipeline takes strictly fewer full stalls than with it
// disabled, answers identically, and still pays zero page faults —
// the prefetcher charges its reservations against the host headroom,
// so the residency bound holds.
func TestShardGroupPrefetchOverlapsRestores(t *testing.T) {
	f, test := trainedShardFramework(t, 4)
	// Roomy enough that the headroom gate admits prefetches (two hot
	// ranges at once), tight enough that the plan still streams.
	budget := 192 << 10

	gOff, hostOff := streamingGroup(t, f, budget, true, 5)
	off := groupClassifyAll(t, gOff, test, 2)
	offStalls, offPrefetched := gOff.Stalls(), gOff.PrefetchedRestores()
	if err := gOff.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if offPrefetched != 0 {
		t.Fatalf("DisablePrefetch group prefetched %d restores", offPrefetched)
	}
	if offStalls == 0 {
		t.Fatal("no stalls without prefetch; test host not tight enough")
	}

	gOn, hostOn := streamingGroup(t, f, budget, false, 5)
	on := groupClassifyAll(t, gOn, test, 2)
	onStalls, onPrefetched := gOn.Stalls(), gOn.PrefetchedRestores()
	if err := gOn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("class[%d]: prefetch-off %d, prefetch-on %d", i, off[i], on[i])
		}
	}
	if onPrefetched == 0 {
		t.Fatal("prefetcher never ran; headroom gate too tight for the test host")
	}
	if onStalls >= offStalls {
		t.Fatalf("prefetch did not reduce stalls: %d with, %d without", onStalls, offStalls)
	}
	if s := hostOn.Stats(); s.PageSwaps != 0 {
		t.Fatalf("prefetching group paid %d faults; want 0 under the knee", s.PageSwaps)
	}
	if s := hostOff.Stats(); s.PageSwaps != 0 {
		t.Fatalf("no-prefetch group paid %d faults; want 0 under the knee", s.PageSwaps)
	}
}

// TestShardGroupPrefetchQuiescesOnRefresh drives concurrent classify
// traffic while Refresh and Rotate flip versions: the prefetcher must
// quiesce with the pipeline (no background restore may read a handle
// being swapped), every batch must answer, and the group must stay
// coherent. Run with -race.
func TestShardGroupPrefetchQuiescesOnRefresh(t *testing.T) {
	f, test := trainedShardFramework(t, 4)
	g, _ := streamingGroup(t, f, 192<<10, false, 7)
	defer g.Close()

	in := g.InputSize()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stop:
					return
				default:
				}
				img := test.Images[(i%test.N)*in : (i%test.N+1)*in]
				if _, err := g.ClassifyBatch(img); err != nil {
					t.Errorf("ClassifyBatch: %v", err)
					return
				}
				i += 3
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		if err := f.TrainIters(1, nil); err != nil {
			t.Fatalf("TrainIters: %v", err)
		}
		if _, err := f.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		if _, err := g.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
	}
	if _, err := f.RotateKey(); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if _, err := g.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	close(stop)
	wg.Wait()
	if g.Iteration() != f.Iteration() {
		t.Fatalf("group iter %d, framework %d", g.Iteration(), f.Iteration())
	}
}
