package core

import (
	"sync"
	"testing"

	"plinius/internal/mnist"
)

// TestParallelMirrorOutConcurrentWithClassify drives the fan-out
// MirrorOut path (model past the mirror-parallel threshold) while
// replicas classify from pinned snapshots and the training loop keeps
// iterating — the PR-5 concurrency surface: parallel sealing inside
// the Romulus transaction, parallel restore workers, and forward
// passes over reused layer scratch, all at once. Run with -race.
func TestParallelMirrorOutConcurrentWithClassify(t *testing.T) {
	cfgText, err := SyntheticModelConfig(1 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	f := newFramework(t, Config{
		ModelConfig:        cfgText,
		PMBytes:            24 << 20,
		Seed:               13,
		MirrorFreq:         1,
		TrainOverheadBytes: 1 << 20,
	})
	ds := mnist.Synthetic(64, 13)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(1, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	rep, err := f.NewReplica(3)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer rep.Close()
	// A second replica takes the refreshes: Replica methods are
	// single-goroutine, so rep classifies while rep2 restores.
	rep2, err := f.NewReplica(4)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer rep2.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		in := rep.InputSize()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rep.ClassifyBatch(ds.Images[(i%ds.N)*in : (i%ds.N+1)*in]); err != nil {
				t.Errorf("ClassifyBatch: %v", err)
				return
			}
			i++
		}
	}()
	// Mirror out (parallel seal pipeline), publish and restore (parallel
	// open pipeline) interleaved with the classify traffic.
	for r := 0; r < 4; r++ {
		if _, err := f.MirrorSave(); err != nil {
			t.Fatalf("MirrorSave: %v", err)
		}
		if _, err := f.Publish(); err != nil {
			t.Fatalf("Publish: %v", err)
		}
		if _, err := rep2.Refresh(); err != nil {
			t.Fatalf("Refresh: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
