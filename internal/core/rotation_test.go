package core

import (
	"bytes"
	"errors"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/mirror"
	"plinius/internal/mnist"
)

// tornRotationFramework trains a model, then drives RotateKey into a
// deterministic mid-reseal abort: the marker is persisted and some —
// but not all — data rows are under the new key, exactly the state a
// power failure during rotation leaves behind.
func tornRotationFramework(t *testing.T, chunks int) (*Framework, []byte) {
	t.Helper()
	f, err := New(Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     64 << 20,
		Seed:        11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 200 rows = 4 reseal chunks of 64; aborting after `chunks` leaves
	// a real mixed-epoch matrix.
	if err := f.LoadDataset(mnist.Synthetic(200, 11)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(3, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	oldKey := f.Key()

	f.testAbortResealAfter = chunks
	_, err = f.RotateKey()
	f.testAbortResealAfter = 0
	if !errors.Is(err, errAbortReseal) {
		t.Fatalf("RotateKey with abort hook = %v, want errAbortReseal", err)
	}
	// The torn state is real: the matrix now authenticates under
	// neither key alone.
	if _, _, err := f.Data.Row(0); err == nil {
		t.Fatal("row 0 still readable under the old key; reseal did not start")
	}
	rot, inProgress, err := mirror.OpenRotation(f.Rom)
	if err != nil || !inProgress || rot == nil {
		t.Fatalf("rotation marker = (%v, %v, %v), want in-progress", rot, inProgress, err)
	}
	return f, oldKey
}

// TestTornRotationRecovered: a crash mid-rotation recovers to a fully
// resealed state under the new key, with training and inference intact.
func TestTornRotationRecovered(t *testing.T) {
	f, oldKey := tornRotationFramework(t, 1)

	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	// The rotation must have completed: marker cleared, key flipped.
	if _, inProgress, err := mirror.OpenRotation(f.Rom); err != nil || inProgress {
		t.Fatalf("rotation marker after Recover = (%v, %v), want finished", inProgress, err)
	}
	if bytes.Equal(f.Key(), oldKey) {
		t.Fatal("key unchanged after recovered rotation")
	}
	// Every row decrypts under the post-rotation engine.
	for i := 0; i < f.Data.N(); i++ {
		if _, _, err := f.Data.Row(i); err != nil {
			t.Fatalf("row %d unreadable after recovery: %v", i, err)
		}
	}
	// The model resumed from the mirrored iteration and keeps training.
	if got := f.Iteration(); got != 3 {
		t.Fatalf("Iteration after recovery = %d, want 3", got)
	}
	if err := f.TrainIters(5, nil); err != nil {
		t.Fatalf("Train after recovered rotation: %v", err)
	}
	if _, err := f.Infer(mnist.Synthetic(64, 12)); err != nil {
		t.Fatalf("Infer after recovered rotation: %v", err)
	}
	// Serving state is consistent too: the republished snapshot is
	// under the new key and restorable by a fresh replica.
	rep, err := f.NewReplica(99)
	if err != nil {
		t.Fatalf("NewReplica after recovered rotation: %v", err)
	}
	defer rep.Close()
	if got := rep.Iteration(); got != 3 {
		t.Fatalf("replica iteration = %d, want 3", got)
	}
}

// TestTornRotationLateAbort exercises the other epoch boundary: the
// crash lands after most chunks flipped, so recovery has only the tail
// to reseal.
func TestTornRotationLateAbort(t *testing.T) {
	f, oldKey := tornRotationFramework(t, 3)
	f.Crash()
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if bytes.Equal(f.Key(), oldKey) {
		t.Fatal("key unchanged after recovered rotation")
	}
	for i := 0; i < f.Data.N(); i++ {
		if _, _, err := f.Data.Row(i); err != nil {
			t.Fatalf("row %d unreadable after recovery: %v", i, err)
		}
	}
	if err := f.TrainIters(4, nil); err != nil {
		t.Fatalf("Train after recovered rotation: %v", err)
	}
}

// TestTornRotationMirrorlessKeepsPublishedModel: with mirroring off
// the trained weights live only in the publication table; a torn
// rotation recovered there must republish the *trained* snapshot under
// the new key, not the random weights Recover builds.
func TestTornRotationMirrorlessKeepsPublishedModel(t *testing.T) {
	f, err := New(Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     64 << 20,
		MirrorFreq:  -1, // non-crash-resilient baseline: no training mirror
		Seed:        17,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(mnist.Synthetic(200, 17)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(3, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	f.testAbortResealAfter = 1
	_, err = f.RotateKey()
	f.testAbortResealAfter = 0
	if !errors.Is(err, errAbortReseal) {
		t.Fatalf("RotateKey with abort hook = %v, want errAbortReseal", err)
	}
	f.Crash()
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if _, inProgress, err := mirror.OpenRotation(f.Rom); err != nil || inProgress {
		t.Fatalf("rotation marker after Recover = (%v, %v), want finished", inProgress, err)
	}
	// The republished snapshot must hold the trained model: a fresh
	// replica restores iteration 3, not iteration 0 noise.
	rep, err := f.NewReplica(42)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer rep.Close()
	if got := rep.Iteration(); got != 3 {
		t.Fatalf("replica iteration = %d, want 3 (trained model lost in rotation recovery)", got)
	}
	// Data matrix fully resealed under the new key.
	for i := 0; i < f.Data.N(); i++ {
		if _, _, err := f.Data.Row(i); err != nil {
			t.Fatalf("row %d unreadable after recovery: %v", i, err)
		}
	}
}

// TestCleanRotationLeavesNoMarker: a successful RotateKey clears the
// in-progress flag, so the next Recover changes nothing.
func TestCleanRotationLeavesNoMarker(t *testing.T) {
	f, err := New(Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     64 << 20,
		Seed:        13,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.LoadDataset(mnist.Synthetic(128, 13)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(2, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := f.RotateKey(); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if _, inProgress, err := mirror.OpenRotation(f.Rom); err != nil || inProgress {
		t.Fatalf("marker after clean rotation = (%v, %v), want finished", inProgress, err)
	}
	keyAfter := f.Key()
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !bytes.Equal(f.Key(), keyAfter) {
		t.Fatal("Recover rotated the key again despite a finished marker")
	}
	if got := f.Iteration(); got != 2 {
		t.Fatalf("Iteration = %d, want 2", got)
	}
}
