package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"plinius/internal/engine"
)

// Checkpoint/restore instrumentation for the paper's central comparison
// (Fig. 7, Table I): the PM mirroring mechanism versus traditional
// checkpointing on an SSD. Each operation returns a StepTiming with the
// paper's breakdown — encrypt/write for saves, read/decrypt for
// restores.
//
// Attribution rules (see DESIGN.md): AES wall-clock time goes to
// Encrypt/Decrypt, plus EPC paging (page-swap counter x cost) which the
// paper attributes to the step doing the touching — encryption on
// saves, reads on restores. Device time (PM or SSD) goes to Write/Read,
// plus ocall transition time and the MEE boundary-copy cost.

// StepTiming is one Fig. 7 bar: the latency split of a save or restore.
type StepTiming struct {
	Encrypt time.Duration
	Write   time.Duration
	Read    time.Duration
	Decrypt time.Duration
}

// Total returns the end-to-end latency.
func (s StepTiming) Total() time.Duration {
	return s.Encrypt + s.Write + s.Read + s.Decrypt
}

// costSnap captures every cost counter involved in attribution.
type costSnap struct {
	pmMod     time.Duration
	ssdMod    time.Duration
	enclMod   time.Duration
	ecalls    uint64
	ocalls    uint64
	pageSwaps uint64
}

func (f *Framework) snap() costSnap {
	st := f.Enclave.Stats()
	return costSnap{
		pmMod:     f.PM.Clock().Modeled(),
		ssdMod:    f.SSD.Clock().Modeled(),
		enclMod:   f.Enclave.Clock().Modeled(),
		ecalls:    st.Ecalls,
		ocalls:    st.Ocalls,
		pageSwaps: st.PageSwaps,
	}
}

// delta decomposes the enclave/device cost movement since s0.
type costDelta struct {
	pm          time.Duration
	ssd         time.Duration
	paging      time.Duration
	transitions time.Duration
	copyAcross  time.Duration
}

func (f *Framework) delta(s0 costSnap) costDelta {
	s1 := f.snap()
	prof := f.Enclave.Profile()
	paging := time.Duration(s1.pageSwaps-s0.pageSwaps) * prof.PageSwapCost
	transitions := time.Duration((s1.ecalls-s0.ecalls)+(s1.ocalls-s0.ocalls)) * prof.TransitionCost()
	copyAcross := s1.enclMod - s0.enclMod - paging - transitions
	if copyAcross < 0 {
		copyAcross = 0
	}
	return costDelta{
		pm:          s1.pmMod - s0.pmMod,
		ssd:         s1.ssdMod - s0.ssdMod,
		paging:      paging,
		transitions: transitions,
		copyAcross:  copyAcross,
	}
}

// MirrorSave mirrors the model out to PM and returns the encrypt/write
// breakdown.
func (f *Framework) MirrorSave() (StepTiming, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if f.crashed {
		return StepTiming{}, ErrCrashedDown
	}
	if !f.mirroring() {
		return StepTiming{}, ErrMirroringOff
	}
	if err := f.attachMirror(); err != nil {
		return StepTiming{}, err
	}
	s0 := f.snap()
	if err := f.Mirror.MirrorOut(f.Net); err != nil {
		return StepTiming{}, err
	}
	// Outbound stores to PM are posted writes: no inbound MEE stall, so
	// no CopyAcross charge on the save path.
	d := f.delta(s0)
	return StepTiming{
		Encrypt: f.Mirror.LastSealDuration() + d.paging,
		Write:   d.pm + d.copyAcross + d.transitions,
	}, nil
}

// MirrorRestore mirrors the model in from PM and returns the
// read/decrypt breakdown.
func (f *Framework) MirrorRestore() (StepTiming, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if f.crashed {
		return StepTiming{}, ErrCrashedDown
	}
	if !f.mirroring() {
		return StepTiming{}, ErrMirroringOff
	}
	if err := f.attachMirror(); err != nil {
		return StepTiming{}, err
	}
	s0 := f.snap()
	if _, err := f.Mirror.MirrorIn(f.Net); err != nil {
		return StepTiming{}, err
	}
	d := f.delta(s0)
	return StepTiming{
		Read:    d.pm + d.copyAcross + d.transitions + d.paging,
		Decrypt: f.Mirror.LastOpenDuration(),
	}, nil
}

// SSD checkpoint format: magic(8) iteration(8) bufCount(8), then per
// buffer len(8) + sealed bytes. Matches the paper's baseline: encrypt
// in the enclave, then ocall fwrite + fsync per buffer.
const ssdCkptMagic = 0x504C4E434B5054 // "PLNCKPT"

// SSDSave checkpoints the model to the SSD device and returns the
// encrypt/write breakdown.
func (f *Framework) SSDSave(name string) (StepTiming, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.crashed {
		return StepTiming{}, ErrCrashedDown
	}
	s0 := f.snap()
	var sealWall time.Duration

	fh, err := f.SSD.Create(name)
	if err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd create: %w", err)
	}
	bufCount := 0
	for _, l := range f.Net.Layers {
		bufCount += len(l.Params())
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], ssdCkptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(f.Net.Iteration))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(bufCount))
	err = f.Enclave.Ocall(func() error {
		_, err := fh.Write(hdr[:])
		if err != nil {
			return err
		}
		return fh.Sync()
	})
	if err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd header: %w", err)
	}
	for li, l := range f.Net.Layers {
		for bi, p := range l.Params() {
			start := time.Now()
			sealed, err := f.Engine.SealFloatsScratch(p)
			sealWall += time.Since(start)
			if err != nil {
				return StepTiming{}, fmt.Errorf("core: seal layer %d buf %d: %w", li, bi, err)
			}
			err = f.Enclave.Ocall(func() error {
				var lenBuf [8]byte
				binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(sealed)))
				if _, err := fh.Write(lenBuf[:]); err != nil {
					return err
				}
				if _, err := fh.Write(sealed); err != nil {
					return err
				}
				return fh.Sync() // flush libC buffers + fsync per fwrite (§VI)
			})
			if err != nil {
				return StepTiming{}, fmt.Errorf("core: ssd write: %w", err)
			}
		}
	}
	if err := fh.Close(); err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd close: %w", err)
	}
	d := f.delta(s0)
	return StepTiming{
		Encrypt: sealWall + d.paging,
		Write:   d.ssd + d.copyAcross + d.transitions,
	}, nil
}

// SSDRestore loads an SSD checkpoint into the model and returns the
// read/decrypt breakdown.
func (f *Framework) SSDRestore(name string) (StepTiming, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.crashed {
		return StepTiming{}, ErrCrashedDown
	}
	s0 := f.snap()
	var openWall time.Duration

	fh, err := f.SSD.Open(name)
	if err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd open: %w", err)
	}
	var hdr [24]byte
	err = f.Enclave.Ocall(func() error {
		_, err := fh.Read(hdr[:])
		return err
	})
	if err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != ssdCkptMagic {
		return StepTiming{}, fmt.Errorf("core: %q is not a Plinius checkpoint", name)
	}
	iter := int(binary.LittleEndian.Uint64(hdr[8:]))
	bufCount := int(binary.LittleEndian.Uint64(hdr[16:]))

	var params [][]float32
	for _, l := range f.Net.Layers {
		params = append(params, l.Params()...)
	}
	if bufCount != len(params) {
		return StepTiming{}, fmt.Errorf("core: checkpoint has %d buffers, model has %d", bufCount, len(params))
	}
	var readBuf []byte
	for i, p := range params {
		var sealed []byte
		err := f.Enclave.Ocall(func() error {
			var lenBuf [8]byte
			if _, err := fh.Read(lenBuf[:]); err != nil {
				return err
			}
			n := int(binary.LittleEndian.Uint64(lenBuf[:]))
			if n != engine.SealedLen(4*len(p)) {
				return fmt.Errorf("buffer %d has %d bytes, want %d", i, n, engine.SealedLen(4*len(p)))
			}
			if cap(readBuf) < n {
				readBuf = make([]byte, n)
			}
			sealed = readBuf[:n]
			_, err := fh.Read(sealed)
			return err
		})
		if err != nil {
			return StepTiming{}, fmt.Errorf("core: ssd read: %w", err)
		}
		f.Enclave.CopyAcross(len(sealed))
		start := time.Now()
		err = f.Engine.OpenFloatsInto(p, sealed)
		openWall += time.Since(start)
		if err != nil {
			return StepTiming{}, fmt.Errorf("core: open buffer %d: %w", i, err)
		}
	}
	if err := fh.Close(); err != nil {
		return StepTiming{}, fmt.Errorf("core: ssd close: %w", err)
	}
	f.Net.Iteration = iter
	d := f.delta(s0)
	return StepTiming{
		Read:    d.ssd + d.copyAcross + d.transitions + d.paging,
		Decrypt: openWall,
	}, nil
}
