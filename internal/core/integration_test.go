package core

import (
	"errors"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// Integration tests exercising the full Fig. 5 workflow and failure
// paths across both server models.

func TestFullWorkflowBothServers(t *testing.T) {
	for _, server := range []ServerProfile{SGXEmlPM(), EmlSGXPM()} {
		t.Run(server.Name, func(t *testing.T) {
			f, err := New(Config{
				ModelConfig: darknet.MNISTConfig(1, 4, 16),
				Server:      server,
				PMBytes:     16 << 20,
				Seed:        50,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := f.LoadDataset(mnist.Synthetic(100, 50)); err != nil {
				t.Fatalf("LoadDataset: %v", err)
			}
			if err := f.TrainIters(8, nil); err != nil {
				t.Fatalf("Train: %v", err)
			}
			f.Crash()
			if err := f.Recover(true); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if f.Iteration() != 8 {
				t.Fatalf("iteration = %d", f.Iteration())
			}
			// Hardware-SGX server pays transition costs; the
			// simulation-mode server does not.
			if server.Enclave.HardwareSGX && f.Enclave.Clock().Modeled() == 0 {
				t.Fatal("hardware SGX charged nothing")
			}
		})
	}
}

func TestSSDCheckpointSurvivesPMCrash(t *testing.T) {
	// The SSD baseline's checkpoint lives on storage, not PM: a PM
	// power failure must not affect it.
	f := newFramework(t, smallConfig())
	if err := f.LoadDataset(mnist.Synthetic(100, 51)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(6, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := f.SSDSave("ckpt"); err != nil {
		t.Fatalf("SSDSave: %v", err)
	}
	f.Crash()
	if err := f.Recover(false); err != nil { // fresh weights, no mirror-in
		t.Fatalf("Recover: %v", err)
	}
	if _, err := f.SSDRestore("ckpt"); err != nil {
		t.Fatalf("SSDRestore after PM crash: %v", err)
	}
	if f.Iteration() != 6 {
		t.Fatalf("SSD-restored iteration = %d, want 6", f.Iteration())
	}
}

func TestSSDRestoreMissingFile(t *testing.T) {
	f := newFramework(t, smallConfig())
	if _, err := f.SSDRestore("nope"); err == nil {
		t.Fatal("restore of missing checkpoint succeeded")
	}
}

func TestSSDRestoreRejectsGarbage(t *testing.T) {
	f := newFramework(t, smallConfig())
	fh, err := f.SSD.Create("bad")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := fh.Write(make([]byte, 64)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.SSDRestore("bad"); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestInferValidatesDataset(t *testing.T) {
	f := newFramework(t, smallConfig())
	bad := mnist.Synthetic(10, 52)
	bad.Labels[0] = 99
	if _, err := f.Infer(bad); err == nil {
		t.Fatal("invalid test set accepted")
	}
}

func TestCheckpointOpsFailWhileCrashed(t *testing.T) {
	f := newFramework(t, smallConfig())
	f.Crash()
	if _, err := f.MirrorSave(); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("MirrorSave = %v", err)
	}
	if _, err := f.MirrorRestore(); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("MirrorRestore = %v", err)
	}
	if _, err := f.SSDSave("x"); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("SSDSave = %v", err)
	}
	if _, err := f.SSDRestore("x"); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("SSDRestore = %v", err)
	}
	if _, err := f.Infer(mnist.Synthetic(10, 53)); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("Infer = %v", err)
	}
	if err := f.LoadDataset(mnist.Synthetic(10, 53)); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("LoadDataset = %v", err)
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	f := newFramework(t, smallConfig())
	if err := f.LoadDataset(mnist.Synthetic(100, 54)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		target := (cycle + 1) * 3
		if err := f.TrainIters(target, nil); err != nil {
			t.Fatalf("cycle %d Train: %v", cycle, err)
		}
		f.Crash()
		if err := f.Recover(true); err != nil {
			t.Fatalf("cycle %d Recover: %v", cycle, err)
		}
		if f.Iteration() != target {
			t.Fatalf("cycle %d: iteration %d, want %d", cycle, f.Iteration(), target)
		}
	}
}

func TestEnclaveFootprintTracksModel(t *testing.T) {
	cfgText, err := SyntheticModelConfig(4 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	f, err := New(Config{ModelConfig: cfgText, PMBytes: 32 << 20, Seed: 55})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	foot := f.Enclave.Footprint()
	if foot < f.Net.ParamBytes() {
		t.Fatalf("footprint %d below model size %d", foot, f.Net.ParamBytes())
	}
	if f.Enclave.OverEPC() {
		t.Fatal("4MB model flagged over EPC")
	}
	// Crash releases the reservation; recover re-reserves.
	f.Crash()
	if f.Enclave.Footprint() >= foot {
		t.Fatal("crash did not release enclave footprint")
	}
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.Enclave.Footprint() < f.Net.ParamBytes() {
		t.Fatal("recover did not re-reserve footprint")
	}
}

func TestKeyProvisioningDeterministicPerSeed(t *testing.T) {
	// Different frameworks with attestation-provisioned keys must not
	// share keys (fresh owner entropy each time).
	a := newFramework(t, smallConfig())
	b := newFramework(t, smallConfig())
	ka, kb := a.Key(), b.Key()
	same := true
	for i := range ka {
		if ka[i] != kb[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two attestation runs produced the same data key")
	}
}

func TestMirrorRestoreMatchesEPCModel(t *testing.T) {
	// Beyond-EPC configuration still round-trips correctly (paging
	// only affects cost, never correctness).
	cfgText, err := SyntheticModelConfig(2 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	f, err := New(Config{
		ModelConfig:        cfgText,
		PMBytes:            32 << 20,
		Seed:               56,
		TrainOverheadBytes: enclave.UsableEPC, // force over-EPC accounting
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !f.Enclave.OverEPC() {
		t.Fatal("not over EPC despite forced overhead")
	}
	if _, err := f.MirrorSave(); err != nil {
		t.Fatalf("MirrorSave: %v", err)
	}
	want := f.Net.Layers[0].Params()[0][0]
	f.Net.Layers[0].Params()[0][0] = 777
	if _, err := f.MirrorRestore(); err != nil {
		t.Fatalf("MirrorRestore: %v", err)
	}
	if got := f.Net.Layers[0].Params()[0][0]; got != want {
		t.Fatalf("restored %f, want %f", got, want)
	}
	if f.Enclave.Stats().PageSwaps == 0 {
		t.Fatal("no page swaps recorded beyond EPC")
	}
}
