package core

import (
	"crypto/rand"
	"fmt"

	"plinius/internal/engine"
	"plinius/internal/mirror"
)

// Model publication and key rotation: the framework side of the v2
// serving handshake. Publish seals the current enclave parameters into
// an immutable, versioned snapshot in PM (separate from the training
// mirror, which is overwritten every iteration); replicas restore a
// pinned version, so Server.Refresh never races a concurrent
// MirrorOut. RotateKey re-provisions the data key and re-seals all
// persistent state under it.

// pmLiveLocked re-checks, under pmMu, that PM is still attached.
// Crash() nils f.Rom while holding both locks, so a caller that
// checked the crash flag before acquiring pmMu must re-check here —
// otherwise a concurrent Crash between the two acquisitions would
// turn into a nil-pointer panic instead of ErrCrashedDown.
func (f *Framework) pmLiveLocked() error {
	if f.crashed || f.Rom == nil {
		return ErrCrashedDown
	}
	return nil
}

// attachPublication opens (or creates) the publication table. Caller
// holds pmMu.
func (f *Framework) attachPublication() error {
	if f.pub != nil {
		return nil
	}
	if err := f.pmLiveLocked(); err != nil {
		return err
	}
	p, err := mirror.OpenPublication(f.Rom)
	if err != nil {
		return fmt.Errorf("core: open publication: %w", err)
	}
	f.pub = p
	return nil
}

// EnsureModelCurrent restores the enclave model from the PM training
// mirror when the mirror is ahead of the in-enclave state — the case
// after Recover(false) deferred the restore (the enclave then holds
// fresh random weights while PM holds the real model). No-op when the
// enclave is already current or PM holds no mirror.
func (f *Framework) EnsureModelCurrent() error {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.crashed {
		return ErrCrashedDown
	}
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if f.Mirror == nil {
		if !mirror.Exists(f.Rom) {
			return nil
		}
		// Attaching an existing mirror runs mirror-in, restoring the
		// parameters and iteration counter.
		return f.Enclave.Ecall(f.attachMirror)
	}
	iter, err := f.Mirror.Iteration()
	if err != nil {
		return err
	}
	if iter <= f.Net.Iteration {
		return nil
	}
	return f.Enclave.Ecall(func() error {
		_, err := f.Mirror.MirrorIn(f.Net)
		return err
	})
}

// SetPublishQuantized toggles quantized publication: when on, every
// subsequent Publish (and the snapshot RotateKey publishes) seals an
// int8-quantized variant alongside the fp32 snapshot, restorable by
// quantized replicas via Pin.OpenQuant. The flag is sticky so refresh
// and rotation keep working end-to-end once a deployment serves int8.
func (f *Framework) SetPublishQuantized(on bool) {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	f.pubQuant = on
}

// PublishQuantized reports whether quantized publication is on.
func (f *Framework) PublishQuantized() bool {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	return f.pubQuant
}

// publishOptsLocked returns the PublishOut options for the current
// publication mode. Caller holds pmMu.
func (f *Framework) publishOptsLocked() []mirror.PublishOption {
	if f.pubQuant {
		return []mirror.PublishOption{mirror.WithQuantized()}
	}
	return nil
}

// Publish seals the current enclave parameters into a new immutable
// published version in PM and returns its version number. Publishing
// is safe concurrently with Train: it synchronizes on the iteration
// boundary and writes a snapshot region training never touches.
func (f *Framework) Publish() (uint64, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.crashed {
		return 0, ErrCrashedDown
	}
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return 0, err
	}
	var ver uint64
	err := f.Enclave.Ecall(func() error {
		v, err := f.pub.PublishOut(f.Engine, f.Net, f.publishOptsLocked()...)
		ver = v
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("core: publish model: %w", err)
	}
	return ver, nil
}

// LatestPublished returns the most recent published model version, 0
// if nothing has been published.
func (f *Framework) LatestPublished() (uint64, error) {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.pmLiveLocked(); err != nil {
		return 0, err
	}
	if !mirror.PublicationExists(f.Rom) {
		return 0, nil
	}
	if err := f.attachPublication(); err != nil {
		return 0, err
	}
	return f.pub.LatestVersion(), nil
}

// PinPublished pins a published version (0 pins the latest) against
// slot recycling and returns the hold. Replicas pin before restoring.
func (f *Framework) PinPublished(version uint64) (*mirror.Pin, error) {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return nil, err
	}
	return f.pub.Pin(version)
}

// Servable reports whether the framework can publish and serve a
// model: nil, or a sentinel explaining why not (errors.Is-matchable
// against ErrCrashedDown and ErrNoServableModel).
func (f *Framework) Servable() error {
	f.modelMu.Lock()
	crashed := f.crashed
	trained := f.Net != nil && f.Net.Iteration > 0
	f.modelMu.Unlock()
	if crashed {
		return ErrCrashedDown
	}
	if f.Data != nil {
		return nil
	}
	// Dataset-less framework: servable only if a previous run left a
	// published snapshot or a mirrored model in PM to serve from.
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.pmLiveLocked(); err != nil {
		return err
	}
	if mirror.PublicationExists(f.Rom) {
		if err := f.attachPublication(); err != nil {
			return err
		}
		if f.pub.LatestVersion() > 0 {
			return nil
		}
	}
	if trained || mirror.Exists(f.Rom) {
		return nil
	}
	return ErrNoServableModel
}

// RotateKey provisions a fresh data key and re-seals every persistent
// object under it: the training data matrix, the PM training mirror,
// and a newly published model snapshot (whose version is returned).
// The in-enclave model is untouched, so training continues seamlessly;
// serving replicas must be re-provisioned afterwards (Server.RotateKey
// drives that, one replica at a time, so serving never gaps).
//
// Snapshots published under the old key remain in PM until recycled
// but can no longer be decrypted; after RotateKey, replicas must
// refresh to the returned (or a later) version.
func (f *Framework) RotateKey() (uint64, error) {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.crashed {
		return 0, ErrCrashedDown
	}
	newKey, err := engine.GenerateKey(rand.Reader)
	if err != nil {
		return 0, fmt.Errorf("core: rotate keygen: %w", err)
	}
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	var ver uint64
	err = f.Enclave.Ecall(func() error {
		// Attach the training mirror with the old engine first, so a
		// lazily-recovered model is restored before the key flips. The
		// mirror may exist even with config-level mirroring off (the
		// MirrorEvery override), and must be re-sealed regardless.
		if f.Mirror == nil && mirror.Exists(f.Rom) {
			if err := f.attachMirror(); err != nil {
				return err
			}
		}
		eng, err := engine.New(newKey, engine.WithEnclave(f.Enclave))
		if err != nil {
			return fmt.Errorf("new engine: %w", err)
		}
		// Persist the rotation marker before the first row flips: a
		// crash anywhere in the reseal is then detected by Recover,
		// which unwraps the new key from the marker and finishes the
		// job from the recorded row cursor (rotation.go).
		rot, err := mirror.BeginRotation(f.Rom, f.Engine, newKey)
		if err != nil {
			return fmt.Errorf("begin rotation: %w", err)
		}
		if f.Data != nil {
			if err := f.Data.ResealFrom(eng, 0, f.resealMark(rot)); err != nil {
				return fmt.Errorf("reseal data matrix: %w", err)
			}
		}
		if f.Mirror != nil {
			f.Mirror.SetEngine(eng)
			if err := f.Mirror.MirrorOut(f.Net); err != nil {
				return fmt.Errorf("reseal training mirror: %w", err)
			}
		}
		f.key = newKey
		f.Engine = eng
		if err := f.attachPublication(); err != nil {
			return err
		}
		ver, err = f.pub.PublishOut(eng, f.Net, f.publishOptsLocked()...)
		if err != nil {
			return fmt.Errorf("publish under new key: %w", err)
		}
		if err := rot.Finish(); err != nil {
			return fmt.Errorf("finish rotation: %w", err)
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: rotate key: %w", err)
	}
	return ver, nil
}
