package core

import (
	"fmt"
	"strings"
)

// Synthetic model construction for the Fig. 7 / Table I size sweep. The
// paper varies model size "by increasing the total number of
// convolutional layers"; this builder does the same, stacking
// fixed-width conv layers until the parameter footprint reaches the
// target.

// synthFilters is the conv width of the size-sweep models. One
// 3x3xFxF layer holds F*F*9 weights plus 4F per-filter buffers.
const synthFilters = 160

// synthLayerBytes returns the parameter bytes of one inner conv layer.
func synthLayerBytes() int {
	return 4 * (synthFilters*synthFilters*9 + 4*synthFilters)
}

// SyntheticModelConfig returns a Darknet .cfg whose parameter footprint
// is approximately targetBytes (within one conv layer's size).
func SyntheticModelConfig(targetBytes int) (string, error) {
	layerBytes := synthLayerBytes()
	if targetBytes < layerBytes {
		return "", fmt.Errorf("core: target %d below one layer (%d bytes)", targetBytes, layerBytes)
	}
	layers := targetBytes / layerBytes
	var sb strings.Builder
	sb.WriteString("[net]\nbatch=1\nlearning_rate=0.1\nchannels=1\nheight=28\nwidth=28\n\n")
	for i := 0; i < layers; i++ {
		fmt.Fprintf(&sb, "[convolutional]\nfilters=%d\nsize=3\nstride=1\npad=1\nactivation=leaky\n\n", synthFilters)
	}
	sb.WriteString("[maxpool]\nsize=2\nstride=2\n\n[connected]\noutput=10\nactivation=linear\n\n[softmax]\n")
	return sb.String(), nil
}
