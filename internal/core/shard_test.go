package core

import (
	"errors"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// trainedShardFramework trains a small model so shard restores have
// real weights, with a 1 MB per-enclave overhead so tests control the
// host arithmetic.
func trainedShardFramework(t *testing.T, iters int) (*Framework, *mnist.Dataset) {
	t.Helper()
	f := newFramework(t, Config{
		ModelConfig:        darknet.MNISTConfig(2, 6, 16),
		PMBytes:            64 << 20,
		Seed:               11,
		TrainOverheadBytes: 1 << 20,
	})
	ds := mnist.Synthetic(192, 11)
	train, test, err := ds.Split(128)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := f.LoadDataset(train); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(iters, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	return f, test
}

// classifyAll runs every test image through the group in batches.
func groupClassifyAll(t *testing.T, g *ShardGroup, test *mnist.Dataset, batch int) []int {
	t.Helper()
	in := g.InputSize()
	out := make([]int, 0, test.N)
	for start := 0; start < test.N; start += batch {
		end := start + batch
		if end > test.N {
			end = test.N
		}
		classes, err := g.ClassifyBatch(test.Images[start*in : end*in])
		if err != nil {
			t.Fatalf("ClassifyBatch [%d,%d): %v", start, end, err)
		}
		out = append(out, classes...)
	}
	return out
}

// TestShardGroupSingleShardMatchesReplica: a one-shard plan is the
// Replica path — same snapshot, same forward, bit-identical classes.
func TestShardGroupSingleShardMatchesReplica(t *testing.T) {
	f, test := trainedShardFramework(t, 6)
	rep, err := f.NewReplica(3)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer rep.Close()

	g, err := f.NewShardGroup(ShardOptions{Shards: 1, Batch: 8, Seed: 5})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	defer g.Close()
	if g.Shards() != 1 || g.Streaming() {
		t.Fatalf("Shards=%d Streaming=%v, want a resident single shard", g.Shards(), g.Streaming())
	}
	if g.Version() != rep.Version() || g.Iteration() != rep.Iteration() {
		t.Fatalf("group serves v%d iter %d, replica v%d iter %d",
			g.Version(), g.Iteration(), rep.Version(), rep.Iteration())
	}

	in := g.InputSize()
	for start := 0; start+8 <= test.N; start += 8 {
		images := test.Images[start*in : (start+8)*in]
		want, err := rep.ClassifyBatch(images)
		if err != nil {
			t.Fatalf("replica ClassifyBatch: %v", err)
		}
		got, err := g.ClassifyBatch(images)
		if err != nil {
			t.Fatalf("group ClassifyBatch: %v", err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch at %d: class[%d] = %d, want %d", start, i, got[i], want[i])
			}
		}
	}
}

// TestShardGroupPipelineMatchesSequential: a multi-shard pipeline
// classifies exactly like the sequential enclave model, for every plan
// size, including concurrent pipelined submissions.
func TestShardGroupPipelineMatchesSequential(t *testing.T) {
	f, test := trainedShardFramework(t, 6)
	want := make([]int, test.N)
	for i := 0; i < test.N; i++ {
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify %d: %v", i, err)
		}
		want[i] = cls
	}

	for _, shards := range []int{2, 4} {
		g, err := f.NewShardGroup(ShardOptions{Shards: shards, Batch: 8, Seed: 5})
		if err != nil {
			t.Fatalf("NewShardGroup(%d): %v", shards, err)
		}
		if g.Shards() < 2 {
			t.Fatalf("plan %v produced %d shards, want >= 2", g.Plan(), g.Shards())
		}
		got := groupClassifyAll(t, g, test, 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d shards: class[%d] = %d, want %d", shards, i, got[i], want[i])
			}
		}
		if err := g.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if _, err := g.ClassifyBatch(test.Images[:g.InputSize()]); !errors.Is(err, ErrShardGroupClosed) {
			t.Fatalf("ClassifyBatch after Close = %v, want ErrShardGroupClosed", err)
		}
	}
}

// TestShardGroupStreamingStaysUnderKnee: on a serving host too small
// for the whole model, the group streams ranges from PM — the host
// never crosses the paging knee and pays zero faults, while a
// monolithic replica on an identical host is over the knee from the
// start and all-misses its restore.
func TestShardGroupStreamingStaysUnderKnee(t *testing.T) {
	f, test := trainedShardFramework(t, 4)
	// A serving budget far below one whole replica (~1.05 MB here):
	// the monolithic path must overcommit, while per-layer shards at
	// batch 2 (largest hot range ~75 KB) stream within it.
	budget := 128 << 10
	prof := f.Host.Profile()

	mono := enclave.NewHost(prof, enclave.WithHostEPC(budget))
	rep, err := f.NewReplicaOn(mono, 3)
	if err != nil {
		t.Fatalf("NewReplicaOn: %v", err)
	}
	defer rep.Close()
	if !mono.OverEPC() {
		t.Fatalf("monolithic replica host under EPC (resident %d, budget %d); test needs the knee", mono.Resident(), budget)
	}
	monoFaults := mono.Stats().PageSwaps
	if monoFaults == 0 {
		t.Fatal("monolithic restore over the knee paid no faults")
	}

	shardHost := enclave.NewHost(prof, enclave.WithHostEPC(budget))
	g, err := f.NewShardGroup(ShardOptions{
		Host:          shardHost,
		Batch:         2,
		OverheadBytes: 8 << 10,
		Seed:          5,
	})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	defer g.Close()
	if !g.Streaming() {
		t.Fatalf("group not streaming on a %d-byte host (plan %v)", budget, g.Plan())
	}

	got := groupClassifyAll(t, g, test, 2)
	want := make([]int, test.N)
	for i := range want {
		cls, err := f.Classify(test.Image(i))
		if err != nil {
			t.Fatalf("sequential classify: %v", err)
		}
		want[i] = cls
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streaming class[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	hs := shardHost.Stats()
	if hs.PageSwaps != 0 {
		t.Fatalf("streaming group paid %d faults; want 0 under the knee", hs.PageSwaps)
	}
	if hs.PeakResidentBytes > budget {
		t.Fatalf("streaming group peaked at %d bytes over the %d budget", hs.PeakResidentBytes, budget)
	}
	if 20*hs.PageSwaps >= monoFaults {
		t.Fatalf("sharded faults %d not under 5%% of monolithic %d", hs.PageSwaps, monoFaults)
	}
	if g.Restores() == 0 {
		t.Fatal("streaming group recorded no PM range restores")
	}
}

// TestShardGroupRefreshAndRotate: the group follows publication
// versions and key rotation, both while resident and while streaming.
func TestShardGroupRefreshAndRotate(t *testing.T) {
	f, test := trainedShardFramework(t, 4)
	g, err := f.NewShardGroup(ShardOptions{Shards: 3, Batch: 8, Seed: 5})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	defer g.Close()
	v1 := g.Version()

	if err := f.TrainIters(3, nil); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	if _, err := f.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	iter, err := g.Refresh()
	if err != nil {
		t.Fatalf("Refresh: %v", err)
	}
	if g.Version() <= v1 {
		t.Fatalf("Refresh left version %d, want > %d", g.Version(), v1)
	}
	if iter != f.Iteration() {
		t.Fatalf("Refresh iteration %d, want %d", iter, f.Iteration())
	}

	if _, err := f.RotateKey(); err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if _, err := g.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// Still serving correctly under the new key and version.
	want, err := f.Classify(test.Image(0))
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	got, err := g.ClassifyBatch(test.Image(0))
	if err != nil {
		t.Fatalf("ClassifyBatch after rotate: %v", err)
	}
	if got[0] != want {
		t.Fatalf("after rotate class = %d, want %d", got[0], want)
	}
}

// TestShardGroupRecordsManifest: the plan's node ranges are persisted
// alongside the publication slots, durably and re-readably.
func TestShardGroupRecordsManifest(t *testing.T) {
	f, _ := trainedShardFramework(t, 4)
	g, err := f.NewShardGroup(ShardOptions{Shards: 3, Batch: 8, Seed: 5})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	defer g.Close()

	f.pmMu.Lock()
	entries, err := f.pub.ShardManifest()
	f.pmMu.Unlock()
	if err != nil {
		t.Fatalf("ShardManifest: %v", err)
	}
	plan := g.Plan()
	if len(entries) != len(plan) {
		t.Fatalf("manifest has %d entries for %d shards", len(entries), len(plan))
	}
	for i, e := range entries {
		if e.From != plan[i].From || e.To != plan[i].To {
			t.Fatalf("manifest[%d] = %+v, want the plan range %v", i, e, plan[i])
		}
	}
}

// TestShardGroupReusesPersistedPlan: auto planning honours the
// manifest a previous group recorded — across a framework crash and
// recovery, and whatever the new host's headroom would have suggested.
func TestShardGroupReusesPersistedPlan(t *testing.T) {
	f, _ := trainedShardFramework(t, 4)
	// First group: force a fine split on a small host and record it.
	small := enclave.NewHost(f.Host.Profile(), enclave.WithHostEPC(128<<10))
	g1, err := f.NewShardGroup(ShardOptions{Host: small, Batch: 2, OverheadBytes: 8 << 10, Seed: 5})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	want := g1.Plan()
	if len(want) < 2 {
		t.Fatalf("plan %v too coarse for the reuse test", want)
	}
	if err := g1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	// Second group auto-plans on a roomy host, which alone would yield
	// a coarser split; the persisted manifest wins.
	g2, err := f.NewShardGroup(ShardOptions{Batch: 2, OverheadBytes: 8 << 10, Seed: 6})
	if err != nil {
		t.Fatalf("NewShardGroup after recover: %v", err)
	}
	defer g2.Close()
	got := g2.Plan()
	if len(got) != len(want) {
		t.Fatalf("recreated plan %v, want the recorded %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recreated plan %v, want the recorded %v", got, want)
		}
	}

	// An explicit option still replans.
	g3, err := f.NewShardGroup(ShardOptions{Shards: 1, Batch: 2, Seed: 7})
	if err != nil {
		t.Fatalf("NewShardGroup explicit: %v", err)
	}
	defer g3.Close()
	if g3.Shards() != 1 {
		t.Fatalf("explicit single-shard plan got %d shards", g3.Shards())
	}
}

// TestShardGroupRejectsOversizedBatch: the plan bounds the micro-batch.
func TestShardGroupRejectsOversizedBatch(t *testing.T) {
	f, test := trainedShardFramework(t, 2)
	g, err := f.NewShardGroup(ShardOptions{Shards: 2, Batch: 4, Seed: 5})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}
	defer g.Close()
	in := g.InputSize()
	if _, err := g.ClassifyBatch(test.Images[:8*in]); !errors.Is(err, ErrShardBatch) {
		t.Fatalf("oversized batch = %v, want ErrShardBatch", err)
	}
	if _, err := g.ClassifyBatch(test.Images[:in/2]); err == nil {
		t.Fatal("ragged batch accepted")
	}
}
