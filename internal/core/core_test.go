package core

import (
	"errors"
	"testing"

	"plinius/internal/darknet"
	"plinius/internal/engine"
	"plinius/internal/mnist"
)

// smallConfig returns a fast-to-train framework config for tests.
func smallConfig() Config {
	return Config{
		ModelConfig: darknet.MNISTConfig(1, 4, 16),
		PMBytes:     16 << 20,
		Seed:        1,
	}
}

func newFramework(t *testing.T, cfg Config) *Framework {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func TestNewProvisionsKeyViaAttestation(t *testing.T) {
	f := newFramework(t, smallConfig())
	if len(f.Key()) != engine.KeySize {
		t.Fatalf("provisioned key has %d bytes", len(f.Key()))
	}
	// Attestation ran at least one ecall.
	if f.Enclave.Stats().Ecalls == 0 {
		t.Fatal("no ecalls recorded during setup")
	}
}

func TestNewAcceptsExplicitKey(t *testing.T) {
	cfg := smallConfig()
	cfg.DataKey = []byte("0123456789abcdef")
	f := newFramework(t, cfg)
	if string(f.Key()) != "0123456789abcdef" {
		t.Fatal("explicit key not used")
	}
	cfg.DataKey = []byte("short")
	if _, err := New(cfg); err == nil {
		t.Fatal("bad key length accepted")
	}
}

func TestNewRequiresModelConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTrainRequiresDataset(t *testing.T) {
	f := newFramework(t, smallConfig())
	if err := f.TrainIters(1, nil); !errors.Is(err, ErrNoDataset) {
		t.Fatalf("Train without data = %v, want ErrNoDataset", err)
	}
}

func TestTrainReducesLossOnSyntheticMNIST(t *testing.T) {
	f := newFramework(t, smallConfig())
	ds := mnist.Synthetic(200, 2)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	var first, last float32
	err := f.TrainIters(30, func(iter int, loss float32) {
		if iter == 1 {
			first = loss
		}
		last = loss
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if f.Iteration() != 30 {
		t.Fatalf("Iteration = %d, want 30", f.Iteration())
	}
	if last >= first {
		t.Fatalf("loss not decreasing: first=%.4f last=%.4f", first, last)
	}
}

func TestCrashRecoveryResumesWhereItLeftOff(t *testing.T) {
	// The Fig. 9(a) property: training continues from the mirrored
	// iteration, not from scratch.
	f := newFramework(t, smallConfig())
	ds := mnist.Synthetic(200, 3)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	var lossBefore float32
	if err := f.TrainIters(20, func(_ int, l float32) { lossBefore = l }); err != nil {
		t.Fatalf("Train: %v", err)
	}

	f.Crash()
	if !f.Crashed() {
		t.Fatal("Crashed = false after Crash")
	}
	if err := f.TrainIters(25, nil); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("Train while crashed = %v, want ErrCrashedDown", err)
	}
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != 20 {
		t.Fatalf("iteration after recovery = %d, want 20", got)
	}
	var lossAfter float32
	if err := f.TrainIters(21, func(_ int, l float32) { lossAfter = l }); err != nil {
		t.Fatalf("Train after recovery: %v", err)
	}
	// The first post-recovery loss continues the curve: it must be far
	// below the ~2.3 random-weights starting loss.
	if lossAfter > lossBefore*2+0.5 {
		t.Fatalf("loss jumped after recovery: before=%.4f after=%.4f", lossBefore, lossAfter)
	}
}

func TestNonResilientRestartsFromScratch(t *testing.T) {
	// The Fig. 9(b) baseline: without mirroring, a crash loses all
	// learned parameters and the iteration counter.
	cfg := smallConfig()
	cfg.MirrorFreq = -1
	f := newFramework(t, cfg)
	ds := mnist.Synthetic(200, 4)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(20, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != 0 {
		t.Fatalf("non-resilient iteration after crash = %d, want 0", got)
	}
}

func TestRecoverOnLiveFrameworkFails(t *testing.T) {
	f := newFramework(t, smallConfig())
	if err := f.Recover(true); !errors.Is(err, ErrNotCrashed) {
		t.Fatalf("Recover live = %v, want ErrNotCrashed", err)
	}
}

func TestDatasetSurvivesCrash(t *testing.T) {
	f := newFramework(t, smallConfig())
	ds := mnist.Synthetic(100, 5)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(5, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if f.Data == nil {
		t.Fatal("training data not re-attached after crash")
	}
	if f.Data.N() != 100 {
		t.Fatalf("data rows = %d, want 100", f.Data.N())
	}
	// Training continues without re-loading the dataset.
	if err := f.TrainIters(7, nil); err != nil {
		t.Fatalf("Train after recovery: %v", err)
	}
}

func TestMirrorFrequency(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorFreq = 5
	f := newFramework(t, cfg)
	ds := mnist.Synthetic(100, 6)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(7, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	// Iterations 5 was mirrored; 6,7 were not. After a crash the model
	// resumes from iteration 5.
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != 5 {
		t.Fatalf("iteration after crash with freq=5: %d, want 5", got)
	}
}

func TestInferAccuracyOnTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := smallConfig()
	cfg.ModelConfig = darknet.MNISTConfig(2, 8, 32)
	f := newFramework(t, cfg)
	full := mnist.Synthetic(600, 7)
	train, test, err := full.Split(500)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if err := f.LoadDataset(train); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(60, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc, err := f.Infer(test)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy %.3f below 0.9 on synthetic digits", acc)
	}
}

func TestCheckpointTimingsPMFasterThanSSD(t *testing.T) {
	// The Fig. 7 headline: mirroring beats SSD checkpointing for both
	// saves and restores.
	cfgText, err := SyntheticModelConfig(4 << 20)
	if err != nil {
		t.Fatalf("SyntheticModelConfig: %v", err)
	}
	cfg := Config{ModelConfig: cfgText, PMBytes: 64 << 20, Seed: 8}
	f := newFramework(t, cfg)

	save, err := f.MirrorSave()
	if err != nil {
		t.Fatalf("MirrorSave: %v", err)
	}
	restore, err := f.MirrorRestore()
	if err != nil {
		t.Fatalf("MirrorRestore: %v", err)
	}
	ssdSave, err := f.SSDSave("ckpt")
	if err != nil {
		t.Fatalf("SSDSave: %v", err)
	}
	ssdRestore, err := f.SSDRestore("ckpt")
	if err != nil {
		t.Fatalf("SSDRestore: %v", err)
	}
	if save.Total() >= ssdSave.Total() {
		t.Fatalf("mirror save %v not faster than SSD save %v", save.Total(), ssdSave.Total())
	}
	if restore.Total() >= ssdRestore.Total() {
		t.Fatalf("mirror restore %v not faster than SSD restore %v", restore.Total(), ssdRestore.Total())
	}
	// Breakdown sanity: saves split into encrypt+write, restores into
	// read+decrypt.
	if save.Encrypt <= 0 || save.Write <= 0 || save.Read != 0 || save.Decrypt != 0 {
		t.Fatalf("save breakdown malformed: %+v", save)
	}
	if restore.Read <= 0 || restore.Decrypt <= 0 || restore.Encrypt != 0 || restore.Write != 0 {
		t.Fatalf("restore breakdown malformed: %+v", restore)
	}
}

func TestSSDRestoreIntoFreshModelMatches(t *testing.T) {
	cfg := smallConfig()
	f := newFramework(t, cfg)
	ds := mnist.Synthetic(100, 9)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.TrainIters(5, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, err := f.SSDSave("ckpt"); err != nil {
		t.Fatalf("SSDSave: %v", err)
	}
	trained := f.Net.Layers[0].Params()[0][3]

	// Perturb, restore, compare.
	f.Net.Layers[0].Params()[0][3] = 12345
	if _, err := f.SSDRestore("ckpt"); err != nil {
		t.Fatalf("SSDRestore: %v", err)
	}
	if got := f.Net.Layers[0].Params()[0][3]; got != trained {
		t.Fatalf("restored weight %f, want %f", got, trained)
	}
	if f.Iteration() != 5 {
		t.Fatalf("restored iteration = %d, want 5", f.Iteration())
	}
}

func TestSyntheticModelConfigSizes(t *testing.T) {
	for _, mb := range []int{2, 4, 8} {
		target := mb << 20
		cfgText, err := SyntheticModelConfig(target)
		if err != nil {
			t.Fatalf("SyntheticModelConfig(%d): %v", target, err)
		}
		cfg := Config{ModelConfig: cfgText, PMBytes: 8 << 20, Seed: 1}
		// Only parse, don't run: check the parameter footprint.
		f, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		got := f.Net.ParamBytes()
		if got < target*3/4 || got > target*5/4 {
			t.Fatalf("target %d bytes, built %d", target, got)
		}
	}
	if _, err := SyntheticModelConfig(100); err == nil {
		t.Fatal("tiny target accepted")
	}
}

func TestSpotTrainerProtocol(t *testing.T) {
	f := newFramework(t, smallConfig())
	ds := mnist.Synthetic(100, 10)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	tr := &SpotTrainer{F: f}
	if err := tr.Resume(); err != nil { // initial launch: no-op
		t.Fatalf("initial Resume: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tr.Step(); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if f.Iteration() != 3 {
		t.Fatalf("iteration = %d, want 3", f.Iteration())
	}
	tr.Kill()
	if err := tr.Resume(); err != nil {
		t.Fatalf("Resume after kill: %v", err)
	}
	if f.Iteration() != 3 {
		t.Fatalf("iteration after resume = %d, want 3", f.Iteration())
	}
	if _, err := tr.Step(); err != nil {
		t.Fatalf("Step after resume: %v", err)
	}
	if f.Iteration() != 4 {
		t.Fatalf("iteration = %d, want 4", f.Iteration())
	}
}

func TestPlaintextDataMode(t *testing.T) {
	cfg := smallConfig()
	cfg.PlaintextData = true
	f := newFramework(t, cfg)
	ds := mnist.Synthetic(100, 11)
	if err := f.LoadDataset(ds); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if f.Data.Encrypted() {
		t.Fatal("plaintext mode loaded encrypted data")
	}
	if err := f.TrainIters(3, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
}
