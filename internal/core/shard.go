package core

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mirror"
	"plinius/internal/obs"
)

// Model sharding (the serving answer to the Fig. 7 paging knee): a
// ShardGroup serves one model that exceeds the usable EPC by splitting
// it into contiguous layer ranges, each hosted in its own small shard
// enclave, and pipelining micro-batches through them — shard k
// processes batch i+1 while shard k+1 processes batch i, activations
// crossing between enclaves only in sealed form.
//
// The point is EPC residency. A monolithic replica of an over-EPC
// model keeps the whole parameter set resident, so the host is
// permanently over the paging knee and every restore and every staged
// batch pays the all-miss fault stream. A ShardGroup instead bounds
// what is resident: a shard holds only a small fixed overhead while
// idle ("parked") and reserves its layer range — parameters plus
// activation buffers — only while processing a batch ("hot"); a parked
// shard's parameters are re-restored on demand from the pinned
// published snapshot in PM, trading the fault storm for a sealed PM
// read and an in-enclave decrypt, exactly the byte-addressable-PM
// bargain the paper builds on. The pipeline admits only as many
// concurrent batches as hot shards fit the host's EPC headroom, so the
// host stays under the knee and serving pays (near) zero faults where
// the monolithic replica pays all-miss.
//
// When the whole plan fits the headroom the group runs resident: every
// shard restores once and stays hot, nothing is re-read per batch, and
// a single-shard plan is exactly the Replica path — same restore, same
// forward, bit-identical classes.

// DefaultShardOverheadBytes is the EPC working set a parked shard
// enclave keeps resident (code, stack, sealing buffers). It is far
// smaller than a training enclave's overhead: a shard runs only a
// forward pass over a layer range.
const DefaultShardOverheadBytes = 1 << 20

// ShardGroup errors.
var (
	ErrShardGroupClosed = errors.New("core: shard group is closed")
	ErrShardBatch       = errors.New("core: batch exceeds the shard plan's micro-batch size")
)

// Handoff is the seam between adjacent pipeline stages that the
// multi-host serving fabric (internal/fleet) plugs into: when two
// stages of one pipeline live on different hosts, the sealed
// activations crossing between them travel an attested inter-host
// channel instead of a same-machine buffer pass. Bind is called once
// per adjacent (from, to) stage pair while the group is built — the
// implementation attests both endpoint enclaves and provisions the
// channel there — and Carry once per micro-batch crossing that
// boundary, with the sealed activation payload. A Carry error fails
// the batch (it still rides the pipeline to completion, like any
// stage error).
type Handoff interface {
	Bind(from, to int, src, dst *enclave.Enclave) error
	Carry(from, to int, sealed []byte) error
}

// ShardOptions parameterises NewShardGroup.
type ShardOptions struct {
	// Shards, when > 0, asks the planner for at most this many
	// contiguous layer-range shards. Zero lets MaxShardBytes (or the
	// host headroom) drive the split.
	Shards int
	// MaxShardBytes bounds one shard's hot working set (parameters +
	// activation buffers). Zero derives a bound from the serving
	// host's EPC headroom so a pipeline window of a few hot shards
	// stays under the paging knee.
	MaxShardBytes int
	// Batch is the micro-batch size the plan reserves activation
	// buffers for; ClassifyBatch rejects larger batches. Zero uses the
	// model's configured batch size.
	Batch int
	// Host places the shard enclaves; nil uses the framework's host.
	Host *enclave.Host
	// OverheadBytes is the parked per-shard-enclave working set
	// (default DefaultShardOverheadBytes).
	OverheadBytes int
	// Seed differentiates the shard enclaves' RNGs.
	Seed int64
	// DisablePrefetch turns off double-buffered restores: in streaming
	// mode, parked shards then re-restore their range only on the
	// compute path (a pipeline stall per batch per shard), the pre-
	// prefetch behaviour. For benchmarking the prefetch win; leave
	// false in production.
	DisablePrefetch bool
	// Metrics is the registry the group's per-shard counters register
	// into (shard_restores_total{shard=...} and friends). Nil gives the
	// group a private registry, so concurrently built groups — every
	// test — never share series; the serving layer passes its server
	// registry so shard series surface on /metrics.
	Metrics *obs.Registry
	// Plan, when non-empty, is an explicit contiguous layer-range cover
	// to shard by, bypassing the planner (the fleet placement planner
	// hands groups their bin-packed ranges). It must cover every layer
	// exactly once, in order.
	Plan []darknet.ShardRange
	// Hosts, when non-empty, places shard i's enclave on Hosts[i] — the
	// multi-host pipeline. Its length must equal the plan's; nil
	// entries fall back to Host. Residency is then judged per host:
	// each host's EPC budget covers only the shards placed on it.
	Hosts []*enclave.Host
	// Handoff, when non-nil, carries sealed activations between
	// adjacent stages (see the Handoff interface).
	Handoff Handoff
	// Labels is appended to every per-shard metric series. The fleet
	// layer labels each replica group (group=g) so groups sharing one
	// registry keep distinct series.
	Labels []obs.Label
}

// shard is one pipeline stage: an enclave owning one contiguous layer
// range of the model.
type shard struct {
	idx  int
	encl *enclave.Enclave
	eng  *engine.Engine
	net  *darknet.Network
	rng  darknet.ShardRange

	// nodeFrom is the index of the shard's first layer node in the
	// persistent snapshot (what MirrorInRange restores from).
	nodeFrom int
	// footprint is the hot working set: parameters + activations.
	footprint int
	model     *mirror.Model

	// mu guards the residency state below: the compute path and the
	// background prefetcher both drive restores.
	mu  sync.Mutex
	hot bool
	// restoring is non-nil while a restore is in flight; it is closed
	// when the restore finishes. Waiters re-check hot afterwards: a
	// failed restore leaves hot false and the waiter retries the
	// restore itself, so failures propagate through the retry, not
	// through shared error state.
	restoring chan struct{}

	// Per-shard pipeline counters in the group's registry.
	mRestores      *obs.Counter
	mStalls        *obs.Counter
	mPrefetchWaits *obs.Counter
	mPrefetched    *obs.Counter

	// Pre-built span stage names ("restore/3", ...), so the traced hot
	// path does no string building.
	spanWait, spanRestore, spanOpen, spanCompute, spanSeal string
}

// shardJob is one micro-batch travelling the pipeline.
type shardJob struct {
	n       int
	plain   []float32 // stage-0 input (caller-owned, valid until done)
	sealed  []byte    // sealed activations between stages
	classes []int
	err     error
	done    chan *shardJob

	// tr, when non-nil, accumulates per-stage spans for the request(s)
	// riding this batch; handoff is stamped at every stage boundary so
	// inter-stage queueing shows up as wait/<k> spans.
	tr      *obs.Trace
	handoff time.Time
}

// ShardGroup is a pipelined pool of shard enclaves serving one model.
// ClassifyBatch is safe for concurrent use; concurrent batches pipeline
// through the stages.
type ShardGroup struct {
	f         *Framework
	host      *enclave.Host
	batch     int
	inputSize int
	overhead  int
	streaming bool
	window    int
	shards    []*shard
	stages    []chan *shardJob
	slots     chan struct{} // in-flight window tokens
	wg        sync.WaitGroup

	submitMu sync.Mutex // serializes intake; held across quiesce for control ops
	closed   bool

	mu      sync.Mutex // guards version, iter, pin
	pin     *mirror.Pin
	version uint64
	iter    int

	// reg holds the group's per-shard restore/stall/prefetch counters
	// (see ShardOptions.Metrics); the compute path and the prefetcher
	// both bump them, and the accessors sum across shards.
	reg *obs.Registry

	// handoff, when non-nil, carries sealed activations across stage
	// boundaries (ShardOptions.Handoff — the fleet's attested
	// inter-host channels).
	handoff Handoff

	// Double-buffered restore: while shard k computes a batch, a
	// background goroutine prefetches shard k+1's range so the batch
	// does not stall on the restore when it arrives. The prefetcher is
	// headroom-gated — it reserves the range only when the host has
	// spare usable EPC, so the residency bound (window hot shards) is
	// never exceeded and the zero-fault regime is preserved.
	noPrefetch  bool
	prefetchMu  sync.Mutex // guards prefetchOff and WaitGroup adds
	prefetchOff bool       // true while quiesced or closed
	prefetchWG  sync.WaitGroup
}

// NewShardGroup splits the framework's model into contiguous layer
// ranges and builds one shard enclave per range on opts.Host (the
// framework's host by default): each shard is attested and provisioned
// with the data key over its own channel, and restores only its range
// from the latest published snapshot (publishing the current model
// first if nothing is published). The plan's layer ranges are recorded
// as a shard manifest alongside the publication slots, durably; auto
// planning reads it back, so a group re-created after a crash restores
// the same split.
func (f *Framework) NewShardGroup(opts ShardOptions) (*ShardGroup, error) {
	if f.Crashed() {
		return nil, ErrCrashedDown
	}
	latest, err := f.LatestPublished()
	if err != nil {
		return nil, err
	}
	if latest == 0 {
		if _, err := f.Publish(); err != nil {
			return nil, err
		}
	}
	host := opts.Host
	if host == nil {
		host = f.Host
	}
	overhead := opts.OverheadBytes
	if overhead <= 0 {
		overhead = DefaultShardOverheadBytes
	}
	batch := opts.Batch
	if batch <= 0 {
		f.modelMu.Lock()
		if f.Net != nil {
			batch = f.Net.Config.Batch
		}
		f.modelMu.Unlock()
	}
	if batch <= 0 {
		batch = 1
	}

	// One parsed copy serves every shard: the ranges are disjoint, so
	// each shard's layers (and their buffers) are private to its
	// enclave.
	full, err := darknet.ParseConfig(strings.NewReader(f.cfg.ModelConfig),
		mrand.New(mrand.NewSource(opts.Seed)))
	if err != nil {
		return nil, fmt.Errorf("core: shard model config: %w", err)
	}
	plan, err := f.planShards(full, opts, batch, host.Headroom())
	if err != nil {
		return nil, err
	}
	hosts := make([]*enclave.Host, len(plan))
	for i := range hosts {
		hosts[i] = host
	}
	if len(opts.Hosts) > 0 {
		if len(opts.Hosts) != len(plan) {
			return nil, fmt.Errorf("core: shard hosts: %d hosts for a %d-shard plan", len(opts.Hosts), len(plan))
		}
		for i, h := range opts.Hosts {
			if h != nil {
				hosts[i] = h
			}
		}
	}
	// Snapshot each distinct host's headroom before any shard enclave
	// reserves against it: the residency decision below compares the
	// plan against what the hosts had to offer.
	headrooms := make(map[*enclave.Host]int)
	for _, h := range hosts {
		if _, ok := headrooms[h]; !ok {
			headrooms[h] = h.Headroom()
		}
	}

	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	g := &ShardGroup{
		f:          f,
		host:       host,
		batch:      batch,
		inputSize:  full.InputSize(),
		overhead:   overhead,
		noPrefetch: opts.DisablePrefetch,
		reg:        reg,
		handoff:    opts.Handoff,
	}
	fail := func(err error) (*ShardGroup, error) {
		for _, s := range g.shards {
			_ = s.encl.Close()
		}
		return nil, err
	}
	for i, r := range plan {
		encl := hosts[i].NewEnclave(enclave.WithSeed(opts.Seed+int64(i)+1), enclave.WithName("shard"))
		k := strconv.Itoa(i)
		labels := append([]obs.Label{{Key: "shard", Value: k}}, opts.Labels...)
		g.shards = append(g.shards, &shard{ // tracked for cleanup
			idx:            i,
			encl:           encl,
			mRestores:      reg.Counter("shard_restores_total", "Layer-range restores from PM, by shard.", labels...),
			mStalls:        reg.Counter("shard_stage_stall_total", "Batches that paid a full range restore on the compute path, by shard.", labels...),
			mPrefetchWaits: reg.Counter("shard_prefetch_waits_total", "Batches that waited out the remainder of an in-flight prefetch, by shard.", labels...),
			mPrefetched:    reg.Counter("shard_prefetched_restores_total", "Restores completed by the background prefetcher, by shard.", labels...),
			spanWait:       "wait/" + k,
			spanRestore:    "restore/" + k,
			spanOpen:       "open/" + k,
			spanCompute:    "compute/" + k,
			spanSeal:       "seal/" + k,
		})
		key, err := f.provisionReplicaKey(encl)
		if err != nil {
			return fail(fmt.Errorf("core: shard %d: %w", i, err))
		}
		eng, err := engine.New(key, engine.WithEnclave(encl))
		if err != nil {
			return fail(fmt.Errorf("core: shard %d engine: %w", i, err))
		}
		sub, err := full.Shard(r)
		if err != nil {
			return fail(fmt.Errorf("core: shard %d: %w", i, err))
		}
		footprint, err := full.ShardFootprint(r, batch)
		if err != nil {
			return fail(fmt.Errorf("core: shard %d: %w", i, err))
		}
		if err := encl.Ecall(func() error { return encl.Reserve(overhead) }); err != nil {
			return fail(fmt.Errorf("core: shard %d reserve: %w", i, err))
		}
		s := g.shards[i]
		s.eng, s.net, s.rng = eng, sub, r
		s.nodeFrom = full.ParamLayersBefore(r.From)
		s.footprint = footprint
	}

	// Bind the hand-off seam once per adjacent stage pair, with the
	// enclaves built: a fleet hand-off attests both endpoints and
	// provisions each cross-host channel here, before any batch flows.
	if g.handoff != nil {
		for i := 0; i+1 < len(g.shards); i++ {
			if err := g.handoff.Bind(i, i+1, g.shards[i].encl, g.shards[i+1].encl); err != nil {
				return fail(fmt.Errorf("core: shard hand-off %d->%d: %w", i, i+1, err))
			}
		}
	}

	// Residency mode, judged per host: the whole plan resident when
	// every host can hold its placed shards within what it had to
	// offer, else stream ranges from PM with a pipeline window sized so
	// each host's hot set stays within its budget (the window is the
	// most constrained host's). With double-buffered restore each
	// in-flight batch may transiently hold TWO ranges — its stage hot
	// while the next stage prefetches — so the window halves and the
	// freed budget pays for the overlap; that keeps the residency bound
	// exact (window x per-batch demand <= budget) and the zero-fault
	// regime intact. A window of at least 1 always serves — an
	// oversized single shard overcommits its host while hot and pays
	// (bounded) pressure, mirroring the one-replica floor of
	// WorkersAuto. A single-host plan reduces to the pre-fleet
	// arithmetic exactly.
	type hostDemand struct{ total, maxFP, count int }
	demand := make(map[*enclave.Host]*hostDemand)
	for i, s := range g.shards {
		d := demand[hosts[i]]
		if d == nil {
			d = &hostDemand{}
			demand[hosts[i]] = d
		}
		d.total += s.footprint
		d.count++
		if s.footprint > d.maxFP {
			d.maxFP = s.footprint
		}
	}
	g.window = len(plan)
	for h, d := range demand {
		budget := headrooms[h] - overhead*d.count
		if d.total <= budget {
			continue
		}
		g.streaming = true
		perBatch := d.maxFP
		if !g.noPrefetch {
			perBatch = 2 * d.maxFP
		}
		w := 0
		if perBatch > 0 {
			w = budget / perBatch
		}
		if w < 1 {
			w = 1
		}
		if w < g.window {
			g.window = w
		}
	}
	g.slots = make(chan struct{}, g.window)

	// Pin the served version, open each shard's snapshot handle, and
	// record the manifest.
	pin, err := f.PinPublished(0)
	if err != nil {
		return fail(fmt.Errorf("core: shard pin: %w", err))
	}
	models, iter, err := g.openModels(pin)
	if err != nil {
		pin.Release()
		return fail(fmt.Errorf("core: shard snapshot: %w", err))
	}
	for i, s := range g.shards {
		s.model = models[i]
	}
	g.pin, g.version, g.iter = pin, pin.Version(), iter
	if err := f.recordShardManifest(g.manifest()); err != nil {
		pin.Release()
		return fail(fmt.Errorf("core: shard manifest: %w", err))
	}
	if !g.streaming {
		for _, s := range g.shards {
			if err := g.ensureHot(s); err != nil {
				pin.Release()
				return fail(fmt.Errorf("core: shard %d restore: %w", s.idx, err))
			}
		}
	}

	g.stages = make([]chan *shardJob, len(g.shards))
	for i := range g.stages {
		g.stages[i] = make(chan *shardJob, 1)
	}
	g.wg.Add(len(g.shards))
	for _, s := range g.shards {
		go g.run(s)
	}
	return g, nil
}

// planShards picks the contiguous layer-range plan for the options.
// Explicit options (a shard count or a byte bound) always replan; auto
// planning first honours a shard manifest persisted by a previous
// group, so a group re-created after a crash or restart restores
// exactly the split whose manifest is on record.
func (f *Framework) planShards(full *darknet.Network, opts ShardOptions, batch, headroom int) ([]darknet.ShardRange, error) {
	switch {
	case len(opts.Plan) > 0:
		if err := validateShardPlan(opts.Plan, len(full.Layers)); err != nil {
			return nil, err
		}
		return opts.Plan, nil
	case opts.MaxShardBytes > 0:
		return full.PlanShards(opts.MaxShardBytes, batch)
	case opts.Shards > 0:
		return full.PlanShardCount(opts.Shards, batch)
	default:
		if plan := f.persistedShardPlan(len(full.Layers)); plan != nil {
			return plan, nil
		}
		// Headroom-driven: aim for a pipeline window of a few hot
		// shards inside the budget. A host with no headroom still gets
		// a best-effort per-layer split (bound 1 packs one layer per
		// shard), the finest granularity available.
		bound := headroom / 4
		if bound < 1 {
			bound = 1
		}
		return full.PlanShards(bound, batch)
	}
}

// validateShardPlan checks an explicit plan is an in-order contiguous
// cover of the model's layers — anything else would drop or duplicate
// a layer range.
func validateShardPlan(plan []darknet.ShardRange, numLayers int) error {
	next := 0
	for _, r := range plan {
		if r.From != next || r.To <= r.From || r.To > numLayers {
			return fmt.Errorf("core: explicit shard plan %v is not a contiguous cover of %d layers", plan, numLayers)
		}
		next = r.To
	}
	if next != numLayers {
		return fmt.Errorf("core: explicit shard plan %v is not a contiguous cover of %d layers", plan, numLayers)
	}
	return nil
}

// persistedShardPlan reads the shard manifest back as a plan, nil when
// none is recorded or the recorded split no longer matches the model
// (not a contiguous cover of its layers) — a shape change or a corrupt
// table simply replans and re-records.
func (f *Framework) persistedShardPlan(numLayers int) []darknet.ShardRange {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return nil
	}
	entries, err := f.pub.ShardManifest()
	if err != nil || len(entries) == 0 {
		return nil
	}
	plan := make([]darknet.ShardRange, len(entries))
	next := 0
	for i, e := range entries {
		if e.From != next || e.To <= e.From || e.To > numLayers {
			return nil
		}
		plan[i] = darknet.ShardRange{From: e.From, To: e.To}
		next = e.To
	}
	if next != numLayers {
		return nil
	}
	return plan
}

// manifest returns the plan's layer ranges.
func (g *ShardGroup) manifest() []mirror.ShardManifestEntry {
	entries := make([]mirror.ShardManifestEntry, len(g.shards))
	for i, s := range g.shards {
		entries[i] = mirror.ShardManifestEntry{From: s.rng.From, To: s.rng.To}
	}
	return entries
}

// recordShardManifest persists the shard plan alongside the
// publication slots, skipping the write when the recorded plan already
// matches.
func (f *Framework) recordShardManifest(entries []mirror.ShardManifestEntry) error {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return err
	}
	cur, err := f.pub.ShardManifest()
	if err == nil && len(cur) == len(entries) {
		same := true
		for i := range cur {
			if cur[i] != entries[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	return f.pub.RecordShardManifest(entries)
}

// openModels opens one handle per shard on the pinned snapshot and
// returns them with the snapshot's iteration. The handles are NOT
// installed on the shards — callers swap them in only once every
// fallible step of their control operation has succeeded, so a failed
// Refresh/Rotate never leaves a shard reading an unpinned slot.
func (g *ShardGroup) openModels(pin *mirror.Pin) ([]*mirror.Model, int, error) {
	g.f.pmMu.Lock()
	defer g.f.pmMu.Unlock()
	models := make([]*mirror.Model, len(g.shards))
	for i, s := range g.shards {
		m, err := pin.Open(s.eng, mirror.WithEnclave(s.encl))
		if err != nil {
			return nil, 0, err
		}
		models[i] = m
	}
	iter, err := models[0].Iteration()
	if err != nil {
		return nil, 0, err
	}
	return models, iter, nil
}

// restoreShard restores one shard's layer range from the given
// snapshot handle inside its enclave.
func (g *ShardGroup) restoreShard(s *shard, m *mirror.Model) error {
	return s.encl.Ecall(func() error {
		g.f.pmMu.Lock()
		defer g.f.pmMu.Unlock()
		_, err := m.MirrorInRange(s.net, s.nodeFrom)
		return err
	})
}

// restoreRange brings a parked shard's parameters into its enclave:
// reserve the range on the host (unless the caller already did) and
// restore it from the pinned snapshot. Free while the host is under
// the knee: the restore is a sealed PM read plus in-enclave decrypt.
// Callers must hold the shard's restoring slot (see ensureHot /
// tryPrefetch); s.mu must NOT be held.
func (g *ShardGroup) restoreRange(s *shard, reserved bool) error {
	if !reserved {
		if err := s.encl.Reserve(s.footprint); err != nil {
			return err
		}
	}
	g.f.pmMu.Lock()
	_, err := s.model.MirrorInRange(s.net, s.nodeFrom)
	g.f.pmMu.Unlock()
	if err != nil {
		_ = s.encl.Free(s.footprint)
		return err
	}
	s.mRestores.Inc()
	return nil
}

// finishRestore publishes a restore's outcome and wakes waiters.
func (s *shard) finishRestore(err error) {
	s.mu.Lock()
	if err == nil {
		s.hot = true
	}
	ch := s.restoring
	s.restoring = nil
	s.mu.Unlock()
	close(ch)
}

// ensureHot makes the shard's range resident for the compute path,
// waiting on an in-flight prefetch or — when none is running — doing
// the restore synchronously. A synchronous restore puts the full
// restore latency on the critical path (a pipeline stall, counted in
// Stalls); waiting out a prefetch costs only the restore's unfinished
// remainder (counted in PrefetchWaits).
func (g *ShardGroup) ensureHot(s *shard) error {
	waited := false
	s.mu.Lock()
	for {
		if s.hot {
			s.mu.Unlock()
			return nil
		}
		ch := s.restoring
		if ch == nil {
			break
		}
		if !waited {
			waited = true
			s.mPrefetchWaits.Inc()
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
		// Loop: on success hot is set; on failure we retry the restore
		// ourselves below.
	}
	s.restoring = make(chan struct{})
	s.mu.Unlock()
	if !waited && g.streaming {
		s.mStalls.Inc()
	}
	err := g.restoreRange(s, false)
	s.finishRestore(err)
	return err
}

// tryPrefetch starts a background restore of a parked shard so the
// batch now computing one stage upstream does not stall on it. The
// prefetch reserves the range up front and only when the host has
// headroom for it — residency bounds hold, and a host already at its
// budget simply skips the prefetch (the compute path restores as
// before).
func (g *ShardGroup) tryPrefetch(s *shard) {
	if g.noPrefetch || !g.streaming {
		return
	}
	g.prefetchMu.Lock()
	if g.prefetchOff {
		g.prefetchMu.Unlock()
		return
	}
	s.mu.Lock()
	if s.hot || s.restoring != nil {
		s.mu.Unlock()
		g.prefetchMu.Unlock()
		return
	}
	// Charge the prefetch against the shard's own host headroom
	// atomically with the decision: Reserve here, before the restore
	// goroutine runs, so concurrent prefetchers cannot double-claim
	// the same budget. (The shard's host, not the group's primary —
	// a multi-host pipeline gates each prefetch on the machine that
	// would hold the range.)
	if s.encl.Host().Headroom() < s.footprint || s.encl.Reserve(s.footprint) != nil {
		s.mu.Unlock()
		g.prefetchMu.Unlock()
		return
	}
	s.restoring = make(chan struct{})
	s.mu.Unlock()
	g.prefetchWG.Add(1)
	g.prefetchMu.Unlock()
	go func() {
		defer g.prefetchWG.Done()
		err := s.encl.Ecall(func() error { return g.restoreRange(s, true) })
		if err == nil {
			s.mPrefetched.Inc()
		} else if errors.Is(err, enclave.ErrHostDown) {
			// The Ecall was refused at the boundary, so restoreRange
			// never ran and never freed the budget reserved above.
			// Return it here or a killed-then-rejoined host would leak
			// the phantom reservation forever.
			_ = s.encl.Free(s.footprint)
		}
		s.finishRestore(err)
	}()
}

// park returns the shard's range to the host budget; the parameters
// must be re-restored from PM before the next batch.
func (g *ShardGroup) park(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hot {
		return
	}
	_ = s.encl.Free(s.footprint)
	s.hot = false
}

// parkSettled waits out any in-flight restore on s, then parks it —
// the errored-job cleanup, where no batch is left to consume (and
// later park) a range that may have been prefetched for the job.
func (g *ShardGroup) parkSettled(s *shard) {
	for {
		s.mu.Lock()
		ch := s.restoring
		if ch == nil {
			if s.hot {
				_ = s.encl.Free(s.footprint)
				s.hot = false
			}
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		<-ch
	}
}

// run is one shard's stage loop: restore the range if parked, open the
// incoming sealed activations (or stage the batch images at stage 0),
// forward through the range, seal the result for the next shard — or
// classify at the last — then park in streaming mode so the next stage
// window fits the budget. Errors skip processing but ride the job to
// completion so ordering and delivery hold.
//
// Double-buffering: the moment a job lands on this stage, the next
// stage's range starts restoring in the background, so by the time the
// job has been computed and sealed the downstream shard is (ideally)
// already hot — restore overlaps compute instead of stalling the
// pipeline between every pair of stages.
func (g *ShardGroup) run(s *shard) {
	defer g.wg.Done()
	// Label the stage goroutine so CPU profiles attribute shard compute
	// to its pipeline stage.
	pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(s.idx)), func(context.Context) {
		g.runStage(s)
	})
}

// runStage is run's stage loop body.
func (g *ShardGroup) runStage(s *shard) {
	last := s.idx == len(g.shards)-1
	if !last {
		defer close(g.stages[s.idx+1])
	}
	for job := range g.stages[s.idx] {
		job.tr.Add(s.spanWait, time.Since(job.handoff))
		if job.err == nil {
			job.err = g.process(s, job, last)
			// The sealed activations leave this stage: on a multi-host
			// pipeline they cross the fleet's attested inter-host
			// channel before the downstream stage can open them.
			if job.err == nil && !last && g.handoff != nil {
				if err := g.handoff.Carry(s.idx, s.idx+1, job.sealed); err != nil {
					job.err = fmt.Errorf("core: shard %d->%d hand-off: %w", s.idx, s.idx+1, err)
				}
			}
		} else if g.streaming {
			// The job errored upstream, possibly after prefetching this
			// stage on its behalf; nothing will process (and park) here,
			// so return any prefetched range to the budget instead of
			// leaking it hot against the host headroom. Waits out an
			// in-flight prefetch first — parking mid-restore would
			// no-op and orphan the reservation when the restore lands.
			g.parkSettled(s)
		}
		job.handoff = time.Now()
		if last {
			job.done <- job
		} else {
			g.stages[s.idx+1] <- job
		}
	}
}

// process runs one micro-batch through one shard inside its enclave,
// recording per-stage spans (restore, open, compute, seal) on the
// job's trace so slow requests attribute their time.
func (g *ShardGroup) process(s *shard, job *shardJob, last bool) error {
	return s.encl.Ecall(func() error {
		restoreStart := time.Now()
		if err := g.ensureHot(s); err != nil {
			return fmt.Errorf("core: shard %d restore: %w", s.idx, err)
		}
		job.tr.Add(s.spanRestore, time.Since(restoreStart))
		if g.streaming {
			defer g.park(s)
		}
		// Double-buffer: with this stage hot (its reservation charged,
		// so the headroom gate sees the true residual budget), start
		// restoring the next stage's range in the background — the
		// restore overlaps this stage's compute instead of stalling the
		// batch when it arrives downstream.
		if !last {
			g.tryPrefetch(g.shards[s.idx+1])
		}
		var in []float32
		if s.idx == 0 {
			s.encl.Touch(4 * len(job.plain))
			in = job.plain
		} else {
			openStart := time.Now()
			s.encl.CopyAcross(len(job.sealed))
			var err error
			in, err = s.eng.OpenFloats(job.sealed)
			job.tr.Add(s.spanOpen, time.Since(openStart))
			if err != nil {
				return fmt.Errorf("core: shard %d activations: %w", s.idx, err)
			}
			job.sealed = nil
		}
		computeStart := time.Now()
		if last {
			classes, err := s.net.ClassifyBatch(in, job.n)
			job.tr.Add(s.spanCompute, time.Since(computeStart))
			if err != nil {
				return fmt.Errorf("core: shard %d: %w", s.idx, err)
			}
			job.classes = classes
			return nil
		}
		out, err := s.net.Forward(in, job.n, false)
		job.tr.Add(s.spanCompute, time.Since(computeStart))
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", s.idx, err)
		}
		sealStart := time.Now()
		sealed, err := s.eng.SealFloats(out)
		job.tr.Add(s.spanSeal, time.Since(sealStart))
		if err != nil {
			return fmt.Errorf("core: shard %d seal: %w", s.idx, err)
		}
		job.sealed = sealed
		return nil
	})
}

// ClassifyBatch pipelines the images (laid out contiguously, at most
// the plan's micro-batch size) through the shard stages and returns
// one class per image. Safe for concurrent use; concurrent calls keep
// the pipeline full, up to the residency window. The images slice must
// stay unmodified until the call returns.
func (g *ShardGroup) ClassifyBatch(images []float32) ([]int, error) {
	return g.ClassifyBatchCtx(context.Background(), images)
}

// ClassifyBatchCtx is ClassifyBatch with a context: when ctx carries an
// obs.Trace the batch records per-stage spans (window admission wait,
// then wait/restore/open/compute/seal per shard) onto it. The context
// does not cancel an admitted batch — every accepted job rides the
// pipeline to completion so ordering and delivery hold.
func (g *ShardGroup) ClassifyBatchCtx(ctx context.Context, images []float32) ([]int, error) {
	if len(images) == 0 || len(images)%g.inputSize != 0 {
		return nil, fmt.Errorf("core: shard classify: %d floats is not a positive multiple of the %d-float input", len(images), g.inputSize)
	}
	n := len(images) / g.inputSize
	if n > g.batch {
		return nil, fmt.Errorf("%w: %d > %d", ErrShardBatch, n, g.batch)
	}
	job := &shardJob{n: n, plain: images, tr: obs.TraceFrom(ctx), done: make(chan *shardJob, 1)}
	admit := time.Now()
	g.submitMu.Lock()
	if g.closed {
		g.submitMu.Unlock()
		return nil, ErrShardGroupClosed
	}
	g.slots <- struct{}{}
	job.tr.Add("window", time.Since(admit))
	job.handoff = time.Now()
	g.stages[0] <- job
	g.submitMu.Unlock()
	<-job.done
	<-g.slots
	if job.err != nil {
		return nil, job.err
	}
	return job.classes, nil
}

// quiesce waits until no batch is in flight by claiming every window
// token, then pauses the prefetcher and waits out any in-flight
// background restore — control operations must not race a prefetch
// reading the snapshot handles they are about to swap. Callers hold
// submitMu, so no new batch (and hence no new prefetch) can slip in.
func (g *ShardGroup) quiesce() {
	for i := 0; i < g.window; i++ {
		g.slots <- struct{}{}
	}
	g.prefetchMu.Lock()
	g.prefetchOff = true
	g.prefetchMu.Unlock()
	g.prefetchWG.Wait()
}

func (g *ShardGroup) resume() {
	g.prefetchMu.Lock()
	g.prefetchOff = false
	g.prefetchMu.Unlock()
	for i := 0; i < g.window; i++ {
		<-g.slots
	}
}

// Refresh rolls the group to the latest published version: the
// pipeline is quiesced (queued callers wait, none fail), every shard
// re-pins and — in resident mode — restores its range, and the old pin
// is released. Unlike a replica pool, the shards of one model must
// change version together: a half-refreshed pipeline would mix weights
// from two versions inside one forward pass.
func (g *ShardGroup) Refresh() (int, error) {
	g.submitMu.Lock()
	defer g.submitMu.Unlock()
	if g.closed {
		return 0, ErrShardGroupClosed
	}
	g.quiesce()
	defer g.resume()
	return g.refreshLocked()
}

// refreshLocked does the re-pin + restore with the pipeline quiesced.
// Fallible steps are staged: the new snapshot handles are installed —
// and the old pin released — only after everything has succeeded, so a
// failed refresh leaves the group serving the old version coherently,
// never reading an unpinned slot. A partial resident-mode restore is
// rolled back from the still-pinned old snapshot.
func (g *ShardGroup) refreshLocked() (int, error) {
	pin, err := g.f.PinPublished(0)
	if err != nil {
		return 0, err
	}
	models, iter, err := g.openModels(pin)
	if err != nil {
		pin.Release()
		return 0, err
	}
	if err := g.f.recordShardManifest(g.manifest()); err != nil {
		pin.Release()
		return 0, err
	}
	if g.streaming {
		// Parked ranges restore lazily from the new pin; drop anything
		// still hot so no stale range survives the version flip.
		for _, s := range g.shards {
			g.park(s)
		}
	} else {
		for i, s := range g.shards {
			if err := g.restoreShard(s, models[i]); err != nil {
				// Roll the already-restored shards back to the old
				// (still pinned) snapshot so no forward pass can ever
				// mix weights from two versions.
				var rollbackErr error
				for j := 0; j < i; j++ {
					if rerr := g.restoreShard(g.shards[j], g.shards[j].model); rerr != nil && rollbackErr == nil {
						rollbackErr = rerr
					}
				}
				pin.Release()
				if rollbackErr != nil {
					return 0, fmt.Errorf("%w (rollback to the served version also failed: %v)", err, rollbackErr)
				}
				return 0, err
			}
		}
	}
	for i, s := range g.shards {
		s.model = models[i]
	}
	g.mu.Lock()
	old := g.pin
	g.pin, g.version, g.iter = pin, pin.Version(), iter
	g.mu.Unlock()
	if old != nil {
		old.Release()
	}
	return iter, nil
}

// Rotate re-provisions the framework's current data key into every
// shard enclave over fresh attestation channels, rebuilds the engines,
// and refreshes to the latest published snapshot (which a preceding
// Framework.RotateKey published under the new key).
func (g *ShardGroup) Rotate() (int, error) {
	g.submitMu.Lock()
	defer g.submitMu.Unlock()
	if g.closed {
		return 0, ErrShardGroupClosed
	}
	g.quiesce()
	defer g.resume()
	// Stage the new-key engines and install them only once every shard
	// has provisioned: the stages of one pipeline must always share a
	// key, or the sealed activation hand-off between them breaks. A
	// mid-loop provisioning failure therefore leaves the group serving
	// coherently under the old key.
	engs := make([]*engine.Engine, len(g.shards))
	for i, s := range g.shards {
		key, err := g.f.provisionReplicaKey(s.encl)
		if err != nil {
			return 0, fmt.Errorf("core: shard %d rotate: %w", s.idx, err)
		}
		engs[i], err = engine.New(key, engine.WithEnclave(s.encl))
		if err != nil {
			return 0, fmt.Errorf("core: shard %d rotate engine: %w", s.idx, err)
		}
	}
	for i, s := range g.shards {
		s.eng = engs[i]
	}
	return g.refreshLocked()
}

// Close quiesces the pipeline (every accepted batch is answered),
// stops the stage goroutines and tears down the shard enclaves,
// returning their entire footprint to the host.
func (g *ShardGroup) Close() error {
	g.submitMu.Lock()
	defer g.submitMu.Unlock()
	if g.closed {
		return ErrShardGroupClosed
	}
	g.quiesce()
	g.closed = true
	close(g.stages[0])
	g.wg.Wait()
	var firstErr error
	for _, s := range g.shards {
		if err := s.encl.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	g.mu.Lock()
	pin := g.pin
	g.pin = nil
	g.mu.Unlock()
	if pin != nil {
		pin.Release()
	}
	return firstErr
}

// Shards returns the number of pipeline stages.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Window returns how many batches may be in flight at once — in
// streaming mode, the number of hot shards the EPC budget admits.
func (g *ShardGroup) Window() int { return g.window }

// Streaming reports whether the group streams parked ranges from PM
// per batch (true when the whole plan does not fit the host headroom).
func (g *ShardGroup) Streaming() bool { return g.streaming }

// Plan returns a copy of the layer ranges, one per shard.
func (g *ShardGroup) Plan() []darknet.ShardRange {
	plan := make([]darknet.ShardRange, len(g.shards))
	for i, s := range g.shards {
		plan[i] = s.rng
	}
	return plan
}

// InputSize returns the flattened per-image input size.
func (g *ShardGroup) InputSize() int { return g.inputSize }

// Batch returns the plan's micro-batch bound.
func (g *ShardGroup) Batch() int { return g.batch }

// Version returns the published model version the group serves.
func (g *ShardGroup) Version() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

// Iteration returns the training iteration of the served snapshot.
func (g *ShardGroup) Iteration() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.iter
}

// sumShardCounter totals one per-shard counter across the group.
func (g *ShardGroup) sumShardCounter(pick func(*shard) *obs.Counter) uint64 {
	var total float64
	for _, s := range g.shards {
		total += pick(s).Value()
	}
	return uint64(total)
}

// Restores counts range restores from PM — in streaming mode, the
// price paid per batch per parked shard instead of the paging knee.
func (g *ShardGroup) Restores() uint64 {
	return g.sumShardCounter(func(s *shard) *obs.Counter { return s.mRestores })
}

// Stalls counts pipeline stalls: batches that arrived at a parked
// stage with no restore in flight and paid the full range restore on
// the compute path. With double-buffered restore most batches find
// their stage hot or mid-restore, so this stays near the per-batch
// stage-0 floor; with DisablePrefetch it approaches batches x shards.
func (g *ShardGroup) Stalls() uint64 {
	return g.sumShardCounter(func(s *shard) *obs.Counter { return s.mStalls })
}

// PrefetchWaits counts batches that arrived while their stage's
// prefetch was still in flight and paid only the unfinished remainder
// of the restore.
func (g *ShardGroup) PrefetchWaits() uint64 {
	return g.sumShardCounter(func(s *shard) *obs.Counter { return s.mPrefetchWaits })
}

// PrefetchedRestores counts range restores completed by the
// background prefetcher — restore work overlapped with compute instead
// of stalling the pipeline.
func (g *ShardGroup) PrefetchedRestores() uint64 {
	return g.sumShardCounter(func(s *shard) *obs.Counter { return s.mPrefetched })
}

// Metrics returns the registry holding the group's per-shard counters.
func (g *ShardGroup) Metrics() *obs.Registry { return g.reg }

// ModelConfigText returns the framework's Darknet .cfg text — what the
// fleet placement planner parses to compute shard footprints without
// touching the enclave model.
func (f *Framework) ModelConfigText() string { return f.cfg.ModelConfig }

// PersistedShardPlan returns the durably recorded shard split when it
// is a contiguous cover of a numLayers-layer model, nil otherwise —
// the exported read the fleet layer uses to restore a recorded
// placement.
func (f *Framework) PersistedShardPlan(numLayers int) []darknet.ShardRange {
	return f.persistedShardPlan(numLayers)
}

// RecordPlacement persists a fleet placement manifest alongside the
// publication slots and shard manifest, skipping the write when the
// recorded placement already matches.
func (f *Framework) RecordPlacement(entries []mirror.PlacementEntry) error {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return err
	}
	cur, err := f.pub.Placement()
	if err == nil && len(cur) == len(entries) {
		same := true
		for i := range cur {
			if cur[i] != entries[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	return f.pub.RecordPlacement(entries)
}

// PersistedPlacement reads the fleet placement manifest back, nil when
// none has been recorded.
func (f *Framework) PersistedPlacement() ([]mirror.PlacementEntry, error) {
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if err := f.attachPublication(); err != nil {
		return nil, err
	}
	return f.pub.Placement()
}
