package core

import (
	"testing"

	"plinius/internal/enclave"
	"plinius/internal/mnist"
)

// TestNewReplicaOnChargesTargetHost: the train-here-serve-there shape.
// A replica built with NewReplicaOn must charge its footprint to the
// host it serves on — not the framework's training host — and return
// exactly that footprint to the same host on Close.
func TestNewReplicaOnChargesTargetHost(t *testing.T) {
	cases := []struct {
		name string
		// serveElsewhere builds the replica on a dedicated serving host
		// when true; on the framework's own host when false.
		serveElsewhere bool
	}{
		{"on the framework host", false},
		{"on a dedicated serving host", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFramework(t, smallConfig())
			if err := f.LoadDataset(mnist.Synthetic(64, 3)); err != nil {
				t.Fatalf("LoadDataset: %v", err)
			}
			if err := f.TrainIters(2, nil); err != nil {
				t.Fatalf("TrainIters: %v", err)
			}

			target := f.Host
			if tc.serveElsewhere {
				target = enclave.NewHost(f.Host.Profile())
			}
			trainBefore := f.Host.Resident()
			targetBefore := target.Resident()

			rep, err := f.NewReplicaOn(target, 9)
			if err != nil {
				t.Fatalf("NewReplicaOn: %v", err)
			}
			fp := f.ReplicaFootprint()
			if fp <= 0 {
				t.Fatalf("ReplicaFootprint = %d", fp)
			}
			if got := target.Resident() - targetBefore; got != fp {
				t.Fatalf("target host charged %d bytes, want the replica footprint %d", got, fp)
			}
			if tc.serveElsewhere && f.Host.Resident() != trainBefore {
				t.Fatalf("training host resident moved %d -> %d; a serve-elsewhere replica must not touch it",
					trainBefore, f.Host.Resident())
			}
			if rep.Enclave.Host() != target {
				t.Fatal("replica enclave not placed on the target host")
			}

			// The replica serves from the target host like any other.
			ds := mnist.Synthetic(1, 5)
			want, err := f.Classify(ds.Image(0))
			if err != nil {
				t.Fatalf("framework Classify: %v", err)
			}
			got, err := rep.ClassifyBatch(ds.Image(0))
			if err != nil {
				t.Fatalf("replica ClassifyBatch: %v", err)
			}
			if len(got) != 1 || got[0] != want {
				t.Fatalf("replica classes %v, want [%d]", got, want)
			}

			if err := rep.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if target.Resident() != targetBefore {
				t.Fatalf("Close returned the footprint to the wrong place: target resident %d, want %d",
					target.Resident(), targetBefore)
			}
			if f.Host.Resident() != trainBefore {
				t.Fatalf("training host resident %d after Close, want %d", f.Host.Resident(), trainBefore)
			}
		})
	}
}
