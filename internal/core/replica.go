package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"time"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mirror"
	"plinius/internal/obs"
)

// Replica is a read-only enclave inference worker (the serving-side
// unit of internal/serve). Each replica runs in its own enclave with
// its own encryption engine and its own copy of the model, restored
// from an immutable published snapshot in PM exactly like crash
// recovery (Algorithm 3, mirror_in): the parameters travel from PM to
// the replica enclave only in sealed form. Replicas never write to PM,
// so any number of them can share one framework's PM device.
//
// A replica always restores a pinned version: the snapshot it reads is
// never overwritten mid-restore, however much training, publishing or
// key rotation runs concurrently. Between a crash of the owning
// framework and its Recover, replicas keep serving from their
// in-enclave weights; only Refresh/Rotate need the framework live.
//
// A Replica's methods are single-goroutine, like the training loop
// they are built from (the engine's *Scratch buffers and the network's
// activation caches are not shared-safe); run one goroutine per
// replica and as many replicas as desired.
type Replica struct {
	Enclave *enclave.Enclave
	f       *Framework
	eng     *engine.Engine
	net     *darknet.Network

	version   uint64
	reserved  int
	closed    bool
	quantized bool
}

// ReplicaOption configures a replica at construction.
type ReplicaOption func(*replicaConfig)

type replicaConfig struct {
	quantized bool
}

// WithQuantizedReplica builds an int8 inference replica: the enclave
// model is the quantized clone of the published architecture, restored
// from the snapshot's int8 variant — ~4x smaller sealed payload and
// EPC footprint. Creating one turns on the framework's quantized
// publication mode (SetPublishQuantized) so refreshes keep finding the
// variant.
func WithQuantizedReplica() ReplicaOption {
	return func(c *replicaConfig) { c.quantized = true }
}

// Replica errors.
var (
	ErrNoServableModel = errors.New("core: no servable model; load a dataset and train, or recover a framework whose PM holds one")
	ErrReplicaClosed   = errors.New("core: replica is closed")
)

// provisionReplicaKey runs the Fig. 5 steps 2-3 flow against a replica
// enclave: attest it, have the owner verify the quote, wrap the
// framework's current data key for the attestation channel, and unwrap
// it inside the replica enclave. It returns the provisioned key as held
// by the replica.
func (f *Framework) provisionReplicaKey(encl *enclave.Enclave) ([]byte, error) {
	f.modelMu.Lock()
	dataKey := append([]byte(nil), f.key...)
	f.modelMu.Unlock()

	sess, quote, err := encl.BeginAttestation()
	if err != nil {
		return nil, fmt.Errorf("core: replica attestation: %w", err)
	}
	owner, err := enclave.NewOwner(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("core: replica owner: %w", err)
	}
	ownerChannel, err := owner.VerifyQuote(quote, enclave.PliniusMeasurement())
	if err != nil {
		return nil, fmt.Errorf("core: replica quote: %w", err)
	}
	wrapped, err := engine.WrapKey(ownerChannel, dataKey, rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("core: replica wrap key: %w", err)
	}
	var key []byte
	err = encl.Ecall(func() error {
		ch, err := sess.CompleteAttestation(owner.PublicKey())
		if err != nil {
			return err
		}
		key, err = engine.UnwrapKey(ch, wrapped)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: replica key provisioning: %w", err)
	}
	return key, nil
}

// NewReplica spins up one inference replica: a fresh enclave is
// created and attested, the owner provisions the current data key over
// the attestation channel (Fig. 5 steps 2-3), and the model is
// restored from the latest published snapshot (publishing the current
// model first if nothing has been published yet). seed differentiates
// the replica's enclave RNG.
//
// The replica enclave joins the framework's host: on real SGX all
// co-located enclaves share one EPC, so every replica's working set
// counts against the same 93.5 MB and a pool sized past the budget
// pays the shared paging knee.
func (f *Framework) NewReplica(seed int64, opts ...ReplicaOption) (*Replica, error) {
	return f.NewReplicaOn(f.Host, seed, opts...)
}

// NewReplicaOn is NewReplica with an explicit host for the replica
// enclave — the train-here-serve-there shape, where inference replicas
// run on a machine whose EPC the training enclave does not occupy. The
// model still travels only through PM, sealed.
func (f *Framework) NewReplicaOn(host *enclave.Host, seed int64, opts ...ReplicaOption) (*Replica, error) {
	var cfg replicaConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if f.Crashed() {
		return nil, ErrCrashedDown
	}
	if cfg.quantized {
		f.SetPublishQuantized(true)
	}
	latest, err := f.LatestPublished()
	if err != nil {
		return nil, err
	}
	if latest == 0 {
		if _, err := f.Publish(); err != nil {
			return nil, err
		}
	} else if cfg.quantized {
		// The latest version may predate quantized publication; make
		// sure a quant variant exists before the replica restores.
		pin, err := f.PinPublished(0)
		if err != nil {
			return nil, err
		}
		hasQuant := pin.HasQuant()
		pin.Release()
		if !hasQuant {
			// Republishing overwrites the latest version with the
			// enclave's current weights; refuse when the enclave holds
			// nothing (e.g. a dataset-less restart serving an old
			// publication) — superseding a real snapshot with random
			// weights would be worse than failing.
			if f.Iteration() == 0 {
				return nil, fmt.Errorf("core: quantized replica: latest published version predates quantized publication and the enclave holds no trained model to republish: %w", mirror.ErrNoQuant)
			}
			if _, err := f.Publish(); err != nil {
				return nil, err
			}
		}
	}
	r := &Replica{f: f, quantized: cfg.quantized}
	r.Enclave = host.NewEnclave(enclave.WithSeed(seed), enclave.WithName("replica"))

	key, err := f.provisionReplicaKey(r.Enclave)
	if err != nil {
		_ = r.Enclave.Close()
		return nil, err
	}
	r.eng, err = engine.New(key, engine.WithEnclave(r.Enclave))
	if err != nil {
		_ = r.Enclave.Close()
		return nil, fmt.Errorf("core: replica engine: %w", err)
	}

	// Build the replica's enclave model (random weights) and overwrite
	// it from the pinned published snapshot. A quantized replica clones
	// the architecture into its int8 inference form first, so only the
	// quantized parameters are ever resident.
	net, err := darknet.ParseConfig(strings.NewReader(f.cfg.ModelConfig),
		mrand.New(mrand.NewSource(seed)))
	if err != nil {
		_ = r.Enclave.Close()
		return nil, fmt.Errorf("core: replica model config: %w", err)
	}
	if cfg.quantized {
		if net, err = darknet.QuantizeNetwork(net); err != nil {
			_ = r.Enclave.Close()
			return nil, fmt.Errorf("core: replica quantize: %w", err)
		}
	}
	err = r.Enclave.Ecall(func() error {
		r.net = net
		if cfg.quantized {
			r.reserved = darknet.QuantParamBytes(net) + f.cfg.TrainOverheadBytes
		} else {
			r.reserved = net.ParamBytes() + f.cfg.TrainOverheadBytes
		}
		return r.Enclave.Reserve(r.reserved)
	})
	if err != nil {
		_ = r.Enclave.Close()
		return nil, fmt.Errorf("core: replica reserve: %w", err)
	}
	if _, err := r.Refresh(); err != nil {
		_ = r.Close()
		return nil, fmt.Errorf("core: replica restore: %w", err)
	}
	return r, nil
}

// ClassifyBatch classifies the images laid out contiguously in one
// network forward inside the replica enclave and returns one class per
// image.
func (r *Replica) ClassifyBatch(images []float32) ([]int, error) {
	return r.ClassifyBatchCtx(context.Background(), images)
}

// ClassifyBatchCtx is ClassifyBatch with a context: when ctx carries an
// obs.Trace the enclave forward is recorded as a "compute" span.
func (r *Replica) ClassifyBatchCtx(ctx context.Context, images []float32) ([]int, error) {
	if r.closed {
		return nil, ErrReplicaClosed
	}
	start := time.Now()
	classes, err := classifyBatch(r.Enclave, r.net, images)
	obs.SpanInto(ctx, "compute", time.Since(start))
	return classes, err
}

// Refresh pins the latest published model version, restores it into
// the replica enclave, and returns the restored iteration. It never
// races a concurrent publish or training mirror-out: the pinned
// snapshot is immutable while held.
func (r *Replica) Refresh() (int, error) {
	if r.closed {
		return 0, ErrReplicaClosed
	}
	pin, err := r.f.PinPublished(0)
	if err != nil {
		return 0, fmt.Errorf("core: replica refresh: %w", err)
	}
	defer pin.Release()
	var iter int
	err = r.Enclave.Ecall(func() error {
		r.f.pmMu.Lock()
		defer r.f.pmMu.Unlock()
		if r.quantized {
			qm, err := pin.OpenQuant(r.eng, mirror.WithEnclave(r.Enclave))
			if err != nil {
				return err
			}
			it, err := qm.RestoreInto(r.net)
			iter = it
			return err
		}
		m, err := pin.Open(r.eng, mirror.WithEnclave(r.Enclave))
		if err != nil {
			return err
		}
		it, err := m.MirrorIn(r.net)
		iter = it
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("core: replica refresh: %w", err)
	}
	r.version = pin.Version()
	return iter, nil
}

// Rotate re-provisions the framework's current data key into the
// replica enclave over a fresh attestation channel, rebuilds the
// replica's engine around it, and refreshes to the latest published
// snapshot (which the rotation published under the new key). The
// replica keeps serving its in-enclave weights up to the moment Rotate
// returns.
func (r *Replica) Rotate() (int, error) {
	if r.closed {
		return 0, ErrReplicaClosed
	}
	key, err := r.f.provisionReplicaKey(r.Enclave)
	if err != nil {
		return 0, fmt.Errorf("core: replica rotate: %w", err)
	}
	eng, err := engine.New(key, engine.WithEnclave(r.Enclave))
	if err != nil {
		return 0, fmt.Errorf("core: replica rotate engine: %w", err)
	}
	r.eng = eng
	return r.Refresh()
}

// Iteration returns the training iteration of the restored model.
func (r *Replica) Iteration() int { return r.net.Iteration }

// Precision returns the replica's serving parameter precision.
func (r *Replica) Precision() darknet.Precision {
	if r.quantized {
		return darknet.Int8
	}
	return darknet.FP32
}

// Version returns the published model version the replica serves.
func (r *Replica) Version() uint64 { return r.version }

// InputSize returns the flattened per-image input size.
func (r *Replica) InputSize() int { return r.net.InputSize() }

// Close tears down the replica enclave, returning its entire EPC
// footprint to the host's shared budget.
func (r *Replica) Close() error {
	if r.closed {
		return ErrReplicaClosed
	}
	r.closed = true
	r.reserved = 0
	return r.Enclave.Close()
}
