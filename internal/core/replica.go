package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mirror"
)

// Replica is a read-only enclave inference worker (the serving-side
// unit of internal/serve). Each replica runs in its own enclave with
// its own encryption engine and its own copy of the model, restored
// from the encrypted persistent mirror exactly like crash recovery
// (Algorithm 3, mirror_in): the parameters travel from PM to the
// replica enclave only in sealed form. Replicas never write to PM, so
// any number of them can share one framework's PM device.
//
// A Replica's methods are single-goroutine, like the training loop
// they are built from (the engine's *Scratch buffers and the network's
// activation caches are not shared-safe); run one goroutine per
// replica and as many replicas as desired.
type Replica struct {
	Enclave *enclave.Enclave
	eng     *engine.Engine
	net     *darknet.Network
	mir     *mirror.Model

	reserved int
	closed   bool
}

// Replica errors.
var (
	ErrNoServableModel = errors.New("core: no persistent model in PM to serve; train or MirrorSave first")
	ErrReplicaClosed   = errors.New("core: replica is closed")
)

// NewReplica spins up one inference replica: a fresh enclave is
// created and attested, the owner provisions the same data key over
// the attestation channel (Fig. 5 steps 2-3), and the model is
// restored from the persistent mirror. The framework must have a
// mirrored model in PM (Train with mirroring on, or MirrorSave).
// seed differentiates the replica's enclave RNG.
func (f *Framework) NewReplica(seed int64) (*Replica, error) {
	if f.crashed {
		return nil, ErrCrashedDown
	}
	if !f.mirroring() || !mirror.Exists(f.Rom) {
		return nil, ErrNoServableModel
	}
	r := &Replica{}
	r.Enclave = enclave.New(f.cfg.Server.Enclave, enclave.WithSeed(seed))

	// Attest the replica enclave and provision the data key through the
	// wrapped-key channel, as for the training enclave.
	sess, quote, err := r.Enclave.BeginAttestation()
	if err != nil {
		return nil, fmt.Errorf("core: replica attestation: %w", err)
	}
	owner, err := enclave.NewOwner(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("core: replica owner: %w", err)
	}
	ownerChannel, err := owner.VerifyQuote(quote, enclave.PliniusMeasurement())
	if err != nil {
		return nil, fmt.Errorf("core: replica quote: %w", err)
	}
	wrapped, err := engine.WrapKey(ownerChannel, f.key, rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("core: replica wrap key: %w", err)
	}
	var key []byte
	err = r.Enclave.Ecall(func() error {
		ch, err := sess.CompleteAttestation(owner.PublicKey())
		if err != nil {
			return err
		}
		key, err = engine.UnwrapKey(ch, wrapped)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: replica key provisioning: %w", err)
	}
	r.eng, err = engine.New(key, engine.WithEnclave(r.Enclave))
	if err != nil {
		return nil, fmt.Errorf("core: replica engine: %w", err)
	}

	// Build the replica's enclave model (random weights) and overwrite
	// it from the persistent mirror.
	net, err := darknet.ParseConfig(strings.NewReader(f.cfg.ModelConfig),
		mrand.New(mrand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("core: replica model config: %w", err)
	}
	err = r.Enclave.Ecall(func() error {
		r.net = net
		r.reserved = net.ParamBytes() + f.cfg.TrainOverheadBytes
		if err := r.Enclave.Reserve(r.reserved); err != nil {
			return err
		}
		m, err := mirror.OpenModel(f.Rom, r.eng, mirror.WithEnclave(r.Enclave))
		if err != nil {
			return err
		}
		if _, err := m.MirrorIn(r.net); err != nil {
			return err
		}
		r.mir = m
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: replica restore: %w", err)
	}
	return r, nil
}

// ClassifyBatch classifies the images laid out contiguously in one
// network forward inside the replica enclave and returns one class per
// image.
func (r *Replica) ClassifyBatch(images []float32) ([]int, error) {
	if r.closed {
		return nil, ErrReplicaClosed
	}
	return classifyBatch(r.Enclave, r.net, images)
}

// Refresh re-reads the persistent mirror, picking up any model update
// mirrored since the replica was built (e.g. continued training), and
// returns the restored iteration. Must not race with a concurrent
// MirrorOut.
func (r *Replica) Refresh() (int, error) {
	if r.closed {
		return 0, ErrReplicaClosed
	}
	var iter int
	err := r.Enclave.Ecall(func() error {
		it, err := r.mir.MirrorIn(r.net)
		iter = it
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("core: replica refresh: %w", err)
	}
	return iter, nil
}

// Iteration returns the training iteration of the restored model.
func (r *Replica) Iteration() int { return r.net.Iteration }

// InputSize returns the flattened per-image input size.
func (r *Replica) InputSize() int { return r.net.InputSize() }

// Close tears down the replica enclave, releasing its EPC footprint.
func (r *Replica) Close() error {
	if r.closed {
		return ErrReplicaClosed
	}
	r.closed = true
	if r.reserved > 0 {
		if err := r.Enclave.Free(r.reserved); err != nil {
			return err
		}
		r.reserved = 0
	}
	return nil
}
