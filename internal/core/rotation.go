package core

import (
	"errors"
	"fmt"

	"plinius/internal/engine"
	"plinius/internal/mirror"
)

// Crash-safe key rotation recovery: RotateKey persists a rotation
// marker (mirror.BeginRotation) before the first row is resealed, so a
// crash mid-rotation — which leaves the data matrix with mixed key
// epochs and the mirror under either key — is detected by Recover and
// finished instead of surfacing as an authentication failure on first
// use. The recovering enclave holds the pre-rotation key (the one its
// owner provisioned); the marker carries the new key sealed under it.

// errAbortReseal is the test hook's abort sentinel: it interrupts the
// reseal between chunks the way a crash would, leaving a committed
// marker cursor behind.
var errAbortReseal = errors.New("core: reseal aborted by test hook")

// resealMark wraps a rotation marker's Advance with the test-abort
// hook (testAbortResealAfter > 0 aborts after that many chunks).
func (f *Framework) resealMark(rot *mirror.Rotation) func(int) error {
	if f.testAbortResealAfter <= 0 {
		return rot.Advance
	}
	chunks := 0
	return func(next int) error {
		chunks++
		if chunks > f.testAbortResealAfter {
			return errAbortReseal
		}
		return rot.Advance(next)
	}
}

// maybeFinishRotation checks the rotation marker and, when a crash
// tore a rotation, completes it: reseal the remaining data rows from
// the recorded cursor, bring the training mirror to the new key
// (whichever epoch the crash left it in), republish, and clear the
// marker. Called from Recover with modelMu and pmMu held, after the
// data matrix is re-attached and before any mirror restore, so no
// mixed-epoch state is ever decrypted with a single key.
func (f *Framework) maybeFinishRotation() error {
	rot, inProgress, err := mirror.OpenRotation(f.Rom)
	if err != nil {
		return fmt.Errorf("core: open rotation marker: %w", err)
	}
	if !inProgress {
		return nil
	}
	return f.Enclave.Ecall(func() error {
		newKey, err := rot.NewKey(f.Engine)
		if err != nil {
			return fmt.Errorf("core: recover rotation key: %w", err)
		}
		newEng, err := engine.New(newKey, engine.WithEnclave(f.Enclave))
		if err != nil {
			return fmt.Errorf("core: recover rotation engine: %w", err)
		}
		if f.Data != nil {
			next, err := rot.NextRow()
			if err != nil {
				return fmt.Errorf("core: rotation cursor: %w", err)
			}
			if err := f.Data.ResealFrom(newEng, next, rot.Advance); err != nil {
				return fmt.Errorf("core: finish data reseal: %w", err)
			}
		}
		restored := false
		if mirror.Exists(f.Rom) {
			m, err := mirror.OpenModel(f.Rom, f.Engine, mirror.WithEnclave(f.Enclave))
			if err != nil {
				return fmt.Errorf("core: open mirror mid-rotation: %w", err)
			}
			// The crash may have hit before or after the mirror was
			// resealed: probe with the old key first, then the new.
			if _, err := m.MirrorIn(f.Net); err == nil {
				// Old epoch: restore succeeded, reseal under the new key.
				m.SetEngine(newEng)
				if err := m.MirrorOut(f.Net); err != nil {
					return fmt.Errorf("core: reseal mirror: %w", err)
				}
			} else if errors.Is(err, engine.ErrAuth) {
				// New epoch already: just adopt it.
				m.SetEngine(newEng)
				if _, err := m.MirrorIn(f.Net); err != nil {
					return fmt.Errorf("core: restore resealed mirror: %w", err)
				}
			} else {
				return fmt.Errorf("core: restore mirror mid-rotation: %w", err)
			}
			f.Mirror = m
			restored = true
		}
		// With mirroring off the served model lives only in the
		// publication table: restore it into the enclave (same
		// two-epoch probe) so the republish below re-seals the trained
		// weights — not the random ones Recover just built.
		if !restored && mirror.PublicationExists(f.Rom) {
			if err := f.attachPublication(); err != nil {
				return err
			}
			if f.pub.LatestVersion() > 0 {
				pin, err := f.pub.Pin(0)
				if err != nil {
					return fmt.Errorf("core: pin published mid-rotation: %w", err)
				}
				m, err := pin.Open(f.Engine, mirror.WithEnclave(f.Enclave))
				if err != nil {
					pin.Release()
					return fmt.Errorf("core: open published mid-rotation: %w", err)
				}
				if _, err := m.MirrorIn(f.Net); err != nil {
					if !errors.Is(err, engine.ErrAuth) {
						pin.Release()
						return fmt.Errorf("core: restore published mid-rotation: %w", err)
					}
					m.SetEngine(newEng)
					if _, err := m.MirrorIn(f.Net); err != nil {
						pin.Release()
						return fmt.Errorf("core: restore republished snapshot: %w", err)
					}
				}
				pin.Release()
				restored = true
			}
		}
		f.key = newKey
		f.Engine = newEng
		// Republish only a restored model: a framework that never had a
		// mirror or publication has nothing served, and publishing
		// Recover's fresh random weights would supersede nothing worth
		// keeping anyway — worse, with a stale publication it would
		// replace trained weights with noise.
		if restored {
			if err := f.attachPublication(); err != nil {
				return err
			}
			if _, err := f.pub.PublishOut(newEng, f.Net); err != nil {
				return fmt.Errorf("core: republish under rotated key: %w", err)
			}
		}
		if err := rot.Finish(); err != nil {
			return fmt.Errorf("core: finish rotation: %w", err)
		}
		return nil
	})
}
