package core

import (
	"context"
	"errors"
	"testing"

	"plinius/internal/mnist"
)

// loadedFramework returns a framework with a small dataset loaded.
func loadedFramework(t *testing.T, cfg Config) *Framework {
	t.Helper()
	f := newFramework(t, cfg)
	if err := f.LoadDataset(mnist.Synthetic(64, 3)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	return f
}

// TestTrainCancelIsMirrorConsistent cancels a run mid-training and
// checks the contract: the error wraps context.Canceled, and after a
// crash the framework recovers to exactly the iteration the
// cancellation observed (the final flush made PM current).
func TestTrainCancelIsMirrorConsistent(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := 0
	err := f.Train(ctx, StopAt(1000), WithProgress(func(iter int, _ float32) {
		if iter == 5 {
			stopAt = iter
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train = %v, want context.Canceled", err)
	}
	if stopAt == 0 || f.Iteration() < stopAt {
		t.Fatalf("training stopped at %d before the cancel point %d", f.Iteration(), stopAt)
	}
	cancelled := f.Iteration()

	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != cancelled {
		t.Fatalf("recovered at iteration %d, want the cancelled iteration %d", got, cancelled)
	}
	// The run resumes cleanly from there.
	if err := f.Train(context.Background(), StopAt(cancelled+3)); err != nil {
		t.Fatalf("resume Train: %v", err)
	}
	if got := f.Iteration(); got != cancelled+3 {
		t.Fatalf("resumed to %d, want %d", f.Iteration(), cancelled+3)
	}
}

// TestTrainCancelWithSparseMirrorFreq checks the final-flush path: with
// MirrorFreq 10, a cancellation between mirror points still leaves PM
// holding the cancelled iteration.
func TestTrainCancelWithSparseMirrorFreq(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorFreq = 10
	f := loadedFramework(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	err := f.Train(ctx, StopAt(100), WithProgress(func(iter int, _ float32) {
		if iter == 13 { // not a multiple of 10: PM mirror is at 10
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Train = %v, want context.Canceled", err)
	}
	cancelled := f.Iteration()
	if cancelled%cfg.MirrorFreq == 0 {
		t.Fatalf("test needs a cancel off the mirror grid, got iteration %d", cancelled)
	}
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != cancelled {
		t.Fatalf("recovered at %d, want the flushed cancel iteration %d", got, cancelled)
	}
}

// TestTrainPreCancelledContext checks an already-done context stops
// before any iteration runs.
func TestTrainPreCancelledContext(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := f.Train(ctx, StopAt(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Train = %v, want context.Canceled", err)
	}
	if got := f.Iteration(); got != 0 {
		t.Fatalf("pre-cancelled Train ran %d iterations", got)
	}
}

// TestTrainMirrorEveryOverride checks the per-run frequency override:
// a mirroring-disabled framework can mirror for one run, and a
// mirroring-enabled one can skip it.
func TestTrainMirrorEveryOverride(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorFreq = -1 // disabled by config
	f := loadedFramework(t, cfg)
	if err := f.Train(context.Background(), StopAt(4), MirrorEvery(2)); err != nil {
		t.Fatalf("Train with MirrorEvery: %v", err)
	}
	if f.Mirror == nil {
		t.Fatal("MirrorEvery(2) did not attach the mirror")
	}
	iter, err := f.Mirror.Iteration()
	if err != nil {
		t.Fatalf("mirror iteration: %v", err)
	}
	if iter != 4 {
		t.Fatalf("mirror holds iteration %d, want 4", iter)
	}

	// And the reverse: default-on mirroring disabled for one run.
	f2 := loadedFramework(t, smallConfig())
	if err := f2.Train(context.Background(), StopAt(3), MirrorEvery(-1)); err != nil {
		t.Fatalf("Train with MirrorEvery(-1): %v", err)
	}
	if f2.Mirror != nil {
		t.Fatal("MirrorEvery(-1) attached the mirror anyway")
	}
}

// TestRecoverRestoresMirrorEveryMirror checks Recover honours a mirror
// created by the per-run MirrorEvery override even when config-level
// mirroring is off: PM holds a valid model, so restoreNow restores it.
func TestRecoverRestoresMirrorEveryMirror(t *testing.T) {
	cfg := smallConfig()
	cfg.MirrorFreq = -1
	f := loadedFramework(t, cfg)
	if err := f.Train(context.Background(), StopAt(10), MirrorEvery(2)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != 10 {
		t.Fatalf("recovered at iteration %d, want 10 from the MirrorEvery mirror", got)
	}
}

// TestEnsureModelCurrentAfterLazyRecover checks the publish path never
// snapshots the random post-Recover(false) weights: EnsureModelCurrent
// pulls the mirror in first.
func TestEnsureModelCurrentAfterLazyRecover(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	if err := f.Train(context.Background(), StopAt(6)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f.Crash()
	if err := f.Recover(false); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := f.Iteration(); got != 0 {
		t.Fatalf("lazy recover should leave iteration 0, got %d", got)
	}
	if err := f.EnsureModelCurrent(); err != nil {
		t.Fatalf("EnsureModelCurrent: %v", err)
	}
	if got := f.Iteration(); got != 6 {
		t.Fatalf("EnsureModelCurrent restored iteration %d, want 6", got)
	}
}

// TestTrainItersShimMatchesV1Semantics drives the deprecated shim.
func TestTrainItersShimMatchesV1Semantics(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	var iters []int
	if err := f.TrainIters(3, func(iter int, _ float32) { iters = append(iters, iter) }); err != nil {
		t.Fatalf("TrainIters: %v", err)
	}
	if len(iters) != 3 || iters[2] != 3 {
		t.Fatalf("shim callback saw %v, want [1 2 3]", iters)
	}
	// A target at or below the current iteration is a no-op, as in v1.
	if err := f.TrainIters(0, nil); err != nil {
		t.Fatalf("TrainIters(0): %v", err)
	}
	if got := f.Iteration(); got != 3 {
		t.Fatalf("TrainIters(0) moved iteration to %d", got)
	}
}

// TestPublishAndPinLifecycle exercises the framework-level publication
// API: versions advance, pinned restores see the pinned bytes.
func TestPublishAndPinLifecycle(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	if err := f.Train(context.Background(), StopAt(2)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	if ver, err := f.LatestPublished(); err != nil || ver != 0 {
		t.Fatalf("LatestPublished before publish = %d, %v", ver, err)
	}
	v1, err := f.Publish()
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if v1 != 1 {
		t.Fatalf("first published version %d, want 1", v1)
	}
	if err := f.Train(context.Background(), StopAt(4)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	v2, err := f.Publish()
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if v2 != 2 {
		t.Fatalf("second published version %d, want 2", v2)
	}
	// Publication survives crash/recover: the table is in PM.
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ver, err := f.LatestPublished()
	if err != nil {
		t.Fatalf("LatestPublished after recover: %v", err)
	}
	if ver != v2 {
		t.Fatalf("latest after recover %d, want %d", ver, v2)
	}
}

// TestRotateKeyKeepsTrainingAndRecoveryWorking rotates the data key
// and checks the whole persistent state remains usable: training
// continues (data matrix re-sealed), crash recovery restores under the
// new key, and the key actually changed.
func TestRotateKeyKeepsTrainingAndRecoveryWorking(t *testing.T) {
	f := loadedFramework(t, smallConfig())
	if err := f.Train(context.Background(), StopAt(3)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	oldKey := f.Key()
	ver, err := f.RotateKey()
	if err != nil {
		t.Fatalf("RotateKey: %v", err)
	}
	if ver == 0 {
		t.Fatal("RotateKey did not publish a new version")
	}
	if string(f.Key()) == string(oldKey) {
		t.Fatal("RotateKey left the data key unchanged")
	}
	// Training continues against the re-sealed data matrix.
	if err := f.Train(context.Background(), StopAt(5)); err != nil {
		t.Fatalf("Train after rotate: %v", err)
	}
	// And the re-sealed mirror recovers after a crash.
	f.Crash()
	if err := f.Recover(true); err != nil {
		t.Fatalf("Recover after rotate: %v", err)
	}
	if got := f.Iteration(); got != 5 {
		t.Fatalf("recovered at %d, want 5", got)
	}
	if err := f.Train(context.Background(), StopAt(6)); err != nil {
		t.Fatalf("Train after recover: %v", err)
	}
}

// TestServableSentinels checks the fail-fast servability probe.
func TestServableSentinels(t *testing.T) {
	f := newFramework(t, smallConfig())
	if err := f.Servable(); !errors.Is(err, ErrNoServableModel) {
		t.Fatalf("fresh dataset-less Servable = %v, want ErrNoServableModel", err)
	}
	if err := f.LoadDataset(mnist.Synthetic(64, 3)); err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if err := f.Servable(); err != nil {
		t.Fatalf("Servable with dataset = %v", err)
	}
	f.Crash()
	if err := f.Servable(); !errors.Is(err, ErrCrashedDown) {
		t.Fatalf("crashed Servable = %v, want ErrCrashedDown", err)
	}
}
