// Package core implements the Plinius framework: secure ML model
// training in an (emulated) SGX enclave with fault tolerance on
// (emulated) persistent memory through the mirroring mechanism.
//
// A Framework wires together every substrate — the enclave, the PM
// device, SGX-Romulus, the encryption engine, SGX-Darknet and the
// mirroring module — and drives the paper's full workflow (Fig. 5):
// remote attestation and key provisioning, dataset loading into
// encrypted byte-addressable PM, iterative training with per-iteration
// encrypted mirroring (Algorithm 2), crash recovery, and secure
// inference. It also implements the SSD checkpointing baseline the
// paper compares against (checkpoint.go).
package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"strings"
	"sync"

	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mirror"
	"plinius/internal/mnist"
	"plinius/internal/pm"
	"plinius/internal/romulus"
	"plinius/internal/storage"
)

// ServerProfile bundles the hardware cost models of one evaluation
// machine.
type ServerProfile struct {
	Name    string
	Enclave enclave.Profile
	PM      pm.Profile
	SSD     storage.Profile
}

// SGXEmlPM returns the paper's sgx-emlPM server: real SGX, PM emulated
// with a ramdisk.
func SGXEmlPM() ServerProfile {
	return ServerProfile{
		Name:    "sgx-emlPM",
		Enclave: enclave.SGXEmlPMProfile(),
		PM:      pm.RamdiskProfile(),
		SSD:     storage.SSDProfile(),
	}
}

// EmlSGXPM returns the paper's emlSGX-PM server: SGX in simulation
// mode, real Optane PM.
func EmlSGXPM() ServerProfile {
	return ServerProfile{
		Name:    "emlSGX-PM",
		Enclave: enclave.EmlSGXPMProfile(),
		PM:      pm.OptaneProfile(),
		SSD:     storage.SSDSlowProfile(),
	}
}

// Config parameterises a Framework.
type Config struct {
	// ModelConfig is the Darknet .cfg text of the model to train.
	ModelConfig string
	// Server selects the machine cost model (default SGXEmlPM).
	Server ServerProfile
	// PMBytes sizes the PM device (default 256 MB).
	PMBytes int
	// MirrorFreq mirrors the model every N iterations. 0 means the
	// paper's default of every iteration; negative disables mirroring
	// entirely (the non-crash-resilient baseline of Fig. 9b/10c).
	MirrorFreq int
	// Host places the framework's enclaves on an existing EPC host, so
	// co-located frameworks share one usable-EPC budget the way real
	// SGX enclaves on one machine do: each charges its working set to
	// the same 93.5 MB, and the paging knee is reached by the host's
	// aggregate footprint, not any single enclave's. Serving replicas
	// always join their framework's host. Nil creates a private host
	// from Server.Enclave (the paper's one-enclave-per-machine setup).
	// When set, the host's cost profile takes precedence over
	// Server.Enclave for enclave costs.
	Host *enclave.Host
	// Seed drives all randomness (weights, batches, enclave RNG).
	Seed int64
	// DataKey is the 128-bit data encryption key. Empty means run the
	// full remote-attestation provisioning flow with a fresh owner key.
	DataKey []byte
	// PlaintextData stores training rows unencrypted in PM (Fig. 8
	// baseline only).
	PlaintextData bool
	// TrainOverheadBytes approximates the enclave working set beyond
	// the model parameters (activation/encryption buffers, code). The
	// paper observes the EPC limit being reached at 78 MB of model for
	// 93.5 MB of usable EPC, i.e. ~15 MB of other state.
	TrainOverheadBytes int
}

const (
	defaultPMBytes  = 256 << 20
	defaultOverhead = 15 << 20
)

// Framework errors.
var (
	ErrNoDataset    = errors.New("core: no dataset loaded; call LoadDataset first")
	ErrNotCrashed   = errors.New("core: recover called on a live framework")
	ErrCrashedDown  = errors.New("core: framework is crashed; call Recover")
	ErrMirroringOff = errors.New("core: mirroring is disabled (MirrorFreq < 0)")
)

// Framework is a live Plinius instance.
//
// Concurrency: the v2 API allows one training goroutine (Train) to run
// while other goroutines publish snapshots, rotate keys, or restore
// replica enclaves from PM. Two internal locks arbitrate:
//
//   - modelMu owns the enclave model parameters, the engine/key
//     identity, and the crash flag. Train holds it per iteration (not
//     across the whole run), so publication and rotation interleave at
//     iteration boundaries.
//   - pmMu owns the PM device and the Romulus heap. Every PM
//     transaction or load anywhere in the process — training mirror,
//     data matrix, publication table, replica restores — runs under it.
//
// Lock order is always modelMu before pmMu.
type Framework struct {
	cfg Config

	Host    *enclave.Host
	Enclave *enclave.Enclave
	PM      *pm.Device
	SSD     *storage.Device
	Rom     *romulus.Romulus
	Engine  *engine.Engine
	Net     *darknet.Network
	Mirror  *mirror.Model
	Data    *mirror.DataMatrix

	modelMu sync.Mutex
	pmMu    sync.Mutex

	key      []byte
	rng      *mrand.Rand
	reserved int
	crashed  bool
	pub      *mirror.Publication
	pubQuant bool // publish int8 variants alongside fp32 (guarded by pmMu)

	// testAbortResealAfter > 0 makes the next RotateKey abort its data
	// reseal after that many chunks — a deterministic stand-in for a
	// crash mid-rotation (test hook; see rotation.go).
	testAbortResealAfter int
}

// New builds a Framework: it creates the enclave, provisions the data
// key (via remote attestation when none is supplied), maps the PM
// device through SGX-Romulus, and builds the enclave model from the
// config (parsed in the untrusted runtime, passed in via an ecall, as
// in §IV).
func New(cfg Config) (*Framework, error) {
	if cfg.ModelConfig == "" {
		return nil, errors.New("core: ModelConfig is required")
	}
	if cfg.Server.Name == "" {
		cfg.Server = SGXEmlPM()
	}
	if cfg.PMBytes == 0 {
		cfg.PMBytes = defaultPMBytes
	}
	if cfg.MirrorFreq == 0 {
		cfg.MirrorFreq = 1
	}
	if cfg.TrainOverheadBytes == 0 {
		cfg.TrainOverheadBytes = defaultOverhead
	}

	f := &Framework{cfg: cfg}
	f.Host = cfg.Host
	if f.Host == nil {
		f.Host = enclave.NewHost(cfg.Server.Enclave)
	}
	f.Enclave = f.Host.NewEnclave(enclave.WithSeed(cfg.Seed), enclave.WithName("train"))
	f.SSD = storage.NewDevice(cfg.Server.SSD)
	dev, err := pm.New(cfg.PMBytes, pm.WithProfile(cfg.Server.PM))
	if err != nil {
		return nil, fmt.Errorf("core: pm device: %w", err)
	}
	f.PM = dev

	if err := f.provisionKey(); err != nil {
		return nil, err
	}
	eng, err := engine.New(f.key, engine.WithEnclave(f.Enclave))
	if err != nil {
		return nil, fmt.Errorf("core: engine: %w", err)
	}
	f.Engine = eng

	// Algorithm 1: the untrusted helper mmaps PM and passes the header
	// address into the enclave, which validates and recovers.
	err = f.Enclave.Ecall(func() error {
		rom, err := romulus.Open(dev, romulus.WithEnv(romulusEnv(cfg.Server)))
		if err != nil {
			return err
		}
		f.Rom = rom
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: romulus init: %w", err)
	}

	if err := f.buildModel(); err != nil {
		return nil, err
	}
	f.rng = mrand.New(mrand.NewSource(cfg.Seed + 1))
	return f, nil
}

// romulusEnv maps the server profile to a Romulus execution environment.
func romulusEnv(s ServerProfile) romulus.Env {
	if s.Enclave.HardwareSGX {
		return romulus.SGXEnv()
	}
	return romulus.NativeEnv()
}

// provisionKey establishes the data key: either the caller supplied it
// (already provisioned out of band) or the full Fig. 5 steps 2-3 run —
// remote attestation, quote verification by the owner, ECDH channel,
// wrapped-key delivery, in-enclave unwrap.
func (f *Framework) provisionKey() error {
	if len(f.cfg.DataKey) == engine.KeySize {
		f.key = append([]byte(nil), f.cfg.DataKey...)
		return nil
	}
	if len(f.cfg.DataKey) != 0 {
		return fmt.Errorf("core: data key must be %d bytes, got %d", engine.KeySize, len(f.cfg.DataKey))
	}
	sess, quote, err := f.Enclave.BeginAttestation()
	if err != nil {
		return fmt.Errorf("core: attestation: %w", err)
	}
	owner, err := enclave.NewOwner(rand.Reader)
	if err != nil {
		return fmt.Errorf("core: owner: %w", err)
	}
	ownerChannel, err := owner.VerifyQuote(quote, enclave.PliniusMeasurement())
	if err != nil {
		return fmt.Errorf("core: quote verification: %w", err)
	}
	dataKey, err := engine.GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("core: owner keygen: %w", err)
	}
	wrapped, err := engine.WrapKey(ownerChannel, dataKey, rand.Reader)
	if err != nil {
		return fmt.Errorf("core: wrap key: %w", err)
	}
	// Enclave side: derive the same channel key and unwrap.
	return f.Enclave.Ecall(func() error {
		enclaveChannel, err := sess.CompleteAttestation(owner.PublicKey())
		if err != nil {
			return fmt.Errorf("core: complete attestation: %w", err)
		}
		key, err := engine.UnwrapKey(enclaveChannel, wrapped)
		if err != nil {
			return fmt.Errorf("core: unwrap key: %w", err)
		}
		f.key = key
		return nil
	})
}

// buildModel parses the config in the untrusted runtime and builds the
// enclave model via an ecall, reserving its EPC footprint.
func (f *Framework) buildModel() error {
	net, err := darknet.ParseConfig(strings.NewReader(f.cfg.ModelConfig),
		mrand.New(mrand.NewSource(f.cfg.Seed)))
	if err != nil {
		return fmt.Errorf("core: model config: %w", err)
	}
	return f.Enclave.Ecall(func() error {
		f.Net = net
		f.reserved = net.ParamBytes() + f.cfg.TrainOverheadBytes
		if err := f.Enclave.Reserve(f.reserved); err != nil {
			return fmt.Errorf("core: reserve model: %w", err)
		}
		return nil
	})
}

// LoadDataset runs the PM-data module path (Fig. 5 step 4): the sealed
// dataset is read from secondary storage via an ocall and transformed
// into the encrypted byte-addressable matrix in PM.
func (f *Framework) LoadDataset(ds *mnist.Dataset) error {
	if f.crashed {
		return ErrCrashedDown
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	// Untrusted helper reads the initial dataset from secondary storage
	// into DRAM (charged as one ocall plus the SSD read).
	err := f.Enclave.Ocall(func() error {
		name := "dataset.enc"
		fh, err := f.SSD.Create(name)
		if err != nil {
			return err
		}
		sealedSize := ds.N * engine.SealedLen(4*(mnist.Rows*mnist.Cols+mnist.Classes))
		if _, err := fh.Write(make([]byte, sealedSize)); err != nil {
			return err
		}
		if _, err := fh.Seek(0, 0); err != nil {
			return err
		}
		buf := make([]byte, sealedSize)
		if _, err := fh.Read(buf); err != nil {
			return err
		}
		return fh.Close()
	})
	if err != nil {
		return fmt.Errorf("core: dataset staging: %w", err)
	}
	var opts []mirror.DataOption
	if f.cfg.PlaintextData {
		opts = append(opts, mirror.WithPlaintextRows())
	}
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	return f.Enclave.Ecall(func() error {
		dm, err := mirror.LoadData(f.Rom, f.Engine, ds, opts...)
		if err != nil {
			return fmt.Errorf("core: load data to PM: %w", err)
		}
		f.Data = dm
		return nil
	})
}

func (f *Framework) mirroring() bool { return f.cfg.MirrorFreq > 0 }

// attachMirror implements Algorithm 2 lines 7-12: restore from an
// existing persistent model or allocate a fresh one. Callers gate on
// whether mirroring applies to the current run and hold pmMu.
func (f *Framework) attachMirror() error {
	if f.Mirror != nil {
		return nil
	}
	if mirror.Exists(f.Rom) {
		m, err := mirror.OpenModel(f.Rom, f.Engine, mirror.WithEnclave(f.Enclave))
		if err != nil {
			return fmt.Errorf("core: open mirror: %w", err)
		}
		if _, err := m.MirrorIn(f.Net); err != nil {
			return fmt.Errorf("core: mirror in: %w", err)
		}
		f.Mirror = m
		return nil
	}
	m, err := mirror.AllocModel(f.Rom, f.Engine, f.Net, mirror.WithEnclave(f.Enclave))
	if err != nil {
		return fmt.Errorf("core: alloc mirror: %w", err)
	}
	f.Mirror = m
	return nil
}

// Crash simulates a power failure or spot-instance reclamation: the
// enclave and all volatile state vanish, and PM loses every unflushed
// cache line. Crash must not race a running Train; cancel the training
// context first (serving replicas keep answering from their in-enclave
// weights across the framework's down window).
func (f *Framework) Crash() {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	f.PM.Crash()
	f.Rom = nil
	f.Mirror = nil
	f.Data = nil
	f.Net = nil
	f.pub = nil
	f.crashed = true
	if f.reserved > 0 {
		_ = f.Enclave.Free(f.reserved)
		f.reserved = 0
	}
}

// Recover restarts the process after a Crash: a fresh enclave model is
// built (random weights), SGX-Romulus re-opens the PM heap (running its
// recovery), and the persistent data matrix is re-attached. The model
// parameters themselves are restored lazily by Train via mirror-in —
// or immediately if RestoreNow is true.
func (f *Framework) Recover(restoreNow bool) error {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	f.pmMu.Lock()
	defer f.pmMu.Unlock()
	if !f.crashed {
		return ErrNotCrashed
	}
	err := f.Enclave.Ecall(func() error {
		rom, err := romulus.Open(f.PM, romulus.WithEnv(romulusEnv(f.cfg.Server)))
		if err != nil {
			return err
		}
		f.Rom = rom
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: recover romulus: %w", err)
	}
	if err := f.buildModel(); err != nil {
		return err
	}
	f.crashed = false
	if mirror.DataExists(f.Rom) {
		var opts []mirror.DataOption
		if f.cfg.PlaintextData {
			opts = append(opts, mirror.WithPlaintextRows())
		}
		dm, err := mirror.OpenData(f.Rom, f.Engine, opts...)
		if err != nil {
			return fmt.Errorf("core: reopen data: %w", err)
		}
		f.Data = dm
	}
	// A crash mid-key-rotation left PM with mixed key epochs; the
	// rotation marker records exactly how far it got, and recovery
	// finishes the reseal before anything tries to decrypt. Must run
	// before any mirror restore, which would otherwise hit rows of the
	// wrong epoch.
	if err := f.maybeFinishRotation(); err != nil {
		return err
	}
	// Restore whenever PM actually holds a mirror — it may exist even
	// with config-level mirroring off (a run used the MirrorEvery
	// override).
	if restoreNow && mirror.Exists(f.Rom) {
		return f.Enclave.Ecall(f.attachMirror)
	}
	return nil
}

// Infer classifies the test set with the trained enclave model and
// returns the accuracy in [0,1] (§VI secure inference). Samples are
// classified in micro-batches of the model's configured batch size —
// one network forward per chunk instead of per sample — which is
// bit-identical to per-sample classification because every layer
// processes samples independently.
func (f *Framework) Infer(test *mnist.Dataset) (float64, error) {
	if f.crashed {
		return 0, ErrCrashedDown
	}
	if err := test.Validate(); err != nil {
		return 0, err
	}
	chunk := f.Net.Config.Batch
	if chunk <= 0 {
		chunk = 1
	}
	// Chunks are sliced at the dataset's stride; the network's own
	// input check rejects a model whose input shape disagrees, as the
	// per-sample path did.
	in := mnist.Rows * mnist.Cols
	correct := 0
	err := f.Enclave.Ecall(func() error {
		for start := 0; start < test.N; start += chunk {
			end := start + chunk
			if end > test.N {
				end = test.N
			}
			x := test.Images[start*in : end*in]
			f.Enclave.Touch(4 * len(x))
			classes, err := f.Net.ClassifyBatch(x, end-start)
			if err != nil {
				return err
			}
			for i, cls := range classes {
				if cls == test.Labels[start+i] {
					correct++
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: inference: %w", err)
	}
	return float64(correct) / float64(test.N), nil
}

// Classify classifies one image with the enclave model (the §VI
// request path: the input never leaves the enclave unencrypted).
func (f *Framework) Classify(image []float32) (int, error) {
	classes, err := f.ClassifyBatch(image)
	if err != nil {
		return 0, err
	}
	return classes[0], nil
}

// ClassifyBatch classifies the images laid out contiguously in one
// network forward (the serving micro-batch path) and returns one class
// per image.
func (f *Framework) ClassifyBatch(images []float32) ([]int, error) {
	if f.crashed {
		return nil, ErrCrashedDown
	}
	return classifyBatch(f.Enclave, f.Net, images)
}

// classifyBatch is the shared enclave micro-batch forward used by both
// the Framework and its serving Replicas: validate the layout, charge
// EPC for the staged batch, one ecall, one forward.
func classifyBatch(encl *enclave.Enclave, net *darknet.Network, images []float32) ([]int, error) {
	in := net.InputSize()
	if len(images) == 0 || len(images)%in != 0 {
		return nil, fmt.Errorf("core: classify: %d floats is not a positive multiple of the %d-float input", len(images), in)
	}
	var classes []int
	err := encl.Ecall(func() error {
		encl.Touch(4 * len(images))
		cs, err := net.ClassifyBatch(images, len(images)/in)
		classes = cs
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("core: inference: %w", err)
	}
	return classes, nil
}

// ReplicaFootprint returns the EPC working set one serving replica of
// this framework's model will claim on the host: the model parameters
// plus the per-enclave overhead (activation/encryption buffers, code).
// Serving uses it to size replica pools against Host.Headroom.
func (f *Framework) ReplicaFootprint() int {
	return f.ReplicaFootprintAt(darknet.FP32)
}

// ReplicaFootprintAt is ReplicaFootprint at an explicit serving
// precision: an int8 replica holds the quantized parameters (~4x
// smaller), so more replicas fit the same EPC headroom.
func (f *Framework) ReplicaFootprintAt(prec darknet.Precision) int {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.Net == nil {
		return 0
	}
	if prec == darknet.Int8 {
		return darknet.QuantParamBytes(f.Net) + f.cfg.TrainOverheadBytes
	}
	return f.Net.ParamBytes() + f.cfg.TrainOverheadBytes
}

// Iteration returns the model's completed iteration count.
func (f *Framework) Iteration() int {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	if f.Net == nil {
		return 0
	}
	return f.Net.Iteration
}

// Key returns a copy of the provisioned data key (test hook).
func (f *Framework) Key() []byte {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	return append([]byte(nil), f.key...)
}

// Crashed reports whether the framework is down awaiting Recover.
func (f *Framework) Crashed() bool {
	f.modelMu.Lock()
	defer f.modelMu.Unlock()
	return f.crashed
}
