package experiments

import (
	"strings"
	"testing"

	"plinius/internal/core"
)

// TestShardedBeatsKnee: the acceptance table for sharded serving. A
// model exceeding the serving hosts' usable EPC is served monolithic
// and sharded on identical hosts; the monolithic replica must sit over
// the knee and all-miss, while the shard group serves the same batches
// with fewer than 5% of its faults (in practice zero), paying PM range
// restores instead.
func TestShardedBeatsKnee(t *testing.T) {
	cases := []struct {
		name           string
		sizeMB, epcMB  int
		batches, batch int
	}{
		// ~5.6 MB of parameters against a 3 MB serving budget: scaled-
		// down Fig. 7 geometry (model ~2x the budget), per-layer shards
		// stream within it.
		{name: "2x-budget", sizeMB: 6, epcMB: 3, batches: 2, batch: 1},
		// Tighter: model ~3x the budget (same per-shard floor — one
		// synthetic conv layer — so the budget must still fit one hot
		// layer plus the parked overheads).
		{name: "3x-budget", sizeMB: 9, epcMB: 3, batches: 2, batch: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunShard(core.SGXEmlPM(), tc.sizeMB, tc.epcMB, tc.batches, tc.batch, 42)
			if err != nil {
				t.Fatalf("RunShard: %v", err)
			}
			if len(res.Rows) != 3 {
				t.Fatalf("RunShard returned %d rows", len(res.Rows))
			}
			mono := res.Rows[0]
			if res.ModelBytes <= res.ServeEPC {
				t.Fatalf("model %d bytes fits the %d-byte budget; the experiment needs an over-EPC model",
					res.ModelBytes, res.ServeEPC)
			}
			if !mono.HostOverEPC {
				t.Fatal("monolithic serving host not over the knee")
			}
			monoFaults := mono.RestoreFaults + mono.ServeFaults
			if monoFaults == 0 {
				t.Fatal("monolithic mode paid no faults over the knee")
			}
			// Both sharded rows — double-buffered restore disabled and
			// enabled — must preserve the zero-fault residency bound.
			for _, sharded := range res.Rows[1:] {
				if !sharded.Streaming || sharded.Shards < 2 {
					t.Fatalf("%s mode not streaming a real split: %+v", sharded.Mode, sharded)
				}
				if sharded.HostOverEPC {
					t.Fatalf("%s serving host crossed the knee: peak %d > %d",
						sharded.Mode, sharded.PeakResidentBytes, res.ServeEPC)
				}
				shardFaults := sharded.RestoreFaults + sharded.ServeFaults
				if 20*shardFaults >= monoFaults {
					t.Fatalf("%s faults %d not under 5%% of monolithic %d", sharded.Mode, shardFaults, monoFaults)
				}
				if sharded.PMRestores == 0 {
					t.Fatalf("streaming %s group recorded no PM range restores", sharded.Mode)
				}
			}
			nopf, pf := res.Rows[1], res.Rows[2]
			if nopf.Prefetched != 0 {
				t.Fatalf("prefetch-disabled row prefetched %d restores", nopf.Prefetched)
			}
			if pf.Prefetched > 0 && pf.Stalls > nopf.Stalls {
				t.Fatalf("double-buffered restore increased stalls: %d with, %d without", pf.Stalls, nopf.Stalls)
			}
			var sb strings.Builder
			res.Print(&sb)
			if !strings.Contains(sb.String(), "sharded") || !strings.Contains(sb.String(), "over knee") {
				t.Fatalf("Print output missing expected rows:\n%s", sb.String())
			}
		})
	}
}
