package experiments

import (
	"fmt"
	"io"

	"plinius/internal/pm"
	"plinius/internal/romulus"
)

// Fig6Point is one SPS measurement.
type Fig6Point struct {
	Env        string
	FlushKind  pm.FlushKind
	SwapsPerTx int
	SwapsPerUs float64
}

// Fig6Result holds the SPS benchmark grid (paper Fig. 6): native vs
// SGX-Romulus vs Romulus-in-SCONE, for clflush+nop and
// clflushopt+sfence, across transaction sizes.
type Fig6Result struct {
	Points []Fig6Point
}

// RunFig6 runs the SPS grid on the sgx-emlPM machine model (ramdisk PM,
// the paper's Fig. 6 setup). txPerPoint transactions are executed per
// grid point on a 10 MB persistent array.
func RunFig6(swapsPerTx []int, txPerPoint int) (Fig6Result, error) {
	if len(swapsPerTx) == 0 {
		swapsPerTx = []int{2, 8, 32, 64, 128, 512, 1024, 2048}
	}
	if txPerPoint <= 0 {
		txPerPoint = 10
	}
	envs := []romulus.Env{romulus.NativeEnv(), romulus.SGXEnv(), romulus.SconeEnv()}
	kinds := []pm.FlushKind{pm.FlushClflush, pm.FlushClflushOpt}
	var res Fig6Result
	for _, kind := range kinds {
		for _, env := range envs {
			for _, sw := range swapsPerTx {
				dev, err := pm.New(32<<20, pm.WithProfile(pm.RamdiskProfile()))
				if err != nil {
					return Fig6Result{}, err
				}
				r, err := romulus.Open(dev, romulus.WithEnv(env), romulus.WithFlushKind(kind))
				if err != nil {
					return Fig6Result{}, err
				}
				sps, err := romulus.RunSPS(r, romulus.SPSConfig{
					ArrayBytes:   10 << 20,
					SwapsPerTx:   sw,
					Transactions: txPerPoint,
					Seed:         42,
				})
				if err != nil {
					return Fig6Result{}, fmt.Errorf("fig6 %s/%s/%d: %w", env.Name, kind, sw, err)
				}
				res.Points = append(res.Points, Fig6Point{
					Env:        env.Name,
					FlushKind:  kind,
					SwapsPerTx: sw,
					SwapsPerUs: sps.SwapsPerUs,
				})
			}
		}
	}
	return res, nil
}

// Print renders the two Fig. 6 panels.
func (r Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 6 — SPS benchmark (swaps/µs), 10 MB persistent array")
	for _, kind := range []pm.FlushKind{pm.FlushClflush, pm.FlushClflushOpt} {
		fence := "NOP"
		if kind != pm.FlushClflush {
			fence = "SFENCE"
		}
		fmt.Fprintf(w, "\n%s + %s\n", kind, fence)
		tw := newTable(w)
		fmt.Fprintln(tw, "swaps/tx\tnative\tsgx-romulus\tscone-romulus")
		bySize := map[int][3]float64{}
		order := []string{"native", "sgx-romulus", "scone-romulus"}
		for _, p := range r.Points {
			if p.FlushKind != kind {
				continue
			}
			row := bySize[p.SwapsPerTx]
			for i, name := range order {
				if p.Env == name {
					row[i] = p.SwapsPerUs
				}
			}
			bySize[p.SwapsPerTx] = row
		}
		var sizes []int
		for _, p := range r.Points {
			if p.FlushKind == kind && p.Env == "native" {
				sizes = append(sizes, p.SwapsPerTx)
			}
		}
		for _, sw := range sizes {
			row := bySize[sw]
			fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\n", sw, row[0], row[1], row[2])
		}
		tw.Flush()
	}
}
