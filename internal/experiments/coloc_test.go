package experiments

import (
	"bytes"
	"strings"
	"testing"

	"plinius/internal/core"
)

// TestColocSharedKnee is the acceptance check for shared-EPC
// accounting: two enclaves each below the usable EPC but jointly above
// it pay paging, while either alone is paging-free — and the
// single-tenant row keeps the original Fig. 7 behavior.
func TestColocSharedKnee(t *testing.T) {
	// 40 MB of parameters + 15 MB default overhead = ~55 MB per
	// tenant: one fits (55 < 93.5), two do not (110 > 93.5).
	res, err := RunColoc(core.SGXEmlPM(), 40, 2, 1, 7)
	if err != nil {
		t.Fatalf("RunColoc: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	solo, shared := res.Rows[0], res.Rows[1]

	if !solo.EachUnderEPC || solo.HostOverEPC {
		t.Fatalf("solo tenant should fit: %+v", solo)
	}
	if solo.SavePageSwaps != 0 {
		t.Fatalf("solo tenant paid %d swaps/save, want 0", solo.SavePageSwaps)
	}

	if !shared.EachUnderEPC {
		t.Fatalf("tenants must each be under the EPC: %+v", shared)
	}
	if !shared.HostOverEPC {
		t.Fatalf("two tenants must jointly overcommit the host: %+v", shared)
	}
	if shared.SavePageSwaps == 0 {
		t.Fatal("no paging at the shared knee")
	}
	if shared.ContentionSwaps != shared.SavePageSwaps {
		t.Fatalf("ContentionSwaps = %d, want all %d faults attributed to co-location",
			shared.ContentionSwaps, shared.SavePageSwaps)
	}
	if shared.MirrorSave.Encrypt <= solo.MirrorSave.Encrypt {
		t.Fatalf("shared-knee encrypt %v not above solo %v",
			shared.MirrorSave.Encrypt, solo.MirrorSave.Encrypt)
	}

	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "shared knee") {
		t.Fatalf("Print missing shared-knee regime:\n%s", buf.String())
	}
}

// TestColocSimulationModeFree: in SGX simulation mode co-location
// costs nothing, like every other SGX effect.
func TestColocSimulationModeFree(t *testing.T) {
	res, err := RunColoc(core.EmlSGXPM(), 40, 2, 1, 7)
	if err != nil {
		t.Fatalf("RunColoc: %v", err)
	}
	for _, row := range res.Rows {
		if row.SavePageSwaps != 0 {
			t.Fatalf("simulation mode charged %d swaps at %d tenants", row.SavePageSwaps, row.Tenants)
		}
	}
}
