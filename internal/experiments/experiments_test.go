package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"plinius/internal/core"
	"plinius/internal/pm"
	"plinius/internal/spot"
)

func TestFig2ShapeAndPrint(t *testing.T) {
	res, err := RunFig2([]int{1, 4}, 8)
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	if len(res.ByDevice) != 3 {
		t.Fatalf("devices = %d, want 3", len(res.ByDevice))
	}
	// Shape: every PM throughput beats the matching SSD throughput.
	ssd := res.ByDevice["ssd-ext4"]
	pmdax := res.ByDevice["pm-ext4-dax"]
	for i := range ssd {
		if pmdax[i].ThroughputGBps <= ssd[i].ThroughputGBps {
			t.Fatalf("point %d: PM %.3f <= SSD %.3f", i,
				pmdax[i].ThroughputGBps, ssd[i].ThroughputGBps)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "ramdisk-tmpfs") {
		t.Fatal("print output missing ramdisk rows")
	}
}

func TestFig6CrossoverShape(t *testing.T) {
	res, err := RunFig6([]int{8, 1024}, 5)
	if err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	get := func(env string, kind pm.FlushKind, swaps int) float64 {
		for _, p := range res.Points {
			if p.Env == env && p.FlushKind == kind && p.SwapsPerTx == swaps {
				return p.SwapsPerUs
			}
		}
		t.Fatalf("missing point %s/%s/%d", env, kind, swaps)
		return 0
	}
	for _, kind := range []pm.FlushKind{pm.FlushClflush, pm.FlushClflushOpt} {
		// Native fastest everywhere.
		if !(get("native", kind, 8) > get("sgx-romulus", kind, 8)) {
			t.Fatalf("%s: native not fastest at 8 swaps", kind)
		}
		// SCONE beats SGX at small tx, loses at large tx.
		if !(get("scone-romulus", kind, 8) > get("sgx-romulus", kind, 8)) {
			t.Fatalf("%s: scone not faster at 8 swaps", kind)
		}
		if !(get("sgx-romulus", kind, 1024) > get("scone-romulus", kind, 1024)) {
			t.Fatalf("%s: sgx not faster at 1024 swaps", kind)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "scone-romulus") {
		t.Fatal("print output missing scone column")
	}
}

func TestFig7BelowEPCShape(t *testing.T) {
	res, err := RunFig7(core.SGXEmlPM(), []int{2, 4}, 1, 1)
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BeyondEPC {
			t.Fatalf("%dMB flagged beyond EPC", row.TargetMB)
		}
		// The encrypt/decrypt terms are the same AES work on both
		// paths (same engine, same buffers) and wall-clock-noisy, so
		// the paths are compared on the deterministic device + ocall
		// components — the quantity Fig. 7 is about.
		if row.MirrorSave.Write >= row.SSDSave.Write {
			t.Fatalf("%dMB: mirror write %v >= ssd write %v",
				row.TargetMB, row.MirrorSave.Write, row.SSDSave.Write)
		}
		if row.MirrorRestore.Read >= row.SSDRestore.Read {
			t.Fatalf("%dMB: mirror read %v >= ssd read %v",
				row.TargetMB, row.MirrorRestore.Read, row.SSDRestore.Read)
		}
	}
	// Latency grows with model size.
	if res.Rows[1].MirrorSave.Total() <= res.Rows[0].MirrorSave.Total() {
		t.Fatal("save latency did not grow with model size")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Write(PM)") {
		t.Fatal("print output missing PM write column")
	}
}

func TestFig7BeyondEPCKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("large model sweep")
	}
	res, err := RunFig7(core.SGXEmlPM(), []int{40, 90}, 1, 1)
	if err != nil {
		t.Fatalf("RunFig7: %v", err)
	}
	below, beyond := res.Rows[0], res.Rows[1]
	if below.BeyondEPC || !beyond.BeyondEPC {
		t.Fatalf("EPC classification wrong: %v %v", below.BeyondEPC, beyond.BeyondEPC)
	}
	// The paging knee: beyond the EPC limit, encryption's share of the
	// mirror-save latency grows (Table Ia: 66.4% -> 92.3%).
	shareBelow := float64(below.MirrorSave.Encrypt) / float64(below.MirrorSave.Total())
	shareBeyond := float64(beyond.MirrorSave.Encrypt) / float64(beyond.MirrorSave.Total())
	if shareBeyond <= shareBelow {
		t.Fatalf("encrypt share did not grow past EPC: %.2f -> %.2f", shareBelow, shareBeyond)
	}
	// Mirroring still wins beyond the limit (Fig. 7 bottom panels).
	if beyond.MirrorSave.Total() >= beyond.SSDSave.Total() {
		t.Fatal("mirror save lost to SSD beyond EPC")
	}
}

func TestTable1FromFig7(t *testing.T) {
	fig7 := Fig7Result{
		Server: "test",
		Rows: []Fig7Row{
			{
				BeyondEPC:     false,
				MirrorSave:    core.StepTiming{Encrypt: 60 * time.Millisecond, Write: 40 * time.Millisecond},
				MirrorRestore: core.StepTiming{Read: 75 * time.Millisecond, Decrypt: 25 * time.Millisecond},
				SSDSave:       core.StepTiming{Encrypt: 60 * time.Millisecond, Write: 200 * time.Millisecond},
				SSDRestore:    core.StepTiming{Read: 150 * time.Millisecond, Decrypt: 25 * time.Millisecond},
			},
			{
				BeyondEPC:     true,
				MirrorSave:    core.StepTiming{Encrypt: 90 * time.Millisecond, Write: 10 * time.Millisecond},
				MirrorRestore: core.StepTiming{Read: 90 * time.Millisecond, Decrypt: 10 * time.Millisecond},
				SSDSave:       core.StepTiming{Encrypt: 90 * time.Millisecond, Write: 80 * time.Millisecond},
				SSDRestore:    core.StepTiming{Read: 180 * time.Millisecond, Decrypt: 10 * time.Millisecond},
			},
		},
	}
	a := ComputeTable1a(fig7)
	if a.EncryptBelow != 60 || a.WriteBelow != 40 {
		t.Fatalf("below save shares: %.1f/%.1f", a.EncryptBelow, a.WriteBelow)
	}
	if a.EncryptBeyond != 90 || a.WriteBeyond != 10 {
		t.Fatalf("beyond save shares: %.1f/%.1f", a.EncryptBeyond, a.WriteBeyond)
	}
	if a.ReadBelow != 75 || a.DecryptBelow != 25 {
		t.Fatalf("below restore shares: %.1f/%.1f", a.ReadBelow, a.DecryptBelow)
	}
	b := ComputeTable1b(fig7)
	if b.WriteBelow != 5 { // 200/40
		t.Fatalf("write speedup below = %.2f, want 5", b.WriteBelow)
	}
	if b.ReadBelow != 2 { // 150/75
		t.Fatalf("read speedup below = %.2f, want 2", b.ReadBelow)
	}
	if b.SaveTotalBelow != 2.6 { // 260/100
		t.Fatalf("save total speedup = %.2f, want 2.6", b.SaveTotalBelow)
	}
	var buf bytes.Buffer
	a.Print(&buf)
	b.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table Ia") || !strings.Contains(out, "Table Ib") {
		t.Fatal("table prints incomplete")
	}
}

func TestFig8EncryptionOverhead(t *testing.T) {
	res, err := RunFig8(Fig8Config{
		BatchSizes:  []int{8, 32},
		ConvLayers:  2,
		Filters:     4,
		Iters:       2,
		DatasetSize: 128,
		Seed:        1,
	})
	if err != nil {
		t.Fatalf("RunFig8: %v", err)
	}
	for _, row := range res.Rows {
		// The robust shape check: the data pipeline with decryption is
		// slower than without (paper: ~1.2x at iteration level). The
		// ratio compares real AES time against real decode time, which
		// the race detector distorts (see race_on_test.go).
		if row.FetchOverhead <= 1.0 && !raceEnabled {
			t.Fatalf("batch %d: encrypted fetch not slower (%.3fx)", row.BatchSize, row.FetchOverhead)
		}
		if row.Overhead > 3.0 {
			t.Fatalf("batch %d: iteration overhead %.2fx implausibly high (paper: ~1.2x)", row.BatchSize, row.Overhead)
		}
	}
	// Iteration time grows with batch size.
	if res.Rows[1].EncryptedIter <= res.Rows[0].EncryptedIter {
		t.Fatal("iteration time did not grow with batch size")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "fetch ovh") {
		t.Fatal("print output incomplete")
	}
}

func TestFig9CrashResilienceShape(t *testing.T) {
	res, err := RunFig9(Fig9Config{
		Iters:      20,
		Crashes:    2,
		ConvLayers: 1,
		Filters:    4,
		Batch:      16,
		Dataset:    128,
		Seed:       2,
	})
	if err != nil {
		t.Fatalf("RunFig9: %v", err)
	}
	if len(res.Baseline) != 20 {
		t.Fatalf("baseline has %d points", len(res.Baseline))
	}
	// Fig. 9(a): the resilient run needs exactly the target iteration
	// count despite crashes — no work is repeated.
	if len(res.Resilient) != 20 {
		t.Fatalf("resilient run executed %d iterations, want 20", len(res.Resilient))
	}
	// Fig. 9(b): the non-resilient run needs strictly more.
	if res.NonResilientTotal <= 20 {
		t.Fatalf("non-resilient total %d not above target", res.NonResilientTotal)
	}
	if len(res.CrashIters) != 2 {
		t.Fatalf("crash points: %v", res.CrashIters)
	}
	// Both learning runs make progress.
	if res.Resilient[len(res.Resilient)-1] >= res.Resilient[0] {
		t.Fatal("resilient run did not learn")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "crash resilient") {
		t.Fatal("print output incomplete")
	}
}

func TestFig10SpotShape(t *testing.T) {
	// Explicit trace: runnable, outbid, runnable, outbid, then
	// runnable to the end — both runs hit two interruptions mid-job.
	prices := []float64{0.05, 0.05, 0.12, 0.05, 0.05, 0.12, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05}
	res, err := RunFig10(Fig10Config{
		Trace:            spot.Trace{Prices: prices},
		TargetIters:      12,
		ItersPerInterval: 2,
		ConvLayers:       1,
		Filters:          4,
		Batch:            16,
		Dataset:          128,
		Seed:             3,
	})
	if err != nil {
		t.Fatalf("RunFig10: %v", err)
	}
	if !res.Resilient.Completed {
		t.Fatal("resilient spot run did not complete")
	}
	if res.Resilient.Interruptions == 0 || res.NonResilient.Interruptions == 0 {
		t.Fatalf("runs hit no interruptions: %d/%d",
			res.Resilient.Interruptions, res.NonResilient.Interruptions)
	}
	// The resilient model reaches the target; the non-resilient model
	// only counts iterations since its last restart (Fig. 10c).
	if res.ResilientFinalIter != 12 {
		t.Fatalf("resilient final iteration = %d, want 12", res.ResilientFinalIter)
	}
	if res.NonResilientFinalIter >= res.ResilientFinalIter {
		t.Fatalf("non-resilient final iteration %d >= resilient %d despite interruptions",
			res.NonResilientFinalIter, res.ResilientFinalIter)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "state curve") {
		t.Fatal("print output incomplete")
	}
}

func TestInferenceAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	res, err := RunInference(InferenceConfig{
		ConvLayers: 2,
		Filters:    8,
		Batch:      64,
		Iters:      150,
		Train:      800,
		Test:       200,
		Seed:       4,
	})
	if err != nil {
		t.Fatalf("RunInference: %v", err)
	}
	if res.Accuracy < 0.95 {
		t.Fatalf("accuracy %.3f below 0.95", res.Accuracy)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "accuracy") {
		t.Fatal("print output incomplete")
	}
}

func TestTCBAccounting(t *testing.T) {
	res, err := RunTCB("../..")
	if err != nil {
		t.Fatalf("RunTCB: %v", err)
	}
	if res.TrustedLOC == 0 || res.UntrustedLOC == 0 {
		t.Fatalf("degenerate split: %+v", res)
	}
	frac := res.TrustedFraction()
	if frac < 0.3 || frac > 0.85 {
		t.Fatalf("trusted fraction %.2f outside plausible band", frac)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "trusted (enclave)") {
		t.Fatal("print output incomplete")
	}
}

func TestFreqAblationLostWork(t *testing.T) {
	res, err := RunFreqAblation([]int{1, 5}, 13, 5)
	if err != nil {
		t.Fatalf("RunFreqAblation: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Mirroring every iteration loses none; every 5 loses 13-10=3.
	if res.Rows[0].LostIters != 0 {
		t.Fatalf("freq=1 lost %d iterations", res.Rows[0].LostIters)
	}
	if res.Rows[1].LostIters != 3 {
		t.Fatalf("freq=5 lost %d iterations, want 3", res.Rows[1].LostIters)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "mirror every") {
		t.Fatal("print output incomplete")
	}
}
