package experiments

import (
	"bufio"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// TCB accounting (paper §IV/§V): Plinius' manual trusted/untrusted
// partitioning keeps the trusted computing base small — the paper's C
// implementation is 28,450 LOC total with 15,900 trusted (a ~44%
// reduction versus putting everything in the enclave). This experiment
// computes the same split for the Go reproduction by classifying
// packages.

// trustedPackages are the components that live inside the enclave:
// lib-sgx-romulus, lib-sgx-darknet, the mirroring module, the
// encryption engine and the trusted parts of the framework.
var trustedPackages = map[string]bool{
	"romulus": true,
	"darknet": true,
	"mirror":  true,
	"engine":  true,
	"enclave": true,
	"core":    true,
	// The distributed coordinator averages plaintext parameters, so it
	// runs enclave-side over attested channels.
	"distributed": true,
}

// untrustedPackages run in the untrusted runtime: device emulation,
// dataset handling, the spot driver and the experiment harness.
var untrustedPackages = map[string]bool{
	"pm":          true,
	"storage":     true,
	"mnist":       true,
	"spot":        true,
	"simclock":    true,
	"experiments": true,
	// The serving front end (request queueing and micro-batch
	// marshalling) is untrusted-runtime plumbing; classification
	// itself runs in the replica enclaves (core.Replica).
	"serve": true,
	// The fleet fabric (placement planning, routing, channel
	// bookkeeping) is untrusted orchestration: activations cross hosts
	// only sealed, and channel keys are provisioned by the attestation
	// flow inside the shard enclaves (core).
	"fleet": true,
	// Telemetry (metric registry, tracing, exposition) observes the
	// enclave pipeline from outside; nothing secret crosses into it.
	"obs": true,
	// Fault injection scripts host kills and channel faults from the
	// untrusted side — exactly where a real adversary or failure
	// lives; enclaves only ever see the resulting refused crossings.
	"chaos": true,
}

// TCBResult is the LOC split.
type TCBResult struct {
	TrustedLOC   int
	UntrustedLOC int
	PerPackage   map[string]int
}

// TotalLOC returns the combined count.
func (r TCBResult) TotalLOC() int { return r.TrustedLOC + r.UntrustedLOC }

// TrustedFraction returns trusted/total.
func (r TCBResult) TrustedFraction() float64 {
	if r.TotalLOC() == 0 {
		return 0
	}
	return float64(r.TrustedLOC) / float64(r.TotalLOC())
}

// RunTCB counts non-blank, non-test Go lines under root/internal and
// classifies them into the trusted and untrusted runtime.
func RunTCB(root string) (TCBResult, error) {
	res := TCBResult{PerPackage: make(map[string]int)}
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		pkg := filepath.Base(filepath.Dir(path))
		loc, err := countLOC(path)
		if err != nil {
			return err
		}
		res.PerPackage[pkg] += loc
		switch {
		case trustedPackages[pkg]:
			res.TrustedLOC += loc
		case untrustedPackages[pkg]:
			res.UntrustedLOC += loc
		default:
			return fmt.Errorf("tcb: package %q not classified", pkg)
		}
		return nil
	})
	if err != nil {
		return TCBResult{}, fmt.Errorf("tcb walk: %w", err)
	}
	return res, nil
}

func countLOC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n, sc.Err()
}

// Print renders the split.
func (r TCBResult) Print(w io.Writer) {
	fmt.Fprintln(w, "§V TCB accounting (non-blank Go LOC, tests excluded)")
	tw := newTable(w)
	fmt.Fprintln(tw, "runtime\tLOC\tshare")
	fmt.Fprintf(tw, "trusted (enclave)\t%d\t%.1f%%\n", r.TrustedLOC, 100*r.TrustedFraction())
	fmt.Fprintf(tw, "untrusted\t%d\t%.1f%%\n", r.UntrustedLOC, 100*(1-r.TrustedFraction()))
	fmt.Fprintf(tw, "total\t%d\t\n", r.TotalLOC())
	tw.Flush()
}
