// Package experiments regenerates every table and figure of the
// Plinius paper's evaluation (§VI) on the emulated substrates. Each
// RunFigN/RunTableN function returns structured results; the Print
// helpers render them in the shape the paper reports. cmd/plinius-bench
// and the repository's benchmarks are thin wrappers over this package.
//
// Absolute numbers come from the cost models calibrated in DESIGN.md;
// EXPERIMENTS.md records paper-vs-measured shape for every experiment.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// mb converts a size in bytes to whole mebibytes for display.
func mbOf(bytes int) float64 { return float64(bytes) / (1 << 20) }

// ms renders a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// newTable returns a tabwriter for aligned experiment output.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}
