package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"plinius/internal/core"
	"plinius/internal/enclave"
	"plinius/internal/mnist"
	"plinius/internal/obs"
)

// Sharded-serving experiment: the serving-side answer to the Fig. 7
// paging knee. A model larger than the usable EPC is served two ways
// on identical dedicated serving hosts:
//
//   - monolithic: one whole-model replica enclave. Its footprint alone
//     overcommits the host, so the restore all-misses (every sealed
//     buffer decrypt touches paged-out memory) and every staged batch
//     keeps paying faults — the knee, permanently.
//   - sharded: a core.ShardGroup pipeline. Shards hold only a small
//     parked overhead between batches and stream their layer range
//     back from the pinned published snapshot in PM when scheduled, so
//     the host never crosses the knee: the fault storm is traded for
//     sealed PM reads and in-enclave decrypts (the PMRestores column).
//
// The headline is the fault arithmetic: per batch served, the
// monolithic replica pays page faults while the shard group pays
// (near) zero and a few PM range restores instead.

// ShardRow is one serving mode's measurement.
type ShardRow struct {
	// Mode is "monolithic" or "sharded".
	Mode string
	// Shards is the pipeline depth (1 for the monolithic replica);
	// Window is how many batches may be in flight at once.
	Shards, Window int
	// Streaming reports PM-streaming residency (sharded mode only).
	Streaming bool
	// PeakResidentBytes is the serving host's working-set high-water
	// mark; HostOverEPC whether it ever exceeded the usable budget.
	PeakResidentBytes int
	HostOverEPC       bool
	// RestoreFaults is the page-fault cost of bringing the pool up;
	// ServeFaults the faults across the batch run.
	RestoreFaults, ServeFaults uint64
	// PagingTime is the modeled kernel time of all those faults.
	PagingTime time.Duration
	// PMRestores counts layer-range restores from PM (sharded
	// streaming's alternative currency).
	PMRestores uint64
	// Stalls counts batches that paid a full range restore on the
	// compute path; Prefetched counts restores the double-buffering
	// prefetcher overlapped with upstream compute instead.
	Stalls, Prefetched uint64
	// ServeWall is the wall-clock time of the batch run.
	ServeWall time.Duration
	// Batches is the number of micro-batches served.
	Batches int
	// SlowWall is the slowest batch's end-to-end latency, and
	// SlowSpans its per-stage trace (wait/restore/open/compute/seal per
	// shard) — the attribution of where that batch's time went.
	SlowWall  time.Duration
	SlowSpans []obs.SpanRec
}

// ShardResult holds one sharded-serving comparison.
type ShardResult struct {
	Server     string
	ModelBytes int
	// ServeEPC is each serving host's usable-EPC budget.
	ServeEPC int
	Batch    int
	Rows     []ShardRow
}

// RunShard serves a sizeMB-parameter model — sized past the serving
// hosts' usable EPC of epcMB — monolithically and sharded, and
// measures the fault bill of each. epcMB <= 0 uses the paper's 93.5 MB
// budget (pair it with sizeMB ~2x that, e.g. 187, for the headline
// comparison); smaller values scale the whole experiment down.
func RunShard(server core.ServerProfile, sizeMB, epcMB, batches, batch int, seed int64) (ShardResult, error) {
	if sizeMB <= 0 {
		sizeMB = 187 // ~2x the usable EPC
	}
	epcBytes := enclave.UsableEPC
	if epcMB > 0 {
		epcBytes = epcMB << 20
	}
	if batches <= 0 {
		batches = 4
	}
	if batch <= 0 {
		batch = 2
	}
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return ShardResult{}, err
	}
	f, err := core.New(core.Config{
		ModelConfig:        cfgText,
		Server:             server,
		PMBytes:            (sizeMB*5/2 + 48) << 20,
		Seed:               seed,
		TrainOverheadBytes: 1 << 20,
	})
	if err != nil {
		return ShardResult{}, err
	}
	res := ShardResult{
		Server:     server.Name,
		ModelBytes: f.Net.ParamBytes(),
		ServeEPC:   epcBytes,
		Batch:      batch,
	}
	images := mnist.Synthetic(batch*batches, seed).Images
	in := f.Net.InputSize()
	pageCost := server.Enclave.PageSwapCost

	// Monolithic: one whole-model replica on its own serving host.
	monoHost := enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
	rep, err := f.NewReplicaOn(monoHost, seed+1)
	if err != nil {
		return ShardResult{}, fmt.Errorf("monolithic replica: %w", err)
	}
	mono := ShardRow{Mode: "monolithic", Shards: 1, Window: 1, Batches: batches}
	mono.RestoreFaults = monoHost.Stats().PageSwaps
	start := time.Now()
	for b := 0; b < batches; b++ {
		if _, err := rep.ClassifyBatch(images[b*batch*in : (b+1)*batch*in]); err != nil {
			return ShardResult{}, fmt.Errorf("monolithic batch %d: %w", b, err)
		}
	}
	mono.ServeWall = time.Since(start)
	hs := monoHost.Stats()
	mono.ServeFaults = hs.PageSwaps - mono.RestoreFaults
	mono.PagingTime = time.Duration(hs.PageSwaps) * pageCost
	mono.PeakResidentBytes = hs.PeakResidentBytes
	mono.HostOverEPC = monoHost.OverEPC()
	if err := rep.Close(); err != nil {
		return ShardResult{}, err
	}
	res.Rows = append(res.Rows, mono)

	// Sharded: a pipelined shard group on an identical host — once with
	// double-buffered restores disabled (every parked stage stalls the
	// batch on its restore) and once enabled (restores overlap upstream
	// compute), so the prefetch win is visible in the stall column.
	for _, pf := range []struct {
		mode            string
		disablePrefetch bool
	}{
		{"sharded-nopf", true},
		{"sharded+pf", false},
	} {
		shardHost := enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcBytes))
		g, err := f.NewShardGroup(core.ShardOptions{
			Host:            shardHost,
			Batch:           batch,
			OverheadBytes:   64 << 10,
			Seed:            seed + 100,
			DisablePrefetch: pf.disablePrefetch,
		})
		if err != nil {
			return ShardResult{}, fmt.Errorf("shard group (%s): %w", pf.mode, err)
		}
		sharded := ShardRow{
			Mode:      pf.mode,
			Shards:    g.Shards(),
			Window:    g.Window(),
			Streaming: g.Streaming(),
			Batches:   batches,
		}
		sharded.RestoreFaults = shardHost.Stats().PageSwaps
		start = time.Now()
		// Keep the pipeline full: up to Window batches in flight, so
		// shard k runs batch i+1 while shard k+1 runs batch i.
		sem := make(chan struct{}, g.Window())
		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			batchErr error
		)
		// Each batch carries a request-scoped trace so the slowest one
		// can be attributed stage by stage afterwards.
		for b := 0; b < batches; b++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(b int) {
				defer wg.Done()
				defer func() { <-sem }()
				tr := obs.NewTrace()
				t0 := time.Now()
				_, err := g.ClassifyBatchCtx(obs.ContextWithTrace(context.Background(), tr), images[b*batch*in:(b+1)*batch*in])
				wall := time.Since(t0)
				spans := tr.Spans()
				tr.Finish()
				errMu.Lock()
				if err != nil && batchErr == nil {
					batchErr = fmt.Errorf("%s batch %d: %w", pf.mode, b, err)
				}
				if err == nil && wall > sharded.SlowWall {
					sharded.SlowWall, sharded.SlowSpans = wall, spans
				}
				errMu.Unlock()
			}(b)
		}
		wg.Wait()
		if batchErr != nil {
			return ShardResult{}, batchErr
		}
		sharded.ServeWall = time.Since(start)
		hs = shardHost.Stats()
		sharded.ServeFaults = hs.PageSwaps - sharded.RestoreFaults
		sharded.PagingTime = time.Duration(hs.PageSwaps) * pageCost
		sharded.PeakResidentBytes = hs.PeakResidentBytes
		sharded.HostOverEPC = hs.PeakResidentBytes > epcBytes
		sharded.PMRestores = g.Restores()
		sharded.Stalls = g.Stalls()
		sharded.Prefetched = g.PrefetchedRestores()
		if err := g.Close(); err != nil {
			return ShardResult{}, err
		}
		res.Rows = append(res.Rows, sharded)
	}
	return res, nil
}

// Print renders the comparison.
func (r ShardResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Sharded serving — %s: %.0f MB model on %.1f MB serving hosts (batch %d)\n",
		r.Server, mbOf(r.ModelBytes), mbOf(r.ServeEPC), r.Batch)
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\tshards\twindow\tpeak(MB)\trestore-faults\tserve-faults\tpaging(ms)\tPM-restores\tstalls\tprefetched\twall(ms)\tregime")
	for _, row := range r.Rows {
		regime := "fits"
		switch {
		case row.HostOverEPC:
			regime = "over knee"
		case row.Streaming:
			regime = "streams PM"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t%s\t%d\t%d\t%d\t%s\t%s\n",
			row.Mode, row.Shards, row.Window, mbOf(row.PeakResidentBytes),
			row.RestoreFaults, row.ServeFaults, ms(row.PagingTime),
			row.PMRestores, row.Stalls, row.Prefetched, ms(row.ServeWall), regime)
	}
	tw.Flush()
	// Slowest-batch attribution: the per-shard stage spans (wait/k,
	// restore/k, open/k, compute/k, seal/k) folded by stage kind, so
	// the restore-vs-compute split of the worst batch is one line.
	for _, row := range r.Rows {
		if len(row.SlowSpans) == 0 {
			continue
		}
		agg := make(map[string]time.Duration)
		var order []string
		for _, sp := range row.SlowSpans {
			kind, _, _ := strings.Cut(sp.Stage, "/")
			if _, ok := agg[kind]; !ok {
				order = append(order, kind)
			}
			agg[kind] += sp.Dur
		}
		sort.SliceStable(order, func(i, j int) bool { return agg[order[i]] > agg[order[j]] })
		parts := make([]string, 0, len(order))
		for _, kind := range order {
			parts = append(parts, fmt.Sprintf("%s %s (%.0f%%)",
				kind, ms(agg[kind]), 100*float64(agg[kind])/float64(row.SlowWall)))
		}
		fmt.Fprintf(w, "slowest %s batch %s: %s\n", row.Mode, ms(row.SlowWall), strings.Join(parts, ", "))
	}
}
