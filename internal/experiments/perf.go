package experiments

import (
	"crypto/rand"
	"fmt"
	"io"
	mrand "math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/enclave"
	"plinius/internal/engine"
	"plinius/internal/mirror"
	"plinius/internal/mnist"
	"plinius/internal/obs"
	"plinius/internal/pm"
	"plinius/internal/romulus"
)

// Parallel hot-path benchmark (PR 5): one machine-readable snapshot of
// the three paths this PR parallelised, tracked from this PR on so the
// perf trajectory is visible in CI artifacts (BENCH_5.json).
//
//   - kernels: training-iteration throughput with the scalar reference
//     GEMM kernels versus the blocked multi-core kernels. On >= 4 cores
//     the parallel kernels are expected to deliver >= 2x.
//   - mirroring: MirrorOut sealing throughput (payload GB/s, wall
//     clock) with the fan-out seal pipeline.
//   - sharded serving: per-batch latency quantiles and pipeline stalls
//     with double-buffered restore off and on.
//
// The PR 8 rung adds the quantized serving path: a CNN is trained
// fp32, published with the int8 snapshot variant, and the section
// reports the sealed-payload ratio (quantized vs fp32, expected well
// under 30%) plus the eval-accuracy delta between the fp32 model and
// its int8 inference clone (expected within 1%).

// PerfResult is the -exp perf snapshot, shaped for JSON.
type PerfResult struct {
	GoMaxProcs    int `json:"gomaxprocs"`
	KernelWorkers int `json:"kernel_workers"`

	TrainIters          int     `json:"train_iters"`
	TrainBatch          int     `json:"train_batch"`
	ScalarItersPerSec   float64 `json:"iters_per_sec_scalar"`
	ParallelItersPerSec float64 `json:"iters_per_sec_parallel"`
	KernelSpeedup       float64 `json:"kernel_speedup_x"`

	SealPayloadBytes int     `json:"seal_payload_bytes"`
	SealGBps         float64 `json:"seal_gbps"`
	OpenGBps         float64 `json:"open_gbps"`

	ShardBatches        int     `json:"shard_batches"`
	ShardP95NoPrefetch  float64 `json:"shard_p95_ms_noprefetch"`
	ShardP95Prefetch    float64 `json:"shard_p95_ms_prefetch"`
	ShardStallsNoPf     uint64  `json:"shard_stalls_noprefetch"`
	ShardStallsPf       uint64  `json:"shard_stalls_prefetch"`
	ShardPrefetched     uint64  `json:"shard_prefetched_restores"`
	ShardWallMsNoPf     float64 `json:"shard_wall_ms_noprefetch"`
	ShardWallMsPrefetch float64 `json:"shard_wall_ms_prefetch"`

	QuantTrainIters    int     `json:"quant_train_iters"`
	QuantEvalSamples   int     `json:"quant_eval_samples"`
	FP32Accuracy       float64 `json:"fp32_accuracy"`
	Int8Accuracy       float64 `json:"int8_accuracy"`
	QuantAccuracyDelta float64 `json:"quant_accuracy_delta"`
	FP32SealedBytes    int     `json:"fp32_sealed_bytes"`
	QuantSealedBytes   int     `json:"quant_sealed_bytes"`
	QuantPayloadRatio  float64 `json:"quant_payload_ratio"`

	// Metrics is the flattened obs-registry snapshot at the end of the
	// run — the process-wide layer counters (enclave, engine, pm,
	// mirror, darknet) plus the shard benchmark's per-shard series —
	// keyed name{label=value}, histograms as _count/_sum pairs.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// PerfConfig scales RunPerf.
type PerfConfig struct {
	// Quick shrinks every dimension for a CI smoke run.
	Quick bool
	Seed  int64
}

// RunPerf measures the three parallel hot paths and returns the
// snapshot.
func RunPerf(cfg PerfConfig) (PerfResult, error) {
	res := PerfResult{
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		KernelWorkers: darknet.KernelParallelism(),
	}
	if err := perfKernels(cfg, &res); err != nil {
		return res, fmt.Errorf("perf kernels: %w", err)
	}
	if err := perfSeal(cfg, &res); err != nil {
		return res, fmt.Errorf("perf seal: %w", err)
	}
	if err := perfQuant(cfg, &res); err != nil {
		return res, fmt.Errorf("perf quant: %w", err)
	}
	if err := perfShard(cfg, &res); err != nil {
		return res, fmt.Errorf("perf shard: %w", err)
	}
	return res, nil
}

// perfTrainNet builds the kernel-benchmark model: a conv stack big
// enough that GEMM dominates.
func perfTrainNet(cfg PerfConfig) (*darknet.Network, error) {
	filters := 16
	if cfg.Quick {
		filters = 8
	}
	rng := mrand.New(mrand.NewSource(cfg.Seed))
	return darknet.NewBuilder(darknet.NetConfig{
		Batch: 32, LearningRate: 0.1, Momentum: 0.9,
		Channels: 1, Height: 28, Width: 28,
	}, rng).
		Conv(darknet.ConvConfig{Filters: filters, Size: 3, Stride: 1, Pad: 1, Activation: darknet.LeakyReLU}).
		MaxPool(2, 2).
		Conv(darknet.ConvConfig{Filters: 2 * filters, Size: 3, Stride: 1, Pad: 1, Activation: darknet.LeakyReLU}).
		MaxPool(2, 2).
		Connected(64, darknet.LeakyReLU).
		Connected(10, darknet.Linear).
		Softmax().
		Build()
}

func perfKernels(cfg PerfConfig, res *PerfResult) error {
	iters := 8
	if cfg.Quick {
		iters = 2
	}
	batch := 32
	ds := mnist.Synthetic(batch*iters, cfg.Seed)
	classes := 10

	run := func(scalar bool) (float64, error) {
		darknet.SetScalarKernels(scalar)
		defer darknet.SetScalarKernels(false)
		net, err := perfTrainNet(cfg)
		if err != nil {
			return 0, err
		}
		in := net.InputSize()
		y := make([]float32, batch*classes)
		// One warm-up iteration grows the scratch buffers.
		if _, err := net.TrainBatch(ds.Images[:batch*in], y, batch); err != nil {
			return 0, err
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			lo := (i % iters) * batch * in
			if _, err := net.TrainBatch(ds.Images[lo:lo+batch*in], y, batch); err != nil {
				return 0, err
			}
		}
		return float64(iters) / time.Since(start).Seconds(), nil
	}
	var err error
	if res.ScalarItersPerSec, err = run(true); err != nil {
		return err
	}
	if res.ParallelItersPerSec, err = run(false); err != nil {
		return err
	}
	res.TrainIters, res.TrainBatch = iters, batch
	if res.ScalarItersPerSec > 0 {
		res.KernelSpeedup = res.ParallelItersPerSec / res.ScalarItersPerSec
	}
	return nil
}

// perfQuant measures the quantized publication/serving path end to
// end: a CNN trained fp32 on synthetic digits is published with the
// int8 snapshot variant onto raw PM, both variants are opened from the
// pinned version, and the quantized clone is restored from its sealed
// payload before evaluation — so the reported int8 accuracy is that of
// the exact bytes a quantized replica would serve.
func perfQuant(cfg PerfConfig, res *PerfResult) error {
	iters, evalN := 60, 256
	if cfg.Quick {
		iters, evalN = 12, 128
	}
	batch := 32
	full := mnist.Synthetic(batch*iters+evalN, cfg.Seed+7)
	train, test, err := full.Split(batch * iters)
	if err != nil {
		return err
	}
	net, err := perfTrainNet(cfg)
	if err != nil {
		return err
	}
	in := net.InputSize()
	y := make([]float32, batch*mnist.Classes)
	for i := 0; i < iters; i++ {
		for j := range y {
			y[j] = 0
		}
		for b := 0; b < batch; b++ {
			y[b*mnist.Classes+train.Labels[i*batch+b]] = 1
		}
		if _, err := net.TrainBatch(train.Images[i*batch*in:(i+1)*batch*in], y, batch); err != nil {
			return err
		}
	}
	qnet, err := darknet.QuantizeNetwork(net)
	if err != nil {
		return err
	}

	// Publish both variants onto raw PM and restore the quantized clone
	// from its sealed payload.
	dev, err := pm.New(32 << 20)
	if err != nil {
		return err
	}
	rom, err := romulus.Open(dev)
	if err != nil {
		return err
	}
	eng, err := engine.New([]byte("0123456789abcdef"), engine.WithRand(rand.Reader))
	if err != nil {
		return err
	}
	pub, err := mirror.OpenPublication(rom)
	if err != nil {
		return err
	}
	if _, err := pub.PublishOut(eng, net, mirror.WithQuantized()); err != nil {
		return err
	}
	pin, err := pub.Pin(0)
	if err != nil {
		return err
	}
	defer pin.Release()
	m, err := pin.Open(eng)
	if err != nil {
		return err
	}
	qm, err := pin.OpenQuant(eng)
	if err != nil {
		return err
	}
	if _, err := qm.RestoreInto(qnet); err != nil {
		return err
	}
	res.FP32SealedBytes = m.SealedBytes()
	res.QuantSealedBytes = qm.SealedBytes()
	if res.FP32SealedBytes > 0 {
		res.QuantPayloadRatio = float64(res.QuantSealedBytes) / float64(res.FP32SealedBytes)
	}

	eval := func(n *darknet.Network) (float64, error) {
		correct := 0
		for lo := 0; lo < test.N; lo += batch {
			sz := batch
			if lo+sz > test.N {
				sz = test.N - lo
			}
			classes, err := n.ClassifyBatch(test.Images[lo*in:(lo+sz)*in], sz)
			if err != nil {
				return 0, err
			}
			for k, c := range classes {
				if c == test.Labels[lo+k] {
					correct++
				}
			}
		}
		return float64(correct) / float64(test.N), nil
	}
	if res.FP32Accuracy, err = eval(net); err != nil {
		return err
	}
	if res.Int8Accuracy, err = eval(qnet); err != nil {
		return err
	}
	res.QuantAccuracyDelta = res.FP32Accuracy - res.Int8Accuracy
	res.QuantTrainIters, res.QuantEvalSamples = iters, test.N
	return nil
}

// perfSeal times the fan-out MirrorOut/MirrorIn over a synthetic model
// on raw PM (no enclave cost model, so the wall clock is the real
// AES + store pipeline).
func perfSeal(cfg PerfConfig, res *PerfResult) error {
	sizeMB := 16
	reps := 4
	if cfg.Quick {
		sizeMB, reps = 4, 2
	}
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return err
	}
	net, err := darknet.ParseConfig(strings.NewReader(cfgText), mrand.New(mrand.NewSource(cfg.Seed)))
	if err != nil {
		return err
	}
	dev, err := pm.New((sizeMB*3 + 8) << 20)
	if err != nil {
		return err
	}
	rom, err := romulus.Open(dev)
	if err != nil {
		return err
	}
	eng, err := engine.New([]byte("0123456789abcdef"), engine.WithRand(rand.Reader))
	if err != nil {
		return err
	}
	m, err := mirror.AllocModel(rom, eng, net)
	if err != nil {
		return err
	}
	payload := net.ParamBytes()
	res.SealPayloadBytes = payload

	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := m.MirrorOut(net); err != nil {
			return err
		}
	}
	sealWall := time.Since(start).Seconds()
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := m.MirrorIn(net); err != nil {
			return err
		}
	}
	openWall := time.Since(start).Seconds()
	gb := float64(payload) * float64(reps) / 1e9
	if sealWall > 0 {
		res.SealGBps = gb / sealWall
	}
	if openWall > 0 {
		res.OpenGBps = gb / openWall
	}
	return nil
}

func perfShard(cfg PerfConfig, res *PerfResult) error {
	sizeMB, epcMB, batches, batch := 24, 12, 8, 1
	if cfg.Quick {
		sizeMB, epcMB, batches = 6, 3, 4
	}
	// One registry across both runs: the embedded snapshot totals the
	// prefetch-off and prefetch-on passes' per-shard series.
	reg := obs.NewRegistry()
	defer func() { res.Metrics = obs.Flatten(obs.Default(), reg) }()
	server := core.SGXEmlPM()
	cfgText, err := core.SyntheticModelConfig(sizeMB << 20)
	if err != nil {
		return err
	}
	f, err := core.New(core.Config{
		ModelConfig:        cfgText,
		Server:             server,
		PMBytes:            (sizeMB*5/2 + 48) << 20,
		Seed:               cfg.Seed,
		TrainOverheadBytes: 1 << 20,
	})
	if err != nil {
		return err
	}
	images := mnist.Synthetic(batch*batches, cfg.Seed).Images
	in := f.Net.InputSize()
	res.ShardBatches = batches

	run := func(disablePrefetch bool) (p95, wall float64, stalls, prefetched uint64, err error) {
		host := enclave.NewHost(server.Enclave, enclave.WithHostEPC(epcMB<<20))
		g, err := f.NewShardGroup(core.ShardOptions{
			Host:            host,
			Batch:           batch,
			OverheadBytes:   64 << 10,
			Seed:            cfg.Seed + 100,
			DisablePrefetch: disablePrefetch,
			Metrics:         reg,
		})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer g.Close()
		lats := make([]time.Duration, 0, batches)
		start := time.Now()
		for b := 0; b < batches; b++ {
			t0 := time.Now()
			if _, err := g.ClassifyBatch(images[b*batch*in : (b+1)*batch*in]); err != nil {
				return 0, 0, 0, 0, err
			}
			lats = append(lats, time.Since(t0))
		}
		wall = time.Since(start).Seconds() * 1e3
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p95 = float64(lats[(len(lats)*95+99)/100-1]) / float64(time.Millisecond)
		return p95, wall, g.Stalls(), g.PrefetchedRestores(), nil
	}
	if res.ShardP95NoPrefetch, res.ShardWallMsNoPf, res.ShardStallsNoPf, _, err = run(true); err != nil {
		return err
	}
	if res.ShardP95Prefetch, res.ShardWallMsPrefetch, res.ShardStallsPf, res.ShardPrefetched, err = run(false); err != nil {
		return err
	}
	return nil
}

// Print renders the snapshot as a table.
func (r PerfResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Parallel hot paths — GOMAXPROCS=%d, kernel workers=%d\n", r.GoMaxProcs, r.KernelWorkers)
	tw := newTable(w)
	fmt.Fprintln(tw, "path\tmetric\tscalar/off\tparallel/on\tgain")
	fmt.Fprintf(tw, "train\titers/s (batch %d)\t%.2f\t%.2f\t%.2fx\n",
		r.TrainBatch, r.ScalarItersPerSec, r.ParallelItersPerSec, r.KernelSpeedup)
	fmt.Fprintf(tw, "mirror\tseal GB/s\t-\t%.2f\t\n", r.SealGBps)
	fmt.Fprintf(tw, "mirror\topen GB/s\t-\t%.2f\t\n", r.OpenGBps)
	fmt.Fprintf(tw, "shard\tP95 ms (%d batches)\t%.2f\t%.2f\t\n",
		r.ShardBatches, r.ShardP95NoPrefetch, r.ShardP95Prefetch)
	fmt.Fprintf(tw, "shard\tstalls\t%d\t%d\t%d prefetched\n",
		r.ShardStallsNoPf, r.ShardStallsPf, r.ShardPrefetched)
	fmt.Fprintf(tw, "quant\tsealed bytes\t%d\t%d\t%.1f%% of fp32\n",
		r.FP32SealedBytes, r.QuantSealedBytes, 100*r.QuantPayloadRatio)
	fmt.Fprintf(tw, "quant\taccuracy (%d eval)\t%.2f%%\t%.2f%%\t%+.2f pts\n",
		r.QuantEvalSamples, 100*r.FP32Accuracy, 100*r.Int8Accuracy, -100*r.QuantAccuracyDelta)
	tw.Flush()
}
