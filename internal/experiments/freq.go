package experiments

import (
	"fmt"
	"io"
	"time"

	"plinius/internal/core"
	"plinius/internal/darknet"
	"plinius/internal/mnist"
)

// Mirroring-frequency ablation (paper §VI, "Mirroring frequency"): the
// mirroring interval trades training overhead against the work lost at
// a crash. This experiment measures both ends for several frequencies.

// FreqRow is one frequency point.
type FreqRow struct {
	// Freq is the mirroring interval in iterations.
	Freq int
	// TrainTime is the wall+modeled time of the training run.
	TrainTime time.Duration
	// LostIters is how many iterations a crash at the end of the run
	// discards (work since the last mirror-out).
	LostIters int
}

// FreqResult holds the sweep.
type FreqResult struct {
	Iters int
	Rows  []FreqRow
}

// RunFreqAblation trains for the same iteration count at several
// mirroring frequencies, then crashes and measures the recovery point.
func RunFreqAblation(freqs []int, iters int, seed int64) (FreqResult, error) {
	if len(freqs) == 0 {
		freqs = []int{1, 2, 5, 10}
	}
	if iters == 0 {
		iters = 23
	}
	ds := mnist.Synthetic(256, seed)
	res := FreqResult{Iters: iters}
	for _, freq := range freqs {
		f, err := core.New(core.Config{
			ModelConfig: darknet.MNISTConfig(2, 4, 16),
			PMBytes:     32 << 20,
			MirrorFreq:  freq,
			Seed:        seed,
		})
		if err != nil {
			return FreqResult{}, err
		}
		if err := f.LoadDataset(ds); err != nil {
			return FreqResult{}, err
		}
		pm0 := f.PM.Clock().Modeled()
		start := time.Now()
		if err := f.TrainIters(iters, nil); err != nil {
			return FreqResult{}, fmt.Errorf("freq %d: %w", freq, err)
		}
		elapsed := time.Since(start) + (f.PM.Clock().Modeled() - pm0)
		f.Crash()
		if err := f.Recover(true); err != nil {
			return FreqResult{}, fmt.Errorf("freq %d recover: %w", freq, err)
		}
		res.Rows = append(res.Rows, FreqRow{
			Freq:      freq,
			TrainTime: elapsed,
			LostIters: iters - f.Iteration(),
		})
	}
	return res, nil
}

// Print renders the trade-off table.
func (r FreqResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Mirroring-frequency ablation (%d iterations)\n", r.Iters)
	tw := newTable(w)
	fmt.Fprintln(tw, "mirror every\ttrain time (ms)\titers lost at crash")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%d\n", row.Freq, ms(row.TrainTime), row.LostIters)
	}
	tw.Flush()
}
